//! nomap-fleet: a dependency-free sharded execution harness.
//!
//! Corpus and bench jobs (workload × config grids) are embarrassingly
//! parallel: every shard builds its own `Vm` from source and the merge
//! machinery (`ExecStats::merge`, `Metrics::merge`, `ProfileData::merge`)
//! is commutative. This crate supplies the scheduling half: workers pull
//! shard indices from a shared atomic work queue, run each shard under
//! [`std::panic::catch_unwind`] so one crashing shard cannot take down the
//! run, retry failed shards once, and hand results back **in canonical
//! shard order** — so an N-thread run is byte-identical to the sequential
//! one as long as each shard is itself deterministic.
//!
//! The crate is `std`-only by design (the build environment has no registry
//! access) and knows nothing about VMs: shards are arbitrary
//! `Fn(usize) -> Result<T, String>` closures.
//!
//! # Determinism contract
//!
//! Scheduling order, worker count, and retries never leak into shard
//! *results*: a shard sees only its index. Anything nondeterministic —
//! per-shard wall-times, queue occupancy — lives in the run's
//! [`FleetSummary`] which callers must keep out of byte-compared artifacts
//! (the binaries in this workspace print it to stderr only).

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// How a fleet run schedules its shards.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FleetConfig {
    /// Worker threads. `1` runs every shard inline on the calling thread
    /// (still under `catch_unwind`, so crash isolation is identical).
    pub jobs: usize,
    /// Extra attempts after a shard's first failure. The default policy is
    /// the issue's "retried once and then reported": `1`.
    pub retries: u32,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig { jobs: 1, retries: 1 }
    }
}

impl FleetConfig {
    /// Sequential configuration (one worker, retry-once policy).
    pub fn sequential() -> Self {
        FleetConfig::default()
    }

    /// `jobs` workers, retry-once policy. `jobs` is clamped to at least 1.
    pub fn with_jobs(jobs: usize) -> Self {
        FleetConfig { jobs: jobs.max(1), retries: 1 }
    }

    /// Resolves the worker count from CLI args and the environment:
    /// `--jobs N` (or `--jobs=N`) wins, then `NOMAP_JOBS`, then 1.
    ///
    /// # Errors
    ///
    /// Rejects a malformed or zero value with a usage message.
    pub fn from_args(args: &[String]) -> Result<Self, String> {
        let parse = |what: &str, s: &str| {
            s.parse::<usize>()
                .ok()
                .filter(|&n| n > 0)
                .ok_or_else(|| format!("{what}: expected a positive worker count, got `{s}`"))
        };
        for (i, a) in args.iter().enumerate() {
            if let Some(v) = a.strip_prefix("--jobs=") {
                return Ok(FleetConfig::with_jobs(parse("--jobs", v)?));
            }
            if a == "--jobs" {
                let v = args.get(i + 1).ok_or("--jobs: missing worker count")?;
                return Ok(FleetConfig::with_jobs(parse("--jobs", v)?));
            }
        }
        match std::env::var("NOMAP_JOBS") {
            Ok(v) => Ok(FleetConfig::with_jobs(parse("NOMAP_JOBS", &v)?)),
            Err(_) => Ok(FleetConfig::sequential()),
        }
    }
}

/// Outcome of one shard, in canonical (submission) order.
#[derive(Debug)]
pub struct ShardReport<T> {
    /// Canonical shard index (position in the submitted job list).
    pub index: usize,
    /// `Ok` result, or the last failure message after all attempts.
    pub outcome: Result<T, String>,
    /// Attempts spent (1 = first try succeeded, 2 = one retry).
    pub attempts: u32,
    /// Wall-clock time across all attempts. Nondeterministic — keep out of
    /// byte-compared output.
    pub wall: Duration,
    /// How long the shard sat in the queue before a worker claimed it
    /// (elapsed from run start to claim). Nondeterministic, like `wall`.
    pub queued: Duration,
}

/// Scheduling telemetry for one fleet run. Everything here is
/// nondeterministic (wall-clock) or scheduling-dependent (occupancy);
/// binaries report it via stderr and the `fleet-summary` trace event, never
/// in diffed stdout.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FleetSummary {
    /// Worker threads used.
    pub jobs: usize,
    /// Total shards submitted.
    pub shards: usize,
    /// Shards that still failed after retries.
    pub failed: usize,
    /// Shards that needed more than one attempt (whether or not they
    /// eventually succeeded).
    pub retried: usize,
    /// Whole-run wall time in nanoseconds.
    pub wall_ns: u64,
    /// Peak number of shards in flight at once (≤ `jobs`).
    pub peak_occupancy: usize,
    /// Per-shard wall time in nanoseconds, canonical shard order.
    pub shard_wall_ns: Vec<u64>,
    /// Per-shard queue wait (run start → worker claim) in nanoseconds,
    /// canonical shard order.
    pub shard_queue_ns: Vec<u64>,
    /// Per-shard attempts spent, canonical shard order (1 = first try).
    pub shard_attempts: Vec<u32>,
}

impl FleetSummary {
    /// One-line human rendering for stderr.
    pub fn render(&self) -> String {
        let slowest = self.shard_wall_ns.iter().copied().max().unwrap_or(0);
        format!(
            "fleet: {} shards over {} jobs in {:.1} ms (peak occupancy {}, slowest shard {:.1} ms, {} retried, {} failed)",
            self.shards,
            self.jobs,
            self.wall_ns as f64 / 1e6,
            self.peak_occupancy,
            slowest as f64 / 1e6,
            self.retried,
            self.failed,
        )
    }

    /// Multi-line per-shard breakdown (queue wait vs run wall time,
    /// attempts), canonical shard order. Everything here is wall-clock or
    /// scheduling dependent — stderr only, like [`FleetSummary::render`].
    pub fn render_shards(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "  {:<8} {:>12} {:>12} {:>9}\n",
            "shard", "queued-ms", "ran-ms", "attempts"
        ));
        for (i, wall) in self.shard_wall_ns.iter().enumerate() {
            let queued = self.shard_queue_ns.get(i).copied().unwrap_or(0);
            let attempts = self.shard_attempts.get(i).copied().unwrap_or(1);
            out.push_str(&format!(
                "  {:<8} {:>12.2} {:>12.2} {:>9}\n",
                i,
                queued as f64 / 1e6,
                *wall as f64 / 1e6,
                attempts
            ));
        }
        out
    }
}

/// Results of a fleet run: per-shard reports in canonical order plus the
/// scheduling summary.
#[derive(Debug)]
pub struct FleetRun<T> {
    /// One report per submitted shard, index-aligned with the job list.
    pub shards: Vec<ShardReport<T>>,
    /// Scheduling telemetry.
    pub summary: FleetSummary,
}

impl<T> FleetRun<T> {
    /// Shards that failed after all attempts, canonical order.
    pub fn failures(&self) -> impl Iterator<Item = &ShardReport<T>> {
        self.shards.iter().filter(|s| s.outcome.is_err())
    }

    /// Consumes the run, yielding each shard's outcome in canonical order.
    pub fn into_outcomes(self) -> Vec<Result<T, String>> {
        self.shards.into_iter().map(|s| s.outcome).collect()
    }
}

/// Runs `shards` work items through `work` on `config.jobs` workers and
/// returns per-shard outcomes **in canonical shard order** (index 0..shards),
/// regardless of the order workers completed them.
///
/// `work` receives the shard index and must be deterministic in it for the
/// fleet's jobs=N ≡ jobs=1 guarantee to hold. Panics inside `work` are
/// caught (`catch_unwind`), converted to `Err`, retried per
/// [`FleetConfig::retries`], and finally reported in the shard's outcome —
/// a crashing shard never aborts the run.
pub fn run_sharded<T, F>(shards: usize, config: &FleetConfig, work: F) -> FleetRun<T>
where
    T: Send,
    F: Fn(usize) -> Result<T, String> + Sync,
{
    let started = Instant::now();
    let jobs = config.jobs.max(1).min(shards.max(1));
    let next = AtomicUsize::new(0);
    let busy = AtomicUsize::new(0);
    let peak = AtomicUsize::new(0);
    let slots: Mutex<Vec<Option<ShardReport<T>>>> = Mutex::new((0..shards).map(|_| None).collect());

    let worker = || loop {
        let index = next.fetch_add(1, Ordering::Relaxed);
        if index >= shards {
            break;
        }
        let queued = started.elapsed();
        let occupancy = busy.fetch_add(1, Ordering::Relaxed) + 1;
        peak.fetch_max(occupancy, Ordering::Relaxed);
        let report = run_one(index, queued, config.retries, &work);
        busy.fetch_sub(1, Ordering::Relaxed);
        slots.lock().unwrap()[index] = Some(report);
    };

    if jobs == 1 {
        worker();
    } else {
        std::thread::scope(|scope| {
            for _ in 0..jobs {
                scope.spawn(worker);
            }
        });
    }

    let shards_out: Vec<ShardReport<T>> = slots
        .into_inner()
        .unwrap()
        .into_iter()
        .map(|s| s.expect("every shard index was claimed exactly once"))
        .collect();
    let summary = FleetSummary {
        jobs,
        shards,
        failed: shards_out.iter().filter(|s| s.outcome.is_err()).count(),
        retried: shards_out.iter().filter(|s| s.attempts > 1).count(),
        wall_ns: duration_ns(started.elapsed()),
        peak_occupancy: peak.load(Ordering::Relaxed),
        shard_wall_ns: shards_out.iter().map(|s| duration_ns(s.wall)).collect(),
        shard_queue_ns: shards_out.iter().map(|s| duration_ns(s.queued)).collect(),
        shard_attempts: shards_out.iter().map(|s| s.attempts).collect(),
    };
    FleetRun { shards: shards_out, summary }
}

fn run_one<T, F>(index: usize, queued: Duration, retries: u32, work: &F) -> ShardReport<T>
where
    F: Fn(usize) -> Result<T, String>,
{
    let started = Instant::now();
    let mut attempts = 0;
    let outcome = loop {
        attempts += 1;
        match attempt(index, work) {
            Ok(value) => break Ok(value),
            Err(e) if attempts > retries => break Err(e),
            Err(_) => continue,
        }
    };
    ShardReport { index, outcome, attempts, wall: started.elapsed(), queued }
}

/// One attempt: the closure's own `Err` and a caught panic both become
/// `Err(message)`.
fn attempt<T, F>(index: usize, work: &F) -> Result<T, String>
where
    F: Fn(usize) -> Result<T, String>,
{
    match catch_unwind(AssertUnwindSafe(|| work(index))) {
        Ok(result) => result,
        Err(payload) => Err(format!("panic: {}", panic_message(&payload))),
    }
}

fn panic_message(payload: &Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

fn duration_ns(d: Duration) -> u64 {
    u64::try_from(d.as_nanos()).unwrap_or(u64::MAX)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU32;

    #[test]
    fn results_come_back_in_canonical_order() {
        for jobs in [1, 4] {
            let run = run_sharded(17, &FleetConfig::with_jobs(jobs), |i| Ok(i * i));
            assert_eq!(run.summary.shards, 17);
            assert_eq!(run.summary.failed, 0);
            let values: Vec<usize> = run.into_outcomes().into_iter().map(Result::unwrap).collect();
            assert_eq!(values, (0..17).map(|i| i * i).collect::<Vec<_>>());
        }
    }

    #[test]
    fn panicking_shard_is_isolated_retried_and_flagged() {
        let run = run_sharded(5, &FleetConfig::with_jobs(4), |i| {
            if i == 2 {
                panic!("shard {i} exploded");
            }
            Ok(i)
        });
        assert_eq!(run.summary.failed, 1);
        assert_eq!(run.summary.retried, 1);
        let bad = &run.shards[2];
        assert_eq!(bad.attempts, 2, "failed shard is retried exactly once");
        assert!(bad.outcome.as_ref().unwrap_err().contains("shard 2 exploded"));
        for (i, s) in run.shards.iter().enumerate() {
            if i != 2 {
                assert_eq!(*s.outcome.as_ref().unwrap(), i);
            }
        }
    }

    #[test]
    fn transient_failure_succeeds_on_retry() {
        let first = AtomicU32::new(0);
        let run = run_sharded(1, &FleetConfig::sequential(), |_| {
            if first.fetch_add(1, Ordering::Relaxed) == 0 {
                Err("transient".to_owned())
            } else {
                Ok(42u32)
            }
        });
        assert_eq!(run.summary.failed, 0);
        assert_eq!(run.summary.retried, 1);
        assert_eq!(run.shards[0].attempts, 2);
        assert_eq!(*run.shards[0].outcome.as_ref().unwrap(), 42);
    }

    #[test]
    fn occupancy_is_bounded_by_jobs_and_shards() {
        let run = run_sharded(8, &FleetConfig::with_jobs(4), Ok);
        assert!(run.summary.peak_occupancy >= 1);
        assert!(run.summary.peak_occupancy <= 4);
        let run = run_sharded(2, &FleetConfig::with_jobs(16), Ok);
        assert!(run.summary.jobs <= 2, "workers are capped at the shard count");
        assert_eq!(run.summary.shard_wall_ns.len(), 2);
    }

    #[test]
    fn per_shard_breakdown_tracks_queue_wait_and_attempts() {
        let first = AtomicU32::new(0);
        let run = run_sharded(3, &FleetConfig::sequential(), |i| {
            if i == 1 && first.fetch_add(1, Ordering::Relaxed) == 0 {
                Err("transient".to_owned())
            } else {
                Ok(i)
            }
        });
        let s = &run.summary;
        assert_eq!(s.shard_queue_ns.len(), 3);
        assert_eq!(s.shard_attempts, vec![1, 2, 1]);
        // Sequential run: later shards queue at least as long as earlier
        // ones (claim times are monotonic on one worker).
        assert!(s.shard_queue_ns[2] >= s.shard_queue_ns[0]);
        let table = s.render_shards();
        assert_eq!(table.lines().count(), 4, "header plus one row per shard");
        assert!(table.contains("queued-ms"));
        assert!(table.contains("attempts"));
    }

    #[test]
    fn zero_shards_is_a_clean_empty_run() {
        let run = run_sharded(0, &FleetConfig::with_jobs(4), |_| Ok(0u8));
        assert!(run.shards.is_empty());
        assert_eq!(run.summary.failed, 0);
        assert!(run.summary.render().contains("0 shards"));
    }

    #[test]
    fn config_parses_jobs_flag_and_rejects_zero() {
        let args = |v: &[&str]| v.iter().map(|s| (*s).to_owned()).collect::<Vec<_>>();
        assert_eq!(FleetConfig::from_args(&args(&["--jobs", "4"])).unwrap().jobs, 4);
        assert_eq!(FleetConfig::from_args(&args(&["--jobs=2"])).unwrap().jobs, 2);
        assert!(FleetConfig::from_args(&args(&["--jobs", "0"])).is_err());
        assert!(FleetConfig::from_args(&args(&["--jobs"])).is_err());
    }
}
