//! Value profiles collected by the lower tiers and consumed by DFG/FTL.
//!
//! The paper's checks exist precisely because higher tiers *speculate* on
//! these profiles: a `Type` check guards an observed-kind speculation, a
//! `Property` check guards an observed-shape speculation, an `Overflow`
//! check guards the int32 representation, and `Bounds`/hole checks guard
//! observed array behaviour.

use nomap_bytecode::{FuncId, SiteId};

use crate::shape::ShapeId;

/// Coarse runtime kind of a value, as observed at a profiling site.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ValueKind {
    /// int32 number.
    Int32,
    /// double number.
    Double,
    /// boolean.
    Bool,
    /// string cell.
    Str,
    /// plain object cell.
    Object,
    /// array cell.
    Array,
    /// `undefined`, `null` or the hole sentinel.
    Other,
}

impl ValueKind {
    fn bit(self) -> u8 {
        match self {
            ValueKind::Int32 => 1,
            ValueKind::Double => 2,
            ValueKind::Bool => 4,
            ValueKind::Str => 8,
            ValueKind::Object => 16,
            ValueKind::Array => 32,
            ValueKind::Other => 64,
        }
    }
}

/// A set of observed [`ValueKind`]s.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct KindSet(u8);

impl KindSet {
    /// The empty set.
    pub const EMPTY: KindSet = KindSet(0);

    /// Adds a kind.
    pub fn insert(&mut self, k: ValueKind) {
        self.0 |= k.bit();
    }

    /// Membership test.
    pub fn contains(self, k: ValueKind) -> bool {
        self.0 & k.bit() != 0
    }

    /// True when no kinds were observed.
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// True when exactly `k` was observed.
    pub fn is_only(self, k: ValueKind) -> bool {
        self.0 == k.bit()
    }

    /// True when only numeric kinds (int32/double) were observed.
    pub fn is_numeric(self) -> bool {
        !self.is_empty() && self.0 & !(1 | 2) == 0
    }

    /// True when only int32 was observed.
    pub fn is_int32_only(self) -> bool {
        self.0 == 1
    }
}

/// Profile for one bytecode site.
#[derive(Debug, Clone, Default)]
pub struct SiteProfile {
    /// Times the site executed.
    pub count: u64,
    /// Kinds observed for the first operand (or the loaded value).
    pub kinds_a: KindSet,
    /// Kinds observed for the second operand.
    pub kinds_b: KindSet,
    /// Kinds observed for the result.
    pub result: KindSet,
    /// An int32 fast path overflowed into a double here.
    pub overflowed: bool,
    /// Object shapes observed (property sites); capped at 4.
    pub shapes: Vec<ShapeId>,
    /// More than 4 shapes were seen.
    pub megamorphic: bool,
    /// Slot of the property under the recorded monomorphic shape.
    pub slot: Option<u32>,
    /// An array read hit a hole.
    pub saw_hole: bool,
    /// An array access went out of bounds.
    pub saw_oob: bool,
    /// A property write caused a shape transition here.
    pub saw_transition: bool,
}

impl SiteProfile {
    /// Records an observed shape.
    pub fn record_shape(&mut self, s: ShapeId) {
        if self.megamorphic || self.shapes.contains(&s) {
            return;
        }
        if self.shapes.len() >= 4 {
            self.megamorphic = true;
        } else {
            self.shapes.push(s);
        }
    }

    /// The single shape observed, if the site is monomorphic.
    pub fn monomorphic_shape(&self) -> Option<ShapeId> {
        if !self.megamorphic && self.shapes.len() == 1 {
            Some(self.shapes[0])
        } else {
            None
        }
    }
}

/// Profile for one function.
#[derive(Debug, Clone, Default)]
pub struct FunctionProfile {
    /// Completed invocations.
    pub call_count: u64,
    /// Loop back edges taken (drives OSR-style tier-up for hot loops).
    pub back_edges: u64,
    /// Deoptimizations from optimized code.
    pub deopt_count: u64,
    /// Transactional capacity aborts observed (drives the §V-C ladder).
    pub capacity_aborts: u64,
    /// Per-site profiles.
    pub sites: Vec<SiteProfile>,
}

/// All function profiles, indexed by [`FuncId`].
#[derive(Debug, Clone, Default)]
pub struct ProfileStore {
    funcs: Vec<FunctionProfile>,
}

impl ProfileStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    fn ensure(&mut self, f: FuncId) {
        if self.funcs.len() <= f.0 as usize {
            self.funcs.resize_with(f.0 as usize + 1, FunctionProfile::default);
        }
    }

    /// Mutable profile for `f`.
    pub fn func_mut(&mut self, f: FuncId) -> &mut FunctionProfile {
        self.ensure(f);
        &mut self.funcs[f.0 as usize]
    }

    /// Profile for `f` (empty default if never touched).
    pub fn func(&self, f: FuncId) -> FunctionProfile {
        self.funcs.get(f.0 as usize).cloned().unwrap_or_default()
    }

    /// Shared view of `f`'s profile, if present.
    pub fn func_ref(&self, f: FuncId) -> Option<&FunctionProfile> {
        self.funcs.get(f.0 as usize)
    }

    /// Mutable site profile for `(f, s)`.
    pub fn site_mut(&mut self, f: FuncId, s: SiteId) -> &mut SiteProfile {
        self.ensure(f);
        let fp = &mut self.funcs[f.0 as usize];
        if fp.sites.len() <= s.0 as usize {
            fp.sites.resize_with(s.0 as usize + 1, SiteProfile::default);
        }
        &mut fp.sites[s.0 as usize]
    }

    /// Site profile for `(f, s)`, if recorded.
    pub fn site(&self, f: FuncId, s: SiteId) -> Option<&SiteProfile> {
        self.funcs.get(f.0 as usize)?.sites.get(s.0 as usize)
    }

    /// Sum of deopt counts over all functions (paper §III-A2).
    pub fn total_deopts(&self) -> u64 {
        self.funcs.iter().map(|f| f.deopt_count).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kindset_operations() {
        let mut k = KindSet::EMPTY;
        assert!(k.is_empty());
        k.insert(ValueKind::Int32);
        assert!(k.is_int32_only() && k.is_numeric());
        k.insert(ValueKind::Double);
        assert!(k.is_numeric() && !k.is_int32_only());
        k.insert(ValueKind::Str);
        assert!(!k.is_numeric());
        assert!(k.contains(ValueKind::Str));
    }

    #[test]
    fn shape_recording_caps_at_megamorphic() {
        let mut s = SiteProfile::default();
        s.record_shape(ShapeId(1));
        s.record_shape(ShapeId(1));
        assert_eq!(s.monomorphic_shape(), Some(ShapeId(1)));
        for i in 2..=5 {
            s.record_shape(ShapeId(i));
        }
        assert!(s.megamorphic);
        assert_eq!(s.monomorphic_shape(), None);
    }

    #[test]
    fn store_grows_on_demand() {
        let mut p = ProfileStore::new();
        p.site_mut(FuncId(3), SiteId(5)).count += 1;
        assert_eq!(p.site(FuncId(3), SiteId(5)).unwrap().count, 1);
        assert!(p.site(FuncId(2), SiteId(0)).is_none());
        p.func_mut(FuncId(1)).deopt_count = 2;
        p.func_mut(FuncId(3)).deopt_count = 5;
        assert_eq!(p.total_deopts(), 7);
    }
}
