//! NaN-boxed 64-bit value encoding, modelled on JavaScriptCore's `JSValue`.
//!
//! Encoding (high 16 bits distinguish the classes):
//!
//! | Pattern                     | Meaning                               |
//! |-----------------------------|---------------------------------------|
//! | `0xFFFF_xxxx_xxxx_xxxx`     | int32 (payload in the low 32 bits)    |
//! | `0x0001.. ..= 0xFFF1..`     | double, stored as `bits + 2^48`       |
//! | `0x0000_0000_0000_000x`     | specials (undefined/null/bools/hole)  |
//! | `0x0000_...` ≥ `0x1000`     | cell: simulated-memory word address   |
//!
//! All NaNs are canonicalized on encode so no double collides with the
//! int32 tag.

use std::fmt;

/// Offset added to raw `f64` bits so encoded doubles never collide with
/// cells (high word zero) or int32s (high word `0xFFFF`).
const DOUBLE_OFFSET: u64 = 0x0001_0000_0000_0000;
/// Int32 tag in the high 16 bits.
const INT32_TAG: u64 = 0xFFFF_0000_0000_0000;
/// Canonical quiet-NaN bit pattern.
const CANON_NAN: u64 = 0x7FF8_0000_0000_0000;

/// Lowest valid cell (simulated word) address; special constants live below.
pub(crate) const MIN_CELL_ADDR: u64 = 0x1000;

/// A NaN-boxed MiniJS value.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Value(u64);

impl Value {
    /// `undefined`.
    pub const UNDEFINED: Value = Value(0x0A);
    /// `null`.
    pub const NULL: Value = Value(0x02);
    /// `true`.
    pub const TRUE: Value = Value(0x07);
    /// `false`.
    pub const FALSE: Value = Value(0x06);
    /// Array-hole sentinel (never observable from MiniJS code).
    pub const HOLE: Value = Value(0x0C);

    /// Builds a value from raw encoded bits.
    #[inline]
    pub fn from_bits(bits: u64) -> Value {
        Value(bits)
    }

    /// Raw encoded bits.
    #[inline]
    pub fn to_bits(self) -> u64 {
        self.0
    }

    /// Encodes an int32.
    #[inline]
    pub fn new_int32(v: i32) -> Value {
        Value(INT32_TAG | (v as u32 as u64))
    }

    /// Encodes a double (NaNs canonicalized).
    #[inline]
    pub fn new_double(v: f64) -> Value {
        let bits = if v.is_nan() { CANON_NAN } else { v.to_bits() };
        Value(bits + DOUBLE_OFFSET)
    }

    /// Encodes a number, preferring the int32 representation when exact
    /// (this matches the engine behaviour the paper's overflow checks
    /// protect: ints until overflow, doubles after).
    #[inline]
    pub fn new_number(v: f64) -> Value {
        let as_int = v as i32;
        if as_int as f64 == v && !(v == 0.0 && v.is_sign_negative()) {
            Value::new_int32(as_int)
        } else {
            Value::new_double(v)
        }
    }

    /// Encodes a boolean.
    #[inline]
    pub fn new_bool(v: bool) -> Value {
        if v {
            Value::TRUE
        } else {
            Value::FALSE
        }
    }

    /// Encodes a cell (simulated-memory word address).
    ///
    /// # Panics
    ///
    /// Panics if `addr` is below the minimum cell address or ≥ 2^48.
    #[inline]
    pub fn new_cell(addr: u64) -> Value {
        assert!(
            (MIN_CELL_ADDR..DOUBLE_OFFSET).contains(&addr),
            "cell address {addr:#x} out of range"
        );
        Value(addr)
    }

    /// True for the int32 representation.
    #[inline]
    pub fn is_int32(self) -> bool {
        self.0 >= INT32_TAG
    }

    /// Decodes an int32.
    ///
    /// # Panics
    ///
    /// Panics if the value is not an int32.
    #[inline]
    pub fn as_int32(self) -> i32 {
        debug_assert!(self.is_int32());
        self.0 as u32 as i32
    }

    /// True for the double representation (excludes int32).
    #[inline]
    pub fn is_double(self) -> bool {
        (DOUBLE_OFFSET..INT32_TAG).contains(&self.0)
    }

    /// True for any number (int32 or double).
    #[inline]
    pub fn is_number(self) -> bool {
        self.0 >= DOUBLE_OFFSET
    }

    /// Decodes a double.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if the value is not a double.
    #[inline]
    pub fn as_double(self) -> f64 {
        debug_assert!(self.is_double());
        f64::from_bits(self.0 - DOUBLE_OFFSET)
    }

    /// Numeric value of an int32 or double.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if the value is not a number.
    #[inline]
    pub fn as_number(self) -> f64 {
        if self.is_int32() {
            self.as_int32() as f64
        } else {
            self.as_double()
        }
    }

    /// True for cells (object/array/string references).
    #[inline]
    pub fn is_cell(self) -> bool {
        (MIN_CELL_ADDR..DOUBLE_OFFSET).contains(&self.0)
    }

    /// Decodes a cell address.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if the value is not a cell.
    #[inline]
    pub fn as_cell(self) -> u64 {
        debug_assert!(self.is_cell());
        self.0
    }

    /// True for `true`/`false`.
    #[inline]
    pub fn is_bool(self) -> bool {
        self == Value::TRUE || self == Value::FALSE
    }

    /// Decodes a boolean.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if the value is not a boolean.
    #[inline]
    pub fn as_bool(self) -> bool {
        debug_assert!(self.is_bool());
        self == Value::TRUE
    }

    /// True for `undefined`.
    #[inline]
    pub fn is_undefined(self) -> bool {
        self == Value::UNDEFINED
    }

    /// True for `null`.
    #[inline]
    pub fn is_null(self) -> bool {
        self == Value::NULL
    }

    /// True for the array-hole sentinel.
    #[inline]
    pub fn is_hole(self) -> bool {
        self == Value::HOLE
    }
}

impl fmt::Debug for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_int32() {
            write!(f, "Int32({})", self.as_int32())
        } else if self.is_double() {
            write!(f, "Double({})", self.as_double())
        } else if self.is_cell() {
            write!(f, "Cell({:#x})", self.as_cell())
        } else if *self == Value::UNDEFINED {
            write!(f, "Undefined")
        } else if *self == Value::NULL {
            write!(f, "Null")
        } else if self.is_bool() {
            write!(f, "Bool({})", self.as_bool())
        } else if self.is_hole() {
            write!(f, "Hole")
        } else {
            write!(f, "Value({:#x})", self.0)
        }
    }
}

impl From<i32> for Value {
    fn from(v: i32) -> Value {
        Value::new_int32(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Value {
        Value::new_number(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Value {
        Value::new_bool(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn int32_roundtrip_extremes() {
        for v in [0, 1, -1, i32::MIN, i32::MAX] {
            let e = Value::new_int32(v);
            assert!(e.is_int32());
            assert!(!e.is_double());
            assert!(!e.is_cell());
            assert_eq!(e.as_int32(), v);
        }
    }

    #[test]
    fn double_roundtrip_specials() {
        for v in [0.5, -0.0, f64::INFINITY, f64::NEG_INFINITY, 1e308, -1e-308] {
            let e = Value::new_double(v);
            assert!(e.is_double(), "{v} not double: {e:?}");
            assert_eq!(e.as_double().to_bits(), v.to_bits());
        }
        let nan = Value::new_double(f64::NAN);
        assert!(nan.is_double());
        assert!(nan.as_double().is_nan());
    }

    #[test]
    fn new_number_prefers_int32() {
        assert!(Value::new_number(7.0).is_int32());
        assert!(Value::new_number(7.5).is_double());
        assert!(Value::new_number(-0.0).is_double());
        assert!(Value::new_number(2147483648.0).is_double()); // i32::MAX + 1
        assert!(Value::new_number(2147483647.0).is_int32());
    }

    #[test]
    fn specials_are_distinct() {
        let all = [Value::UNDEFINED, Value::NULL, Value::TRUE, Value::FALSE, Value::HOLE];
        for (i, a) in all.iter().enumerate() {
            for (j, b) in all.iter().enumerate() {
                assert_eq!(i == j, a == b);
            }
            assert!(!a.is_cell() && !a.is_number());
        }
    }

    #[test]
    fn cell_roundtrip() {
        let c = Value::new_cell(0x1234_5678);
        assert!(c.is_cell());
        assert_eq!(c.as_cell(), 0x1234_5678);
        assert!(!c.is_number());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn small_cell_address_panics() {
        let _ = Value::new_cell(0x10);
    }

    #[test]
    fn prop_int32_roundtrip() {
        let mut rng = crate::rng::Lcg::new(1);
        for _ in 0..4096 {
            let v = rng.next_u64() as u32 as i32;
            assert_eq!(Value::new_int32(v).as_int32(), v);
        }
    }

    #[test]
    fn prop_double_roundtrip() {
        let mut rng = crate::rng::Lcg::new(2);
        for _ in 0..4096 {
            let v = f64::from_bits(rng.next_u64());
            let e = Value::new_double(v);
            assert!(e.is_double());
            if v.is_nan() {
                assert!(e.as_double().is_nan());
            } else {
                assert_eq!(e.as_double().to_bits(), v.to_bits());
            }
        }
    }

    #[test]
    fn prop_classes_are_exclusive() {
        let mut rng = crate::rng::Lcg::new(3);
        for _ in 0..4096 {
            let v = Value::from_bits(rng.next_u64());
            let classes = v.is_int32() as u8 + v.is_double() as u8 + v.is_cell() as u8;
            assert!(classes <= 1);
        }
    }

    #[test]
    fn prop_number_matches_f64() {
        let mut rng = crate::rng::Lcg::new(4);
        for _ in 0..4096 {
            let v = f64::from_bits(rng.next_u64());
            let e = Value::new_number(v);
            if v.is_nan() {
                assert!(e.as_number().is_nan());
            } else {
                assert_eq!(e.as_number(), v);
            }
        }
    }
}
