//! Dynamic-instruction cost model for runtime ("C runtime") work.
//!
//! Generated machine code counts its own instructions one by one; work done
//! inside Rust-implemented runtime helpers is *charged* using these
//! constants, calibrated so the tier-over-tier speedups land in the range of
//! the paper's Table I. They are plain public fields so ablation benches can
//! re-calibrate.

/// Instruction charges for runtime operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Costs {
    /// Interpreter per-opcode dispatch overhead.
    pub interp_dispatch: u64,
    /// Call/return linkage of a runtime helper from jitted code.
    pub call_overhead: u64,
    /// Generic `+` (type dispatch, boxing).
    pub generic_add: u64,
    /// Generic `-`, `*`, `/`, `%`.
    pub generic_arith: u64,
    /// Generic comparison.
    pub generic_compare: u64,
    /// Generic bitwise/shift (two ToInt32 coercions).
    pub generic_bitwise: u64,
    /// Generic unary operator.
    pub generic_unary: u64,
    /// Property read through the shape table.
    pub get_prop: u64,
    /// Property write (no transition).
    pub put_prop: u64,
    /// Property write causing a shape transition.
    pub shape_transition: u64,
    /// Array element read (bounds + hole handling).
    pub get_index: u64,
    /// Array element write (in bounds).
    pub put_index: u64,
    /// Array append / elongation base cost.
    pub array_grow_base: u64,
    /// Per-word cost while copying during array/property growth.
    pub grow_per_word: u64,
    /// Object allocation.
    pub alloc_object: u64,
    /// Array allocation base.
    pub alloc_array: u64,
    /// Simple math intrinsic (sqrt/floor/abs/...).
    pub intrinsic_math: u64,
    /// Transcendental intrinsic (sin/cos/exp/log/pow/atan2).
    pub intrinsic_trig: u64,
    /// String intrinsic base cost.
    pub intrinsic_string: u64,
    /// Per-character cost of string operations.
    pub string_per_char: u64,
    /// `print` call.
    pub print: u64,
    /// JS-level call frame setup in the runtime (interpreter tier).
    pub js_call: u64,
    /// ToBoolean coercion.
    pub to_boolean: u64,
    /// Global read/write.
    pub global_access: u64,
}

impl Default for Costs {
    fn default() -> Self {
        Costs {
            interp_dispatch: 28,
            call_overhead: 6,
            generic_add: 16,
            generic_arith: 18,
            generic_compare: 12,
            generic_bitwise: 14,
            generic_unary: 10,
            get_prop: 20,
            put_prop: 24,
            shape_transition: 60,
            get_index: 14,
            put_index: 18,
            array_grow_base: 30,
            grow_per_word: 1,
            alloc_object: 40,
            alloc_array: 40,
            intrinsic_math: 20,
            intrinsic_trig: 45,
            intrinsic_string: 25,
            string_per_char: 1,
            print: 60,
            js_call: 10,
            to_boolean: 6,
            global_access: 4,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_nonzero() {
        let c = Costs::default();
        assert!(c.interp_dispatch > c.call_overhead);
        assert!(c.shape_transition > c.put_prop);
        assert!(c.intrinsic_trig > c.intrinsic_math);
    }
}
