//! Heap cell layouts and allocation.
//!
//! * Object cell: `[header, storage_ptr, capacity]`; properties live
//!   out-of-line at `storage_ptr + slot`.
//! * Array cell: `[header, length, capacity, storage_ptr]`; elements live at
//!   `storage_ptr + i`, holes are the [`Value::HOLE`] sentinel.
//! * String cell: `[header, string_id, length]`; contents are interned on
//!   the Rust side.
//!
//! The header word packs the cell kind in the low 3 bits and (for objects)
//! the [`ShapeId`] above them — one word, one load, exactly what an FTL
//! property/type check reads.

use crate::semantics::RuntimeError;
use crate::shape::ShapeId;
use crate::strings::StringId;
use crate::value::Value;
use crate::Runtime;

/// Offset of an object's out-of-line property storage pointer.
pub const OBJ_STORAGE: u64 = 1;
/// Offset of an object's property storage capacity.
pub(crate) const OBJ_CAP: u64 = 2;
/// Offset of an array's length.
pub const ARR_LEN: u64 = 1;
/// Offset of an array's element capacity.
pub const ARR_CAP: u64 = 2;
/// Offset of an array's element storage pointer.
pub const ARR_STORAGE: u64 = 3;
/// Offset of a string's id.
pub(crate) const STR_ID: u64 = 1;
/// Offset of a string's length.
pub(crate) const STR_LEN: u64 = 2;

/// Number of words in an object cell.
pub fn object_words() -> u64 {
    3
}

/// Number of words in an array cell.
pub fn array_words() -> u64 {
    4
}

/// Kind of a heap cell, stored in the header's low bits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum HeapKind {
    /// Plain object.
    Object = 1,
    /// Array.
    Array = 2,
    /// String.
    Str = 3,
}

impl HeapKind {
    fn from_bits(bits: u64) -> Option<HeapKind> {
        match bits & 0x7 {
            1 => Some(HeapKind::Object),
            2 => Some(HeapKind::Array),
            3 => Some(HeapKind::Str),
            _ => None,
        }
    }
}

/// Packs a header word (public so code generators can embed the expected
/// header as a check immediate).
pub fn pack_header(kind: HeapKind, shape: ShapeId) -> u64 {
    (kind as u64) | ((shape.0 as u64) << 3)
}

/// Extracts the shape from a header word.
pub(crate) fn header_shape(header: u64) -> ShapeId {
    ShapeId((header >> 3) as u32)
}

impl Runtime {
    /// Allocates a fresh empty object, charging allocation cost.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::OutOfMemory`] when the simulated heap is
    /// exhausted.
    pub fn new_object(&mut self) -> Result<Value, RuntimeError> {
        let charge = self.costs.alloc_object;
        self.charge(charge);
        let cell = self.mem.alloc(object_words()).ok_or(RuntimeError::OutOfMemory)?;
        let storage = self.mem.alloc(4).ok_or(RuntimeError::OutOfMemory)?;
        self.mem.write(cell, pack_header(HeapKind::Object, ShapeId::ROOT));
        self.mem.write(cell + OBJ_STORAGE, storage);
        self.mem.write(cell + OBJ_CAP, 4);
        Ok(Value::new_cell(cell))
    }

    /// Allocates an array of `len` holes, charging allocation cost.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::OutOfMemory`] when the simulated heap is
    /// exhausted.
    pub fn new_array(&mut self, len: u32) -> Result<Value, RuntimeError> {
        let cap = (len as u64).max(4);
        let charge = self.costs.alloc_array + self.costs.grow_per_word * len as u64;
        self.charge(charge);
        let cell = self.mem.alloc(array_words()).ok_or(RuntimeError::OutOfMemory)?;
        let storage = self.mem.alloc(cap).ok_or(RuntimeError::OutOfMemory)?;
        self.mem.write(cell, pack_header(HeapKind::Array, ShapeId::ROOT));
        self.mem.write(cell + ARR_LEN, len as u64);
        self.mem.write(cell + ARR_CAP, cap);
        self.mem.write(cell + ARR_STORAGE, storage);
        for i in 0..len as u64 {
            self.mem.write(storage + i, Value::HOLE.to_bits());
        }
        Ok(Value::new_cell(cell))
    }

    /// Returns the (cached) heap cell for interned string `id`.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::OutOfMemory`] when the simulated heap is
    /// exhausted.
    pub fn string_value(&mut self, id: StringId) -> Result<Value, RuntimeError> {
        if let Some(addr) = self.strings.cell(id) {
            return Ok(Value::new_cell(addr));
        }
        let cell = self.mem.alloc(3).ok_or(RuntimeError::OutOfMemory)?;
        let len = self.strings.get(id).chars().count() as u64;
        self.mem.write(cell, pack_header(HeapKind::Str, ShapeId::ROOT));
        self.mem.write(cell + STR_ID, id.0 as u64);
        self.mem.write(cell + STR_LEN, len);
        self.strings.set_cell(id, cell);
        Ok(Value::new_cell(cell))
    }

    /// Kind of the heap cell at `addr` (un-logged header peek).
    pub fn heap_kind(&self, addr: u64) -> Option<HeapKind> {
        HeapKind::from_bits(self.mem.peek(addr))
    }

    /// Shape of the object at `addr` (un-logged header peek).
    pub fn shape_of(&self, addr: u64) -> ShapeId {
        header_shape(self.mem.peek(addr))
    }

    /// String id of the string cell at `addr`.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) when the cell is not a string.
    pub fn string_id_of(&self, addr: u64) -> StringId {
        debug_assert_eq!(self.heap_kind(addr), Some(HeapKind::Str));
        StringId(self.mem.peek(addr + STR_ID) as u32)
    }

    /// Rust-side contents of the string value `v`.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) when `v` is not a string cell.
    pub fn string_contents(&self, v: Value) -> &str {
        self.strings.get(self.string_id_of(v.as_cell()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn object_layout() {
        let mut rt = Runtime::new();
        let o = rt.new_object().unwrap();
        let addr = o.as_cell();
        assert_eq!(rt.heap_kind(addr), Some(HeapKind::Object));
        assert_eq!(rt.shape_of(addr), ShapeId::ROOT);
        assert!(rt.take_charged() > 0);
    }

    #[test]
    fn array_layout_and_holes() {
        let mut rt = Runtime::new();
        let a = rt.new_array(3).unwrap();
        let addr = a.as_cell();
        assert_eq!(rt.heap_kind(addr), Some(HeapKind::Array));
        assert_eq!(rt.mem.peek(addr + ARR_LEN), 3);
        let storage = rt.mem.peek(addr + ARR_STORAGE);
        for i in 0..3 {
            assert!(Value::from_bits(rt.mem.peek(storage + i)).is_hole());
        }
    }

    #[test]
    fn string_cells_are_cached() {
        let mut rt = Runtime::new();
        let id = rt.strings.intern("hello");
        let a = rt.string_value(id).unwrap();
        let b = rt.string_value(id).unwrap();
        assert_eq!(a, b);
        assert_eq!(rt.string_contents(a), "hello");
        assert_eq!(rt.mem.peek(a.as_cell() + STR_LEN), 5);
    }

    #[test]
    fn header_pack_roundtrip() {
        let h = pack_header(HeapKind::Object, ShapeId(77));
        assert_eq!(HeapKind::from_bits(h), Some(HeapKind::Object));
        assert_eq!(header_shape(h), ShapeId(77));
    }
}
