//! Runtime system for the NoMap VM: value representation, simulated memory,
//! hidden classes, objects/arrays/strings, generic (un-specialized) operation
//! semantics, value profiling and the runtime-call cost model.
//!
//! Everything observable by JavaScript code lives in a **simulated address
//! space** ([`Memory`]) so that the machine tier can model caches and HTM
//! write footprints: objects, arrays, property storage, array element
//! storage, globals and Baseline stack frames all occupy simulated words.
//!
//! The generic semantics in [`Runtime`] are the single source of truth for
//! MiniJS behaviour. The interpreter calls them directly; Baseline machine
//! code calls them through [`RuntimeFn`]; the DFG/FTL tiers emit specialized
//! inline code guarded by checks and *deoptimize* into code that calls them
//! whenever a speculation fails — exactly the structure the paper studies.

mod costs;
mod globals;
mod heap;
mod object;
mod profile;
mod rng;
mod semantics;
mod shape;
mod strings;
mod value;

pub use costs::Costs;
pub use globals::Globals;
pub use heap::{Access, Memory, Region, WORD_BYTES};
pub use object::{
    array_words, object_words, pack_header, HeapKind, ARR_CAP, ARR_LEN, ARR_STORAGE, OBJ_STORAGE,
};
pub use profile::{FunctionProfile, KindSet, ProfileStore, SiteProfile, ValueKind};
pub use rng::Lcg;
pub use semantics::{HeapEffect, RetTag, RuntimeError, RuntimeFn, RuntimeSig};
pub use shape::{ShapeId, ShapeTable};
pub use strings::{StringId, StringTable};
pub use value::Value;

use nomap_bytecode::{FuncId, SiteId};

/// The shared runtime: simulated memory plus all side tables, the profile
/// store and the charged-instruction accumulator.
///
/// # Example
///
/// ```
/// use nomap_runtime::{Runtime, Value};
///
/// let mut rt = Runtime::new();
/// let arr = rt.new_array(4)?;
/// rt.put_index(arr, Value::new_int32(0), Value::new_int32(41), None)?;
/// let v = rt.get_index(arr, Value::new_int32(0), None)?;
/// let sum = rt.generic_add(v, Value::new_int32(1), None)?;
/// assert_eq!(sum, Value::new_int32(42));
/// # Ok::<(), nomap_runtime::RuntimeError>(())
/// ```
#[derive(Debug)]
pub struct Runtime {
    /// Simulated memory (heap, stack, globals regions).
    pub mem: Memory,
    /// Hidden-class table.
    pub shapes: ShapeTable,
    /// Runtime string table.
    pub strings: StringTable,
    /// Global variable slots.
    pub globals: Globals,
    /// Deterministic PRNG backing `Math.random`.
    pub rng: Lcg,
    /// Value profiles, filled by the profiling tiers.
    pub profiles: ProfileStore,
    /// Instruction-cost model for runtime calls.
    pub costs: Costs,
    /// Output buffer written by `print`.
    pub output: String,
    /// Interned id of the well-known `length` name (set by the VM once the
    /// program's interner exists; property reads compare against it).
    pub length_name: Option<nomap_bytecode::NameId>,
    charged: u64,
}

impl Default for Runtime {
    fn default() -> Self {
        Self::new()
    }
}

impl Runtime {
    /// Creates a fresh runtime with default costs and RNG seed.
    pub fn new() -> Self {
        Runtime {
            mem: Memory::new(),
            shapes: ShapeTable::new(),
            strings: StringTable::new(),
            globals: Globals::new(),
            rng: Lcg::new(0x9E37_79B9_7F4A_7C15),
            profiles: ProfileStore::new(),
            costs: Costs::default(),
            output: String::new(),
            length_name: None,
            charged: 0,
        }
    }

    /// Adds `n` to the charged dynamic-instruction counter. Runtime
    /// semantics call this to account for the work a native ("C runtime")
    /// implementation would execute.
    #[inline]
    pub fn charge(&mut self, n: u64) {
        self.charged += n;
    }

    /// Returns and resets the charged-instruction counter. The executing
    /// tier attributes these instructions (to the `NoFTL` category in the
    /// paper's breakdown).
    #[inline]
    pub fn take_charged(&mut self) -> u64 {
        std::mem::take(&mut self.charged)
    }

    /// Convenience handle for profile recording at `func`/`site`.
    #[inline]
    pub(crate) fn site_profile(
        &mut self,
        site: Option<(FuncId, SiteId)>,
    ) -> Option<&mut SiteProfile> {
        site.map(|(f, s)| self.profiles.site_mut(f, s))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charge_accumulates_and_resets() {
        let mut rt = Runtime::new();
        rt.charge(5);
        rt.charge(7);
        assert_eq!(rt.take_charged(), 12);
        assert_eq!(rt.take_charged(), 0);
    }
}
