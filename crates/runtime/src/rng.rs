//! Deterministic PRNG backing `Math.random`, so every experiment run is
//! exactly reproducible (the paper runs each benchmark many times; we need
//! identical instruction counts across configurations).

/// A 64-bit splitmix-style generator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Lcg {
    state: u64,
}

impl Lcg {
    /// Creates a generator from `seed`.
    pub fn new(seed: u64) -> Self {
        Lcg { state: seed }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform double in `[0, 1)` (like `Math.random`).
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = Lcg::new(42);
        let mut b = Lcg::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = Lcg::new(7);
        for _ in 0..1000 {
            let v = r.next_f64();
            assert!((0.0..1.0).contains(&v));
        }
    }
}
