//! Simulated word-addressed memory with an access log.
//!
//! Addresses are **word** addresses (one word = 8 bytes). Three disjoint
//! regions model the parts of a process image the experiments care about:
//!
//! * **globals** — global variable slots,
//! * **stack**   — Baseline machine-code frames (locals live in memory in
//!   the Baseline tier, which is what makes OSR exit state materialization
//!   meaningful),
//! * **heap**    — objects, arrays, property/element storage, strings.
//!
//! Every logged read/write is appended to an access log that the machine
//! executor drains to drive the cache simulator and the HTM write-set
//! tracking. Writes record the previous value so a transactional abort can
//! undo them (the rollback half of the paper's ROT transactions).

use std::fmt;

/// Bytes per simulated word.
pub const WORD_BYTES: u64 = 8;

/// First word address of the globals region.
const GLOBALS_BASE: u64 = 0x1000;
/// First word address of the stack region.
const STACK_BASE: u64 = 0x10_0000;
/// First word address of the heap region.
const HEAP_BASE: u64 = 0x1000_0000;
/// One-past-last heap word (1 Gi words is far beyond any workload).
const HEAP_LIMIT: u64 = 0x4000_0000;
/// Reads at or above this address (or below the globals region) are *wild*:
/// speculative code may dereference a non-cell bit pattern before its type
/// check fires. Wild reads return 0 (which fails every header check); wild
/// writes are ignored. Generated code only stores after its guards pass, so
/// a wild write indicates a compiler bug and is reported in debug builds.
const WILD_BASE: u64 = HEAP_LIMIT;

/// Which region a word address falls in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Region {
    /// Global variable slots.
    Globals,
    /// Baseline stack frames.
    Stack,
    /// Object/array/string heap.
    Heap,
}

/// One logged memory access (word granularity).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Access {
    /// A read of `addr`.
    Read(u64),
    /// A write of `addr`; `old` is the value before the write, kept so
    /// transactional aborts can roll back.
    Write {
        /// Word address written.
        addr: u64,
        /// Previous contents of the word.
        old: u64,
    },
}

impl Access {
    /// The word address touched.
    pub fn addr(self) -> u64 {
        match self {
            Access::Read(a) => a,
            Access::Write { addr, .. } => addr,
        }
    }

    /// True for writes.
    pub fn is_write(self) -> bool {
        matches!(self, Access::Write { .. })
    }
}

/// Simulated memory: three growable regions plus the access log.
pub struct Memory {
    globals: Vec<u64>,
    stack: Vec<u64>,
    heap: Vec<u64>,
    heap_top: u64,
    log: Vec<Access>,
}

impl fmt::Debug for Memory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Memory")
            .field("heap_words", &(self.heap_top - HEAP_BASE))
            .field("stack_words", &self.stack.len())
            .field("globals_words", &self.globals.len())
            .field("pending_log", &self.log.len())
            .finish()
    }
}

impl Default for Memory {
    fn default() -> Self {
        Self::new()
    }
}

impl Memory {
    /// Creates empty memory.
    pub fn new() -> Self {
        Memory {
            globals: Vec::new(),
            stack: Vec::new(),
            heap: Vec::new(),
            heap_top: HEAP_BASE,
            log: Vec::new(),
        }
    }

    /// First word address of the stack region (frames grow upward from
    /// here).
    pub fn stack_base(&self) -> u64 {
        STACK_BASE
    }

    /// Classifies `addr`.
    ///
    /// # Panics
    ///
    /// Panics for addresses below the globals region.
    pub fn region_of(addr: u64) -> Option<Region> {
        if addr >= WILD_BASE {
            None
        } else if addr >= HEAP_BASE {
            Some(Region::Heap)
        } else if addr >= STACK_BASE {
            Some(Region::Stack)
        } else if addr >= GLOBALS_BASE {
            Some(Region::Globals)
        } else {
            None
        }
    }

    fn slot_mut(&mut self, addr: u64) -> Option<&mut u64> {
        let (vec, index) = match Self::region_of(addr)? {
            Region::Heap => (&mut self.heap, (addr - HEAP_BASE) as usize),
            Region::Stack => (&mut self.stack, (addr - STACK_BASE) as usize),
            Region::Globals => (&mut self.globals, (addr - GLOBALS_BASE) as usize),
        };
        if index >= vec.len() {
            vec.resize(index + 1, 0);
        }
        Some(&mut vec[index])
    }

    fn slot(&self, addr: u64) -> u64 {
        let Some(region) = Self::region_of(addr) else { return 0 };
        let (vec, index) = match region {
            Region::Heap => (&self.heap, (addr - HEAP_BASE) as usize),
            Region::Stack => (&self.stack, (addr - STACK_BASE) as usize),
            Region::Globals => (&self.globals, (addr - GLOBALS_BASE) as usize),
        };
        vec.get(index).copied().unwrap_or(0)
    }

    /// Logged read of one word.
    #[inline]
    pub fn read(&mut self, addr: u64) -> u64 {
        self.log.push(Access::Read(addr));
        self.slot(addr)
    }

    /// Logged write of one word (records the old value for rollback). Wild
    /// writes are dropped (debug-asserted: guarded code never stores before
    /// its checks pass).
    #[inline]
    pub fn write(&mut self, addr: u64, value: u64) {
        let Some(slot) = self.slot_mut(addr) else {
            debug_assert!(false, "wild write to {addr:#x}");
            return;
        };
        let old = *slot;
        *slot = value;
        self.log.push(Access::Write { addr, old });
    }

    /// Un-logged read (profiling, debugging, classification).
    #[inline]
    pub fn peek(&self, addr: u64) -> u64 {
        self.slot(addr)
    }

    /// Un-logged write (transactional rollback, frame initialization the
    /// cost model accounts for elsewhere).
    #[inline]
    pub fn poke(&mut self, addr: u64, value: u64) {
        if let Some(slot) = self.slot_mut(addr) {
            *slot = value;
        }
    }

    /// Bump-allocates `words` heap words (16-byte aligned), zero-filled.
    ///
    /// # Errors
    ///
    /// Returns `None` when the heap region is exhausted.
    pub fn alloc(&mut self, words: u64) -> Option<u64> {
        let addr = (self.heap_top + 1) & !1; // 2-word (16-byte) alignment
        let new_top = addr.checked_add(words)?;
        if new_top > HEAP_LIMIT {
            return None;
        }
        self.heap_top = new_top;
        Some(addr)
    }

    /// Words currently allocated on the heap.
    pub fn heap_used(&self) -> u64 {
        self.heap_top - HEAP_BASE
    }

    /// Drains the access log into `sink`.
    #[inline]
    pub fn drain_log(&mut self, mut sink: impl FnMut(Access)) {
        for a in self.log.drain(..) {
            sink(a);
        }
    }

    /// Discards pending log entries (used by the non-simulated interpreter
    /// tier, whose cache behaviour the experiments do not model).
    #[inline]
    pub fn clear_log(&mut self) {
        self.log.clear();
    }

    /// Number of pending (un-drained) log entries.
    pub fn pending_log_len(&self) -> usize {
        self.log.len()
    }

    /// Swaps the access log with `buf` (a reusable scratch buffer), leaving
    /// the internal log empty. Lets the executor process accesses without
    /// borrowing `Memory` during cache/HTM updates.
    pub fn swap_log(&mut self, buf: &mut Vec<Access>) {
        std::mem::swap(&mut self.log, buf);
        self.log.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_write_roundtrip_all_regions() {
        let mut m = Memory::new();
        let heap = m.alloc(4).unwrap();
        for addr in [GLOBALS_BASE + 3, STACK_BASE + 10, heap] {
            m.write(addr, 0xDEAD);
            assert_eq!(m.read(addr), 0xDEAD);
        }
    }

    #[test]
    fn unwritten_memory_reads_zero() {
        let mut m = Memory::new();
        assert_eq!(m.read(STACK_BASE + 999), 0);
    }

    #[test]
    fn alloc_is_aligned_and_disjoint() {
        let mut m = Memory::new();
        let a = m.alloc(3).unwrap();
        let b = m.alloc(5).unwrap();
        assert_eq!(a % 2, 0);
        assert_eq!(b % 2, 0);
        assert!(b >= a + 3);
    }

    #[test]
    fn log_records_old_values() {
        let mut m = Memory::new();
        let a = m.alloc(1).unwrap();
        m.write(a, 1);
        m.write(a, 2);
        let mut log = Vec::new();
        m.drain_log(|acc| log.push(acc));
        assert_eq!(
            log,
            vec![Access::Write { addr: a, old: 0 }, Access::Write { addr: a, old: 1 },]
        );
        assert_eq!(m.pending_log_len(), 0);
    }

    #[test]
    fn poke_and_peek_do_not_log() {
        let mut m = Memory::new();
        let a = m.alloc(1).unwrap();
        m.poke(a, 7);
        assert_eq!(m.peek(a), 7);
        assert_eq!(m.pending_log_len(), 0);
    }

    #[test]
    fn regions_classified() {
        assert_eq!(Memory::region_of(GLOBALS_BASE), Some(Region::Globals));
        assert_eq!(Memory::region_of(STACK_BASE), Some(Region::Stack));
        assert_eq!(Memory::region_of(HEAP_BASE + 5), Some(Region::Heap));
        assert_eq!(Memory::region_of(3), None);
        assert_eq!(Memory::region_of(u64::MAX), None);
    }

    #[test]
    fn wild_reads_return_zero() {
        let mut m = Memory::new();
        assert_eq!(m.read(u64::MAX), 0);
        assert_eq!(m.read(0x0A), 0); // `undefined` bits dereferenced
        assert_eq!(m.peek(0xFFFF_0000_0000_0007), 0);
    }

    #[test]
    fn prop_last_write_wins() {
        let mut rng = crate::rng::Lcg::new(11);
        for _ in 0..64 {
            let mut m = Memory::new();
            let a = m.alloc(1).unwrap();
            let n = 1 + rng.next_u64() % 19;
            let mut last = 0;
            for _ in 0..n {
                last = rng.next_u64();
                m.write(a, last);
            }
            assert_eq!(m.peek(a), last);
        }
    }

    #[test]
    fn prop_rollback_restores_initial_state() {
        let mut rng = crate::rng::Lcg::new(12);
        for _ in 0..64 {
            let mut m = Memory::new();
            let base = m.alloc(64).unwrap();
            // Seed some initial values (unlogged).
            for i in 0..64 {
                m.poke(base + i, i * 3);
            }
            m.clear_log();
            let n = 1 + rng.next_u64() % 39;
            for _ in 0..n {
                let off = rng.next_u64() % 64;
                m.write(base + off, rng.next_u64());
            }
            // Undo in reverse, as the HTM abort path does.
            let mut log = Vec::new();
            m.drain_log(|a| log.push(a));
            for acc in log.into_iter().rev() {
                if let Access::Write { addr, old } = acc {
                    m.poke(addr, old);
                }
            }
            for i in 0..64 {
                assert_eq!(m.peek(base + i), i * 3);
            }
        }
    }
}
