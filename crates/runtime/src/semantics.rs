//! Generic (un-specialized) operation semantics — the ground truth every
//! tier must agree with.
//!
//! These functions mirror what JavaScriptCore's C++ runtime does when
//! Baseline code takes a slow path: full type dispatch, coercions, shape
//! walks. Higher tiers replace them with guarded inline code; when a guard
//! fails, execution deoptimizes back to code that calls these.

use std::error::Error;
use std::fmt;

use nomap_bytecode::{BinaryOp, FuncId, Intrinsic, NameId, SiteId, UnaryOp};

use crate::object::{
    header_shape, pack_header, HeapKind, ARR_CAP, ARR_LEN, ARR_STORAGE, OBJ_CAP, OBJ_STORAGE,
    STR_LEN,
};
use crate::profile::ValueKind;
use crate::value::Value;
use crate::Runtime;

/// Errors a genuinely invalid MiniJS program can raise at runtime.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RuntimeError {
    /// Operation applied to a value of the wrong type (where JavaScript
    /// would throw a `TypeError`).
    TypeError(String),
    /// A JavaScript behaviour MiniJS deliberately does not model.
    Unsupported(String),
    /// The simulated heap is exhausted.
    OutOfMemory,
}

impl fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuntimeError::TypeError(m) => write!(f, "type error: {m}"),
            RuntimeError::Unsupported(m) => write!(f, "unsupported operation: {m}"),
            RuntimeError::OutOfMemory => write!(f, "simulated heap exhausted"),
        }
    }
}

impl Error for RuntimeError {}

type R<T> = Result<T, RuntimeError>;
type Site = Option<(FuncId, SiteId)>;

impl Runtime {
    /// Coarse kind of `v` (peeks headers; no logged traffic).
    pub fn kind_of(&self, v: Value) -> ValueKind {
        if v.is_int32() {
            ValueKind::Int32
        } else if v.is_double() {
            ValueKind::Double
        } else if v.is_bool() {
            ValueKind::Bool
        } else if v.is_cell() {
            match self.heap_kind(v.as_cell()) {
                Some(HeapKind::Object) => ValueKind::Object,
                Some(HeapKind::Array) => ValueKind::Array,
                Some(HeapKind::Str) => ValueKind::Str,
                None => ValueKind::Other,
            }
        } else {
            ValueKind::Other
        }
    }

    fn record_binary(&mut self, site: Site, a: Value, b: Value) {
        if site.is_none() {
            return;
        }
        let ka = self.kind_of(a);
        let kb = self.kind_of(b);
        if let Some(p) = self.site_profile(site) {
            p.count += 1;
            p.kinds_a.insert(ka);
            p.kinds_b.insert(kb);
        }
    }

    fn record_result(&mut self, site: Site, v: Value) {
        if site.is_none() {
            return;
        }
        let k = self.kind_of(v);
        if let Some(p) = self.site_profile(site) {
            p.result.insert(k);
        }
    }

    // ---- coercions -------------------------------------------------------

    /// JavaScript `ToBoolean`.
    pub fn to_boolean(&mut self, v: Value) -> bool {
        let charge = self.costs.to_boolean;
        self.charge(charge);
        if v.is_int32() {
            return v.as_int32() != 0;
        }
        if v.is_double() {
            let d = v.as_double();
            return d != 0.0 && !d.is_nan();
        }
        if v.is_bool() {
            return v.as_bool();
        }
        if v.is_cell() {
            if self.heap_kind(v.as_cell()) == Some(HeapKind::Str) {
                return self.mem.peek(v.as_cell() + STR_LEN) != 0;
            }
            return true;
        }
        false // undefined, null, hole
    }

    /// JavaScript `ToNumber` (objects yield NaN; `ToPrimitive` chains are
    /// not modelled).
    pub fn to_number(&mut self, v: Value) -> f64 {
        if v.is_int32() {
            return v.as_int32() as f64;
        }
        if v.is_double() {
            return v.as_double();
        }
        if v.is_bool() {
            return if v.as_bool() { 1.0 } else { 0.0 };
        }
        if v.is_null() {
            return 0.0;
        }
        if v.is_cell() && self.heap_kind(v.as_cell()) == Some(HeapKind::Str) {
            let s = self.string_contents(v).trim().to_owned();
            self.charge(self.costs.intrinsic_string + s.len() as u64);
            if s.is_empty() {
                return 0.0;
            }
            return s.parse::<f64>().unwrap_or(f64::NAN);
        }
        f64::NAN
    }

    /// JavaScript `ToInt32`.
    pub fn to_int32(&mut self, v: Value) -> i32 {
        if v.is_int32() {
            return v.as_int32();
        }
        f64_to_int32(self.to_number(v))
    }

    /// JavaScript `ToUint32`.
    pub fn to_uint32(&mut self, v: Value) -> u32 {
        self.to_int32(v) as u32
    }

    /// JavaScript number formatting (integral doubles print without a
    /// fractional part).
    pub fn number_to_string(n: f64) -> String {
        if n.is_nan() {
            "NaN".to_owned()
        } else if n.is_infinite() {
            if n > 0.0 {
                "Infinity".to_owned()
            } else {
                "-Infinity".to_owned()
            }
        } else if n == 0.0 {
            "0".to_owned()
        } else {
            format!("{n}")
        }
    }

    /// String form of `v` for concatenation and `print`.
    pub fn to_display_string(&mut self, v: Value) -> String {
        match self.kind_of(v) {
            ValueKind::Int32 => v.as_int32().to_string(),
            ValueKind::Double => Self::number_to_string(v.as_double()),
            ValueKind::Bool => v.as_bool().to_string(),
            ValueKind::Str => self.string_contents(v).to_owned(),
            ValueKind::Object => "[object Object]".to_owned(),
            ValueKind::Array => "[object Array]".to_owned(),
            ValueKind::Other => {
                if v.is_null() {
                    "null".to_owned()
                } else {
                    "undefined".to_owned()
                }
            }
        }
    }

    fn intern_value(&mut self, s: &str) -> R<Value> {
        let id = self.strings.intern(s);
        self.string_value(id)
    }

    // ---- generic operators ----------------------------------------------

    /// Generic `+`: numeric addition or string concatenation.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::Unsupported`] for object/array operands
    /// (MiniJS does not model `ToPrimitive`).
    pub fn generic_add(&mut self, a: Value, b: Value, site: Site) -> R<Value> {
        self.record_binary(site, a, b);
        let charge = self.costs.generic_add;
        self.charge(charge);
        // int32 fast path with overflow detection — the behaviour the
        // paper's Overflow checks guard.
        if a.is_int32() && b.is_int32() {
            match a.as_int32().checked_add(b.as_int32()) {
                Some(r) => {
                    let v = Value::new_int32(r);
                    self.record_result(site, v);
                    return Ok(v);
                }
                None => {
                    if let Some(p) = self.site_profile(site) {
                        p.overflowed = true;
                    }
                    let v = Value::new_double(a.as_int32() as f64 + b.as_int32() as f64);
                    self.record_result(site, v);
                    return Ok(v);
                }
            }
        }
        let ka = self.kind_of(a);
        let kb = self.kind_of(b);
        if ka == ValueKind::Str || kb == ValueKind::Str {
            let sa = self.to_display_string(a);
            let sb = self.to_display_string(b);
            self.charge(self.costs.intrinsic_string + (sa.len() + sb.len()) as u64);
            let v = self.intern_value(&format!("{sa}{sb}"))?;
            self.record_result(site, v);
            return Ok(v);
        }
        if matches!(ka, ValueKind::Object | ValueKind::Array)
            || matches!(kb, ValueKind::Object | ValueKind::Array)
        {
            return Err(RuntimeError::Unsupported("`+` on object operands".into()));
        }
        let v = Value::new_number(self.to_number(a) + self.to_number(b));
        self.record_result(site, v);
        Ok(v)
    }

    /// Generic `-`, `*`, `/`, `%`.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::Unsupported`] for non-`BinaryOp::{Sub,Mul,
    /// Div,Mod}` operators.
    pub fn generic_arith(&mut self, op: BinaryOp, a: Value, b: Value, site: Site) -> R<Value> {
        self.record_binary(site, a, b);
        let charge = self.costs.generic_arith;
        self.charge(charge);
        if a.is_int32() && b.is_int32() {
            let (ia, ib) = (a.as_int32(), b.as_int32());
            let fast = match op {
                BinaryOp::Sub => ia.checked_sub(ib),
                BinaryOp::Mul => {
                    let wide = ia as i64 * ib as i64;
                    // Negative zero (e.g. `0 * -1`) must stay a double.
                    if wide == 0 && (ia < 0 || ib < 0) {
                        None
                    } else {
                        i32::try_from(wide).ok()
                    }
                }
                BinaryOp::Mod if ia >= 0 && ib > 0 => Some(ia % ib),
                _ => None,
            };
            if let Some(r) = fast {
                let v = Value::new_int32(r);
                self.record_result(site, v);
                return Ok(v);
            }
            if matches!(op, BinaryOp::Sub | BinaryOp::Mul) {
                if let Some(p) = self.site_profile(site) {
                    p.overflowed = true;
                }
            }
        }
        let x = self.to_number(a);
        let y = self.to_number(b);
        let r = match op {
            BinaryOp::Sub => x - y,
            BinaryOp::Mul => x * y,
            BinaryOp::Div => x / y,
            BinaryOp::Mod => x % y,
            other => return Err(RuntimeError::Unsupported(format!("generic_arith on {other:?}"))),
        };
        let v = Value::new_number(r);
        self.record_result(site, v);
        Ok(v)
    }

    /// Generic bitwise/shift operators.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::Unsupported`] for non-bitwise operators.
    pub fn generic_bitwise(&mut self, op: BinaryOp, a: Value, b: Value, site: Site) -> R<Value> {
        self.record_binary(site, a, b);
        let charge = self.costs.generic_bitwise;
        self.charge(charge);
        let ia = self.to_int32(a);
        let ib = self.to_int32(b);
        let v = match op {
            BinaryOp::BitAnd => Value::new_int32(ia & ib),
            BinaryOp::BitOr => Value::new_int32(ia | ib),
            BinaryOp::BitXor => Value::new_int32(ia ^ ib),
            BinaryOp::Shl => Value::new_int32(ia.wrapping_shl(ib as u32 & 31)),
            BinaryOp::Shr => Value::new_int32(ia.wrapping_shr(ib as u32 & 31)),
            BinaryOp::UShr => {
                let r = (ia as u32).wrapping_shr(ib as u32 & 31);
                Value::new_number(r as f64)
            }
            other => {
                return Err(RuntimeError::Unsupported(format!("generic_bitwise on {other:?}")))
            }
        };
        self.record_result(site, v);
        Ok(v)
    }

    /// Generic `<`, `<=`, `>`, `>=`, `==`, `!=`, `===`, `!==`.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::Unsupported`] for non-comparison operators.
    pub fn generic_compare(&mut self, op: BinaryOp, a: Value, b: Value, site: Site) -> R<Value> {
        self.record_binary(site, a, b);
        let charge = self.costs.generic_compare;
        self.charge(charge);
        let result = match op {
            BinaryOp::Eq => self.loose_eq(a, b),
            BinaryOp::NotEq => !self.loose_eq(a, b),
            BinaryOp::StrictEq => self.strict_eq(a, b),
            BinaryOp::StrictNotEq => !self.strict_eq(a, b),
            BinaryOp::Lt | BinaryOp::Le | BinaryOp::Gt | BinaryOp::Ge => {
                let ka = self.kind_of(a);
                let kb = self.kind_of(b);
                if ka == ValueKind::Str && kb == ValueKind::Str {
                    let sa = self.string_contents(a).to_owned();
                    let sb = self.string_contents(b).to_owned();
                    self.charge((sa.len() + sb.len()) as u64);
                    match op {
                        BinaryOp::Lt => sa < sb,
                        BinaryOp::Le => sa <= sb,
                        BinaryOp::Gt => sa > sb,
                        _ => sa >= sb,
                    }
                } else {
                    let x = self.to_number(a);
                    let y = self.to_number(b);
                    match op {
                        BinaryOp::Lt => x < y,
                        BinaryOp::Le => x <= y,
                        BinaryOp::Gt => x > y,
                        _ => x >= y,
                    }
                }
            }
            other => {
                return Err(RuntimeError::Unsupported(format!("generic_compare on {other:?}")))
            }
        };
        let v = Value::new_bool(result);
        self.record_result(site, v);
        Ok(v)
    }

    fn strict_eq(&mut self, a: Value, b: Value) -> bool {
        if a.is_number() || b.is_number() {
            return a.is_number() && b.is_number() && {
                let x = if a.is_int32() { a.as_int32() as f64 } else { a.as_double() };
                let y = if b.is_int32() { b.as_int32() as f64 } else { b.as_double() };
                x == y
            };
        }
        // Strings are interned per content, so cell identity is content
        // identity; everything else is identity too.
        a == b
    }

    fn loose_eq(&mut self, a: Value, b: Value) -> bool {
        if self.strict_eq(a, b) {
            return true;
        }
        let a_nullish = a.is_null() || a.is_undefined();
        let b_nullish = b.is_null() || b.is_undefined();
        if a_nullish || b_nullish {
            return a_nullish && b_nullish;
        }
        let ka = self.kind_of(a);
        let kb = self.kind_of(b);
        if matches!(ka, ValueKind::Object | ValueKind::Array)
            || matches!(kb, ValueKind::Object | ValueKind::Array)
        {
            return false; // identity already handled by strict_eq
        }
        // number-vs-string / bool coercions all reduce to ToNumber.
        let x = self.to_number(a);
        let y = self.to_number(b);
        x == y
    }

    /// Generic unary operator.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::OutOfMemory`] when `typeof` needs to intern
    /// and the heap is exhausted.
    pub fn generic_unary(&mut self, op: UnaryOp, a: Value, site: Site) -> R<Value> {
        if site.is_some() {
            let k = self.kind_of(a);
            if let Some(p) = self.site_profile(site) {
                p.count += 1;
                p.kinds_a.insert(k);
            }
        }
        let charge = self.costs.generic_unary;
        self.charge(charge);
        let v = match op {
            UnaryOp::Neg => {
                if a.is_int32() {
                    let i = a.as_int32();
                    // `-0` and `-i32::MIN` require the double representation.
                    if i != 0 {
                        if let Some(r) = i.checked_neg() {
                            let v = Value::new_int32(r);
                            self.record_result(site, v);
                            return Ok(v);
                        }
                    }
                    if let Some(p) = self.site_profile(site) {
                        p.overflowed = true;
                    }
                }
                Value::new_number(-self.to_number(a))
            }
            UnaryOp::ToNumber => Value::new_number(self.to_number(a)),
            UnaryOp::Not => Value::new_bool(!self.to_boolean(a)),
            UnaryOp::BitNot => Value::new_int32(!self.to_int32(a)),
            UnaryOp::Typeof => {
                let name = match self.kind_of(a) {
                    ValueKind::Int32 | ValueKind::Double => "number",
                    ValueKind::Bool => "boolean",
                    ValueKind::Str => "string",
                    ValueKind::Object | ValueKind::Array => "object",
                    ValueKind::Other => {
                        if a.is_null() {
                            "object"
                        } else {
                            "undefined"
                        }
                    }
                };
                self.intern_value(name)?
            }
        };
        self.record_result(site, v);
        Ok(v)
    }

    // ---- properties and elements ------------------------------------------

    /// Generic property read (`obj.name`).
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::TypeError`] when `obj` is `null`/`undefined`.
    pub fn get_prop(&mut self, obj: Value, name: NameId, site: Site) -> R<Value> {
        let charge = self.costs.get_prop;
        self.charge(charge);
        if !obj.is_cell() {
            if obj.is_null() || obj.is_undefined() {
                return Err(RuntimeError::TypeError("property read on null/undefined".into()));
            }
            return Ok(Value::UNDEFINED); // numbers/bools have no own props
        }
        let addr = obj.as_cell();
        let header = self.mem.read(addr);
        match HeapKind::from_header(header) {
            HeapKind::Array => {
                if Some(name) == self.length_name {
                    let len = self.mem.read(addr + ARR_LEN);
                    let v = Value::new_number(len as f64);
                    if let Some(p) = self.site_profile(site) {
                        p.count += 1;
                        p.kinds_a.insert(ValueKind::Array);
                    }
                    return Ok(v);
                }
                Ok(Value::UNDEFINED)
            }
            HeapKind::Str => {
                if Some(name) == self.length_name {
                    let len = self.mem.read(addr + STR_LEN);
                    if let Some(p) = self.site_profile(site) {
                        p.count += 1;
                        p.kinds_a.insert(ValueKind::Str);
                    }
                    return Ok(Value::new_number(len as f64));
                }
                Ok(Value::UNDEFINED)
            }
            HeapKind::Object => {
                let shape = header_shape(header);
                let slot = self.shapes.lookup(shape, name);
                if let Some(p) = self.site_profile(site) {
                    p.count += 1;
                    p.kinds_a.insert(ValueKind::Object);
                    p.record_shape(shape);
                    p.slot = slot;
                }
                match slot {
                    Some(slot) => {
                        let storage = self.mem.read(addr + OBJ_STORAGE);
                        let v = Value::from_bits(self.mem.read(storage + slot as u64));
                        self.record_result(site, v);
                        Ok(v)
                    }
                    None => Ok(Value::UNDEFINED),
                }
            }
        }
    }

    /// Generic property write (`obj.name = val`), transitioning the shape
    /// when `name` is new.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::TypeError`] for non-object receivers and
    /// [`RuntimeError::OutOfMemory`] when growth fails.
    pub fn put_prop(&mut self, obj: Value, name: NameId, val: Value, site: Site) -> R<()> {
        let charge = self.costs.put_prop;
        self.charge(charge);
        if !obj.is_cell() {
            return Err(RuntimeError::TypeError("property write on non-object".into()));
        }
        let addr = obj.as_cell();
        let header = self.mem.read(addr);
        if HeapKind::from_header(header) != HeapKind::Object {
            return Err(RuntimeError::TypeError("property write on array/string".into()));
        }
        let shape = header_shape(header);
        if let Some(slot) = self.shapes.lookup(shape, name) {
            if let Some(p) = self.site_profile(site) {
                p.count += 1;
                p.kinds_a.insert(ValueKind::Object);
                p.record_shape(shape);
                p.slot = Some(slot);
            }
            let storage = self.mem.read(addr + OBJ_STORAGE);
            self.mem.write(storage + slot as u64, val.to_bits());
            return Ok(());
        }
        // Transition path.
        let transition_charge = self.costs.shape_transition;
        self.charge(transition_charge);
        let (new_shape, slot) = self.shapes.transition(shape, name);
        if let Some(p) = self.site_profile(site) {
            p.count += 1;
            p.kinds_a.insert(ValueKind::Object);
            p.record_shape(shape);
            p.saw_transition = true;
        }
        let cap = self.mem.read(addr + OBJ_CAP);
        if slot as u64 >= cap {
            let new_cap = (cap * 2).max(slot as u64 + 1);
            let grow_charge = self.costs.array_grow_base + self.costs.grow_per_word * cap;
            self.charge(grow_charge);
            let new_storage = self.mem.alloc(new_cap).ok_or(RuntimeError::OutOfMemory)?;
            let old_storage = self.mem.read(addr + OBJ_STORAGE);
            for i in 0..cap {
                let w = self.mem.read(old_storage + i);
                self.mem.write(new_storage + i, w);
            }
            self.mem.write(addr + OBJ_STORAGE, new_storage);
            self.mem.write(addr + OBJ_CAP, new_cap);
        }
        self.mem.write(addr, pack_header(HeapKind::Object, new_shape));
        let storage = self.mem.read(addr + OBJ_STORAGE);
        self.mem.write(storage + slot as u64, val.to_bits());
        Ok(())
    }

    /// Integer index of `idx`, if it is a non-negative integral number.
    fn index_of(&mut self, idx: Value) -> Option<u64> {
        if idx.is_int32() {
            let i = idx.as_int32();
            return if i >= 0 { Some(i as u64) } else { None };
        }
        if idx.is_double() {
            let d = idx.as_double();
            if d >= 0.0 && d.fract() == 0.0 && d < (1u64 << 32) as f64 {
                return Some(d as u64);
            }
        }
        None
    }

    /// Generic element read (`arr[idx]`). Out-of-bounds and holes yield
    /// `undefined` — the behaviour FTL's Bounds checks guard.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::TypeError`] for non-indexable receivers.
    pub fn get_index(&mut self, arr: Value, idx: Value, site: Site) -> R<Value> {
        let charge = self.costs.get_index;
        self.charge(charge);
        if !arr.is_cell() {
            return Err(RuntimeError::TypeError("indexed read on non-object".into()));
        }
        let addr = arr.as_cell();
        let header = self.mem.read(addr);
        match HeapKind::from_header(header) {
            HeapKind::Array => {
                let ik = self.kind_of(idx);
                let len = self.mem.read(addr + ARR_LEN);
                match self.index_of(idx) {
                    Some(i) if i < len => {
                        let storage = self.mem.read(addr + ARR_STORAGE);
                        let v = Value::from_bits(self.mem.read(storage + i));
                        if let Some(p) = self.site_profile(site) {
                            p.count += 1;
                            p.kinds_a.insert(ValueKind::Array);
                            p.kinds_b.insert(ik);
                            if v.is_hole() {
                                p.saw_hole = true;
                            }
                        }
                        if v.is_hole() {
                            return Ok(Value::UNDEFINED);
                        }
                        self.record_result(site, v);
                        Ok(v)
                    }
                    _ => {
                        if let Some(p) = self.site_profile(site) {
                            p.count += 1;
                            p.kinds_a.insert(ValueKind::Array);
                            p.kinds_b.insert(ik);
                            p.saw_oob = true;
                        }
                        Ok(Value::UNDEFINED)
                    }
                }
            }
            HeapKind::Str => {
                let s = self.string_contents(arr).to_owned();
                self.charge(self.costs.intrinsic_string);
                match self.index_of(idx) {
                    Some(i) => match s.chars().nth(i as usize) {
                        Some(c) => self.intern_value(&c.to_string()),
                        None => Ok(Value::UNDEFINED),
                    },
                    None => Ok(Value::UNDEFINED),
                }
            }
            HeapKind::Object => Ok(Value::UNDEFINED), // numeric props unmodelled
        }
    }

    /// Generic element write (`arr[idx] = val`), elongating the array as
    /// JavaScript requires (paper §IV-C1).
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::TypeError`] for non-array receivers or
    /// negative/fractional indices, [`RuntimeError::OutOfMemory`] on failed
    /// growth.
    pub fn put_index(&mut self, arr: Value, idx: Value, val: Value, site: Site) -> R<()> {
        let charge = self.costs.put_index;
        self.charge(charge);
        if !arr.is_cell() {
            return Err(RuntimeError::TypeError("indexed write on non-object".into()));
        }
        let addr = arr.as_cell();
        let header = self.mem.read(addr);
        if HeapKind::from_header(header) != HeapKind::Array {
            return Err(RuntimeError::TypeError("indexed write on non-array".into()));
        }
        let ik = self.kind_of(idx);
        let i = self.index_of(idx).ok_or_else(|| {
            RuntimeError::TypeError("array index must be a non-negative integer".into())
        })?;
        let len = self.mem.read(addr + ARR_LEN);
        if let Some(p) = self.site_profile(site) {
            p.count += 1;
            p.kinds_a.insert(ValueKind::Array);
            p.kinds_b.insert(ik);
            if i >= len {
                p.saw_oob = true; // appends/elongations disable specialization
            }
        }
        if i < len {
            let storage = self.mem.read(addr + ARR_STORAGE);
            self.mem.write(storage + i, val.to_bits());
            return Ok(());
        }
        // Elongation.
        let cap = self.mem.read(addr + ARR_CAP);
        if i >= cap {
            let new_cap = (cap * 2).max(i + 1);
            let grow_charge = self.costs.array_grow_base + self.costs.grow_per_word * len;
            self.charge(grow_charge);
            let new_storage = self.mem.alloc(new_cap).ok_or(RuntimeError::OutOfMemory)?;
            let old_storage = self.mem.read(addr + ARR_STORAGE);
            for w in 0..len {
                let v = self.mem.read(old_storage + w);
                self.mem.write(new_storage + w, v);
            }
            self.mem.write(addr + ARR_STORAGE, new_storage);
            self.mem.write(addr + ARR_CAP, new_cap);
        }
        let storage = self.mem.read(addr + ARR_STORAGE);
        for hole in len..i {
            self.mem.write(storage + hole, Value::HOLE.to_bits());
        }
        self.mem.write(storage + i, val.to_bits());
        self.mem.write(addr + ARR_LEN, i + 1);
        Ok(())
    }

    // ---- globals ----------------------------------------------------------

    /// Reads global `name` (never-assigned globals read as `undefined`).
    pub fn get_global(&mut self, name: NameId) -> Value {
        let charge = self.costs.global_access;
        self.charge(charge);
        let (addr, new) = self.globals.ensure_addr(name);
        if new {
            self.mem.poke(addr, Value::UNDEFINED.to_bits());
        }
        let bits = self.mem.read(addr);
        if bits == 0 {
            Value::UNDEFINED
        } else {
            Value::from_bits(bits)
        }
    }

    /// Writes global `name`.
    pub fn put_global(&mut self, name: NameId, v: Value) {
        let charge = self.costs.global_access;
        self.charge(charge);
        let (addr, _) = self.globals.ensure_addr(name);
        self.mem.write(addr, v.to_bits());
    }

    /// Address of global `name`'s slot (allocating it), for tiers that
    /// compile global accesses to direct loads/stores.
    pub fn global_slot(&mut self, name: NameId) -> u64 {
        let (addr, new) = self.globals.ensure_addr(name);
        if new {
            self.mem.poke(addr, Value::UNDEFINED.to_bits());
        }
        addr
    }

    // ---- intrinsics --------------------------------------------------------

    /// Calls a built-in.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::TypeError`] when receivers have the wrong
    /// type (e.g. `push` on a non-array).
    pub fn call_intrinsic(&mut self, intr: Intrinsic, args: &[Value], site: Site) -> R<Value> {
        use Intrinsic::*;
        let arg = |i: usize| args.get(i).copied().unwrap_or(Value::UNDEFINED);
        match intr {
            MathSqrt | MathFloor | MathCeil | MathRound | MathAbs => {
                let charge = self.costs.intrinsic_math;
                self.charge(charge);
                let x = self.to_number(arg(0));
                let r = match intr {
                    MathSqrt => x.sqrt(),
                    MathFloor => x.floor(),
                    MathCeil => x.ceil(),
                    MathRound => (x + 0.5).floor(), // JS rounds half up
                    _ => x.abs(),
                };
                Ok(Value::new_number(r))
            }
            MathSin | MathCos | MathTan | MathAtan | MathExp | MathLog => {
                let charge = self.costs.intrinsic_trig;
                self.charge(charge);
                let x = self.to_number(arg(0));
                let r = match intr {
                    MathSin => x.sin(),
                    MathCos => x.cos(),
                    MathTan => x.tan(),
                    MathAtan => x.atan(),
                    MathExp => x.exp(),
                    _ => x.ln(),
                };
                Ok(Value::new_number(r))
            }
            MathAtan2 | MathPow => {
                let charge = self.costs.intrinsic_trig;
                self.charge(charge);
                let x = self.to_number(arg(0));
                let y = self.to_number(arg(1));
                let r = if intr == MathAtan2 { x.atan2(y) } else { x.powf(y) };
                Ok(Value::new_number(r))
            }
            MathMax | MathMin => {
                let charge = self.costs.intrinsic_math;
                self.charge(charge);
                if args.is_empty() {
                    let r = if intr == MathMax { f64::NEG_INFINITY } else { f64::INFINITY };
                    return Ok(Value::new_number(r));
                }
                let mut r = self.to_number(arg(0));
                for &a in &args[1..] {
                    let x = self.to_number(a);
                    if x.is_nan() || r.is_nan() {
                        r = f64::NAN;
                    } else if (intr == MathMax) == (x > r) {
                        r = x;
                    }
                }
                Ok(Value::new_number(r))
            }
            MathRandom => {
                let charge = self.costs.intrinsic_math;
                self.charge(charge);
                let r = self.rng.next_f64();
                Ok(Value::new_double(r))
            }
            ArrayPush => {
                let a = arg(0);
                if self.kind_of(a) != ValueKind::Array {
                    return Err(RuntimeError::TypeError("push on non-array".into()));
                }
                let len = self.mem.read(a.as_cell() + ARR_LEN);
                self.put_index(a, Value::new_number(len as f64), arg(1), site)?;
                Ok(Value::new_number(len as f64 + 1.0))
            }
            ArrayPop => {
                let a = arg(0);
                if self.kind_of(a) != ValueKind::Array {
                    return Err(RuntimeError::TypeError("pop on non-array".into()));
                }
                let charge = self.costs.get_index;
                self.charge(charge);
                let addr = a.as_cell();
                let len = self.mem.read(addr + ARR_LEN);
                if len == 0 {
                    return Ok(Value::UNDEFINED);
                }
                let storage = self.mem.read(addr + ARR_STORAGE);
                let v = Value::from_bits(self.mem.read(storage + len - 1));
                self.mem.write(addr + ARR_LEN, len - 1);
                Ok(if v.is_hole() { Value::UNDEFINED } else { v })
            }
            StringCharCodeAt => {
                let charge = self.costs.intrinsic_string;
                self.charge(charge);
                let s = self.expect_string(arg(0), "charCodeAt")?;
                let i = self.to_number(arg(1)) as usize;
                match s.chars().nth(i) {
                    Some(c) => Ok(Value::new_number(c as u32 as f64)),
                    None => Ok(Value::new_double(f64::NAN)),
                }
            }
            StringCharAt => {
                let charge = self.costs.intrinsic_string;
                self.charge(charge);
                let s = self.expect_string(arg(0), "charAt")?;
                let i = self.to_number(arg(1)) as usize;
                let out: String = s.chars().nth(i).map(|c| c.to_string()).unwrap_or_default();
                self.intern_value(&out)
            }
            StringFromCharCode => {
                let charge = self.costs.intrinsic_string;
                self.charge(charge);
                let mut out = String::new();
                for &a in args {
                    let c = self.to_uint32(a) as u16 as u32;
                    out.push(char::from_u32(c).unwrap_or('\u{FFFD}'));
                }
                self.intern_value(&out)
            }
            StringSubstring => {
                let s = self.expect_string(arg(0), "substring")?;
                let n = s.chars().count();
                let charge = self.costs.intrinsic_string + n as u64;
                self.charge(charge);
                let mut a = (self.to_number(arg(1)).max(0.0) as usize).min(n);
                let mut b = if args.len() > 2 {
                    (self.to_number(arg(2)).max(0.0) as usize).min(n)
                } else {
                    n
                };
                if a > b {
                    std::mem::swap(&mut a, &mut b);
                }
                let out: String = s.chars().skip(a).take(b - a).collect();
                self.intern_value(&out)
            }
            StringIndexOf => {
                let s = self.expect_string(arg(0), "indexOf")?;
                let needle = self.expect_string(arg(1), "indexOf")?;
                let charge = self.costs.intrinsic_string + s.len() as u64;
                self.charge(charge);
                match s.find(&needle) {
                    Some(byte) => {
                        let char_idx = s[..byte].chars().count();
                        Ok(Value::new_number(char_idx as f64))
                    }
                    None => Ok(Value::new_int32(-1)),
                }
            }
            Print => {
                let charge = self.costs.print;
                self.charge(charge);
                let text = self.to_display_string(arg(0));
                self.output.push_str(&text);
                self.output.push('\n');
                Ok(Value::UNDEFINED)
            }
        }
    }

    fn expect_string(&mut self, v: Value, what: &str) -> R<String> {
        if self.kind_of(v) == ValueKind::Str {
            Ok(self.string_contents(v).to_owned())
        } else {
            Err(RuntimeError::TypeError(format!("{what} on non-string")))
        }
    }
}

impl HeapKind {
    fn from_header(header: u64) -> HeapKind {
        match header & 0x7 {
            1 => HeapKind::Object,
            2 => HeapKind::Array,
            3 => HeapKind::Str,
            other => panic!("corrupt heap header kind {other}"),
        }
    }
}

/// JavaScript `ToInt32` on a double.
pub(crate) fn f64_to_int32(d: f64) -> i32 {
    if !d.is_finite() || d == 0.0 {
        return 0;
    }
    let t = d.trunc();
    let m = t.rem_euclid(4294967296.0); // 2^32
    let u = m as u64 as u32;
    u as i32
}

/// A runtime helper callable from generated machine code.
///
/// Baseline code is essentially a sequence of these calls (paper Fig. 4(b));
/// FTL code only reaches them through deoptimization.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RuntimeFn {
    /// Generic binary operator.
    Binary(BinaryOp),
    /// Generic unary operator.
    Unary(UnaryOp),
    /// `ToBoolean` (for branches).
    ToBoolean,
    /// `obj.name`.
    GetProp(NameId),
    /// `obj.name = v`.
    PutProp(NameId),
    /// `arr[i]`.
    GetIndex,
    /// `arr[i] = v`.
    PutIndex,
    /// Read a global.
    GetGlobal(NameId),
    /// Write a global.
    PutGlobal(NameId),
    /// Allocate `{}`.
    NewObject,
    /// Allocate `new Array(n)`.
    NewArray,
    /// Call a built-in.
    Intrinsic(Intrinsic),
}

/// What NaN-box representation a [`RuntimeFn`] helper's return value may
/// carry, as a static over-approximation of [`RuntimeFn::dispatch`].
///
/// `Number` means int32 *or* double (the helper canonicalizes integral
/// doubles to int32 via `Value::new_number`, so both appear); `Any` is the
/// conservative top.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RetTag {
    /// Could be anything (top).
    Any,
    /// Always a boxed int32.
    Int32,
    /// Always a boxed double.
    Double,
    /// Always numeric: int32 or double.
    Number,
    /// Always a boxed boolean.
    Bool,
    /// Always a heap cell (object, array, string).
    Cell,
    /// Always undefined/null/hole.
    Other,
}

/// Guest-heap effect of one [`RuntimeFn`] invocation, as a linear lattice
/// `Pure < ReadsHeap < WritesBounded(n) < WritesUnbounded`.
///
/// This classifies **simulated guest memory** ([`Memory`]) traffic only.
/// Host-side effects — profile recording, instruction charging, the
/// `print` output buffer, the `Math.random` RNG state — are deliberately
/// excluded: they never land in an HTM write set and never alias guest
/// values. `Pure` therefore does *not* license deleting the call (the IR
/// keeps `has_effect` true for every `CallRuntime`); it licenses treating
/// the call as writing nothing for footprint and alias purposes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HeapEffect {
    /// Touches no guest-heap word at all.
    Pure,
    /// Reads guest memory (string contents, object slots) but writes none.
    ReadsHeap,
    /// Writes at most `n` cache lines per invocation (allocation included).
    WritesBounded(u32),
    /// May write an unbounded number of lines (growth, element loops).
    WritesUnbounded,
}

impl HeapEffect {
    /// Lattice join (least upper bound).
    pub fn join(self, other: HeapEffect) -> HeapEffect {
        use HeapEffect::*;
        match (self, other) {
            (WritesUnbounded, _) | (_, WritesUnbounded) => WritesUnbounded,
            (WritesBounded(a), WritesBounded(b)) => WritesBounded(a.max(b)),
            (WritesBounded(n), _) | (_, WritesBounded(n)) => WritesBounded(n),
            (ReadsHeap, _) | (_, ReadsHeap) => ReadsHeap,
            (Pure, Pure) => Pure,
        }
    }

    /// True when the effect admits no guest-heap write at all.
    pub fn is_read_only(self) -> bool {
        matches!(self, HeapEffect::Pure | HeapEffect::ReadsHeap)
    }

    /// Write-line bound per invocation: `Some(0)` for read-only effects,
    /// `Some(n)` for bounded writers, `None` for unbounded ones.
    pub fn write_lines(self) -> Option<u32> {
        match self {
            HeapEffect::Pure | HeapEffect::ReadsHeap => Some(0),
            HeapEffect::WritesBounded(n) => Some(n),
            HeapEffect::WritesUnbounded => None,
        }
    }

    /// Stable kebab-case identifier (diagnostics, census output).
    pub fn describe(self) -> String {
        match self {
            HeapEffect::Pure => "pure".to_owned(),
            HeapEffect::ReadsHeap => "reads-heap".to_owned(),
            HeapEffect::WritesBounded(n) => format!("writes-bounded({n})"),
            HeapEffect::WritesUnbounded => "writes-unbounded".to_owned(),
        }
    }
}

/// Static signature of a [`RuntimeFn`] helper: return-tag class, guest-heap
/// effect, and whether it may **clobber** pre-existing reachable memory.
///
/// `clobbers` is the alias-analysis axis: allocation-only writers (`{}`,
/// `new Array`, string interning) write fresh cells no prior load could
/// alias, so they carry `clobbers: false` even when their [`HeapEffect`]
/// records write lines for footprint purposes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RuntimeSig {
    /// Return-value classification.
    pub ret: RetTag,
    /// Guest-heap effect per invocation.
    pub effect: HeapEffect,
    /// May overwrite memory that existed (and was reachable) before the
    /// call — `false` for pure/read-only helpers and fresh allocators.
    pub clobbers: bool,
}

impl RuntimeSig {
    const fn new(ret: RetTag, effect: HeapEffect, clobbers: bool) -> RuntimeSig {
        RuntimeSig { ret, effect, clobbers }
    }
}

impl RuntimeFn {
    /// The helper's static signature — what [`RuntimeFn::dispatch`] may
    /// return and do to the guest heap, independent of profile data.
    ///
    /// Sound over-approximation of the semantics above: each arm is
    /// justified against the corresponding `Runtime` method.
    pub fn signature(self) -> RuntimeSig {
        use HeapEffect::*;
        use RetTag::*;
        match self {
            RuntimeFn::Binary(op) => {
                if op == BinaryOp::Add {
                    // May concatenate: interning can materialize one fresh
                    // 3-word string cell (`Runtime::string_value`).
                    RuntimeSig::new(Any, WritesBounded(2), false)
                } else if op.is_comparison() {
                    RuntimeSig::new(Bool, ReadsHeap, false)
                } else if op.is_int_producing() {
                    RuntimeSig::new(Int32, ReadsHeap, false)
                } else {
                    // Sub/Mul/Div/Mod and UShr: always numeric.
                    RuntimeSig::new(Number, ReadsHeap, false)
                }
            }
            RuntimeFn::Unary(op) => match op {
                UnaryOp::Neg | UnaryOp::ToNumber => RuntimeSig::new(Number, ReadsHeap, false),
                UnaryOp::Not => RuntimeSig::new(Bool, ReadsHeap, false),
                UnaryOp::BitNot => RuntimeSig::new(Int32, ReadsHeap, false),
                // Returns one of six interned name strings; the cell may be
                // materialized on first use.
                UnaryOp::Typeof => RuntimeSig::new(Cell, WritesBounded(2), false),
            },
            RuntimeFn::ToBoolean => RuntimeSig::new(Bool, ReadsHeap, false),
            RuntimeFn::GetProp(_) | RuntimeFn::GetIndex | RuntimeFn::GetGlobal(_) => {
                RuntimeSig::new(Any, ReadsHeap, false)
            }
            // Property/element stores may transition shapes and grow
            // storage — unbounded, and they overwrite reachable slots.
            RuntimeFn::PutProp(_) | RuntimeFn::PutIndex => {
                RuntimeSig::new(Other, WritesUnbounded, true)
            }
            // One word at a fixed global slot.
            RuntimeFn::PutGlobal(_) => RuntimeSig::new(Other, WritesBounded(1), true),
            // Fresh 3-word cell + 4-word storage, all newly allocated.
            RuntimeFn::NewObject => RuntimeSig::new(Cell, WritesBounded(2), false),
            // Fresh cells, but the hole-fill loop is length-dependent.
            RuntimeFn::NewArray => RuntimeSig::new(Cell, WritesUnbounded, false),
            RuntimeFn::Intrinsic(i) => {
                if i.is_pure_math() || i == Intrinsic::MathRandom {
                    // Math.random mutates only the host-side RNG.
                    RuntimeSig::new(Number, Pure, false)
                } else {
                    match i {
                        Intrinsic::ArrayPush => RuntimeSig::new(Number, WritesUnbounded, true),
                        // Writes ARR_LEN (one line) and reads the popped slot.
                        Intrinsic::ArrayPop => RuntimeSig::new(Any, WritesBounded(1), true),
                        Intrinsic::StringCharCodeAt | Intrinsic::StringIndexOf => {
                            RuntimeSig::new(Number, ReadsHeap, false)
                        }
                        // Produce a (possibly fresh) interned string cell.
                        Intrinsic::StringCharAt
                        | Intrinsic::StringFromCharCode
                        | Intrinsic::StringSubstring => {
                            RuntimeSig::new(Cell, WritesBounded(2), false)
                        }
                        // Writes the host output buffer, reads guest strings.
                        Intrinsic::Print => RuntimeSig::new(Other, ReadsHeap, false),
                        _ => RuntimeSig::new(Any, WritesUnbounded, true),
                    }
                }
            }
        }
    }

    /// Executes the helper on `args`, recording profile data at `site`.
    ///
    /// # Errors
    ///
    /// Propagates the underlying semantic errors.
    pub fn dispatch(self, rt: &mut Runtime, args: &[Value], site: Site) -> R<Value> {
        let arg = |i: usize| args.get(i).copied().unwrap_or(Value::UNDEFINED);
        match self {
            RuntimeFn::Binary(op) => {
                if op == BinaryOp::Add {
                    rt.generic_add(arg(0), arg(1), site)
                } else if op.is_comparison() {
                    rt.generic_compare(op, arg(0), arg(1), site)
                } else if matches!(
                    op,
                    BinaryOp::BitAnd
                        | BinaryOp::BitOr
                        | BinaryOp::BitXor
                        | BinaryOp::Shl
                        | BinaryOp::Shr
                        | BinaryOp::UShr
                ) {
                    rt.generic_bitwise(op, arg(0), arg(1), site)
                } else {
                    rt.generic_arith(op, arg(0), arg(1), site)
                }
            }
            RuntimeFn::Unary(op) => rt.generic_unary(op, arg(0), site),
            RuntimeFn::ToBoolean => {
                let b = rt.to_boolean(arg(0));
                Ok(Value::new_bool(b))
            }
            RuntimeFn::GetProp(name) => rt.get_prop(arg(0), name, site),
            RuntimeFn::PutProp(name) => {
                rt.put_prop(arg(0), name, arg(1), site)?;
                Ok(Value::UNDEFINED)
            }
            RuntimeFn::GetIndex => rt.get_index(arg(0), arg(1), site),
            RuntimeFn::PutIndex => {
                rt.put_index(arg(0), arg(1), arg(2), site)?;
                Ok(Value::UNDEFINED)
            }
            RuntimeFn::GetGlobal(name) => Ok(rt.get_global(name)),
            RuntimeFn::PutGlobal(name) => {
                rt.put_global(name, arg(0));
                Ok(Value::UNDEFINED)
            }
            RuntimeFn::NewObject => rt.new_object(),
            RuntimeFn::NewArray => {
                let n = rt.to_number(arg(0));
                if !(0.0..=u32::MAX as f64).contains(&n) || n.fract() != 0.0 {
                    return Err(RuntimeError::TypeError("invalid array length".into()));
                }
                rt.new_array(n as u32)
            }
            RuntimeFn::Intrinsic(i) => rt.call_intrinsic(i, args, site),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rt() -> Runtime {
        let mut rt = Runtime::new();
        rt.length_name = Some(NameId(1000));
        rt
    }

    #[test]
    fn int_add_fast_path_and_overflow() {
        let mut rt = rt();
        let v = rt.generic_add(Value::new_int32(2), Value::new_int32(3), None).unwrap();
        assert_eq!(v, Value::new_int32(5));
        let v = rt.generic_add(Value::new_int32(i32::MAX), Value::new_int32(1), None).unwrap();
        assert!(v.is_double());
        assert_eq!(v.as_double(), i32::MAX as f64 + 1.0);
    }

    #[test]
    fn overflow_is_profiled() {
        let mut rt = rt();
        let site = Some((FuncId(0), SiteId(0)));
        rt.generic_add(Value::new_int32(1), Value::new_int32(2), site).unwrap();
        assert!(!rt.profiles.site(FuncId(0), SiteId(0)).unwrap().overflowed);
        rt.generic_add(Value::new_int32(i32::MAX), Value::new_int32(1), site).unwrap();
        assert!(rt.profiles.site(FuncId(0), SiteId(0)).unwrap().overflowed);
    }

    #[test]
    fn string_concat() {
        let mut rt = rt();
        let a = rt.intern_value("foo").unwrap();
        let v = rt.generic_add(a, Value::new_int32(7), None).unwrap();
        assert_eq!(rt.string_contents(v), "foo7");
    }

    #[test]
    fn add_coercions() {
        let mut rt = rt();
        let v = rt.generic_add(Value::TRUE, Value::new_int32(1), None).unwrap();
        assert_eq!(v, Value::new_int32(2));
        let v = rt.generic_add(Value::NULL, Value::new_int32(1), None).unwrap();
        assert_eq!(v, Value::new_int32(1));
        let v = rt.generic_add(Value::UNDEFINED, Value::new_int32(1), None).unwrap();
        assert!(v.is_double() && v.as_double().is_nan());
    }

    #[test]
    fn mul_negative_zero_stays_double() {
        let mut rt = rt();
        let v = rt
            .generic_arith(BinaryOp::Mul, Value::new_int32(0), Value::new_int32(-1), None)
            .unwrap();
        assert!(v.is_double());
        assert!(v.as_double() == 0.0 && v.as_double().is_sign_negative());
    }

    #[test]
    fn division_produces_exact_ints() {
        let mut rt = rt();
        let v = rt
            .generic_arith(BinaryOp::Div, Value::new_int32(8), Value::new_int32(2), None)
            .unwrap();
        assert_eq!(v, Value::new_int32(4));
        let v = rt
            .generic_arith(BinaryOp::Div, Value::new_int32(1), Value::new_int32(2), None)
            .unwrap();
        assert_eq!(v.as_double(), 0.5);
    }

    #[test]
    fn modulo_sign_follows_dividend() {
        let mut rt = rt();
        let v = rt
            .generic_arith(BinaryOp::Mod, Value::new_int32(-5), Value::new_int32(3), None)
            .unwrap();
        assert_eq!(v.as_number(), -2.0);
    }

    #[test]
    fn bitwise_semantics() {
        let mut rt = rt();
        let v = rt
            .generic_bitwise(BinaryOp::Shl, Value::new_int32(1), Value::new_int32(33), None)
            .unwrap();
        assert_eq!(v, Value::new_int32(2)); // shift count masked to 1
        let v = rt
            .generic_bitwise(BinaryOp::UShr, Value::new_int32(-1), Value::new_int32(0), None)
            .unwrap();
        assert_eq!(v.as_number(), u32::MAX as f64);
        let v = rt
            .generic_bitwise(BinaryOp::BitAnd, Value::new_double(5.9), Value::new_int32(3), None)
            .unwrap();
        assert_eq!(v, Value::new_int32(1)); // ToInt32 truncates 5.9 → 5
    }

    #[test]
    fn comparisons() {
        let mut rt = rt();
        let t = rt
            .generic_compare(BinaryOp::Lt, Value::new_int32(1), Value::new_double(1.5), None)
            .unwrap();
        assert_eq!(t, Value::TRUE);
        let a = rt.intern_value("abc").unwrap();
        let b = rt.intern_value("abd").unwrap();
        let t = rt.generic_compare(BinaryOp::Lt, a, b, None).unwrap();
        assert_eq!(t, Value::TRUE);
        // NaN compares false.
        let nan = Value::new_double(f64::NAN);
        let t = rt.generic_compare(BinaryOp::Le, nan, nan, None).unwrap();
        assert_eq!(t, Value::FALSE);
    }

    #[test]
    fn equality_rules() {
        let mut rt = rt();
        // 1 === 1.0
        let t = rt
            .generic_compare(BinaryOp::StrictEq, Value::new_int32(1), Value::new_double(1.0), None)
            .unwrap();
        assert_eq!(t, Value::TRUE);
        // null == undefined but null !== undefined
        let t = rt.generic_compare(BinaryOp::Eq, Value::NULL, Value::UNDEFINED, None).unwrap();
        assert_eq!(t, Value::TRUE);
        let t =
            rt.generic_compare(BinaryOp::StrictEq, Value::NULL, Value::UNDEFINED, None).unwrap();
        assert_eq!(t, Value::FALSE);
        // "5" == 5
        let five = rt.intern_value("5").unwrap();
        let t = rt.generic_compare(BinaryOp::Eq, five, Value::new_int32(5), None).unwrap();
        assert_eq!(t, Value::TRUE);
        // object identity
        let o1 = rt.new_object().unwrap();
        let o2 = rt.new_object().unwrap();
        let t = rt.generic_compare(BinaryOp::Eq, o1, o2, None).unwrap();
        assert_eq!(t, Value::FALSE);
        let t = rt.generic_compare(BinaryOp::StrictEq, o1, o1, None).unwrap();
        assert_eq!(t, Value::TRUE);
    }

    #[test]
    fn unary_negate_zero_is_double() {
        let mut rt = rt();
        let v = rt.generic_unary(UnaryOp::Neg, Value::new_int32(0), None).unwrap();
        assert!(v.is_double());
        assert!(v.as_double().is_sign_negative());
        let v = rt.generic_unary(UnaryOp::Neg, Value::new_int32(5), None).unwrap();
        assert_eq!(v, Value::new_int32(-5));
    }

    #[test]
    fn typeof_strings() {
        let mut rt = rt();
        for (v, expect) in [
            (Value::new_int32(1), "number"),
            (Value::TRUE, "boolean"),
            (Value::UNDEFINED, "undefined"),
            (Value::NULL, "object"),
        ] {
            let t = rt.generic_unary(UnaryOp::Typeof, v, None).unwrap();
            assert_eq!(rt.string_contents(t), expect);
        }
    }

    #[test]
    fn property_roundtrip_and_shapes() {
        let mut rt = rt();
        let o = rt.new_object().unwrap();
        rt.put_prop(o, NameId(1), Value::new_int32(10), None).unwrap();
        rt.put_prop(o, NameId(2), Value::new_int32(20), None).unwrap();
        assert_eq!(rt.get_prop(o, NameId(1), None).unwrap(), Value::new_int32(10));
        assert_eq!(rt.get_prop(o, NameId(2), None).unwrap(), Value::new_int32(20));
        assert_eq!(rt.get_prop(o, NameId(3), None).unwrap(), Value::UNDEFINED);
        // Overwrite does not transition.
        let shape_before = rt.shape_of(o.as_cell());
        rt.put_prop(o, NameId(1), Value::new_int32(11), None).unwrap();
        assert_eq!(rt.shape_of(o.as_cell()), shape_before);
        assert_eq!(rt.get_prop(o, NameId(1), None).unwrap(), Value::new_int32(11));
    }

    #[test]
    fn many_properties_grow_storage() {
        let mut rt = rt();
        let o = rt.new_object().unwrap();
        for i in 0..32 {
            rt.put_prop(o, NameId(i), Value::new_int32(i as i32), None).unwrap();
        }
        for i in 0..32 {
            assert_eq!(rt.get_prop(o, NameId(i), None).unwrap(), Value::new_int32(i as i32));
        }
    }

    #[test]
    fn property_read_on_nullish_is_error() {
        let mut rt = rt();
        assert!(rt.get_prop(Value::NULL, NameId(0), None).is_err());
        assert!(rt.get_prop(Value::UNDEFINED, NameId(0), None).is_err());
        assert_eq!(rt.get_prop(Value::new_int32(3), NameId(0), None).unwrap(), Value::UNDEFINED);
    }

    #[test]
    fn array_length_and_string_length() {
        let mut rt = rt();
        let a = rt.new_array(7).unwrap();
        let len_name = rt.length_name.unwrap();
        assert_eq!(rt.get_prop(a, len_name, None).unwrap(), Value::new_int32(7));
        let s = rt.intern_value("hello").unwrap();
        assert_eq!(rt.get_prop(s, len_name, None).unwrap(), Value::new_int32(5));
    }

    #[test]
    fn array_oob_and_holes_yield_undefined() {
        let mut rt = rt();
        let a = rt.new_array(3).unwrap();
        rt.put_index(a, Value::new_int32(1), Value::new_int32(9), None).unwrap();
        assert_eq!(rt.get_index(a, Value::new_int32(1), None).unwrap(), Value::new_int32(9));
        assert_eq!(rt.get_index(a, Value::new_int32(0), None).unwrap(), Value::UNDEFINED); // hole
        assert_eq!(rt.get_index(a, Value::new_int32(99), None).unwrap(), Value::UNDEFINED); // oob
        assert_eq!(rt.get_index(a, Value::new_int32(-1), None).unwrap(), Value::UNDEFINED);
    }

    #[test]
    fn array_elongation() {
        let mut rt = rt();
        let a = rt.new_array(0).unwrap();
        rt.put_index(a, Value::new_int32(10), Value::new_int32(1), None).unwrap();
        let len_name = rt.length_name.unwrap();
        assert_eq!(rt.get_prop(a, len_name, None).unwrap(), Value::new_int32(11));
        assert_eq!(rt.get_index(a, Value::new_int32(5), None).unwrap(), Value::UNDEFINED);
        assert_eq!(rt.get_index(a, Value::new_int32(10), None).unwrap(), Value::new_int32(1));
    }

    #[test]
    fn globals_roundtrip() {
        let mut rt = rt();
        assert_eq!(rt.get_global(NameId(5)), Value::UNDEFINED);
        rt.put_global(NameId(5), Value::new_int32(3));
        assert_eq!(rt.get_global(NameId(5)), Value::new_int32(3));
    }

    #[test]
    fn push_pop() {
        let mut rt = rt();
        let a = rt.new_array(0).unwrap();
        let len = rt.call_intrinsic(Intrinsic::ArrayPush, &[a, Value::new_int32(4)], None).unwrap();
        assert_eq!(len, Value::new_int32(1));
        let v = rt.call_intrinsic(Intrinsic::ArrayPop, &[a], None).unwrap();
        assert_eq!(v, Value::new_int32(4));
        let v = rt.call_intrinsic(Intrinsic::ArrayPop, &[a], None).unwrap();
        assert_eq!(v, Value::UNDEFINED);
    }

    #[test]
    fn string_intrinsics() {
        let mut rt = rt();
        let s = rt.intern_value("hello").unwrap();
        let c = rt
            .call_intrinsic(Intrinsic::StringCharCodeAt, &[s, Value::new_int32(1)], None)
            .unwrap();
        assert_eq!(c, Value::new_int32(101));
        let sub = rt
            .call_intrinsic(
                Intrinsic::StringSubstring,
                &[s, Value::new_int32(1), Value::new_int32(3)],
                None,
            )
            .unwrap();
        assert_eq!(rt.string_contents(sub), "el");
        let idx = rt.intern_value("ll").unwrap();
        let found = rt.call_intrinsic(Intrinsic::StringIndexOf, &[s, idx], None).unwrap();
        assert_eq!(found, Value::new_int32(2));
        let built = rt
            .call_intrinsic(
                Intrinsic::StringFromCharCode,
                &[Value::new_int32(72), Value::new_int32(105)],
                None,
            )
            .unwrap();
        assert_eq!(rt.string_contents(built), "Hi");
    }

    #[test]
    fn math_intrinsics() {
        let mut rt = rt();
        let v = rt.call_intrinsic(Intrinsic::MathFloor, &[Value::new_double(2.7)], None).unwrap();
        assert_eq!(v, Value::new_int32(2));
        let v = rt
            .call_intrinsic(Intrinsic::MathPow, &[Value::new_int32(2), Value::new_int32(10)], None)
            .unwrap();
        assert_eq!(v, Value::new_int32(1024));
        let v = rt
            .call_intrinsic(
                Intrinsic::MathMax,
                &[Value::new_int32(1), Value::new_int32(5), Value::new_int32(3)],
                None,
            )
            .unwrap();
        assert_eq!(v, Value::new_int32(5));
    }

    #[test]
    fn print_accumulates_output() {
        let mut rt = rt();
        rt.call_intrinsic(Intrinsic::Print, &[Value::new_int32(42)], None).unwrap();
        let s = rt.intern_value("done").unwrap();
        rt.call_intrinsic(Intrinsic::Print, &[s], None).unwrap();
        assert_eq!(rt.output, "42\ndone\n");
    }

    #[test]
    fn to_boolean_table() {
        let mut rt = rt();
        assert!(!rt.to_boolean(Value::new_int32(0)));
        assert!(rt.to_boolean(Value::new_int32(-1)));
        assert!(!rt.to_boolean(Value::new_double(f64::NAN)));
        assert!(!rt.to_boolean(Value::new_double(-0.0)));
        assert!(!rt.to_boolean(Value::UNDEFINED));
        assert!(!rt.to_boolean(Value::NULL));
        assert!(!rt.to_boolean(Value::FALSE));
        let empty = rt.intern_value("").unwrap();
        assert!(!rt.to_boolean(empty));
        let full = rt.intern_value("x").unwrap();
        assert!(rt.to_boolean(full));
        let obj = rt.new_object().unwrap();
        assert!(rt.to_boolean(obj));
    }

    #[test]
    fn runtime_fn_dispatch_matches_direct() {
        let mut rt = rt();
        let v = RuntimeFn::Binary(BinaryOp::Add)
            .dispatch(&mut rt, &[Value::new_int32(2), Value::new_int32(3)], None)
            .unwrap();
        assert_eq!(v, Value::new_int32(5));
        let o = RuntimeFn::NewObject.dispatch(&mut rt, &[], None).unwrap();
        RuntimeFn::PutProp(NameId(9)).dispatch(&mut rt, &[o, Value::new_int32(1)], None).unwrap();
        let v = RuntimeFn::GetProp(NameId(9)).dispatch(&mut rt, &[o], None).unwrap();
        assert_eq!(v, Value::new_int32(1));
    }

    #[test]
    fn f64_to_int32_wraps() {
        assert_eq!(f64_to_int32(4294967296.0), 0);
        assert_eq!(f64_to_int32(4294967297.0), 1);
        assert_eq!(f64_to_int32(-1.0), -1);
        assert_eq!(f64_to_int32(2147483648.0), i32::MIN);
        assert_eq!(f64_to_int32(f64::NAN), 0);
        assert_eq!(f64_to_int32(f64::INFINITY), 0);
        assert_eq!(f64_to_int32(5.9), 5);
        assert_eq!(f64_to_int32(-5.9), -5);
    }

    #[test]
    fn prop_int_add_matches_f64() {
        let mut rng = crate::rng::Lcg::new(21);
        for _ in 0..1024 {
            let a = rng.next_u64() as u32 as i32;
            let b = rng.next_u64() as u32 as i32;
            let mut rt = Runtime::new();
            let v = rt.generic_add(Value::new_int32(a), Value::new_int32(b), None).unwrap();
            assert_eq!(v.as_number(), a as f64 + b as f64);
        }
    }

    #[test]
    fn prop_bitand_matches() {
        let mut rng = crate::rng::Lcg::new(22);
        for _ in 0..1024 {
            let a = rng.next_u64() as u32 as i32;
            let b = rng.next_u64() as u32 as i32;
            let mut rt = Runtime::new();
            let v = rt
                .generic_bitwise(BinaryOp::BitAnd, Value::new_int32(a), Value::new_int32(b), None)
                .unwrap();
            assert_eq!(v.as_int32(), a & b);
        }
    }

    #[test]
    fn prop_to_int32_agrees_with_wrapping() {
        let mut rng = crate::rng::Lcg::new(23);
        for _ in 0..1024 {
            let d = (rng.next_f64() - 0.5) * 2.0e12;
            let wrapped = f64_to_int32(d);
            let expect = (d.trunc() as i64 & 0xFFFF_FFFF) as u32 as i32;
            assert_eq!(wrapped, expect, "d = {d}");
        }
    }

    #[test]
    fn signatures_classify_helpers_soundly() {
        // Read-only helpers never clobber and report zero write lines.
        for f in [
            RuntimeFn::Binary(BinaryOp::Lt),
            RuntimeFn::Binary(BinaryOp::BitAnd),
            RuntimeFn::ToBoolean,
            RuntimeFn::GetProp(NameId(0)),
            RuntimeFn::GetIndex,
            RuntimeFn::GetGlobal(NameId(0)),
            RuntimeFn::Intrinsic(Intrinsic::MathSqrt),
            RuntimeFn::Intrinsic(Intrinsic::StringCharCodeAt),
            RuntimeFn::Intrinsic(Intrinsic::Print),
        ] {
            let sig = f.signature();
            assert!(!sig.clobbers, "{f:?}");
            assert_eq!(sig.effect.write_lines(), Some(0), "{f:?}");
        }
        // Bitwise produces int32, comparisons produce bool, math is pure.
        assert_eq!(RuntimeFn::Binary(BinaryOp::BitXor).signature().ret, RetTag::Int32);
        assert_eq!(RuntimeFn::Binary(BinaryOp::StrictEq).signature().ret, RetTag::Bool);
        assert_eq!(RuntimeFn::Intrinsic(Intrinsic::MathPow).signature().effect, HeapEffect::Pure);
        // Stores clobber; allocators write fresh lines without clobbering.
        assert!(RuntimeFn::PutProp(NameId(0)).signature().clobbers);
        assert!(RuntimeFn::PutIndex.signature().clobbers);
        assert!(RuntimeFn::PutGlobal(NameId(0)).signature().clobbers);
        assert!(!RuntimeFn::NewObject.signature().clobbers);
        assert!(RuntimeFn::NewObject.signature().effect.write_lines().is_some());
        assert_eq!(RuntimeFn::NewArray.signature().effect, HeapEffect::WritesUnbounded);
        // The effect join is a linear lattice.
        use HeapEffect::*;
        assert_eq!(Pure.join(ReadsHeap), ReadsHeap);
        assert_eq!(ReadsHeap.join(WritesBounded(2)), WritesBounded(2));
        assert_eq!(WritesBounded(2).join(WritesBounded(5)), WritesBounded(5));
        assert_eq!(WritesBounded(9).join(WritesUnbounded), WritesUnbounded);
        assert_eq!(WritesUnbounded.write_lines(), None);
        assert_eq!(WritesBounded(3).describe(), "writes-bounded(3)");
    }

    #[test]
    fn prop_array_put_get_roundtrip() {
        let mut rng = crate::rng::Lcg::new(24);
        for _ in 0..256 {
            let idx = (rng.next_u64() % 200) as u32;
            let val = rng.next_u64() as u32 as i32;
            let mut rt = Runtime::new();
            let a = rt.new_array(4).unwrap();
            rt.put_index(a, Value::new_number(idx as f64), Value::new_int32(val), None).unwrap();
            let v = rt.get_index(a, Value::new_number(idx as f64), None).unwrap();
            assert_eq!(v, Value::new_int32(val));
        }
    }
}
