//! Hidden classes ("shapes", JavaScriptCore calls them Structures).
//!
//! Every object carries a [`ShapeId`] in its header. Adding a property
//! transitions the object to a child shape; objects built by the same code
//! path converge on the same shape, which is what makes the FTL tier's
//! *property checks* (paper §III-A1) work: a single shape comparison proves
//! the slot offset of every property.

use std::collections::HashMap;

use nomap_bytecode::NameId;

/// Identifier of a hidden class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ShapeId(pub u32);

impl ShapeId {
    /// The shape of a freshly created empty object.
    pub const ROOT: ShapeId = ShapeId(0);
}

#[derive(Debug, Clone)]
struct Shape {
    /// Property → slot map (full copy per shape; fine at our scale).
    slots: HashMap<NameId, u32>,
    /// Add-property transitions.
    transitions: HashMap<NameId, ShapeId>,
    /// Number of slots an object of this shape uses.
    slot_count: u32,
}

/// The table of all shapes created so far.
#[derive(Debug, Clone)]
pub struct ShapeTable {
    shapes: Vec<Shape>,
}

impl Default for ShapeTable {
    fn default() -> Self {
        Self::new()
    }
}

impl ShapeTable {
    /// Creates a table containing only the root (empty) shape.
    pub fn new() -> Self {
        ShapeTable {
            shapes: vec![Shape {
                slots: HashMap::new(),
                transitions: HashMap::new(),
                slot_count: 0,
            }],
        }
    }

    /// Looks up the slot of `name` in `shape`.
    pub fn lookup(&self, shape: ShapeId, name: NameId) -> Option<u32> {
        self.shapes[shape.0 as usize].slots.get(&name).copied()
    }

    /// Number of property slots used by objects of `shape`.
    pub fn slot_count(&self, shape: ShapeId) -> u32 {
        self.shapes[shape.0 as usize].slot_count
    }

    /// Returns the shape reached from `shape` by adding `name`, creating it
    /// on first use, along with the slot assigned to `name`.
    pub fn transition(&mut self, shape: ShapeId, name: NameId) -> (ShapeId, u32) {
        if let Some(slot) = self.lookup(shape, name) {
            return (shape, slot);
        }
        if let Some(&next) = self.shapes[shape.0 as usize].transitions.get(&name) {
            let slot = self.lookup(next, name).expect("transition target has the property");
            return (next, slot);
        }
        let parent = &self.shapes[shape.0 as usize];
        let slot = parent.slot_count;
        let mut slots = parent.slots.clone();
        slots.insert(name, slot);
        let child = Shape { slots, transitions: HashMap::new(), slot_count: slot + 1 };
        let child_id = ShapeId(self.shapes.len() as u32);
        self.shapes.push(child);
        self.shapes[shape.0 as usize].transitions.insert(name, child_id);
        (child_id, slot)
    }

    /// Total number of shapes created.
    pub fn len(&self) -> usize {
        self.shapes.len()
    }

    /// Always false: the root shape exists from construction.
    pub fn is_empty(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: u32) -> NameId {
        NameId(i)
    }

    #[test]
    fn transitions_are_shared() {
        let mut t = ShapeTable::new();
        let (s1, slot_a) = t.transition(ShapeId::ROOT, n(0));
        let (s1b, slot_a2) = t.transition(ShapeId::ROOT, n(0));
        assert_eq!(s1, s1b);
        assert_eq!(slot_a, slot_a2);
        assert_eq!(slot_a, 0);
        let (s2, slot_b) = t.transition(s1, n(1));
        assert_eq!(slot_b, 1);
        assert_eq!(t.lookup(s2, n(0)), Some(0));
        assert_eq!(t.lookup(s2, n(1)), Some(1));
        assert_eq!(t.lookup(s1, n(1)), None);
    }

    #[test]
    fn same_property_order_same_shape() {
        let mut t = ShapeTable::new();
        let (a1, _) = t.transition(ShapeId::ROOT, n(5));
        let (a2, _) = t.transition(a1, n(6));
        let (b1, _) = t.transition(ShapeId::ROOT, n(5));
        let (b2, _) = t.transition(b1, n(6));
        assert_eq!(a2, b2);
    }

    #[test]
    fn different_order_different_shape() {
        let mut t = ShapeTable::new();
        let (a1, _) = t.transition(ShapeId::ROOT, n(1));
        let (a2, _) = t.transition(a1, n(2));
        let (b1, _) = t.transition(ShapeId::ROOT, n(2));
        let (b2, _) = t.transition(b1, n(1));
        assert_ne!(a2, b2);
    }

    #[test]
    fn existing_property_transition_is_identity() {
        let mut t = ShapeTable::new();
        let (s1, _) = t.transition(ShapeId::ROOT, n(0));
        let (s1b, slot) = t.transition(s1, n(0));
        assert_eq!(s1, s1b);
        assert_eq!(slot, 0);
        assert_eq!(t.slot_count(s1), 1);
    }
}
