//! Runtime string table.
//!
//! String *contents* are interned on the Rust side; each distinct string
//! gets one heap cell (`[header, string_id, length]`) so string values are
//! ordinary cells with realistic header reads.

use std::collections::HashMap;

/// Identifier of an interned runtime string.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct StringId(pub u32);

/// Interned runtime strings plus their lazily-allocated heap cells.
#[derive(Debug, Clone, Default)]
pub struct StringTable {
    strings: Vec<String>,
    map: HashMap<String, StringId>,
    cells: Vec<Option<u64>>,
}

impl StringTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns `s`.
    pub fn intern(&mut self, s: &str) -> StringId {
        if let Some(&id) = self.map.get(s) {
            return id;
        }
        let id = StringId(self.strings.len() as u32);
        self.strings.push(s.to_owned());
        self.map.insert(s.to_owned(), id);
        self.cells.push(None);
        id
    }

    /// The contents of `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not produced by this table.
    pub fn get(&self, id: StringId) -> &str {
        &self.strings[id.0 as usize]
    }

    /// Cached heap cell address for `id`, if one was allocated.
    pub fn cell(&self, id: StringId) -> Option<u64> {
        self.cells[id.0 as usize]
    }

    /// Records the heap cell allocated for `id`.
    pub fn set_cell(&mut self, id: StringId, addr: u64) {
        self.cells[id.0 as usize] = Some(addr);
    }

    /// Number of interned strings.
    pub fn len(&self) -> usize {
        self.strings.len()
    }

    /// True when no strings are interned.
    pub fn is_empty(&self) -> bool {
        self.strings.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_deduplicates() {
        let mut t = StringTable::new();
        let a = t.intern("abc");
        let b = t.intern("abc");
        let c = t.intern("abd");
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(t.get(a), "abc");
    }

    #[test]
    fn cells_start_unallocated() {
        let mut t = StringTable::new();
        let a = t.intern("x");
        assert_eq!(t.cell(a), None);
        t.set_cell(a, 0x2000);
        assert_eq!(t.cell(a), Some(0x2000));
    }
}
