//! Global variable slots, resident in the simulated globals region.

use std::collections::HashMap;

use nomap_bytecode::NameId;

/// First word address handed out for globals (inside the globals region).
const FIRST_GLOBAL: u64 = 0x1000;

/// Maps global names to fixed word addresses.
#[derive(Debug, Clone, Default)]
pub struct Globals {
    slots: HashMap<NameId, u64>,
    next: u64,
}

impl Globals {
    /// Creates an empty global table.
    pub fn new() -> Self {
        Globals { slots: HashMap::new(), next: FIRST_GLOBAL }
    }

    /// Address of `name`'s slot, if it was ever assigned.
    pub fn addr(&self, name: NameId) -> Option<u64> {
        self.slots.get(&name).copied()
    }

    /// Address of `name`'s slot, allocating one on first use. The second
    /// element is `true` when the slot is new (callers initialize it to
    /// `undefined`).
    pub fn ensure_addr(&mut self, name: NameId) -> (u64, bool) {
        if let Some(&a) = self.slots.get(&name) {
            return (a, false);
        }
        let a = self.next;
        self.next += 1;
        self.slots.insert(name, a);
        (a, true)
    }

    /// Number of allocated global slots.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// True when no globals exist.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slots_are_stable_and_distinct() {
        let mut g = Globals::new();
        let (a, new_a) = g.ensure_addr(NameId(1));
        let (b, new_b) = g.ensure_addr(NameId(2));
        let (a2, new_a2) = g.ensure_addr(NameId(1));
        assert!(new_a && new_b && !new_a2);
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(g.addr(NameId(1)), Some(a));
        assert_eq!(g.addr(NameId(9)), None);
    }
}
