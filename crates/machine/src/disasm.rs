//! Human-readable machine-code listings.

use std::fmt::Write as _;

use crate::inst::MachInst;

/// Renders one instruction.
pub fn render(inst: &MachInst) -> String {
    use MachInst::*;
    match inst {
        MovImm { dst, imm } => format!("{dst} = {imm:#x}"),
        Mov { dst, src } => format!("{dst} = {src}"),
        Alu64 { op, dst, a, b } => format!("{dst} = {a} {op:?} {b}"),
        Alu64Imm { op, dst, a, imm } => format!("{dst} = {a} {op:?} {imm:#x}"),
        AddI32 { dst, a, b } => format!("{dst} = addi32 {a}, {b}  ; sets OF/SOF"),
        SubI32 { dst, a, b } => format!("{dst} = subi32 {a}, {b}  ; sets OF/SOF"),
        MulI32 { dst, a, b } => format!("{dst} = muli32 {a}, {b}  ; sets OF/SOF"),
        NegI32 { dst, a } => format!("{dst} = negi32 {a}  ; sets OF/SOF"),
        FAlu { op, dst, a, b } => format!("{dst} = f64 {a} {op:?} {b}"),
        FNeg { dst, a } => format!("{dst} = fneg {a}"),
        CvtI32ToF64 { dst, src } => format!("{dst} = cvt_i32_f64 {src}"),
        CvtF64ToI32 { dst, src } => format!("{dst} = cvt_f64_i32 {src}"),
        UnboxI32 { dst, src } => format!("{dst} = unbox_i32 {src}"),
        ToF64 { dst, src } => format!("{dst} = to_f64 {src}"),
        BoxI32 { dst, src } => format!("{dst} = box_i32 {src}"),
        BoxF64 { dst, src } => format!("{dst} = box_f64 {src}"),
        BoxBool { dst, src } => format!("{dst} = box_bool {src}"),
        IAlu32 { op, dst, a, b } => format!("{dst} = i32 {a} {op:?} {b}"),
        UShr32 { dst, a, b } => format!("{dst} = ushr32 {a}, {b}"),
        MathF64 { intr, dst, args } => {
            let a: Vec<String> = args.iter().map(|r| r.to_string()).collect();
            format!("{dst} = math {intr:?}({})", a.join(", "))
        }
        CmpI64 { dst, a, b, cond } => format!("{dst} = {a} {cond:?} {b}"),
        CmpImm { dst, a, imm, cond } => format!("{dst} = {a} {cond:?} {imm:#x}"),
        CmpF64 { dst, a, b, cond } => format!("{dst} = f64 {a} {cond:?} {b}"),
        Jump { target } => format!("jump -> {}", target.0),
        BranchNz { cond, target } => format!("if {cond} jump -> {}", target.0),
        BranchZ { cond, target } => format!("if !{cond} jump -> {}", target.0),
        Load { dst, base, offset } => format!("{dst} = mem[{base} + {offset}]"),
        Store { src, base, offset } => format!("mem[{base} + {offset}] = {src}"),
        LoadIdx { dst, base, index } => format!("{dst} = mem[{base} + {index}]"),
        StoreIdx { src, base, index } => format!("mem[{base} + {index}] = {src}"),
        LoadGlobal { dst, addr } => format!("{dst} = global[{addr:#x}]"),
        StoreGlobal { src, addr } => format!("global[{addr:#x}] = {src}"),
        CallRt { dst, func, args, .. } => {
            let a: Vec<String> = args.iter().map(|r| r.to_string()).collect();
            format!("{dst} = call_rt {func:?}({})", a.join(", "))
        }
        CallJs { dst, callee, args } => {
            let a: Vec<String> = args.iter().map(|r| r.to_string()).collect();
            format!("{dst} = call_js {callee}({})", a.join(", "))
        }
        Ret { src } => format!("ret {src}"),
        DeoptIf { cond, smp, kind } => {
            format!("deopt_if {cond}  ; {kind:?} check, smp {}", smp.0)
        }
        DeoptIfOverflow { smp } => format!("deopt_if_overflow  ; smp {}", smp.0),
        AbortIf { cond, kind } => format!("abort_if {cond}  ; {kind:?} check"),
        AbortIfOverflow => "abort_if_overflow".to_owned(),
        XBegin { fallback } => format!("xbegin  ; fallback smp {}", fallback.0),
        XEnd => "xend  ; checks SOF, flash-clears SW bits".to_owned(),
        Fence => "fence".to_owned(),
        Nop => "nop".to_owned(),
    }
}

/// Renders a whole code body, one instruction per numbered line.
pub fn render_listing(code: &[MachInst]) -> String {
    let mut out = String::new();
    for (i, inst) in code.iter().enumerate() {
        let _ = writeln!(out, "{i:5}: {}", render(inst));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::{CheckKind, MReg, SmpId};

    #[test]
    fn renders_every_interesting_shape() {
        let code = vec![
            MachInst::MovImm { dst: MReg(1), imm: 42 },
            MachInst::AddI32 { dst: MReg(2), a: MReg(1), b: MReg(1) },
            MachInst::DeoptIf { cond: MReg(2), smp: SmpId(0), kind: CheckKind::Bounds },
            MachInst::AbortIfOverflow,
            MachInst::XBegin { fallback: SmpId(1) },
            MachInst::XEnd,
            MachInst::Ret { src: MReg(2) },
        ];
        let text = render_listing(&code);
        assert_eq!(text.lines().count(), code.len());
        assert!(text.contains("xbegin"));
        assert!(text.contains("Bounds"));
    }
}
