//! Two-level cache simulator (L1D 32 KB 8-way, L2 256 KB 8-way, 64 B lines
//! — the Skylake i7 of paper §VI), with LRU replacement.
//!
//! The HTM models track their own speculative footprints (see
//! [`crate::htm`]); the cache simulator answers hit/miss questions for the
//! cycle model and carries per-line speculative-write (SW) bits so the
//! flash-clear at commit is observable.

use nomap_runtime::WORD_BYTES;

/// Geometry of one cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: u64,
    /// Associativity.
    pub ways: u32,
    /// Line size in bytes.
    pub line_bytes: u64,
}

impl CacheConfig {
    /// The evaluation machine's L1D: 32 KB, 8-way, 64 B lines.
    pub fn l1d() -> Self {
        CacheConfig { size_bytes: 32 * 1024, ways: 8, line_bytes: 64 }
    }

    /// The evaluation machine's L2: 256 KB, 8-way, 64 B lines.
    pub fn l2() -> Self {
        CacheConfig { size_bytes: 256 * 1024, ways: 8, line_bytes: 64 }
    }

    /// Number of sets.
    pub fn sets(&self) -> u64 {
        self.size_bytes / (self.line_bytes * self.ways as u64)
    }

    /// Set index of a byte address.
    pub fn set_of(&self, byte_addr: u64) -> u64 {
        (byte_addr / self.line_bytes) % self.sets()
    }

    /// Line (tag) address of a byte address.
    pub fn line_of(&self, byte_addr: u64) -> u64 {
        byte_addr / self.line_bytes
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct Line {
    tag: u64,
    valid: bool,
    sw: bool,
    lru: u64,
}

/// Where an access was satisfied.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessOutcome {
    /// Hit in L1.
    L1,
    /// Missed L1, hit L2.
    L2,
    /// Missed both levels.
    Memory,
}

/// One cache level.
#[derive(Debug, Clone)]
pub struct Cache {
    cfg: CacheConfig,
    sets: Vec<Vec<Line>>,
    tick: u64,
}

impl Cache {
    /// Creates an empty cache with the given geometry.
    pub fn new(cfg: CacheConfig) -> Self {
        let sets = (0..cfg.sets()).map(|_| vec![Line::default(); cfg.ways as usize]).collect();
        Cache { cfg, sets, tick: 0 }
    }

    /// Looks up `byte_addr`, filling on miss. Returns `(hit, evicted_sw)`
    /// where `evicted_sw` reports that a speculatively-written line was
    /// evicted (a capacity condition for HTM).
    pub fn access(&mut self, byte_addr: u64, mark_sw: bool) -> (bool, bool) {
        self.tick += 1;
        let set = self.cfg.set_of(byte_addr) as usize;
        let tag = self.cfg.line_of(byte_addr);
        let lines = &mut self.sets[set];
        if let Some(line) = lines.iter_mut().find(|l| l.valid && l.tag == tag) {
            line.lru = self.tick;
            line.sw |= mark_sw;
            return (true, false);
        }
        // Miss: choose a victim. Prefer invalid, then non-SW LRU, then SW
        // LRU (whose eviction the HTM must observe).
        let victim = if let Some(i) = lines.iter().position(|l| !l.valid) {
            i
        } else if let Some((i, _)) =
            lines.iter().enumerate().filter(|(_, l)| !l.sw).min_by_key(|(_, l)| l.lru)
        {
            i
        } else {
            lines
                .iter()
                .enumerate()
                .min_by_key(|(_, l)| l.lru)
                .map(|(i, _)| i)
                .expect("cache has ways")
        };
        let evicted_sw = lines[victim].valid && lines[victim].sw;
        lines[victim] = Line { tag, valid: true, sw: mark_sw, lru: self.tick };
        (false, evicted_sw)
    }

    /// Flash-clears all SW bits (commit/abort; a few cycles in hardware,
    /// paper §VI-A1).
    pub fn flash_clear_sw(&mut self) {
        for set in &mut self.sets {
            for line in set {
                line.sw = false;
            }
        }
    }

    /// Number of lines currently marked speculative.
    pub fn sw_line_count(&self) -> u64 {
        self.sets.iter().flatten().filter(|l| l.valid && l.sw).count() as u64
    }

    /// Geometry.
    pub fn config(&self) -> CacheConfig {
        self.cfg
    }
}

/// The two-level hierarchy used by the executor.
///
/// # Example
///
/// ```
/// use nomap_machine::{AccessOutcome, CacheSim};
///
/// let mut sim = CacheSim::new();
/// let (first, _) = sim.access_word(0x1000_0000, false, false);
/// let (again, _) = sim.access_word(0x1000_0000, false, false);
/// assert_eq!(first, AccessOutcome::Memory);
/// assert_eq!(again, AccessOutcome::L1);
/// ```
#[derive(Debug, Clone)]
pub struct CacheSim {
    /// L1 data cache.
    pub l1: Cache,
    /// Unified L2.
    pub l2: Cache,
    /// Hits/misses counters: `[l1_hits, l2_hits, mem_accesses]`.
    pub counts: [u64; 3],
}

impl Default for CacheSim {
    fn default() -> Self {
        Self::new()
    }
}

impl CacheSim {
    /// Creates the paper's L1D+L2 hierarchy.
    pub fn new() -> Self {
        CacheSim {
            l1: Cache::new(CacheConfig::l1d()),
            l2: Cache::new(CacheConfig::l2()),
            counts: [0; 3],
        }
    }

    /// Performs a word access at simulated word address `word_addr`.
    /// `sw_l1`/`sw_l2` mark the line speculative at each level. Returns the
    /// outcome plus whether an SW line was evicted at either level.
    pub fn access_word(
        &mut self,
        word_addr: u64,
        sw_l1: bool,
        sw_l2: bool,
    ) -> (AccessOutcome, bool) {
        let byte = word_addr * WORD_BYTES;
        let (l1_hit, ev1) = self.l1.access(byte, sw_l1);
        if l1_hit {
            self.counts[0] += 1;
            // L2 is inclusive in this model; keep its SW bit in sync.
            if sw_l2 {
                let (_, ev2) = self.l2.access(byte, true);
                return (AccessOutcome::L1, ev1 || ev2);
            }
            return (AccessOutcome::L1, ev1);
        }
        let (l2_hit, ev2) = self.l2.access(byte, sw_l2);
        if l2_hit {
            self.counts[1] += 1;
        } else {
            self.counts[2] += 1;
        }
        (if l2_hit { AccessOutcome::L2 } else { AccessOutcome::Memory }, ev1 || ev2)
    }

    /// Commit/abort: clear speculative bits at both levels.
    pub fn flash_clear_sw(&mut self) {
        self.l1.flash_clear_sw();
        self.l2.flash_clear_sw();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_geometry() {
        let l1 = CacheConfig::l1d();
        assert_eq!(l1.sets(), 64);
        let l2 = CacheConfig::l2();
        assert_eq!(l2.sets(), 512);
        assert_eq!(l1.set_of(0), l1.set_of(64 * 64)); // wraps at sets*line
        assert_ne!(l1.set_of(0), l1.set_of(64));
    }

    #[test]
    fn hits_after_fill() {
        let mut c = Cache::new(CacheConfig::l1d());
        assert_eq!(c.access(0x1000, false), (false, false));
        assert_eq!(c.access(0x1008, false), (true, false)); // same line
        assert_eq!(c.access(0x1040, false), (false, false)); // next line
    }

    #[test]
    fn lru_eviction() {
        let cfg = CacheConfig { size_bytes: 2 * 64, ways: 2, line_bytes: 64 };
        let mut c = Cache::new(cfg);
        // One set; fill both ways, touch the first, then insert a third.
        c.access(0, false);
        c.access(64, false);
        c.access(0, false); // line 0 is now MRU
        c.access(128, false); // evicts line 64
        assert!(c.access(0, false).0);
        assert!(!c.access(64, false).0);
    }

    #[test]
    fn sw_lines_resist_eviction() {
        let cfg = CacheConfig { size_bytes: 2 * 64, ways: 2, line_bytes: 64 };
        let mut c = Cache::new(cfg);
        c.access(0, true); // SW line, LRU
        c.access(64, false);
        c.access(128, false); // should evict line 64 (non-SW) not line 0
        assert!(c.access(0, false).0);
        assert_eq!(c.sw_line_count(), 1);
    }

    #[test]
    fn sw_eviction_is_reported() {
        let cfg = CacheConfig { size_bytes: 2 * 64, ways: 2, line_bytes: 64 };
        let mut c = Cache::new(cfg);
        c.access(0, true);
        c.access(64, true);
        let (_, evicted_sw) = c.access(128, true); // all ways SW: must evict one
        assert!(evicted_sw);
    }

    #[test]
    fn flash_clear_resets_sw() {
        let mut c = Cache::new(CacheConfig::l1d());
        c.access(0, true);
        assert_eq!(c.sw_line_count(), 1);
        c.flash_clear_sw();
        assert_eq!(c.sw_line_count(), 0);
    }

    #[test]
    fn hierarchy_counts() {
        let mut sim = CacheSim::new();
        let (o, _) = sim.access_word(0x100, false, false);
        assert_eq!(o, AccessOutcome::Memory);
        let (o, _) = sim.access_word(0x100, false, false);
        assert_eq!(o, AccessOutcome::L1);
        assert_eq!(sim.counts, [1, 0, 1]);
    }
}
