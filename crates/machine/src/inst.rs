//! The abstract machine ISA that all JIT tiers target.
//!
//! Registers are virtual (unbounded per function); see DESIGN.md for why a
//! register allocator is deliberately omitted. Values in registers are raw
//! 64-bit words — usually NaN-boxed [`nomap_runtime::Value`] bits, sometimes
//! raw addresses or unboxed doubles, depending on what the tier emitted.

use std::fmt;

use nomap_bytecode::{FuncId, SiteId};
use nomap_runtime::RuntimeFn;

/// A virtual machine register.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct MReg(pub u32);

impl fmt::Display for MReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// An instruction index within one compiled function.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Label(pub u32);

/// Index of a Stack Map Point in the owning function's stack-map table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SmpId(pub u32);

/// Paper Figure 3's check taxonomy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum CheckKind {
    /// Array-bounds check.
    Bounds,
    /// Integer overflow check.
    Overflow,
    /// Value-kind (representation) check.
    Type,
    /// Object shape / property check.
    Property,
    /// Hole checks, unexpected path guards, etc.
    Other,
}

impl CheckKind {
    /// All kinds, in the paper's legend order.
    pub const ALL: [CheckKind; 5] = [
        CheckKind::Bounds,
        CheckKind::Overflow,
        CheckKind::Type,
        CheckKind::Property,
        CheckKind::Other,
    ];

    /// Dense index for table storage.
    pub fn index(self) -> usize {
        match self {
            CheckKind::Bounds => 0,
            CheckKind::Overflow => 1,
            CheckKind::Type => 2,
            CheckKind::Property => 3,
            CheckKind::Other => 4,
        }
    }
}

/// Comparison condition for compare instructions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Cond {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Signed less-than.
    Lt,
    /// Signed less-or-equal.
    Le,
    /// Signed greater-than.
    Gt,
    /// Signed greater-or-equal.
    Ge,
    /// Unsigned below (`<` on the raw 64-bit word) — used by tag tests.
    Below,
    /// Unsigned at-or-above.
    AboveEq,
}

impl Cond {
    /// Evaluates the condition on signed 64-bit operands (or unsigned for
    /// the `Below`/`AboveEq` forms).
    pub fn eval_i64(self, a: u64, b: u64) -> bool {
        match self {
            Cond::Eq => a == b,
            Cond::Ne => a != b,
            Cond::Lt => (a as i64) < (b as i64),
            Cond::Le => (a as i64) <= (b as i64),
            Cond::Gt => (a as i64) > (b as i64),
            Cond::Ge => (a as i64) >= (b as i64),
            Cond::Below => a < b,
            Cond::AboveEq => a >= b,
        }
    }

    /// Evaluates the condition on doubles (NaN compares false except `Ne`).
    pub fn eval_f64(self, a: f64, b: f64) -> bool {
        match self {
            Cond::Eq => a == b,
            Cond::Ne => a != b,
            Cond::Lt | Cond::Below => a < b,
            Cond::Le => a <= b,
            Cond::Gt => a > b,
            Cond::Ge | Cond::AboveEq => a >= b,
        }
    }
}

/// One abstract machine instruction.
///
/// Integer `*I32` arithmetic operates on sign-extended int32 payloads and
/// sets the overflow (OF) and sticky-overflow (SOF) flags; `F*` operate on
/// raw `f64` bits; 64-bit ALU ops are used for tag manipulation and address
/// arithmetic.
#[derive(Debug, Clone, PartialEq)]
pub enum MachInst {
    /// `dst = imm`.
    MovImm { dst: MReg, imm: u64 },
    /// `dst = src`.
    Mov { dst: MReg, src: MReg },
    /// 64-bit ALU: `dst = a op b`.
    Alu64 { op: Alu64Op, dst: MReg, a: MReg, b: MReg },
    /// 64-bit ALU with immediate: `dst = a op imm`.
    Alu64Imm { op: Alu64Op, dst: MReg, a: MReg, imm: u64 },
    /// Int32 add; sets OF/SOF on overflow (result wraps).
    AddI32 { dst: MReg, a: MReg, b: MReg },
    /// Int32 subtract; sets OF/SOF on overflow.
    SubI32 { dst: MReg, a: MReg, b: MReg },
    /// Int32 multiply; sets OF/SOF on overflow **or negative-zero result**
    /// (which the int32 representation cannot hold).
    MulI32 { dst: MReg, a: MReg, b: MReg },
    /// Int32 negate; sets OF/SOF for `0` and `i32::MIN`.
    NegI32 { dst: MReg, a: MReg },
    /// Double arithmetic on raw f64 bits.
    FAlu { op: FAluOp, dst: MReg, a: MReg, b: MReg },
    /// Double negate.
    FNeg { dst: MReg, a: MReg },
    /// `dst = (f64)(int32)src` — int32 payload to raw double bits.
    CvtI32ToF64 { dst: MReg, src: MReg },
    /// `dst = (int32)trunc(f64)src` (saturating, like cvttsd2si).
    CvtF64ToI32 { dst: MReg, src: MReg },
    /// Unbox an int32 payload from a NaN-boxed value (sign-extend low 32).
    UnboxI32 { dst: MReg, src: MReg },
    /// Convert a NaN-boxed *number* (int32 or double) to raw f64 bits.
    ToF64 { dst: MReg, src: MReg },
    /// NaN-box an int32 payload.
    BoxI32 { dst: MReg, src: MReg },
    /// NaN-box raw f64 bits (canonicalizing NaN).
    BoxF64 { dst: MReg, src: MReg },
    /// NaN-box a 0/1 boolean.
    BoxBool { dst: MReg, src: MReg },
    /// 32-bit ALU op (no overflow possible); result sign-extended.
    IAlu32 { op: IAlu32Op, dst: MReg, a: MReg, b: MReg },
    /// 32-bit unsigned shift right; result sign-extended (negative results
    /// are the caller's `Other`-check responsibility).
    UShr32 { dst: MReg, a: MReg, b: MReg },
    /// Inlined double-precision math intrinsic on unboxed operands.
    MathF64 { intr: nomap_bytecode::Intrinsic, dst: MReg, args: Vec<MReg> },
    /// `dst = (a cond b) ? 1 : 0` on 64-bit words.
    CmpI64 { dst: MReg, a: MReg, b: MReg, cond: Cond },
    /// `dst = (a cond imm) ? 1 : 0` (x86 `cmp reg, imm` + `setcc`).
    CmpImm { dst: MReg, a: MReg, imm: u64, cond: Cond },
    /// `dst = (a cond b) ? 1 : 0` on raw f64 bits.
    CmpF64 { dst: MReg, a: MReg, b: MReg, cond: Cond },
    /// Unconditional jump.
    Jump { target: Label },
    /// Jump when `cond != 0`.
    BranchNz { cond: MReg, target: Label },
    /// Jump when `cond == 0`.
    BranchZ { cond: MReg, target: Label },
    /// `dst = mem[base + offset]` (word-addressed).
    Load { dst: MReg, base: MReg, offset: i64 },
    /// `mem[base + offset] = src`.
    Store { src: MReg, base: MReg, offset: i64 },
    /// `dst = mem[base + index]` (indexed addressing).
    LoadIdx { dst: MReg, base: MReg, index: MReg },
    /// `mem[base + index] = src`.
    StoreIdx { src: MReg, base: MReg, index: MReg },
    /// `dst = mem[addr]` at a link-time-constant address (globals).
    LoadGlobal { dst: MReg, addr: u64 },
    /// `mem[addr] = src` at a constant address.
    StoreGlobal { src: MReg, addr: u64 },
    /// Call a runtime helper. Counts `call_overhead` plus the helper's
    /// charged instructions as `NoFTL` work.
    CallRt { dst: MReg, func: RuntimeFn, args: Vec<MReg>, site: Option<(FuncId, SiteId)> },
    /// Call another MiniJS function (through the VM's code cache).
    CallJs { dst: MReg, callee: FuncId, args: Vec<MReg> },
    /// Return `src`.
    Ret { src: MReg },
    /// Guarded check: when `cond != 0`, deoptimize through stack map `smp`.
    /// Costs 1 dynamic instruction (the `jcc`); the comparison producing
    /// `cond` is a separate instruction, mirroring x86 `cmp` + `jcc`.
    DeoptIf { cond: MReg, smp: SmpId, kind: CheckKind },
    /// Deoptimize when the OF flag is set (x86 `jo`).
    DeoptIfOverflow { smp: SmpId },
    /// Transactional form of `DeoptIf`: abort the transaction.
    AbortIf { cond: MReg, kind: CheckKind },
    /// Transactional form of `DeoptIfOverflow`.
    AbortIfOverflow,
    /// Begin a transaction; on abort, control re-enters through `fallback`.
    XBegin { fallback: SmpId },
    /// Commit the innermost transaction (checks SOF; flash-clears SW bits).
    XEnd,
    /// Memory fence (models XBegin's ordering cost on the emulated
    /// platform, paper §VI-A1).
    Fence,
    /// No operation (kept so labels stay stable after pass edits).
    Nop,
}

/// 32-bit ALU operations (bitwise/shift group; cannot overflow).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IAlu32Op {
    /// Bitwise and.
    And,
    /// Bitwise or.
    Or,
    /// Bitwise xor.
    Xor,
    /// Shift left (count masked to 5 bits).
    Shl,
    /// Arithmetic shift right.
    Sar,
}

impl IAlu32Op {
    /// Applies the op on int32 payloads (shift counts masked to 5 bits).
    pub fn apply(self, a: i32, b: i32) -> i32 {
        match self {
            IAlu32Op::And => a & b,
            IAlu32Op::Or => a | b,
            IAlu32Op::Xor => a ^ b,
            IAlu32Op::Shl => a.wrapping_shl(b as u32 & 31),
            IAlu32Op::Sar => a.wrapping_shr(b as u32 & 31),
        }
    }
}

/// 64-bit ALU operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Alu64Op {
    /// Wrapping add.
    Add,
    /// Wrapping subtract.
    Sub,
    /// Bitwise and.
    And,
    /// Bitwise or.
    Or,
    /// Bitwise xor.
    Xor,
    /// Logical shift left.
    Shl,
    /// Logical shift right.
    Shr,
    /// Arithmetic shift right.
    Sar,
}

impl Alu64Op {
    /// Applies the operation.
    pub fn apply(self, a: u64, b: u64) -> u64 {
        match self {
            Alu64Op::Add => a.wrapping_add(b),
            Alu64Op::Sub => a.wrapping_sub(b),
            Alu64Op::And => a & b,
            Alu64Op::Or => a | b,
            Alu64Op::Xor => a ^ b,
            Alu64Op::Shl => a.wrapping_shl(b as u32 & 63),
            Alu64Op::Shr => a.wrapping_shr(b as u32 & 63),
            Alu64Op::Sar => ((a as i64).wrapping_shr(b as u32 & 63)) as u64,
        }
    }
}

/// Double-precision ALU operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FAluOp {
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
    /// Division.
    Div,
    /// IEEE remainder with the dividend's sign (JavaScript `%`).
    Mod,
}

impl FAluOp {
    /// Applies the operation on raw f64 bit patterns.
    pub fn apply_bits(self, a: u64, b: u64) -> u64 {
        let x = f64::from_bits(a);
        let y = f64::from_bits(b);
        let r = match self {
            FAluOp::Add => x + y,
            FAluOp::Sub => x - y,
            FAluOp::Mul => x * y,
            FAluOp::Div => x / y,
            FAluOp::Mod => x % y,
        };
        r.to_bits()
    }
}

impl MachInst {
    /// The branch target, if any.
    pub fn target(&self) -> Option<Label> {
        match self {
            MachInst::Jump { target }
            | MachInst::BranchNz { target, .. }
            | MachInst::BranchZ { target, .. } => Some(*target),
            _ => None,
        }
    }

    /// True for the guard forms that count toward Figure 3.
    pub fn is_check(&self) -> bool {
        matches!(
            self,
            MachInst::DeoptIf { .. }
                | MachInst::DeoptIfOverflow { .. }
                | MachInst::AbortIf { .. }
                | MachInst::AbortIfOverflow
        )
    }

    /// The check's category, if this is a guard.
    pub fn check_kind(&self) -> Option<CheckKind> {
        match self {
            MachInst::DeoptIf { kind, .. } | MachInst::AbortIf { kind, .. } => Some(*kind),
            MachInst::DeoptIfOverflow { .. } | MachInst::AbortIfOverflow => {
                Some(CheckKind::Overflow)
            }
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cond_eval_signed_vs_unsigned() {
        let neg1 = (-1i64) as u64;
        assert!(Cond::Lt.eval_i64(neg1, 0));
        assert!(!Cond::Below.eval_i64(neg1, 0)); // unsigned: 0xFFFF.. > 0
        assert!(Cond::AboveEq.eval_i64(neg1, 0));
    }

    #[test]
    fn cond_eval_f64_nan() {
        assert!(!Cond::Lt.eval_f64(f64::NAN, 1.0));
        assert!(!Cond::Eq.eval_f64(f64::NAN, f64::NAN));
        assert!(Cond::Ne.eval_f64(f64::NAN, f64::NAN));
    }

    #[test]
    fn alu64_shift_masks() {
        assert_eq!(Alu64Op::Shl.apply(1, 65), 2);
        assert_eq!(Alu64Op::Sar.apply((-8i64) as u64, 1), (-4i64) as u64);
    }

    #[test]
    fn falu_roundtrip() {
        let a = 2.5f64.to_bits();
        let b = 0.5f64.to_bits();
        assert_eq!(f64::from_bits(FAluOp::Add.apply_bits(a, b)), 3.0);
        assert_eq!(f64::from_bits(FAluOp::Mod.apply_bits(a, b)), 0.0);
    }

    #[test]
    fn check_classification() {
        let g = MachInst::DeoptIf { cond: MReg(0), smp: SmpId(0), kind: CheckKind::Bounds };
        assert!(g.is_check());
        assert_eq!(g.check_kind(), Some(CheckKind::Bounds));
        assert_eq!(MachInst::AbortIfOverflow.check_kind(), Some(CheckKind::Overflow));
        assert!(!MachInst::Nop.is_check());
    }

    #[test]
    fn check_kind_index_is_dense() {
        for (i, k) in CheckKind::ALL.iter().enumerate() {
            assert_eq!(k.index(), i);
        }
    }
}
