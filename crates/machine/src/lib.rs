//! The simulated target machine: an abstract ISA ([`MachInst`]), a two-level
//! cache simulator, lightweight (ROT) and heavyweight (RTM) HTM models, a
//! simple in-order cycle model and execution statistics.
//!
//! The paper evaluates NoMap natively while *emulating* the HTM overheads
//! (§VI-A): `XBegin` as a fence, `XEnd` as a 5-cycle flash-clear of
//! speculative-write bits, plus Pin-based cache modelling. Here the whole
//! machine is simulated, which keeps instruction counts and cache/HTM
//! behaviour deterministic and lets every figure be regenerated exactly.
//!
//! The crate is passive — it defines the ISA and the models; the instruction
//! stepping loop lives in `nomap-vm`, which owns the code cache and tiering
//! state the executor must consult.

mod attrib;
mod cache;
pub mod disasm;
mod htm;
mod inst;
mod stats;
mod timing;

pub use attrib::{CycleLedger, RegionKey, RegionKind};
pub use cache::{AccessOutcome, Cache, CacheConfig, CacheSim};
pub use htm::{
    abort_reason_class, abort_reason_index, abort_reason_key, check_kind_key, AbortBlame,
    AbortReason, FaultSite, HtmKind, HtmModel, TxOutcome, TxState, ABORT_CLASSES,
};
pub use inst::{Alu64Op, CheckKind, Cond, FAluOp, IAlu32Op, Label, MReg, MachInst, SmpId};
pub use stats::{ExecStats, InstCategory, Tier, TxCharacter};
pub use timing::Timing;
