//! Cycle attribution: charge every simulated cycle to a region key.
//!
//! [`ExecStats`](crate::ExecStats) answers "how many cycles, total"; the
//! [`CycleLedger`] answers "which function, which tier, and *why*": was a
//! cycle spent in straight-line code, inside a transaction body, replaying
//! a loop in Baseline after a capacity abort stepped the §V-C ladder,
//! re-executing after a deoptimization, compiling, or paying for a failed
//! check? Region keys are (function × tier × [`RegionKind`]) and the ledger
//! is exact: the VM routes every cycle it adds to `ExecStats` through the
//! ledger as well, so the attributed total equals the `ExecStats` total
//! with no residue beyond the explicit [`RegionKey::OTHER_FUNC`] bucket.
//!
//! The ledger is plain mergeable data (like `ExecStats`); the VM owns the
//! policy of *when* to charge, and `nomap-profile` turns ledgers into
//! ranked hot-spot reports.

use std::collections::BTreeMap;

use crate::inst::CheckKind;
use crate::stats::Tier;

/// Why a cycle was spent (the profiler's cost taxonomy).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum RegionKind {
    /// Ordinary non-transactional execution.
    Main,
    /// Execution inside a transaction (body work plus XBegin/XEnd
    /// overhead).
    TxnBody,
    /// Baseline re-execution after a transactional abort, and the rollback
    /// cost of capacity aborts — the price of riding the §V-C retry
    /// ladder.
    TxnRetryLadder,
    /// JIT compilation. Reserved: the steady-state cycle model excludes
    /// compile time (paper methodology), so this region is zero unless a
    /// future timing model charges it.
    Compile,
    /// Baseline re-execution after an OSR exit (deoptimization replay),
    /// including the OSR materialization itself.
    DeoptReplay,
    /// Rollback/abort cost attributable to a failed check of this kind.
    Check(CheckKind),
    /// Anything the VM could not attribute more precisely.
    Other,
}

impl RegionKind {
    /// Stable kebab-case name (used in reports, JSON and trace events).
    pub fn name(self) -> &'static str {
        match self {
            RegionKind::Main => "main",
            RegionKind::TxnBody => "txn-body",
            RegionKind::TxnRetryLadder => "txn-retry-ladder",
            RegionKind::Compile => "compile",
            RegionKind::DeoptReplay => "deopt-replay",
            RegionKind::Check(CheckKind::Bounds) => "check:bounds",
            RegionKind::Check(CheckKind::Overflow) => "check:overflow",
            RegionKind::Check(CheckKind::Type) => "check:type",
            RegionKind::Check(CheckKind::Property) => "check:property",
            RegionKind::Check(CheckKind::Other) => "check:other",
            RegionKind::Other => "other",
        }
    }
}

/// One attribution scope: which function, executing in which tier, doing
/// what kind of work.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RegionKey {
    /// Function id (`OTHER_FUNC` when no guest frame was executing).
    pub func: u32,
    /// Tier whose code (or on whose behalf the runtime) was executing.
    pub tier: Tier,
    /// Why the cycles were spent.
    pub kind: RegionKind,
}

impl RegionKey {
    /// Sentinel function id for cycles charged outside any guest frame.
    pub const OTHER_FUNC: u32 = u32::MAX;
}

/// The mergeable cycle-attribution ledger.
///
/// Invariant maintained by the VM: [`CycleLedger::total`] equals the sum
/// over all regions, and — when profiling is enabled for a whole
/// measurement window — equals `ExecStats::total_cycles()` for the same
/// window.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CycleLedger {
    regions: BTreeMap<RegionKey, u64>,
    total: u64,
}

impl CycleLedger {
    /// An empty ledger.
    pub fn new() -> Self {
        Self::default()
    }

    /// Charges `cycles` to `key`.
    #[inline]
    pub fn charge(&mut self, key: RegionKey, cycles: u64) {
        if cycles == 0 {
            return;
        }
        *self.regions.entry(key).or_insert(0) += cycles;
        self.total += cycles;
    }

    /// Total cycles attributed.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Cycles attributed to `key` (0 when never charged).
    pub fn get(&self, key: RegionKey) -> u64 {
        self.regions.get(&key).copied().unwrap_or(0)
    }

    /// All regions with their cycle counts, in key order.
    pub fn regions(&self) -> impl Iterator<Item = (&RegionKey, &u64)> {
        self.regions.iter()
    }

    /// Number of distinct regions charged.
    pub fn len(&self) -> usize {
        self.regions.len()
    }

    /// True when nothing has been charged.
    pub fn is_empty(&self) -> bool {
        self.regions.is_empty()
    }

    /// Cycles summed per function (collapsing tier and kind).
    pub fn by_func(&self) -> BTreeMap<u32, u64> {
        let mut out = BTreeMap::new();
        for (k, v) in &self.regions {
            *out.entry(k.func).or_insert(0) += v;
        }
        out
    }

    /// Cycles summed per region kind (collapsing function and tier).
    pub fn by_kind(&self) -> BTreeMap<RegionKind, u64> {
        let mut out = BTreeMap::new();
        for (k, v) in &self.regions {
            *out.entry(k.kind).or_insert(0) += v;
        }
        out
    }

    /// Folds another ledger into this one (suite/shard aggregation). Sums
    /// saturate so fleet-scale aggregation cannot overflow-panic.
    pub fn merge(&mut self, other: &CycleLedger) {
        for (k, v) in &other.regions {
            let c = self.regions.entry(*k).or_insert(0);
            *c = c.saturating_add(*v);
        }
        self.total = self.total.saturating_add(other.total);
    }

    /// Clears the ledger (measurement-window reset, paired with
    /// `ExecStats` reset so the conservation invariant keeps holding).
    pub fn reset(&mut self) {
        self.regions.clear();
        self.total = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(func: u32, tier: Tier, kind: RegionKind) -> RegionKey {
        RegionKey { func, tier, kind }
    }

    #[test]
    fn charge_accumulates_and_totals() {
        let mut l = CycleLedger::new();
        l.charge(key(0, Tier::Ftl, RegionKind::TxnBody), 10);
        l.charge(key(0, Tier::Ftl, RegionKind::TxnBody), 5);
        l.charge(key(1, Tier::Baseline, RegionKind::TxnRetryLadder), 7);
        l.charge(key(1, Tier::Baseline, RegionKind::Main), 0); // no-op
        assert_eq!(l.total(), 22);
        assert_eq!(l.get(key(0, Tier::Ftl, RegionKind::TxnBody)), 15);
        assert_eq!(l.len(), 2);
        assert_eq!(l.by_func()[&0], 15);
        assert_eq!(l.by_kind()[&RegionKind::TxnRetryLadder], 7);
    }

    #[test]
    fn merge_is_commutative() {
        let mut a = CycleLedger::new();
        a.charge(key(0, Tier::Ftl, RegionKind::Main), 3);
        a.charge(key(2, Tier::Runtime, RegionKind::Check(CheckKind::Bounds)), 9);
        let mut b = CycleLedger::new();
        b.charge(key(0, Tier::Ftl, RegionKind::Main), 4);
        b.charge(key(5, Tier::Interpreter, RegionKind::DeoptReplay), 1);

        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba);
        assert_eq!(ab.total(), 17);
        assert_eq!(ab.get(key(0, Tier::Ftl, RegionKind::Main)), 7);
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut l = CycleLedger::new();
        l.charge(key(3, Tier::Dfg, RegionKind::TxnBody), 42);
        let snapshot = l.clone();
        l.merge(&CycleLedger::new());
        assert_eq!(l, snapshot);
        let mut empty = CycleLedger::new();
        empty.merge(&snapshot);
        assert_eq!(empty, snapshot);
    }

    #[test]
    fn merge_saturates_at_u64_max() {
        let mut l = CycleLedger::new();
        l.charge(key(0, Tier::Ftl, RegionKind::Main), u64::MAX);
        let other = l.clone();
        l.merge(&other);
        assert_eq!(l.total(), u64::MAX);
        assert_eq!(l.get(key(0, Tier::Ftl, RegionKind::Main)), u64::MAX);
    }

    #[test]
    fn kind_names_are_stable() {
        assert_eq!(RegionKind::Main.name(), "main");
        assert_eq!(RegionKind::TxnRetryLadder.name(), "txn-retry-ladder");
        assert_eq!(RegionKind::Check(CheckKind::Overflow).name(), "check:overflow");
        assert_eq!(RegionKind::DeoptReplay.name(), "deopt-replay");
    }
}
