//! Hardware transactional memory models.
//!
//! * [`HtmKind::Rot`] — IBM POWER8 Rollback-Only Transactions (paper §V-A):
//!   only the **write** footprint is buffered (here: in the 256 KB L2);
//!   commits need no write-buffer drain; a Sticky Overflow Flag (SOF) is
//!   checked at the outermost `XEnd`.
//! * [`HtmKind::Rtm`] — Intel Restricted Transactional Memory (§VI-B):
//!   writes must fit the 32 KB L1D, **reads** must fit the 256 KB L2,
//!   `XEnd` stalls for the write buffer, transactional reads are slower,
//!   and there is no SOF.
//!
//! Capacity is modelled deterministically: a transaction aborts when the
//! speculative lines mapping to any one cache set exceed that cache's
//! associativity — the precise condition under which real hardware could no
//! longer keep the footprint cached.

use std::collections::{HashMap, HashSet};

use nomap_runtime::Memory;

use crate::cache::CacheConfig;
use crate::inst::CheckKind;

/// Which HTM the machine provides.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum HtmKind {
    /// No HTM (the `Base` configuration).
    None,
    /// Lightweight rollback-only transactions (write-footprint in L2, SOF).
    Rot,
    /// Heavyweight Intel RTM (writes in L1D, reads in L2, no SOF).
    Rtm,
}

/// Why a transaction aborted.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AbortReason {
    /// An explicit `AbortIf` fired (a formerly-SMP-guarding check failed).
    Check(CheckKind),
    /// The speculative footprint no longer fits the cache.
    Capacity,
    /// The sticky overflow flag was set when `XEnd` executed.
    StickyOverflow,
}

/// Per-transaction characterization, reported at commit (Table IV).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TxOutcome {
    /// Distinct cache lines written × line size.
    pub write_footprint_bytes: u64,
    /// Maximum number of speculative ways any one set needed.
    pub max_assoc: u32,
    /// Dynamic instructions executed inside the transaction.
    pub instructions: u64,
}

/// Geometry + policy for one HTM flavour.
#[derive(Debug, Clone, Copy)]
pub struct HtmModel {
    /// Which flavour.
    pub kind: HtmKind,
    /// Cache level bounding the write footprint.
    pub write_cache: CacheConfig,
    /// Cache level bounding the read footprint (RTM only).
    pub read_cache: Option<CacheConfig>,
    /// Whether the ISA provides the Sticky Overflow Flag.
    pub has_sof: bool,
}

impl HtmModel {
    /// The paper's lightweight HTM: ROT with writes bounded by L2 and SOF
    /// support.
    pub fn rot() -> Self {
        HtmModel {
            kind: HtmKind::Rot,
            write_cache: CacheConfig::l2(),
            read_cache: None,
            has_sof: true,
        }
    }

    /// Intel RTM: writes bounded by L1D, reads by L2, no SOF.
    pub fn rtm() -> Self {
        HtmModel {
            kind: HtmKind::Rtm,
            write_cache: CacheConfig::l1d(),
            read_cache: Some(CacheConfig::l2()),
            has_sof: false,
        }
    }

    /// No HTM at all.
    pub fn none() -> Self {
        HtmModel {
            kind: HtmKind::None,
            write_cache: CacheConfig::l2(),
            read_cache: None,
            has_sof: false,
        }
    }
}

/// Live state of the (flattened) transaction nest.
#[derive(Debug, Clone, Default)]
pub struct TxState {
    depth: u32,
    undo: Vec<(u64, u64)>,
    write_lines: HashSet<u64>,
    write_sets: HashMap<u64, u32>,
    read_lines: HashSet<u64>,
    read_sets: HashMap<u64, u32>,
    max_assoc: u32,
    sof: bool,
    /// Instructions executed since the outermost XBegin (maintained by the
    /// executor).
    pub instructions: u64,
}

impl TxState {
    /// Creates idle (non-transactional) state.
    pub fn new() -> Self {
        Self::default()
    }

    /// True while inside a transaction.
    pub fn active(&self) -> bool {
        self.depth > 0
    }

    /// Enters a transaction (flattened nesting: inner begins only bump the
    /// depth). Clears SOF at the outermost begin, per §V-B.
    pub fn begin(&mut self) {
        if self.depth == 0 {
            self.undo.clear();
            self.write_lines.clear();
            self.write_sets.clear();
            self.read_lines.clear();
            self.read_sets.clear();
            self.max_assoc = 0;
            self.sof = false;
            self.instructions = 0;
        }
        self.depth += 1;
    }

    /// Sets the sticky overflow flag (integer overflow inside the
    /// transaction).
    pub fn set_sof(&mut self) {
        if self.depth > 0 {
            self.sof = true;
        }
    }

    /// Whether SOF is currently set.
    pub fn sof(&self) -> bool {
        self.sof
    }

    /// Records a transactional write. Returns `Err(Capacity)` when the
    /// write footprint exceeds what `model.write_cache` can buffer.
    pub fn on_write(
        &mut self,
        model: &HtmModel,
        word_addr: u64,
        old: u64,
    ) -> Result<(), AbortReason> {
        debug_assert!(self.active());
        self.undo.push((word_addr, old));
        let byte = word_addr * nomap_runtime::WORD_BYTES;
        let line = model.write_cache.line_of(byte);
        if self.write_lines.insert(line) {
            let set = model.write_cache.set_of(byte);
            let n = self.write_sets.entry(set).or_insert(0);
            *n += 1;
            self.max_assoc = self.max_assoc.max(*n);
            if *n > model.write_cache.ways {
                return Err(AbortReason::Capacity);
            }
        }
        Ok(())
    }

    /// Records a transactional read (only bounded under RTM).
    pub fn on_read(&mut self, model: &HtmModel, word_addr: u64) -> Result<(), AbortReason> {
        debug_assert!(self.active());
        let Some(read_cache) = model.read_cache else {
            return Ok(());
        };
        let byte = word_addr * nomap_runtime::WORD_BYTES;
        let line = read_cache.line_of(byte);
        if self.read_lines.insert(line) {
            let set = read_cache.set_of(byte);
            let n = self.read_sets.entry(set).or_insert(0);
            *n += 1;
            if *n > read_cache.ways {
                return Err(AbortReason::Capacity);
            }
        }
        Ok(())
    }

    /// Leaves one nesting level. At the outermost level, checks SOF and
    /// either commits (returning the transaction's characterization) or
    /// requests an abort. Inner ends return `Ok(None)`.
    ///
    /// # Errors
    ///
    /// Returns [`AbortReason::StickyOverflow`] when SOF is set at the
    /// outermost end.
    pub fn end(&mut self, model: &HtmModel) -> Result<Option<TxOutcome>, AbortReason> {
        debug_assert!(self.active());
        if self.depth > 1 {
            self.depth -= 1;
            return Ok(None);
        }
        if model.has_sof && self.sof {
            return Err(AbortReason::StickyOverflow);
        }
        self.depth = 0;
        let outcome = TxOutcome {
            write_footprint_bytes: self.write_lines.len() as u64 * model.write_cache.line_bytes,
            max_assoc: self.max_assoc,
            instructions: self.instructions,
        };
        self.undo.clear();
        Ok(Some(outcome))
    }

    /// Aborts the whole nest: rolls back every buffered write (newest
    /// first) and resets to idle. Returns the number of undone writes.
    pub fn abort(&mut self, mem: &mut Memory) -> usize {
        let n = self.undo.len();
        for (addr, old) in self.undo.drain(..).rev() {
            mem.poke(addr, old);
        }
        self.depth = 0;
        self.sof = false;
        self.write_lines.clear();
        self.write_sets.clear();
        self.read_lines.clear();
        self.read_sets.clear();
        n
    }

    /// Current write footprint in bytes (for the §V-C placement estimator).
    pub fn write_footprint_bytes(&self, model: &HtmModel) -> u64 {
        self.write_lines.len() as u64 * model.write_cache.line_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn commit_reports_footprint() {
        let model = HtmModel::rot();
        let mut tx = TxState::new();
        tx.begin();
        // Three writes in two lines (words 0,1 share a 64B line; word 8 is
        // the next line).
        tx.on_write(&model, 0x10_0000, 0).unwrap();
        tx.on_write(&model, 0x10_0001, 0).unwrap();
        tx.on_write(&model, 0x10_0008, 0).unwrap();
        let out = tx.end(&model).unwrap().unwrap();
        assert_eq!(out.write_footprint_bytes, 128);
        assert_eq!(out.max_assoc, 1);
        assert!(!tx.active());
    }

    #[test]
    fn rot_capacity_by_set_conflict() {
        let model = HtmModel::rot();
        let mut tx = TxState::new();
        tx.begin();
        let sets = model.write_cache.sets();
        let words_per_line = model.write_cache.line_bytes / 8;
        // Write 8 lines that all map to set 0: fine. The 9th aborts.
        for i in 0..8 {
            tx.on_write(&model, i * sets * words_per_line, 0).unwrap();
        }
        let r = tx.on_write(&model, 8 * sets * words_per_line, 0);
        assert_eq!(r, Err(AbortReason::Capacity));
    }

    #[test]
    fn rtm_read_capacity() {
        let model = HtmModel::rtm();
        let mut tx = TxState::new();
        tx.begin();
        let read_cache = model.read_cache.unwrap();
        let sets = read_cache.sets();
        let words_per_line = read_cache.line_bytes / 8;
        for i in 0..8 {
            tx.on_read(&model, i * sets * words_per_line).unwrap();
        }
        assert_eq!(tx.on_read(&model, 8 * sets * words_per_line), Err(AbortReason::Capacity));
    }

    #[test]
    fn rot_ignores_reads() {
        let model = HtmModel::rot();
        let mut tx = TxState::new();
        tx.begin();
        for i in 0..100_000 {
            tx.on_read(&model, i * 8).unwrap();
        }
    }

    #[test]
    fn sof_aborts_at_outermost_end() {
        let model = HtmModel::rot();
        let mut tx = TxState::new();
        tx.begin();
        tx.begin(); // nested
        tx.set_sof();
        assert_eq!(tx.end(&model), Ok(None)); // inner end: no SOF check
        assert_eq!(tx.end(&model), Err(AbortReason::StickyOverflow));
    }

    #[test]
    fn rtm_has_no_sof() {
        let model = HtmModel::rtm();
        let mut tx = TxState::new();
        tx.begin();
        tx.set_sof();
        assert!(tx.end(&model).unwrap().is_some());
    }

    #[test]
    fn abort_rolls_back_in_reverse() {
        let model = HtmModel::rot();
        let mut mem = Memory::new();
        let a = mem.alloc(2).unwrap();
        mem.poke(a, 111);
        mem.poke(a + 1, 222);
        let mut tx = TxState::new();
        tx.begin();
        // Two writes to the same address: undo must restore the *first* old
        // value.
        tx.on_write(&model, a, 111).unwrap();
        mem.poke(a, 1);
        tx.on_write(&model, a, 1).unwrap();
        mem.poke(a, 2);
        tx.on_write(&model, a + 1, 222).unwrap();
        mem.poke(a + 1, 9);
        let undone = tx.abort(&mut mem);
        assert_eq!(undone, 3);
        assert_eq!(mem.peek(a), 111);
        assert_eq!(mem.peek(a + 1), 222);
        assert!(!tx.active());
    }

    #[test]
    fn begin_clears_sof() {
        let model = HtmModel::rot();
        let mut tx = TxState::new();
        tx.begin();
        tx.set_sof();
        let mut mem = Memory::new();
        tx.abort(&mut mem);
        tx.begin();
        assert!(!tx.sof());
        assert!(tx.end(&model).unwrap().is_some());
    }
}
