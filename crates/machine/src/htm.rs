//! Hardware transactional memory models.
//!
//! * [`HtmKind::Rot`] — IBM POWER8 Rollback-Only Transactions (paper §V-A):
//!   only the **write** footprint is buffered (here: in the 256 KB L2);
//!   commits need no write-buffer drain; a Sticky Overflow Flag (SOF) is
//!   checked at the outermost `XEnd`.
//! * [`HtmKind::Rtm`] — Intel Restricted Transactional Memory (§VI-B):
//!   writes must fit the 32 KB L1D, **reads** must fit the 256 KB L2,
//!   `XEnd` stalls for the write buffer, transactional reads are slower,
//!   and there is no SOF.
//!
//! Capacity is modelled deterministically: a transaction aborts when the
//! speculative lines mapping to any one cache set exceed that cache's
//! associativity — the precise condition under which real hardware could no
//! longer keep the footprint cached.

use std::collections::{HashMap, HashSet};

use nomap_runtime::Memory;

use crate::cache::CacheConfig;
use crate::inst::CheckKind;

/// Which HTM the machine provides.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum HtmKind {
    /// No HTM (the `Base` configuration).
    None,
    /// Lightweight rollback-only transactions (write-footprint in L2, SOF).
    Rot,
    /// Heavyweight Intel RTM (writes in L1D, reads in L2, no SOF).
    Rtm,
}

/// Why a transaction aborted.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AbortReason {
    /// An explicit `AbortIf` fired (a formerly-SMP-guarding check failed).
    Check(CheckKind),
    /// The speculative footprint no longer fits the cache.
    Capacity,
    /// The sticky overflow flag was set when `XEnd` executed.
    StickyOverflow,
}

/// Abort-reason class names in [`crate::ExecStats`] `tx_aborts` slot order.
pub const ABORT_CLASSES: [&str; 3] = ["check", "capacity", "sticky-overflow"];

/// Dense index of an abort reason's class — the `ExecStats::tx_aborts`
/// slot it is tallied in.
pub fn abort_reason_index(reason: AbortReason) -> usize {
    match reason {
        AbortReason::Check(_) => 0,
        AbortReason::Capacity => 1,
        AbortReason::StickyOverflow => 2,
    }
}

/// Canonical coarse name of an abort reason (`check`, `capacity`,
/// `sticky-overflow`). `nomap_trace::abort_reason_name` delegates here so
/// the JSONL stream, the stats slots and the profile keys cannot drift.
pub fn abort_reason_class(reason: AbortReason) -> &'static str {
    ABORT_CLASSES[abort_reason_index(reason)]
}

/// Canonical short name for a check kind (the suffix of `check:<kind>`
/// bookkeeping keys; `nomap_trace::check_name` delegates here).
pub fn check_kind_key(kind: CheckKind) -> &'static str {
    match kind {
        CheckKind::Bounds => "bounds",
        CheckKind::Overflow => "overflow",
        CheckKind::Type => "type",
        CheckKind::Property => "property",
        CheckKind::Other => "other",
    }
}

/// Canonical composite abort bookkeeping key: check aborts keep their kind
/// (`check:bounds`), the rest use their class name. `nomap_profile` and
/// the trace metrics registry both delegate here — one table, no copies.
pub fn abort_reason_key(reason: AbortReason) -> String {
    match reason {
        AbortReason::Check(k) => format!("check:{}", check_kind_key(k)),
        other => abort_reason_class(other).to_owned(),
    }
}

/// The faulting access of a capacity abort: exactly where the speculative
/// footprint stopped fitting the cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultSite {
    /// Word address of the access that overflowed a set.
    pub word_addr: u64,
    /// Cache line (tag address) of that access.
    pub line: u64,
    /// Index of the overflowed set.
    pub set: u64,
    /// Speculative lines the victim set was asked to hold, counting the
    /// faulting line (always associativity + 1 at capture).
    pub set_ways: u32,
    /// True when the faulting access was a write; false for an RTM
    /// read-set overflow.
    pub is_write: bool,
}

/// Forensic record of one abort, captured at the point of failure —
/// before rollback destroys the speculative state it describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AbortBlame {
    /// The faulting access (capacity aborts only; check and SOF aborts
    /// have no faulting address).
    pub fault: Option<FaultSite>,
    /// Distinct lines in the write set when the abort fired.
    pub write_lines: u64,
    /// Write footprint in bytes when the abort fired.
    pub write_bytes: u64,
    /// Distinct lines in the read set (RTM only; 0 when the model does
    /// not bound reads).
    pub read_lines: u64,
    /// Read footprint in bytes when the abort fired.
    pub read_bytes: u64,
    /// Dynamic instructions executed inside the doomed transaction.
    pub instructions: u64,
}

/// Per-transaction characterization, reported at commit (Table IV).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TxOutcome {
    /// Distinct cache lines written × line size.
    pub write_footprint_bytes: u64,
    /// Distinct cache lines read × line size (RTM only; 0 when the model
    /// does not bound reads).
    pub read_footprint_bytes: u64,
    /// Maximum number of speculative ways any one set needed.
    pub max_assoc: u32,
    /// Dynamic instructions executed inside the transaction.
    pub instructions: u64,
}

/// Geometry + policy for one HTM flavour.
#[derive(Debug, Clone, Copy)]
pub struct HtmModel {
    /// Which flavour.
    pub kind: HtmKind,
    /// Cache level bounding the write footprint.
    pub write_cache: CacheConfig,
    /// Cache level bounding the read footprint (RTM only).
    pub read_cache: Option<CacheConfig>,
    /// Whether the ISA provides the Sticky Overflow Flag.
    pub has_sof: bool,
}

impl HtmModel {
    /// The paper's lightweight HTM: ROT with writes bounded by L2 and SOF
    /// support.
    pub fn rot() -> Self {
        HtmModel {
            kind: HtmKind::Rot,
            write_cache: CacheConfig::l2(),
            read_cache: None,
            has_sof: true,
        }
    }

    /// Intel RTM: writes bounded by L1D, reads by L2, no SOF.
    pub fn rtm() -> Self {
        HtmModel {
            kind: HtmKind::Rtm,
            write_cache: CacheConfig::l1d(),
            read_cache: Some(CacheConfig::l2()),
            has_sof: false,
        }
    }

    /// No HTM at all.
    pub fn none() -> Self {
        HtmModel {
            kind: HtmKind::None,
            write_cache: CacheConfig::l2(),
            read_cache: None,
            has_sof: false,
        }
    }
}

/// Live state of the (flattened) transaction nest.
#[derive(Debug, Clone, Default)]
pub struct TxState {
    depth: u32,
    undo: Vec<(u64, u64)>,
    write_lines: HashSet<u64>,
    write_sets: HashMap<u64, u32>,
    read_lines: HashSet<u64>,
    read_sets: HashMap<u64, u32>,
    max_assoc: u32,
    sof: bool,
    blame: Option<AbortBlame>,
    /// Instructions executed since the outermost XBegin (maintained by the
    /// executor).
    pub instructions: u64,
}

impl TxState {
    /// Creates idle (non-transactional) state.
    pub fn new() -> Self {
        Self::default()
    }

    /// True while inside a transaction.
    pub fn active(&self) -> bool {
        self.depth > 0
    }

    /// Enters a transaction (flattened nesting: inner begins only bump the
    /// depth). Clears SOF at the outermost begin, per §V-B.
    pub fn begin(&mut self) {
        if self.depth == 0 {
            self.undo.clear();
            self.write_lines.clear();
            self.write_sets.clear();
            self.read_lines.clear();
            self.read_sets.clear();
            self.max_assoc = 0;
            self.sof = false;
            self.blame = None;
            self.instructions = 0;
        }
        self.depth += 1;
    }

    /// Sets the sticky overflow flag (integer overflow inside the
    /// transaction).
    pub fn set_sof(&mut self) {
        if self.depth > 0 {
            self.sof = true;
        }
    }

    /// Whether SOF is currently set.
    pub fn sof(&self) -> bool {
        self.sof
    }

    /// Records a transactional write. Returns `Err(Capacity)` when the
    /// write footprint exceeds what `model.write_cache` can buffer.
    pub fn on_write(
        &mut self,
        model: &HtmModel,
        word_addr: u64,
        old: u64,
    ) -> Result<(), AbortReason> {
        debug_assert!(self.active());
        self.undo.push((word_addr, old));
        let byte = word_addr * nomap_runtime::WORD_BYTES;
        let line = model.write_cache.line_of(byte);
        if self.write_lines.insert(line) {
            let set = model.write_cache.set_of(byte);
            let n = self.write_sets.entry(set).or_insert(0);
            *n += 1;
            self.max_assoc = self.max_assoc.max(*n);
            if *n > model.write_cache.ways {
                let set_ways = *n;
                self.blame = Some(self.blame_at(
                    model,
                    Some(FaultSite { word_addr, line, set, set_ways, is_write: true }),
                ));
                return Err(AbortReason::Capacity);
            }
        }
        Ok(())
    }

    /// Records a transactional read (only bounded under RTM).
    pub fn on_read(&mut self, model: &HtmModel, word_addr: u64) -> Result<(), AbortReason> {
        debug_assert!(self.active());
        let Some(read_cache) = model.read_cache else {
            return Ok(());
        };
        let byte = word_addr * nomap_runtime::WORD_BYTES;
        let line = read_cache.line_of(byte);
        if self.read_lines.insert(line) {
            let set = read_cache.set_of(byte);
            let n = self.read_sets.entry(set).or_insert(0);
            *n += 1;
            if *n > read_cache.ways {
                let set_ways = *n;
                self.blame = Some(self.blame_at(
                    model,
                    Some(FaultSite { word_addr, line, set, set_ways, is_write: false }),
                ));
                return Err(AbortReason::Capacity);
            }
        }
        Ok(())
    }

    /// Leaves one nesting level. At the outermost level, checks SOF and
    /// either commits (returning the transaction's characterization) or
    /// requests an abort. Inner ends return `Ok(None)`.
    ///
    /// # Errors
    ///
    /// Returns [`AbortReason::StickyOverflow`] when SOF is set at the
    /// outermost end.
    pub fn end(&mut self, model: &HtmModel) -> Result<Option<TxOutcome>, AbortReason> {
        debug_assert!(self.active());
        if self.depth > 1 {
            self.depth -= 1;
            return Ok(None);
        }
        if model.has_sof && self.sof {
            return Err(AbortReason::StickyOverflow);
        }
        self.depth = 0;
        let outcome = TxOutcome {
            write_footprint_bytes: self.write_lines.len() as u64 * model.write_cache.line_bytes,
            read_footprint_bytes: self.read_footprint_bytes(model),
            max_assoc: self.max_assoc,
            instructions: self.instructions,
        };
        self.undo.clear();
        Ok(Some(outcome))
    }

    /// Aborts the whole nest: rolls back every buffered write (newest
    /// first) and resets to idle. Returns the number of undone writes.
    pub fn abort(&mut self, mem: &mut Memory) -> usize {
        let n = self.undo.len();
        for (addr, old) in self.undo.drain(..).rev() {
            mem.poke(addr, old);
        }
        self.depth = 0;
        self.sof = false;
        self.blame = None;
        self.write_lines.clear();
        self.write_sets.clear();
        self.read_lines.clear();
        self.read_sets.clear();
        n
    }

    /// Current write footprint in bytes (for the §V-C placement estimator).
    pub fn write_footprint_bytes(&self, model: &HtmModel) -> u64 {
        self.write_lines.len() as u64 * model.write_cache.line_bytes
    }

    /// Current read footprint in bytes (0 when the model does not bound
    /// reads).
    pub fn read_footprint_bytes(&self, model: &HtmModel) -> u64 {
        match model.read_cache {
            Some(rc) => self.read_lines.len() as u64 * rc.line_bytes,
            None => 0,
        }
    }

    /// The blame record captured by the access that failed, if any. Read
    /// it before [`TxState::abort`] — rollback clears it along with the
    /// state it describes.
    pub fn blame(&self) -> Option<AbortBlame> {
        self.blame
    }

    /// Blame for an abort with no faulting access (a check fired, or SOF
    /// at `XEnd`): the current speculative-footprint snapshot.
    pub fn snapshot_blame(&self, model: &HtmModel) -> AbortBlame {
        self.blame_at(model, None)
    }

    fn blame_at(&self, model: &HtmModel, fault: Option<FaultSite>) -> AbortBlame {
        AbortBlame {
            fault,
            write_lines: self.write_lines.len() as u64,
            write_bytes: self.write_footprint_bytes(model),
            read_lines: self.read_lines.len() as u64,
            read_bytes: self.read_footprint_bytes(model),
            instructions: self.instructions,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn commit_reports_footprint() {
        let model = HtmModel::rot();
        let mut tx = TxState::new();
        tx.begin();
        // Three writes in two lines (words 0,1 share a 64B line; word 8 is
        // the next line).
        tx.on_write(&model, 0x10_0000, 0).unwrap();
        tx.on_write(&model, 0x10_0001, 0).unwrap();
        tx.on_write(&model, 0x10_0008, 0).unwrap();
        let out = tx.end(&model).unwrap().unwrap();
        assert_eq!(out.write_footprint_bytes, 128);
        assert_eq!(out.max_assoc, 1);
        assert!(!tx.active());
    }

    #[test]
    fn rot_capacity_by_set_conflict() {
        let model = HtmModel::rot();
        let mut tx = TxState::new();
        tx.begin();
        let sets = model.write_cache.sets();
        let words_per_line = model.write_cache.line_bytes / 8;
        // Write 8 lines that all map to set 0: fine. The 9th aborts.
        for i in 0..8 {
            tx.on_write(&model, i * sets * words_per_line, 0).unwrap();
        }
        let r = tx.on_write(&model, 8 * sets * words_per_line, 0);
        assert_eq!(r, Err(AbortReason::Capacity));
    }

    #[test]
    fn rtm_read_capacity() {
        let model = HtmModel::rtm();
        let mut tx = TxState::new();
        tx.begin();
        let read_cache = model.read_cache.unwrap();
        let sets = read_cache.sets();
        let words_per_line = read_cache.line_bytes / 8;
        for i in 0..8 {
            tx.on_read(&model, i * sets * words_per_line).unwrap();
        }
        assert_eq!(tx.on_read(&model, 8 * sets * words_per_line), Err(AbortReason::Capacity));
    }

    #[test]
    fn rot_ignores_reads() {
        let model = HtmModel::rot();
        let mut tx = TxState::new();
        tx.begin();
        for i in 0..100_000 {
            tx.on_read(&model, i * 8).unwrap();
        }
    }

    #[test]
    fn sof_aborts_at_outermost_end() {
        let model = HtmModel::rot();
        let mut tx = TxState::new();
        tx.begin();
        tx.begin(); // nested
        tx.set_sof();
        assert_eq!(tx.end(&model), Ok(None)); // inner end: no SOF check
        assert_eq!(tx.end(&model), Err(AbortReason::StickyOverflow));
    }

    #[test]
    fn rtm_has_no_sof() {
        let model = HtmModel::rtm();
        let mut tx = TxState::new();
        tx.begin();
        tx.set_sof();
        assert!(tx.end(&model).unwrap().is_some());
    }

    #[test]
    fn abort_rolls_back_in_reverse() {
        let model = HtmModel::rot();
        let mut mem = Memory::new();
        let a = mem.alloc(2).unwrap();
        mem.poke(a, 111);
        mem.poke(a + 1, 222);
        let mut tx = TxState::new();
        tx.begin();
        // Two writes to the same address: undo must restore the *first* old
        // value.
        tx.on_write(&model, a, 111).unwrap();
        mem.poke(a, 1);
        tx.on_write(&model, a, 1).unwrap();
        mem.poke(a, 2);
        tx.on_write(&model, a + 1, 222).unwrap();
        mem.poke(a + 1, 9);
        let undone = tx.abort(&mut mem);
        assert_eq!(undone, 3);
        assert_eq!(mem.peek(a), 111);
        assert_eq!(mem.peek(a + 1), 222);
        assert!(!tx.active());
    }

    #[test]
    fn canonical_abort_keys_are_stable() {
        assert_eq!(abort_reason_key(AbortReason::Capacity), "capacity");
        assert_eq!(abort_reason_key(AbortReason::StickyOverflow), "sticky-overflow");
        assert_eq!(abort_reason_key(AbortReason::Check(CheckKind::Bounds)), "check:bounds");
        for kind in CheckKind::ALL {
            assert_eq!(
                abort_reason_key(AbortReason::Check(kind)),
                format!("check:{}", check_kind_key(kind))
            );
            assert_eq!(abort_reason_class(AbortReason::Check(kind)), "check");
        }
        for (i, class) in ABORT_CLASSES.iter().enumerate() {
            let reason = match i {
                0 => AbortReason::Check(CheckKind::Other),
                1 => AbortReason::Capacity,
                _ => AbortReason::StickyOverflow,
            };
            assert_eq!(abort_reason_index(reason), i);
            assert_eq!(abort_reason_class(reason), *class);
        }
    }

    #[test]
    fn commit_reports_read_footprint_under_rtm() {
        let model = HtmModel::rtm();
        let mut tx = TxState::new();
        tx.begin();
        // Two read lines, one write line.
        tx.on_read(&model, 0x20_0000).unwrap();
        tx.on_read(&model, 0x20_0008).unwrap();
        tx.on_write(&model, 0x30_0000, 0).unwrap();
        let out = tx.end(&model).unwrap().unwrap();
        assert_eq!(out.read_footprint_bytes, 128);
        assert_eq!(out.write_footprint_bytes, 64);
    }

    #[test]
    fn rot_commit_reports_zero_read_footprint() {
        let model = HtmModel::rot();
        let mut tx = TxState::new();
        tx.begin();
        tx.on_read(&model, 0x20_0000).unwrap();
        tx.on_write(&model, 0x30_0000, 0).unwrap();
        let out = tx.end(&model).unwrap().unwrap();
        assert_eq!(out.read_footprint_bytes, 0);
    }

    #[test]
    fn write_capacity_captures_blame_at_the_fault() {
        let model = HtmModel::rot();
        let mut tx = TxState::new();
        tx.begin();
        let sets = model.write_cache.sets();
        let words_per_line = model.write_cache.line_bytes / 8;
        for i in 0..8 {
            tx.on_write(&model, i * sets * words_per_line, 0).unwrap();
        }
        assert!(tx.blame().is_none(), "no blame before a failed access");
        let fault_word = 8 * sets * words_per_line;
        assert_eq!(tx.on_write(&model, fault_word, 0), Err(AbortReason::Capacity));
        let blame = tx.blame().expect("capacity abort must leave blame");
        let fault = blame.fault.expect("capacity blame carries the faulting access");
        assert_eq!(fault.word_addr, fault_word);
        assert_eq!(fault.line, model.write_cache.line_of(fault_word * 8));
        assert_eq!(fault.set, 0);
        assert_eq!(fault.set_ways, model.write_cache.ways + 1);
        assert!(fault.is_write);
        assert_eq!(blame.write_lines, 9);
        assert_eq!(blame.write_bytes, 9 * model.write_cache.line_bytes);
        assert_eq!(blame.read_lines, 0);
        let mut mem = Memory::new();
        tx.abort(&mut mem);
        assert!(tx.blame().is_none(), "abort must clear blame");
    }

    #[test]
    fn read_capacity_captures_read_fault_blame() {
        let model = HtmModel::rtm();
        let mut tx = TxState::new();
        tx.begin();
        tx.on_write(&model, 0x40_0000, 0).unwrap();
        let read_cache = model.read_cache.unwrap();
        let sets = read_cache.sets();
        let words_per_line = read_cache.line_bytes / 8;
        for i in 0..8 {
            tx.on_read(&model, i * sets * words_per_line).unwrap();
        }
        assert_eq!(tx.on_read(&model, 8 * sets * words_per_line), Err(AbortReason::Capacity));
        let blame = tx.blame().unwrap();
        let fault = blame.fault.unwrap();
        assert!(!fault.is_write);
        assert_eq!(fault.set_ways, read_cache.ways + 1);
        assert_eq!(blame.read_lines, 9);
        assert_eq!(blame.read_bytes, 9 * read_cache.line_bytes);
        assert_eq!(blame.write_lines, 1);
    }

    #[test]
    fn snapshot_blame_has_no_fault_but_current_footprints() {
        let model = HtmModel::rot();
        let mut tx = TxState::new();
        tx.begin();
        tx.on_write(&model, 0x10_0000, 0).unwrap();
        tx.on_write(&model, 0x10_0008, 0).unwrap();
        tx.instructions = 42;
        let blame = tx.snapshot_blame(&model);
        assert!(blame.fault.is_none());
        assert_eq!(blame.write_lines, 2);
        assert_eq!(blame.write_bytes, 128);
        assert_eq!(blame.instructions, 42);
    }

    #[test]
    fn begin_clears_stale_blame() {
        let model = HtmModel::rot();
        let mut tx = TxState::new();
        tx.begin();
        let sets = model.write_cache.sets();
        let words_per_line = model.write_cache.line_bytes / 8;
        for i in 0..=8 {
            let _ = tx.on_write(&model, i * sets * words_per_line, 0);
        }
        assert!(tx.blame().is_some());
        let mut mem = Memory::new();
        tx.abort(&mut mem);
        tx.begin();
        assert!(tx.blame().is_none());
    }

    /// Deterministic splitmix64 stream for the rollback property test.
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    #[test]
    fn abort_restores_memory_and_clears_sw_bits_for_random_writes() {
        use crate::cache::CacheSim;

        // Random transactional write sequences, mirroring the executor's
        // write path (undo log + SW marks in the cache sim). The address
        // range spans far more than 8 lines per set so LRU set-conflict
        // evictions occur; abort must still restore memory byte-identically
        // and the flash-clear must leave zero SW bits.
        for (seed, model) in [(1u64, HtmModel::rot()), (2, HtmModel::rtm()), (99, HtmModel::rot())]
        {
            let mut rng = seed;
            let mut mem = Memory::new();
            let span = 16 * 1024u64; // words: 128 KB, > both caches' sets×ways
            let base = mem.alloc(span).unwrap();
            for i in 0..span {
                mem.poke(base + i, splitmix64(&mut rng));
            }
            let snapshot: Vec<u64> = (0..span).map(|i| mem.peek(base + i)).collect();

            let mut tx = TxState::new();
            let mut cache = CacheSim::new();
            tx.begin();
            for _ in 0..4096 {
                let addr = base + splitmix64(&mut rng) % span;
                let old = mem.peek(addr);
                // The executor records the write first, then lands it; the
                // capacity verdict does not gate the memory update here
                // because the abort path must cope either way.
                let _ = tx.on_write(&model, addr, old);
                mem.poke(addr, splitmix64(&mut rng));
                let in_l1 = model.write_cache.size_bytes <= 32 * 1024;
                cache.access_word(addr, in_l1, true);
                if tx.blame().is_some() {
                    break;
                }
            }
            let undone = tx.abort(&mut mem);
            cache.flash_clear_sw();
            assert!(undone > 0, "seed {seed}: no writes buffered");
            for (i, want) in snapshot.iter().enumerate() {
                assert_eq!(mem.peek(base + i as u64), *want, "seed {seed}: word {i} not restored");
            }
            assert_eq!(cache.l1.sw_line_count(), 0, "seed {seed}: SW bits left in L1");
            assert_eq!(cache.l2.sw_line_count(), 0, "seed {seed}: SW bits left in L2");
            assert!(!tx.active());
        }
    }

    #[test]
    fn begin_clears_sof() {
        let model = HtmModel::rot();
        let mut tx = TxState::new();
        tx.begin();
        tx.set_sof();
        let mut mem = Memory::new();
        tx.abort(&mut mem);
        tx.begin();
        assert!(!tx.sof());
        assert!(tx.end(&model).unwrap().is_some());
    }
}
