//! Cycle model.
//!
//! A simple in-order model: one cycle per dynamic instruction, plus memory
//! penalties from the cache simulator, plus the HTM costs the paper's
//! emulated platform charges (§VI-A1 and §VI-B).

use crate::cache::AccessOutcome;
use crate::htm::HtmKind;

/// Cycle-cost constants.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Timing {
    /// Cycles per dynamic instruction (base CPI).
    pub per_inst: u64,
    /// Extra cycles for an L1 miss that hits L2.
    pub l2_hit_penalty: u64,
    /// Extra cycles for a full miss to memory.
    pub mem_penalty: u64,
    /// XBegin cost under the lightweight HTM (an mfence, §VI-A1).
    pub rot_xbegin: u64,
    /// XEnd cost under the lightweight HTM (flash-clearing SW bits).
    pub rot_xend: u64,
    /// XBegin cost under RTM.
    pub rtm_xbegin: u64,
    /// XEnd cost under RTM (≥13 cycles: write-buffer drain, §VI-B).
    pub rtm_xend: u64,
    /// Extra cycles per transactional read under RTM (~20% slower reads).
    pub rtm_read_extra: u64,
    /// Cycles to take an abort (rollback initiation; undo writes are
    /// charged per word by the executor).
    pub abort_base: u64,
    /// Cycles per word rolled back on abort.
    pub abort_per_word: u64,
}

impl Default for Timing {
    fn default() -> Self {
        Timing {
            per_inst: 1,
            l2_hit_penalty: 10,
            mem_penalty: 60,
            rot_xbegin: 20,
            rot_xend: 5,
            rtm_xbegin: 20,
            rtm_xend: 13,
            rtm_read_extra: 1,
            abort_base: 50,
            abort_per_word: 2,
        }
    }
}

impl Timing {
    /// Penalty cycles for one memory access outcome.
    pub fn mem_cycles(&self, outcome: AccessOutcome) -> u64 {
        match outcome {
            AccessOutcome::L1 => 0,
            AccessOutcome::L2 => self.l2_hit_penalty,
            AccessOutcome::Memory => self.mem_penalty,
        }
    }

    /// XBegin cost for the given HTM.
    pub fn xbegin_cycles(&self, kind: HtmKind) -> u64 {
        match kind {
            HtmKind::None => 0,
            HtmKind::Rot => self.rot_xbegin,
            HtmKind::Rtm => self.rtm_xbegin,
        }
    }

    /// XEnd cost for the given HTM.
    pub fn xend_cycles(&self, kind: HtmKind) -> u64 {
        match kind {
            HtmKind::None => 0,
            HtmKind::Rot => self.rot_xend,
            HtmKind::Rtm => self.rtm_xend,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rtm_commit_slower_than_rot() {
        let t = Timing::default();
        assert!(t.xend_cycles(HtmKind::Rtm) > t.xend_cycles(HtmKind::Rot));
        assert_eq!(t.xend_cycles(HtmKind::None), 0);
    }

    #[test]
    fn miss_penalties_ordered() {
        let t = Timing::default();
        assert!(t.mem_cycles(AccessOutcome::Memory) > t.mem_cycles(AccessOutcome::L2));
        assert_eq!(t.mem_cycles(AccessOutcome::L1), 0);
    }
}
