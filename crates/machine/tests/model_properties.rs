//! Property tests on the cache and HTM models, driven by a deterministic
//! splitmix PRNG (no external crates) so every run covers the same corpus.

use nomap_machine::{AbortReason, Cache, CacheConfig, CacheSim, HtmModel, TxState};
use nomap_runtime::Memory;

struct Rng(u64);

impl Rng {
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n
    }
}

/// An access immediately repeated always hits.
#[test]
fn repeat_access_hits() {
    let mut rng = Rng(0xCAC4E);
    for _ in 0..16 {
        let mut c = Cache::new(CacheConfig::l1d());
        let n = 1 + rng.below(63);
        for _ in 0..n {
            let a = rng.below(1_000_000);
            c.access(a * 8, false);
            let (hit, _) = c.access(a * 8, false);
            assert!(hit, "immediate re-access of {a:#x} must hit");
        }
    }
}

/// A working set smaller than one way per set never evicts itself.
#[test]
fn small_working_set_stays_resident() {
    let mut rng = Rng(0x5E7);
    for _ in 0..16 {
        let start = rng.below(4096);
        let cfg = CacheConfig::l1d();
        let lines = cfg.sets(); // one line per set
        let mut c = Cache::new(cfg);
        let base = start * cfg.line_bytes * lines;
        for round in 0..3 {
            for i in 0..lines {
                let (hit, _) = c.access(base + i * cfg.line_bytes, false);
                if round > 0 {
                    assert!(hit, "round {round}, line {i}");
                }
            }
        }
    }
}

/// The transactional undo log restores arbitrary write sequences.
#[test]
fn tx_rollback_is_exact() {
    let mut rng = Rng(0x0110);
    for _ in 0..16 {
        let model = HtmModel::rot();
        let mut mem = Memory::new();
        let base = mem.alloc(256).unwrap();
        for i in 0..256 {
            mem.poke(base + i, i.wrapping_mul(0x9E37_79B9));
        }
        let before: Vec<u64> = (0..256).map(|i| mem.peek(base + i)).collect();
        let mut tx = TxState::new();
        tx.begin();
        let writes = 1 + rng.below(99);
        for _ in 0..writes {
            let addr = base + rng.below(256);
            let v = rng.next_u64();
            let old = mem.peek(addr);
            mem.poke(addr, v);
            // Capacity can't trigger: 256 words = 32 lines spread over sets.
            tx.on_write(&model, addr, old).unwrap();
        }
        tx.abort(&mut mem);
        for (i, &b) in before.iter().enumerate() {
            assert_eq!(mem.peek(base + i as u64), b);
        }
    }
}

/// Write-footprint accounting is line-exact: distinct lines touched ×
/// line size.
#[test]
fn footprint_counts_distinct_lines() {
    let mut rng = Rng(0xF007);
    for _ in 0..16 {
        let model = HtmModel::rot();
        let mut tx = TxState::new();
        tx.begin();
        let base = 0x1000_0000u64;
        let mut lines = std::collections::HashSet::new();
        let n = 1 + rng.below(79);
        for _ in 0..n {
            let o = rng.below(512);
            tx.on_write(&model, base + o, 0).unwrap();
            lines.insert((base + o) * 8 / model.write_cache.line_bytes);
        }
        let out = tx.end(&model).unwrap().unwrap();
        assert_eq!(out.write_footprint_bytes, lines.len() as u64 * model.write_cache.line_bytes);
    }
}

#[test]
fn flattened_nesting_commits_once() {
    let model = HtmModel::rot();
    let mut tx = TxState::new();
    tx.begin();
    tx.begin();
    tx.begin();
    assert_eq!(tx.end(&model), Ok(None));
    assert_eq!(tx.end(&model), Ok(None));
    let out = tx.end(&model).unwrap();
    assert!(out.is_some(), "outermost end commits");
    assert!(!tx.active());
}

#[test]
fn rtm_write_capacity_is_l1_bound() {
    let model = HtmModel::rtm();
    let mut tx = TxState::new();
    tx.begin();
    // Fill distinct L1 sets: 64 sets × 8 ways = 512 lines of 8 words.
    let words_per_line = 8;
    let mut aborted = false;
    for i in 0..600u64 {
        if tx.on_write(&model, 0x1000_0000 + i * words_per_line, 0).is_err() {
            aborted = true;
            break;
        }
    }
    assert!(aborted, "600 lines exceed a 32KB / 512-line write budget");
}

#[test]
fn rot_write_capacity_is_l2_bound() {
    let model = HtmModel::rot();
    let mut tx = TxState::new();
    tx.begin();
    let words_per_line = 8;
    // 4096 lines fill the 256KB L2 exactly; the model aborts only when a
    // set exceeds its ways, so sequential lines up to capacity must fit.
    for i in 0..4096u64 {
        tx.on_write(&model, 0x1000_0000 + i * words_per_line, 0)
            .unwrap_or_else(|e| panic!("line {i} aborted: {e:?}"));
    }
    let mut tx2 = TxState::new();
    tx2.begin();
    let mut aborted = false;
    for i in 0..5000u64 {
        if tx2.on_write(&model, 0x1000_0000 + i * words_per_line, 0).is_err() {
            aborted = true;
            break;
        }
    }
    assert!(aborted, "5000 lines exceed the 4096-line L2 budget");
}

#[test]
fn hierarchy_inclusive_sw_clear() {
    let mut sim = CacheSim::new();
    sim.access_word(0x1000_0000, true, true);
    assert_eq!(sim.l1.sw_line_count(), 1);
    assert_eq!(sim.l2.sw_line_count(), 1);
    sim.flash_clear_sw();
    assert_eq!(sim.l1.sw_line_count() + sim.l2.sw_line_count(), 0);
}

#[test]
fn sof_only_applies_to_models_with_sof() {
    assert!(HtmModel::rot().has_sof);
    assert!(!HtmModel::rtm().has_sof);
    assert!(!HtmModel::none().has_sof);
    let model = HtmModel::rot();
    let mut tx = TxState::new();
    tx.begin();
    tx.set_sof();
    assert_eq!(tx.end(&model), Err(AbortReason::StickyOverflow));
}
