//! Bytecode opcodes.

use std::fmt;

use crate::program::{ConstId, FuncId, NameId};

/// A bytecode virtual register.
///
/// Registers `0..param_count` hold the arguments, the next block holds the
/// function's `var`-declared locals, and everything above is expression
/// temporaries managed stack-wise by the compiler.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Reg(pub u16);

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// A value-profiling site within one function.
///
/// The interpreter and Baseline tiers record observed operand kinds, shapes
/// and array behaviour per site; the DFG/FTL tiers speculate on them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SiteId(pub u16);

impl fmt::Display for SiteId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "@{}", self.0)
    }
}

/// Generic binary operators; semantics follow JavaScript (e.g. `Add` is
/// numeric addition or string concatenation, `Div` is double division).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinaryOp {
    Add,
    Sub,
    Mul,
    Div,
    Mod,
    BitAnd,
    BitOr,
    BitXor,
    Shl,
    Shr,
    UShr,
    Lt,
    Le,
    Gt,
    Ge,
    Eq,
    NotEq,
    StrictEq,
    StrictNotEq,
}

impl BinaryOp {
    /// True for operators producing booleans.
    pub fn is_comparison(self) -> bool {
        matches!(
            self,
            BinaryOp::Lt
                | BinaryOp::Le
                | BinaryOp::Gt
                | BinaryOp::Ge
                | BinaryOp::Eq
                | BinaryOp::NotEq
                | BinaryOp::StrictEq
                | BinaryOp::StrictNotEq
        )
    }

    /// True for the bitwise/shift group, which coerces operands to int32
    /// and therefore can never overflow.
    pub fn is_int_producing(self) -> bool {
        matches!(
            self,
            BinaryOp::BitAnd | BinaryOp::BitOr | BinaryOp::BitXor | BinaryOp::Shl | BinaryOp::Shr
        )
    }
}

/// Generic unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnaryOp {
    /// Numeric negation.
    Neg,
    /// `+x` — coerce to number.
    ToNumber,
    /// Logical not.
    Not,
    /// `~x`.
    BitNot,
    /// `typeof x` — yields a string.
    Typeof,
}

/// Built-in functions recognized by the bytecode compiler.
///
/// These model the parts of the JavaScript standard library the workloads
/// use. In the instruction-accounting of the paper they count as runtime
/// ("NoFTL") work, like JavaScriptCore's C++ runtime functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Intrinsic {
    MathSqrt,
    MathFloor,
    MathCeil,
    MathRound,
    MathAbs,
    MathSin,
    MathCos,
    MathTan,
    MathAtan,
    MathAtan2,
    MathExp,
    MathLog,
    MathPow,
    MathMax,
    MathMin,
    /// Deterministic seeded PRNG (so experiments are reproducible).
    MathRandom,
    ArrayPush,
    ArrayPop,
    StringCharCodeAt,
    StringCharAt,
    StringFromCharCode,
    StringSubstring,
    StringIndexOf,
    /// Writes the printable form of the argument to the VM's output buffer.
    Print,
}

impl Intrinsic {
    /// Resolves `recv.name(...)` to an intrinsic, if the receiver is the
    /// well-known `Math`/`String` namespace object.
    pub fn from_namespace(ns: &str, name: &str) -> Option<Intrinsic> {
        Some(match (ns, name) {
            ("Math", "sqrt") => Intrinsic::MathSqrt,
            ("Math", "floor") => Intrinsic::MathFloor,
            ("Math", "ceil") => Intrinsic::MathCeil,
            ("Math", "round") => Intrinsic::MathRound,
            ("Math", "abs") => Intrinsic::MathAbs,
            ("Math", "sin") => Intrinsic::MathSin,
            ("Math", "cos") => Intrinsic::MathCos,
            ("Math", "tan") => Intrinsic::MathTan,
            ("Math", "atan") => Intrinsic::MathAtan,
            ("Math", "atan2") => Intrinsic::MathAtan2,
            ("Math", "exp") => Intrinsic::MathExp,
            ("Math", "log") => Intrinsic::MathLog,
            ("Math", "pow") => Intrinsic::MathPow,
            ("Math", "max") => Intrinsic::MathMax,
            ("Math", "min") => Intrinsic::MathMin,
            ("Math", "random") => Intrinsic::MathRandom,
            ("String", "fromCharCode") => Intrinsic::StringFromCharCode,
            _ => return None,
        })
    }

    /// Resolves a method call on an arbitrary receiver (`arr.push(x)`,
    /// `s.charCodeAt(i)`, ...).
    pub fn from_method(name: &str) -> Option<Intrinsic> {
        Some(match name {
            "push" => Intrinsic::ArrayPush,
            "pop" => Intrinsic::ArrayPop,
            "charCodeAt" => Intrinsic::StringCharCodeAt,
            "charAt" => Intrinsic::StringCharAt,
            "substring" => Intrinsic::StringSubstring,
            "indexOf" => Intrinsic::StringIndexOf,
            _ => return None,
        })
    }

    /// True when the intrinsic is a pure double → double (or
    /// double,double → double) math function that higher tiers may inline
    /// as a single machine-level math instruction.
    pub fn is_pure_math(self) -> bool {
        matches!(
            self,
            Intrinsic::MathSqrt
                | Intrinsic::MathFloor
                | Intrinsic::MathCeil
                | Intrinsic::MathRound
                | Intrinsic::MathAbs
                | Intrinsic::MathSin
                | Intrinsic::MathCos
                | Intrinsic::MathTan
                | Intrinsic::MathAtan
                | Intrinsic::MathAtan2
                | Intrinsic::MathExp
                | Intrinsic::MathLog
                | Intrinsic::MathPow
                | Intrinsic::MathMax
                | Intrinsic::MathMin
        )
    }
}

/// A bytecode instruction.
///
/// Jump `target`s are instruction indices within the function.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Op {
    /// `dst = constants[cid]`.
    LoadConst { dst: Reg, cid: ConstId },
    /// `dst = value` (int32 immediate).
    LoadInt { dst: Reg, value: i32 },
    /// `dst = value`.
    LoadBool { dst: Reg, value: bool },
    /// `dst = undefined`.
    LoadUndefined { dst: Reg },
    /// `dst = null`.
    LoadNull { dst: Reg },
    /// `dst = src`.
    Mov { dst: Reg, src: Reg },
    /// `dst = a <op> b` with JavaScript generic semantics.
    Binary { op: BinaryOp, dst: Reg, a: Reg, b: Reg, site: SiteId },
    /// `dst = <op> a`.
    Unary { op: UnaryOp, dst: Reg, a: Reg, site: SiteId },
    /// Unconditional jump.
    Jump { target: u32 },
    /// Jump when `cond` is truthy.
    JumpIfTrue { cond: Reg, target: u32 },
    /// Jump when `cond` is falsy.
    JumpIfFalse { cond: Reg, target: u32 },
    /// `dst = {}` (fresh empty object with the root shape).
    NewObject { dst: Reg },
    /// `dst = new Array(len)` — `len` coerced to uint32.
    NewArray { dst: Reg, len: Reg },
    /// `dst = obj.name` (profiled).
    GetProp { dst: Reg, obj: Reg, name: NameId, site: SiteId },
    /// `obj.name = val` (profiled; may transition the object's shape).
    PutProp { obj: Reg, name: NameId, val: Reg, site: SiteId },
    /// `dst = arr[idx]` (profiled; out-of-bounds and holes yield undefined).
    GetIndex { dst: Reg, arr: Reg, idx: Reg, site: SiteId },
    /// `arr[idx] = val` (profiled; elongates the array when needed).
    PutIndex { arr: Reg, idx: Reg, val: Reg, site: SiteId },
    /// `dst = globals[name]`.
    GetGlobal { dst: Reg, name: NameId, site: SiteId },
    /// `globals[name] = src`.
    PutGlobal { name: NameId, src: Reg },
    /// Direct call of a declared function; arguments live in
    /// `argv..argv+argc`.
    Call { dst: Reg, func: FuncId, argv: Reg, argc: u8, site: SiteId },
    /// Call of a built-in; arguments live in `argv..argv+argc`.
    CallIntrinsic { dst: Reg, intr: Intrinsic, argv: Reg, argc: u8, site: SiteId },
    /// Return `src` to the caller.
    Return { src: Reg },
}

/// Number of opcode kinds (the length of [`Op::KIND_NAMES`]).
pub const OP_KIND_COUNT: usize = 22;

impl Op {
    /// Kebab-case names of every opcode kind, indexed by
    /// [`Op::kind_index`]. Used by the dynamic-frequency census to label
    /// opcode and digram counters.
    pub const KIND_NAMES: [&'static str; OP_KIND_COUNT] = [
        "load-const",
        "load-int",
        "load-bool",
        "load-undefined",
        "load-null",
        "mov",
        "binary",
        "unary",
        "jump",
        "jump-if-true",
        "jump-if-false",
        "new-object",
        "new-array",
        "get-prop",
        "put-prop",
        "get-index",
        "put-index",
        "get-global",
        "put-global",
        "call",
        "call-intrinsic",
        "return",
    ];

    /// Dense index of this opcode's kind (operands ignored), matching
    /// [`Op::KIND_NAMES`].
    pub fn kind_index(&self) -> u8 {
        match self {
            Op::LoadConst { .. } => 0,
            Op::LoadInt { .. } => 1,
            Op::LoadBool { .. } => 2,
            Op::LoadUndefined { .. } => 3,
            Op::LoadNull { .. } => 4,
            Op::Mov { .. } => 5,
            Op::Binary { .. } => 6,
            Op::Unary { .. } => 7,
            Op::Jump { .. } => 8,
            Op::JumpIfTrue { .. } => 9,
            Op::JumpIfFalse { .. } => 10,
            Op::NewObject { .. } => 11,
            Op::NewArray { .. } => 12,
            Op::GetProp { .. } => 13,
            Op::PutProp { .. } => 14,
            Op::GetIndex { .. } => 15,
            Op::PutIndex { .. } => 16,
            Op::GetGlobal { .. } => 17,
            Op::PutGlobal { .. } => 18,
            Op::Call { .. } => 19,
            Op::CallIntrinsic { .. } => 20,
            Op::Return { .. } => 21,
        }
    }

    /// The jump target, if this is a branch.
    pub fn jump_target(&self) -> Option<u32> {
        match *self {
            Op::Jump { target }
            | Op::JumpIfTrue { target, .. }
            | Op::JumpIfFalse { target, .. } => Some(target),
            _ => None,
        }
    }

    /// Rewrites the jump target; panics if this is not a branch.
    ///
    /// # Panics
    ///
    /// Panics when called on a non-branch opcode.
    pub fn set_jump_target(&mut self, new_target: u32) {
        match self {
            Op::Jump { target }
            | Op::JumpIfTrue { target, .. }
            | Op::JumpIfFalse { target, .. } => *target = new_target,
            other => panic!("set_jump_target on non-branch {other:?}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jump_target_roundtrip() {
        let mut op = Op::Jump { target: 3 };
        assert_eq!(op.jump_target(), Some(3));
        op.set_jump_target(7);
        assert_eq!(op.jump_target(), Some(7));
        assert_eq!(Op::Return { src: Reg(0) }.jump_target(), None);
    }

    #[test]
    fn intrinsic_resolution() {
        assert_eq!(Intrinsic::from_namespace("Math", "sqrt"), Some(Intrinsic::MathSqrt));
        assert_eq!(Intrinsic::from_namespace("Math", "nope"), None);
        assert_eq!(Intrinsic::from_method("push"), Some(Intrinsic::ArrayPush));
        assert!(Intrinsic::MathSin.is_pure_math());
        assert!(!Intrinsic::ArrayPush.is_pure_math());
    }

    #[test]
    fn kind_index_matches_kind_names() {
        assert_eq!(Op::KIND_NAMES.len(), OP_KIND_COUNT);
        let samples = [
            (Op::LoadInt { dst: Reg(0), value: 1 }, "load-int"),
            (Op::Mov { dst: Reg(0), src: Reg(1) }, "mov"),
            (Op::Jump { target: 0 }, "jump"),
            (Op::Return { src: Reg(0) }, "return"),
        ];
        for (op, name) in samples {
            assert_eq!(Op::KIND_NAMES[op.kind_index() as usize], name, "{op:?}");
        }
        // Indices stay in range for the census table.
        assert!(samples.iter().all(|(op, _)| (op.kind_index() as usize) < OP_KIND_COUNT));
    }

    #[test]
    fn comparison_classification() {
        assert!(BinaryOp::Lt.is_comparison());
        assert!(!BinaryOp::Add.is_comparison());
        assert!(BinaryOp::Shl.is_int_producing());
        assert!(!BinaryOp::UShr.is_int_producing()); // >>> may exceed int32
    }
}
