//! Human-readable bytecode listings, for debugging and examples.

use std::fmt::Write as _;

use crate::op::Op;
use crate::program::{Const, Function, Interner};

/// Renders `func` as a listing, one opcode per line, with loop headers
/// marked.
///
/// # Example
///
/// ```
/// let p = nomap_bytecode::compile_program("var x = 1 + 2;")?;
/// let text = nomap_bytecode::disassemble(&p.functions[0], &p.interner);
/// assert!(text.contains("binary Add"));
/// # Ok::<(), nomap_bytecode::CompileError>(())
/// ```
pub fn disassemble(func: &Function, interner: &Interner) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "function {} ({} params, {} locals, {} regs, {} sites)",
        func.name, func.param_count, func.local_count, func.register_count, func.site_count
    );
    for (i, op) in func.code.iter().enumerate() {
        let marker = if func.is_loop_header(i as u32) { "L" } else { " " };
        let _ = writeln!(out, "{marker}{i:5}: {}", render_op(op, func, interner));
    }
    out
}

fn render_op(op: &Op, func: &Function, interner: &Interner) -> String {
    match *op {
        Op::LoadConst { dst, cid } => {
            let c = &func.constants[cid.0 as usize];
            match c {
                Const::Num(n) => format!("{dst} = const {n}"),
                Const::Str(s) => format!("{dst} = const {s:?}"),
            }
        }
        Op::LoadInt { dst, value } => format!("{dst} = int {value}"),
        Op::LoadBool { dst, value } => format!("{dst} = {value}"),
        Op::LoadUndefined { dst } => format!("{dst} = undefined"),
        Op::LoadNull { dst } => format!("{dst} = null"),
        Op::Mov { dst, src } => format!("{dst} = {src}"),
        Op::Binary { op, dst, a, b, site } => format!("{dst} = binary {op:?} {a}, {b} {site}"),
        Op::Unary { op, dst, a, site } => format!("{dst} = unary {op:?} {a} {site}"),
        Op::Jump { target } => format!("jump -> {target}"),
        Op::JumpIfTrue { cond, target } => format!("if {cond} jump -> {target}"),
        Op::JumpIfFalse { cond, target } => format!("if not {cond} jump -> {target}"),
        Op::NewObject { dst } => format!("{dst} = new object"),
        Op::NewArray { dst, len } => format!("{dst} = new array[{len}]"),
        Op::GetProp { dst, obj, name, site } => {
            format!("{dst} = {obj}.{} {site}", interner.resolve(name))
        }
        Op::PutProp { obj, name, val, site } => {
            format!("{obj}.{} = {val} {site}", interner.resolve(name))
        }
        Op::GetIndex { dst, arr, idx, site } => format!("{dst} = {arr}[{idx}] {site}"),
        Op::PutIndex { arr, idx, val, site } => format!("{arr}[{idx}] = {val} {site}"),
        Op::GetGlobal { dst, name, site } => {
            format!("{dst} = global {} {site}", interner.resolve(name))
        }
        Op::PutGlobal { name, src } => format!("global {} = {src}", interner.resolve(name)),
        Op::Call { dst, func, argv, argc, site } => {
            format!("{dst} = call {func} args {argv}+{argc} {site}")
        }
        Op::CallIntrinsic { dst, intr, argv, argc, site } => {
            format!("{dst} = intrinsic {intr:?} args {argv}+{argc} {site}")
        }
        Op::Return { src } => format!("return {src}"),
    }
}

#[cfg(test)]
mod tests {
    use crate::compile::compile_program;

    #[test]
    fn disassembles_every_opcode_shape() {
        let p = compile_program(
            "function g(x) { return x; }
             var o = {a: 1};
             var arr = [1, 2];
             var s = 'hi';
             for (var i = 0; i < 2; i++) { o.a += arr[i] ? 1 : 0; }
             arr[0] = g(o.a) + Math.floor(1.5);
             var t = typeof o;",
        )
        .unwrap();
        for f in &p.functions {
            let text = super::disassemble(f, &p.interner);
            assert!(text.lines().count() >= f.code.len());
        }
    }
}
