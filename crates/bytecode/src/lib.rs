//! Register bytecode for MiniJS and the AST → bytecode compiler.
//!
//! The bytecode is the *lingua franca* of the tier stack (paper §II): the
//! Interpreter executes it directly, the Baseline tier macro-expands each
//! opcode into generic machine code, and the DFG/FTL tiers build their SSA IR
//! from it using the profiling information the lower tiers collected.
//! Deoptimization (OSR exit) re-enters lower tiers *at bytecode boundaries*,
//! so every opcode index is a potential Stack Map Point.
//!
//! # Example
//!
//! ```
//! use nomap_bytecode::compile_program;
//!
//! let program = compile_program("function f(x) { return x + 1; } f(1);")?;
//! let f = program.function_named("f").unwrap();
//! assert_eq!(f.param_count, 1);
//! # Ok::<(), nomap_bytecode::CompileError>(())
//! ```

mod compile;
mod disasm;
mod op;
mod program;

pub use compile::{compile_ast, compile_program, CompileError};
pub use disasm::disassemble;
pub use op::{BinaryOp, Intrinsic, Op, Reg, SiteId, UnaryOp};
pub use program::{Const, ConstId, FuncId, Function, Interner, NameId, Program};
