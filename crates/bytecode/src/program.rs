//! Compiled program representation: functions, constants, interned names.

use std::collections::HashMap;
use std::fmt;

use crate::op::Op;

/// Index of an interned name (property, global or function name).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NameId(pub u32);

impl fmt::Display for NameId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Index of a function within a [`Program`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FuncId(pub u32);

impl fmt::Display for FuncId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "f{}", self.0)
    }
}

/// Index into a function's constant pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ConstId(pub u16);

/// A compile-time constant.
#[derive(Debug, Clone, PartialEq)]
pub enum Const {
    /// A number that did not fit int32 (or is fractional).
    Num(f64),
    /// A string literal.
    Str(String),
}

/// String interner mapping names to dense [`NameId`]s.
#[derive(Debug, Clone, Default)]
pub struct Interner {
    names: Vec<String>,
    map: HashMap<String, NameId>,
}

impl Interner {
    /// Creates an empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns `name`, returning its stable id.
    pub fn intern(&mut self, name: &str) -> NameId {
        if let Some(&id) = self.map.get(name) {
            return id;
        }
        let id = NameId(self.names.len() as u32);
        self.names.push(name.to_owned());
        self.map.insert(name.to_owned(), id);
        id
    }

    /// Looks up an already-interned name.
    pub fn get(&self, name: &str) -> Option<NameId> {
        self.map.get(name).copied()
    }

    /// Returns the string for `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not produced by this interner.
    pub fn resolve(&self, id: NameId) -> &str {
        &self.names[id.0 as usize]
    }

    /// Number of interned names.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True when nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }
}

/// A compiled MiniJS function.
#[derive(Debug, Clone)]
pub struct Function {
    /// Function id within the program.
    pub id: FuncId,
    /// Source-level name (`"«main»"` for the top-level script).
    pub name: String,
    /// Number of parameters (registers `0..param_count`).
    pub param_count: u16,
    /// Total registers used (params + locals + temporaries).
    pub register_count: u16,
    /// Number of `var` locals (registers `param_count..param_count+local_count`).
    pub local_count: u16,
    /// The code.
    pub code: Vec<Op>,
    /// Constant pool.
    pub constants: Vec<Const>,
    /// Number of profiling sites allocated in `code`.
    pub site_count: u16,
    /// Instruction indices that are loop headers (targets of back edges),
    /// in ascending order.
    pub loop_headers: Vec<u32>,
}

impl Function {
    /// True if `index` starts a loop (i.e. some back edge targets it).
    pub fn is_loop_header(&self, index: u32) -> bool {
        self.loop_headers.binary_search(&index).is_ok()
    }
}

/// A compiled MiniJS program.
#[derive(Debug, Clone)]
pub struct Program {
    /// All functions; index 0 is the top-level script.
    pub functions: Vec<Function>,
    /// Interned names (properties, globals).
    pub interner: Interner,
    /// Map from function name to id.
    pub function_ids: HashMap<String, FuncId>,
}

impl Program {
    /// The id of the top-level script function.
    pub const MAIN: FuncId = FuncId(0);

    /// Looks up a function by source name.
    pub fn function_named(&self, name: &str) -> Option<&Function> {
        self.function_ids.get(name).map(|&id| &self.functions[id.0 as usize])
    }

    /// Returns the function for `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn function(&self, id: FuncId) -> &Function {
        &self.functions[id.0 as usize]
    }

    /// Total static opcode count over all functions (for reporting).
    pub fn static_op_count(&self) -> usize {
        self.functions.iter().map(|f| f.code.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interner_deduplicates() {
        let mut i = Interner::new();
        let a = i.intern("length");
        let b = i.intern("length");
        let c = i.intern("sum");
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(i.resolve(a), "length");
        assert_eq!(i.len(), 2);
    }

    #[test]
    fn loop_header_lookup() {
        let f = Function {
            id: FuncId(0),
            name: "t".into(),
            param_count: 0,
            register_count: 1,
            local_count: 0,
            code: vec![],
            constants: vec![],
            site_count: 0,
            loop_headers: vec![2, 10],
        };
        assert!(f.is_loop_header(2));
        assert!(!f.is_loop_header(3));
    }
}
