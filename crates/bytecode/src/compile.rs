//! AST → bytecode compiler.

use std::collections::HashMap;
use std::error::Error;
use std::fmt;

use nomap_frontend::{
    parse_program, AssignTarget, BinOp, Expr, ExprKind, LogOp, ParseError, Span, Stmt, StmtKind,
    UnOp,
};

use crate::op::{BinaryOp, Intrinsic, Op, Reg, SiteId, UnaryOp};
use crate::program::{Const, ConstId, FuncId, Function, Interner, NameId, Program};

/// An error produced while compiling to bytecode.
#[derive(Debug, Clone, PartialEq)]
pub struct CompileError {
    msg: String,
    /// Source location of the offending construct.
    pub span: Span,
}

impl CompileError {
    fn new(msg: impl Into<String>, span: Span) -> Self {
        CompileError { msg: msg.into(), span }
    }
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "compile error at {}: {}", self.span, self.msg)
    }
}

impl Error for CompileError {}

impl From<ParseError> for CompileError {
    fn from(e: ParseError) -> Self {
        CompileError { msg: e.to_string(), span: e.span }
    }
}

/// Parses and compiles MiniJS source into a bytecode [`Program`].
///
/// # Errors
///
/// Returns a [`CompileError`] on syntax errors, unknown functions/methods,
/// or register exhaustion.
///
/// # Example
///
/// ```
/// let p = nomap_bytecode::compile_program("var x = 1 + 2;")?;
/// assert!(p.functions[0].code.len() >= 3);
/// # Ok::<(), nomap_bytecode::CompileError>(())
/// ```
pub fn compile_program(src: &str) -> Result<Program, CompileError> {
    let ast = parse_program(src)?;
    compile_ast(&ast)
}

/// Compiles an already-parsed AST into a bytecode [`Program`].
///
/// # Errors
///
/// See [`compile_program`].
pub fn compile_ast(ast: &nomap_frontend::Program) -> Result<Program, CompileError> {
    let mut interner = Interner::new();
    let mut function_ids = HashMap::new();
    // Function id 0 is the synthetic top-level script.
    for (i, f) in ast.functions.iter().enumerate() {
        let id = FuncId(1 + i as u32);
        if function_ids.insert(f.name.clone(), id).is_some() {
            return Err(CompileError::new(format!("duplicate function `{}`", f.name), f.span));
        }
    }

    let mut functions = Vec::with_capacity(1 + ast.functions.len());
    let main = FuncCompiler::new(
        FuncId(0),
        "«main»".to_owned(),
        &[],
        &ast.top_level,
        true,
        &mut interner,
        &function_ids,
    )
    .compile()?;
    functions.push(main);
    for (i, f) in ast.functions.iter().enumerate() {
        let c = FuncCompiler::new(
            FuncId(1 + i as u32),
            f.name.clone(),
            &f.params,
            &f.body,
            false,
            &mut interner,
            &function_ids,
        );
        functions.push(c.compile()?);
    }

    Ok(Program { functions, interner, function_ids })
}

/// Loop context for `break`/`continue` patching.
struct LoopCtx {
    break_patches: Vec<usize>,
    continue_patches: Vec<usize>,
    /// Set when the continue target is already known (e.g. `while` header).
    continue_target: Option<u32>,
}

struct FuncCompiler<'a> {
    id: FuncId,
    name: String,
    is_main: bool,
    code: Vec<Op>,
    constants: Vec<Const>,
    const_map: HashMap<ConstKey, ConstId>,
    locals: HashMap<String, Reg>,
    param_count: u16,
    local_count: u16,
    first_temp: u16,
    next_temp: u16,
    max_reg: u16,
    sites: u16,
    loops: Vec<LoopCtx>,
    loop_headers: Vec<u32>,
    interner: &'a mut Interner,
    function_ids: &'a HashMap<String, FuncId>,
    body: &'a [Stmt],
}

#[derive(PartialEq, Eq, Hash)]
enum ConstKey {
    Num(u64),
    Str(String),
}

impl<'a> FuncCompiler<'a> {
    fn new(
        id: FuncId,
        name: String,
        params: &[String],
        body: &'a [Stmt],
        is_main: bool,
        interner: &'a mut Interner,
        function_ids: &'a HashMap<String, FuncId>,
    ) -> Self {
        let mut locals = HashMap::new();
        for (i, p) in params.iter().enumerate() {
            locals.insert(p.clone(), Reg(i as u16));
        }
        let param_count = params.len() as u16;
        let mut c = FuncCompiler {
            id,
            name,
            is_main,
            code: Vec::new(),
            constants: Vec::new(),
            const_map: HashMap::new(),
            locals,
            param_count,
            local_count: 0,
            first_temp: param_count,
            next_temp: param_count,
            max_reg: param_count,
            sites: 0,
            loops: Vec::new(),
            loop_headers: Vec::new(),
            interner,
            function_ids,
            body,
        };
        if !is_main {
            // Hoist `var` declarations into locals (function scope).
            let mut names = Vec::new();
            collect_vars(body, &mut names);
            for n in names {
                if !c.locals.contains_key(&n) {
                    let r = Reg(c.param_count + c.local_count);
                    c.local_count += 1;
                    c.locals.insert(n, r);
                }
            }
            c.first_temp = c.param_count + c.local_count;
            c.next_temp = c.first_temp;
            c.max_reg = c.first_temp;
        }
        c
    }

    fn compile(mut self) -> Result<Function, CompileError> {
        // Locals start as undefined (hoisting semantics).
        for i in 0..self.local_count {
            self.emit(Op::LoadUndefined { dst: Reg(self.param_count + i) });
        }
        for stmt in self.body {
            self.stmt(stmt)?;
        }
        // Implicit `return undefined`.
        let r = self.temp(Span::default())?;
        self.emit(Op::LoadUndefined { dst: r });
        self.emit(Op::Return { src: r });
        let mut loop_headers = std::mem::take(&mut self.loop_headers);
        loop_headers.sort_unstable();
        loop_headers.dedup();
        Ok(Function {
            id: self.id,
            name: self.name,
            param_count: self.param_count,
            register_count: self.max_reg,
            local_count: self.local_count,
            code: self.code,
            constants: self.constants,
            site_count: self.sites,
            loop_headers,
        })
    }

    // ---- small helpers -------------------------------------------------

    fn emit(&mut self, op: Op) -> usize {
        self.code.push(op);
        self.code.len() - 1
    }

    fn here(&self) -> u32 {
        self.code.len() as u32
    }

    fn patch(&mut self, at: usize, target: u32) {
        self.code[at].set_jump_target(target);
        if target <= at as u32 {
            self.loop_headers.push(target);
        }
    }

    fn site(&mut self) -> SiteId {
        let s = SiteId(self.sites);
        self.sites += 1;
        s
    }

    fn temp(&mut self, span: Span) -> Result<Reg, CompileError> {
        let r = self.next_temp;
        self.next_temp = self
            .next_temp
            .checked_add(1)
            .ok_or_else(|| CompileError::new("register file exhausted", span))?;
        if self.next_temp > self.max_reg {
            self.max_reg = self.next_temp;
        }
        Ok(Reg(r))
    }

    fn temp_mark(&self) -> u16 {
        self.next_temp
    }

    fn reset_temps(&mut self, mark: u16) {
        self.next_temp = mark;
    }

    fn constant(&mut self, c: Const, span: Span) -> Result<ConstId, CompileError> {
        let key = match &c {
            Const::Num(n) => ConstKey::Num(n.to_bits()),
            Const::Str(s) => ConstKey::Str(s.clone()),
        };
        if let Some(&id) = self.const_map.get(&key) {
            return Ok(id);
        }
        if self.constants.len() > u16::MAX as usize {
            return Err(CompileError::new("constant pool exhausted", span));
        }
        let id = ConstId(self.constants.len() as u16);
        self.constants.push(c);
        self.const_map.insert(key, id);
        Ok(id)
    }

    fn name(&mut self, s: &str) -> NameId {
        self.interner.intern(s)
    }

    // ---- statements ----------------------------------------------------

    fn stmt(&mut self, s: &Stmt) -> Result<(), CompileError> {
        let mark = self.temp_mark();
        match &s.kind {
            StmtKind::Empty => {}
            StmtKind::Expr(e) => {
                self.expr(e)?;
            }
            StmtKind::VarDecl(decls) => {
                for (nm, init) in decls {
                    match init {
                        Some(e) => {
                            let v = self.expr(e)?;
                            self.store_var(nm, v, s.span)?;
                        }
                        None => {
                            if self.is_main && !self.locals.contains_key(nm) {
                                let v = self.temp(s.span)?;
                                self.emit(Op::LoadUndefined { dst: v });
                                let name = self.name(nm);
                                self.emit(Op::PutGlobal { name, src: v });
                            }
                            // Function-local `var x;` is already undefined.
                        }
                    }
                    self.reset_temps(mark);
                }
            }
            StmtKind::Block(stmts) => {
                for st in stmts {
                    self.stmt(st)?;
                }
            }
            StmtKind::If(cond, then, els) => {
                let c = self.expr(cond)?;
                let jf = self.emit(Op::JumpIfFalse { cond: c, target: 0 });
                self.reset_temps(mark);
                self.stmt(then)?;
                if let Some(els) = els {
                    let jend = self.emit(Op::Jump { target: 0 });
                    let else_at = self.here();
                    self.patch(jf, else_at);
                    self.stmt(els)?;
                    let end = self.here();
                    self.patch(jend, end);
                } else {
                    let end = self.here();
                    self.patch(jf, end);
                }
            }
            StmtKind::While(cond, body) => {
                let header = self.here();
                self.loop_headers.push(header);
                let c = self.expr(cond)?;
                let jexit = self.emit(Op::JumpIfFalse { cond: c, target: 0 });
                self.reset_temps(mark);
                self.loops.push(LoopCtx {
                    break_patches: vec![],
                    continue_patches: vec![],
                    continue_target: Some(header),
                });
                self.stmt(body)?;
                let back = self.emit(Op::Jump { target: 0 });
                self.patch(back, header);
                let end = self.here();
                self.patch(jexit, end);
                let ctx = self.loops.pop().unwrap();
                self.finish_loop(ctx, end, Some(header));
            }
            StmtKind::DoWhile(body, cond) => {
                let header = self.here();
                self.loop_headers.push(header);
                self.loops.push(LoopCtx {
                    break_patches: vec![],
                    continue_patches: vec![],
                    continue_target: None,
                });
                self.stmt(body)?;
                let cont_at = self.here();
                let c = self.expr(cond)?;
                let back = self.emit(Op::JumpIfTrue { cond: c, target: 0 });
                self.patch(back, header);
                let end = self.here();
                let ctx = self.loops.pop().unwrap();
                self.finish_loop(ctx, end, Some(cont_at));
            }
            StmtKind::For { init, cond, step, body } => {
                if let Some(init) = init {
                    self.stmt(init)?;
                }
                let header = self.here();
                self.loop_headers.push(header);
                let jexit = match cond {
                    Some(c) => {
                        let r = self.expr(c)?;
                        let j = self.emit(Op::JumpIfFalse { cond: r, target: 0 });
                        self.reset_temps(mark);
                        Some(j)
                    }
                    None => None,
                };
                self.loops.push(LoopCtx {
                    break_patches: vec![],
                    continue_patches: vec![],
                    continue_target: None,
                });
                self.stmt(body)?;
                let cont_at = self.here();
                if let Some(step) = step {
                    let m = self.temp_mark();
                    self.expr(step)?;
                    self.reset_temps(m);
                }
                let back = self.emit(Op::Jump { target: 0 });
                self.patch(back, header);
                let end = self.here();
                if let Some(j) = jexit {
                    self.patch(j, end);
                }
                let ctx = self.loops.pop().unwrap();
                self.finish_loop(ctx, end, Some(cont_at));
            }
            StmtKind::Return(value) => {
                let r = match value {
                    Some(e) => self.expr(e)?,
                    None => {
                        let r = self.temp(s.span)?;
                        self.emit(Op::LoadUndefined { dst: r });
                        r
                    }
                };
                self.emit(Op::Return { src: r });
            }
            StmtKind::Break => {
                let j = self.emit(Op::Jump { target: 0 });
                match self.loops.last_mut() {
                    Some(ctx) => ctx.break_patches.push(j),
                    None => return Err(CompileError::new("`break` outside a loop", s.span)),
                }
            }
            StmtKind::Continue => {
                let j = self.emit(Op::Jump { target: 0 });
                match self.loops.last_mut() {
                    Some(ctx) => match ctx.continue_target {
                        Some(t) => {
                            self.patch(j, t);
                        }
                        None => ctx.continue_patches.push(j),
                    },
                    None => return Err(CompileError::new("`continue` outside a loop", s.span)),
                }
            }
        }
        self.reset_temps(mark);
        Ok(())
    }

    fn finish_loop(&mut self, ctx: LoopCtx, break_target: u32, continue_target: Option<u32>) {
        for j in ctx.break_patches {
            self.patch(j, break_target);
        }
        if let Some(t) = continue_target {
            for j in ctx.continue_patches {
                self.patch(j, t);
            }
        }
    }

    fn store_var(&mut self, name: &str, value: Reg, span: Span) -> Result<(), CompileError> {
        if let Some(&local) = self.locals.get(name) {
            if local != value {
                self.emit(Op::Mov { dst: local, src: value });
            }
            return Ok(());
        }
        if self.is_main || !self.locals.contains_key(name) {
            let n = self.name(name);
            self.emit(Op::PutGlobal { name: n, src: value });
            return Ok(());
        }
        Err(CompileError::new(format!("cannot assign `{name}`"), span))
    }

    // ---- expressions ---------------------------------------------------

    fn expr(&mut self, e: &Expr) -> Result<Reg, CompileError> {
        match &e.kind {
            ExprKind::Number(n) => {
                let dst = self.temp(e.span)?;
                self.emit_number(dst, *n, e.span)?;
                Ok(dst)
            }
            ExprKind::Str(s) => {
                let dst = self.temp(e.span)?;
                let cid = self.constant(Const::Str(s.clone()), e.span)?;
                self.emit(Op::LoadConst { dst, cid });
                Ok(dst)
            }
            ExprKind::Bool(b) => {
                let dst = self.temp(e.span)?;
                self.emit(Op::LoadBool { dst, value: *b });
                Ok(dst)
            }
            ExprKind::Null => {
                let dst = self.temp(e.span)?;
                self.emit(Op::LoadNull { dst });
                Ok(dst)
            }
            ExprKind::Undefined => {
                let dst = self.temp(e.span)?;
                self.emit(Op::LoadUndefined { dst });
                Ok(dst)
            }
            ExprKind::Ident(name) => {
                if let Some(&r) = self.locals.get(name) {
                    return Ok(r);
                }
                let dst = self.temp(e.span)?;
                let n = self.name(name);
                let site = self.site();
                self.emit(Op::GetGlobal { dst, name: n, site });
                Ok(dst)
            }
            ExprKind::Array(elems) => {
                let dst = self.temp(e.span)?;
                let mark = self.temp_mark();
                let len = self.temp(e.span)?;
                self.emit(Op::LoadInt { dst: len, value: elems.len() as i32 });
                self.emit(Op::NewArray { dst, len });
                for (i, el) in elems.iter().enumerate() {
                    let m2 = self.temp_mark();
                    let idx = self.temp(e.span)?;
                    self.emit(Op::LoadInt { dst: idx, value: i as i32 });
                    let v = self.expr(el)?;
                    let site = self.site();
                    self.emit(Op::PutIndex { arr: dst, idx, val: v, site });
                    self.reset_temps(m2);
                }
                self.reset_temps(mark);
                Ok(dst)
            }
            ExprKind::Object(fields) => {
                let dst = self.temp(e.span)?;
                self.emit(Op::NewObject { dst });
                for (k, v) in fields {
                    let mark = self.temp_mark();
                    let val = self.expr(v)?;
                    let name = self.name(k);
                    let site = self.site();
                    self.emit(Op::PutProp { obj: dst, name, val, site });
                    self.reset_temps(mark);
                }
                Ok(dst)
            }
            ExprKind::NewArray(len) => {
                let dst = self.temp(e.span)?;
                let mark = self.temp_mark();
                let l = self.expr(len)?;
                self.emit(Op::NewArray { dst, len: l });
                self.reset_temps(mark);
                Ok(dst)
            }
            ExprKind::Unary(op, a) => {
                let dst = self.temp(e.span)?;
                let mark = self.temp_mark();
                let r = self.expr(a)?;
                let uop = match op {
                    UnOp::Neg => UnaryOp::Neg,
                    UnOp::Plus => UnaryOp::ToNumber,
                    UnOp::Not => UnaryOp::Not,
                    UnOp::BitNot => UnaryOp::BitNot,
                    UnOp::Typeof => UnaryOp::Typeof,
                };
                let site = self.site();
                self.emit(Op::Unary { op: uop, dst, a: r, site });
                self.reset_temps(mark);
                Ok(dst)
            }
            ExprKind::Binary(op, a, b) => {
                let dst = self.temp(e.span)?;
                let mark = self.temp_mark();
                let ra = if expr_has_effects(b) {
                    // Protect the left operand from mutation by the right.
                    let t = self.temp(e.span)?;
                    self.expr_into(a, t)?;
                    t
                } else {
                    self.expr(a)?
                };
                let rb = self.expr(b)?;
                let site = self.site();
                self.emit(Op::Binary { op: lower_binop(*op), dst, a: ra, b: rb, site });
                self.reset_temps(mark);
                Ok(dst)
            }
            ExprKind::Logical(op, a, b) => {
                let dst = self.temp(e.span)?;
                self.expr_into(a, dst)?;
                let j = match op {
                    LogOp::And => self.emit(Op::JumpIfFalse { cond: dst, target: 0 }),
                    LogOp::Or => self.emit(Op::JumpIfTrue { cond: dst, target: 0 }),
                };
                self.expr_into(b, dst)?;
                let end = self.here();
                self.patch(j, end);
                Ok(dst)
            }
            ExprKind::Ternary(c, a, b) => {
                let dst = self.temp(e.span)?;
                let mark = self.temp_mark();
                let rc = self.expr(c)?;
                let jf = self.emit(Op::JumpIfFalse { cond: rc, target: 0 });
                self.reset_temps(mark);
                self.expr_into(a, dst)?;
                let jend = self.emit(Op::Jump { target: 0 });
                let else_at = self.here();
                self.patch(jf, else_at);
                self.expr_into(b, dst)?;
                let end = self.here();
                self.patch(jend, end);
                Ok(dst)
            }
            ExprKind::Assign(target, op, value) => self.assign(target, *op, value, e.span),
            ExprKind::IncrDecr { target, is_incr, prefix } => {
                self.incr_decr(target, *is_incr, *prefix, e.span)
            }
            ExprKind::Call(name, args) => {
                // `print` is a free-function builtin.
                if name == "print" && !self.function_ids.contains_key(name) {
                    let dst = self.temp(e.span)?;
                    let mark = self.temp_mark();
                    let argv = self.compile_args(args, e.span)?;
                    let site = self.site();
                    self.emit(Op::CallIntrinsic {
                        dst,
                        intr: Intrinsic::Print,
                        argv,
                        argc: args.len() as u8,
                        site,
                    });
                    self.reset_temps(mark);
                    return Ok(dst);
                }
                let dst = self.temp(e.span)?;
                let mark = self.temp_mark();
                let func = *self.function_ids.get(name).ok_or_else(|| {
                    CompileError::new(format!("call of unknown function `{name}`"), e.span)
                })?;
                let argv = self.compile_args(args, e.span)?;
                let site = self.site();
                self.emit(Op::Call { dst, func, argv, argc: args.len() as u8, site });
                self.reset_temps(mark);
                Ok(dst)
            }
            ExprKind::MethodCall(recv, name, args) => self.method_call(recv, name, args, e.span),
            ExprKind::Member(obj, name) => {
                let dst = self.temp(e.span)?;
                let mark = self.temp_mark();
                let o = self.expr(obj)?;
                let n = self.name(name);
                let site = self.site();
                self.emit(Op::GetProp { dst, obj: o, name: n, site });
                self.reset_temps(mark);
                Ok(dst)
            }
            ExprKind::Index(arr, idx) => {
                let dst = self.temp(e.span)?;
                let mark = self.temp_mark();
                let a = self.expr(arr)?;
                let i = self.expr(idx)?;
                let site = self.site();
                self.emit(Op::GetIndex { dst, arr: a, idx: i, site });
                self.reset_temps(mark);
                Ok(dst)
            }
        }
    }

    /// Compiles `e` and ensures its value ends in `dst`.
    fn expr_into(&mut self, e: &Expr, dst: Reg) -> Result<(), CompileError> {
        // Literals can be materialized straight into the destination.
        match &e.kind {
            ExprKind::Number(n) => return self.emit_number(dst, *n, e.span),
            ExprKind::Bool(b) => {
                self.emit(Op::LoadBool { dst, value: *b });
                return Ok(());
            }
            ExprKind::Null => {
                self.emit(Op::LoadNull { dst });
                return Ok(());
            }
            ExprKind::Undefined => {
                self.emit(Op::LoadUndefined { dst });
                return Ok(());
            }
            ExprKind::Str(s) => {
                let cid = self.constant(Const::Str(s.clone()), e.span)?;
                self.emit(Op::LoadConst { dst, cid });
                return Ok(());
            }
            _ => {}
        }
        let mark = self.temp_mark();
        let r = self.expr(e)?;
        if r != dst {
            self.emit(Op::Mov { dst, src: r });
        }
        self.reset_temps(mark);
        Ok(())
    }

    fn emit_number(&mut self, dst: Reg, n: f64, span: Span) -> Result<(), CompileError> {
        // Integral values in int32 range load as int immediates, matching
        // JavaScript engines' int32 fast path.
        if n.fract() == 0.0
            && n >= i32::MIN as f64
            && n <= i32::MAX as f64
            && !(n == 0.0 && n.is_sign_negative())
        {
            self.emit(Op::LoadInt { dst, value: n as i32 });
        } else {
            let cid = self.constant(Const::Num(n), span)?;
            self.emit(Op::LoadConst { dst, cid });
        }
        Ok(())
    }

    fn compile_args(&mut self, args: &[Expr], span: Span) -> Result<Reg, CompileError> {
        let argv = self.next_temp;
        for _ in 0..args.len() {
            self.temp(span)?;
        }
        for (i, a) in args.iter().enumerate() {
            self.expr_into(a, Reg(argv + i as u16))?;
            // expr_into resets temps back to after the argv block.
            self.next_temp = argv + args.len() as u16;
        }
        Ok(Reg(argv))
    }

    fn method_call(
        &mut self,
        recv: &Expr,
        name: &str,
        args: &[Expr],
        span: Span,
    ) -> Result<Reg, CompileError> {
        // Namespace intrinsics: Math.*, String.*.
        if let ExprKind::Ident(ns) = &recv.kind {
            if let Some(intr) = Intrinsic::from_namespace(ns, name) {
                let dst = self.temp(span)?;
                let mark = self.temp_mark();
                let argv = self.compile_args(args, span)?;
                let site = self.site();
                self.emit(Op::CallIntrinsic { dst, intr, argv, argc: args.len() as u8, site });
                self.reset_temps(mark);
                return Ok(dst);
            }
            if ns == "Math" || ns == "String" {
                return Err(CompileError::new(format!("unknown built-in `{ns}.{name}`"), span));
            }
        }
        // Receiver intrinsics: the receiver becomes argument 0.
        let intr = Intrinsic::from_method(name)
            .ok_or_else(|| CompileError::new(format!("unknown method `.{name}()`"), span))?;
        let dst = self.temp(span)?;
        let mark = self.temp_mark();
        let argv = self.next_temp;
        for _ in 0..=args.len() {
            self.temp(span)?;
        }
        self.expr_into(recv, Reg(argv))?;
        self.next_temp = argv + 1 + args.len() as u16;
        for (i, a) in args.iter().enumerate() {
            self.expr_into(a, Reg(argv + 1 + i as u16))?;
            self.next_temp = argv + 1 + args.len() as u16;
        }
        let site = self.site();
        self.emit(Op::CallIntrinsic {
            dst,
            intr,
            argv: Reg(argv),
            argc: 1 + args.len() as u8,
            site,
        });
        self.reset_temps(mark);
        Ok(dst)
    }

    fn assign(
        &mut self,
        target: &AssignTarget,
        op: Option<BinOp>,
        value: &Expr,
        span: Span,
    ) -> Result<Reg, CompileError> {
        match target {
            AssignTarget::Ident(name) => match op {
                None => {
                    let v = self.expr(value)?;
                    self.store_var(name, v, span)?;
                    Ok(v)
                }
                Some(op) => {
                    let dst = self.temp(span)?;
                    let mark = self.temp_mark();
                    let cur = self.load_var(name, span)?;
                    let v = self.expr(value)?;
                    let site = self.site();
                    self.emit(Op::Binary { op: lower_binop(op), dst, a: cur, b: v, site });
                    self.reset_temps(mark);
                    self.store_var(name, dst, span)?;
                    Ok(dst)
                }
            },
            AssignTarget::Member(obj, name) => {
                let o = self.expr(obj)?;
                let n = self.name(name);
                let result = match op {
                    None => self.expr(value)?,
                    Some(op) => {
                        let dst = self.temp(span)?;
                        let mark = self.temp_mark();
                        let cur = self.temp(span)?;
                        let site = self.site();
                        self.emit(Op::GetProp { dst: cur, obj: o, name: n, site });
                        let v = self.expr(value)?;
                        let site = self.site();
                        self.emit(Op::Binary { op: lower_binop(op), dst, a: cur, b: v, site });
                        self.reset_temps(mark);
                        dst
                    }
                };
                let site = self.site();
                self.emit(Op::PutProp { obj: o, name: n, val: result, site });
                Ok(result)
            }
            AssignTarget::Index(arr, idx) => {
                let a = self.expr(arr)?;
                let i = self.expr(idx)?;
                let result = match op {
                    None => self.expr(value)?,
                    Some(op) => {
                        let dst = self.temp(span)?;
                        let mark = self.temp_mark();
                        let cur = self.temp(span)?;
                        let site = self.site();
                        self.emit(Op::GetIndex { dst: cur, arr: a, idx: i, site });
                        let v = self.expr(value)?;
                        let site = self.site();
                        self.emit(Op::Binary { op: lower_binop(op), dst, a: cur, b: v, site });
                        self.reset_temps(mark);
                        dst
                    }
                };
                let site = self.site();
                self.emit(Op::PutIndex { arr: a, idx: i, val: result, site });
                Ok(result)
            }
        }
    }

    fn load_var(&mut self, name: &str, _span: Span) -> Result<Reg, CompileError> {
        if let Some(&r) = self.locals.get(name) {
            return Ok(r);
        }
        let dst = self.temp(_span)?;
        let n = self.name(name);
        let site = self.site();
        self.emit(Op::GetGlobal { dst, name: n, site });
        Ok(dst)
    }

    fn incr_decr(
        &mut self,
        target: &AssignTarget,
        is_incr: bool,
        prefix: bool,
        span: Span,
    ) -> Result<Reg, CompileError> {
        let op = if is_incr { BinOp::Add } else { BinOp::Sub };
        // Compile as `old = target; new = old op 1; target = new`,
        // yielding `new` for prefix and `old` for postfix.
        let old = self.temp(span)?;
        let new = self.temp(span)?;
        let mark = self.temp_mark();
        let one = self.temp(span)?;
        self.emit(Op::LoadInt { dst: one, value: 1 });
        match target {
            AssignTarget::Ident(name) => {
                let cur = self.load_var(name, span)?;
                // `ToNumber(old)`: JS ++/-- coerces; our workloads only use
                // numbers, and Unary(ToNumber) keeps semantics exact.
                let site = self.site();
                self.emit(Op::Unary { op: UnaryOp::ToNumber, dst: old, a: cur, site });
                let site = self.site();
                self.emit(Op::Binary { op: lower_binop(op), dst: new, a: old, b: one, site });
                self.store_var(name, new, span)?;
            }
            AssignTarget::Member(obj, name) => {
                let o = self.expr(obj)?;
                let n = self.name(name);
                let cur = self.temp(span)?;
                let site = self.site();
                self.emit(Op::GetProp { dst: cur, obj: o, name: n, site });
                let site = self.site();
                self.emit(Op::Unary { op: UnaryOp::ToNumber, dst: old, a: cur, site });
                let site = self.site();
                self.emit(Op::Binary { op: lower_binop(op), dst: new, a: old, b: one, site });
                let site = self.site();
                self.emit(Op::PutProp { obj: o, name: n, val: new, site });
            }
            AssignTarget::Index(arr, idx) => {
                let a = self.expr(arr)?;
                let i = self.expr(idx)?;
                let cur = self.temp(span)?;
                let site = self.site();
                self.emit(Op::GetIndex { dst: cur, arr: a, idx: i, site });
                let site = self.site();
                self.emit(Op::Unary { op: UnaryOp::ToNumber, dst: old, a: cur, site });
                let site = self.site();
                self.emit(Op::Binary { op: lower_binop(op), dst: new, a: old, b: one, site });
                let site = self.site();
                self.emit(Op::PutIndex { arr: a, idx: i, val: new, site });
            }
        }
        self.reset_temps(mark);
        Ok(if prefix { new } else { old })
    }
}

fn lower_binop(op: BinOp) -> BinaryOp {
    match op {
        BinOp::Add => BinaryOp::Add,
        BinOp::Sub => BinaryOp::Sub,
        BinOp::Mul => BinaryOp::Mul,
        BinOp::Div => BinaryOp::Div,
        BinOp::Mod => BinaryOp::Mod,
        BinOp::BitAnd => BinaryOp::BitAnd,
        BinOp::BitOr => BinaryOp::BitOr,
        BinOp::BitXor => BinaryOp::BitXor,
        BinOp::Shl => BinaryOp::Shl,
        BinOp::Shr => BinaryOp::Shr,
        BinOp::UShr => BinaryOp::UShr,
        BinOp::Lt => BinaryOp::Lt,
        BinOp::Le => BinaryOp::Le,
        BinOp::Gt => BinaryOp::Gt,
        BinOp::Ge => BinaryOp::Ge,
        BinOp::Eq => BinaryOp::Eq,
        BinOp::NotEq => BinaryOp::NotEq,
        BinOp::StrictEq => BinaryOp::StrictEq,
        BinOp::StrictNotEq => BinaryOp::StrictNotEq,
    }
}

/// Collects `var`-declared names, recursing into nested statements.
fn collect_vars(stmts: &[Stmt], out: &mut Vec<String>) {
    for s in stmts {
        match &s.kind {
            StmtKind::VarDecl(decls) => {
                for (n, _) in decls {
                    out.push(n.clone());
                }
            }
            StmtKind::Block(inner) => collect_vars(inner, out),
            StmtKind::If(_, t, e) => {
                collect_vars(std::slice::from_ref(t), out);
                if let Some(e) = e {
                    collect_vars(std::slice::from_ref(e), out);
                }
            }
            StmtKind::While(_, b) | StmtKind::DoWhile(b, _) => {
                collect_vars(std::slice::from_ref(b), out)
            }
            StmtKind::For { init, body, .. } => {
                if let Some(init) = init {
                    collect_vars(std::slice::from_ref(init), out);
                }
                collect_vars(std::slice::from_ref(body), out);
            }
            _ => {}
        }
    }
}

/// True when evaluating `e` may write to a variable, property or array, or
/// call a function (which could do any of those).
fn expr_has_effects(e: &Expr) -> bool {
    match &e.kind {
        ExprKind::Assign(..) | ExprKind::IncrDecr { .. } | ExprKind::Call(..) => true,
        ExprKind::MethodCall(recv, _, args) => {
            // Intrinsics like push/pop mutate; conservatively treat all
            // method calls as effectful.
            let _ = recv;
            let _ = args;
            true
        }
        ExprKind::Number(_)
        | ExprKind::Str(_)
        | ExprKind::Bool(_)
        | ExprKind::Null
        | ExprKind::Undefined
        | ExprKind::Ident(_) => false,
        ExprKind::Array(es) => es.iter().any(expr_has_effects),
        ExprKind::Object(fs) => fs.iter().any(|(_, v)| expr_has_effects(v)),
        ExprKind::NewArray(n) => expr_has_effects(n),
        ExprKind::Unary(_, a) => expr_has_effects(a),
        ExprKind::Binary(_, a, b) | ExprKind::Logical(_, a, b) => {
            expr_has_effects(a) || expr_has_effects(b)
        }
        ExprKind::Ternary(c, a, b) => {
            expr_has_effects(c) || expr_has_effects(a) || expr_has_effects(b)
        }
        ExprKind::Member(o, _) => expr_has_effects(o),
        ExprKind::Index(a, i) => expr_has_effects(a) || expr_has_effects(i),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compiles_simple_function() {
        let p = compile_program("function add(a, b) { return a + b; }").unwrap();
        let f = p.function_named("add").unwrap();
        assert_eq!(f.param_count, 2);
        assert!(f.code.iter().any(|op| matches!(op, Op::Binary { op: BinaryOp::Add, .. })));
        assert!(matches!(f.code.last(), Some(Op::Return { .. })));
    }

    #[test]
    fn hoists_vars_to_locals() {
        let p = compile_program("function f() { if (true) { var x = 1; } return x; }").unwrap();
        let f = p.function_named("f").unwrap();
        assert_eq!(f.local_count, 1);
    }

    #[test]
    fn main_vars_become_globals() {
        let p = compile_program("var g = 41; g = g + 1;").unwrap();
        let main = &p.functions[0];
        assert!(main.code.iter().any(|op| matches!(op, Op::PutGlobal { .. })));
        assert!(main.code.iter().any(|op| matches!(op, Op::GetGlobal { .. })));
    }

    #[test]
    fn loop_headers_are_recorded() {
        let p = compile_program(
            "function f(n) { var s = 0; for (var i = 0; i < n; i++) { s += i; } return s; }",
        )
        .unwrap();
        let f = p.function_named("f").unwrap();
        assert_eq!(f.loop_headers.len(), 1);
        // All branches must land inside the function.
        for op in &f.code {
            if let Some(t) = op.jump_target() {
                assert!((t as usize) < f.code.len(), "target {t} out of range");
            }
        }
    }

    #[test]
    fn break_continue_patching() {
        let p = compile_program(
            "function f(n) {
                var s = 0;
                for (var i = 0; i < n; i++) {
                    if (i == 3) continue;
                    if (i == 7) break;
                    s += i;
                }
                return s;
            }",
        )
        .unwrap();
        let f = p.function_named("f").unwrap();
        for op in &f.code {
            if let Some(t) = op.jump_target() {
                assert_ne!(t, 0, "unpatched jump");
            }
        }
    }

    #[test]
    fn intrinsic_calls_resolve() {
        let p = compile_program("var x = Math.sqrt(2); var a = []; a.push(x);").unwrap();
        let main = &p.functions[0];
        let intrs: Vec<_> = main
            .code
            .iter()
            .filter_map(|op| match op {
                Op::CallIntrinsic { intr, .. } => Some(*intr),
                _ => None,
            })
            .collect();
        assert!(intrs.contains(&Intrinsic::MathSqrt));
        assert!(intrs.contains(&Intrinsic::ArrayPush));
    }

    #[test]
    fn unknown_function_is_error() {
        assert!(compile_program("nosuch(1);").is_err());
    }

    #[test]
    fn unknown_method_is_error() {
        assert!(compile_program("var a = []; a.frobnicate();").is_err());
    }

    #[test]
    fn int_literals_use_loadint() {
        let p = compile_program("var x = 3; var y = 2.5;").unwrap();
        let main = &p.functions[0];
        assert!(main.code.iter().any(|op| matches!(op, Op::LoadInt { value: 3, .. })));
        assert!(main.code.iter().any(|op| matches!(op, Op::LoadConst { .. })));
    }

    #[test]
    fn constants_are_deduplicated() {
        let p = compile_program("var x = 2.5 + 2.5 + 2.5;").unwrap();
        assert_eq!(p.functions[0].constants.len(), 1);
    }

    #[test]
    fn call_args_are_contiguous() {
        let p = compile_program("function f(a, b, c) { return a; } f(1, 2, 3);").unwrap();
        let main = &p.functions[0];
        let call = main
            .code
            .iter()
            .find_map(|op| match op {
                Op::Call { argv, argc, .. } => Some((*argv, *argc)),
                _ => None,
            })
            .unwrap();
        assert_eq!(call.1, 3);
        // The three LoadInt ops must target argv, argv+1, argv+2.
        let loads: Vec<_> = main
            .code
            .iter()
            .filter_map(|op| match op {
                Op::LoadInt { dst, value } if (1..=3).contains(value) => Some(dst.0),
                _ => None,
            })
            .collect();
        assert!(loads.windows(2).all(|w| w[1] == w[0] + 1));
        assert_eq!(loads[0], call.0 .0);
    }
}
