//! Property tests over the AST→bytecode compiler: generated programs must
//! compile to structurally well-formed code (valid jump targets, in-range
//! registers, dense profiling sites).

use proptest::prelude::*;

use nomap_bytecode::{compile_program, Op};

/// Generates a small statement-soup program from templates.
fn program_strategy() -> impl Strategy<Value = String> {
    let stmt = prop_oneof![
        (0i32..100).prop_map(|n| format!("x = x + {n};")),
        (1i32..20).prop_map(|n| format!("for (var i = 0; i < {n}; i++) {{ x += i; }}")),
        (1i32..10).prop_map(|n| format!("while (x > {n}) {{ x -= {n}; }}")),
        (0i32..50).prop_map(|n| format!("if (x > {n}) {{ x = {n}; }} else {{ x = x | 1; }}")),
        Just("a.push(x);".to_owned()),
        Just("x = a.length;".to_owned()),
        (0i32..8).prop_map(|n| format!("a[{n}] = x; x = a[{n}];")),
        Just("o.f = x; x = o.f;".to_owned()),
        (0i32..6).prop_map(|n| format!("x += helper(x, {n});")),
        Just("do { x--; } while (x > 100);".to_owned()),
        (1i32..5).prop_map(|n| {
            format!("for (var j = 0; j < {n}; j++) {{ if (j == 2) continue; if (x > 900) break; x++; }}")
        }),
    ];
    proptest::collection::vec(stmt, 1..12).prop_map(|stmts| {
        format!(
            "function helper(p, q) {{ return (p & 255) + q; }}
             var x = 10;
             var a = [1, 2, 3];
             var o = {{f: 0}};
             function run() {{
                 {}
                 return x;
             }}",
            stmts.join("\n                 ")
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn generated_programs_compile_well_formed(src in program_strategy()) {
        let p = compile_program(&src).expect("template programs are valid");
        for f in &p.functions {
            let n = f.code.len() as u32;
            prop_assert!(n > 0);
            let ends_in_return = matches!(f.code.last(), Some(Op::Return { .. }));
            prop_assert!(ends_in_return);
            for (i, op) in f.code.iter().enumerate() {
                if let Some(t) = op.jump_target() {
                    prop_assert!(t < n, "{}: jump at {} to {} out of {}", f.name, i, t, n);
                }
                // Registers in range.
                let regs: Vec<u16> = match *op {
                    Op::Binary { dst, a, b, .. } => vec![dst.0, a.0, b.0],
                    Op::Mov { dst, src } => vec![dst.0, src.0],
                    Op::GetIndex { dst, arr, idx, .. } => vec![dst.0, arr.0, idx.0],
                    Op::PutIndex { arr, idx, val, .. } => vec![arr.0, idx.0, val.0],
                    Op::Call { dst, argv, argc, .. } => {
                        vec![dst.0, argv.0 + argc as u16]
                    }
                    Op::Return { src } => vec![src.0],
                    _ => vec![],
                };
                for r in regs {
                    prop_assert!(
                        r <= f.register_count,
                        "{}: register r{} out of {}",
                        f.name,
                        r,
                        f.register_count
                    );
                }
            }
            // Loop headers really are branch targets from below.
            for &h in &f.loop_headers {
                let has_back_edge = f
                    .code
                    .iter()
                    .enumerate()
                    .any(|(i, op)| op.jump_target() == Some(h) && h <= i as u32);
                prop_assert!(has_back_edge, "{}: header {} has no back edge", f.name, h);
            }
        }
    }

    /// Compiling is deterministic.
    #[test]
    fn compilation_is_deterministic(src in program_strategy()) {
        let a = compile_program(&src).unwrap();
        let b = compile_program(&src).unwrap();
        for (fa, fb) in a.functions.iter().zip(&b.functions) {
            prop_assert_eq!(&fa.code, &fb.code);
            prop_assert_eq!(fa.register_count, fb.register_count);
        }
    }
}
