//! Property tests over the AST→bytecode compiler: generated programs must
//! compile to structurally well-formed code (valid jump targets, in-range
//! registers, dense profiling sites). Program generation uses a
//! deterministic splitmix PRNG so each run covers the same corpus.

use nomap_bytecode::{compile_program, Op};

struct Rng(u64);

impl Rng {
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n
    }
}

/// One random statement from the template pool.
fn gen_stmt(rng: &mut Rng) -> String {
    match rng.below(11) {
        0 => format!("x = x + {};", rng.below(100)),
        1 => format!("for (var i = 0; i < {}; i++) {{ x += i; }}", 1 + rng.below(19)),
        2 => {
            let n = 1 + rng.below(9);
            format!("while (x > {n}) {{ x -= {n}; }}")
        }
        3 => {
            let n = rng.below(50);
            format!("if (x > {n}) {{ x = {n}; }} else {{ x = x | 1; }}")
        }
        4 => "a.push(x);".to_owned(),
        5 => "x = a.length;".to_owned(),
        6 => {
            let n = rng.below(8);
            format!("a[{n}] = x; x = a[{n}];")
        }
        7 => "o.f = x; x = o.f;".to_owned(),
        8 => format!("x += helper(x, {});", rng.below(6)),
        9 => "do { x--; } while (x > 100);".to_owned(),
        _ => format!(
            "for (var j = 0; j < {}; j++) {{ if (j == 2) continue; if (x > 900) break; x++; }}",
            1 + rng.below(4)
        ),
    }
}

/// Generates a small statement-soup program from templates.
fn gen_program(rng: &mut Rng) -> String {
    let n = 1 + rng.below(11) as usize;
    let stmts: Vec<String> = (0..n).map(|_| gen_stmt(rng)).collect();
    format!(
        "function helper(p, q) {{ return (p & 255) + q; }}
         var x = 10;
         var a = [1, 2, 3];
         var o = {{f: 0}};
         function run() {{
             {}
             return x;
         }}",
        stmts.join("\n             ")
    )
}

#[test]
fn generated_programs_compile_well_formed() {
    let mut rng = Rng(0xB17E_C0DE);
    for case in 0..64 {
        let src = gen_program(&mut rng);
        let p = compile_program(&src).expect("template programs are valid");
        for f in &p.functions {
            let n = f.code.len() as u32;
            assert!(n > 0, "case {case}");
            let ends_in_return = matches!(f.code.last(), Some(Op::Return { .. }));
            assert!(ends_in_return, "case {case}");
            for (i, op) in f.code.iter().enumerate() {
                if let Some(t) = op.jump_target() {
                    assert!(t < n, "{}: jump at {} to {} out of {}", f.name, i, t, n);
                }
                // Registers in range.
                let regs: Vec<u16> = match *op {
                    Op::Binary { dst, a, b, .. } => vec![dst.0, a.0, b.0],
                    Op::Mov { dst, src } => vec![dst.0, src.0],
                    Op::GetIndex { dst, arr, idx, .. } => vec![dst.0, arr.0, idx.0],
                    Op::PutIndex { arr, idx, val, .. } => vec![arr.0, idx.0, val.0],
                    Op::Call { dst, argv, argc, .. } => {
                        vec![dst.0, argv.0 + argc as u16]
                    }
                    Op::Return { src } => vec![src.0],
                    _ => vec![],
                };
                for r in regs {
                    assert!(
                        r <= f.register_count,
                        "{}: register r{} out of {}",
                        f.name,
                        r,
                        f.register_count
                    );
                }
            }
            // Loop headers really are branch targets from below.
            for &h in &f.loop_headers {
                let has_back_edge = f
                    .code
                    .iter()
                    .enumerate()
                    .any(|(i, op)| op.jump_target() == Some(h) && h <= i as u32);
                assert!(has_back_edge, "{}: header {} has no back edge", f.name, h);
            }
        }
    }
}

/// Compiling is deterministic.
#[test]
fn compilation_is_deterministic() {
    let mut rng = Rng(0xD3_7E12);
    for _ in 0..16 {
        let src = gen_program(&mut rng);
        let a = compile_program(&src).unwrap();
        let b = compile_program(&src).unwrap();
        for (fa, fb) in a.functions.iter().zip(&b.functions) {
            assert_eq!(fa.code, fb.code);
            assert_eq!(fa.register_count, fb.register_count);
        }
    }
}
