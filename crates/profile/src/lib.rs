//! Cycle-attribution profiling and the perf-regression observatory.
//!
//! Three layers, all offline/passive (the VM feeds them, nothing here
//! executes guest code):
//!
//! - [`ProfileData`] — the raw per-run profile the VM collects when
//!   profiling is enabled: the exact [`nomap_machine::CycleLedger`]
//!   (every simulated cycle charged to a function × tier × region-kind
//!   scope), per-function check counts, deoptimization sites, abort
//!   reasons and write-footprint percentile sketches. Mergeable like
//!   `ExecStats`, so suite aggregation works shard-by-shard.
//! - [`HotSpotReport`] — renders a `ProfileData` as the `nomap profile`
//!   tables: hot regions ranked by attributed cycles, per-function abort
//!   and check-kind breakdowns, deopt sites, and check densities; as text
//!   or JSON.
//! - [`BenchRows`] / [`bench_diff`] — the canonical `BENCH_<artifact>.json`
//!   cycle-count format every experiment binary emits, plus the regression
//!   comparator behind `nomap bench-diff` and the CI perf gate.

mod bench;
mod data;
mod json_in;
mod report;

pub use bench::{bench_diff, BenchDiff, BenchRow, BenchRows, DiffEntry};
pub use data::{DeoptSite, ProfileData};
pub use json_in::{parse_json, Json};
pub use report::HotSpotReport;
