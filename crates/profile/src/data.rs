//! The raw profile a VM run produces: the cycle ledger plus the per-site
//! tables the hot-spot report ranks.

use std::collections::BTreeMap;

use nomap_machine::{AbortReason, CheckKind, CycleLedger, RegionKey, Tier};
use nomap_trace::Histogram;

/// One deoptimization site: a (function, SMP) pair with the bytecode
/// offset the Baseline frame resumed at and the check kind that fired.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeoptSite {
    /// Bytecode offset of the Baseline re-entry.
    pub bc: u32,
    /// Check kind that fired (the kind of the *first* hit is kept; sites
    /// are keyed by SMP, whose kind never changes across hits).
    pub kind: CheckKind,
    /// Times this SMP was taken.
    pub count: u64,
}

/// Everything the VM-side profiler collects for one measurement window.
///
/// All fields merge commutatively, mirroring `ExecStats::merge`, so
/// per-shard profiles can be folded into one suite profile.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ProfileData {
    /// Exact cycle attribution (total == `ExecStats::total_cycles()`).
    pub ledger: CycleLedger,
    /// Dynamic instructions per (function, tier) — the denominator for
    /// check densities.
    pub insts: BTreeMap<(u32, Tier), u64>,
    /// Executed checks per (function, check kind).
    pub checks: BTreeMap<(u32, CheckKind), u64>,
    /// Deoptimization sites keyed by (function, SMP id).
    pub deopt_sites: BTreeMap<(u32, u32), DeoptSite>,
    /// Transaction aborts per (function, reason name); the function is the
    /// transaction owner (`RegionKey::OTHER_FUNC` when unowned).
    pub aborts: BTreeMap<(u32, String), u64>,
    /// Write-footprint sketch (bytes at abort) per aborting function.
    pub abort_footprint: BTreeMap<u32, Histogram>,
    /// Committed transactions per owner function.
    pub tx_commits: BTreeMap<u32, u64>,
    /// Write-footprint sketch (bytes at commit) per owner function.
    pub commit_footprint: BTreeMap<u32, Histogram>,
    /// Read-footprint sketch (bytes at commit) per owner function
    /// (nonzero only when the HTM bounds reads, i.e. RTM).
    pub commit_read_footprint: BTreeMap<u32, Histogram>,
    /// Capacity aborts per (function, victim-set speculative ways) — the
    /// set-pressure table the abort-forensics report joins against the
    /// static footprint estimator.
    pub abort_set_pressure: BTreeMap<(u32, u32), u64>,
    /// Read-footprint sketch (bytes at abort) per aborting function.
    pub abort_read_footprint: BTreeMap<u32, Histogram>,
}

/// Stable reason name for abort bookkeeping (check aborts keep their kind:
/// `check:bounds`, ...). Delegates to the canonical
/// `nomap_machine::abort_reason_key` table — the same one the trace
/// metrics registry and `ExecStats` slot order derive from.
pub fn abort_key(reason: AbortReason) -> String {
    nomap_machine::abort_reason_key(reason)
}

impl ProfileData {
    /// Empty profile.
    pub fn new() -> Self {
        Self::default()
    }

    /// Charges `cycles` to an attribution scope (delegates to the ledger).
    #[inline]
    pub fn charge(&mut self, key: RegionKey, cycles: u64) {
        self.ledger.charge(key, cycles);
    }

    /// Credits `n` dynamic instructions to (func, tier).
    #[inline]
    pub fn record_insts(&mut self, func: u32, tier: Tier, n: u64) {
        if n > 0 {
            *self.insts.entry((func, tier)).or_insert(0) += n;
        }
    }

    /// Records one executed check of `kind` in `func`.
    #[inline]
    pub fn record_check(&mut self, func: u32, kind: CheckKind) {
        *self.checks.entry((func, kind)).or_insert(0) += 1;
    }

    /// Records one taken deoptimization at (func, smp).
    pub fn record_deopt(&mut self, func: u32, smp: u32, bc: u32, kind: CheckKind) {
        self.deopt_sites.entry((func, smp)).or_insert(DeoptSite { bc, kind, count: 0 }).count += 1;
    }

    /// Records one transaction abort owned by `func` with the footprint at
    /// the abort point.
    pub fn record_abort(&mut self, func: u32, reason: AbortReason, footprint_bytes: u64) {
        *self.aborts.entry((func, abort_key(reason))).or_insert(0) += 1;
        self.abort_footprint.entry(func).or_default().record(footprint_bytes);
    }

    /// Records one committed transaction owned by `func` with its write
    /// and read footprints, for the static-vs-dynamic calibration join.
    pub fn record_commit(&mut self, func: u32, write_bytes: u64, read_bytes: u64) {
        *self.tx_commits.entry(func).or_insert(0) += 1;
        self.commit_footprint.entry(func).or_default().record(write_bytes);
        self.commit_read_footprint.entry(func).or_default().record(read_bytes);
    }

    /// Records the blame forensics of one abort owned by `func`:
    /// `set_ways` is the victim set's speculative occupancy (capacity
    /// aborts only), `read_bytes` the read footprint at the fault.
    pub fn record_blame(&mut self, func: u32, set_ways: Option<u32>, read_bytes: u64) {
        if let Some(ways) = set_ways {
            *self.abort_set_pressure.entry((func, ways)).or_insert(0) += 1;
        }
        self.abort_read_footprint.entry(func).or_default().record(read_bytes);
    }

    /// Clears the profile (measurement-window reset).
    pub fn reset(&mut self) {
        *self = ProfileData::default();
    }

    /// Total instructions credited to `func` across all tiers.
    pub fn func_insts(&self, func: u32) -> u64 {
        self.insts.iter().filter(|((f, _), _)| *f == func).map(|(_, n)| n).sum()
    }

    /// Folds another profile into this one. All counter sums saturate so a
    /// long fleet run folding many shards cannot overflow-panic in debug
    /// while wrapping in release.
    pub fn merge(&mut self, other: &ProfileData) {
        self.ledger.merge(&other.ledger);
        for (k, v) in &other.insts {
            let c = self.insts.entry(*k).or_insert(0);
            *c = c.saturating_add(*v);
        }
        for (k, v) in &other.checks {
            let c = self.checks.entry(*k).or_insert(0);
            *c = c.saturating_add(*v);
        }
        for (k, site) in &other.deopt_sites {
            let s = self.deopt_sites.entry(*k).or_insert(DeoptSite {
                bc: site.bc,
                kind: site.kind,
                count: 0,
            });
            s.count = s.count.saturating_add(site.count);
        }
        for (k, v) in &other.aborts {
            let c = self.aborts.entry(k.clone()).or_insert(0);
            *c = c.saturating_add(*v);
        }
        for (f, h) in &other.abort_footprint {
            self.abort_footprint.entry(*f).or_default().merge(h);
        }
        for (f, v) in &other.tx_commits {
            let c = self.tx_commits.entry(*f).or_insert(0);
            *c = c.saturating_add(*v);
        }
        for (f, h) in &other.commit_footprint {
            self.commit_footprint.entry(*f).or_default().merge(h);
        }
        for (f, h) in &other.commit_read_footprint {
            self.commit_read_footprint.entry(*f).or_default().merge(h);
        }
        for (k, v) in &other.abort_set_pressure {
            let c = self.abort_set_pressure.entry(*k).or_insert(0);
            *c = c.saturating_add(*v);
        }
        for (f, h) in &other.abort_read_footprint {
            self.abort_read_footprint.entry(*f).or_default().merge(h);
        }
    }
}

#[cfg(test)]
mod tests {
    use nomap_machine::RegionKind;

    use super::*;

    fn sample() -> ProfileData {
        let mut p = ProfileData::new();
        p.charge(RegionKey { func: 0, tier: Tier::Ftl, kind: RegionKind::TxnBody }, 100);
        p.record_insts(0, Tier::Ftl, 80);
        p.record_check(0, CheckKind::Bounds);
        p.record_deopt(0, 3, 12, CheckKind::Type);
        p.record_abort(0, AbortReason::Capacity, 4096);
        p
    }

    #[test]
    fn merge_is_commutative_across_all_tables() {
        let a = sample();
        let mut b = sample();
        b.charge(RegionKey { func: 1, tier: Tier::Baseline, kind: RegionKind::Main }, 7);
        b.record_abort(0, AbortReason::Check(CheckKind::Bounds), 64);

        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba);
        assert_eq!(ab.ledger.total(), 207);
        assert_eq!(ab.checks[&(0, CheckKind::Bounds)], 2);
        assert_eq!(ab.deopt_sites[&(0, 3)].count, 2);
        assert_eq!(ab.aborts[&(0, "capacity".to_owned())], 2);
        assert_eq!(ab.aborts[&(0, "check:bounds".to_owned())], 1);
        assert_eq!(ab.abort_footprint[&0].count, 3);
        assert_eq!(ab.func_insts(0), 160);
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut p = sample();
        let snapshot = p.clone();
        p.merge(&ProfileData::new());
        assert_eq!(p, snapshot);
        let mut empty = ProfileData::new();
        empty.merge(&snapshot);
        assert_eq!(empty, snapshot);
    }

    #[test]
    fn merge_saturates_at_u64_max_instead_of_panicking() {
        let mut p = ProfileData::new();
        p.insts.insert((0, Tier::Ftl), u64::MAX);
        p.checks.insert((0, CheckKind::Bounds), u64::MAX);
        p.deopt_sites.insert((0, 1), DeoptSite { bc: 0, kind: CheckKind::Type, count: u64::MAX });
        p.aborts.insert((0, "capacity".to_owned()), u64::MAX);
        p.ledger.charge(RegionKey { func: 0, tier: Tier::Ftl, kind: RegionKind::Main }, u64::MAX);
        let other = p.clone();
        p.merge(&other);
        assert_eq!(p.insts[&(0, Tier::Ftl)], u64::MAX);
        assert_eq!(p.checks[&(0, CheckKind::Bounds)], u64::MAX);
        assert_eq!(p.deopt_sites[&(0, 1)].count, u64::MAX);
        assert_eq!(p.aborts[&(0, "capacity".to_owned())], u64::MAX);
        assert_eq!(p.ledger.total(), u64::MAX);
    }

    #[test]
    fn abort_keys_are_stable() {
        assert_eq!(abort_key(AbortReason::Capacity), "capacity");
        assert_eq!(abort_key(AbortReason::StickyOverflow), "sticky-overflow");
        assert_eq!(abort_key(AbortReason::Check(CheckKind::Type)), "check:type");
    }

    /// Drift gate for the canonical abort-reason mapping: the profile key,
    /// the trace-metrics key, the JSONL `reason`/`check` members and the
    /// `ExecStats::tx_aborts` slot must all agree with `nomap_machine`'s
    /// single table, for every reason.
    #[test]
    fn abort_reason_mapping_agrees_across_all_call_sites() {
        let mut reasons = vec![AbortReason::Capacity, AbortReason::StickyOverflow];
        reasons.extend(CheckKind::ALL.into_iter().map(AbortReason::Check));
        for reason in reasons {
            let canonical = nomap_machine::abort_reason_key(reason);
            // 1. This crate's bookkeeping key.
            assert_eq!(abort_key(reason), canonical);
            // 2. The trace metrics registry's aborts_by_reason key.
            let mut m = nomap_trace::Metrics::new();
            m.observe(&nomap_trace::TraceEvent::TxAbort {
                func: Some(0),
                reason,
                footprint_bytes: 0,
                undone_words: 0,
                instructions: 0,
            });
            assert_eq!(
                m.aborts_by_reason.keys().collect::<Vec<_>>(),
                vec![&canonical],
                "trace metrics key drifted for {reason:?}"
            );
            // 3. The JSONL rendering: coarse class plus the check kind.
            assert_eq!(
                nomap_trace::abort_reason_name(reason),
                nomap_machine::abort_reason_class(reason)
            );
            // 4. The ExecStats slot: index and class name line up.
            let mut stats = nomap_machine::ExecStats::new();
            stats.add_abort(reason);
            let idx = nomap_machine::abort_reason_index(reason);
            assert_eq!(stats.tx_aborts[idx], 1);
            assert_eq!(
                nomap_machine::ABORT_CLASSES[idx],
                nomap_machine::abort_reason_class(reason)
            );
            // The composite key's class prefix matches the coarse class.
            assert!(canonical.starts_with(nomap_machine::abort_reason_class(reason)));
        }
    }

    #[test]
    fn commit_and_blame_tables_merge_commutatively() {
        let mut a = ProfileData::new();
        a.record_commit(0, 640, 0);
        a.record_commit(0, 1280, 256);
        a.record_blame(0, Some(9), 0);
        let mut b = ProfileData::new();
        b.record_commit(0, 320, 0);
        b.record_commit(1, 64, 0);
        b.record_blame(0, Some(9), 512);
        b.record_blame(1, None, 0); // check abort: no set pressure

        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba);
        assert_eq!(ab.tx_commits[&0], 3);
        assert_eq!(ab.tx_commits[&1], 1);
        assert_eq!(ab.commit_footprint[&0].count, 3);
        assert_eq!(ab.commit_footprint[&0].max, 1280);
        assert_eq!(ab.commit_read_footprint[&0].max, 256);
        assert_eq!(ab.abort_set_pressure[&(0, 9)], 2);
        assert!(!ab.abort_set_pressure.contains_key(&(1, 0)));
        assert_eq!(ab.abort_read_footprint[&0].max, 512);
        assert_eq!(ab.abort_read_footprint[&1].count, 1);
    }
}
