//! Rendering a [`ProfileData`] as the `nomap profile` hot-spot tables.

use std::collections::BTreeMap;

use nomap_machine::{CheckKind, RegionKey};
use nomap_trace::{check_name, obj, tier_name, JsonValue};

use crate::data::ProfileData;

/// All check kinds, in the order the density table lists them.
const CHECK_KINDS: [CheckKind; 5] = [
    CheckKind::Bounds,
    CheckKind::Overflow,
    CheckKind::Type,
    CheckKind::Property,
    CheckKind::Other,
];

/// A `ProfileData` plus function names, rendered as ranked tables.
///
/// FTL places one transaction scope around each hot loop nest, so the
/// function × tier region granularity is the paper's per-loop granularity
/// for the workloads that matter; the deopt-site table drills down to
/// individual SMPs within a function.
#[derive(Debug, Clone)]
pub struct HotSpotReport {
    data: ProfileData,
    names: BTreeMap<u32, String>,
    /// `ExecStats::total_cycles()` for the same window, for the
    /// conservation line. `None` when no stats were captured.
    stats_total: Option<u64>,
}

impl HotSpotReport {
    /// Wraps a profile with a function-id → name table.
    pub fn new(data: ProfileData, names: BTreeMap<u32, String>) -> Self {
        HotSpotReport { data, names, stats_total: None }
    }

    /// Attaches the `ExecStats` cycle total of the same window so the
    /// report can show (and the caller can assert) cycle conservation.
    pub fn with_stats_total(mut self, total: u64) -> Self {
        self.stats_total = Some(total);
        self
    }

    /// The wrapped profile.
    pub fn data(&self) -> &ProfileData {
        &self.data
    }

    /// Resolved name for a function id.
    fn func_name(&self, func: u32) -> String {
        if func == RegionKey::OTHER_FUNC {
            return "<vm>".to_owned();
        }
        self.names.get(&func).cloned().unwrap_or_else(|| format!("fn#{func}"))
    }

    /// Regions sorted by attributed cycles, descending (ties broken by key
    /// order for determinism).
    fn ranked_regions(&self) -> Vec<(RegionKey, u64)> {
        let mut rows: Vec<(RegionKey, u64)> =
            self.data.ledger.regions().map(|(k, v)| (*k, *v)).collect();
        rows.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        rows
    }

    /// Checks executed in `func` per 100 dynamic instructions of `func`.
    fn check_density(&self, func: u32) -> f64 {
        let insts = self.data.func_insts(func);
        if insts == 0 {
            return 0.0;
        }
        let checks: u64 =
            self.data.checks.iter().filter(|((f, _), _)| *f == func).map(|(_, n)| n).sum();
        checks as f64 * 100.0 / insts as f64
    }

    /// Multi-line text report; `top_n` caps the hot-region table.
    pub fn render_text(&self, top_n: usize) -> String {
        let mut out = String::new();
        let total = self.data.ledger.total();

        out.push_str(&format!("attributed cycles: {total}"));
        match self.stats_total {
            Some(st) if st == total => out.push_str(" (== ExecStats total, conserved)\n"),
            Some(st) => out.push_str(&format!(" (ExecStats total {st} — MISMATCH)\n")),
            None => out.push('\n'),
        }

        let ranked = self.ranked_regions();
        out.push_str(&format!(
            "\nhot regions (top {} of {}):\n",
            top_n.min(ranked.len()),
            ranked.len()
        ));
        out.push_str(&format!(
            "  {:<22} {:<12} {:<18} {:>14} {:>7}\n",
            "function", "tier", "region", "cycles", "share"
        ));
        for (key, cycles) in ranked.iter().take(top_n) {
            let share = if total == 0 { 0.0 } else { *cycles as f64 * 100.0 / total as f64 };
            out.push_str(&format!(
                "  {:<22} {:<12} {:<18} {:>14} {:>6.1}%\n",
                self.func_name(key.func),
                tier_name(key.tier),
                key.kind.name(),
                cycles,
                share
            ));
        }

        if !self.data.aborts.is_empty() {
            out.push_str("\naborts by function:\n");
            let mut by_func: BTreeMap<u32, Vec<(&str, u64)>> = BTreeMap::new();
            for ((func, reason), n) in &self.data.aborts {
                by_func.entry(*func).or_default().push((reason.as_str(), *n));
            }
            for (func, reasons) in by_func {
                let total_aborts: u64 = reasons.iter().map(|(_, n)| n).sum();
                let detail: Vec<String> = reasons.iter().map(|(r, n)| format!("{r}:{n}")).collect();
                out.push_str(&format!(
                    "  {:<22} {:>8}  [{}]\n",
                    self.func_name(func),
                    total_aborts,
                    detail.join(" ")
                ));
                if let Some(h) = self.data.abort_footprint.get(&func) {
                    out.push_str(&format!(
                        "  {:<22} footprint p50={} p90={} max={} bytes\n",
                        "",
                        h.percentile(0.5),
                        h.percentile(0.9),
                        h.max
                    ));
                }
            }
        }

        if !self.data.deopt_sites.is_empty() {
            out.push_str("\ndeopt sites (SMPs taken):\n");
            let mut sites: Vec<_> = self.data.deopt_sites.iter().collect();
            sites.sort_by(|a, b| b.1.count.cmp(&a.1.count).then(a.0.cmp(b.0)));
            out.push_str(&format!(
                "  {:<22} {:>5} {:>5} {:<16} {:>8}\n",
                "function", "smp", "bc", "check", "taken"
            ));
            for ((func, smp), site) in sites {
                out.push_str(&format!(
                    "  {:<22} {:>5} {:>5} {:<16} {:>8}\n",
                    self.func_name(*func),
                    smp,
                    site.bc,
                    check_name(site.kind),
                    site.count
                ));
            }
        }

        if !self.data.checks.is_empty() {
            out.push_str("\ncheck density (per 100 insts):\n");
            out.push_str(&format!(
                "  {:<22} {:>9} {:>9} {:>9} {:>9} {:>9} {:>9}\n",
                "function", "bounds", "overflow", "type", "property", "other", "density"
            ));
            let funcs: Vec<u32> = {
                let mut f: Vec<u32> = self.data.checks.keys().map(|(f, _)| *f).collect();
                f.dedup();
                f
            };
            for func in funcs {
                let count =
                    |kind: CheckKind| self.data.checks.get(&(func, kind)).copied().unwrap_or(0);
                out.push_str(&format!(
                    "  {:<22} {:>9} {:>9} {:>9} {:>9} {:>9} {:>9.2}\n",
                    self.func_name(func),
                    count(CheckKind::Bounds),
                    count(CheckKind::Overflow),
                    count(CheckKind::Type),
                    count(CheckKind::Property),
                    count(CheckKind::Other),
                    self.check_density(func)
                ));
            }
        }

        out
    }

    /// Full JSON rendering (the `nomap profile --json` payload).
    pub fn to_json(&self) -> JsonValue {
        let total = self.data.ledger.total();
        let regions = self
            .ranked_regions()
            .into_iter()
            .map(|(key, cycles)| {
                obj(vec![
                    ("func", key.func.into()),
                    ("function", self.func_name(key.func).into()),
                    ("tier", tier_name(key.tier).into()),
                    ("region", key.kind.name().into()),
                    ("cycles", cycles.into()),
                ])
            })
            .collect();

        let aborts = {
            let mut by_func: BTreeMap<u32, Vec<(String, u64)>> = BTreeMap::new();
            for ((func, reason), n) in &self.data.aborts {
                by_func.entry(*func).or_default().push((reason.clone(), *n));
            }
            by_func
                .into_iter()
                .map(|(func, reasons)| {
                    let reason_obj =
                        reasons.into_iter().map(|(r, n)| (r, JsonValue::from(n))).collect();
                    let mut members = vec![
                        ("function", JsonValue::from(self.func_name(func))),
                        ("reasons", JsonValue::Object(reason_obj)),
                    ];
                    if let Some(h) = self.data.abort_footprint.get(&func) {
                        members.push((
                            "footprint",
                            obj(vec![
                                ("p50", h.percentile(0.5).into()),
                                ("p90", h.percentile(0.9).into()),
                                ("max", h.max.into()),
                            ]),
                        ));
                    }
                    obj(members)
                })
                .collect()
        };

        let deopts = self
            .data
            .deopt_sites
            .iter()
            .map(|((func, smp), site)| {
                obj(vec![
                    ("function", self.func_name(*func).into()),
                    ("smp", (*smp).into()),
                    ("bc", site.bc.into()),
                    ("check", check_name(site.kind).into()),
                    ("taken", site.count.into()),
                ])
            })
            .collect();

        let checks = {
            let mut funcs: Vec<u32> = self.data.checks.keys().map(|(f, _)| *f).collect();
            funcs.dedup();
            funcs
                .into_iter()
                .map(|func| {
                    let kinds = CHECK_KINDS
                        .iter()
                        .filter_map(|k| {
                            self.data
                                .checks
                                .get(&(func, *k))
                                .map(|n| (check_name(*k).to_owned(), JsonValue::from(*n)))
                        })
                        .collect();
                    obj(vec![
                        ("function", self.func_name(func).into()),
                        ("counts", JsonValue::Object(kinds)),
                        ("insts", self.data.func_insts(func).into()),
                        ("density_per_100", self.check_density(func).into()),
                    ])
                })
                .collect()
        };

        let mut members = vec![
            ("v", JsonValue::from(u64::from(nomap_trace::SCHEMA_VERSION))),
            ("attributed_cycles", total.into()),
            ("regions", JsonValue::Array(regions)),
            ("aborts", JsonValue::Array(aborts)),
            ("deopt_sites", JsonValue::Array(deopts)),
            ("checks", JsonValue::Array(checks)),
        ];
        if let Some(st) = self.stats_total {
            members.insert(2, ("stats_total_cycles", st.into()));
            members.insert(3, ("conserved", (st == total).into()));
        }
        obj(members)
    }
}

#[cfg(test)]
mod tests {
    use nomap_machine::{AbortReason, RegionKind, Tier};

    use super::*;

    fn report() -> HotSpotReport {
        let mut d = ProfileData::new();
        d.charge(RegionKey { func: 0, tier: Tier::Ftl, kind: RegionKind::TxnBody }, 900);
        d.charge(RegionKey { func: 0, tier: Tier::Baseline, kind: RegionKind::TxnRetryLadder }, 80);
        d.charge(RegionKey { func: 1, tier: Tier::Interpreter, kind: RegionKind::Main }, 20);
        d.record_insts(0, Tier::Ftl, 500);
        d.record_check(0, CheckKind::Bounds);
        d.record_check(0, CheckKind::Bounds);
        d.record_deopt(0, 7, 42, CheckKind::Type);
        d.record_abort(0, AbortReason::Capacity, 4096);
        let mut names = BTreeMap::new();
        names.insert(0u32, "smash".to_owned());
        HotSpotReport::new(d, names).with_stats_total(1000)
    }

    #[test]
    fn text_ranks_regions_and_shows_conservation() {
        let text = report().render_text(10);
        assert!(text.contains("attributed cycles: 1000 (== ExecStats total, conserved)"));
        let body = text.find("hot regions").unwrap();
        let first = text[body..].find("smash").unwrap();
        let interp = text[body..].find("fn#1").unwrap();
        assert!(first < interp, "hottest region must rank first");
        assert!(text.contains("txn-retry-ladder"));
        assert!(text.contains("deopt sites"));
        assert!(text.contains("capacity:1"));
        assert!(text.contains("p90="));
        assert!(text.contains("check density"));
    }

    #[test]
    fn mismatch_is_called_out() {
        let r = report().with_stats_total(999);
        assert!(r.render_text(5).contains("MISMATCH"));
    }

    #[test]
    fn json_carries_all_tables() {
        let j = report().to_json().render();
        assert!(j.contains("\"attributed_cycles\":1000"));
        assert!(j.contains("\"conserved\":true"));
        assert!(j.contains("\"region\":\"txn-body\""));
        assert!(j.contains("\"smp\":7"));
        assert!(j.contains("\"density_per_100\""));
        assert!(j.contains("\"p50\""));
    }

    #[test]
    fn unknown_and_vm_functions_have_stable_names() {
        let r = report();
        assert_eq!(r.func_name(RegionKey::OTHER_FUNC), "<vm>");
        assert_eq!(r.func_name(5), "fn#5");
    }
}
