//! A minimal recursive-descent JSON reader.
//!
//! `nomap-trace` has a JSON *writer* ([`nomap_trace::JsonValue`]); the
//! observatory also needs to read its own output back (bench-diff compares
//! two `BENCH_*.json` files). This is the matching reader — small, strict
//! enough for files we produced ourselves, and dependency-free.

/// A parsed JSON value. Numbers are kept as `f64` (every value we read back
/// — cycle and instruction counts — is well inside the 2^53 exact-integer
/// range).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Json>),
    /// An object, in source order.
    Object(Vec<(String, Json)>),
}

impl Json {
    /// Looks up a key in an object (None for non-objects / missing keys).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a non-negative integer, if it is a whole number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(items) => Some(items),
            _ => None,
        }
    }
}

/// Parses one complete JSON document (trailing whitespace allowed, trailing
/// data rejected).
pub fn parse_json(s: &str) -> Result<Json, String> {
    let b = s.as_bytes();
    let mut i = 0;
    let v = value(b, &mut i)?;
    skip_ws(b, &mut i);
    if i != b.len() {
        return Err(format!("trailing data at byte {i}"));
    }
    Ok(v)
}

fn skip_ws(b: &[u8], i: &mut usize) {
    while *i < b.len() && matches!(b[*i], b' ' | b'\t' | b'\n' | b'\r') {
        *i += 1;
    }
}

fn value(b: &[u8], i: &mut usize) -> Result<Json, String> {
    skip_ws(b, i);
    match b.get(*i) {
        Some(b'{') => object(b, i),
        Some(b'[') => array(b, i),
        Some(b'"') => Ok(Json::Str(string(b, i)?)),
        Some(b't') => lit(b, i, "true", Json::Bool(true)),
        Some(b'f') => lit(b, i, "false", Json::Bool(false)),
        Some(b'n') => lit(b, i, "null", Json::Null),
        Some(_) => number(b, i),
        None => Err("unexpected end".into()),
    }
}

fn lit(b: &[u8], i: &mut usize, word: &str, v: Json) -> Result<Json, String> {
    if b[*i..].starts_with(word.as_bytes()) {
        *i += word.len();
        Ok(v)
    } else {
        Err(format!("bad literal at byte {i}"))
    }
}

fn number(b: &[u8], i: &mut usize) -> Result<Json, String> {
    let start = *i;
    while *i < b.len() && matches!(b[*i], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E') {
        *i += 1;
    }
    std::str::from_utf8(&b[start..*i])
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .map(Json::Num)
        .ok_or_else(|| format!("bad number at byte {start}"))
}

fn string(b: &[u8], i: &mut usize) -> Result<String, String> {
    *i += 1; // opening quote
    let mut out = String::new();
    loop {
        match b.get(*i) {
            Some(b'"') => {
                *i += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *i += 1;
                match b.get(*i) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        if *i + 5 > b.len() {
                            return Err("bad \\u escape".into());
                        }
                        let hex = std::str::from_utf8(&b[*i + 1..*i + 5])
                            .map_err(|_| "bad \\u escape".to_owned())?;
                        let cp = u32::from_str_radix(hex, 16)
                            .map_err(|_| "bad \\u escape".to_owned())?;
                        out.push(char::from_u32(cp).unwrap_or('\u{fffd}'));
                        *i += 4;
                    }
                    _ => return Err("bad escape".into()),
                }
                *i += 1;
            }
            Some(_) => {
                let rest = std::str::from_utf8(&b[*i..]).map_err(|e| e.to_string())?;
                let c = rest.chars().next().unwrap();
                out.push(c);
                *i += c.len_utf8();
            }
            None => return Err("unterminated string".into()),
        }
    }
}

fn array(b: &[u8], i: &mut usize) -> Result<Json, String> {
    *i += 1; // '['
    let mut items = Vec::new();
    skip_ws(b, i);
    if b.get(*i) == Some(&b']') {
        *i += 1;
        return Ok(Json::Array(items));
    }
    loop {
        items.push(value(b, i)?);
        skip_ws(b, i);
        match b.get(*i) {
            Some(b',') => *i += 1,
            Some(b']') => {
                *i += 1;
                return Ok(Json::Array(items));
            }
            _ => return Err(format!("expected , or ] at byte {i}")),
        }
    }
}

fn object(b: &[u8], i: &mut usize) -> Result<Json, String> {
    *i += 1; // '{'
    let mut pairs = Vec::new();
    skip_ws(b, i);
    if b.get(*i) == Some(&b'}') {
        *i += 1;
        return Ok(Json::Object(pairs));
    }
    loop {
        skip_ws(b, i);
        if b.get(*i) != Some(&b'"') {
            return Err(format!("expected object key at byte {i}"));
        }
        let key = string(b, i)?;
        skip_ws(b, i);
        if b.get(*i) != Some(&b':') {
            return Err(format!("expected : at byte {i}"));
        }
        *i += 1;
        pairs.push((key, value(b, i)?));
        skip_ws(b, i);
        match b.get(*i) {
            Some(b',') => *i += 1,
            Some(b'}') => {
                *i += 1;
                return Ok(Json::Object(pairs));
            }
            _ => return Err(format!("expected , or }} at byte {i}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_document() {
        let doc = r#"{"v":3,"rows":[{"bench":"splay","cycles":12345},{"bench":"crypto","cycles":0}],"ok":true,"note":null}"#;
        let j = parse_json(doc).unwrap();
        assert_eq!(j.get("v").and_then(Json::as_u64), Some(3));
        let rows = j.get("rows").and_then(Json::as_array).unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].get("bench").and_then(Json::as_str), Some("splay"));
        assert_eq!(rows[0].get("cycles").and_then(Json::as_u64), Some(12345));
        assert_eq!(j.get("ok"), Some(&Json::Bool(true)));
        assert_eq!(j.get("note"), Some(&Json::Null));
    }

    #[test]
    fn rejects_trailing_data_and_bad_syntax() {
        assert!(parse_json("{} x").is_err());
        assert!(parse_json("{\"a\":}").is_err());
        assert!(parse_json("[1,2").is_err());
        assert!(parse_json("").is_err());
    }

    #[test]
    fn round_trips_escapes() {
        let j = parse_json(r#""a\"b\\c\nd""#).unwrap();
        assert_eq!(j.as_str(), Some("a\"b\\c\nd"));
    }
}
