//! The canonical bench-cycle format and the regression comparator.
//!
//! Every experiment binary emits a `BENCH_<artifact>.json` alongside its
//! human-readable output: one row per (bench, config) with the deterministic
//! simulated cycle and instruction counts. Because the simulator is fully
//! deterministic, *any* cycle difference between two runs of the same
//! source is a real behaviour change — the CI gate compares fresh files
//! against the committed `results/baselines/` set with a small threshold
//! only so intentional model tweaks can be landed together with refreshed
//! baselines.

use std::collections::BTreeMap;

use nomap_trace::{obj, JsonValue};

use crate::json_in::{parse_json, Json};

/// Version stamped on `BENCH_<artifact>.json` documents.
///
/// Historically this tracked `nomap_trace::SCHEMA_VERSION`, but the bench
/// format froze at v4 when the trace schema moved on (v5 added the
/// `fleet-summary` event, which never appears in bench documents): the
/// committed `results/baselines/` set must stay byte-identical across
/// changes that do not touch the rows themselves.
pub const BENCH_DOC_VERSION: u64 = 4;

/// One measured configuration of one benchmark.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchRow {
    /// Benchmark name (e.g. `splay`).
    pub bench: String,
    /// Configuration label (e.g. `NoMap`, `Baseline (checks)`).
    pub config: String,
    /// Simulated cycles for the measured window.
    pub cycles: u64,
    /// Dynamic instructions for the measured window.
    pub insts: u64,
}

/// A full `BENCH_<artifact>.json` document.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct BenchRows {
    /// Artifact the rows belong to (`fig8`, `table1`, ...).
    pub artifact: String,
    /// Measured rows, in emission order.
    pub rows: Vec<BenchRow>,
}

impl BenchRows {
    /// Empty row set for `artifact`.
    pub fn new(artifact: &str) -> Self {
        BenchRows { artifact: artifact.to_owned(), rows: Vec::new() }
    }

    /// Appends a row. A duplicate (bench, config) key keeps the *first*
    /// recording: some artifacts measure a workload set twice for different
    /// figures of merit (e.g. table1's AvgS column) and the repeated rows
    /// are identical by determinism.
    pub fn push(&mut self, bench: &str, config: &str, cycles: u64, insts: u64) {
        if self.rows.iter().any(|r| r.bench == bench && r.config == config) {
            return;
        }
        self.rows.push(BenchRow {
            bench: bench.to_owned(),
            config: config.to_owned(),
            cycles,
            insts,
        });
    }

    /// Rows keyed by `(bench, config)` for comparison.
    pub fn keyed(&self) -> BTreeMap<(String, String), &BenchRow> {
        self.rows.iter().map(|r| ((r.bench.clone(), r.config.clone()), r)).collect()
    }

    /// Renders the canonical JSON document.
    pub fn to_json(&self) -> JsonValue {
        let rows = self
            .rows
            .iter()
            .map(|r| {
                obj(vec![
                    ("bench", r.bench.as_str().into()),
                    ("config", r.config.as_str().into()),
                    ("cycles", r.cycles.into()),
                    ("insts", r.insts.into()),
                ])
            })
            .collect();
        obj(vec![
            ("v", BENCH_DOC_VERSION.into()),
            ("artifact", self.artifact.as_str().into()),
            ("rows", JsonValue::Array(rows)),
        ])
    }

    /// Parses a canonical document produced by [`BenchRows::to_json`].
    pub fn parse(text: &str) -> Result<BenchRows, String> {
        let doc = parse_json(text)?;
        let artifact =
            doc.get("artifact").and_then(Json::as_str).ok_or("missing \"artifact\"")?.to_owned();
        let rows_json = doc.get("rows").and_then(Json::as_array).ok_or("missing \"rows\"")?;
        let mut out = BenchRows::new(&artifact);
        for (i, row) in rows_json.iter().enumerate() {
            let field =
                |name: &str| row.get(name).ok_or_else(|| format!("row {i}: missing \"{name}\""));
            let bench = field("bench")?.as_str().ok_or_else(|| format!("row {i}: bad bench"))?;
            let config = field("config")?.as_str().ok_or_else(|| format!("row {i}: bad config"))?;
            let cycles = field("cycles")?.as_u64().ok_or_else(|| format!("row {i}: bad cycles"))?;
            let insts = field("insts")?.as_u64().ok_or_else(|| format!("row {i}: bad insts"))?;
            out.push(bench, config, cycles, insts);
        }
        Ok(out)
    }
}

/// One (bench, config) whose cycle count moved between two row sets.
#[derive(Debug, Clone, PartialEq)]
pub struct DiffEntry {
    /// Benchmark name.
    pub bench: String,
    /// Configuration label.
    pub config: String,
    /// Cycles in the old (baseline) set.
    pub old_cycles: u64,
    /// Cycles in the new (candidate) set.
    pub new_cycles: u64,
    /// Relative change, `(new - old) / old` (positive = slower). `None`
    /// when the baseline is zero cycles: no finite ratio exists, the row
    /// renders as `n/a` and is always classified as a regression.
    pub delta: Option<f64>,
}

impl DiffEntry {
    /// `bench/config  old -> new  (+1.23%)` rendering (`(n/a)` for a
    /// zero-cycle baseline).
    pub fn describe(&self) -> String {
        let delta = match self.delta {
            Some(d) => format!("{:+.2}%", d * 100.0),
            None => "n/a".to_owned(),
        };
        format!(
            "{}/{}  {} -> {} ({delta})",
            self.bench, self.config, self.old_cycles, self.new_cycles
        )
    }
}

/// Outcome of comparing a candidate row set against a baseline.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct BenchDiff {
    /// Rows slower than baseline by more than the threshold.
    pub regressions: Vec<DiffEntry>,
    /// Rows faster than baseline by more than the threshold.
    pub improvements: Vec<DiffEntry>,
    /// Rows that moved but stayed within the threshold.
    pub within: Vec<DiffEntry>,
    /// (bench, config) keys present only in the baseline.
    pub missing: Vec<(String, String)>,
    /// (bench, config) keys present only in the candidate.
    pub added: Vec<(String, String)>,
}

impl BenchDiff {
    /// True when the candidate is acceptable: nothing regressed and no
    /// baseline row disappeared. (Additions and improvements pass.)
    pub fn is_ok(&self) -> bool {
        self.regressions.is_empty() && self.missing.is_empty()
    }

    /// Multi-line human-readable report.
    pub fn render(&self, threshold: f64) -> String {
        let mut out = String::new();
        if self.is_ok() && self.improvements.is_empty() && self.within.is_empty() {
            out.push_str("no cycle changes\n");
        }
        for e in &self.regressions {
            out.push_str(&format!("REGRESSION  {}\n", e.describe()));
        }
        for (b, c) in &self.missing {
            out.push_str(&format!("MISSING     {b}/{c} (in baseline, not in candidate)\n"));
        }
        for e in &self.improvements {
            out.push_str(&format!("improved    {}\n", e.describe()));
        }
        for e in &self.within {
            out.push_str(&format!("within {:.0}%   {}\n", threshold * 100.0, e.describe()));
        }
        for (b, c) in &self.added {
            out.push_str(&format!("added       {b}/{c}\n"));
        }
        out
    }
}

/// Compares candidate rows against baseline rows. A row regresses when its
/// cycles exceed the baseline by more than `threshold` (e.g. `0.02` = 2%).
pub fn bench_diff(old: &BenchRows, new: &BenchRows, threshold: f64) -> BenchDiff {
    let old_keyed = old.keyed();
    let new_keyed = new.keyed();
    let mut diff = BenchDiff::default();
    for (key, old_row) in &old_keyed {
        let Some(new_row) = new_keyed.get(key) else {
            diff.missing.push(key.clone());
            continue;
        };
        if old_row.cycles == new_row.cycles {
            continue;
        }
        // A zero-cycle baseline has no finite ratio; report `n/a` (never
        // inf/NaN) and treat any movement off zero as a regression.
        let delta = (old_row.cycles != 0)
            .then(|| (new_row.cycles as f64 - old_row.cycles as f64) / old_row.cycles as f64);
        let entry = DiffEntry {
            bench: key.0.clone(),
            config: key.1.clone(),
            old_cycles: old_row.cycles,
            new_cycles: new_row.cycles,
            delta,
        };
        match delta {
            None => diff.regressions.push(entry),
            Some(d) if d > threshold => diff.regressions.push(entry),
            Some(d) if d < -threshold => diff.improvements.push(entry),
            Some(_) => diff.within.push(entry),
        }
    }
    for key in new_keyed.keys() {
        if !old_keyed.contains_key(key) {
            diff.added.push(key.clone());
        }
    }
    diff
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rows(pairs: &[(&str, &str, u64)]) -> BenchRows {
        let mut r = BenchRows::new("test");
        for (b, c, cy) in pairs {
            r.push(b, c, *cy, cy * 2);
        }
        r
    }

    #[test]
    fn json_round_trip_preserves_rows() {
        let r = rows(&[("splay", "NoMap", 1000), ("splay", "Baseline", 1500)]);
        let text = r.to_json().render();
        let back = BenchRows::parse(&text).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn duplicate_keys_keep_first_recording() {
        let mut r = BenchRows::new("table1");
        r.push("crypto", "NoMap", 10, 20);
        r.push("crypto", "NoMap", 999, 999);
        assert_eq!(r.rows.len(), 1);
        assert_eq!(r.rows[0].cycles, 10);
    }

    #[test]
    fn detects_regression_beyond_threshold() {
        let old = rows(&[("a", "x", 1000), ("b", "x", 1000)]);
        let new = rows(&[("a", "x", 1030), ("b", "x", 1010)]);
        let diff = bench_diff(&old, &new, 0.02);
        assert!(!diff.is_ok());
        assert_eq!(diff.regressions.len(), 1);
        assert_eq!(diff.regressions[0].bench, "a");
        assert!((diff.regressions[0].delta.unwrap() - 0.03).abs() < 1e-9);
        assert_eq!(diff.within.len(), 1);
        assert!(diff.render(0.02).contains("REGRESSION"));
    }

    #[test]
    fn improvements_and_additions_pass() {
        let old = rows(&[("a", "x", 1000)]);
        let new = rows(&[("a", "x", 900), ("c", "x", 5)]);
        let diff = bench_diff(&old, &new, 0.02);
        assert!(diff.is_ok());
        assert_eq!(diff.improvements.len(), 1);
        assert_eq!(diff.added, vec![("c".to_owned(), "x".to_owned())]);
    }

    #[test]
    fn zero_baseline_reports_na_not_inf() {
        let old = rows(&[("a", "x", 0)]);
        let new = rows(&[("a", "x", 500)]);
        let diff = bench_diff(&old, &new, 0.02);
        assert!(!diff.is_ok(), "moving off a zero baseline is a regression");
        assert_eq!(diff.regressions.len(), 1);
        assert_eq!(diff.regressions[0].delta, None);
        let rendered = diff.render(0.02);
        assert!(rendered.contains("(n/a)"), "rendered: {rendered}");
        assert!(!rendered.contains("inf") && !rendered.contains("NaN"));
    }

    #[test]
    fn bench_doc_version_is_pinned_at_4() {
        // The committed results/baselines/ set embeds "v":4; the bench
        // document version is frozen independently of the trace schema.
        let text = rows(&[("a", "x", 1)]).to_json().render();
        assert!(text.starts_with("{\"v\":4,"), "doc: {text}");
    }

    #[test]
    fn missing_baseline_rows_fail() {
        let old = rows(&[("a", "x", 1000), ("b", "x", 1000)]);
        let new = rows(&[("a", "x", 1000)]);
        let diff = bench_diff(&old, &new, 0.02);
        assert!(!diff.is_ok());
        assert_eq!(diff.missing, vec![("b".to_owned(), "x".to_owned())]);
    }

    #[test]
    fn identical_sets_are_clean() {
        let r = rows(&[("a", "x", 1000)]);
        let diff = bench_diff(&r, &r.clone(), 0.0);
        assert!(diff.is_ok());
        assert!(diff.render(0.0).contains("no cycle changes"));
    }
}
