//! Adversarial corpus: for every diagnostic in the catalogue, a known-bad
//! IR function that must trigger it — and a known-good twin that must not.

use nomap_bytecode::FuncId;
use nomap_ir::node::{Inst, InstKind, OsrState, Ty};
use nomap_ir::{BlockId, CheckMode, IrFunc, ValueId};
use nomap_machine::{CheckKind, Cond, HtmModel};
use nomap_runtime::Value;
use nomap_verify::{
    check_txn_safety, estimate_footprint, validate_bounds_combining, verify_ssa, DiagCode,
    ScopeAdvice,
};

fn codes(diags: &[nomap_verify::Diagnostic]) -> Vec<DiagCode> {
    diags.iter().map(|d| d.code).collect()
}

/// entry → (then|else) → join, with a phi at the join.
fn diamond() -> (IrFunc, BlockId, BlockId, BlockId, ValueId) {
    let mut f = IrFunc::new(FuncId(0), "t", 0, 0);
    let then_b = f.new_block();
    let else_b = f.new_block();
    let join = f.new_block();
    let c = f.append(f.entry, Inst::new(InstKind::ConstI32(1)));
    let cb = f.append(f.entry, Inst::new(InstKind::ICmp { cond: Cond::Eq, a: c, b: c }));
    f.append(f.entry, Inst::new(InstKind::Branch { cond: cb, then_b, else_b }));
    let v1 = f.append(then_b, Inst::new(InstKind::ConstI32(1)));
    f.append(then_b, Inst::new(InstKind::Jump { target: join }));
    let v2 = f.append(else_b, Inst::new(InstKind::ConstI32(2)));
    f.append(else_b, Inst::new(InstKind::Jump { target: join }));
    let phi = f.append(join, Inst::new(InstKind::Phi { inputs: vec![v1, v2], ty: Ty::I32 }));
    let boxed = f.append(join, Inst::new(InstKind::BoxI32(phi)));
    f.append(join, Inst::new(InstKind::Return { v: boxed }));
    f.compute_preds();
    (f, then_b, else_b, join, phi)
}

/// entry → header ⇄ body → exit with a bounds guard on the IV in the body.
fn guarded_loop(step: i32) -> (IrFunc, BlockId, BlockId, BlockId, ValueId, ValueId, ValueId) {
    let mut f = IrFunc::new(FuncId(0), "loop", 0, 0);
    let header = f.new_block();
    let body = f.new_block();
    let exit = f.new_block();
    let init = f.append(f.entry, Inst::new(InstKind::ConstI32(if step > 0 { 0 } else { 99 })));
    let n = f.append(f.entry, Inst::new(InstKind::ConstI32(100)));
    let len = f.append(f.entry, Inst::new(InstKind::ConstI32(100)));
    f.append(f.entry, Inst::new(InstKind::Jump { target: header }));
    let phi = f.append(header, Inst::new(InstKind::Phi { inputs: vec![init], ty: Ty::I32 }));
    let cmp = f.append(header, Inst::new(InstKind::ICmp { cond: Cond::Lt, a: phi, b: n }));
    f.append(header, Inst::new(InstKind::Branch { cond: cmp, then_b: body, else_b: exit }));
    let oob = f.append(body, Inst::new(InstKind::ICmp { cond: Cond::AboveEq, a: phi, b: len }));
    let guard = f.append(
        body,
        Inst::new(InstKind::Guard { kind: CheckKind::Bounds, cond: oob, mode: CheckMode::Abort }),
    );
    let stepc = f.append(body, Inst::new(InstKind::ConstI32(step.abs())));
    let next = if step > 0 {
        f.append(
            body,
            Inst::new(InstKind::CheckedAddI32 { a: phi, b: stepc, mode: CheckMode::Sof }),
        )
    } else {
        f.append(
            body,
            Inst::new(InstKind::CheckedSubI32 { a: phi, b: stepc, mode: CheckMode::Sof }),
        )
    };
    f.append(body, Inst::new(InstKind::Jump { target: header }));
    if let InstKind::Phi { inputs, .. } = &mut f.inst_mut(phi).kind {
        inputs.push(next);
    }
    let u = f.append(exit, Inst::new(InstKind::Const(Value::UNDEFINED)));
    f.append(exit, Inst::new(InstKind::Return { v: u }));
    f.compute_preds();
    (f, header, body, exit, phi, len, guard)
}

// ---------------------------------------------------------------- SSA layer

#[test]
fn clean_diamond_is_clean() {
    let (f, ..) = diamond();
    assert!(verify_ssa(&f).is_empty());
}

#[test]
fn entry_has_preds_fires() {
    let (mut f, then_b, ..) = diamond();
    f.blocks[f.entry.0 as usize].preds.push(then_b);
    assert!(codes(&verify_ssa(&f)).contains(&DiagCode::EntryHasPreds));
}

#[test]
fn no_terminator_fires() {
    let (mut f, then_b, ..) = diamond();
    // Drop then's jump: block ends in a ConstI32.
    f.blocks[then_b.0 as usize].insts.pop();
    assert!(codes(&verify_ssa(&f)).contains(&DiagCode::NoTerminator));
}

#[test]
fn no_terminator_fires_for_reachable_empty_block() {
    let (mut f, then_b, ..) = diamond();
    f.blocks[then_b.0 as usize].insts.clear();
    assert!(codes(&verify_ssa(&f)).contains(&DiagCode::NoTerminator));
}

#[test]
fn mid_block_terminator_fires() {
    let mut f = IrFunc::new(FuncId(0), "bad", 0, 0);
    let c = f.append(f.entry, Inst::new(InstKind::Const(Value::UNDEFINED)));
    f.append(f.entry, Inst::new(InstKind::Return { v: c }));
    f.append(f.entry, Inst::new(InstKind::Return { v: c }));
    f.compute_preds();
    assert!(codes(&verify_ssa(&f)).contains(&DiagCode::MidBlockTerminator));
}

#[test]
fn phi_arity_mismatch_fires() {
    let (mut f, _, _, _, phi) = diamond();
    if let InstKind::Phi { inputs, .. } = &mut f.inst_mut(phi).kind {
        inputs.pop();
    }
    assert!(codes(&verify_ssa(&f)).contains(&DiagCode::PhiArityMismatch));
}

#[test]
fn phi_after_non_phi_fires() {
    let (mut f, _, _, join, phi) = diamond();
    // Move the phi below the BoxI32.
    let insts = &mut f.blocks[join.0 as usize].insts;
    let pos = insts.iter().position(|&v| v == phi).unwrap();
    insts.swap(pos, pos + 1);
    assert!(codes(&verify_ssa(&f)).contains(&DiagCode::PhiAfterNonPhi));
}

#[test]
fn phi_input_undominated_fires() {
    let (mut f, _, _, _, phi) = diamond();
    // Swap the phi inputs: each now names the value from the *other* branch.
    if let InstKind::Phi { inputs, .. } = &mut f.inst_mut(phi).kind {
        inputs.swap(0, 1);
    }
    assert!(codes(&verify_ssa(&f)).contains(&DiagCode::PhiInputUndominated));
}

#[test]
fn operand_out_of_range_fires() {
    let (mut f, _, _, join, _) = diamond();
    let boxed = f.blocks[join.0 as usize].insts[1];
    f.inst_mut(boxed).kind = InstKind::BoxI32(ValueId(9999));
    assert!(codes(&verify_ssa(&f)).contains(&DiagCode::OperandOutOfRange));
}

#[test]
fn operand_nop_fires() {
    let (mut f, then_b, ..) = diamond();
    let v1 = f.blocks[then_b.0 as usize].insts[0];
    f.inst_mut(v1).kind = InstKind::Nop;
    assert!(codes(&verify_ssa(&f)).contains(&DiagCode::OperandNop));
}

#[test]
fn operand_undominated_fires_across_blocks() {
    let (mut f, then_b, else_b, _, _) = diamond();
    // else uses a value defined only in then: neither dominates the other.
    let v1 = f.blocks[then_b.0 as usize].insts[0];
    let v2 = f.blocks[else_b.0 as usize].insts[0];
    f.inst_mut(v2).kind = InstKind::BoxI32(v1);
    assert!(codes(&verify_ssa(&f)).contains(&DiagCode::OperandUndominated));
}

#[test]
fn operand_undominated_fires_in_block_use_before_def() {
    let mut f = IrFunc::new(FuncId(0), "bad", 0, 0);
    let user = f.append(f.entry, Inst::new(InstKind::BoxI32(ValueId(1))));
    let _def = f.append(f.entry, Inst::new(InstKind::ConstI32(4)));
    f.append(f.entry, Inst::new(InstKind::Return { v: user }));
    f.compute_preds();
    assert!(codes(&verify_ssa(&f)).contains(&DiagCode::OperandUndominated));
}

#[test]
fn operand_undominated_fires_for_osr_regs() {
    let (mut f, then_b, else_b, _, _) = diamond();
    // A Deopt guard in else whose OSR snapshot names a then-only value.
    let v1 = f.blocks[then_b.0 as usize].insts[0];
    let fail = f.insert_at(else_b, 0, Inst::new(InstKind::ConstBool(false)));
    let mut g =
        Inst::new(InstKind::Guard { kind: CheckKind::Type, cond: fail, mode: CheckMode::Deopt });
    g.osr = Some(OsrState { bc: 0, regs: vec![Some(v1)] });
    f.insert_at(else_b, 1, g);
    assert!(codes(&verify_ssa(&f)).contains(&DiagCode::OperandUndominated));
}

#[test]
fn duplicate_placement_fires() {
    let (mut f, then_b, else_b, _, _) = diamond();
    let v1 = f.blocks[then_b.0 as usize].insts[0];
    f.blocks[else_b.0 as usize].insts.insert(0, v1);
    assert!(codes(&verify_ssa(&f)).contains(&DiagCode::DuplicatePlacement));
}

#[test]
fn pred_succ_mismatch_fires() {
    let (mut f, _, _, join, phi) = diamond();
    // Claim a pred entry for a second then→join edge that doesn't exist.
    let then_b = BlockId(1);
    f.blocks[join.0 as usize].preds.push(then_b);
    if let InstKind::Phi { inputs, .. } = &mut f.inst_mut(phi).kind {
        let v = inputs[0];
        inputs.push(v);
    }
    assert!(codes(&verify_ssa(&f)).contains(&DiagCode::PredSuccMismatch));
}

// -------------------------------------------------------------- txn layer

/// entry [XBegin] → mid [work, XEnd] → exit, clean.
fn txn_func(with_osr: bool) -> (IrFunc, BlockId, BlockId) {
    let mut f = IrFunc::new(FuncId(0), "txn", 0, 1);
    let mid = f.new_block();
    let exit = f.new_block();
    let mut xb = Inst::new(InstKind::XBegin);
    if with_osr {
        xb.osr = Some(OsrState { bc: 0, regs: vec![None] });
    }
    f.append(f.entry, xb);
    f.append(f.entry, Inst::new(InstKind::Jump { target: mid }));
    let a = f.append(mid, Inst::new(InstKind::ConstI32(1)));
    let sum = f.append(mid, Inst::new(InstKind::CheckedAddI32 { a, b: a, mode: CheckMode::Sof }));
    let fail = f.append(mid, Inst::new(InstKind::ConstBool(false)));
    f.append(
        mid,
        Inst::new(InstKind::Guard { kind: CheckKind::Type, cond: fail, mode: CheckMode::Abort }),
    );
    f.append(mid, Inst::new(InstKind::XEnd));
    f.append(mid, Inst::new(InstKind::Jump { target: exit }));
    let boxed = f.append(exit, Inst::new(InstKind::BoxI32(sum)));
    f.append(exit, Inst::new(InstKind::Return { v: boxed }));
    f.compute_preds();
    (f, mid, exit)
}

#[test]
fn clean_txn_is_clean() {
    let (f, ..) = txn_func(true);
    assert!(verify_ssa(&f).is_empty());
    assert!(check_txn_safety(&f, 0, true).is_empty());
}

#[test]
fn abort_outside_txn_fires() {
    let (mut f, mid, _) = txn_func(true);
    // Remove the XBegin: the abort check now runs outside any transaction.
    let xb = f.blocks[f.entry.0 as usize].insts.remove(0);
    f.inst_mut(xb).kind = InstKind::Nop;
    let got = codes(&check_txn_safety(&f, 0, true));
    assert!(got.contains(&DiagCode::AbortOutsideTxn), "{got:?}");
    assert!(got.contains(&DiagCode::SofOutsideTxn), "{got:?}");
    assert!(got.contains(&DiagCode::XendUnderflow), "{got:?}");
    let _ = mid;
}

#[test]
fn xend_underflow_fires() {
    let mut f = IrFunc::new(FuncId(0), "bad", 0, 0);
    f.append(f.entry, Inst::new(InstKind::XEnd));
    let u = f.append(f.entry, Inst::new(InstKind::Const(Value::UNDEFINED)));
    f.append(f.entry, Inst::new(InstKind::Return { v: u }));
    f.compute_preds();
    assert!(codes(&check_txn_safety(&f, 0, true)).contains(&DiagCode::XendUnderflow));
    // At depth 1 the XEnd no longer underflows — but it now closes the
    // *caller's* transaction, so the return-depth check flags it instead.
    let at_depth_1 = codes(&check_txn_safety(&f, 1, true));
    assert!(!at_depth_1.contains(&DiagCode::XendUnderflow));
    assert!(at_depth_1.contains(&DiagCode::TxnOpenAtReturn));
}

#[test]
fn txn_callee_with_abort_checks_is_clean_at_depth_1() {
    // The abort_all_checks shape: abort-mode checks, no XBegin/XEnd of its
    // own — legal only under a caller's transaction.
    let mut f = IrFunc::new(FuncId(0), "callee", 0, 0);
    let a = f.append(f.entry, Inst::new(InstKind::ConstI32(1)));
    let sum =
        f.append(f.entry, Inst::new(InstKind::CheckedAddI32 { a, b: a, mode: CheckMode::Abort }));
    let boxed = f.append(f.entry, Inst::new(InstKind::BoxI32(sum)));
    f.append(f.entry, Inst::new(InstKind::Return { v: boxed }));
    f.compute_preds();
    assert!(check_txn_safety(&f, 1, true).is_empty());
    assert!(codes(&check_txn_safety(&f, 0, true)).contains(&DiagCode::AbortOutsideTxn));
}

#[test]
fn txn_depth_conflict_fires() {
    // entry → (then [XBegin] | else) → join: preds disagree at the join.
    let (mut f, then_b, _, _, _) = diamond();
    let mut xb = Inst::new(InstKind::XBegin);
    xb.osr = Some(OsrState { bc: 0, regs: vec![] });
    f.insert_at(then_b, 0, xb);
    assert!(codes(&check_txn_safety(&f, 0, true)).contains(&DiagCode::TxnDepthConflict));
}

#[test]
fn txn_open_at_return_fires() {
    let (mut f, mid, _) = txn_func(true);
    // Drop the XEnd: the transaction is still open at the return.
    let pos = f.blocks[mid.0 as usize]
        .insts
        .iter()
        .position(|&v| matches!(f.inst(v).kind, InstKind::XEnd))
        .unwrap();
    let xe = f.blocks[mid.0 as usize].insts.remove(pos);
    f.inst_mut(xe).kind = InstKind::Nop;
    assert!(codes(&check_txn_safety(&f, 0, true)).contains(&DiagCode::TxnOpenAtReturn));
}

#[test]
fn xbegin_missing_osr_fires() {
    let (f, ..) = txn_func(false);
    assert!(codes(&check_txn_safety(&f, 0, true)).contains(&DiagCode::XbeginMissingOsr));
}

#[test]
fn sof_unsupported_fires() {
    let (f, ..) = txn_func(true);
    assert!(check_txn_safety(&f, 0, true).is_empty());
    assert!(codes(&check_txn_safety(&f, 0, false)).contains(&DiagCode::SofUnsupported));
}

// ----------------------------------------------- bounds translation validation

#[test]
fn honest_combining_validates() {
    // Simulate the real pass on an increasing loop: nop the guard, split
    // the exit edge, emit the extreme check in the landing block.
    let (before, _, _, exit, phi, len, guard) = guarded_loop(1);
    let mut after = before.clone();
    after.inst_mut(guard).kind = InstKind::Nop;
    let header = BlockId(1);
    let mid = after.split_edge(header, exit);
    let cmp = after.insert_at(mid, 0, Inst::new(InstKind::ICmp { cond: Cond::Gt, a: phi, b: len }));
    after.insert_at(
        mid,
        1,
        Inst::new(InstKind::Guard { kind: CheckKind::Bounds, cond: cmp, mode: CheckMode::Abort }),
    );
    assert_eq!(validate_bounds_combining(&before, &after), vec![]);
}

#[test]
fn honest_decreasing_combining_validates() {
    let (before, _, _, _, phi, len, guard) = guarded_loop(-1);
    let mut after = before.clone();
    after.inst_mut(guard).kind = InstKind::Nop;
    // Preheader is the entry block; init is the phi's entry input.
    let init = match &after.inst(phi).kind {
        InstKind::Phi { inputs, .. } => inputs[0],
        _ => unreachable!(),
    };
    let cmp = after.insert_before_terminator(
        after.entry,
        Inst::new(InstKind::ICmp { cond: Cond::AboveEq, a: init, b: len }),
    );
    after.insert_before_terminator(
        after.entry,
        Inst::new(InstKind::Guard { kind: CheckKind::Bounds, cond: cmp, mode: CheckMode::Abort }),
    );
    assert_eq!(validate_bounds_combining(&before, &after), vec![]);
}

#[test]
fn bounds_no_compensation_fires() {
    let (before, _, _, _, _, _, guard) = guarded_loop(1);
    let mut after = before.clone();
    after.inst_mut(guard).kind = InstKind::Nop; // deleted, nothing added
    assert!(codes(&validate_bounds_combining(&before, &after))
        .contains(&DiagCode::BoundsNoCompensation));
}

#[test]
fn bounds_not_induction_fires() {
    // The guard tests a non-IV phi (the "weakened pass" scenario): replace
    // the IV update so scev cannot prove monotonicity.
    let (mut before, _, body, _, phi, _, guard) = guarded_loop(1);
    // Make the latch input a fresh load-like opaque value instead of phi+1.
    let opaque = before.insert_at(body, 0, Inst::new(InstKind::ConstRaw(7)));
    if let InstKind::Phi { inputs, .. } = &mut before.inst_mut(phi).kind {
        inputs[1] = opaque;
    }
    let mut after = before.clone();
    after.inst_mut(guard).kind = InstKind::Nop;
    assert!(
        codes(&validate_bounds_combining(&before, &after)).contains(&DiagCode::BoundsNotInduction)
    );
}

#[test]
fn bounds_len_variant_fires() {
    let (mut before, _, body, _, _, _, guard) = guarded_loop(1);
    // Redefine the guard condition against a length computed inside the loop.
    let inner_len = before.insert_at(body, 0, Inst::new(InstKind::ConstI32(50)));
    let phi = ValueId(4);
    let cond = before.insert_at(
        body,
        1,
        Inst::new(InstKind::ICmp { cond: Cond::AboveEq, a: phi, b: inner_len }),
    );
    before.inst_mut(guard).kind =
        InstKind::Guard { kind: CheckKind::Bounds, cond, mode: CheckMode::Abort };
    let mut after = before.clone();
    after.inst_mut(guard).kind = InstKind::Nop;
    assert!(
        codes(&validate_bounds_combining(&before, &after)).contains(&DiagCode::BoundsLenVariant)
    );
}

#[test]
fn bounds_no_loop_fires() {
    let mut before = IrFunc::new(FuncId(0), "straight", 0, 0);
    let i = before.append(before.entry, Inst::new(InstKind::ConstI32(0)));
    let len = before.append(before.entry, Inst::new(InstKind::ConstI32(10)));
    let cond = before
        .append(before.entry, Inst::new(InstKind::ICmp { cond: Cond::AboveEq, a: i, b: len }));
    let guard = before.append(
        before.entry,
        Inst::new(InstKind::Guard { kind: CheckKind::Bounds, cond, mode: CheckMode::Abort }),
    );
    let u = before.append(before.entry, Inst::new(InstKind::Const(Value::UNDEFINED)));
    before.append(before.entry, Inst::new(InstKind::Return { v: u }));
    before.compute_preds();
    let mut after = before.clone();
    after.inst_mut(guard).kind = InstKind::Nop;
    assert!(codes(&validate_bounds_combining(&before, &after)).contains(&DiagCode::BoundsNoLoop));
}

// ------------------------------------------------------------- footprint

/// `for (i = 0; i < trip; i++) a[i] = i;` — with an optional call.
fn store_loop(trip: i32, with_call: bool) -> IrFunc {
    let mut f = IrFunc::new(FuncId(0), "store", 0, 0);
    let header = f.new_block();
    let body = f.new_block();
    let exit = f.new_block();
    let zero = f.append(f.entry, Inst::new(InstKind::ConstI32(0)));
    let n = f.append(f.entry, Inst::new(InstKind::ConstI32(trip)));
    let storage = f.append(f.entry, Inst::new(InstKind::ConstRaw(0x1000)));
    f.append(f.entry, Inst::new(InstKind::Jump { target: header }));
    let phi = f.append(header, Inst::new(InstKind::Phi { inputs: vec![zero], ty: Ty::I32 }));
    let cmp = f.append(header, Inst::new(InstKind::ICmp { cond: Cond::Lt, a: phi, b: n }));
    f.append(header, Inst::new(InstKind::Branch { cond: cmp, then_b: body, else_b: exit }));
    let boxed = f.append(body, Inst::new(InstKind::BoxI32(phi)));
    f.append(body, Inst::new(InstKind::StoreElem { storage, index: phi, v: boxed }));
    if with_call {
        f.append(body, Inst::new(InstKind::CallJs { callee: FuncId(1), args: vec![] }));
    }
    let one = f.append(body, Inst::new(InstKind::ConstI32(1)));
    let next =
        f.append(body, Inst::new(InstKind::CheckedAddI32 { a: phi, b: one, mode: CheckMode::Sof }));
    f.append(body, Inst::new(InstKind::Jump { target: header }));
    if let InstKind::Phi { inputs, .. } = &mut f.inst_mut(phi).kind {
        inputs.push(next);
    }
    let u = f.append(exit, Inst::new(InstKind::Const(Value::UNDEFINED)));
    f.append(exit, Inst::new(InstKind::Return { v: u }));
    f.compute_preds();
    f
}

#[test]
fn footprint_predicts_overflow_and_tiles() {
    let f = store_loop(100_000, false);
    let est = estimate_footprint(&f, &HtmModel::rot());
    assert_eq!(est.capacity_lines, 4096); // 256 KB / 64 B = 4096 lines
    assert_eq!(est.loops.len(), 1);
    let lf = &est.loops[0];
    assert_eq!(lf.trip, Some(100_000));
    // 100k words × 8 B / 64 B per line = 12 500 lines ≫ 4096.
    assert_eq!(lf.lines_lower_bound, 12_500);
    assert!(lf.overflows);
    assert!(matches!(est.advice, ScopeAdvice::Tile(t) if (16..=256).contains(&t)));
    assert!(codes(&est.diags).contains(&DiagCode::CapacityOverflowPredicted));
    assert!(est.diags.iter().all(|d| !d.is_error()), "capacity prediction is a warning");
}

#[test]
fn footprint_small_loop_keeps_scope() {
    let f = store_loop(100, false);
    let est = estimate_footprint(&f, &HtmModel::rot());
    assert_eq!(est.advice, ScopeAdvice::Keep);
    assert!(est.diags.is_empty());
    assert!(!est.loops[0].overflows);
}

#[test]
fn footprint_overflowing_loop_with_call_disables() {
    let f = store_loop(100_000, true);
    let est = estimate_footprint(&f, &HtmModel::rot());
    assert_eq!(est.advice, ScopeAdvice::Disable);
    assert!(est.loops[0].has_call);
}

#[test]
fn footprint_rtm_is_tighter() {
    // 32 KB L1D bounds writes under RTM: a loop that fits ROT can overflow
    // RTM. 2000 words = 16 KB = 250 lines > 512? No — pick 10k words:
    // 10 000 × 8 / 64 = 1250 lines > 512 (32 KB / 64 B).
    let f = store_loop(10_000, false);
    let rot = estimate_footprint(&f, &HtmModel::rot());
    let rtm = estimate_footprint(&f, &HtmModel::rtm());
    assert!(!rot.loops[0].overflows);
    assert!(rtm.loops[0].overflows);
}
