//! Structured diagnostics shared by every verifier layer.

use std::fmt;

use nomap_ir::{BlockId, ValueId};

/// How bad a finding is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Severity {
    /// The IR is wrong; lowering it would miscompile. Compilation must not
    /// proceed.
    Error,
    /// The IR is legal but predicted to perform badly (e.g. a transaction
    /// guaranteed to overflow HTM capacity).
    Warning,
}

/// Every finding the verifier layers can produce. The kebab-case string
/// form (see [`DiagCode::as_str`]) is the stable identifier used in lint
/// output, trace events, and the DESIGN.md catalogue.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DiagCode {
    // ---- strict SSA/CFG layer ---------------------------------------------
    /// The entry block has predecessors.
    EntryHasPreds,
    /// A reachable block does not end in a terminator.
    NoTerminator,
    /// A terminator appears before the end of a block.
    MidBlockTerminator,
    /// A phi's input count differs from its block's predecessor count.
    PhiArityMismatch,
    /// A phi appears below a non-phi instruction.
    PhiAfterNonPhi,
    /// A phi input's definition does not dominate the corresponding
    /// predecessor.
    PhiInputUndominated,
    /// An operand's `ValueId` is outside the instruction arena.
    OperandOutOfRange,
    /// An operand references a `Nop` (dead) instruction.
    OperandNop,
    /// An operand is not placed in any block, or its definition does not
    /// dominate the use.
    OperandUndominated,
    /// The same instruction is placed in more than one position.
    DuplicatePlacement,
    /// A block's predecessor list disagrees with the actual CFG edges.
    PredSuccMismatch,

    // ---- transaction-safety layer -----------------------------------------
    /// An `Abort`-mode check can execute with no transaction open.
    AbortOutsideTxn,
    /// `Sof`-mode arithmetic can execute with no transaction open, so no
    /// `XEnd` would ever test the sticky overflow flag.
    SofOutsideTxn,
    /// An `XEnd` can execute with no open transaction.
    XendUnderflow,
    /// Predecessors disagree on the transaction depth entering a block.
    TxnDepthConflict,
    /// A `Return` executes while a transaction opened by this function is
    /// still uncommitted.
    TxnOpenAtReturn,
    /// An `XBegin` carries no OSR fallback state.
    XbeginMissingOsr,
    /// `Sof`-mode arithmetic on a machine whose HTM has no sticky overflow
    /// flag.
    SofUnsupported,

    // ---- bounds-combining translation validation --------------------------
    /// A deleted per-iteration bounds check does not test a proven
    /// monotonic induction variable.
    BoundsNotInduction,
    /// A deleted bounds check's length operand is not loop-invariant.
    BoundsLenVariant,
    /// No extreme-index compensation check covers a deleted bounds check.
    BoundsNoCompensation,
    /// A bounds check was deleted outside any loop.
    BoundsNoLoop,

    // ---- write-footprint estimation ----------------------------------------
    /// The static lower bound on distinct written lines exceeds what the
    /// HTM can buffer: the transaction is guaranteed to capacity-abort.
    CapacityOverflowPredicted,

    // ---- check-elision translation validation ------------------------------
    /// `prove_checks` elided a check whose `ProvedSafe` witness the
    /// validator cannot independently re-derive on the input IR.
    ElisionUnproved,
    /// The range/type analysis proved a reachable check *must* fail: the
    /// code is legal (the check will correctly bail) but the speculation
    /// it protects is statically dead.
    CheckProvedFail,
    /// Census finding: a check never observed failing dynamically that the
    /// static analysis still cannot prove safe — candidate for a stronger
    /// abstract domain.
    CheckQuietUnproved,

    // ---- interprocedural-summary translation validation ---------------------
    /// A claimed return summary is not inductive: re-applying the transfer
    /// function under the claimed summaries produces a return fact outside
    /// the claim.
    IpaReturnNotInductive,
    /// A claimed argument precondition does not cover some in-program call
    /// site's abstract arguments, or a host-reachable root claims a
    /// non-top precondition.
    IpaParamPreconditionUnsound,
    /// A claimed heap-effect class is not inductive: the re-derived effect
    /// (including clobber-ness) sits above the claim in the effect lattice.
    IpaEffectNotInductive,
    /// A claimed bounded write footprint is smaller than the re-derived
    /// line bound — trusting it could admit a transaction that capacity
    /// aborts, or license motion across a bigger write set.
    IpaFootprintUnderclaimed,
}

impl DiagCode {
    /// Stable kebab-case identifier.
    pub fn as_str(&self) -> &'static str {
        use DiagCode::*;
        match self {
            EntryHasPreds => "entry-has-preds",
            NoTerminator => "no-terminator",
            MidBlockTerminator => "mid-block-terminator",
            PhiArityMismatch => "phi-arity-mismatch",
            PhiAfterNonPhi => "phi-after-non-phi",
            PhiInputUndominated => "phi-input-undominated",
            OperandOutOfRange => "operand-out-of-range",
            OperandNop => "operand-nop",
            OperandUndominated => "operand-undominated",
            DuplicatePlacement => "duplicate-placement",
            PredSuccMismatch => "pred-succ-mismatch",
            AbortOutsideTxn => "abort-outside-txn",
            SofOutsideTxn => "sof-outside-txn",
            XendUnderflow => "xend-underflow",
            TxnDepthConflict => "txn-depth-conflict",
            TxnOpenAtReturn => "txn-open-at-return",
            XbeginMissingOsr => "xbegin-missing-osr",
            SofUnsupported => "sof-unsupported",
            BoundsNotInduction => "bounds-not-induction",
            BoundsLenVariant => "bounds-len-variant",
            BoundsNoCompensation => "bounds-no-compensation",
            BoundsNoLoop => "bounds-no-loop",
            CapacityOverflowPredicted => "capacity-overflow-predicted",
            ElisionUnproved => "elision-unproved",
            CheckProvedFail => "check-proved-fail",
            CheckQuietUnproved => "check-quiet-unproved",
            IpaReturnNotInductive => "ipa-return-not-inductive",
            IpaParamPreconditionUnsound => "ipa-param-precondition-unsound",
            IpaEffectNotInductive => "ipa-effect-not-inductive",
            IpaFootprintUnderclaimed => "ipa-footprint-underclaimed",
        }
    }

    /// Severity of this code.
    pub fn severity(&self) -> Severity {
        match self {
            DiagCode::CapacityOverflowPredicted
            | DiagCode::CheckProvedFail
            | DiagCode::CheckQuietUnproved => Severity::Warning,
            _ => Severity::Error,
        }
    }
}

impl fmt::Display for DiagCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One verifier finding, locatable down to a block and instruction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// What was found.
    pub code: DiagCode,
    /// Function name the finding is in.
    pub func: String,
    /// Verification stage that produced it (e.g. `"post-build"`,
    /// `"after:licm"`).
    pub stage: String,
    /// Block, when the finding is block-local.
    pub block: Option<BlockId>,
    /// Instruction, when the finding is instruction-local.
    pub value: Option<ValueId>,
    /// Human-readable explanation.
    pub message: String,
}

impl Diagnostic {
    /// Creates a diagnostic with no stage (filled in by the driver).
    pub fn new(
        code: DiagCode,
        func: &str,
        block: Option<BlockId>,
        value: Option<ValueId>,
        message: String,
    ) -> Self {
        Diagnostic { code, func: func.to_string(), stage: String::new(), block, value, message }
    }

    /// Severity shortcut.
    pub fn severity(&self) -> Severity {
        self.code.severity()
    }

    /// Is this an error (as opposed to a warning)?
    pub fn is_error(&self) -> bool {
        self.severity() == Severity::Error
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let sev = match self.severity() {
            Severity::Error => "error",
            Severity::Warning => "warning",
        };
        write!(f, "{sev}[{}] {}", self.code, self.func)?;
        if !self.stage.is_empty() {
            write!(f, " ({})", self.stage)?;
        }
        if let Some(b) = self.block {
            write!(f, " {b}")?;
        }
        if let Some(v) = self.value {
            write!(f, " {v}")?;
        }
        write!(f, ": {}", self.message)
    }
}

/// True when any diagnostic in the slice is an error.
pub fn has_errors(diags: &[Diagnostic]) -> bool {
    diags.iter().any(Diagnostic::is_error)
}

/// Canonical function label for diagnostics: the stable `FuncId` plus the
/// source-level debug name (`f1:sum`), so findings stay attributable even
/// when two functions share a name or a name is empty.
pub fn func_label(id: nomap_bytecode::FuncId, name: &str) -> String {
    format!("f{}:{name}", id.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_kebab_case_and_unique() {
        let all = [
            DiagCode::EntryHasPreds,
            DiagCode::NoTerminator,
            DiagCode::MidBlockTerminator,
            DiagCode::PhiArityMismatch,
            DiagCode::PhiAfterNonPhi,
            DiagCode::PhiInputUndominated,
            DiagCode::OperandOutOfRange,
            DiagCode::OperandNop,
            DiagCode::OperandUndominated,
            DiagCode::DuplicatePlacement,
            DiagCode::PredSuccMismatch,
            DiagCode::AbortOutsideTxn,
            DiagCode::SofOutsideTxn,
            DiagCode::XendUnderflow,
            DiagCode::TxnDepthConflict,
            DiagCode::TxnOpenAtReturn,
            DiagCode::XbeginMissingOsr,
            DiagCode::SofUnsupported,
            DiagCode::BoundsNotInduction,
            DiagCode::BoundsLenVariant,
            DiagCode::BoundsNoCompensation,
            DiagCode::BoundsNoLoop,
            DiagCode::CapacityOverflowPredicted,
            DiagCode::ElisionUnproved,
            DiagCode::CheckProvedFail,
            DiagCode::CheckQuietUnproved,
            DiagCode::IpaReturnNotInductive,
            DiagCode::IpaParamPreconditionUnsound,
            DiagCode::IpaEffectNotInductive,
            DiagCode::IpaFootprintUnderclaimed,
        ];
        let mut seen = std::collections::HashSet::new();
        for c in all {
            let s = c.as_str();
            assert!(s.chars().all(|ch| ch.is_ascii_lowercase() || ch == '-'), "{s}");
            assert!(seen.insert(s), "duplicate code string {s}");
        }
    }

    /// Every diagnostic code must have a row in the DESIGN.md §6
    /// catalogue (`| `code` | layer | severity | meaning |`), and the
    /// catalogue must not advertise codes that no longer exist — the
    /// documented taxonomy and the enum drift-lock each other.
    #[test]
    fn catalogue_matches_design_doc() {
        let design = include_str!("../../../DESIGN.md");
        let all = [
            DiagCode::EntryHasPreds,
            DiagCode::NoTerminator,
            DiagCode::MidBlockTerminator,
            DiagCode::PhiArityMismatch,
            DiagCode::PhiAfterNonPhi,
            DiagCode::PhiInputUndominated,
            DiagCode::OperandOutOfRange,
            DiagCode::OperandNop,
            DiagCode::OperandUndominated,
            DiagCode::DuplicatePlacement,
            DiagCode::PredSuccMismatch,
            DiagCode::AbortOutsideTxn,
            DiagCode::SofOutsideTxn,
            DiagCode::XendUnderflow,
            DiagCode::TxnDepthConflict,
            DiagCode::TxnOpenAtReturn,
            DiagCode::XbeginMissingOsr,
            DiagCode::SofUnsupported,
            DiagCode::BoundsNotInduction,
            DiagCode::BoundsLenVariant,
            DiagCode::BoundsNoCompensation,
            DiagCode::BoundsNoLoop,
            DiagCode::CapacityOverflowPredicted,
            DiagCode::ElisionUnproved,
            DiagCode::CheckProvedFail,
            DiagCode::CheckQuietUnproved,
            DiagCode::IpaReturnNotInductive,
            DiagCode::IpaParamPreconditionUnsound,
            DiagCode::IpaEffectNotInductive,
            DiagCode::IpaFootprintUnderclaimed,
        ];
        for c in all {
            let row = format!("| `{}` |", c.as_str());
            assert!(
                design.contains(&row),
                "DESIGN.md catalogue missing a row for `{}`",
                c.as_str()
            );
        }
        // Reverse direction: every documented code still exists.
        let known: std::collections::HashSet<&str> = all.iter().map(|c| c.as_str()).collect();
        for line in design.lines() {
            let Some(rest) = line.strip_prefix("  | `") else { continue };
            let Some(code) = rest.split('`').next() else { continue };
            if code.chars().all(|ch| ch.is_ascii_lowercase() || ch == '-') && code.contains('-') {
                assert!(known.contains(code), "DESIGN.md catalogue row `{code}` has no DiagCode");
            }
        }
    }

    #[test]
    fn display_mentions_code_and_location() {
        let d = Diagnostic::new(
            DiagCode::OperandNop,
            "f",
            Some(BlockId(2)),
            Some(ValueId(7)),
            "v7 uses dead v3".into(),
        );
        let s = d.to_string();
        assert!(s.contains("operand-nop") && s.contains('f'));
        assert!(d.is_error());
        assert!(!Diagnostic::new(
            DiagCode::CapacityOverflowPredicted,
            "f",
            None,
            None,
            String::new()
        )
        .is_error());
    }
}
