//! `nomap-verify` — static analysis for the NoMap JIT.
//!
//! NoMap's speedup comes from *deleting* checks inside hardware
//! transactions: SMPs become aborts, per-iteration bounds checks collapse
//! into one extreme-index check (§IV-C1), overflow checks dissolve into
//! the sticky overflow flag (§IV-C2). Every one of those deletions is a
//! soundness bet. This crate turns the bets into machine-checked
//! invariants, in five layers:
//!
//! 1. [`ssa::verify_ssa`] — strict dominance-based SSA/CFG verification,
//!    run between every optimization pass under the pass sanitizer;
//! 2. [`txn::check_txn_safety`] — proves every abort-mode check and every
//!    SOF update executes under an `XBegin` and unwinds through an `XEnd`;
//! 3. [`bounds_tv::validate_bounds_combining`] — translation validation
//!    re-proving each deleted bounds check from the `scev` facts;
//! 4. [`absint_tv::validate_check_elision`] — translation validation for
//!    proof-carrying check elision, re-deriving every `ProvedSafe` witness
//!    of the `prove_checks` pass with an independent abstract-interpreter
//!    run;
//! 5. [`footprint::estimate_footprint`] — a static write-footprint lower
//!    bound that predicts guaranteed HTM capacity aborts and seeds the
//!    §V-C transaction-scope ladder;
//! 6. [`ipa_tv::validate_summaries`] — translation validation for the
//!    interprocedural summary table, checking that every claimed
//!    return/precondition/effect/footprint fact is a post-fixpoint of the
//!    summary transfer function re-applied from scratch.
//!
//! All layers speak [`diag::Diagnostic`], the structured currency of the
//! `nomap lint` CLI, trace events, and CI.

pub mod absint_tv;
pub mod bounds_tv;
pub mod diag;
pub mod footprint;
pub mod ipa_tv;
pub mod ssa;
pub mod txn;

pub use absint_tv::{check_fail_warnings, validate_check_elision};
pub use bounds_tv::validate_bounds_combining;
pub use diag::{func_label, has_errors, DiagCode, Diagnostic, Severity};
pub use footprint::{
    estimate_footprint, estimate_footprint_with, FootprintEstimate, LoopFootprint, ScopeAdvice,
};
pub use ipa_tv::validate_summaries;
pub use ssa::verify_ssa;
pub use txn::check_txn_safety;

/// Convenience: the full static gauntlet for one function at a fixed
/// transaction entry depth — strict SSA plus transaction safety. (Bounds
/// translation validation needs a before/after pair and footprint needs an
/// HTM model; callers invoke those layers directly.)
pub fn verify_func(f: &nomap_ir::IrFunc, entry_depth: u32, sof_allowed: bool) -> Vec<Diagnostic> {
    let mut diags = verify_ssa(f);
    if diags.is_empty() {
        // Depth dataflow assumes a structurally sound CFG.
        diags.extend(check_txn_safety(f, entry_depth, sof_allowed));
    }
    diags
}
