//! Layer 1: strict SSA/CFG verification.
//!
//! Goes beyond the cheap `IrFunc::verify` structural scan by computing
//! dominators and proving:
//!
//! * **def-before-use** — every operand (including the OSR register
//!   snapshots of stack map points) is defined at a program point that
//!   dominates the use;
//! * **phi/pred correspondence** — each phi input's definition dominates
//!   the end of the corresponding predecessor, in predecessor-list order,
//!   which is exactly the invariant `redirect_edge`/`split_edge` must
//!   maintain;
//! * **placement discipline** — every referenced value is placed exactly
//!   once, terminators close blocks, the entry has no predecessors, and
//!   predecessor lists agree edge-for-edge (as multisets) with the actual
//!   successor structure.
//!
//! Unreachable blocks are skipped for the dominance-based checks (passes
//! legitimately strand them) but still participate in the structural edge
//! checks when non-empty.

use nomap_ir::analysis::Dominators;
use nomap_ir::{BlockId, InstKind, IrFunc, ValueId};

use crate::diag::{DiagCode, Diagnostic};

/// Where (if anywhere) each value is placed.
struct Placement {
    /// `ValueId → (block, index)`; `None` when unplaced or duplicated.
    slot: Vec<Option<(BlockId, u32)>>,
}

/// Runs the strict verifier; returns every finding (empty = clean).
pub fn verify_ssa(f: &IrFunc) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    let doms = Dominators::compute(f);

    if !f.blocks[f.entry.0 as usize].preds.is_empty() {
        diags.push(Diagnostic::new(
            DiagCode::EntryHasPreds,
            &f.name,
            Some(f.entry),
            None,
            format!("entry has {} predecessor(s)", f.blocks[f.entry.0 as usize].preds.len()),
        ));
    }

    let placement = place_values(f, &mut diags);
    check_structure(f, &doms, &mut diags);
    check_uses(f, &doms, &placement, &mut diags);
    diags
}

/// Builds the placement map, flagging duplicates.
fn place_values(f: &IrFunc, diags: &mut Vec<Diagnostic>) -> Placement {
    let mut slot: Vec<Option<(BlockId, u32)>> = vec![None; f.insts.len()];
    let mut dup = vec![false; f.insts.len()];
    for (bi, b) in f.blocks.iter().enumerate() {
        for (i, &v) in b.insts.iter().enumerate() {
            if v.0 as usize >= slot.len() {
                continue; // flagged as out-of-range at the use site
            }
            if slot[v.0 as usize].is_some() {
                dup[v.0 as usize] = true;
            } else {
                slot[v.0 as usize] = Some((BlockId(bi as u32), i as u32));
            }
        }
    }
    for (vi, &d) in dup.iter().enumerate() {
        if d {
            let v = ValueId(vi as u32);
            diags.push(Diagnostic::new(
                DiagCode::DuplicatePlacement,
                &f.name,
                slot[vi].map(|(b, _)| b),
                Some(v),
                format!("{v} is placed more than once"),
            ));
            slot[vi] = None;
        }
    }
    Placement { slot }
}

/// Terminator, phi-shape, and edge/pred agreement checks.
fn check_structure(f: &IrFunc, doms: &Dominators, diags: &mut Vec<Diagnostic>) {
    for (bi, b) in f.blocks.iter().enumerate() {
        let bid = BlockId(bi as u32);
        if b.insts.is_empty() {
            if doms.reachable(bid) && bid != f.entry {
                diags.push(Diagnostic::new(
                    DiagCode::NoTerminator,
                    &f.name,
                    Some(bid),
                    None,
                    format!("reachable {bid} is empty"),
                ));
            }
            continue;
        }
        let last = *b.insts.last().unwrap();
        if !f.inst(last).is_terminator() {
            diags.push(Diagnostic::new(
                DiagCode::NoTerminator,
                &f.name,
                Some(bid),
                Some(last),
                format!("{bid} does not end in a terminator"),
            ));
        }
        let mut seen_non_phi = false;
        for (i, &v) in b.insts.iter().enumerate() {
            let inst = f.inst(v);
            if inst.is_terminator() && i + 1 != b.insts.len() {
                diags.push(Diagnostic::new(
                    DiagCode::MidBlockTerminator,
                    &f.name,
                    Some(bid),
                    Some(v),
                    format!("terminator {v} in the middle of {bid}"),
                ));
            }
            match &inst.kind {
                InstKind::Phi { inputs, .. } => {
                    if seen_non_phi {
                        diags.push(Diagnostic::new(
                            DiagCode::PhiAfterNonPhi,
                            &f.name,
                            Some(bid),
                            Some(v),
                            format!("phi {v} below a non-phi instruction"),
                        ));
                    }
                    if inputs.len() != b.preds.len() {
                        diags.push(Diagnostic::new(
                            DiagCode::PhiArityMismatch,
                            &f.name,
                            Some(bid),
                            Some(v),
                            format!(
                                "phi {v} has {} inputs but {bid} has {} preds",
                                inputs.len(),
                                b.preds.len()
                            ),
                        ));
                    }
                }
                InstKind::Nop => {}
                _ => seen_non_phi = true,
            }
        }
        // Edge/pred multiset agreement, both directions.
        for s in f.succ_iter(bid) {
            if s.0 as usize >= f.blocks.len() {
                diags.push(Diagnostic::new(
                    DiagCode::PredSuccMismatch,
                    &f.name,
                    Some(bid),
                    None,
                    format!("{bid} targets out-of-range {s}"),
                ));
                continue;
            }
            let edges = f.succ_iter(bid).filter(|&x| x == s).count();
            let entries = f.blocks[s.0 as usize].preds.iter().filter(|&&p| p == bid).count();
            if edges != entries {
                diags.push(Diagnostic::new(
                    DiagCode::PredSuccMismatch,
                    &f.name,
                    Some(bid),
                    None,
                    format!("{edges} edge(s) {bid} → {s} but {entries} pred entr(y/ies)"),
                ));
            }
        }
        for &p in &b.preds {
            if p.0 as usize >= f.blocks.len() || !f.succ_iter(p).any(|s| s == bid) {
                diags.push(Diagnostic::new(
                    DiagCode::PredSuccMismatch,
                    &f.name,
                    Some(bid),
                    None,
                    format!("{bid} lists pred {p} but {p} has no edge to it"),
                ));
            }
        }
    }
}

/// Dominance-based def-before-use for operands, OSR snapshots, and phi
/// inputs (checked against the corresponding predecessor).
fn check_uses(f: &IrFunc, doms: &Dominators, placement: &Placement, diags: &mut Vec<Diagnostic>) {
    for &bid in &doms.rpo {
        let b = &f.blocks[bid.0 as usize];
        for (i, &v) in b.insts.iter().enumerate() {
            let inst = f.inst(v);
            if matches!(inst.kind, InstKind::Nop) {
                continue;
            }
            if let InstKind::Phi { inputs, .. } = &inst.kind {
                if inputs.len() != b.preds.len() {
                    continue; // arity already reported; positions are meaningless
                }
                for (j, &input) in inputs.iter().enumerate() {
                    let pred = b.preds[j];
                    if let Some(code) = check_operand(f, doms, placement, input, None) {
                        push_use_diag(f, diags, code, bid, v, input, "phi input");
                        continue;
                    }
                    let (db, _) = placement.slot[input.0 as usize].unwrap();
                    if !doms.reachable(pred) || !doms.dominates(db, pred) {
                        diags.push(Diagnostic::new(
                            DiagCode::PhiInputUndominated,
                            &f.name,
                            Some(bid),
                            Some(v),
                            format!(
                                "phi {v} input {input} (from {db}) does not dominate \
                                 predecessor {pred}"
                            ),
                        ));
                    }
                }
            } else {
                for op in inst.operands() {
                    if let Some(code) = check_operand(f, doms, placement, op, Some((bid, i as u32)))
                    {
                        push_use_diag(f, diags, code, bid, v, op, "operand");
                    }
                }
            }
            // OSR register snapshots are materialized at the deopt point, so
            // they need to dominate the instruction exactly like operands.
            if let Some(osr) = &inst.osr {
                for op in osr.regs.iter().flatten() {
                    if let Some(code) =
                        check_operand(f, doms, placement, *op, Some((bid, i as u32)))
                    {
                        push_use_diag(f, diags, code, bid, v, *op, "OSR register");
                    }
                }
            }
        }
    }
}

fn push_use_diag(
    f: &IrFunc,
    diags: &mut Vec<Diagnostic>,
    code: DiagCode,
    bid: BlockId,
    user: ValueId,
    used: ValueId,
    role: &str,
) {
    diags.push(Diagnostic::new(
        code,
        &f.name,
        Some(bid),
        Some(user),
        format!("{user} {role} {used}: {}", code.as_str()),
    ));
}

/// Checks one use; `at` is the use position for straight-line dominance
/// (`None` for phi inputs, whose position check happens at the edge).
fn check_operand(
    f: &IrFunc,
    doms: &Dominators,
    placement: &Placement,
    op: ValueId,
    at: Option<(BlockId, u32)>,
) -> Option<DiagCode> {
    if op.0 as usize >= f.insts.len() {
        return Some(DiagCode::OperandOutOfRange);
    }
    if matches!(f.inst(op).kind, InstKind::Nop) {
        return Some(DiagCode::OperandNop);
    }
    let Some((db, dp)) = placement.slot[op.0 as usize] else {
        return Some(DiagCode::OperandUndominated);
    };
    if let Some((ub, up)) = at {
        let ok = if db == ub { dp < up } else { doms.reachable(db) && doms.dominates(db, ub) };
        if !ok {
            return Some(DiagCode::OperandUndominated);
        }
    }
    None
}
