//! Layer 4: static write-footprint estimation (§V-C seeding).
//!
//! The runtime transaction ladder (`Nest → Inner → InnerTiled → None`)
//! discovers HTM capacity limits *empirically*: each rung costs a capacity
//! abort, a rollback, and a recompile. Much of that is statically
//! predictable. For every innermost loop this estimator derives a **proven
//! lower bound** on the distinct cache lines the loop's element stores
//! write per full execution:
//!
//! * the trip count must be a compile-time constant (constant-bounded
//!   header compare over a `scev` induction variable with constant init);
//! * only stores that execute on every iteration (their block dominates a
//!   latch) and whose address is an affine function of the induction
//!   variable are counted — everything else contributes zero, keeping the
//!   bound sound;
//! * evenly-spaced lines spread over the write cache's sets round-robin,
//!   so by pigeonhole `lines > sets × ways` guarantees some set overflows
//!   its associativity — the exact capacity-abort condition of
//!   [`nomap_machine::HtmModel`].
//!
//! When the bound proves a guaranteed abort, the estimator recommends the
//! ladder rung that would actually fit: a strip-mine tile sized to half
//! the write capacity, or no transaction at all when the loop calls out
//! (the ladder blames callees for overflows, per the paper). A wrong
//! *non-proof* merely leaves the runtime ladder to do its usual job; the
//! recommendation never loosens safety, only skips predictably-doomed
//! rungs.

use nomap_ir::analysis::{find_loops, loop_has_call, Dominators, Loop};
use nomap_ir::scev::{induction_vars, IndVar};
use nomap_ir::{BlockId, InstKind, IrFunc};
use nomap_machine::HtmModel;
use nomap_runtime::WORD_BYTES;

use crate::diag::{func_label, DiagCode, Diagnostic};

/// What the estimator recommends for the initial `TxnScope`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScopeAdvice {
    /// No proven overflow: keep whatever scope the ladder would start at.
    Keep,
    /// Innermost transactions overflow; start strip-mined at this tile.
    Tile(u32),
    /// An overflowing loop contains a call: start with no transactions.
    Disable,
}

/// Footprint facts for one innermost loop.
#[derive(Debug, Clone, Copy)]
pub struct LoopFootprint {
    /// Loop header.
    pub header: BlockId,
    /// Constant trip count, when proven.
    pub trip: Option<u32>,
    /// Proven-distinct cache lines written per full loop execution.
    pub lines_lower_bound: u64,
    /// Bytes of proven element-store traffic per iteration.
    pub bytes_per_iter: u64,
    /// Whether the loop contains a call.
    pub has_call: bool,
    /// Whether the lower bound exceeds the HTM's write capacity.
    pub overflows: bool,
}

/// The whole estimate.
#[derive(Debug, Clone)]
pub struct FootprintEstimate {
    /// Per-innermost-loop facts.
    pub loops: Vec<LoopFootprint>,
    /// Total lines the write cache can buffer (`sets × ways`).
    pub capacity_lines: u64,
    /// Recommended initial scope.
    pub advice: ScopeAdvice,
    /// `capacity-overflow-predicted` warnings, one per overflowing loop.
    pub diags: Vec<Diagnostic>,
}

/// Estimates the write footprint of every innermost loop of `f` against
/// `model` and recommends an initial transaction scope, without
/// interprocedural context: any call in an overflowing loop disables
/// transactions.
pub fn estimate_footprint(f: &IrFunc, model: &HtmModel) -> FootprintEstimate {
    estimate_footprint_with(f, model, None)
}

/// [`estimate_footprint`] with optional interprocedural summaries: an
/// overflowing loop whose calls all have a *bounded* write footprint
/// (runtime helpers by signature, MiniJS callees by validated summary) is
/// strip-mined instead of blamed wholesale — the callee's bounded line
/// budget just joins the per-iteration traffic when sizing the tile. Only
/// a call that may write unboundedly (or has no summary) still forces
/// [`ScopeAdvice::Disable`].
pub fn estimate_footprint_with(
    f: &IrFunc,
    model: &HtmModel,
    ipa: Option<&nomap_ir::ipa::ProgramSummaries>,
) -> FootprintEstimate {
    let cache = model.write_cache;
    let capacity_lines = cache.sets() * cache.ways as u64;
    let doms = Dominators::compute(f);
    let loops = find_loops(f, &doms);
    let mut out = Vec::new();
    let mut diags = Vec::new();
    let mut advice = ScopeAdvice::Keep;

    for l in &loops {
        let innermost = !loops.iter().any(|l2| l2.header != l.header && l.contains(l2.header));
        if !innermost {
            continue;
        }
        let ivs = induction_vars(f, l);
        let trip = constant_trip(f, l, &ivs);
        let has_call = loop_has_call(f, l);
        let mut bytes_per_iter = 0u64;
        let mut lines = 0u64;
        for &b in &l.body {
            // Only stores guaranteed to run every iteration count toward
            // the lower bound.
            if !l.latches.iter().any(|&latch| doms.dominates(b, latch)) {
                continue;
            }
            for &v in &f.blocks[b.0 as usize].insts {
                let InstKind::StoreElem { index, .. } = f.inst(v).kind else { continue };
                let Some(iv) = ivs.iter().find(|iv| iv.phi == index || iv.update == index) else {
                    continue;
                };
                let stride = iv.step.unsigned_abs() as u64 * WORD_BYTES;
                bytes_per_iter += WORD_BYTES;
                if let Some(n) = trip {
                    lines += store_lines(n as u64, stride, cache.line_bytes);
                }
            }
        }
        let overflows = lines > capacity_lines;
        if overflows {
            diags.push(Diagnostic::new(
                DiagCode::CapacityOverflowPredicted,
                &func_label(f.func, &f.name),
                Some(l.header),
                None,
                format!(
                    "loop at {} writes ≥ {lines} distinct lines per transaction but the \
                     HTM buffers at most {capacity_lines}: guaranteed capacity abort",
                    l.header
                ),
            ));
            let next = if !has_call {
                ScopeAdvice::Tile(pick_tile(bytes_per_iter, &cache))
            } else if let Some(callee_lines) = loop_call_write_lines(f, l, ipa) {
                // Callee-inclusive bound: every call in the loop writes a
                // bounded number of lines, so strip-mining still works —
                // the callee budget just fattens the per-iteration traffic.
                ScopeAdvice::Tile(pick_tile(
                    bytes_per_iter + callee_lines * cache.line_bytes,
                    &cache,
                ))
            } else {
                ScopeAdvice::Disable
            };
            advice = merge_advice(advice, next);
        }
        out.push(LoopFootprint {
            header: l.header,
            trip,
            lines_lower_bound: lines,
            bytes_per_iter,
            has_call,
            overflows,
        });
    }
    FootprintEstimate { loops: out, capacity_lines, advice, diags }
}

/// Total bounded write-line budget of all calls in the loop body per
/// iteration, or `None` when any call may write unboundedly (runtime
/// helpers judged by their typed signature, MiniJS callees by their
/// callee-inclusive summary — absent summaries are unbounded).
fn loop_call_write_lines(
    f: &IrFunc,
    l: &Loop,
    ipa: Option<&nomap_ir::ipa::ProgramSummaries>,
) -> Option<u64> {
    let mut lines = 0u64;
    for &b in &l.body {
        for &v in &f.blocks[b.0 as usize].insts {
            match &f.inst(v).kind {
                InstKind::CallRuntime { func, .. } => {
                    lines += func.signature().effect.write_lines()? as u64;
                }
                InstKind::CallJs { callee, .. } => {
                    lines += ipa?.get(*callee)?.write_lines()? as u64;
                }
                _ => {}
            }
        }
    }
    Some(lines)
}

/// Lower bound on distinct cache lines touched by `n` stores spaced
/// `stride` bytes apart.
fn store_lines(n: u64, stride: u64, line_bytes: u64) -> u64 {
    if n == 0 || stride == 0 {
        return 0;
    }
    if stride >= line_bytes {
        n
    } else {
        // Evenly spaced within lines: floor undercounts by at most one
        // line, keeping the bound sound.
        n * stride / line_bytes
    }
}

/// A strip-mine tile whose per-transaction footprint targets half the
/// write capacity (headroom for field stores the bound ignored), clamped
/// to a sane range.
fn pick_tile(bytes_per_iter: u64, cache: &nomap_machine::CacheConfig) -> u32 {
    let budget = cache.size_bytes / 2;
    let t = budget.checked_div(bytes_per_iter).unwrap_or(u64::MAX);
    t.clamp(16, 256) as u32
}

fn merge_advice(a: ScopeAdvice, b: ScopeAdvice) -> ScopeAdvice {
    use ScopeAdvice::*;
    match (a, b) {
        (Disable, _) | (_, Disable) => Disable,
        (Tile(x), Tile(y)) => Tile(x.min(y)),
        (Tile(x), Keep) | (Keep, Tile(x)) => Tile(x),
        (Keep, Keep) => Keep,
    }
}

/// Constant trip count from the header's exit compare, when the bound,
/// the induction variable's init, and its step are all compile-time
/// constants.
fn constant_trip(f: &IrFunc, l: &Loop, ivs: &[IndVar]) -> Option<u32> {
    let header = &f.blocks[l.header.0 as usize];
    let &term = header.insts.last()?;
    let InstKind::Branch { cond, then_b, else_b } = f.inst(term).kind else { return None };
    // One arm must leave the loop; `cond` keeps iterating on the other.
    let body_on_true = l.contains(then_b) && !l.contains(else_b);
    let exit_on_true = !l.contains(then_b) && l.contains(else_b);
    if !body_on_true && !exit_on_true {
        return None;
    }
    let InstKind::ICmp { cond: cc, a, b } = f.inst(cond).kind else { return None };
    let iv = ivs.iter().find(|iv| iv.phi == a)?;
    let init = const_i32(f, iv.init)?;
    let bound = const_i32(f, b)?;
    use nomap_machine::Cond;
    let step = iv.step;
    // Normalize to "continue while phi CC bound".
    let (cc, negated) = if body_on_true { (cc, false) } else { (cc, true) };
    let trip = match (cc, negated, step > 0) {
        // while (phi < bound), step > 0
        (Cond::Lt, false, true) | (Cond::AboveEq, true, true) => {
            ceil_div((bound as i64) - (init as i64), step as i64)
        }
        // while (phi <= bound), step > 0
        (Cond::Le, false, true) | (Cond::Gt, true, true) => {
            ceil_div((bound as i64) - (init as i64) + 1, step as i64)
        }
        // while (phi > bound), step < 0
        (Cond::Gt, false, false) | (Cond::Le, true, false) => {
            ceil_div((init as i64) - (bound as i64), -(step as i64))
        }
        // while (phi >= bound), step < 0
        (Cond::Ge, false, false) | (Cond::Lt, true, false) => {
            ceil_div((init as i64) - (bound as i64) + 1, -(step as i64))
        }
        _ => return None,
    };
    u32::try_from(trip.max(0)).ok()
}

fn ceil_div(a: i64, b: i64) -> i64 {
    if a <= 0 {
        0
    } else {
        (a + b - 1) / b
    }
}

fn const_i32(f: &IrFunc, v: nomap_ir::ValueId) -> Option<i32> {
    match f.inst(v).kind {
        InstKind::ConstI32(c) => Some(c),
        InstKind::Const(val) if val.is_int32() => Some(val.as_int32()),
        _ => None,
    }
}
