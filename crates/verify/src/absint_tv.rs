//! Translation validation for proof-carrying check elision.
//!
//! `prove_checks` runs the range/type abstract interpreter
//! (`nomap_ir::absint`) and deletes every check it proves infeasible:
//! standalone `Guard`s become `Nop`, value-producing checks flip to
//! [`CheckMode::Removed`]. This validator refuses to trust the pass — it
//! re-runs the analysis from scratch on the *input* IR, recomputes the
//! deleted set by direct arena comparison (passes edit instructions in
//! place, so `ValueId`s are stable), and demands an independent
//! `ProvedSafe` witness for every deletion. A deletion whose witness does
//! not re-derive is an [`DiagCode::ElisionUnproved`] error, which the
//! audited compile pipelines treat exactly like an SSA verifier failure.

use nomap_ir::absint::{analyze, analyze_with, Verdict};
use nomap_ir::ipa::ProgramSummaries;
use nomap_ir::{BlockId, CheckMode, InstKind, IrFunc, ValueId};

use crate::diag::{func_label, DiagCode, Diagnostic};

/// Validates one application of `prove_checks`: `before` is the IR
/// immediately prior to the pass, `after` immediately after. `ipa` must
/// be the *same* interprocedural context the pass ran with (None for an
/// intraprocedural run) — the summaries themselves are vouched for
/// separately by `ipa_tv`, so the validator may consume them while still
/// re-deriving every per-check witness independently. Returns one
/// diagnostic per elided check whose safety proof cannot be re-derived.
pub fn validate_check_elision(
    before: &IrFunc,
    after: &IrFunc,
    ipa: Option<&ProgramSummaries>,
) -> Vec<Diagnostic> {
    let n = before.insts.len().min(after.insts.len()) as u32;
    let deleted: Vec<ValueId> = (0..n)
        .map(ValueId)
        .filter(|&v| {
            let b = before.inst(v);
            if b.check_kind().is_none() {
                // Only Deopt/Abort-mode checks can have been elided here.
                return false;
            }
            let a = after.inst(v);
            if matches!(b.kind, InstKind::Guard { .. }) {
                matches!(a.kind, InstKind::Nop)
            } else {
                a.check_mode() == Some(CheckMode::Removed)
            }
        })
        .collect();
    if deleted.is_empty() {
        return Vec::new();
    }

    let facts = analyze_with(before, ipa);
    let mut diags = Vec::new();
    for v in deleted {
        match facts.verdicts.get(&v) {
            Some(Verdict::ProvedSafe { .. }) => {}
            found => {
                let found = match found {
                    None => "no verdict (check unreachable or unanalyzed)",
                    Some(Verdict::ProvedFail) => "ProvedFail",
                    Some(Verdict::Unknown) => "Unknown",
                    Some(Verdict::ProvedSafe { .. }) => unreachable!(),
                };
                diags.push(Diagnostic::new(
                    DiagCode::ElisionUnproved,
                    &func_label(before.func, &before.name),
                    block_of(before, v),
                    Some(v),
                    format!(
                        "elided check {v} has no re-derivable ProvedSafe witness \
                         (independent analysis says: {found})"
                    ),
                ));
            }
        }
    }
    diags
}

/// Census-facing companion: warnings for every reachable check the
/// analysis proves *must* fail. Such code is legal — the check will
/// correctly bail — but the speculation it protects is statically dead,
/// which is worth surfacing through `nomap lint` and the check census.
pub fn check_fail_warnings(f: &IrFunc) -> Vec<Diagnostic> {
    let facts = analyze(f);
    facts
        .verdicts
        .iter()
        .filter(|(_, verdict)| **verdict == Verdict::ProvedFail)
        .map(|(&v, _)| {
            Diagnostic::new(
                DiagCode::CheckProvedFail,
                &func_label(f.func, &f.name),
                block_of(f, v),
                Some(v),
                format!(
                    "check {v} fires on every execution that reaches it; \
                     the speculative fast path behind it is statically dead"
                ),
            )
        })
        .collect()
}

fn block_of(f: &IrFunc, v: ValueId) -> Option<BlockId> {
    f.blocks.iter().enumerate().find(|(_, b)| b.insts.contains(&v)).map(|(i, _)| BlockId(i as u32))
}

#[cfg(test)]
mod tests {
    use nomap_bytecode::FuncId;
    use nomap_ir::node::{Inst, Ty};
    use nomap_ir::passes::{prove_checks, prove_checks_unsound};
    use nomap_machine::{CheckKind, Cond};
    use nomap_runtime::Value;

    use super::*;

    /// `for (i = 0; i < n; i++)` with an opaque `n`: the counter increment
    /// is provably overflow-free, the accumulator `s += i` is not.
    fn counting_loop() -> (IrFunc, ValueId, ValueId) {
        use InstKind::*;
        let mut f = IrFunc::new(FuncId(0), "t", 1, 4);
        let entry = f.entry;
        let header = f.new_block();
        let body = f.new_block();
        let exit = f.new_block();

        let nb = f.append(entry, Inst::new(Param(0)));
        let n = f.append(entry, Inst::new(CheckInt32 { v: nb, mode: CheckMode::Deopt }));
        let zero = f.append(entry, Inst::new(ConstI32(0)));
        let one = f.append(entry, Inst::new(ConstI32(1)));
        f.append(entry, Inst::new(Jump { target: header }));

        let i_phi = f.append(header, Inst::new(Phi { inputs: vec![zero], ty: Ty::I32 }));
        let s_phi = f.append(header, Inst::new(Phi { inputs: vec![zero], ty: Ty::I32 }));
        let cmp = f.append(header, Inst::new(ICmp { cond: Cond::Lt, a: i_phi, b: n }));
        f.append(header, Inst::new(Branch { cond: cmp, then_b: body, else_b: exit }));

        let sum =
            f.append(body, Inst::new(CheckedAddI32 { a: s_phi, b: i_phi, mode: CheckMode::Deopt }));
        let inc =
            f.append(body, Inst::new(CheckedAddI32 { a: i_phi, b: one, mode: CheckMode::Deopt }));
        f.append(body, Inst::new(Jump { target: header }));
        if let Phi { inputs, .. } = &mut f.inst_mut(i_phi).kind {
            inputs.push(inc);
        }
        if let Phi { inputs, .. } = &mut f.inst_mut(s_phi).kind {
            inputs.push(sum);
        }

        let rb = f.append(exit, Inst::new(BoxI32(s_phi)));
        f.append(exit, Inst::new(Return { v: rb }));
        f.compute_preds();
        f.verify().unwrap();
        (f, inc, sum)
    }

    #[test]
    fn sound_elisions_validate_cleanly() {
        let (before, inc, sum) = counting_loop();
        let mut after = before.clone();
        let stats = prove_checks(&mut after);
        assert!(stats.total_elided() >= 1, "stats {stats:?}");
        assert_eq!(after.inst(inc).check_mode(), Some(CheckMode::Removed));
        // The unbounded accumulator must keep its check.
        assert_eq!(after.inst(sum).check_mode(), Some(CheckMode::Deopt));
        assert!(validate_check_elision(&before, &after, None).is_empty());
    }

    #[test]
    fn mutation_unsound_elision_is_caught() {
        let (before, _, _) = counting_loop();
        let mut after = before.clone();
        let stats = prove_checks_unsound(&mut after);
        assert!(stats.total_elided() > stats.total_proved_safe(), "stats {stats:?}");
        // The unsound pass deleted some check without a ProvedSafe verdict;
        // the validator must reject exactly that deletion.
        let diags = validate_check_elision(&before, &after, None);
        assert_eq!(diags.len(), 1, "diags {diags:?}");
        assert_eq!(diags[0].code, DiagCode::ElisionUnproved);
        assert!(crate::diag::has_errors(&diags));
    }

    #[test]
    fn hand_deleted_guard_is_caught_too() {
        use InstKind::*;
        // A bounds-style guard on an opaque index: never provable.
        let mut f = IrFunc::new(FuncId(0), "t", 1, 2);
        let p = f.append(f.entry, Inst::new(Param(0)));
        let idx = f.append(f.entry, Inst::new(CheckInt32 { v: p, mode: CheckMode::Deopt }));
        let len = f.append(f.entry, Inst::new(ConstI32(8)));
        let oob = f.append(f.entry, Inst::new(ICmp { cond: Cond::AboveEq, a: idx, b: len }));
        let g = f.append(
            f.entry,
            Inst::new(Guard { kind: CheckKind::Bounds, cond: oob, mode: CheckMode::Deopt }),
        );
        let u = f.append(f.entry, Inst::new(Const(Value::UNDEFINED)));
        f.append(f.entry, Inst::new(Return { v: u }));
        f.compute_preds();
        let before = f.clone();
        f.inst_mut(g).kind = Nop;
        let diags = validate_check_elision(&before, &f, None);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, DiagCode::ElisionUnproved);
    }

    #[test]
    fn proved_fail_checks_warn() {
        use InstKind::*;
        // Inside `if (x < 10)`, the guard condition `x < 100` is provably
        // true: the guard always fires.
        let mut f = IrFunc::new(FuncId(0), "t", 1, 2);
        let then_b = f.new_block();
        let exit = f.new_block();
        let p = f.append(f.entry, Inst::new(Param(0)));
        let x = f.append(f.entry, Inst::new(CheckInt32 { v: p, mode: CheckMode::Deopt }));
        let ten = f.append(f.entry, Inst::new(ConstI32(10)));
        let hundred = f.append(f.entry, Inst::new(ConstI32(100)));
        let cmp = f.append(f.entry, Inst::new(ICmp { cond: Cond::Lt, a: x, b: ten }));
        f.append(f.entry, Inst::new(Branch { cond: cmp, then_b, else_b: exit }));
        let lt100 = f.append(then_b, Inst::new(ICmp { cond: Cond::Lt, a: x, b: hundred }));
        let g = f.append(
            then_b,
            Inst::new(Guard { kind: CheckKind::Other, cond: lt100, mode: CheckMode::Deopt }),
        );
        f.append(then_b, Inst::new(Jump { target: exit }));
        let u = f.append(exit, Inst::new(Const(Value::UNDEFINED)));
        f.append(exit, Inst::new(Return { v: u }));
        f.compute_preds();
        f.verify().unwrap();

        let warns = check_fail_warnings(&f);
        assert_eq!(warns.len(), 1, "warns {warns:?}");
        assert_eq!(warns[0].code, DiagCode::CheckProvedFail);
        assert_eq!(warns[0].value, Some(g));
        assert!(!warns[0].is_error());
    }
}
