//! Layer 2: transaction-safety checking.
//!
//! NoMap's check conversion (SMP → abort, §IV-B) and SOF-based overflow
//! removal (§IV-C2) are only sound while a transaction is open:
//!
//! * an `Abort`-mode check that fails with no transaction has nothing to
//!   roll back — memory written since the (nonexistent) `XBegin` stays;
//! * `Sof`-mode arithmetic relies on the **outermost `XEnd`** testing the
//!   sticky overflow flag; if control can reach the arithmetic outside any
//!   transaction, the overflow is silently dropped.
//!
//! The checker runs the [`nomap_ir::analysis::txn_depths`] dataflow (every
//! predecessor of a block must agree on the open-transaction depth) and
//! then walks each reachable block with the running depth, proving that
//! every abort check and every SOF update sits at depth ≥ 1 — i.e. is
//! dominated by an `XBegin` on every path — and that every `Return` is at
//! the function's entry depth, so each opened transaction reaches an
//! `XEnd` (which is where SOF is tested) before the frame unwinds.
//!
//! `entry_depth` is 0 for normal compilation and 1 for transaction-aware
//! callees, whose whole body executes under the caller's transaction.

use nomap_ir::analysis::txn_depths;
use nomap_ir::{CheckMode, InstKind, IrFunc};

use crate::diag::{DiagCode, Diagnostic};

/// Runs the transaction-safety checker. `sof_allowed` reports whether the
/// target HTM provides a sticky overflow flag (`HtmModel::has_sof`);
/// without one, `Sof`-mode arithmetic is unimplementable and flagged.
pub fn check_txn_safety(f: &IrFunc, entry_depth: u32, sof_allowed: bool) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    let info = txn_depths(f, entry_depth);

    for &b in &info.conflicts {
        diags.push(Diagnostic::new(
            DiagCode::TxnDepthConflict,
            &f.name,
            Some(b),
            None,
            format!("predecessors of {b} disagree on the transaction depth"),
        ));
    }
    for &b in &info.underflows {
        diags.push(Diagnostic::new(
            DiagCode::XendUnderflow,
            &f.name,
            Some(b),
            None,
            format!("{b} contains an XEnd with no open transaction"),
        ));
    }

    for (bi, pair) in info.depths.iter().enumerate() {
        let Some((entry, _)) = pair else { continue };
        let bid = nomap_ir::BlockId(bi as u32);
        let mut depth = *entry;
        for &v in &f.blocks[bi].insts {
            let inst = f.inst(v);
            match inst.kind {
                InstKind::XBegin => {
                    if inst.osr.is_none() && entry_depth == 0 && depth == 0 {
                        // The outermost XBegin is the abort landing pad: it
                        // must know how to fall back to Baseline.
                        diags.push(Diagnostic::new(
                            DiagCode::XbeginMissingOsr,
                            &f.name,
                            Some(bid),
                            Some(v),
                            format!("outermost XBegin {v} carries no OSR fallback state"),
                        ));
                    }
                    depth += 1;
                }
                InstKind::XEnd => depth = depth.saturating_sub(1),
                InstKind::Return { .. } => {
                    if depth != entry_depth {
                        diags.push(Diagnostic::new(
                            DiagCode::TxnOpenAtReturn,
                            &f.name,
                            Some(bid),
                            Some(v),
                            format!(
                                "return {v} at transaction depth {depth} \
                                 (entry depth {entry_depth}): an opened transaction \
                                 never reaches its XEnd"
                            ),
                        ));
                    }
                }
                _ => {
                    if inst.check_mode() == Some(CheckMode::Abort) && depth == 0 {
                        diags.push(Diagnostic::new(
                            DiagCode::AbortOutsideTxn,
                            &f.name,
                            Some(bid),
                            Some(v),
                            format!("abort-mode check {v} can execute with no transaction open"),
                        ));
                    }
                    if inst.check_mode() == Some(CheckMode::Sof) {
                        if depth == 0 {
                            diags.push(Diagnostic::new(
                                DiagCode::SofOutsideTxn,
                                &f.name,
                                Some(bid),
                                Some(v),
                                format!(
                                    "SOF-mode arithmetic {v} can execute outside any \
                                     transaction; no XEnd would test the flag"
                                ),
                            ));
                        }
                        if !sof_allowed {
                            diags.push(Diagnostic::new(
                                DiagCode::SofUnsupported,
                                &f.name,
                                Some(bid),
                                Some(v),
                                format!(
                                    "SOF-mode arithmetic {v} on an HTM without a \
                                         sticky overflow flag"
                                ),
                            ));
                        }
                    }
                }
            }
        }
    }
    diags
}
