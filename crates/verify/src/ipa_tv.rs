//! Translation validation for interprocedural summaries.
//!
//! `nomap_ir::ipa::summarize` claims, per function: a return-value
//! abstraction, argument preconditions, a heap-effect class and a static
//! write-footprint bound. The compile pipelines *act* on those claims —
//! deleting checks and seeding the §V-C transaction ladder — so this
//! validator refuses to trust the fixpoint driver. It re-checks the one
//! property every consumer actually relies on: the claimed summary table
//! `C` is a **post-fixpoint** of the summary transfer function `F`, i.e.
//! `F(C) ⊑ C` pointwise.
//!
//! * One fresh application of [`analyze_function`] under the claimed
//!   table must keep each return inside its claim
//!   ([`DiagCode::IpaReturnNotInductive`]), each effect class at or below
//!   its claim ([`DiagCode::IpaEffectNotInductive`]), and each bounded
//!   write footprint within the claimed line budget
//!   ([`DiagCode::IpaFootprintUnderclaimed`]).
//! * Every in-program call site's abstract arguments must be covered by
//!   the callee's claimed precondition, and every host-reachable root
//!   (re-derived from a fresh call graph, never trusted from the claim)
//!   must claim top preconditions ([`DiagCode::IpaParamPreconditionUnsound`]).
//!
//! Checking inductiveness — rather than "claimed equals re-derived" —
//! is what makes the direction sound: any post-fixpoint of a monotone
//! `F` over-approximates the least fixpoint, hence the concrete
//! semantics, regardless of which iteration strategy (or bug) produced
//! it. A driver that skips widening and keeps a non-converged iterate
//! fails exactly this test, which is what the mutation test asserts.

use std::collections::BTreeSet;

use nomap_bytecode::Program;
use nomap_ir::ipa::{analyze_function, effect_le, roots, AbsVal, CallGraph, ProgramSummaries};
use nomap_runtime::HeapEffect;

use crate::diag::{func_label, DiagCode, Diagnostic};

/// Validates a claimed summary table against `p`. Empty means every claim
/// is inductive and every precondition covers its call sites.
pub fn validate_summaries(p: &Program, claimed: &ProgramSummaries) -> Vec<Diagnostic> {
    let mut diags = Vec::new();

    // Roots are re-derived from a fresh call graph; the claim may only
    // add roots (extra roots weaken preconditions, which is sound).
    let fresh = CallGraph::build(p);
    let required = roots(p, &fresh, &BTreeSet::new());

    for f in &p.functions {
        let label = func_label(f.id, &f.name);
        let Some(sum) = claimed.get(f.id) else {
            diags.push(Diagnostic::new(
                DiagCode::IpaReturnNotInductive,
                &label,
                None,
                None,
                "function has no claimed summary".to_owned(),
            ));
            continue;
        };
        if sum.params.len() != f.param_count as usize {
            diags.push(Diagnostic::new(
                DiagCode::IpaParamPreconditionUnsound,
                &label,
                None,
                None,
                format!(
                    "claimed {} parameter preconditions for a {}-parameter function",
                    sum.params.len(),
                    f.param_count
                ),
            ));
            continue;
        }
        if required.contains(&f.id) && !sum.params.iter().all(|&a| a == AbsVal::TOP) {
            diags.push(Diagnostic::new(
                DiagCode::IpaParamPreconditionUnsound,
                &label,
                None,
                None,
                "host-reachable root claims a non-top argument precondition".to_owned(),
            ));
        }

        // One transfer re-application under the claimed table.
        let facts = analyze_function(f, &sum.params, &claimed.summaries);
        if !facts.ret.subset_of(sum.ret) {
            diags.push(Diagnostic::new(
                DiagCode::IpaReturnNotInductive,
                &label,
                None,
                None,
                format!("re-derived return {} escapes the claimed {}", facts.ret, sum.ret),
            ));
        }
        match (facts.effect, sum.effect) {
            (HeapEffect::WritesBounded(m), HeapEffect::WritesBounded(n)) if m > n => {
                diags.push(Diagnostic::new(
                    DiagCode::IpaFootprintUnderclaimed,
                    &label,
                    None,
                    None,
                    format!("re-derived write footprint of {m} lines exceeds the claimed {n}"),
                ));
            }
            (HeapEffect::WritesUnbounded, HeapEffect::WritesBounded(n)) => {
                diags.push(Diagnostic::new(
                    DiagCode::IpaFootprintUnderclaimed,
                    &label,
                    None,
                    None,
                    format!("re-derived write footprint is unbounded, claimed {n} lines"),
                ));
            }
            (fe, ce) if !effect_le(fe, ce) => {
                diags.push(Diagnostic::new(
                    DiagCode::IpaEffectNotInductive,
                    &label,
                    None,
                    None,
                    format!(
                        "re-derived effect {} sits above the claimed {}",
                        fe.describe(),
                        ce.describe()
                    ),
                ));
            }
            _ => {}
        }
        if facts.clobbers && !sum.clobbers {
            diags.push(Diagnostic::new(
                DiagCode::IpaEffectNotInductive,
                &label,
                None,
                None,
                "function may clobber pre-existing memory but its summary claims otherwise"
                    .to_owned(),
            ));
        }

        // Call-site coverage: the abstract arguments this function passes
        // must land inside each callee's claimed precondition.
        for (callee, args) in &facts.call_args {
            let Some(callee_sum) = claimed.get(*callee) else { continue };
            let callee_f = p.function(*callee);
            for (k, &pre) in callee_sum.params.iter().enumerate() {
                // Missing actual arguments arrive undefined.
                let arg = args.get(k).copied().unwrap_or(AbsVal::UNDEF);
                if !arg.subset_of(pre) {
                    diags.push(Diagnostic::new(
                        DiagCode::IpaParamPreconditionUnsound,
                        &label,
                        None,
                        None,
                        format!(
                            "argument {k} of call to {} is {arg}, outside the claimed \
                             precondition {pre}",
                            func_label(*callee, &callee_f.name),
                        ),
                    ));
                }
            }
        }
    }
    diags
}

#[cfg(test)]
mod tests {
    use nomap_ir::ipa::{summarize, summarize_unsound};

    use super::*;

    fn program(src: &str) -> Program {
        nomap_bytecode::compile_program(src).expect("compiles")
    }

    const RECURSIVE: &str = "function count(n) { if (n <= 0) { return 0; } \
                             return 1 + count(n - 1); }
                             function run() { return count(100); }";

    #[test]
    fn sound_summaries_validate_cleanly() {
        let p = program(RECURSIVE);
        let s = summarize(&p);
        let diags = validate_summaries(&p, &s);
        assert!(diags.is_empty(), "diags {diags:?}");
    }

    /// Mutation test (from the issue): a fixpoint driver that skips
    /// widening at SCC back-edges leaves a non-inductive return claim
    /// behind; the validator must reject it with a blocking error.
    #[test]
    fn mutation_skipped_widening_is_caught() {
        let p = program(RECURSIVE);
        let bad = summarize_unsound(&p);
        let diags = validate_summaries(&p, &bad);
        assert!(diags.iter().any(|d| d.code == DiagCode::IpaReturnNotInductive), "diags {diags:?}");
        assert!(crate::diag::has_errors(&diags));
        // The label carries both the id and the name (satellite: debuggable
        // diagnostics).
        let d = diags.iter().find(|d| d.code == DiagCode::IpaReturnNotInductive).unwrap();
        assert!(d.func.contains(":count"), "label {}", d.func);
    }

    #[test]
    fn doctored_precondition_is_caught() {
        let p = program(
            "function double(x) { return x + x; }
             function run() { return double(21); }",
        );
        let mut s = summarize(&p);
        let double = p.function_ids["double"];
        // Claim the argument is always in [0, 5] — the call site passes 21.
        let sum = s.summaries.get_mut(&double).unwrap();
        sum.params[0] = AbsVal::int(nomap_ir::Interval::new(0, 5));
        // Keep ret inductive under the doctored precondition so only the
        // coverage check can fire.
        sum.ret = AbsVal::TOP;
        let diags = validate_summaries(&p, &s);
        assert!(
            diags.iter().any(|d| d.code == DiagCode::IpaParamPreconditionUnsound),
            "diags {diags:?}"
        );
    }

    #[test]
    fn doctored_effect_and_footprint_are_caught() {
        let p = program(
            "var acc = 0;
             function w(x) { acc = x; return x; }
             function run() { return w(3); }",
        );
        let w = p.function_ids["w"];
        let mut s = summarize(&p);
        s.summaries.get_mut(&w).unwrap().effect = HeapEffect::Pure;
        s.summaries.get_mut(&w).unwrap().clobbers = false;
        let diags = validate_summaries(&p, &s);
        assert!(diags.iter().any(|d| d.code == DiagCode::IpaEffectNotInductive), "diags {diags:?}");

        let mut s2 = summarize(&p);
        s2.summaries.get_mut(&w).unwrap().effect = HeapEffect::WritesBounded(0);
        let diags2 = validate_summaries(&p, &s2);
        assert!(
            diags2.iter().any(|d| d.code == DiagCode::IpaFootprintUnderclaimed),
            "diags2 {diags2:?}"
        );
    }
}
