//! Layer 3: translation validation for bounds-check combining (§IV-C1).
//!
//! `combine_bounds_checks` deletes every per-iteration `Guard(Bounds)` on a
//! monotonic induction variable and replaces it with one extreme-index
//! check (sunk below the loop for increasing variables, hoisted above it
//! for decreasing ones). Rather than trusting the pass, this validator
//! re-derives the justification from scratch on the *input* IR and checks
//! the compensation on the *output* IR:
//!
//! 1. every deleted check (a `Guard(Bounds, Abort)` that became `Nop`)
//!    must sit in a loop, test a phi that `scev` independently proves to be
//!    an affine induction variable with non-zero constant step, against a
//!    loop-invariant length;
//! 2. the output must contain the implied extreme check: for an increasing
//!    variable, `ICmp(Gt, phi, len)` + `Guard(Bounds, Abort)` on **every**
//!    exit edge of the loop (the phi's exit value is `> every index used`
//!    for step ≥ 1, so `exit_value ≤ len` implies every deleted
//!    `index < len`); for a decreasing variable, `ICmp(AboveEq, init,
//!    len)` + guard in the preheader (the first index is the largest).
//!
//! Passes only `Nop`-out instructions in place, so `ValueId`s are stable
//! between the two sides and the deleted set is computed by direct
//! comparison.

use nomap_ir::analysis::{defined_outside, find_loops, Dominators, Loop};
use nomap_ir::scev::induction_vars;
use nomap_ir::{BlockId, CheckMode, InstKind, IrFunc, ValueId};
use nomap_machine::{CheckKind, Cond};

use crate::diag::{func_label, DiagCode, Diagnostic};

/// Validates one application of `combine_bounds_checks`: `before` is the
/// IR immediately prior to the pass, `after` immediately after. Returns a
/// diagnostic per deleted check that cannot be re-proven.
pub fn validate_bounds_combining(before: &IrFunc, after: &IrFunc) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    let deleted: Vec<ValueId> = (0..before.insts.len() as u32)
        .map(ValueId)
        .filter(|&v| {
            matches!(
                before.inst(v).kind,
                InstKind::Guard { kind: CheckKind::Bounds, mode: CheckMode::Abort, .. }
            ) && matches!(after.inst(v).kind, InstKind::Nop)
        })
        .collect();
    if deleted.is_empty() {
        return diags;
    }

    let doms = Dominators::compute(before);
    let loops = find_loops(before, &doms);
    let after_doms = Dominators::compute(after);
    let after_loops = find_loops(after, &after_doms);

    for v in deleted {
        let Some(guard_block) = block_of(before, v) else {
            // Unplaced guards can't have been "deleted from a loop".
            diags.push(no_loop(before, v));
            continue;
        };
        let InstKind::Guard { cond, .. } = before.inst(v).kind else { unreachable!() };
        let (idx, len) = match before.inst(cond).kind {
            InstKind::ICmp { cond: Cond::AboveEq, a, b } => (a, b),
            _ => {
                diags.push(Diagnostic::new(
                    DiagCode::BoundsNotInduction,
                    &func_label(before.func, &before.name),
                    Some(guard_block),
                    Some(v),
                    format!("deleted bounds check {v} does not test ICmp(AboveEq, idx, len)"),
                ));
                continue;
            }
        };

        // Candidate loops: every loop containing the guard, innermost
        // first (find_loops already sorts by body size). The pass may have
        // justified the deletion against any of them.
        let containing: Vec<&Loop> = loops.iter().filter(|l| l.contains(guard_block)).collect();
        if containing.is_empty() {
            diags.push(no_loop(before, v));
            continue;
        }

        let mut best = DiagCode::BoundsNotInduction;
        let mut proven = false;
        for l in &containing {
            let ivs = induction_vars(before, l);
            let Some(iv) = ivs.iter().find(|iv| iv.phi == idx) else { continue };
            if !defined_outside(before, l, len) {
                best = DiagCode::BoundsLenVariant;
                continue;
            }
            best = DiagCode::BoundsNoCompensation;
            if compensation_present(after, &after_loops, l.header, iv.increasing(), idx, len) {
                proven = true;
                break;
            }
        }
        if !proven {
            let what = match best {
                DiagCode::BoundsNotInduction => format!(
                    "index {idx} of deleted check {v} is not a proven monotonic \
                     induction variable of any enclosing loop"
                ),
                DiagCode::BoundsLenVariant => format!(
                    "length {len} of deleted check {v} is not invariant in the \
                     loop that owns index {idx}"
                ),
                _ => format!(
                    "no extreme-index compensation check found for deleted check {v} \
                     (index {idx}, length {len})"
                ),
            };
            diags.push(Diagnostic::new(
                best,
                &func_label(before.func, &before.name),
                Some(guard_block),
                Some(v),
                what,
            ));
        }
    }
    diags
}

fn no_loop(before: &IrFunc, v: ValueId) -> Diagnostic {
    Diagnostic::new(
        DiagCode::BoundsNoLoop,
        &func_label(before.func, &before.name),
        block_of(before, v),
        Some(v),
        format!("bounds check {v} was deleted outside any loop"),
    )
}

fn block_of(f: &IrFunc, v: ValueId) -> Option<BlockId> {
    f.blocks.iter().enumerate().find(|(_, b)| b.insts.contains(&v)).map(|(i, _)| BlockId(i as u32))
}

/// Does `after` contain the extreme-index check implied by deleting the
/// per-iteration checks of `(phi, len)` in the loop headed at `header`?
fn compensation_present(
    after: &IrFunc,
    after_loops: &[Loop],
    header: BlockId,
    increasing: bool,
    phi: ValueId,
    len: ValueId,
) -> bool {
    let Some(l) = after_loops.iter().find(|l| l.header == header) else {
        return false;
    };
    if increasing {
        // Every exit edge must land in a block performing
        // Guard(Bounds, Abort, ICmp(Gt, phi, len)).
        !l.exits.is_empty()
            && l.exits.iter().all(|&(_, target)| has_check(after, target, Cond::Gt, phi, len))
    } else {
        // The preheader (unique non-latch predecessor of the header) must
        // perform Guard(Bounds, Abort, ICmp(AboveEq, init, len)). The init
        // value is whatever the phi receives along that entry edge.
        let preds = &after.blocks[header.0 as usize].preds;
        let entries: Vec<(usize, BlockId)> = preds
            .iter()
            .enumerate()
            .filter(|(_, p)| !l.latches.contains(p))
            .map(|(i, &p)| (i, p))
            .collect();
        let &[(entry_pos, preheader)] = entries.as_slice() else { return false };
        let InstKind::Phi { inputs, .. } = &after.inst(phi).kind else { return false };
        let Some(&init) = inputs.get(entry_pos) else { return false };
        has_check(after, preheader, Cond::AboveEq, init, len)
    }
}

/// Does `block` contain `Guard(Bounds, Abort)` over `ICmp(cond, a, b)`?
fn has_check(f: &IrFunc, block: BlockId, cond: Cond, a: ValueId, b: ValueId) -> bool {
    f.blocks[block.0 as usize].insts.iter().any(|&v| {
        let InstKind::Guard { kind: CheckKind::Bounds, cond: c, mode: CheckMode::Abort } =
            f.inst(v).kind
        else {
            return false;
        };
        matches!(f.inst(c).kind, InstKind::ICmp { cond: ic, a: ia, b: ib }
            if ic == cond && ia == a && ib == b)
    })
}
