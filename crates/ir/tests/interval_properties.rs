//! Property tests for the interval lattice behind the abstract
//! interpreter (satellite of the proof-carrying check-elision PR):
//! join/meet are commutative and monotone, widening terminates on
//! adversarial ascending chains, and the arithmetic transfer functions
//! over-approximate the concrete operations. Deterministic splitmix64
//! generation — the same harness as the verifier property tests — so any
//! failure is replayable from the printed seed.

use nomap_ir::ranges::{Interval, TagSet};

struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// A random i64 endpoint biased toward the saturation extremes: the
    /// exact `i64::MIN`/`i64::MAX`, values within a few ulps of them, or
    /// an ordinary int32-ranged value.
    fn extreme_endpoint(&mut self) -> i64 {
        match self.next() % 6 {
            0 => i64::MIN,
            1 => i64::MAX,
            2 => i64::MIN.saturating_add((self.next() % 4) as i64),
            3 => i64::MAX - (self.next() % 4) as i64,
            _ => self.i32_in(i32::MIN, i32::MAX),
        }
    }

    /// A random interval with endpoints clustered at the i64 extremes.
    fn extreme_interval(&mut self) -> Interval {
        if self.next().is_multiple_of(8) {
            return Interval::EMPTY;
        }
        let a = self.extreme_endpoint();
        let b = self.extreme_endpoint();
        Interval::new(a.min(b), a.max(b))
    }

    /// A random interval: mostly small, sometimes extreme, sometimes empty.
    fn interval(&mut self) -> Interval {
        match self.next() % 8 {
            0 => Interval::EMPTY,
            1 => Interval::FULL,
            2 => Interval::constant(self.i32_in(i32::MIN, i32::MAX)),
            _ => {
                let a = self.i32_in(i32::MIN, i32::MAX);
                let b = self.i32_in(i32::MIN, i32::MAX);
                Interval::new(a.min(b), a.max(b))
            }
        }
    }

    fn i32_in(&mut self, lo: i32, hi: i32) -> i64 {
        let span = (hi as i64 - lo as i64 + 1) as u64;
        lo as i64 + (self.next() % span) as i64
    }

    fn point_in(&mut self, iv: Interval) -> i64 {
        let span = (iv.hi - iv.lo + 1) as u64;
        iv.lo + (self.next() % span) as i64
    }
}

const TRIALS: usize = 2_000;

#[test]
fn join_and_meet_are_commutative_and_bounding() {
    let mut rng = Rng(0xabcd_0001);
    for trial in 0..TRIALS {
        let seed = rng.0;
        let a = rng.interval();
        let b = rng.interval();
        let ctx = format!("trial {trial} seed {seed:#x}: a={a} b={b}");
        assert_eq!(a.join(b), b.join(a), "join not commutative ({ctx})");
        assert_eq!(a.meet(b), b.meet(a), "meet not commutative ({ctx})");
        assert!(a.subset_of(a.join(b)), "a not below join ({ctx})");
        assert!(b.subset_of(a.join(b)), "b not below join ({ctx})");
        assert!(a.meet(b).subset_of(a), "meet not below a ({ctx})");
        assert!(a.meet(b).subset_of(b), "meet not below b ({ctx})");
        // Idempotence and identity elements.
        assert_eq!(a.join(a), a, "join not idempotent ({ctx})");
        assert_eq!(a.meet(a), a, "meet not idempotent ({ctx})");
        assert_eq!(a.join(Interval::EMPTY), a, "empty not join identity ({ctx})");
    }
}

#[test]
fn join_and_meet_are_monotone() {
    let mut rng = Rng(0xabcd_0002);
    for trial in 0..TRIALS {
        let seed = rng.0;
        let a = rng.interval();
        let b = rng.interval();
        let c = rng.interval();
        // A grown first operand can only grow the result.
        let a_big = a.join(rng.interval());
        let ctx = format!("trial {trial} seed {seed:#x}: a={a} a'={a_big} b={b} c={c}");
        assert!(a.join(b).subset_of(a_big.join(b)), "join not monotone ({ctx})");
        assert!(a.meet(c).subset_of(a_big.meet(c)), "meet not monotone ({ctx})");
    }
}

/// Widening terminates on adversarial chains: feed an ever-growing
/// sequence of intervals through `widen` and require a fixpoint within a
/// small constant number of steps (each bound can move at most once).
#[test]
fn widening_terminates_on_adversarial_chains() {
    let mut rng = Rng(0xabcd_0003);
    for trial in 0..500 {
        let seed = rng.0;
        let mut cur = rng.interval();
        let mut moves = 0;
        for _ in 0..64 {
            // Adversary: always grow the current interval a random amount.
            let next = cur.join(rng.interval());
            let widened = cur.widen(next);
            assert!(
                next.subset_of(widened),
                "widening lost the new iterate (trial {trial} seed {seed:#x}: \
                 cur={cur} next={next} widened={widened})"
            );
            if widened != cur {
                moves += 1;
                cur = widened;
            }
        }
        // Empty→first-value, then at most one jump per bound.
        assert!(
            moves <= 3,
            "widening chain moved {moves} times (trial {trial} seed {seed:#x}, ended {cur})"
        );
        // Keep adversarially growing: at most two further moves remain
        // (one per bound still short of its extreme), never an infinite
        // ascent.
        let mut extra = 0;
        for _ in 0..16 {
            let w = cur.widen(cur.join(rng.interval()));
            if w != cur {
                extra += 1;
                cur = w;
            }
        }
        assert!(extra <= 2, "post-chain widening moved {extra} more times (ended {cur})");
    }
}

#[test]
fn transfer_functions_contain_all_concrete_results() {
    let mut rng = Rng(0xabcd_0004);
    for trial in 0..TRIALS {
        let seed = rng.0;
        let a = rng.interval();
        let b = rng.interval();
        if a.is_empty() || b.is_empty() {
            continue;
        }
        let x = rng.point_in(a);
        let y = rng.point_in(b);
        let ctx = format!("trial {trial} seed {seed:#x}: a={a} b={b} x={x} y={y}");
        assert!(a.add(b).contains(x + y), "add unsound ({ctx})");
        assert!(a.sub(b).contains(x - y), "sub unsound ({ctx})");
        assert!(a.mul(b).contains(x * y), "mul unsound ({ctx})");
        assert!(a.neg().contains(-x), "neg unsound ({ctx})");
        if let Some((ulo, uhi)) = a.as_unsigned() {
            let ux = x as u64;
            assert!(ulo <= ux && ux <= uhi, "unsigned view unsound ({ctx})");
        }
        // Narrowing never recovers below the recomputed iterate.
        let n = a.narrow(a.meet(b));
        assert!(a.meet(b).subset_of(n), "narrow dropped below recomputation ({ctx})");
    }
}

/// Saturating-endpoint properties (satellite of the interprocedural
/// summary PR): arithmetic at `i64::MIN`/`i64::MAX` must neither wrap nor
/// panic, results must stay normalized (empty iff `lo > hi` in canonical
/// form), and every representable concrete result must still be inside
/// the saturated interval.
#[test]
fn saturating_endpoints_neither_wrap_nor_panic() {
    let mut rng = Rng(0xabcd_0006);
    for trial in 0..TRIALS {
        let seed = rng.0;
        let a = rng.extreme_interval();
        let b = rng.extreme_interval();
        let ctx = format!("trial {trial} seed {seed:#x}: a={a} b={b}");
        // Non-empty inputs yield non-empty, ordered outputs (no wrap can
        // cross the endpoints); empty inputs yield the canonical EMPTY.
        if !(a.is_empty() || b.is_empty()) {
            for r in [a.add(b), a.sub(b), a.mul(b), a.neg(), b.neg()] {
                assert!(!r.is_empty(), "saturated result collapsed to empty ({ctx}, r={r})");
                assert!(r.lo <= r.hi, "unordered endpoints ({ctx}, r={r})");
            }
            // Concrete containment at representable points, including the
            // exact endpoints where saturation bites.
            for (x, y) in [(a.lo, b.lo), (a.lo, b.hi), (a.hi, b.lo), (a.hi, b.hi)] {
                if let Some(s) = x.checked_add(y) {
                    assert!(a.add(b).contains(s), "saturated add unsound ({ctx}, {x}+{y})");
                }
                if let Some(s) = x.checked_sub(y) {
                    assert!(a.sub(b).contains(s), "saturated sub unsound ({ctx}, {x}-{y})");
                }
                if let Some(s) = x.checked_mul(y) {
                    assert!(a.mul(b).contains(s), "saturated mul unsound ({ctx}, {x}*{y})");
                }
            }
            if let Some(n) = a.lo.checked_neg() {
                assert!(a.neg().contains(n), "saturated neg unsound ({ctx})");
            }
            if let Some(n) = a.hi.checked_neg() {
                assert!(a.neg().contains(n), "saturated neg unsound ({ctx})");
            }
        }
        // EMPTY stays canonical and absorbing through every transfer.
        assert_eq!(Interval::EMPTY.add(a), Interval::EMPTY);
        assert_eq!(a.sub(Interval::EMPTY), Interval::EMPTY);
        assert_eq!(Interval::EMPTY.mul(b), Interval::EMPTY);
        assert_eq!(Interval::EMPTY.neg(), Interval::EMPTY);
        assert_eq!(Interval::new(5, 4), Interval::EMPTY, "constructor must normalize");
        // Widen/narrow round-trip: widening against a grown iterate then
        // narrowing with the true recomputation lands back inside the
        // widened frame without panicking. Widening's top is the int32
        // FULL interval (its documented domain), so clamp there first.
        let (a, b) = (a.meet(Interval::FULL), b.meet(Interval::FULL));
        if !a.is_empty() && !b.is_empty() {
            let grown = a.join(b);
            let w = a.widen(grown);
            assert!(grown.subset_of(w), "widen lost the iterate ({ctx})");
            let n = w.narrow(grown);
            assert!(grown.subset_of(n), "narrow dropped below recomputation ({ctx})");
            assert!(n.subset_of(w), "narrow escaped the widened frame ({ctx})");
        }
    }
}

#[test]
fn tag_lattice_mirrors_the_same_laws() {
    let mut rng = Rng(0xabcd_0005);
    for trial in 0..TRIALS {
        let seed = rng.0;
        let a = TagSet((rng.next() % 32) as u8);
        let b = TagSet((rng.next() % 32) as u8);
        let ctx = format!("trial {trial} seed {seed:#x}: a={:#b} b={:#b}", a.0, b.0);
        assert_eq!(a.join(b), b.join(a), "tag join not commutative ({ctx})");
        assert_eq!(a.meet(b), b.meet(a), "tag meet not commutative ({ctx})");
        assert!(a.subset_of(a.join(b)), "tag a not below join ({ctx})");
        assert!(a.meet(b).subset_of(a), "tag meet not below a ({ctx})");
        assert!(a.subset_of(TagSet::ANY), "tag top not top ({ctx})");
        assert!(TagSet::NONE.subset_of(a), "tag bottom not bottom ({ctx})");
    }
}
