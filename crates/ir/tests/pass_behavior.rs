//! Behavioural tests for the optimization passes: each pass must do its
//! job in `Abort` mode and hold back in `Deopt` mode — the SMP-sensitivity
//! at the heart of the paper.

use nomap_bytecode::FuncId;
use nomap_ir::analysis::{find_loops, Dominators};
use nomap_ir::node::{Alias, Inst, InstKind, Ty};
use nomap_ir::passes::{constfold, dce, gvn, licm, promote_accumulators, untag_phis};
use nomap_ir::{BlockId, CheckMode, IrFunc, ValueId};
use nomap_machine::{CheckKind, Cond};
use nomap_runtime::Value;

/// Builds the canonical test loop:
///
/// ```text
/// entry:  base = ConstRaw(0x1000_0000); n = ConstI32(100); jump header
/// header: i = phi(0, i+1); cond = i < n; branch body / exit
/// body:   len = LoadField(base, 1, ArrayLen)        ; invariant load
///         g   = Guard(kind, i >=u len, mode)        ; bounds-style check
///         s   = LoadField(base, 5, PropSlot(0))     ; accumulator load
///         s2  = CheckedAdd(s?, i)  [simplified to i+i]
///         StoreField(base, 5, boxed)                ; accumulator store
///         i2  = i + 1; jump header
/// exit:   return undefined
/// ```
struct LoopIr {
    f: IrFunc,
    // Some labels exist only to document the shape in the diagram above.
    #[allow(dead_code)]
    header: BlockId,
    body: BlockId,
    #[allow(dead_code)]
    exit: BlockId,
    #[allow(dead_code)]
    guard: ValueId,
    len_load: ValueId,
    acc_load: ValueId,
    acc_store: ValueId,
}

fn build_loop(mode: CheckMode) -> LoopIr {
    let mut f = IrFunc::new(FuncId(0), "t", 0, 4);
    let header = f.new_block();
    let body = f.new_block();
    let exit = f.new_block();
    let base = f.append(f.entry, Inst::new(InstKind::ConstRaw(0x1000_0000)));
    let zero = f.append(f.entry, Inst::new(InstKind::ConstI32(0)));
    let n = f.append(f.entry, Inst::new(InstKind::ConstI32(100)));
    f.append(f.entry, Inst::new(InstKind::Jump { target: header }));

    let phi = f.append(header, Inst::new(InstKind::Phi { inputs: vec![zero], ty: Ty::I32 }));
    let cond = f.append(header, Inst::new(InstKind::ICmp { cond: Cond::Lt, a: phi, b: n }));
    f.append(header, Inst::new(InstKind::Branch { cond, then_b: body, else_b: exit }));

    let len_load = f.append(
        body,
        Inst::new(InstKind::LoadField { base, offset: 1, alias: Alias::ArrayLen, ty: Ty::I32 }),
    );
    let oob =
        f.append(body, Inst::new(InstKind::ICmp { cond: Cond::AboveEq, a: phi, b: len_load }));
    let mut g = Inst::new(InstKind::Guard { kind: CheckKind::Bounds, cond: oob, mode });
    if mode == CheckMode::Deopt {
        g.osr = Some(nomap_ir::OsrState { bc: 3, regs: vec![Some(phi), None, None, None] });
    }
    let guard = f.append(body, g);
    let acc_load = f.append(
        body,
        Inst::new(InstKind::LoadField {
            base,
            offset: 5,
            alias: Alias::PropSlot(0),
            ty: Ty::Boxed,
        }),
    );
    let unb = f.append(body, Inst::new(InstKind::CheckInt32 { v: acc_load, mode }));
    if mode == CheckMode::Deopt {
        f.inst_mut(unb).osr =
            Some(nomap_ir::OsrState { bc: 4, regs: vec![Some(phi), None, None, None] });
    }
    let sum =
        f.append(body, Inst::new(InstKind::CheckedAddI32 { a: unb, b: phi, mode: CheckMode::Sof }));
    let boxed = f.append(body, Inst::new(InstKind::BoxI32(sum)));
    let acc_store = f.append(
        body,
        Inst::new(InstKind::StoreField { base, offset: 5, v: boxed, alias: Alias::PropSlot(0) }),
    );
    let one = f.append(body, Inst::new(InstKind::ConstI32(1)));
    let next =
        f.append(body, Inst::new(InstKind::CheckedAddI32 { a: phi, b: one, mode: CheckMode::Sof }));
    f.append(body, Inst::new(InstKind::Jump { target: header }));
    if let InstKind::Phi { inputs, .. } = &mut f.inst_mut(phi).kind {
        inputs.push(next);
    }
    let u = f.append(exit, Inst::new(InstKind::Const(Value::UNDEFINED)));
    f.append(exit, Inst::new(InstKind::Return { v: u }));
    f.compute_preds();
    assert_eq!(f.verify(), Ok(()));
    LoopIr { f, header, body, exit, guard, len_load, acc_load, acc_store }
}

fn block_of(f: &IrFunc, v: ValueId) -> Option<BlockId> {
    f.blocks.iter().enumerate().find(|(_, b)| b.insts.contains(&v)).map(|(i, _)| BlockId(i as u32))
}

#[test]
fn licm_hoists_loads_across_aborts_but_not_smps() {
    // Abort mode: the invariant ArrayLen load leaves the loop.
    let mut l = build_loop(CheckMode::Abort);
    licm(&mut l.f);
    let b = block_of(&l.f, l.len_load).expect("load still placed");
    let doms = Dominators::compute(&l.f);
    let loops = find_loops(&l.f, &doms);
    assert!(!loops[0].contains(b), "Abort mode: len load must hoist out of the loop");
    assert_eq!(l.f.verify(), Ok(()));

    // Deopt mode: the SMP clobbers memory; the load must stay.
    let mut l = build_loop(CheckMode::Deopt);
    licm(&mut l.f);
    let b = block_of(&l.f, l.len_load).unwrap();
    assert_eq!(b, l.body, "Deopt mode: SMP pins the load in the loop");
}

#[test]
fn licm_never_hoists_abort_checks_out_of_the_transaction() {
    // Nested loops with the transaction scoped to the inner one (§V-C
    // "Inner"): XBegin lives in the inner preheader, XEnd on the inner
    // exit. An abort-mode check in the inner body whose operands are
    // invariant w.r.t. BOTH loops may hoist into the inner preheader (still
    // inside the transaction) but must never reach the outer preheader —
    // there is no transaction to roll back out there.
    let mut f = IrFunc::new(FuncId(0), "nest", 0, 0);
    let outer_h = f.new_block();
    let inner_ph = f.new_block();
    let inner_h = f.new_block();
    let inner_b = f.new_block();
    let inner_done = f.new_block();
    let exit = f.new_block();

    let zero = f.append(f.entry, Inst::new(InstKind::ConstI32(0)));
    let n = f.append(f.entry, Inst::new(InstKind::ConstI32(10)));
    let fail = f.append(f.entry, Inst::new(InstKind::ConstBool(false)));
    f.append(f.entry, Inst::new(InstKind::Jump { target: outer_h }));

    let ophi = f.append(outer_h, Inst::new(InstKind::Phi { inputs: vec![zero], ty: Ty::I32 }));
    let ocond = f.append(outer_h, Inst::new(InstKind::ICmp { cond: Cond::Lt, a: ophi, b: n }));
    f.append(outer_h, Inst::new(InstKind::Branch { cond: ocond, then_b: inner_ph, else_b: exit }));

    f.append(inner_ph, Inst::new(InstKind::XBegin));
    f.append(inner_ph, Inst::new(InstKind::Jump { target: inner_h }));

    let iphi = f.append(inner_h, Inst::new(InstKind::Phi { inputs: vec![zero], ty: Ty::I32 }));
    let icond = f.append(inner_h, Inst::new(InstKind::ICmp { cond: Cond::Lt, a: iphi, b: n }));
    f.append(
        inner_h,
        Inst::new(InstKind::Branch { cond: icond, then_b: inner_b, else_b: inner_done }),
    );

    let guard = f.append(
        inner_b,
        Inst::new(InstKind::Guard { kind: CheckKind::Type, cond: fail, mode: CheckMode::Abort }),
    );
    let one = f.append(inner_b, Inst::new(InstKind::ConstI32(1)));
    let inext = f.append(
        inner_b,
        Inst::new(InstKind::CheckedAddI32 { a: iphi, b: one, mode: CheckMode::Sof }),
    );
    f.append(inner_b, Inst::new(InstKind::Jump { target: inner_h }));
    if let InstKind::Phi { inputs, .. } = &mut f.inst_mut(iphi).kind {
        inputs.push(inext);
    }

    f.append(inner_done, Inst::new(InstKind::XEnd));
    let one2 = f.append(inner_done, Inst::new(InstKind::ConstI32(1)));
    let onext = f.append(
        inner_done,
        Inst::new(InstKind::CheckedAddI32 { a: ophi, b: one2, mode: CheckMode::Sof }),
    );
    f.append(inner_done, Inst::new(InstKind::Jump { target: outer_h }));
    if let InstKind::Phi { inputs, .. } = &mut f.inst_mut(ophi).kind {
        inputs.push(onext);
    }

    let u = f.append(exit, Inst::new(InstKind::Const(Value::UNDEFINED)));
    f.append(exit, Inst::new(InstKind::Return { v: u }));
    f.compute_preds();
    assert_eq!(f.verify(), Ok(()));

    licm(&mut f);
    assert_eq!(f.verify(), Ok(()));
    let b = block_of(&f, guard).expect("guard still placed");
    let depths = nomap_ir::analysis::txn_depths(&f, 0);
    let depth = depths.depth_before(&f, b, guard).expect("guard reachable");
    assert!(
        depth >= 1,
        "abort-mode guard hoisted outside the transaction (landed in {b} at depth {depth})"
    );
}

#[test]
fn promotion_sinks_the_accumulator_only_without_smps() {
    let mut l = build_loop(CheckMode::Abort);
    assert!(promote_accumulators(&mut l.f), "promotes in abort mode");
    // The in-loop load/store became Nops; a store exists on the exit edge.
    assert!(matches!(l.f.inst(l.acc_load).kind, InstKind::Nop));
    assert!(matches!(l.f.inst(l.acc_store).kind, InstKind::Nop));
    let exit_stores =
        l.f.blocks
            .iter()
            .enumerate()
            .filter(|(bi, b)| {
                BlockId(*bi as u32) != l.body
                    && b.insts.iter().any(|&v| {
                        matches!(l.f.inst(v).kind, InstKind::StoreField { offset: 5, .. })
                    })
            })
            .count();
    assert!(exit_stores >= 1, "the final value is stored after the loop");
    assert_eq!(l.f.verify(), Ok(()));

    let mut l = build_loop(CheckMode::Deopt);
    assert!(!promote_accumulators(&mut l.f), "SMPs block store sinking (paper §III-A3)");
}

#[test]
fn gvn_removes_dominated_duplicate_checks() {
    let mut f = IrFunc::new(FuncId(0), "t", 1, 1);
    let p = f.append(f.entry, Inst::new(InstKind::Param(0)));
    let c1 = f.append(f.entry, Inst::new(InstKind::CheckInt32 { v: p, mode: CheckMode::Abort }));
    let c2 = f.append(f.entry, Inst::new(InstKind::CheckInt32 { v: p, mode: CheckMode::Abort }));
    let sum = f.append(
        f.entry,
        Inst::new(InstKind::CheckedAddI32 { a: c1, b: c2, mode: CheckMode::Abort }),
    );
    let boxed = f.append(f.entry, Inst::new(InstKind::BoxI32(sum)));
    f.append(f.entry, Inst::new(InstKind::Return { v: boxed }));
    f.compute_preds();
    gvn(&mut f);
    assert!(matches!(f.inst(c2).kind, InstKind::Nop), "second identical check is redundant");
    assert!(matches!(f.inst(c1).kind, InstKind::CheckInt32 { .. }));
}

#[test]
fn dce_keeps_osr_pinned_boxes_only_in_deopt_mode() {
    // box = BoxI32(k); guard(Deopt) references box in its OSR state; box has
    // no other use. In Deopt mode DCE must keep it; as an abort, it dies.
    for (mode, expect_alive) in [(CheckMode::Deopt, true), (CheckMode::Abort, false)] {
        let mut f = IrFunc::new(FuncId(0), "t", 0, 1);
        let k = f.append(f.entry, Inst::new(InstKind::ConstI32(7)));
        let boxed = f.append(f.entry, Inst::new(InstKind::BoxI32(k)));
        let fail = f.append(f.entry, Inst::new(InstKind::ConstBool(false)));
        let mut g = Inst::new(InstKind::Guard { kind: CheckKind::Type, cond: fail, mode });
        if mode == CheckMode::Deopt {
            g.osr = Some(nomap_ir::OsrState { bc: 0, regs: vec![Some(boxed)] });
        }
        f.append(f.entry, g);
        let u = f.append(f.entry, Inst::new(InstKind::Const(Value::UNDEFINED)));
        f.append(f.entry, Inst::new(InstKind::Return { v: u }));
        f.compute_preds();
        dce(&mut f);
        let alive = !matches!(f.inst(boxed).kind, InstKind::Nop);
        assert_eq!(
            alive, expect_alive,
            "{mode:?}: OSR-pinned box alive={alive} (the paper's register-pressure cost of SMPs)"
        );
    }
}

#[test]
fn constfold_eliminates_box_unbox_pairs() {
    let mut f = IrFunc::new(FuncId(0), "t", 0, 1);
    let k = f.append(f.entry, Inst::new(InstKind::ConstI32(3)));
    let boxed = f.append(f.entry, Inst::new(InstKind::BoxI32(k)));
    let unboxed =
        f.append(f.entry, Inst::new(InstKind::CheckInt32 { v: boxed, mode: CheckMode::Abort }));
    let sum = f.append(
        f.entry,
        Inst::new(InstKind::CheckedAddI32 { a: unboxed, b: k, mode: CheckMode::Abort }),
    );
    let out = f.append(f.entry, Inst::new(InstKind::BoxI32(sum)));
    f.append(f.entry, Inst::new(InstKind::Return { v: out }));
    f.compute_preds();
    constfold(&mut f);
    // CheckInt32(BoxI32(k)) → k, then ConstI32(3)+ConstI32(3) → ConstI32(6).
    assert!(matches!(f.inst(unboxed).kind, InstKind::Nop));
    assert!(matches!(f.inst(sum).kind, InstKind::ConstI32(6)));
}

#[test]
fn constfold_folds_constant_compares_and_prunes_dead_branches() {
    // entry: cmp = 3 < 5 (constant); branch cmp → taken / dead
    // dead:  phi(x from entry edge); return phi
    // taken: return undefined
    let mut f = IrFunc::new(FuncId(0), "t", 0, 1);
    let taken = f.new_block();
    let dead = f.new_block();
    let a = f.append(f.entry, Inst::new(InstKind::ConstI32(3)));
    let b = f.append(f.entry, Inst::new(InstKind::ConstI32(5)));
    let x = f.append(f.entry, Inst::new(InstKind::ConstI32(7)));
    let cmp = f.append(f.entry, Inst::new(InstKind::ICmp { cond: Cond::Lt, a, b }));
    f.append(f.entry, Inst::new(InstKind::Branch { cond: cmp, then_b: taken, else_b: dead }));
    let u = f.append(taken, Inst::new(InstKind::Const(Value::UNDEFINED)));
    f.append(taken, Inst::new(InstKind::Return { v: u }));
    let phi = f.append(dead, Inst::new(InstKind::Phi { inputs: vec![x], ty: Ty::I32 }));
    let boxed = f.append(dead, Inst::new(InstKind::BoxI32(phi)));
    f.append(dead, Inst::new(InstKind::Return { v: boxed }));
    f.compute_preds();
    assert_eq!(f.verify(), Ok(()));

    constfold(&mut f);

    // The comparison folded to a constant condition...
    assert!(matches!(f.inst(cmp).kind, InstKind::ConstBool(true)));
    // ...the branch became a jump to the taken side...
    let term = f.blocks[f.entry.0 as usize].insts.last().copied().unwrap();
    assert!(matches!(f.inst(term).kind, InstKind::Jump { target } if target == taken));
    // ...and the unreachable block was fully detached: no predecessors, no
    // instructions, its contents dead — so branch-sensitive analyses and
    // the strict SSA verifier never see facts from the pruned path.
    assert!(f.blocks[dead.0 as usize].preds.is_empty());
    assert!(f.blocks[dead.0 as usize].insts.is_empty());
    assert!(matches!(f.inst(phi).kind, InstKind::Nop));
    assert!(matches!(f.inst(boxed).kind, InstKind::Nop));
    assert_eq!(f.verify(), Ok(()));
}

#[test]
fn untag_phis_removes_loop_carried_type_checks() {
    // Boxed phi over (Const int32, BoxI32(add)) with a CheckInt32 consumer.
    let mut f = IrFunc::new(FuncId(0), "t", 0, 1);
    let header = f.new_block();
    let exit = f.new_block();
    let init = f.append(f.entry, Inst::new(InstKind::Const(Value::new_int32(0))));
    f.append(f.entry, Inst::new(InstKind::Jump { target: header }));
    let phi = f.append(header, Inst::new(InstKind::Phi { inputs: vec![init], ty: Ty::Boxed }));
    let unb = f.append(header, Inst::new(InstKind::CheckInt32 { v: phi, mode: CheckMode::Abort }));
    let one = f.append(header, Inst::new(InstKind::ConstI32(1)));
    let next = f.append(
        header,
        Inst::new(InstKind::CheckedAddI32 { a: unb, b: one, mode: CheckMode::Abort }),
    );
    let boxed = f.append(header, Inst::new(InstKind::BoxI32(next)));
    let limit = f.append(header, Inst::new(InstKind::ConstI32(10)));
    let cond = f.append(header, Inst::new(InstKind::ICmp { cond: Cond::Lt, a: next, b: limit }));
    f.append(header, Inst::new(InstKind::Branch { cond, then_b: header, else_b: exit }));
    if let InstKind::Phi { inputs, .. } = &mut f.inst_mut(phi).kind {
        inputs.push(boxed);
    }
    let u = f.append(exit, Inst::new(InstKind::Const(Value::UNDEFINED)));
    f.append(exit, Inst::new(InstKind::Return { v: u }));
    f.compute_preds();
    assert_eq!(f.verify(), Ok(()));

    assert!(untag_phis(&mut f), "untagging applies");
    assert!(matches!(f.inst(unb).kind, InstKind::Nop), "the per-iteration type check is gone");
    assert_eq!(f.verify(), Ok(()));
}
