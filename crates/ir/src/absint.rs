//! Flow- and branch-sensitive abstract interpretation over the SSA IR:
//! a product lattice of int32 value ranges ([`crate::ranges::Interval`])
//! and NaN-box type tags ([`crate::ranges::TagSet`]), producing a
//! machine-checkable verdict for every guarded check.
//!
//! This is the static counterpart of the paper's dynamic observation
//! (§III, Fig. 1) that FTL checks almost never fail: where NoMap turns an
//! SMP into a transaction abort and *bets* on the check holding, the
//! abstract interpreter *proves* a subset of checks infeasible so the
//! `prove_checks` pass can delete them outright — in every tier,
//! including Base and DFG where no transaction is available.
//!
//! Analysis structure (ABCD-style, on SSA):
//!
//! * One global fact per SSA value (ranges for `I32` values, tag sets for
//!   `Boxed` values), computed by an ascending Kleene iteration in reverse
//!   post-order with **widening at loop-header phis** after two bumps,
//!   followed by two descending (narrowing) sweeps.
//! * **Branch refinement**: inside a block `B`, a value's range is the
//!   meet of its global range with every constraint implied by dominating
//!   branch conditions — conditions on edges `p → d` where `d` is `B` or a
//!   dominator of `B` with the single predecessor `p`. Phi inputs are
//!   additionally refined by the condition on their incoming edge, which
//!   covers latch-guarded (do-while) loops.
//! * **`scev::IndVar` seeding**: a recognized induction phi whose update
//!   is overflow-checked can never pass its initial value in the
//!   direction opposite its step, so its range is clamped on that side —
//!   a fact the plain join can lose once widening fires.
//!
//! Soundness: every transfer function over-approximates the concrete
//! semantics, failing executions of `Deopt`/`Abort` checks define no
//! value, and refinements only ever meet with conditions that are true on
//! every path into the refined block. The final state is reached by
//! monotone ascent to a post-fixpoint plus bounded descending steps, so
//! it over-approximates the collecting semantics at every program point.

use std::collections::{BTreeMap, HashSet};

use nomap_machine::Cond;

use crate::analysis::{find_loops, Dominators};
use crate::graph::{BlockId, IrFunc, ValueId};
use crate::ipa::ProgramSummaries;
use crate::node::{CheckMode, InstKind, Ty};
use crate::ranges::{Interval, TagSet};
use crate::scev;

/// Outcome of the analysis for one guarded check site.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Verdict {
    /// The check can never fire; `witness` records the proof obligation
    /// that was discharged (operand ranges / tag sets).
    ProvedSafe {
        /// Human-readable proof sketch, re-derivable by `absint_tv`.
        witness: String,
    },
    /// The check fires on every execution that reaches it.
    ProvedFail,
    /// Neither provable: the check stays.
    Unknown,
}

/// Analysis result: per-check verdicts plus the underlying facts.
#[derive(Debug, Clone)]
pub struct Absint {
    /// Verdict for every reachable `Deopt`/`Abort`-mode check, keyed by
    /// the check instruction's value id.
    pub verdicts: BTreeMap<ValueId, Verdict>,
    ranges: Vec<Interval>,
    tags: Vec<TagSet>,
}

impl Absint {
    /// Global (unrefined) range of an `I32` value; `EMPTY` for untracked
    /// or unreachable values.
    pub fn range_of(&self, v: ValueId) -> Interval {
        self.ranges[v.0 as usize]
    }

    /// Tag set of a boxed value; `NONE` for untracked values.
    pub fn tags_of(&self, v: ValueId) -> TagSet {
        self.tags[v.0 as usize]
    }
}

/// Widening threshold: a header phi may grow this many times before its
/// moving bound jumps to the int32 extreme.
const WIDEN_AFTER: u8 = 2;
/// Hard cap on ascending sweeps (widening converges far earlier).
const MAX_SWEEPS: usize = 64;
/// Descending (narrowing) sweeps after the ascending fixpoint.
const NARROW_SWEEPS: usize = 2;

/// Runs the analysis intraprocedurally: parameters and call results are
/// unknown. Predecessor lists must be up to date (as the optimizer
/// pipelines maintain them); the function is not mutated.
pub fn analyze(f: &IrFunc) -> Absint {
    analyze_with(f, None)
}

/// Runs the analysis with optional interprocedural context: parameter
/// facts come from the function's validated argument preconditions and
/// call results from the callee's return summary, instead of defaulting
/// to top. Every extra elision this enables is still independently
/// re-derived by `absint_tv` (which must be handed the same summaries).
pub fn analyze_with(f: &IrFunc, ipa: Option<&ProgramSummaries>) -> Absint {
    Analyzer::new(f, ipa).run()
}

/// Unconstrained meet operand (wider than any tracked i32 range).
const UNCONSTRAINED: Interval = Interval { lo: i64::MIN, hi: i64::MAX };

struct Analyzer<'a> {
    f: &'a IrFunc,
    /// Interprocedural summaries (when compiled with IPA context).
    ipa: Option<&'a ProgramSummaries>,
    doms: Dominators,
    /// Loop headers (phi widening points).
    headers: HashSet<BlockId>,
    /// Per-block refinement chain: branch conditions (with polarity) that
    /// hold on every path into the block.
    chains: Vec<Vec<(ValueId, bool)>>,
    /// Induction-phi clamps from `scev` (see module docs).
    iv_seed: BTreeMap<ValueId, Interval>,
    ranges: Vec<Interval>,
    tags: Vec<TagSet>,
    phi_bumps: Vec<u8>,
}

impl<'a> Analyzer<'a> {
    fn new(f: &'a IrFunc, ipa: Option<&'a ProgramSummaries>) -> Self {
        let doms = Dominators::compute(f);
        let loops = find_loops(f, &doms);
        let headers: HashSet<BlockId> = loops.iter().map(|l| l.header).collect();

        // Induction-variable seeding: an IndVar whose overflow check is
        // real (Deopt/Abort) cannot wrap, so it never crosses its initial
        // value against the step direction.
        let mut iv_seed = BTreeMap::new();
        for l in &loops {
            for iv in scev::induction_vars(f, l) {
                let checked = matches!(
                    f.inst(iv.update).check_mode(),
                    Some(CheckMode::Deopt) | Some(CheckMode::Abort)
                );
                if !checked {
                    continue;
                }
                let clamp = if let InstKind::ConstI32(init) = f.inst(iv.init).kind {
                    if iv.increasing() {
                        Interval::new(init as i64, Interval::FULL.hi)
                    } else {
                        Interval::new(Interval::FULL.lo, init as i64)
                    }
                } else {
                    continue;
                };
                iv_seed.insert(iv.phi, clamp);
            }
        }

        let n = f.insts.len();
        let chains = build_chains(f, &doms);
        Analyzer {
            f,
            ipa,
            doms,
            headers,
            chains,
            iv_seed,
            ranges: vec![Interval::EMPTY; n],
            tags: vec![TagSet::NONE; n],
            phi_bumps: vec![0; n],
        }
    }

    fn run(mut self) -> Absint {
        // Ascending phase (with widening).
        let mut converged = false;
        for _ in 0..MAX_SWEEPS {
            if !self.sweep(true) {
                converged = true;
                break;
            }
        }
        if !converged {
            // Should be unreachable (widening bounds the chain); bail to
            // "no facts, no verdicts" rather than judge a non-fixpoint.
            debug_assert!(false, "absint failed to converge in {MAX_SWEEPS} sweeps");
            let n = self.f.insts.len();
            return Absint {
                verdicts: BTreeMap::new(),
                ranges: vec![Interval::FULL; n],
                tags: vec![TagSet::ANY; n],
            };
        }
        // Descending phase (bounded narrowing).
        for _ in 0..NARROW_SWEEPS {
            if !self.sweep(false) {
                break;
            }
        }
        let verdicts = self.judge();
        Absint { verdicts, ranges: self.ranges, tags: self.tags }
    }

    /// One pass over all reachable blocks in RPO. Returns true when any
    /// fact changed. `ascending` selects join-and-widen (sound ascent)
    /// versus plain recomputation (sound descent from a post-fixpoint).
    fn sweep(&mut self, ascending: bool) -> bool {
        let mut changed = false;
        for &b in &self.doms.rpo.clone() {
            for &v in &self.f.blocks[b.0 as usize].insts {
                let i = v.0 as usize;
                match self.f.inst(v).ty() {
                    Ty::I32 => {
                        let mut new = self.compute_range(v, b);
                        if let Some(clamp) = self.iv_seed.get(&v) {
                            new = new.meet(*clamp);
                        }
                        let old = self.ranges[i];
                        let stored = if ascending {
                            let joined = old.join(new);
                            // Widening points: loop-header phis, and
                            // CheckInt32 — `boxed_range` chases unboxed
                            // values through *boxed* phi cycles, and the
                            // check is the only door those ranges re-enter
                            // the int lattice through, so it must cut the
                            // ascending chain too.
                            let widen_point = (self.headers.contains(&b)
                                && matches!(self.f.inst(v).kind, InstKind::Phi { .. }))
                                || matches!(self.f.inst(v).kind, InstKind::CheckInt32 { .. });
                            if joined != old && widen_point {
                                self.phi_bumps[i] = self.phi_bumps[i].saturating_add(1);
                                if self.phi_bumps[i] > WIDEN_AFTER {
                                    old.widen(joined)
                                } else {
                                    joined
                                }
                            } else {
                                joined
                            }
                        } else {
                            new
                        };
                        if stored != old {
                            self.ranges[i] = stored;
                            changed = true;
                        }
                    }
                    Ty::Boxed => {
                        let new = self.compute_tags(v);
                        let stored = if ascending { self.tags[i].join(new) } else { new };
                        if stored != self.tags[i] {
                            self.tags[i] = stored;
                            changed = true;
                        }
                    }
                    _ => {}
                }
            }
        }
        changed
    }

    /// Range of `v` as seen from inside block `b`: the global range met
    /// with every dominating branch constraint on `v`.
    fn eval_range(&self, v: ValueId, b: BlockId) -> Interval {
        let mut r = self.ranges[v.0 as usize];
        for &(cond, polarity) in &self.chains[b.0 as usize] {
            r = r.meet(self.constraint_on(v, cond, polarity, 0));
        }
        r
    }

    /// The constraint a branch condition (taken with `polarity`) puts on
    /// `v`, or [`UNCONSTRAINED`].
    fn constraint_on(&self, v: ValueId, cond: ValueId, polarity: bool, depth: u8) -> Interval {
        if depth > 4 {
            return UNCONSTRAINED;
        }
        match &self.f.inst(cond).kind {
            InstKind::BNot(x) => self.constraint_on(v, *x, !polarity, depth + 1),
            InstKind::ICmp { cond: c, a, b } => {
                let c = if polarity { *c } else { negate(*c) };
                if *a == v && self.f.inst(*b).ty() == Ty::I32 {
                    bound_from(c, self.ranges[b.0 as usize])
                } else if *b == v && self.f.inst(*a).ty() == Ty::I32 {
                    bound_from(swap(c), self.ranges[a.0 as usize])
                } else {
                    UNCONSTRAINED
                }
            }
            _ => UNCONSTRAINED,
        }
    }

    /// Transfer function for one `I32`-typed instruction evaluated in its
    /// defining block's context.
    fn compute_range(&self, v: ValueId, b: BlockId) -> Interval {
        use InstKind::*;
        let full = Interval::FULL;
        match &self.f.inst(v).kind {
            ConstI32(x) => Interval::constant(*x as i64),
            Phi { inputs, .. } => {
                let preds = &self.f.blocks[b.0 as usize].preds;
                let mut r = Interval::EMPTY;
                for (i, &input) in inputs.iter().enumerate() {
                    let Some(&p) = preds.get(i) else { continue };
                    let mut edge = self.eval_range(input, p);
                    // Refine by the condition on the incoming edge itself
                    // (covers latch-guarded loops).
                    if let Branch { cond, then_b, else_b } = &self.f.inst(self.f.terminator(p)).kind
                    {
                        if then_b != else_b {
                            let polarity = *then_b == b;
                            edge = edge.meet(self.constraint_on(input, *cond, polarity, 0));
                        }
                    }
                    r = r.join(edge);
                }
                r
            }
            CheckedAddI32 { a, b: rhs, mode } => {
                let r = self.eval_range(*a, b).add(self.eval_range(*rhs, b));
                checked_result(r, *mode)
            }
            CheckedSubI32 { a, b: rhs, mode } => {
                let r = self.eval_range(*a, b).sub(self.eval_range(*rhs, b));
                checked_result(r, *mode)
            }
            CheckedMulI32 { a, b: rhs, mode } => {
                let r = self.eval_range(*a, b).mul(self.eval_range(*rhs, b));
                checked_result(r, *mode)
            }
            CheckedNegI32 { a, mode } => {
                let r = self.eval_range(*a, b).neg();
                checked_result(r, *mode)
            }
            CheckedUShr { a, .. } => {
                let ia = self.eval_range(*a, b);
                if !ia.is_empty() && ia.lo >= 0 {
                    // (x as u32) >> s with x >= 0 never exceeds x.
                    Interval::new(0, ia.hi)
                } else {
                    full
                }
            }
            IBin { op, a, b: rhs } => {
                let ia = self.eval_range(*a, b);
                let ib = self.eval_range(*rhs, b);
                if ia.is_empty() || ib.is_empty() {
                    return full;
                }
                use crate::node::IBinOp::*;
                match op {
                    And if ia.lo >= 0 && ib.lo >= 0 => Interval::new(0, ia.hi.min(ib.hi)),
                    // For non-negative x, y: x|y <= x+y and x^y <= x+y.
                    Or | Xor if ia.lo >= 0 && ib.lo >= 0 => {
                        Interval::new(0, ia.hi.saturating_add(ib.hi).min(full.hi))
                    }
                    // Arithmetic shift keeps the sign and never grows the
                    // magnitude.
                    Sar => Interval::new(ia.lo.min(0), ia.hi.max(0)),
                    _ => full,
                }
            }
            // Payload of a passing speculation: any int32, narrowed by
            // whatever is known about the boxed source.
            CheckInt32 { v: x, .. } => self.boxed_range(*x, 0).meet(full),
            CheckF64ToI32 { .. } => full,
            _ => full,
        }
    }

    /// Transfer function for one boxed value.
    fn compute_tags(&self, v: ValueId) -> TagSet {
        use InstKind::*;
        match &self.f.inst(v).kind {
            Const(val) => TagSet::of_value(*val),
            BoxI32(_) => TagSet::INT,
            BoxF64(_) => TagSet::DOUBLE,
            BoxBool(_) => TagSet::BOOL,
            Phi { inputs, .. } => {
                let mut t = TagSet::NONE;
                for &input in inputs {
                    t = t.join(self.tags[input.0 as usize]);
                }
                t
            }
            // With IPA context, parameters carry the validated argument
            // precondition and call results the callee's return summary;
            // without it both stay top.
            Param(i) => self.param_fact(*i).map_or(TagSet::ANY, |a| a.tags),
            CallJs { callee, .. } => self.callee_fact(*callee).map_or(TagSet::ANY, |a| a.tags),
            CallRuntime { func, .. } => crate::ipa::AbsVal::of_ret_tag(func.signature().ret).tags,
            _ => TagSet::ANY,
        }
    }

    /// The validated precondition of parameter `i`, when analyzing with
    /// IPA context. `None` means "no fact" (top).
    fn param_fact(&self, i: u16) -> Option<crate::ipa::AbsVal> {
        let s = self.ipa?.get(self.f.func)?;
        s.params.get(i as usize).copied()
    }

    /// The return summary of a called MiniJS function, when analyzing
    /// with IPA context.
    fn callee_fact(&self, callee: nomap_bytecode::FuncId) -> Option<crate::ipa::AbsVal> {
        Some(self.ipa?.get(callee)?.ret)
    }

    /// Range of the int32 payload behind a boxed value, looking through
    /// boxes, constants, phis and (with IPA context) parameters and call
    /// results. Sound because an `AbsVal` range bounds the payload
    /// whenever the value is an int32 — which is exactly what a passing
    /// `CheckInt32` establishes.
    fn boxed_range(&self, v: ValueId, depth: u8) -> Interval {
        use InstKind::*;
        if depth > 4 {
            return Interval::FULL;
        }
        match &self.f.inst(v).kind {
            Const(val) => {
                if val.is_int32() {
                    Interval::constant(val.as_int32() as i64)
                } else {
                    // Never an int32: no passing execution exists.
                    Interval::EMPTY
                }
            }
            BoxI32(x) => self.ranges[x.0 as usize],
            Phi { inputs, .. } => {
                let mut r = Interval::EMPTY;
                for &input in inputs {
                    r = r.join(self.boxed_range(input, depth + 1));
                }
                r
            }
            Param(i) => self.param_fact(*i).map_or(Interval::FULL, |a| a.range),
            CallJs { callee, .. } => self.callee_fact(*callee).map_or(Interval::FULL, |a| a.range),
            _ => Interval::FULL,
        }
    }

    /// Abstract truth value of a Bool-typed SSA value in block `b`.
    fn abstract_bool(&self, v: ValueId, b: BlockId, depth: u8) -> Option<bool> {
        if depth > 4 {
            return None;
        }
        match &self.f.inst(v).kind {
            InstKind::ConstBool(k) => Some(*k),
            InstKind::BNot(x) => self.abstract_bool(*x, b, depth + 1).map(|k| !k),
            InstKind::ICmp { cond, a, b: rhs } => {
                if self.f.inst(*a).ty() != Ty::I32 || self.f.inst(*rhs).ty() != Ty::I32 {
                    return None;
                }
                let ia = self.eval_range(*a, b);
                let ib = self.eval_range(*rhs, b);
                definite_cmp(*cond, ia, ib)
            }
            _ => None,
        }
    }

    /// Produces the verdict map over all reachable checks.
    fn judge(&self) -> BTreeMap<ValueId, Verdict> {
        use InstKind::*;
        let mut out = BTreeMap::new();
        for &b in &self.doms.rpo {
            for &v in &self.f.blocks[b.0 as usize].insts {
                let inst = self.f.inst(v);
                if inst.check_kind().is_none() {
                    continue;
                }
                let verdict = match &inst.kind {
                    CheckedAddI32 { a, b: rhs, .. } => {
                        let ia = self.eval_range(*a, b);
                        let ib = self.eval_range(*rhs, b);
                        overflow_verdict(ia.add(ib), &format!("{ia}+{ib}"))
                    }
                    CheckedSubI32 { a, b: rhs, .. } => {
                        let ia = self.eval_range(*a, b);
                        let ib = self.eval_range(*rhs, b);
                        overflow_verdict(ia.sub(ib), &format!("{ia}-{ib}"))
                    }
                    CheckedMulI32 { a, b: rhs, .. } => {
                        let ia = self.eval_range(*a, b);
                        let ib = self.eval_range(*rhs, b);
                        let r = ia.mul(ib);
                        // Negative zero fires when the result is 0 with a
                        // negative operand; impossible when both operands
                        // are non-negative or neither can be zero.
                        let negzero_safe = (!ia.is_empty() && !ib.is_empty())
                            && ((ia.lo >= 0 && ib.lo >= 0) || !ia.contains(0) || !ib.contains(0));
                        match overflow_verdict(r, &format!("{ia}*{ib}")) {
                            Verdict::ProvedSafe { witness } if negzero_safe => {
                                Verdict::ProvedSafe {
                                    witness: format!("{witness}, no negative zero"),
                                }
                            }
                            Verdict::ProvedSafe { .. } => Verdict::Unknown,
                            other => other,
                        }
                    }
                    CheckedNegI32 { a, .. } => {
                        let ia = self.eval_range(*a, b);
                        if !ia.is_empty() && !ia.contains(0) && !ia.contains(i32::MIN as i64) {
                            Verdict::ProvedSafe {
                                witness: format!("neg {ia} avoids 0 and i32::MIN"),
                            }
                        } else if !ia.is_empty()
                            && (ia == Interval::constant(0)
                                || ia == Interval::constant(i32::MIN as i64))
                        {
                            Verdict::ProvedFail
                        } else {
                            Verdict::Unknown
                        }
                    }
                    CheckedUShr { a, .. } => {
                        let ia = self.eval_range(*a, b);
                        if !ia.is_empty() && ia.lo >= 0 {
                            Verdict::ProvedSafe { witness: format!("ushr of non-negative {ia}") }
                        } else if !ia.is_empty() && ia.hi < 0 {
                            Verdict::ProvedFail
                        } else {
                            Verdict::Unknown
                        }
                    }
                    CheckInt32 { v: x, .. } => self.tag_verdict(*x, TagSet::INT, "int32"),
                    CheckNumber { v: x, .. } => self.tag_verdict(*x, TagSet::NUMBER, "number"),
                    CheckBool { v: x, .. } => self.tag_verdict(*x, TagSet::BOOL, "bool"),
                    CheckShape { v: x, .. }
                    | CheckArray { v: x, .. }
                    | CheckString { v: x, .. } => {
                        // Kind/shape facts are not tracked, so only the
                        // always-fails direction is decidable.
                        let t = self.tags[x.0 as usize];
                        if !t.is_none() && t.meet(TagSet::CELL).is_none() {
                            Verdict::ProvedFail
                        } else {
                            Verdict::Unknown
                        }
                    }
                    CheckF64ToI32 { .. } => Verdict::Unknown,
                    Guard { cond, .. } => match self.abstract_bool(*cond, b, 0) {
                        Some(false) => Verdict::ProvedSafe {
                            witness: "guard condition provably false".to_owned(),
                        },
                        Some(true) => Verdict::ProvedFail,
                        None => Verdict::Unknown,
                    },
                    _ => Verdict::Unknown,
                };
                out.insert(v, verdict);
            }
        }
        out
    }

    fn tag_verdict(&self, v: ValueId, want: TagSet, name: &str) -> Verdict {
        let t = self.tags[v.0 as usize];
        if t.is_none() {
            Verdict::Unknown
        } else if t.subset_of(want) {
            Verdict::ProvedSafe { witness: format!("tags {} always {name}", t.describe()) }
        } else if t.meet(want).is_none() {
            Verdict::ProvedFail
        } else {
            Verdict::Unknown
        }
    }
}

/// Result range of a checked int32 op: exact when the check is enforced
/// (failing executions define no value), conservatively full-int32 when
/// the op may silently wrap (`Sof`/`Removed`).
fn checked_result(r: Interval, mode: CheckMode) -> Interval {
    match mode {
        CheckMode::Deopt | CheckMode::Abort => r.meet(Interval::FULL),
        CheckMode::Sof | CheckMode::Removed => {
            if r.subset_of(Interval::FULL) {
                r
            } else {
                Interval::FULL
            }
        }
    }
}

fn overflow_verdict(r: Interval, expr: &str) -> Verdict {
    if r.is_empty() {
        Verdict::Unknown
    } else if r.subset_of(Interval::FULL) {
        Verdict::ProvedSafe { witness: format!("{expr} = {r} within i32") }
    } else if r.meet(Interval::FULL).is_empty() {
        Verdict::ProvedFail
    } else {
        Verdict::Unknown
    }
}

/// Negation of a condition (`!(a < b)` is `a >= b`, ...).
fn negate(c: Cond) -> Cond {
    match c {
        Cond::Eq => Cond::Ne,
        Cond::Ne => Cond::Eq,
        Cond::Lt => Cond::Ge,
        Cond::Le => Cond::Gt,
        Cond::Gt => Cond::Le,
        Cond::Ge => Cond::Lt,
        Cond::Below => Cond::AboveEq,
        Cond::AboveEq => Cond::Below,
    }
}

/// Operand swap (`a < b` is `b > a`, ...).
fn swap(c: Cond) -> Cond {
    match c {
        Cond::Eq => Cond::Eq,
        Cond::Ne => Cond::Ne,
        Cond::Lt => Cond::Gt,
        Cond::Le => Cond::Ge,
        Cond::Gt => Cond::Lt,
        Cond::Ge => Cond::Le,
        Cond::Below => Cond::AboveEq, // "a below b" gives "b above a" >= a+1; keep coarse
        Cond::AboveEq => Cond::Below,
    }
}

/// Interval constraint on the left operand of `v <c> other`, given the
/// other operand's range. [`UNCONSTRAINED`] when nothing convex follows.
fn bound_from(c: Cond, other: Interval) -> Interval {
    if other.is_empty() {
        return UNCONSTRAINED;
    }
    match c {
        Cond::Eq => other,
        Cond::Ne => UNCONSTRAINED,
        Cond::Lt => Interval { lo: UNCONSTRAINED.lo, hi: other.hi.saturating_sub(1) },
        Cond::Le => Interval { lo: UNCONSTRAINED.lo, hi: other.hi },
        Cond::Gt => Interval { lo: other.lo.saturating_add(1), hi: UNCONSTRAINED.hi },
        Cond::Ge => Interval { lo: other.lo, hi: UNCONSTRAINED.hi },
        // Unsigned below a non-negative bound pins the value into
        // [0, hi-1]: negative int32s sign-extend to huge unsigned words.
        Cond::Below if other.lo >= 0 => Interval::new(0, other.hi.saturating_sub(1)),
        _ => UNCONSTRAINED,
    }
}

/// Definite truth of `a <c> b` over intervals, `None` when undecided.
/// `Below`/`AboveEq` compare the sign-extended words unsigned.
fn definite_cmp(c: Cond, a: Interval, b: Interval) -> Option<bool> {
    if a.is_empty() || b.is_empty() {
        return None;
    }
    match c {
        Cond::Eq => {
            if a.lo == a.hi && b.lo == b.hi && a.lo == b.lo {
                Some(true)
            } else if a.meet(b).is_empty() {
                Some(false)
            } else {
                None
            }
        }
        Cond::Ne => definite_cmp(Cond::Eq, a, b).map(|k| !k),
        Cond::Lt => {
            if a.hi < b.lo {
                Some(true)
            } else if a.lo >= b.hi {
                Some(false)
            } else {
                None
            }
        }
        Cond::Le => definite_cmp(Cond::Gt, a, b).map(|k| !k),
        Cond::Gt => definite_cmp(Cond::Lt, b, a),
        Cond::Ge => definite_cmp(Cond::Lt, a, b).map(|k| !k),
        Cond::Below => {
            let (alo, ahi) = a.as_unsigned()?;
            let (blo, bhi) = b.as_unsigned()?;
            if ahi < blo {
                Some(true)
            } else if alo >= bhi {
                Some(false)
            } else {
                None
            }
        }
        Cond::AboveEq => definite_cmp(Cond::Below, a, b).map(|k| !k),
    }
}

/// For each reachable block, the chain of branch conditions (and their
/// polarity) known to hold on entry: conditions guarding single-entry
/// dominators of the block.
fn build_chains(f: &IrFunc, doms: &Dominators) -> Vec<Vec<(ValueId, bool)>> {
    let mut chains = vec![Vec::new(); f.blocks.len()];
    for &b in &doms.rpo {
        let mut chain = Vec::new();
        let mut d = Some(b);
        while let Some(cur) = d {
            let preds = &f.blocks[cur.0 as usize].preds;
            if preds.len() == 1 {
                let p = preds[0];
                if let InstKind::Branch { cond, then_b, else_b } = &f.inst(f.terminator(p)).kind {
                    if then_b != else_b {
                        if *then_b == cur {
                            chain.push((*cond, true));
                        } else if *else_b == cur {
                            chain.push((*cond, false));
                        }
                    }
                }
            }
            d = doms.idom(cur);
        }
        chains[b.0 as usize] = chain;
    }
    chains
}

#[cfg(test)]
mod tests {
    use nomap_machine::CheckKind;
    use nomap_runtime::Value;

    use super::*;
    use crate::node::Inst;

    /// `for (i = 0; i < n; i++) { t = i + 1; }` with `n` an opaque
    /// parameter payload: the loop-counter increment cannot overflow
    /// because the dominating `i < n` bounds `i` away from `i32::MAX`.
    #[test]
    fn loop_counter_increment_is_proved_safe() {
        use InstKind::*;
        let mut f = IrFunc::new(nomap_bytecode::FuncId(0), "t", 1, 4);
        let entry = f.entry;
        let header = f.new_block();
        let body = f.new_block();
        let exit = f.new_block();

        let n_boxed = f.append(entry, Inst::new(Param(0)));
        let n = f.append(entry, Inst::new(CheckInt32 { v: n_boxed, mode: CheckMode::Deopt }));
        let zero = f.append(entry, Inst::new(ConstI32(0)));
        let one = f.append(entry, Inst::new(ConstI32(1)));
        f.append(entry, Inst::new(Jump { target: header }));

        let phi = f.append(header, Inst::new(Phi { inputs: vec![zero], ty: Ty::I32 }));
        let cmp = f.append(header, Inst::new(ICmp { cond: Cond::Lt, a: phi, b: n }));
        f.append(header, Inst::new(Branch { cond: cmp, then_b: body, else_b: exit }));

        let inc =
            f.append(body, Inst::new(CheckedAddI32 { a: phi, b: one, mode: CheckMode::Deopt }));
        f.append(body, Inst::new(Jump { target: header }));
        if let Phi { inputs, .. } = &mut f.inst_mut(phi).kind {
            inputs.push(inc);
        }

        let ret = f.append(exit, Inst::new(Const(Value::UNDEFINED)));
        f.append(exit, Inst::new(Return { v: ret }));
        f.compute_preds();
        f.verify().unwrap();

        let a = analyze(&f);
        // The counter phi stays at or above its init.
        assert!(a.range_of(phi).lo >= 0, "phi range {}", a.range_of(phi));
        assert!(
            matches!(a.verdicts[&inc], Verdict::ProvedSafe { .. }),
            "increment verdict {:?}",
            a.verdicts[&inc]
        );
        // The bounding comparison itself stays undecided.
        assert!(!a.verdicts.contains_key(&cmp));
    }

    /// An accumulator `s += i` has no bound, so its overflow check must
    /// stay `Unknown`; a type check on a phi of two boxed ints is proved.
    #[test]
    fn unbounded_accumulator_stays_unknown_and_tags_prove_types() {
        use InstKind::*;
        let mut f = IrFunc::new(nomap_bytecode::FuncId(0), "t", 1, 4);
        let entry = f.entry;
        let then_b = f.new_block();
        let else_b = f.new_block();
        let join = f.new_block();

        let p = f.append(entry, Inst::new(Param(0)));
        let pv = f.append(entry, Inst::new(CheckInt32 { v: p, mode: CheckMode::Deopt }));
        let zero = f.append(entry, Inst::new(ConstI32(0)));
        let cmp = f.append(entry, Inst::new(ICmp { cond: Cond::Lt, a: pv, b: zero }));
        f.append(entry, Inst::new(Branch { cond: cmp, then_b, else_b }));

        let a_box = f.append(then_b, Inst::new(BoxI32(zero)));
        f.append(then_b, Inst::new(Jump { target: join }));
        let b_box = f.append(else_b, Inst::new(Const(Value::new_int32(7))));
        f.append(else_b, Inst::new(Jump { target: join }));

        let phi = f.append(join, Inst::new(Phi { inputs: vec![a_box, b_box], ty: Ty::Boxed }));
        let unboxed = f.append(join, Inst::new(CheckInt32 { v: phi, mode: CheckMode::Deopt }));
        let sum =
            f.append(join, Inst::new(CheckedAddI32 { a: unboxed, b: pv, mode: CheckMode::Deopt }));
        let rb = f.append(join, Inst::new(BoxI32(sum)));
        f.append(join, Inst::new(Return { v: rb }));
        f.compute_preds();
        f.verify().unwrap();

        let a = analyze(&f);
        assert_eq!(a.tags_of(phi), TagSet::INT);
        assert!(matches!(a.verdicts[&unboxed], Verdict::ProvedSafe { .. }));
        // pv is a full-range int32, so the sum may overflow.
        assert_eq!(a.verdicts[&sum], Verdict::Unknown);
        // The guard-kind taxonomy is what prove_checks keys stats by.
        assert_eq!(f.inst(unboxed).check_kind(), Some(CheckKind::Type));
    }

    /// Branch refinement proves a guard along the taken edge: inside
    /// `if (x < 10)`, the guard `x >= 100` is provably false.
    #[test]
    fn dominating_branch_condition_proves_guard_false() {
        use InstKind::*;
        let mut f = IrFunc::new(nomap_bytecode::FuncId(0), "t", 1, 4);
        let entry = f.entry;
        let then_b = f.new_block();
        let exit = f.new_block();

        let p = f.append(entry, Inst::new(Param(0)));
        let x = f.append(entry, Inst::new(CheckInt32 { v: p, mode: CheckMode::Deopt }));
        let ten = f.append(entry, Inst::new(ConstI32(10)));
        let hundred = f.append(entry, Inst::new(ConstI32(100)));
        let cmp = f.append(entry, Inst::new(ICmp { cond: Cond::Lt, a: x, b: ten }));
        f.append(entry, Inst::new(Branch { cond: cmp, then_b, else_b: exit }));

        let ge100 = f.append(then_b, Inst::new(ICmp { cond: Cond::Ge, a: x, b: hundred }));
        let guard = f.append(
            then_b,
            Inst::new(Guard { kind: CheckKind::Other, cond: ge100, mode: CheckMode::Deopt }),
        );
        f.append(then_b, Inst::new(Jump { target: exit }));

        let ret = f.append(exit, Inst::new(Const(Value::UNDEFINED)));
        f.append(exit, Inst::new(Return { v: ret }));
        f.compute_preds();
        f.verify().unwrap();

        let a = analyze(&f);
        assert!(
            matches!(a.verdicts[&guard], Verdict::ProvedSafe { .. }),
            "guard verdict {:?}",
            a.verdicts[&guard]
        );
    }
}
