//! Interprocedural summary analysis (IPA).
//!
//! Three passes over the SCC condensation of the exact call graph:
//!
//! 1. **Bottom-up returns/effects**: with every parameter at TOP, iterate
//!    each SCC to a post-fixpoint of [`summary::analyze_function`],
//!    widening return intervals and write-footprint bounds at SCC
//!    back-edges (a re-iteration of a cyclic component) so recursion
//!    converges instead of climbing forever.
//! 2. **Top-down argument preconditions**: walk the SCC DAG callers-first
//!    and set each non-root function's parameter precondition to the join
//!    of the abstract arguments at every in-program call site (cyclic
//!    components iterate with widening). Roots — `main`, the harness
//!    entry `run`, and every function with no in-program caller — keep
//!    TOP parameters: they can be invoked by the host with anything.
//! 3. **Descending refinement**: recompute returns/effects under the
//!    refined preconditions. One application of a monotone `F` to a
//!    post-fixpoint stays a post-fixpoint (`F(new) = F(F(old)) ⊑ F(old)
//!    = new`), so the result is still *inductive* — exactly the property
//!    the `ipa_tv` translation validator re-checks per summary.
//!
//! The closed-world assumption behind the root set is enforced
//! dynamically by the VM: a host call whose arguments escape the claimed
//! precondition invalidates compiled code and re-summarizes with that
//! function as an extra root.

pub mod callgraph;
pub mod summary;

use std::collections::{BTreeMap, BTreeSet};

use nomap_bytecode::{FuncId, Program};
use nomap_runtime::HeapEffect;

pub use callgraph::CallGraph;
pub use summary::{analyze_function, AbsVal, FuncFacts, FuncSummary, LINE_CAP};

/// Iterations of a cyclic SCC before widening kicks in.
pub const WIDEN_AFTER: usize = 2;
/// Hard cap on SCC iterations; the sound driver falls back to TOP
/// summaries for the whole component if it somehow fails to stabilize.
pub const MAX_ITERS: usize = 64;
/// Iteration cap for the intentionally unsound variant (which never
/// widens): it stops here and *keeps the non-converged iterate*.
const UNSOUND_ITERS: usize = 8;

/// All interprocedural facts for one program.
#[derive(Debug, Clone)]
pub struct ProgramSummaries {
    /// Per-function summaries.
    pub summaries: BTreeMap<FuncId, FuncSummary>,
    /// The call graph the fixpoint ran over.
    pub graph: CallGraph,
    /// Functions whose parameters are pinned at TOP (host-reachable).
    pub roots: BTreeSet<FuncId>,
}

impl ProgramSummaries {
    /// Summary for `f` (TOP-equivalent fallback for unknown ids).
    pub fn get(&self, f: FuncId) -> Option<&FuncSummary> {
        self.summaries.get(&f)
    }
}

/// Computes sound summaries for `p` under the default root set.
pub fn summarize(p: &Program) -> ProgramSummaries {
    summarize_with_roots(p, &BTreeSet::new())
}

/// Computes sound summaries with `extra_roots` forced into the root set
/// (the VM's host-call invalidation path).
pub fn summarize_with_roots(p: &Program, extra_roots: &BTreeSet<FuncId>) -> ProgramSummaries {
    summarize_impl(p, extra_roots, true)
}

/// Mutation-test variant that **skips widening at SCC back-edges** and
/// keeps a capped, possibly non-converged iterate — an intentionally
/// unsound summary the `ipa_tv` translation validator must reject. Not
/// part of any pipeline.
#[doc(hidden)]
pub fn summarize_unsound(p: &Program) -> ProgramSummaries {
    summarize_impl(p, &BTreeSet::new(), false)
}

/// The root set: `main`, the harness entry `run`, every function without
/// an in-program caller, plus `extra`.
pub fn roots(p: &Program, graph: &CallGraph, extra: &BTreeSet<FuncId>) -> BTreeSet<FuncId> {
    let mut out = graph.uncalled();
    out.insert(Program::MAIN);
    if let Some(&run) = p.function_ids.get("run") {
        out.insert(run);
    }
    out.extend(extra.iter().copied());
    out
}

fn summarize_impl(p: &Program, extra_roots: &BTreeSet<FuncId>, widen: bool) -> ProgramSummaries {
    let graph = CallGraph::build(p);
    let roots = roots(p, &graph, extra_roots);
    let mut summaries: BTreeMap<FuncId, FuncSummary> = p
        .functions
        .iter()
        .map(|f| {
            (
                f.id,
                FuncSummary {
                    ret: AbsVal::BOTTOM,
                    params: vec![AbsVal::TOP; f.param_count as usize],
                    effect: HeapEffect::Pure,
                    clobbers: false,
                    callees: graph.callees.get(&f.id).cloned().unwrap_or_default(),
                },
            )
        })
        .collect();

    // ---- pass 1: bottom-up returns/effects under TOP parameters --------
    ascend(p, &graph, &mut summaries, widen);

    // ---- pass 2: top-down argument preconditions (callers first) -------
    // Cache of each finalized function's outgoing call arguments.
    let mut out_args: BTreeMap<FuncId, Vec<(FuncId, Vec<AbsVal>)>> = BTreeMap::new();
    for (scc_idx, scc) in graph.sccs.iter().enumerate().rev() {
        let cyclic = graph.is_cyclic(scc_idx);
        let members: BTreeSet<FuncId> = scc.iter().copied().collect();
        let iters = if cyclic {
            if widen {
                MAX_ITERS
            } else {
                UNSOUND_ITERS
            }
        } else {
            1
        };
        for iter in 0..iters {
            let mut changed = false;
            // Arguments from SCC members are recomputed with their
            // current preconditions; outside callers are already final.
            let mut member_args: BTreeMap<FuncId, Vec<(FuncId, Vec<AbsVal>)>> = BTreeMap::new();
            for &fid in scc {
                let facts = analyze_function(p.function(fid), &summaries[&fid].params, &summaries);
                member_args.insert(fid, facts.call_args);
            }
            for &fid in scc {
                if roots.contains(&fid) {
                    continue;
                }
                let pc = summaries[&fid].params.len();
                let mut joined = vec![AbsVal::BOTTOM; pc];
                let callers = graph.callers.get(&fid).cloned().unwrap_or_default();
                for caller in callers {
                    let args_of = if members.contains(&caller) {
                        member_args.get(&caller)
                    } else {
                        out_args.get(&caller)
                    };
                    let Some(sites) = args_of else {
                        // Caller not yet processed (unreachable with a
                        // correct topo order) — be conservative.
                        joined = vec![AbsVal::TOP; pc];
                        break;
                    };
                    for (callee, args) in sites {
                        if *callee != fid {
                            continue;
                        }
                        for (k, slot) in joined.iter_mut().enumerate() {
                            // Missing actual arguments arrive undefined.
                            let arg = args.get(k).copied().unwrap_or(AbsVal::UNDEF);
                            *slot = slot.join(arg);
                        }
                    }
                }
                let old = summaries[&fid].params.clone();
                let apply_widening = widen && cyclic && iter >= WIDEN_AFTER;
                let new: Vec<AbsVal> = old
                    .iter()
                    .zip(&joined)
                    .map(|(&o, &j)| {
                        // Preconditions only ever shrink from TOP in this
                        // pass on the first iterate; on cyclic re-iterates
                        // they may grow, hence join/widen against the
                        // previous non-TOP iterate.
                        if iter == 0 {
                            j
                        } else if apply_widening {
                            o.widen(o.join(j))
                        } else {
                            o.join(j)
                        }
                    })
                    .collect();
                if new != old {
                    summaries.get_mut(&fid).expect("initialized").params = new;
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
        // Finalize: cache outgoing args under the final preconditions.
        for &fid in scc {
            let facts = analyze_function(p.function(fid), &summaries[&fid].params, &summaries);
            out_args.insert(fid, facts.call_args);
        }
    }

    // ---- pass 3: re-ascend under the refined preconditions -------------
    // Descending rounds cannot improve effects through a cycle (each
    // member's recomputation keeps the other's stale summary), so instead
    // rebuild returns/effects from BOTTOM with the — now fixed —
    // preconditions. The result is a genuine post-fixpoint of the same
    // transfer, hence inductive, and by monotonicity no larger than the
    // pass-1 summaries computed under TOP parameters.
    for s in summaries.values_mut() {
        s.ret = AbsVal::BOTTOM;
        s.effect = HeapEffect::Pure;
        s.clobbers = false;
    }
    ascend(p, &graph, &mut summaries, widen);

    ProgramSummaries { summaries, graph, roots }
}

/// Bottom-up SCC fixpoint of returns/effects, leaving parameter
/// preconditions untouched. `widen` selects the sound driver (widening at
/// cyclic back-edges from [`WIDEN_AFTER`], TOP fallback at [`MAX_ITERS`])
/// versus the intentionally unsound mutation variant (joins only, capped,
/// keeping the non-converged iterate).
fn ascend(
    p: &Program,
    graph: &CallGraph,
    summaries: &mut BTreeMap<FuncId, FuncSummary>,
    widen: bool,
) {
    for (scc_idx, scc) in graph.sccs.iter().enumerate() {
        let cyclic = graph.is_cyclic(scc_idx);
        let iters = if widen { MAX_ITERS } else { UNSOUND_ITERS };
        let mut converged = false;
        for iter in 0..iters {
            let mut changed = false;
            for &fid in scc {
                let facts = analyze_function(p.function(fid), &summaries[&fid].params, summaries);
                let old = summaries[&fid].clone();
                let apply_widening = widen && cyclic && iter >= WIDEN_AFTER;
                let new_ret = if apply_widening {
                    old.ret.widen(old.ret.join(facts.ret))
                } else {
                    old.ret.join(facts.ret)
                };
                let new_eff = grow_effect(old.effect, facts.effect, apply_widening);
                let new_clobbers = old.clobbers | facts.clobbers;
                if new_ret != old.ret || new_eff != old.effect || new_clobbers != old.clobbers {
                    let s = summaries.get_mut(&fid).expect("initialized");
                    s.ret = new_ret;
                    s.effect = new_eff;
                    s.clobbers = new_clobbers;
                    changed = true;
                }
            }
            if !changed {
                converged = true;
                break;
            }
        }
        if widen && !converged {
            // Safety valve: an SCC that somehow failed to stabilize under
            // widening goes to TOP wholesale (sound, never precise).
            for &fid in scc {
                let callees = summaries[&fid].callees.clone();
                let pc = summaries[&fid].params.len();
                let params = summaries[&fid].params.clone();
                let mut top = FuncSummary::top(pc, callees);
                top.params = params;
                summaries.insert(fid, top);
            }
        }
    }
}

/// Effect-lattice order (`WritesBounded` ordered by its bound).
pub fn effect_le(a: HeapEffect, b: HeapEffect) -> bool {
    use HeapEffect::*;
    match (a, b) {
        (Pure, _) => true,
        (_, Pure) => false,
        (ReadsHeap, _) => true,
        (_, ReadsHeap) => false,
        (WritesBounded(x), WritesBounded(y)) => x <= y,
        (WritesBounded(_), WritesUnbounded) => true,
        (WritesUnbounded, WritesBounded(_)) => false,
        (WritesUnbounded, WritesUnbounded) => true,
    }
}

/// Accumulates a newly recomputed effect into the previous iterate; when
/// `widen` is set, a *growing* bounded footprint jumps straight to
/// unbounded (the effect-lattice widening for recursion).
fn grow_effect(old: HeapEffect, new: HeapEffect, widen: bool) -> HeapEffect {
    use HeapEffect::*;
    let joined = old.join(new);
    if widen {
        if let (WritesBounded(o), WritesBounded(j)) = (old, joined) {
            if j > o {
                return WritesUnbounded;
            }
        }
    }
    joined
}

#[cfg(test)]
mod tests {
    use super::*;

    fn program(src: &str) -> Program {
        nomap_bytecode::compile_program(src).expect("compiles")
    }

    #[test]
    fn straight_line_summaries_are_precise() {
        let p = program(
            "function five() { return 5; }
             function run() { return five(); }",
        );
        let s = summarize(&p);
        let five = p.function_ids["five"];
        let sum = &s.summaries[&five];
        assert_eq!(sum.ret, AbsVal::int_const(5));
        assert_eq!(sum.effect, HeapEffect::Pure);
        assert!(!sum.clobbers);
        // run() forwards five()'s interval.
        let run = p.function_ids["run"];
        assert_eq!(s.summaries[&run].ret, AbsVal::int_const(5));
        assert!(s.roots.contains(&run));
        assert!(s.roots.contains(&Program::MAIN));
        assert!(!s.roots.contains(&five));
    }

    #[test]
    fn call_site_args_become_preconditions() {
        let p = program(
            "function double(x) { return x + x; }
             function run() { return double(21) + double(10); }",
        );
        let s = summarize(&p);
        let double = p.function_ids["double"];
        let sum = &s.summaries[&double];
        // x joins {21, 10} = int[10,21]; the return refines to [20,42].
        assert_eq!(sum.params.len(), 1);
        assert_eq!(sum.params[0].tags, crate::ranges::TagSet::INT);
        assert_eq!(sum.params[0].range, crate::ranges::Interval::new(10, 21));
        assert_eq!(sum.ret.tags, crate::ranges::TagSet::INT);
        assert_eq!(sum.ret.range, crate::ranges::Interval::new(20, 42));
    }

    /// Mutual recursion must reach a fixpoint (SCC-convergence test from
    /// the issue): `even`/`odd` call each other with a shrinking argument
    /// and return booleans.
    #[test]
    fn mutual_recursion_converges() {
        let p = program(
            "function even(n) { if (n == 0) { return true; } return odd(n - 1); }
             function odd(n) { if (n == 0) { return false; } return even(n - 1); }
             function run() { return even(40); }",
        );
        let s = summarize(&p);
        let even = p.function_ids["even"];
        let odd = p.function_ids["odd"];
        assert_eq!(s.graph.scc_of[&even], s.graph.scc_of[&odd], "one SCC");
        assert!(s.graph.is_cyclic(s.graph.scc_of[&even]));
        for f in [even, odd] {
            let sum = &s.summaries[&f];
            assert_eq!(sum.ret.tags, crate::ranges::TagSet::BOOL, "{f}: {:?}", sum.ret);
            assert_eq!(sum.effect, HeapEffect::Pure);
        }
    }

    /// Self-recursion with a growing return: widening must cap the
    /// ascending chain ([0,0], [0,1], [0,2], ... would never converge
    /// without it), and the result must stay a post-fixpoint.
    #[test]
    fn growing_recursion_widens_to_a_post_fixpoint() {
        let p = program(
            "function count(n) { if (n <= 0) { return 0; } return 1 + count(n - 1); }
             function run() { return count(100); }",
        );
        let s = summarize(&p);
        let count = p.function_ids["count"];
        let sum = &s.summaries[&count];
        // Still an int32-tagged return...
        assert!(sum.ret.tags.subset_of(crate::ranges::TagSet::NUMBER));
        // ...and inductive: one more application stays inside the claim.
        let facts = analyze_function(p.function(count), &sum.params, &s.summaries);
        assert!(facts.ret.subset_of(sum.ret), "{} ⊄ {}", facts.ret, sum.ret);
        assert!(effect_le(facts.effect, sum.effect));
    }

    /// The unsound variant (no widening, capped iteration) must leave a
    /// non-inductive claim behind on the same growing recursion.
    #[test]
    fn unsound_variant_is_not_inductive() {
        let p = program(
            "function count(n) { if (n <= 0) { return 0; } return 1 + count(n - 1); }
             function run() { return count(100); }",
        );
        let bad = summarize_unsound(&p);
        let count = p.function_ids["count"];
        let claimed = &bad.summaries[&count];
        let facts = analyze_function(p.function(count), &claimed.params, &bad.summaries);
        assert!(
            !facts.ret.subset_of(claimed.ret),
            "mutation unexpectedly converged: F(C)={} ⊆ C={}",
            facts.ret,
            claimed.ret
        );
    }

    #[test]
    fn effects_classify_writers_and_readers() {
        let p = program(
            "var acc = 0;
             function pure_math(x) { return x * x + 1; }
             function reader(a) { return a[0]; }
             function writer(a) { a[0] = 1; return 0; }
             function global_writer(x) { acc = x; return x; }
             function run() {
                 var a = new Array(4);
                 return pure_math(2) + reader(a) + writer(a) + global_writer(3);
             }",
        );
        let s = summarize(&p);
        let get = |name: &str| &s.summaries[&p.function_ids[name]];
        assert_eq!(get("pure_math").effect, HeapEffect::Pure);
        assert!(!get("pure_math").clobbers);
        assert_eq!(get("reader").effect, HeapEffect::ReadsHeap);
        assert!(!get("reader").clobbers);
        assert_eq!(get("writer").effect, HeapEffect::WritesUnbounded);
        assert!(get("writer").clobbers);
        // One global slot: bounded single-line write, even though the
        // caller may loop it.
        assert_eq!(get("global_writer").effect, HeapEffect::WritesBounded(1));
        assert!(get("global_writer").clobbers);
    }
}
