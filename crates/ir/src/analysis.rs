//! CFG analyses: dominators, natural loops, preheaders.

use std::collections::BTreeSet;

use crate::graph::{BlockId, IrFunc, ValueId};
use crate::node::{Inst, InstKind};

/// Immediate-dominator tree (Cooper–Harvey–Kennedy iterative algorithm).
#[derive(Debug, Clone)]
pub struct Dominators {
    idom: Vec<Option<BlockId>>,
    rpo_index: Vec<usize>,
    /// Reverse post-order of reachable blocks.
    pub rpo: Vec<BlockId>,
}

impl Dominators {
    /// Computes dominators for `f` (predecessors must be up to date).
    pub fn compute(f: &IrFunc) -> Self {
        let rpo = f.rpo();
        let n = f.blocks.len();
        let mut rpo_index = vec![usize::MAX; n];
        for (i, &b) in rpo.iter().enumerate() {
            rpo_index[b.0 as usize] = i;
        }
        let mut idom: Vec<Option<BlockId>> = vec![None; n];
        idom[f.entry.0 as usize] = Some(f.entry);
        let mut changed = true;
        while changed {
            changed = false;
            for &b in rpo.iter().skip(1) {
                let preds: Vec<BlockId> = f.blocks[b.0 as usize]
                    .preds
                    .iter()
                    .copied()
                    .filter(|p| idom[p.0 as usize].is_some())
                    .collect();
                let Some(&first) = preds.first() else { continue };
                let mut new_idom = first;
                for &p in &preds[1..] {
                    new_idom = intersect(&idom, &rpo_index, &rpo, p, new_idom);
                }
                if idom[b.0 as usize] != Some(new_idom) {
                    idom[b.0 as usize] = Some(new_idom);
                    changed = true;
                }
            }
        }
        Dominators { idom, rpo_index, rpo }
    }

    /// Immediate dominator of `b` (`None` for the entry or unreachable
    /// blocks).
    pub fn idom(&self, b: BlockId) -> Option<BlockId> {
        let d = self.idom[b.0 as usize]?;
        if d == b {
            None
        } else {
            Some(d)
        }
    }

    /// Does `a` dominate `b`?
    pub fn dominates(&self, a: BlockId, mut b: BlockId) -> bool {
        loop {
            if a == b {
                return true;
            }
            match self.idom(b) {
                Some(d) => b = d,
                None => return false,
            }
        }
    }

    /// True when `b` is reachable from the entry.
    pub fn reachable(&self, b: BlockId) -> bool {
        self.rpo_index[b.0 as usize] != usize::MAX
    }
}

fn intersect(
    idom: &[Option<BlockId>],
    rpo_index: &[usize],
    _rpo: &[BlockId],
    mut a: BlockId,
    mut b: BlockId,
) -> BlockId {
    while a != b {
        while rpo_index[a.0 as usize] > rpo_index[b.0 as usize] {
            a = idom[a.0 as usize].expect("processed pred has idom");
        }
        while rpo_index[b.0 as usize] > rpo_index[a.0 as usize] {
            b = idom[b.0 as usize].expect("processed pred has idom");
        }
    }
    a
}

/// A natural loop.
#[derive(Debug, Clone)]
pub struct Loop {
    /// Loop header.
    pub header: BlockId,
    /// Blocks jumping back to the header from inside the loop.
    pub latches: Vec<BlockId>,
    /// All blocks in the loop (header included). Ordered: passes iterate
    /// the body when hoisting or promoting, and that order must not vary
    /// run to run.
    pub body: BTreeSet<BlockId>,
    /// Edges leaving the loop: `(from_inside, to_outside)`.
    pub exits: Vec<(BlockId, BlockId)>,
}

impl Loop {
    /// Membership test.
    pub fn contains(&self, b: BlockId) -> bool {
        self.body.contains(&b)
    }
}

/// All natural loops of `f`, innermost first.
pub fn find_loops(f: &IrFunc, doms: &Dominators) -> Vec<Loop> {
    let mut loops: Vec<Loop> = Vec::new();
    for b in 0..f.blocks.len() as u32 {
        let b = BlockId(b);
        if !doms.reachable(b) {
            continue;
        }
        for s in f.succ_iter(b) {
            if doms.dominates(s, b) {
                // Back edge b → s.
                if let Some(l) = loops.iter_mut().find(|l| l.header == s) {
                    l.latches.push(b);
                    grow_loop_body(f, s, b, &mut l.body);
                } else {
                    let mut body = BTreeSet::new();
                    body.insert(s);
                    grow_loop_body(f, s, b, &mut body);
                    loops.push(Loop { header: s, latches: vec![b], body, exits: vec![] });
                }
            }
        }
    }
    for l in &mut loops {
        let mut exits = Vec::new();
        for &b in &l.body {
            for s in f.succ_iter(b) {
                if !l.body.contains(&s) {
                    exits.push((b, s));
                }
            }
        }
        exits.sort();
        exits.dedup();
        l.exits = exits;
    }
    // Innermost first: smaller bodies sort first; ties by header id for
    // determinism.
    loops.sort_by_key(|l| (l.body.len(), l.header.0));
    loops
}

fn grow_loop_body(f: &IrFunc, header: BlockId, latch: BlockId, body: &mut BTreeSet<BlockId>) {
    let mut stack = vec![latch];
    while let Some(b) = stack.pop() {
        if b == header || !body.insert(b) {
            continue;
        }
        for &p in &f.blocks[b.0 as usize].preds {
            stack.push(p);
        }
    }
}

/// Ensures `l` has a dedicated preheader: a block whose only successor is
/// the header and which is the header's only non-latch predecessor.
/// Returns it, or `None` when the loop's entry structure is too unusual
/// (multiple entry edges), in which case the caller skips the loop.
pub fn ensure_preheader(f: &mut IrFunc, l: &Loop) -> Option<BlockId> {
    let preds: Vec<BlockId> = f.blocks[l.header.0 as usize].preds.clone();
    let entries: Vec<BlockId> = preds.iter().copied().filter(|p| !l.latches.contains(p)).collect();
    if entries.len() != 1 {
        return None;
    }
    let entry = entries[0];
    if f.succs(entry).len() == 1 {
        return Some(entry);
    }
    Some(f.split_edge(entry, l.header))
}

/// Convenience: append `inst` to the end of a preheader (before its
/// terminator).
pub fn insert_in_preheader(f: &mut IrFunc, preheader: BlockId, inst: Inst) -> ValueId {
    f.insert_before_terminator(preheader, inst)
}

/// Loop-invariance test: a value is invariant w.r.t. `l` when it is defined
/// outside the loop body.
pub fn defined_outside(f: &IrFunc, l: &Loop, v: ValueId) -> bool {
    // Find the defining block by scanning loop blocks only (cheaper than a
    // global map; values defined in no block are floating constants).
    for &b in &l.body {
        if f.blocks[b.0 as usize].insts.contains(&v) {
            return false;
        }
    }
    true
}

/// True when `b` contains any instruction for which `pred` holds.
pub fn block_any(f: &IrFunc, b: BlockId, mut pred: impl FnMut(&Inst) -> bool) -> bool {
    f.blocks[b.0 as usize].insts.iter().any(|&v| pred(f.inst(v)))
}

/// True when the loop contains an instruction satisfying `pred`.
pub fn loop_any(f: &IrFunc, l: &Loop, mut pred: impl FnMut(&Inst) -> bool) -> bool {
    l.body.iter().any(|&b| block_any(f, b, &mut pred))
}

/// True when the loop contains a call (runtime or JS).
pub fn loop_has_call(f: &IrFunc, l: &Loop) -> bool {
    loop_any(f, l, |i| matches!(i.kind, InstKind::CallRuntime { .. } | InstKind::CallJs { .. }))
}

/// Per-block transaction nesting depths, as determined by `XBegin`/`XEnd`
/// placement.
#[derive(Debug, Clone)]
pub struct TxnDepthInfo {
    /// `(entry_depth, exit_depth)` per block; `None` for unreachable blocks.
    pub depths: Vec<Option<(u32, u32)>>,
    /// Blocks whose predecessors disagree on the entry depth.
    pub conflicts: Vec<BlockId>,
    /// Blocks containing an `XEnd` with no open transaction.
    pub underflows: Vec<BlockId>,
}

impl TxnDepthInfo {
    /// Transaction depth at the point just *before* executing `v` in `b`,
    /// or `None` when `b` is unreachable or doesn't contain `v`.
    pub fn depth_before(&self, f: &IrFunc, b: BlockId, v: ValueId) -> Option<u32> {
        let (mut depth, _) = self.depths[b.0 as usize]?;
        for &i in &f.blocks[b.0 as usize].insts {
            if i == v {
                return Some(depth);
            }
            match f.inst(i).kind {
                InstKind::XBegin => depth += 1,
                InstKind::XEnd => depth = depth.saturating_sub(1),
                _ => {}
            }
        }
        None
    }
}

/// Computes the transaction nesting depth entering and leaving every
/// reachable block, starting from `entry_depth` at the function entry
/// (non-zero for transaction callees inlined under a caller's `XBegin`).
///
/// Forward dataflow over reverse post-order: a block's entry depth is the
/// exit depth of its first already-visited predecessor; a second pass flags
/// any predecessor that disagrees (recorded in `conflicts`). `XEnd` below
/// depth zero clamps and is recorded in `underflows`.
pub fn txn_depths(f: &IrFunc, entry_depth: u32) -> TxnDepthInfo {
    let rpo = f.rpo();
    let n = f.blocks.len();
    let mut depths: Vec<Option<(u32, u32)>> = vec![None; n];
    let mut underflows = Vec::new();
    for &b in &rpo {
        let din = if b == f.entry {
            entry_depth
        } else {
            f.blocks[b.0 as usize]
                .preds
                .iter()
                .find_map(|p| depths[p.0 as usize].map(|(_, out)| out))
                .unwrap_or(entry_depth)
        };
        let mut d = din;
        let mut underflowed = false;
        for &v in &f.blocks[b.0 as usize].insts {
            match f.inst(v).kind {
                InstKind::XBegin => d += 1,
                InstKind::XEnd => {
                    if d == 0 {
                        underflowed = true;
                    } else {
                        d -= 1;
                    }
                }
                _ => {}
            }
        }
        if underflowed {
            underflows.push(b);
        }
        depths[b.0 as usize] = Some((din, d));
    }
    let mut conflicts = Vec::new();
    for &b in &rpo {
        let Some((din, _)) = depths[b.0 as usize] else { continue };
        let disagrees = f.blocks[b.0 as usize]
            .preds
            .iter()
            .any(|p| matches!(depths[p.0 as usize], Some((_, out)) if out != din));
        if disagrees {
            conflicts.push(b);
        }
    }
    TxnDepthInfo { depths, conflicts, underflows }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::IrFunc;
    use crate::node::{Inst, InstKind, Ty};
    use nomap_bytecode::FuncId;
    use nomap_machine::Cond;

    /// entry → header ⇄ body, header → exit
    fn simple_loop() -> (IrFunc, BlockId, BlockId, BlockId) {
        let mut f = IrFunc::new(FuncId(0), "loop", 0, 0);
        let header = f.new_block();
        let body = f.new_block();
        let exit = f.new_block();
        let zero = f.append(f.entry, Inst::new(InstKind::ConstI32(0)));
        let n = f.append(f.entry, Inst::new(InstKind::ConstI32(10)));
        f.append(f.entry, Inst::new(InstKind::Jump { target: header }));
        let phi = f.append(header, Inst::new(InstKind::Phi { inputs: vec![zero], ty: Ty::I32 }));
        let cmp = f.append(header, Inst::new(InstKind::ICmp { cond: Cond::Lt, a: phi, b: n }));
        f.append(header, Inst::new(InstKind::Branch { cond: cmp, then_b: body, else_b: exit }));
        let one = f.append(body, Inst::new(InstKind::ConstI32(1)));
        let next = f.append(
            body,
            Inst::new(InstKind::CheckedAddI32 {
                a: phi,
                b: one,
                mode: crate::node::CheckMode::Deopt,
            }),
        );
        f.append(body, Inst::new(InstKind::Jump { target: header }));
        if let InstKind::Phi { inputs, .. } = &mut f.inst_mut(phi).kind {
            inputs.push(next);
        }
        let boxed = f.append(exit, Inst::new(InstKind::BoxI32(phi)));
        f.append(exit, Inst::new(InstKind::Return { v: boxed }));
        f.compute_preds();
        (f, header, body, exit)
    }

    #[test]
    fn dominators_of_loop() {
        let (f, header, body, exit) = simple_loop();
        let d = Dominators::compute(&f);
        assert!(d.dominates(f.entry, exit));
        assert!(d.dominates(header, body));
        assert!(d.dominates(header, exit));
        assert!(!d.dominates(body, exit));
        assert_eq!(d.idom(body), Some(header));
    }

    #[test]
    fn finds_the_loop() {
        let (f, header, body, exit) = simple_loop();
        let d = Dominators::compute(&f);
        let loops = find_loops(&f, &d);
        assert_eq!(loops.len(), 1);
        let l = &loops[0];
        assert_eq!(l.header, header);
        assert_eq!(l.latches, vec![body]);
        assert!(l.contains(body) && l.contains(header) && !l.contains(exit));
        assert_eq!(l.exits, vec![(header, exit)]);
    }

    #[test]
    fn preheader_is_entry_block_here() {
        let (mut f, ..) = simple_loop();
        let d = Dominators::compute(&f);
        let loops = find_loops(&f, &d);
        let ph = ensure_preheader(&mut f, &loops[0]).unwrap();
        assert_eq!(ph, f.entry);
    }

    #[test]
    fn invariance_test() {
        let (f, ..) = simple_loop();
        let d = Dominators::compute(&f);
        let loops = find_loops(&f, &d);
        let l = &loops[0];
        // ConstI32(10) (id 1) is defined in entry → invariant.
        assert!(defined_outside(&f, l, ValueId(1)));
        // The phi (id 3) is defined in the header → not invariant.
        assert!(!defined_outside(&f, l, ValueId(3)));
    }

    #[test]
    fn nested_loops_sorted_innermost_first() {
        // entry → outer_h ⇄ (inner_h ⇄ inner_b) → outer_latch → outer_h
        let mut f = IrFunc::new(FuncId(0), "nest", 0, 0);
        let outer_h = f.new_block();
        let inner_h = f.new_block();
        let inner_b = f.new_block();
        let outer_l = f.new_block();
        let exit = f.new_block();
        let c = f.append(f.entry, Inst::new(InstKind::ConstI32(1)));
        let cond = f.append(f.entry, Inst::new(InstKind::ICmp { cond: Cond::Eq, a: c, b: c }));
        f.append(f.entry, Inst::new(InstKind::Jump { target: outer_h }));
        f.append(outer_h, Inst::new(InstKind::Jump { target: inner_h }));
        f.append(inner_h, Inst::new(InstKind::Branch { cond, then_b: inner_b, else_b: outer_l }));
        f.append(inner_b, Inst::new(InstKind::Jump { target: inner_h }));
        f.append(outer_l, Inst::new(InstKind::Branch { cond, then_b: outer_h, else_b: exit }));
        let u = f.append(exit, Inst::new(InstKind::Const(nomap_runtime::Value::UNDEFINED)));
        f.append(exit, Inst::new(InstKind::Return { v: u }));
        f.compute_preds();
        let d = Dominators::compute(&f);
        let loops = find_loops(&f, &d);
        assert_eq!(loops.len(), 2);
        assert_eq!(loops[0].header, inner_h); // innermost first
        assert_eq!(loops[1].header, outer_h);
        assert!(loops[1].body.contains(&inner_b));
    }

    #[test]
    fn txn_depths_tracks_begin_end() {
        // entry [XBegin] → mid [XEnd] → exit
        let mut f = IrFunc::new(FuncId(0), "txn", 0, 0);
        let mid = f.new_block();
        let exit = f.new_block();
        f.append(f.entry, Inst::new(InstKind::XBegin));
        f.append(f.entry, Inst::new(InstKind::Jump { target: mid }));
        let xe = f.append(mid, Inst::new(InstKind::XEnd));
        f.append(mid, Inst::new(InstKind::Jump { target: exit }));
        let u = f.append(exit, Inst::new(InstKind::Const(nomap_runtime::Value::UNDEFINED)));
        f.append(exit, Inst::new(InstKind::Return { v: u }));
        f.compute_preds();
        let info = txn_depths(&f, 0);
        assert_eq!(info.depths[f.entry.0 as usize], Some((0, 1)));
        assert_eq!(info.depths[mid.0 as usize], Some((1, 0)));
        assert_eq!(info.depths[exit.0 as usize], Some((0, 0)));
        assert!(info.conflicts.is_empty() && info.underflows.is_empty());
        assert_eq!(info.depth_before(&f, mid, xe), Some(1));
    }

    #[test]
    fn txn_depths_flags_underflow_and_conflict() {
        // entry → (then [XBegin] | else) → join: join's preds disagree, and
        // a stray XEnd in else underflows.
        let mut f = IrFunc::new(FuncId(0), "bad", 0, 0);
        let then_b = f.new_block();
        let else_b = f.new_block();
        let join = f.new_block();
        let c = f.append(f.entry, Inst::new(InstKind::ConstI32(1)));
        let cond = f.append(f.entry, Inst::new(InstKind::ICmp { cond: Cond::Eq, a: c, b: c }));
        f.append(f.entry, Inst::new(InstKind::Branch { cond, then_b, else_b }));
        f.append(then_b, Inst::new(InstKind::XBegin));
        f.append(then_b, Inst::new(InstKind::Jump { target: join }));
        f.append(else_b, Inst::new(InstKind::XEnd));
        f.append(else_b, Inst::new(InstKind::Jump { target: join }));
        let u = f.append(join, Inst::new(InstKind::Const(nomap_runtime::Value::UNDEFINED)));
        f.append(join, Inst::new(InstKind::Return { v: u }));
        f.compute_preds();
        let info = txn_depths(&f, 0);
        assert_eq!(info.underflows, vec![else_b]);
        assert_eq!(info.conflicts, vec![join]);
    }

    #[test]
    fn txn_depths_callee_entry_depth() {
        let mut f = IrFunc::new(FuncId(0), "callee", 0, 0);
        let xe = f.append(f.entry, Inst::new(InstKind::XEnd));
        let u = f.append(f.entry, Inst::new(InstKind::Const(nomap_runtime::Value::UNDEFINED)));
        f.append(f.entry, Inst::new(InstKind::Return { v: u }));
        f.compute_preds();
        // At depth 1 (txn callee) the XEnd is legal; at depth 0 it underflows.
        let ok = txn_depths(&f, 1);
        assert!(ok.underflows.is_empty());
        assert_eq!(ok.depth_before(&f, f.entry, xe), Some(1));
        let bad = txn_depths(&f, 0);
        assert_eq!(bad.underflows, vec![f.entry]);
    }
}
