//! Bytecode → SSA IR translation with profile-driven speculation.
//!
//! This is the model of the DFG/FTL front end: every speculative decision is
//! taken from the value profiles the lower tiers collected, and every
//! speculation materializes as a check guarding a Stack Map Point, exactly
//! the code structure the paper measures (§III-A1: bounds, overflow, type,
//! property and "other" checks roughly every 12 instructions).
//!
//! SSA is constructed with the Braun et al. algorithm (on-the-fly phi
//! placement with sealed blocks). Bytecode registers always carry *boxed*
//! values across opcode boundaries; unboxed values live only inside one
//! opcode's expansion. Redundant box/unbox pairs are cleaned up by constant
//! folding and GVN — unless a Stack Map Point pins the boxed value alive,
//! which is precisely the SMP cost NoMap removes.

use std::collections::HashMap;
use std::error::Error;
use std::fmt;

use nomap_bytecode::{BinaryOp, Const, Function, Op, Reg, SiteId, UnaryOp};
use nomap_machine::{CheckKind, Cond};
use nomap_runtime::{
    Runtime, RuntimeFn, SiteProfile, Value, ValueKind, ARR_LEN, ARR_STORAGE, OBJ_STORAGE,
};

use crate::graph::{BlockId, IrFunc, ValueId};
use crate::node::{Alias, CheckMode, Inst, InstKind, OsrState, Ty};

/// Speculation level: the DFG and FTL tiers share this front end; they
/// differ in which optimization passes run afterwards.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpecLevel {
    /// Middle tier.
    Dfg,
    /// Top tier.
    Ftl,
}

/// An error during IR construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BuildError(pub String);

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ir build error: {}", self.0)
    }
}

impl Error for BuildError {}

/// Side information the NoMap transformation needs.
#[derive(Debug, Clone, Default)]
pub struct BuildInfo {
    /// For each IR block that is a bytecode loop header: the OSR state at
    /// the top of that header (values may be header phis; the transaction
    /// pass rewrites them per edge).
    pub loop_osr: HashMap<BlockId, OsrState>,
}

/// Builds speculative SSA IR for `func` from its profiles.
///
/// `rt` is used to resolve global slot addresses and intern constant
/// strings (compile-time effects, charged to compilation, not execution).
///
/// # Errors
///
/// Returns [`BuildError`] for malformed bytecode (unpatched jumps etc.).
pub fn build_ir(
    func: &Function,
    rt: &mut Runtime,
    _level: SpecLevel,
) -> Result<(IrFunc, BuildInfo), BuildError> {
    Builder::new(func, rt)?.run()
}

struct Builder<'a> {
    bc: &'a Function,
    rt: &'a mut Runtime,
    f: IrFunc,
    info: BuildInfo,
    /// Bytecode leaders in ascending order.
    leaders: Vec<u32>,
    /// bc index → block.
    block_of: HashMap<u32, BlockId>,
    /// Static predecessor lists (bc leader → preds as bc block leaders),
    /// in deterministic order; drives phi input order.
    sealed: Vec<bool>,
    filled: Vec<bool>,
    defs: HashMap<(u32, u16), ValueId>,
    incomplete: HashMap<u32, Vec<(u16, ValueId)>>,
    /// Live-in bytecode registers per bytecode index.
    live_in: Vec<Vec<bool>>,
    /// Per-function profile snapshot.
    sites: Vec<SiteProfile>,
    cur: BlockId,
    cur_bc_block: u32,
}

impl<'a> Builder<'a> {
    fn new(bc: &'a Function, rt: &'a mut Runtime) -> Result<Self, BuildError> {
        let profile = rt.profiles.func(bc.id);
        let mut sites = profile.sites.clone();
        sites.resize_with(bc.site_count as usize, SiteProfile::default);
        let f = IrFunc::new(bc.id, bc.name.clone(), bc.param_count, bc.register_count);
        Ok(Builder {
            bc,
            rt,
            f,
            info: BuildInfo::default(),
            leaders: Vec::new(),
            block_of: HashMap::new(),
            sealed: Vec::new(),
            filled: Vec::new(),
            defs: HashMap::new(),
            incomplete: HashMap::new(),
            live_in: Vec::new(),
            sites,
            cur: BlockId(0),
            cur_bc_block: 0,
        })
    }

    // ---- bytecode CFG ----------------------------------------------------

    fn compute_leaders(&mut self) {
        let mut leaders = vec![0u32];
        for (i, op) in self.bc.code.iter().enumerate() {
            if let Some(t) = op.jump_target() {
                leaders.push(t);
                leaders.push(i as u32 + 1);
            }
            if matches!(op, Op::Return { .. }) {
                leaders.push(i as u32 + 1);
            }
        }
        leaders.retain(|&l| (l as usize) < self.bc.code.len());
        leaders.sort_unstable();
        leaders.dedup();
        self.leaders = leaders;
    }

    fn block_end(&self, leader: u32) -> u32 {
        let n = self.bc.code.len() as u32;
        match self.leaders.binary_search(&leader) {
            // `min` guards against the entry-block sentinel (u32::MAX)
            // appended after leader computation.
            Ok(i) if i + 1 < self.leaders.len() => self.leaders[i + 1].min(n),
            _ => n,
        }
    }

    /// Static predecessor edges (bc-leader pairs), in deterministic order.
    fn static_preds(&self) -> HashMap<u32, Vec<u32>> {
        let mut preds: HashMap<u32, Vec<u32>> = HashMap::new();
        for &l in &self.leaders {
            preds.insert(l, vec![]);
        }
        for &l in &self.leaders {
            let end = self.block_end(l);
            let last = &self.bc.code[end as usize - 1];
            let falls_through = !matches!(last, Op::Jump { .. } | Op::Return { .. });
            if let Some(t) = last.jump_target() {
                preds.get_mut(&t).expect("target is a leader").push(l);
            }
            if falls_through && (end as usize) < self.bc.code.len() {
                preds.get_mut(&end).expect("fallthrough is a leader").push(l);
            }
        }
        preds
    }

    // ---- bytecode liveness -------------------------------------------------

    fn op_uses_defs(op: &Op) -> (Vec<u16>, Option<u16>) {
        match *op {
            Op::LoadConst { dst, .. }
            | Op::LoadInt { dst, .. }
            | Op::LoadBool { dst, .. }
            | Op::LoadUndefined { dst }
            | Op::LoadNull { dst }
            | Op::NewObject { dst }
            | Op::GetGlobal { dst, .. } => (vec![], Some(dst.0)),
            Op::Mov { dst, src } => (vec![src.0], Some(dst.0)),
            Op::Binary { dst, a, b, .. } => (vec![a.0, b.0], Some(dst.0)),
            Op::Unary { dst, a, .. } => (vec![a.0], Some(dst.0)),
            Op::Jump { .. } => (vec![], None),
            Op::JumpIfTrue { cond, .. } | Op::JumpIfFalse { cond, .. } => (vec![cond.0], None),
            Op::NewArray { dst, len } => (vec![len.0], Some(dst.0)),
            Op::GetProp { dst, obj, .. } => (vec![obj.0], Some(dst.0)),
            Op::PutProp { obj, val, .. } => (vec![obj.0, val.0], None),
            Op::GetIndex { dst, arr, idx, .. } => (vec![arr.0, idx.0], Some(dst.0)),
            Op::PutIndex { arr, idx, val, .. } => (vec![arr.0, idx.0, val.0], None),
            Op::PutGlobal { src, .. } => (vec![src.0], None),
            Op::Call { dst, argv, argc, .. } | Op::CallIntrinsic { dst, argv, argc, .. } => {
                ((argv.0..argv.0 + argc as u16).collect(), Some(dst.0))
            }
            Op::Return { src } => (vec![src.0], None),
        }
    }

    fn compute_liveness(&mut self) {
        let n = self.bc.code.len();
        let regs = self.bc.register_count as usize;
        let mut live_in = vec![vec![false; regs]; n + 1];
        // Iterate to fixpoint (backward).
        let mut changed = true;
        while changed {
            changed = false;
            for i in (0..n).rev() {
                let op = &self.bc.code[i];
                // live_out = union of successors' live_in.
                let mut out = vec![false; regs];
                let mut succs = Vec::new();
                if let Some(t) = op.jump_target() {
                    succs.push(t as usize);
                }
                if !matches!(op, Op::Jump { .. } | Op::Return { .. }) {
                    succs.push(i + 1);
                }
                for s in succs {
                    if s <= n {
                        for r in 0..regs {
                            out[r] = out[r] || live_in[s][r];
                        }
                    }
                }
                let (uses, def) = Self::op_uses_defs(op);
                if let Some(d) = def {
                    out[d as usize] = false;
                }
                for u in uses {
                    out[u as usize] = true;
                }
                if out != live_in[i] {
                    live_in[i] = out;
                    changed = true;
                }
            }
        }
        self.live_in = live_in;
    }

    // ---- SSA (Braun et al.) ---------------------------------------------------

    fn write_var(&mut self, bc_block: u32, reg: u16, v: ValueId) {
        self.defs.insert((bc_block, reg), v);
    }

    fn block_index(&self, bc_block: u32) -> usize {
        self.leaders.binary_search(&bc_block).expect("leader")
    }

    fn add_phi(&mut self, block: BlockId) -> ValueId {
        let v = self.f.add_inst(Inst::new(InstKind::Phi { inputs: vec![], ty: Ty::Boxed }));
        // Insert after any existing phis.
        let insts = &self.f.blocks[block.0 as usize].insts;
        let pos = insts
            .iter()
            .take_while(|&&i| matches!(self.f.inst(i).kind, InstKind::Phi { .. }))
            .count();
        self.f.blocks[block.0 as usize].insts.insert(pos, v);
        v
    }

    fn read_var(&mut self, bc_block: u32, reg: u16) -> ValueId {
        if let Some(&v) = self.defs.get(&(bc_block, reg)) {
            return v;
        }
        let bi = self.block_index(bc_block);
        let block = self.block_of[&bc_block];
        let preds = self.f.blocks[block.0 as usize].preds.clone();
        let v = if !self.sealed[bi] {
            let phi = self.add_phi(block);
            self.incomplete.entry(bc_block).or_default().push((reg, phi));
            phi
        } else if preds.len() == 1 {
            let pred_bc = self.bc_of_block(preds[0]);
            self.read_var(pred_bc, reg)
        } else if preds.is_empty() {
            // Unreachable block: any read is undefined. Keep phis first.
            let pos = self.f.blocks[block.0 as usize]
                .insts
                .iter()
                .take_while(|&&i| matches!(self.f.inst(i).kind, InstKind::Phi { .. }))
                .count();
            self.f.insert_at(block, pos, Inst::new(InstKind::Const(Value::UNDEFINED)))
        } else {
            let phi = self.add_phi(block);
            self.write_var(bc_block, reg, phi);
            self.add_phi_operands(bc_block, reg, phi)
        };
        self.write_var(bc_block, reg, v);
        v
    }

    fn bc_of_block(&self, b: BlockId) -> u32 {
        *self.block_of.iter().find(|(_, &v)| v == b).expect("block has a bc leader").0
    }

    fn add_phi_operands(&mut self, bc_block: u32, reg: u16, phi: ValueId) -> ValueId {
        let block = self.block_of[&bc_block];
        let preds = self.f.blocks[block.0 as usize].preds.clone();
        let mut inputs = Vec::with_capacity(preds.len());
        for p in preds {
            let pbc = self.bc_of_block(p);
            inputs.push(self.read_var(pbc, reg));
        }
        if let InstKind::Phi { inputs: slots, .. } = &mut self.f.inst_mut(phi).kind {
            *slots = inputs;
        }
        self.try_remove_trivial_phi(phi)
    }

    fn try_remove_trivial_phi(&mut self, phi: ValueId) -> ValueId {
        let inputs = match &self.f.inst(phi).kind {
            InstKind::Phi { inputs, .. } => inputs.clone(),
            _ => return phi,
        };
        let mut same: Option<ValueId> = None;
        for &i in &inputs {
            if i == phi || Some(i) == same {
                continue;
            }
            if same.is_some() {
                return phi; // genuinely merges ≥2 values
            }
            same = Some(i);
        }
        let replacement = same.unwrap_or(phi);
        if replacement == phi {
            return phi;
        }
        self.f.inst_mut(phi).kind = InstKind::Nop;
        self.f.replace_all_uses(phi, replacement);
        // Fix def map entries and recorded loop-header OSR snapshots
        // pointing at the removed phi.
        for v in self.defs.values_mut() {
            if *v == phi {
                *v = replacement;
            }
        }
        for osr in self.info.loop_osr.values_mut() {
            for slot in osr.regs.iter_mut().flatten() {
                if *slot == phi {
                    *slot = replacement;
                }
            }
        }
        replacement
    }

    fn seal(&mut self, bc_block: u32) {
        let bi = self.block_index(bc_block);
        if self.sealed[bi] {
            return;
        }
        self.sealed[bi] = true;
        if let Some(pending) = self.incomplete.remove(&bc_block) {
            for (reg, phi) in pending {
                self.add_phi_operands(bc_block, reg, phi);
            }
        }
    }

    // ---- helpers ----------------------------------------------------------------

    fn emit(&mut self, kind: InstKind) -> ValueId {
        self.f.append(self.cur, Inst::new(kind))
    }

    fn emit_with_osr(&mut self, kind: InstKind, bc: u32) -> ValueId {
        let osr = self.osr_state(bc);
        let v = self.f.append(self.cur, Inst::new(kind));
        self.f.inst_mut(v).osr = Some(osr);
        v
    }

    /// Snapshot of the live bytecode registers at `bc`.
    fn osr_state(&mut self, bc: u32) -> OsrState {
        let live = self.live_in[bc as usize].clone();
        let mut regs = vec![None; self.bc.register_count as usize];
        for (r, &is_live) in live.iter().enumerate() {
            if is_live {
                regs[r] = Some(self.read_var(self.cur_bc_block, r as u16));
            }
        }
        OsrState { bc, regs }
    }

    fn site(&self, s: SiteId) -> &SiteProfile {
        &self.sites[s.0 as usize]
    }

    fn const_boxed(&mut self, v: Value) -> ValueId {
        self.emit(InstKind::Const(v))
    }

    /// Unboxes `v` to an int32, guarding as needed.
    fn use_i32(&mut self, v: ValueId, bc: u32) -> ValueId {
        match self.f.inst(v).ty() {
            Ty::I32 => v,
            Ty::F64 => {
                self.emit_with_osr(InstKind::CheckF64ToI32 { v, mode: CheckMode::Deopt }, bc)
            }
            _ => self.emit_with_osr(InstKind::CheckInt32 { v, mode: CheckMode::Deopt }, bc),
        }
    }

    /// Unboxes `v` to an f64, guarding as needed.
    fn use_f64(&mut self, v: ValueId, bc: u32) -> ValueId {
        match self.f.inst(v).ty() {
            Ty::F64 => v,
            Ty::I32 => self.emit(InstKind::I32ToF64(v)),
            _ => self.emit_with_osr(InstKind::CheckNumber { v, mode: CheckMode::Deopt }, bc),
        }
    }

    /// Boxes an IR value for storage in a bytecode register / memory / call.
    fn use_boxed(&mut self, v: ValueId) -> ValueId {
        match self.f.inst(v).ty() {
            Ty::Boxed => v,
            Ty::I32 => self.emit(InstKind::BoxI32(v)),
            Ty::F64 => self.emit(InstKind::BoxF64(v)),
            Ty::Bool => self.emit(InstKind::BoxBool(v)),
            Ty::Raw | Ty::None => v, // cell addresses are valid boxed bits
        }
    }

    fn read_boxed(&mut self, reg: Reg) -> ValueId {
        let v = self.read_var(self.cur_bc_block, reg.0);
        self.use_boxed(v)
    }

    fn write_reg(&mut self, reg: Reg, v: ValueId) {
        let boxed = self.use_boxed(v);
        self.write_var(self.cur_bc_block, reg.0, boxed);
    }

    fn runtime_call(&mut self, func: RuntimeFn, args: &[Reg], dst: Option<Reg>, site: SiteId) {
        let argv: Vec<ValueId> = args.iter().map(|&r| self.read_boxed(r)).collect();
        let v =
            self.emit(InstKind::CallRuntime { func, args: argv, site: Some((self.bc.id, site)) });
        if let Some(d) = dst {
            self.write_reg(d, v);
        }
    }

    // ---- run ------------------------------------------------------------------------

    fn run(mut self) -> Result<(IrFunc, BuildInfo), BuildError> {
        self.compute_leaders();
        self.compute_liveness();
        let preds_map = self.static_preds();

        // Allocate blocks; entry IR block jumps to the bc block 0.
        for &l in &self.leaders.clone() {
            let b = self.f.new_block();
            self.block_of.insert(l, b);
        }
        self.sealed = vec![false; self.leaders.len()];
        self.filled = vec![false; self.leaders.len()];
        self.incomplete.clear();

        // Entry block: parameters, then jump to leader 0.
        for i in 0..self.bc.param_count {
            let p = self.f.append(self.f.entry, Inst::new(InstKind::Param(i)));
            self.write_var(u32::MAX, i, p); // sentinel "entry" bc block
        }
        let first = self.block_of[&0];
        let entry = self.f.entry;
        let jump = self.f.add_inst(Inst::new(InstKind::Jump { target: first }));
        self.f.blocks[entry.0 as usize].insts.push(jump);

        // Fix predecessor lists from the static CFG (+ the entry edge).
        for (&l, preds) in &preds_map {
            let b = self.block_of[&l];
            let mut list: Vec<BlockId> = preds.iter().map(|p| self.block_of[p]).collect();
            if l == 0 {
                list.insert(0, entry);
            }
            self.f.blocks[b.0 as usize].preds = list;
        }

        // Seed parameter defs into bc block 0 via the entry edge: reading a
        // param register in block 0 must see Param(i). We model the entry
        // block as a pseudo-predecessor holding those defs.
        // (read_var uses bc leaders; the entry block is reached through the
        // pred list, so give it a pseudo leader.)
        self.block_of.insert(u32::MAX, entry);
        self.leaders.push(u32::MAX);
        self.sealed.push(true);
        self.filled.push(true);
        // Keep leaders sorted for binary search (u32::MAX sorts last).

        // Count remaining unfilled preds to know when to seal.
        let mut unfilled: HashMap<u32, usize> = HashMap::new();
        for (&l, preds) in &preds_map {
            unfilled.insert(l, preds.len());
        }

        // Seal block 0 if its only pred is the entry.
        if unfilled[&0] == 0 {
            self.seal(0);
        }

        let leaders: Vec<u32> = self.leaders.iter().copied().filter(|&l| l != u32::MAX).collect();
        for &l in &leaders {
            self.translate_block(l)?;
            // Mark edges out of this block as filled; seal targets whose
            // preds are all filled.
            let end = self.block_end(l);
            let last = &self.bc.code[end as usize - 1];
            let mut targets = Vec::new();
            if let Some(t) = last.jump_target() {
                targets.push(t);
            }
            if !matches!(last, Op::Jump { .. } | Op::Return { .. })
                && (end as usize) < self.bc.code.len()
            {
                targets.push(end);
            }
            for t in targets {
                let n = unfilled.get_mut(&t).expect("leader");
                *n -= 1;
                if *n == 0 && self.filled[self.block_index(t)] {
                    self.seal(t);
                }
            }
            // A block whose preds were all already filled before it was
            // translated is sealed inside translate_block.
        }
        // Seal anything left (unreachable or odd shapes).
        for &l in &leaders {
            self.seal(l);
        }

        self.f.insts.shrink_to_fit();
        let info = std::mem::take(&mut self.info);
        let f = self.f;
        debug_assert_eq!(f.verify(), Ok(()));
        Ok((f, info))
    }

    fn translate_block(&mut self, leader: u32) -> Result<(), BuildError> {
        let block = self.block_of[&leader];
        self.cur = block;
        self.cur_bc_block = leader;
        let bi = self.block_index(leader);
        // Seal now if every predecessor is already filled (forward edges
        // only). Loop headers — including self-loops, whose only latch is
        // this very block — stay unsealed until their latch is filled.
        let preds = self.f.blocks[block.0 as usize].preds.clone();
        let all_filled = preds.iter().all(|p| {
            let pbc = self.bc_of_block(*p);
            pbc == u32::MAX || self.filled[self.block_index(pbc)]
        });
        if all_filled {
            self.seal(leader);
        }

        // Loop headers: pre-read live registers so the NoMap transaction
        // pass has a fallback OSR snapshot at the header.
        if self.bc.is_loop_header(leader) {
            let state = self.osr_state(leader);
            self.info.loop_osr.insert(block, state);
        }

        let end = self.block_end(leader);
        for bc in leader..end {
            self.translate_op(bc)?;
        }
        // Fallthrough terminator if needed.
        let last = &self.bc.code[end as usize - 1];
        if !matches!(last, Op::Jump { .. } | Op::Return { .. }) && last.jump_target().is_none() {
            let next = self.block_of[&end];
            self.emit(InstKind::Jump { target: next });
        }
        self.filled[bi] = true;
        Ok(())
    }

    fn translate_op(&mut self, bc: u32) -> Result<(), BuildError> {
        let op = self.bc.code[bc as usize];
        match op {
            Op::LoadConst { dst, cid } => {
                let c = match &self.bc.constants[cid.0 as usize] {
                    Const::Num(n) => Value::new_number(*n),
                    Const::Str(s) => {
                        let id = self.rt.strings.intern(s);
                        self.rt.string_value(id).map_err(|e| BuildError(e.to_string()))?
                    }
                };
                self.rt.take_charged(); // interning is compile-time work
                let v = self.const_boxed(c);
                self.write_reg(dst, v);
            }
            Op::LoadInt { dst, value } => {
                let v = self.const_boxed(Value::new_int32(value));
                self.write_reg(dst, v);
            }
            Op::LoadBool { dst, value } => {
                let v = self.const_boxed(Value::new_bool(value));
                self.write_reg(dst, v);
            }
            Op::LoadUndefined { dst } => {
                let v = self.const_boxed(Value::UNDEFINED);
                self.write_reg(dst, v);
            }
            Op::LoadNull { dst } => {
                let v = self.const_boxed(Value::NULL);
                self.write_reg(dst, v);
            }
            Op::Mov { dst, src } => {
                let v = self.read_var(self.cur_bc_block, src.0);
                self.write_var(self.cur_bc_block, dst.0, v);
            }
            Op::Binary { op: bop, dst, a, b, site } => {
                self.translate_binary(bc, bop, dst, a, b, site)
            }
            Op::Unary { op: uop, dst, a, site } => self.translate_unary(bc, uop, dst, a, site),
            Op::Jump { target } => {
                let t = self.block_of[&target];
                self.emit(InstKind::Jump { target: t });
            }
            Op::JumpIfTrue { cond, target } | Op::JumpIfFalse { cond, target } => {
                let t = self.block_of[&target];
                let next = self.block_of[&(bc + 1)];
                let c = self.truthiness(cond, bc);
                let (then_b, else_b) =
                    if matches!(op, Op::JumpIfTrue { .. }) { (t, next) } else { (next, t) };
                self.emit(InstKind::Branch { cond: c, then_b, else_b });
            }
            Op::NewObject { dst } => {
                self.runtime_call(RuntimeFn::NewObject, &[], Some(dst), SiteId(u16::MAX));
            }
            Op::NewArray { dst, len } => {
                self.runtime_call(RuntimeFn::NewArray, &[len], Some(dst), SiteId(u16::MAX));
            }
            Op::GetProp { dst, obj, name, site } => {
                let p = self.site(site).clone();
                let length = self.rt.length_name == Some(name);
                if length && p.kinds_a.is_only(ValueKind::Array) {
                    let o = self.read_boxed(obj);
                    let addr = self
                        .emit_with_osr(InstKind::CheckArray { v: o, mode: CheckMode::Deopt }, bc);
                    let len = self.emit(InstKind::LoadField {
                        base: addr,
                        offset: ARR_LEN,
                        alias: Alias::ArrayLen,
                        ty: Ty::I32,
                    });
                    self.write_reg(dst, len);
                } else if let (Some(shape), Some(slot), true) =
                    (p.monomorphic_shape(), p.slot, p.kinds_a.is_only(ValueKind::Object))
                {
                    let o = self.read_boxed(obj);
                    let addr = self.emit_with_osr(
                        InstKind::CheckShape { v: o, shape, mode: CheckMode::Deopt },
                        bc,
                    );
                    let storage = self.emit(InstKind::LoadField {
                        base: addr,
                        offset: OBJ_STORAGE,
                        alias: Alias::ObjMeta,
                        ty: Ty::Raw,
                    });
                    let val = self.emit(InstKind::LoadField {
                        base: storage,
                        offset: slot as u64,
                        alias: Alias::PropSlot(slot),
                        ty: Ty::Boxed,
                    });
                    self.write_reg(dst, val);
                } else {
                    self.runtime_call(RuntimeFn::GetProp(name), &[obj], Some(dst), site);
                }
            }
            Op::PutProp { obj, name, val, site } => {
                let p = self.site(site).clone();
                if let (Some(shape), Some(slot), true, false) = (
                    p.monomorphic_shape(),
                    p.slot,
                    p.kinds_a.is_only(ValueKind::Object),
                    p.saw_transition,
                ) {
                    let o = self.read_boxed(obj);
                    let addr = self.emit_with_osr(
                        InstKind::CheckShape { v: o, shape, mode: CheckMode::Deopt },
                        bc,
                    );
                    let storage = self.emit(InstKind::LoadField {
                        base: addr,
                        offset: OBJ_STORAGE,
                        alias: Alias::ObjMeta,
                        ty: Ty::Raw,
                    });
                    let v = self.read_boxed(val);
                    self.emit(InstKind::StoreField {
                        base: storage,
                        offset: slot as u64,
                        v,
                        alias: Alias::PropSlot(slot),
                    });
                } else {
                    self.runtime_call(RuntimeFn::PutProp(name), &[obj, val], None, site);
                }
            }
            Op::GetIndex { dst, arr, idx, site } => {
                let p = self.site(site).clone();
                if p.kinds_a.is_only(ValueKind::Array)
                    && p.kinds_b.is_int32_only()
                    && !p.saw_oob
                    && !p.saw_hole
                    && p.count > 0
                {
                    let a = self.read_boxed(arr);
                    let addr = self
                        .emit_with_osr(InstKind::CheckArray { v: a, mode: CheckMode::Deopt }, bc);
                    let iv = self.read_boxed(idx);
                    let i = self.use_i32(iv, bc);
                    let len = self.emit(InstKind::LoadField {
                        base: addr,
                        offset: ARR_LEN,
                        alias: Alias::ArrayLen,
                        ty: Ty::I32,
                    });
                    let oob = self.emit(InstKind::ICmp { cond: Cond::AboveEq, a: i, b: len });
                    self.emit_with_osr(
                        InstKind::Guard {
                            kind: CheckKind::Bounds,
                            cond: oob,
                            mode: CheckMode::Deopt,
                        },
                        bc,
                    );
                    let storage = self.emit(InstKind::LoadField {
                        base: addr,
                        offset: ARR_STORAGE,
                        alias: Alias::ArrayMeta,
                        ty: Ty::Raw,
                    });
                    let val = self.emit(InstKind::LoadElem { storage, index: i });
                    let hole_bits = self.emit(InstKind::ConstRaw(Value::HOLE.to_bits()));
                    let is_hole =
                        self.emit(InstKind::ICmp { cond: Cond::Eq, a: val, b: hole_bits });
                    self.emit_with_osr(
                        InstKind::Guard {
                            kind: CheckKind::Other,
                            cond: is_hole,
                            mode: CheckMode::Deopt,
                        },
                        bc,
                    );
                    self.write_reg(dst, val);
                } else {
                    self.runtime_call(RuntimeFn::GetIndex, &[arr, idx], Some(dst), site);
                }
            }
            Op::PutIndex { arr, idx, val, site } => {
                let p = self.site(site).clone();
                if p.kinds_a.is_only(ValueKind::Array)
                    && p.kinds_b.is_int32_only()
                    && !p.saw_oob
                    && p.count > 0
                {
                    let a = self.read_boxed(arr);
                    let addr = self
                        .emit_with_osr(InstKind::CheckArray { v: a, mode: CheckMode::Deopt }, bc);
                    let iv = self.read_boxed(idx);
                    let i = self.use_i32(iv, bc);
                    let len = self.emit(InstKind::LoadField {
                        base: addr,
                        offset: ARR_LEN,
                        alias: Alias::ArrayLen,
                        ty: Ty::I32,
                    });
                    let oob = self.emit(InstKind::ICmp { cond: Cond::AboveEq, a: i, b: len });
                    self.emit_with_osr(
                        InstKind::Guard {
                            kind: CheckKind::Bounds,
                            cond: oob,
                            mode: CheckMode::Deopt,
                        },
                        bc,
                    );
                    let storage = self.emit(InstKind::LoadField {
                        base: addr,
                        offset: ARR_STORAGE,
                        alias: Alias::ArrayMeta,
                        ty: Ty::Raw,
                    });
                    let v = self.read_boxed(val);
                    self.emit(InstKind::StoreElem { storage, index: i, v });
                } else {
                    self.runtime_call(RuntimeFn::PutIndex, &[arr, idx, val], None, site);
                }
            }
            Op::GetGlobal { dst, name, .. } => {
                let addr = self.rt.global_slot(name);
                let v = self.emit(InstKind::LoadGlobal { addr, name });
                self.write_reg(dst, v);
            }
            Op::PutGlobal { name, src } => {
                let addr = self.rt.global_slot(name);
                let v = self.read_boxed(src);
                self.emit(InstKind::StoreGlobal { addr, name, v });
            }
            Op::Call { dst, func, argv, argc, .. } => {
                let args: Vec<ValueId> =
                    (0..argc as u16).map(|i| self.read_boxed(Reg(argv.0 + i))).collect();
                let v = self.emit(InstKind::CallJs { callee: func, args });
                self.write_reg(dst, v);
            }
            Op::CallIntrinsic { dst, intr, argv, argc, site } => {
                let p = self.site(site).clone();
                if intr.is_pure_math() && p.count > 0 && p.result.is_numeric() {
                    let args: Vec<ValueId> = (0..argc as u16)
                        .map(|i| {
                            let v = self.read_boxed(Reg(argv.0 + i));
                            self.use_f64(v, bc)
                        })
                        .collect();
                    let r = self.emit(InstKind::MathOp { intr, args });
                    if p.result.is_int32_only() {
                        let as_int = self.emit_with_osr(
                            InstKind::CheckF64ToI32 { v: r, mode: CheckMode::Deopt },
                            bc,
                        );
                        self.write_reg(dst, as_int);
                    } else {
                        self.write_reg(dst, r);
                    }
                } else {
                    let regs: Vec<Reg> = (0..argc as u16).map(|i| Reg(argv.0 + i)).collect();
                    self.runtime_call(RuntimeFn::Intrinsic(intr), &regs, Some(dst), site);
                }
            }
            Op::Return { src } => {
                let v = self.read_boxed(src);
                self.emit(InstKind::Return { v });
            }
        }
        Ok(())
    }

    fn translate_binary(&mut self, bc: u32, op: BinaryOp, dst: Reg, a: Reg, b: Reg, site: SiteId) {
        let p = self.site(site).clone();
        let ints = p.kinds_a.is_int32_only() && p.kinds_b.is_int32_only();
        let nums = p.kinds_a.is_numeric() && p.kinds_b.is_numeric();
        if p.count == 0 {
            return self.generic_binary(op, dst, a, b, site);
        }
        match op {
            BinaryOp::Add | BinaryOp::Sub | BinaryOp::Mul => {
                if ints && !p.overflowed {
                    let av = self.read_boxed(a);
                    let bv = self.read_boxed(b);
                    let ia = self.use_i32(av, bc);
                    let ib = self.use_i32(bv, bc);
                    let kind = match op {
                        BinaryOp::Add => {
                            InstKind::CheckedAddI32 { a: ia, b: ib, mode: CheckMode::Deopt }
                        }
                        BinaryOp::Sub => {
                            InstKind::CheckedSubI32 { a: ia, b: ib, mode: CheckMode::Deopt }
                        }
                        _ => InstKind::CheckedMulI32 { a: ia, b: ib, mode: CheckMode::Deopt },
                    };
                    let r = self.emit_with_osr(kind, bc);
                    self.write_reg(dst, r);
                } else if nums {
                    self.float_binary(bc, op, dst, a, b, &p);
                } else {
                    self.generic_binary(op, dst, a, b, site);
                }
            }
            BinaryOp::Div | BinaryOp::Mod => {
                if nums {
                    self.float_binary(bc, op, dst, a, b, &p);
                } else {
                    self.generic_binary(op, dst, a, b, site);
                }
            }
            BinaryOp::BitAnd
            | BinaryOp::BitOr
            | BinaryOp::BitXor
            | BinaryOp::Shl
            | BinaryOp::Shr => {
                if ints {
                    let av = self.read_boxed(a);
                    let bv = self.read_boxed(b);
                    let ia = self.use_i32(av, bc);
                    let ib = self.use_i32(bv, bc);
                    let iop = match op {
                        BinaryOp::BitAnd => crate::node::IBinOp::And,
                        BinaryOp::BitOr => crate::node::IBinOp::Or,
                        BinaryOp::BitXor => crate::node::IBinOp::Xor,
                        BinaryOp::Shl => crate::node::IBinOp::Shl,
                        _ => crate::node::IBinOp::Sar,
                    };
                    let r = self.emit(InstKind::IBin { op: iop, a: ia, b: ib });
                    self.write_reg(dst, r);
                } else {
                    self.generic_binary(op, dst, a, b, site);
                }
            }
            BinaryOp::UShr => {
                if ints && p.result.is_int32_only() {
                    let av = self.read_boxed(a);
                    let bv = self.read_boxed(b);
                    let ia = self.use_i32(av, bc);
                    let ib = self.use_i32(bv, bc);
                    let r = self.emit_with_osr(
                        InstKind::CheckedUShr { a: ia, b: ib, mode: CheckMode::Deopt },
                        bc,
                    );
                    self.write_reg(dst, r);
                } else {
                    self.generic_binary(op, dst, a, b, site);
                }
            }
            BinaryOp::Lt
            | BinaryOp::Le
            | BinaryOp::Gt
            | BinaryOp::Ge
            | BinaryOp::Eq
            | BinaryOp::NotEq
            | BinaryOp::StrictEq
            | BinaryOp::StrictNotEq => {
                let cond = match op {
                    BinaryOp::Lt => Cond::Lt,
                    BinaryOp::Le => Cond::Le,
                    BinaryOp::Gt => Cond::Gt,
                    BinaryOp::Ge => Cond::Ge,
                    BinaryOp::Eq | BinaryOp::StrictEq => Cond::Eq,
                    _ => Cond::Ne,
                };
                if ints {
                    let av = self.read_boxed(a);
                    let bv = self.read_boxed(b);
                    let ia = self.use_i32(av, bc);
                    let ib = self.use_i32(bv, bc);
                    let r = self.emit(InstKind::ICmp { cond, a: ia, b: ib });
                    self.write_reg(dst, r);
                } else if nums {
                    let av = self.read_boxed(a);
                    let bv = self.read_boxed(b);
                    let fa = self.use_f64(av, bc);
                    let fb = self.use_f64(bv, bc);
                    let r = self.emit(InstKind::FCmp { cond, a: fa, b: fb });
                    self.write_reg(dst, r);
                } else {
                    self.generic_binary(op, dst, a, b, site);
                }
            }
        }
    }

    fn float_binary(&mut self, bc: u32, op: BinaryOp, dst: Reg, a: Reg, b: Reg, p: &SiteProfile) {
        let fop = match op {
            BinaryOp::Add => crate::node::FBinOp::Add,
            BinaryOp::Sub => crate::node::FBinOp::Sub,
            BinaryOp::Mul => crate::node::FBinOp::Mul,
            BinaryOp::Div => crate::node::FBinOp::Div,
            _ => crate::node::FBinOp::Mod,
        };
        let av = self.read_boxed(a);
        let bv = self.read_boxed(b);
        let fa = self.use_f64(av, bc);
        let fb = self.use_f64(bv, bc);
        let r = self.emit(InstKind::FBin { op: fop, a: fa, b: fb });
        // If the profile says results stay int32 (e.g. exact division),
        // convert back with an exactness check so downstream int32
        // speculation keeps working.
        if p.result.is_int32_only() {
            let as_int =
                self.emit_with_osr(InstKind::CheckF64ToI32 { v: r, mode: CheckMode::Deopt }, bc);
            self.write_reg(dst, as_int);
        } else {
            self.write_reg(dst, r);
        }
    }

    fn generic_binary(&mut self, op: BinaryOp, dst: Reg, a: Reg, b: Reg, site: SiteId) {
        self.runtime_call(RuntimeFn::Binary(op), &[a, b], Some(dst), site);
    }

    fn translate_unary(&mut self, bc: u32, op: UnaryOp, dst: Reg, a: Reg, site: SiteId) {
        let p = self.site(site).clone();
        match op {
            UnaryOp::Neg if p.kinds_a.is_int32_only() && !p.overflowed && p.count > 0 => {
                let av = self.read_boxed(a);
                let ia = self.use_i32(av, bc);
                let r = self
                    .emit_with_osr(InstKind::CheckedNegI32 { a: ia, mode: CheckMode::Deopt }, bc);
                self.write_reg(dst, r);
            }
            UnaryOp::Neg if p.kinds_a.is_numeric() && p.count > 0 => {
                let av = self.read_boxed(a);
                let fa = self.use_f64(av, bc);
                let r = self.emit(InstKind::FNeg(fa));
                self.write_reg(dst, r);
            }
            UnaryOp::ToNumber if p.kinds_a.is_numeric() && p.count > 0 => {
                // ToNumber on a number is the identity.
                let av = self.read_boxed(a);
                let fa = self.use_f64(av, bc);
                let _ = fa; // the check is the operation
                self.write_reg(dst, av);
            }
            UnaryOp::Not => {
                let c = self.truthiness(a, bc);
                let r = self.emit(InstKind::BNot(c));
                self.write_reg(dst, r);
            }
            UnaryOp::BitNot if p.kinds_a.is_int32_only() && p.count > 0 => {
                let av = self.read_boxed(a);
                let ia = self.use_i32(av, bc);
                let m1 = self.emit(InstKind::ConstI32(-1));
                let r = self.emit(InstKind::IBin { op: crate::node::IBinOp::Xor, a: ia, b: m1 });
                self.write_reg(dst, r);
            }
            _ => {
                self.runtime_call(RuntimeFn::Unary(op), &[a], Some(dst), site);
            }
        }
    }

    /// Produces a Bool for the truthiness of bytecode register `reg`,
    /// speculating on the branch-site profile of the *value's* kinds.
    fn truthiness(&mut self, reg: Reg, bc: u32) -> ValueId {
        let v = self.read_boxed(reg);
        match self.f.inst(v).ty() {
            Ty::Bool => return v,
            Ty::I32 => {
                let zero = self.emit(InstKind::ConstI32(0));
                return self.emit(InstKind::ICmp { cond: Cond::Ne, a: v, b: zero });
            }
            _ => {}
        }
        // Speculate from the defining instruction when possible: comparisons
        // produce booleans; otherwise fall back to a runtime ToBoolean.
        if let InstKind::BoxBool(inner) = self.f.inst(v).kind {
            return inner;
        }
        if let InstKind::BoxI32(inner) = self.f.inst(v).kind {
            let zero = self.emit(InstKind::ConstI32(0));
            return self.emit(InstKind::ICmp { cond: Cond::Ne, a: inner, b: zero });
        }
        if let InstKind::Const(c) = self.f.inst(v).kind {
            if c.is_int32() {
                let r = c.as_int32() != 0;
                let t = self.emit(InstKind::ConstI32(r as i32));
                let one = self.emit(InstKind::ConstI32(1));
                return self.emit(InstKind::ICmp { cond: Cond::Eq, a: t, b: one });
            }
        }
        // Profile-driven: int32-only values compare against zero after a
        // type check; everything else calls the runtime.
        let site_kinds = self.value_kinds_of(reg);
        if site_kinds.map(|k| k.is_int32_only()).unwrap_or(false) {
            let i = self.use_i32(v, bc);
            let zero = self.emit(InstKind::ConstI32(0));
            return self.emit(InstKind::ICmp { cond: Cond::Ne, a: i, b: zero });
        }
        if site_kinds.map(|k| k.is_only(ValueKind::Bool)).unwrap_or(false) {
            return self.emit_with_osr(InstKind::CheckBool { v, mode: CheckMode::Deopt }, bc);
        }
        let r = self.emit(InstKind::CallRuntime {
            func: RuntimeFn::ToBoolean,
            args: vec![v],
            site: None,
        });
        let t = self.emit(InstKind::ConstRaw(Value::TRUE.to_bits()));
        self.emit(InstKind::ICmp { cond: Cond::Eq, a: r, b: t })
    }

    /// Result-kind profile of the site that defined `reg`'s current value,
    /// when the definition is a profiled runtime call.
    fn value_kinds_of(&mut self, reg: Reg) -> Option<nomap_runtime::KindSet> {
        let v = self.read_var(self.cur_bc_block, reg.0);
        match &self.f.inst(v).kind {
            InstKind::CallRuntime { site: Some((_, s)), .. } => Some(self.site(*s).result),
            _ => None,
        }
    }
}
