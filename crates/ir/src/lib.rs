//! SSA intermediate representation for the DFG and FTL tiers, plus the
//! analyses and optimization passes whose *interaction with Stack Map
//! Points* is the subject of the paper.
//!
//! The IR models the paper's world precisely:
//!
//! * Speculative, profile-driven nodes (`CheckInt32`, `CheckShape`,
//!   `CheckedAddI32`, explicit bounds/hole [`node::InstKind::Guard`]s) carry
//!   a [`node::CheckMode`]:
//!   - `Deopt(smp)` — an SMP-guarded check: failure transfers to the
//!     Baseline tier through an OSR state snapshot. For optimization
//!     purposes a deopt guard **clobbers memory** (exactly as LLVM treats
//!     FTL's stackmap/patchpoint intrinsics), which is what cripples code
//!     motion in the `Base` configuration;
//!   - `Abort` — the NoMap form: failure aborts the enclosing hardware
//!     transaction. Aborts carry no OSR state and clobber nothing, so the
//!     same passes suddenly work (paper §IV-B);
//!   - `Sof` — overflow checks deleted in favour of the Sticky Overflow
//!     Flag (§IV-C2); the arithmetic still sets SOF, `XEnd` checks it.
//! * Passes: constant folding, dominator-scoped GVN (with redundant-guard
//!   elimination), LICM, loop accumulator promotion (the paper's
//!   `obj.sum`-to-register example, Fig. 4), and DCE.

pub mod absint;
pub mod analysis;
pub mod build;
pub mod graph;
pub mod ipa;
pub mod node;
pub mod passes;
pub mod ranges;
pub mod scev;

pub use absint::{analyze, Absint, Verdict};
pub use build::{build_ir, BuildError, SpecLevel};
pub use graph::{BlockId, IrFunc, Succs, ValueId};
pub use ipa::{summarize, AbsVal, CallGraph, FuncSummary, ProgramSummaries};
pub use node::{Alias, CheckMode, Inst, InstKind, OsrState, Ty};
pub use passes::ProveStats;
pub use ranges::{Interval, TagSet};
