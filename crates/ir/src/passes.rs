//! SMP-aware optimization passes.
//!
//! The passes implement the paper's optimization story:
//!
//! * In the `Base` configuration every speculative check is a `Deopt`-mode
//!   Stack Map Point, which [`Inst::may_write`] reports as a full memory
//!   clobber (LLVM treats FTL's stackmap intrinsics the same way). GVN can
//!   still remove *dominated identical* checks (JSC's
//!   `TypeCheckHoistingPhase`-style redundancy elimination) but loads can't
//!   move across SMPs, stores can't sink, and checks can't leave loops.
//! * After NoMap converts in-transaction checks to `Abort` mode, the same
//!   passes — unchanged — suddenly find work: loads hoist (LICM), loop
//!   accumulators promote to registers (Fig. 4), and invariant checks hoist
//!   out of loops.

use std::collections::{HashMap, HashSet};

use crate::analysis::{defined_outside, ensure_preheader, find_loops, Dominators, Loop};
use crate::graph::{BlockId, IrFunc, ValueId};
use crate::node::{Alias, CheckMode, FBinOp, IBinOp, Inst, InstKind};

/// Which optional passes run (constant folding and DCE always run).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PassConfig {
    /// Global value numbering + redundant check elimination.
    pub gvn: bool,
    /// Loop-invariant code motion.
    pub licm: bool,
    /// Loop accumulator promotion (store sinking).
    pub promote: bool,
    /// Phi untagging (abstract-interpretation-style type propagation
    /// through loop phis, removing per-iteration type checks).
    pub untag: bool,
}

impl PassConfig {
    /// The FTL pipeline (all passes).
    pub fn ftl() -> Self {
        PassConfig { gvn: true, licm: true, promote: true, untag: true }
    }

    /// The DFG pipeline (local cleanup only).
    pub fn dfg() -> Self {
        PassConfig { gvn: false, licm: false, promote: false, untag: false }
    }
}

/// Runs the configured pipeline to a fixpoint (two rounds are enough for
/// the patterns that matter; more iterations would only burn compile time).
pub fn run_pipeline(f: &mut IrFunc, config: PassConfig) {
    run_pipeline_observed(f, config, &mut |_, _| {});
}

/// Like [`run_pipeline`], but invokes `observer` after every individual
/// pass with the pass name. The pass sanitizer hangs the strict verifier
/// off this hook; with a no-op observer the cost is identical to
/// [`run_pipeline`].
pub fn run_pipeline_observed(
    f: &mut IrFunc,
    config: PassConfig,
    observer: &mut dyn FnMut(&IrFunc, &'static str),
) {
    for _ in 0..2 {
        constfold(f);
        observer(f, "constfold");
        if config.untag {
            untag_phis(f);
            observer(f, "untag_phis");
        }
        if config.gvn {
            gvn(f);
            observer(f, "gvn");
        }
        if config.licm {
            licm(f);
            observer(f, "licm");
        }
        if config.promote {
            while promote_accumulators(f) {}
            observer(f, "promote_accumulators");
        }
        dce(f);
        observer(f, "dce");
    }
    debug_assert_eq!(f.verify(), Ok(()));
}

// ---------------------------------------------------------------- constfold

/// Local constant folding and box/unbox peepholes.
pub fn constfold(f: &mut IrFunc) {
    let mut changed = true;
    while changed {
        changed = false;
        for idx in 0..f.insts.len() {
            let v = ValueId(idx as u32);
            let new = match &f.inst(v).kind {
                InstKind::CheckInt32 { v: inner, .. } => match &f.inst(*inner).kind {
                    InstKind::BoxI32(x) => Some(Replace::With(*x)),
                    InstKind::Const(c) if c.is_int32() => {
                        Some(Replace::Kind(InstKind::ConstI32(c.as_int32())))
                    }
                    _ => None,
                },
                InstKind::CheckNumber { v: inner, .. } => match &f.inst(*inner).kind {
                    InstKind::BoxF64(x) => Some(Replace::With(*x)),
                    InstKind::BoxI32(x) => Some(Replace::Kind(InstKind::I32ToF64(*x))),
                    InstKind::Const(c) if c.is_int32() => {
                        Some(Replace::Kind(InstKind::ConstF64(c.as_int32() as f64)))
                    }
                    InstKind::Const(c) if c.is_double() => {
                        Some(Replace::Kind(InstKind::ConstF64(c.as_double())))
                    }
                    _ => None,
                },
                InstKind::CheckBool { v: inner, .. } => match &f.inst(*inner).kind {
                    InstKind::BoxBool(x) => Some(Replace::With(*x)),
                    _ => None,
                },
                InstKind::CheckF64ToI32 { v: inner, .. } => match &f.inst(*inner).kind {
                    InstKind::I32ToF64(x) => Some(Replace::With(*x)),
                    InstKind::ConstF64(d)
                        if d.fract() == 0.0
                            && *d >= i32::MIN as f64
                            && *d <= i32::MAX as f64
                            && !(*d == 0.0 && d.is_sign_negative()) =>
                    {
                        Some(Replace::Kind(InstKind::ConstI32(*d as i32)))
                    }
                    _ => None,
                },
                InstKind::I32ToF64(inner) => match &f.inst(*inner).kind {
                    InstKind::ConstI32(c) => Some(Replace::Kind(InstKind::ConstF64(*c as f64))),
                    _ => None,
                },
                InstKind::CheckedAddI32 { a, b, .. } => fold_i32(f, *a, *b, i32::checked_add),
                InstKind::CheckedSubI32 { a, b, .. } => fold_i32(f, *a, *b, i32::checked_sub),
                InstKind::CheckedMulI32 { a, b, .. } => {
                    // Fold only when no overflow and no negative zero.
                    match (const_i32(f, *a), const_i32(f, *b)) {
                        (Some(x), Some(y)) => match x.checked_mul(y) {
                            Some(r) if !(r == 0 && (x < 0 || y < 0)) => {
                                Some(Replace::Kind(InstKind::ConstI32(r)))
                            }
                            _ => None,
                        },
                        _ => None,
                    }
                }
                InstKind::IBin { op, a, b } => match (const_i32(f, *a), const_i32(f, *b)) {
                    (Some(x), Some(y)) => {
                        let r = match op {
                            IBinOp::And => x & y,
                            IBinOp::Or => x | y,
                            IBinOp::Xor => x ^ y,
                            IBinOp::Shl => x.wrapping_shl(y as u32 & 31),
                            IBinOp::Sar => x.wrapping_shr(y as u32 & 31),
                        };
                        Some(Replace::Kind(InstKind::ConstI32(r)))
                    }
                    _ => None,
                },
                InstKind::FBin { op, a, b } => match (const_f64(f, *a), const_f64(f, *b)) {
                    (Some(x), Some(y)) => {
                        let r = match op {
                            FBinOp::Add => x + y,
                            FBinOp::Sub => x - y,
                            FBinOp::Mul => x * y,
                            FBinOp::Div => x / y,
                            FBinOp::Mod => x % y,
                        };
                        Some(Replace::Kind(InstKind::ConstF64(r)))
                    }
                    _ => None,
                },
                InstKind::Guard { cond, .. } => match &f.inst(*cond).kind {
                    InstKind::ConstBool(false) => Some(Replace::Kind(InstKind::Nop)),
                    _ => None,
                },
                InstKind::ICmp { cond, a, b } => match (const_i32(f, *a), const_i32(f, *b)) {
                    (Some(x), Some(y)) => Some(Replace::Kind(InstKind::ConstBool(
                        cond.eval_i64(x as i64 as u64, y as i64 as u64),
                    ))),
                    _ => None,
                },
                InstKind::BNot(inner) => match &f.inst(*inner).kind {
                    InstKind::ConstBool(x) => Some(Replace::Kind(InstKind::ConstBool(!x))),
                    _ => None,
                },
                _ => None,
            };
            match new {
                Some(Replace::With(x)) => {
                    f.inst_mut(v).kind = InstKind::Nop;
                    f.inst_mut(v).osr = None;
                    f.replace_all_uses(v, x);
                    changed = true;
                }
                Some(Replace::Kind(k)) => {
                    f.inst_mut(v).kind = k;
                    f.inst_mut(v).osr = None;
                    changed = true;
                }
                None => {}
            }
        }
        changed |= prune_dead_branches(f);
    }
}

/// Rewrites `Branch` on a constant condition into `Jump` and detaches the
/// dead edge (predecessor entry plus the corresponding phi inputs), so
/// branch-sensitive analyses never see facts from a statically dead path.
/// The untaken block may become unreachable; it keeps a structurally
/// consistent (possibly empty) predecessor list.
fn prune_dead_branches(f: &mut IrFunc) -> bool {
    let mut changed = false;
    for bi in 0..f.blocks.len() {
        let b = BlockId(bi as u32);
        if f.blocks[bi].insts.is_empty() {
            continue;
        }
        let term = f.terminator(b);
        let InstKind::Branch { cond, then_b, else_b } = f.inst(term).kind else { continue };
        let InstKind::ConstBool(k) = f.inst(cond).kind else { continue };
        let (taken, dead) = if k { (then_b, else_b) } else { (else_b, then_b) };
        f.inst_mut(term).kind = InstKind::Jump { target: taken };
        if then_b == else_b {
            // Parallel edges: one survives. `compute_preds` pushes the
            // then-edge entry first and edge edits preserve relative
            // order, so drop the second entry when the then-edge is taken.
            let positions: Vec<usize> = f.blocks[dead.0 as usize]
                .preds
                .iter()
                .enumerate()
                .filter(|(_, p)| **p == b)
                .map(|(i, _)| i)
                .collect();
            if positions.len() >= 2 {
                remove_pred(f, dead, if k { positions[1] } else { positions[0] });
            }
        } else if let Some(pos) = f.blocks[dead.0 as usize].preds.iter().position(|&p| p == b) {
            remove_pred(f, dead, pos);
        }
        changed = true;
    }
    if changed {
        remove_unreachable_blocks(f);
    }
    changed
}

/// Fully detaches every block unreachable from the entry: its edges into
/// still-reachable successors are removed (phi inputs in sync), its
/// instructions become `Nop`, and it ends up empty with no predecessors.
/// Without this, a pruned branch could leave a dead block as a live
/// block's predecessor, and phis over that edge would reference values
/// that no longer dominate anything.
fn remove_unreachable_blocks(f: &mut IrFunc) {
    let mut reachable = vec![false; f.blocks.len()];
    let mut work = vec![f.entry];
    reachable[f.entry.0 as usize] = true;
    while let Some(b) = work.pop() {
        if f.blocks[b.0 as usize].insts.is_empty() {
            continue;
        }
        for s in f.succs(b) {
            if !std::mem::replace(&mut reachable[s.0 as usize], true) {
                work.push(s);
            }
        }
    }
    for (bi, live) in reachable.into_iter().enumerate() {
        if live || f.blocks[bi].insts.is_empty() {
            continue;
        }
        let b = BlockId(bi as u32);
        for s in f.succs(b) {
            while let Some(pos) = f.blocks[s.0 as usize].preds.iter().position(|&p| p == b) {
                remove_pred(f, s, pos);
            }
        }
        let insts = std::mem::take(&mut f.blocks[bi].insts);
        for v in insts {
            f.inst_mut(v).kind = InstKind::Nop;
            f.inst_mut(v).osr = None;
        }
        f.blocks[bi].preds.clear();
    }
}

/// Drops predecessor entry `pos` of `block`, keeping phi inputs in sync.
fn remove_pred(f: &mut IrFunc, block: BlockId, pos: usize) {
    f.blocks[block.0 as usize].preds.remove(pos);
    let insts = f.blocks[block.0 as usize].insts.clone();
    for v in insts {
        match &mut f.inst_mut(v).kind {
            InstKind::Phi { inputs, .. } => {
                if pos < inputs.len() {
                    inputs.remove(pos);
                }
            }
            InstKind::Nop => {}
            _ => break, // phis (and leftover nops) lead the block
        }
    }
}

enum Replace {
    With(ValueId),
    Kind(InstKind),
}

fn const_i32(f: &IrFunc, v: ValueId) -> Option<i32> {
    match f.inst(v).kind {
        InstKind::ConstI32(c) => Some(c),
        _ => None,
    }
}

fn const_f64(f: &IrFunc, v: ValueId) -> Option<f64> {
    match f.inst(v).kind {
        InstKind::ConstF64(c) => Some(c),
        _ => None,
    }
}

fn fold_i32(
    f: &IrFunc,
    a: ValueId,
    b: ValueId,
    op: impl Fn(i32, i32) -> Option<i32>,
) -> Option<Replace> {
    match (const_i32(f, a), const_i32(f, b)) {
        (Some(x), Some(y)) => op(x, y).map(|r| Replace::Kind(InstKind::ConstI32(r))),
        _ => None,
    }
}

// ---------------------------------------------------------------- untag_phis

/// Type propagation through phis: a Boxed phi whose inputs are all
/// `BoxI32(x)` (resp. `BoxF64`) gets an unboxed twin phi over the `x`s, and
/// every `CheckInt32`/`CheckNumber` of the original phi is replaced by the
/// twin — deleting one type check *per loop iteration per variable*, the
/// way FTL's abstract interpreter proves loop-carried int32-ness. The boxed
/// phi survives for OSR state and boxed uses (DCE reaps it when dead).
pub fn untag_phis(f: &mut IrFunc) -> bool {
    let mut changed = false;
    for bi in 0..f.blocks.len() {
        let phis: Vec<ValueId> = f.blocks[bi]
            .insts
            .iter()
            .copied()
            .take_while(|&v| matches!(f.inst(v).kind, InstKind::Phi { .. }))
            .collect();
        for phi in phis {
            let InstKind::Phi { inputs, ty: crate::node::Ty::Boxed } = f.inst(phi).kind.clone()
            else {
                continue;
            };
            // All inputs must be boxes of the same unboxed type (or the phi
            // itself, for self-loops).
            // Input classification: boxes contribute their payload,
            // int32/double constants contribute an unboxed constant that is
            // materialized next to the original (whose block dominates all
            // uses of the phi input).
            enum Unboxed {
                SelfRef,
                Value(ValueId),
                NewConst(InstKind, ValueId), // (unboxed const, after which inst)
            }
            let mut unboxed = Vec::with_capacity(inputs.len());
            let mut ty = None;
            let mut ok = true;
            let fits = |t: crate::node::Ty, ty: &mut Option<crate::node::Ty>| {
                if ty.is_none() {
                    *ty = Some(t);
                }
                *ty == Some(t)
            };
            for &input in &inputs {
                if input == phi {
                    unboxed.push(Unboxed::SelfRef);
                    continue;
                }
                match &f.inst(input).kind {
                    InstKind::BoxI32(x) if fits(crate::node::Ty::I32, &mut ty) => {
                        unboxed.push(Unboxed::Value(*x));
                    }
                    InstKind::BoxF64(x) if fits(crate::node::Ty::F64, &mut ty) => {
                        unboxed.push(Unboxed::Value(*x));
                    }
                    InstKind::Const(c) if c.is_int32() && fits(crate::node::Ty::I32, &mut ty) => {
                        unboxed.push(Unboxed::NewConst(InstKind::ConstI32(c.as_int32()), input));
                    }
                    InstKind::Const(c) if c.is_double() && fits(crate::node::Ty::F64, &mut ty) => {
                        unboxed.push(Unboxed::NewConst(InstKind::ConstF64(c.as_double()), input));
                    }
                    _ => {
                        ok = false;
                        break;
                    }
                }
            }
            let Some(ty) = ty else { continue };
            if !ok {
                continue;
            }
            // Is the twin worth creating? Only if some check consumes the
            // boxed phi.
            let has_check_use = f.insts.iter().any(|i| match &i.kind {
                InstKind::CheckInt32 { v, .. } => *v == phi && ty == crate::node::Ty::I32,
                InstKind::CheckNumber { v, .. } => *v == phi && ty == crate::node::Ty::F64,
                _ => false,
            });
            if !has_check_use {
                continue;
            }
            let twin = f.add_inst(Inst::new(InstKind::Phi { inputs: vec![], ty }));
            // Place the twin among the leading phis.
            let pos = f.blocks[bi]
                .insts
                .iter()
                .take_while(|&&v| matches!(f.inst(v).kind, InstKind::Phi { .. }))
                .count();
            f.blocks[bi].insts.insert(pos, twin);
            let mut twin_inputs = Vec::with_capacity(unboxed.len());
            for u in unboxed {
                let v = match u {
                    Unboxed::SelfRef => twin,
                    Unboxed::Value(x) => x,
                    Unboxed::NewConst(kind, after) => {
                        // Materialize the unboxed constant immediately after
                        // the boxed one, in whatever block defines it.
                        let c = f.add_inst(Inst::new(kind));
                        let mut placed = false;
                        for b in &mut f.blocks {
                            if let Some(p) = b.insts.iter().position(|&x| x == after) {
                                b.insts.insert(p + 1, c);
                                placed = true;
                                break;
                            }
                        }
                        if !placed {
                            // The const was itself floating (shouldn't
                            // happen); fall back to the phi's block start.
                            f.blocks[bi].insts.insert(0, c);
                        }
                        c
                    }
                };
                twin_inputs.push(v);
            }
            if let InstKind::Phi { inputs: slots, .. } = &mut f.inst_mut(twin).kind {
                *slots = twin_inputs;
            }
            // Replace checks of the boxed phi with the twin.
            for idx in 0..f.insts.len() {
                let v = ValueId(idx as u32);
                let replace = match &f.inst(v).kind {
                    InstKind::CheckInt32 { v: inner, .. }
                        if *inner == phi && ty == crate::node::Ty::I32 =>
                    {
                        true
                    }
                    InstKind::CheckNumber { v: inner, .. }
                        if *inner == phi && ty == crate::node::Ty::F64 =>
                    {
                        true
                    }
                    _ => false,
                };
                if replace {
                    f.inst_mut(v).kind = InstKind::Nop;
                    f.inst_mut(v).osr = None;
                    f.replace_all_uses(v, twin);
                    changed = true;
                }
            }
        }
    }
    changed
}

// ---------------------------------------------------------------------- gvn

/// Dominance-based global value numbering: pure instructions, speculative
/// checks (redundant-check elimination) and same-block load CSE.
pub fn gvn(f: &mut IrFunc) {
    let doms = Dominators::compute(f);
    let def_block = def_block_map(f);
    let mut table: HashMap<GvnKey, Vec<ValueId>> = HashMap::new();

    for &b in &doms.rpo.clone() {
        // Same-block load CSE with a clobber scan.
        let insts = f.blocks[b.0 as usize].insts.clone();
        let mut recent_loads: Vec<(Alias, ValueId)> = Vec::new();
        for &v in &insts {
            let inst = f.inst(v).clone();
            // Kill loads clobbered by this instruction.
            recent_loads.retain(|(alias, _)| !inst.may_write(*alias));
            if let Some((alias, key)) = load_key(&inst.kind) {
                if let Some(&(_, prev)) = recent_loads.iter().find(|(a2, p)| {
                    *a2 == alias && load_key(&f.inst(*p).kind) == Some((alias, key.clone()))
                }) {
                    f.inst_mut(v).kind = InstKind::Nop;
                    f.inst_mut(v).osr = None;
                    f.replace_all_uses(v, prev);
                    continue;
                }
                recent_loads.push((alias, v));
            }
            // Dominance-scoped value numbering for pure insts and checks.
            let Some(key) = gvn_key(&inst.kind) else { continue };
            let entry = table.entry(key).or_default();
            let found = entry.iter().copied().find(|&cand| {
                cand != v
                    && !matches!(f.inst(cand).kind, InstKind::Nop)
                    && def_block
                        .get(&cand)
                        .map(|&cb| {
                            cb != b && doms.dominates(cb, b)
                                || (cb == b && comes_before(f, b, cand, v))
                        })
                        .unwrap_or(false)
            });
            match found {
                Some(prev) => {
                    f.inst_mut(v).kind = InstKind::Nop;
                    f.inst_mut(v).osr = None;
                    f.replace_all_uses(v, prev);
                }
                None => entry.push(v),
            }
        }
    }
}

fn comes_before(f: &IrFunc, b: BlockId, a: ValueId, v: ValueId) -> bool {
    let insts = &f.blocks[b.0 as usize].insts;
    let pa = insts.iter().position(|&x| x == a);
    let pv = insts.iter().position(|&x| x == v);
    matches!((pa, pv), (Some(x), Some(y)) if x < y)
}

fn def_block_map(f: &IrFunc) -> HashMap<ValueId, BlockId> {
    let mut m = HashMap::new();
    for (bi, b) in f.blocks.iter().enumerate() {
        for &v in &b.insts {
            m.insert(v, BlockId(bi as u32));
        }
    }
    m
}

#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct GvnKey(u32, Vec<u64>);

/// Key for pure instructions and speculative checks. `None` for anything
/// with effects, memory behaviour or control flow.
fn gvn_key(kind: &InstKind) -> Option<GvnKey> {
    use InstKind::*;
    let key = match kind {
        Const(v) => GvnKey(1, vec![v.to_bits()]),
        ConstI32(c) => GvnKey(2, vec![*c as u32 as u64]),
        ConstF64(c) => GvnKey(3, vec![c.to_bits()]),
        ConstRaw(c) => GvnKey(4, vec![*c]),
        ConstBool(c) => GvnKey(5, vec![*c as u64]),
        BoxI32(v) => GvnKey(6, vec![v.0 as u64]),
        BoxF64(v) => GvnKey(7, vec![v.0 as u64]),
        BoxBool(v) => GvnKey(8, vec![v.0 as u64]),
        I32ToF64(v) => GvnKey(9, vec![v.0 as u64]),
        IBin { op, a, b } => GvnKey(10, vec![*op as u64, a.0 as u64, b.0 as u64]),
        FBin { op, a, b } => GvnKey(11, vec![*op as u64, a.0 as u64, b.0 as u64]),
        FNeg(v) => GvnKey(12, vec![v.0 as u64]),
        ICmp { cond, a, b } => GvnKey(13, vec![*cond as u64, a.0 as u64, b.0 as u64]),
        FCmp { cond, a, b } => GvnKey(14, vec![*cond as u64, a.0 as u64, b.0 as u64]),
        BNot(v) => GvnKey(15, vec![v.0 as u64]),
        MathOp { intr, args } => {
            let mut k = vec![*intr as u64];
            k.extend(args.iter().map(|a| a.0 as u64));
            GvnKey(16, k)
        }
        // Speculative checks: a dominating identical check makes the later
        // one redundant regardless of mode (the earlier one fires first).
        CheckInt32 { v, .. } => GvnKey(20, vec![v.0 as u64]),
        CheckNumber { v, .. } => GvnKey(21, vec![v.0 as u64]),
        CheckBool { v, .. } => GvnKey(22, vec![v.0 as u64]),
        CheckShape { v, shape, .. } => GvnKey(23, vec![v.0 as u64, shape.0 as u64]),
        CheckArray { v, .. } => GvnKey(24, vec![v.0 as u64]),
        CheckString { v, .. } => GvnKey(25, vec![v.0 as u64]),
        CheckF64ToI32 { v, .. } => GvnKey(26, vec![v.0 as u64]),
        Guard { kind, cond, mode } => {
            // Removed-mode guards are dead anyway; don't dedup across them.
            if *mode == CheckMode::Removed {
                return None;
            }
            GvnKey(27, vec![*kind as u64, cond.0 as u64])
        }
        // Checked arithmetic is pure-with-check; identical dominating op
        // gives the same value (and already performed the same check).
        CheckedAddI32 { a, b, .. } => GvnKey(28, vec![a.0 as u64, b.0 as u64]),
        CheckedSubI32 { a, b, .. } => GvnKey(29, vec![a.0 as u64, b.0 as u64]),
        CheckedMulI32 { a, b, .. } => GvnKey(30, vec![a.0 as u64, b.0 as u64]),
        CheckedNegI32 { a, .. } => GvnKey(31, vec![a.0 as u64]),
        CheckedUShr { a, b, .. } => GvnKey(32, vec![a.0 as u64, b.0 as u64]),
        _ => return None,
    };
    Some(key)
}

/// Key identifying a memory location for load CSE.
fn load_key(kind: &InstKind) -> Option<(Alias, Vec<u64>)> {
    match kind {
        InstKind::LoadField { base, offset, alias, .. } => {
            Some((*alias, vec![base.0 as u64, *offset]))
        }
        InstKind::LoadElem { storage, index } => {
            Some((Alias::Elem, vec![storage.0 as u64, index.0 as u64]))
        }
        InstKind::LoadGlobal { addr, name } => Some((Alias::Global(*name), vec![*addr])),
        _ => None,
    }
}

// --------------------------------------------------------------------- licm

/// Loop-invariant code motion for pure instructions, loads (when nothing in
/// the loop may clobber them — in `Base` mode every SMP does) and
/// `Abort`-mode checks.
pub fn licm(f: &mut IrFunc) {
    let has_txn = f.insts.iter().any(|i| matches!(i.kind, InstKind::XBegin));
    let doms = Dominators::compute(f);
    let loops = find_loops(f, &doms);
    for l in &loops {
        let Some(preheader) = ensure_preheader(f, l) else { continue };
        // Abort-mode checks must stay inside their transaction. Hoisting
        // inserts before the preheader terminator — i.e. after any XBegin
        // living there — so the preheader's *exit* depth decides. When the
        // function places no transactions itself (txn callees run entirely
        // under the caller's XBegin, and non-txn tiers have no abort
        // checks), the hoist is unconstrained.
        let abort_in_txn = !has_txn
            || crate::analysis::txn_depths(f, 0).depths[preheader.0 as usize]
                .is_some_and(|(_, exit)| exit >= 1);
        let mut moved = true;
        while moved {
            moved = false;
            for &b in &l.body.clone() {
                let insts = f.blocks[b.0 as usize].insts.clone();
                for v in insts {
                    if !hoistable(f, l, v, abort_in_txn) {
                        continue;
                    }
                    // Move v to the preheader.
                    let block = &mut f.blocks[b.0 as usize].insts;
                    let pos = block.iter().position(|&x| x == v).unwrap();
                    block.remove(pos);
                    let ph = &mut f.blocks[preheader.0 as usize].insts;
                    let term_pos = ph.len().saturating_sub(1);
                    ph.insert(term_pos, v);
                    moved = true;
                }
            }
        }
    }
}

fn hoistable(f: &IrFunc, l: &Loop, v: ValueId, abort_in_txn: bool) -> bool {
    let inst = f.inst(v);
    let invariant_operands = inst.operands().iter().all(|&o| defined_outside(f, l, o) || o == v);
    if !invariant_operands {
        return false;
    }
    if inst.is_pure() && !matches!(inst.kind, InstKind::Param(_) | InstKind::Phi { .. }) {
        return true;
    }
    // Loads hoist when the loop cannot clobber their class. Deopt-mode
    // checks report may_write(*) = true, so SMPs block this in Base mode.
    if let Some((alias, _)) = load_key(&inst.kind) {
        let clobbered =
            l.body.iter().any(|&b| crate::analysis::block_any(f, b, |i| i.may_write(alias)));
        return !clobbered;
    }
    // Abort-mode checks can move freely inside the transaction (§IV-C);
    // hoisting one above the loop is safe — a spurious early abort only
    // costs performance, never correctness. But the destination must still
    // be transactional: landing outside every XBegin would execute an
    // abort with no transaction to roll back.
    if inst.check_mode() == Some(CheckMode::Abort) {
        return abort_in_txn;
    }
    false
}

// ----------------------------------------------------------------- promote

/// Loop accumulator promotion ("store sinking" in the paper's Fig. 4): a
/// location loaded and stored every iteration becomes a register (phi), with
/// one load before the loop and one store after it.
pub fn promote_accumulators(f: &mut IrFunc) -> bool {
    let doms = Dominators::compute(f);
    let loops = find_loops(f, &doms);
    for l in &loops {
        // Only innermost loops (no other loop header inside).
        if loops.iter().any(|l2| l2.header != l.header && l.body.contains(&l2.header)) {
            continue;
        }
        // Calls or SMPs in the loop block everything.
        if crate::analysis::loop_any(f, l, |i| {
            matches!(i.kind, InstKind::CallRuntime { .. } | InstKind::CallJs { .. })
                || i.check_mode() == Some(CheckMode::Deopt)
        }) {
            continue;
        }
        // Collect accesses per location.
        let mut locs: HashMap<LocKey, (Vec<ValueId>, Vec<ValueId>)> = HashMap::new();
        let mut alias_counts: HashMap<Alias, usize> = HashMap::new();
        for &b in &l.body {
            for &v in &f.blocks[b.0 as usize].insts {
                let inst = f.inst(v);
                match &inst.kind {
                    InstKind::LoadField { base, offset, alias, .. } => {
                        *alias_counts.entry(*alias).or_default() += 1;
                        locs.entry(LocKey::Field(*base, *offset, *alias)).or_default().0.push(v);
                    }
                    InstKind::StoreField { base, offset, alias, .. } => {
                        *alias_counts.entry(*alias).or_default() += 1;
                        locs.entry(LocKey::Field(*base, *offset, *alias)).or_default().1.push(v);
                    }
                    InstKind::LoadGlobal { addr, name } => {
                        *alias_counts.entry(Alias::Global(*name)).or_default() += 1;
                        locs.entry(LocKey::Global(*addr, *name)).or_default().0.push(v);
                    }
                    InstKind::StoreGlobal { addr, name, .. } => {
                        *alias_counts.entry(Alias::Global(*name)).or_default() += 1;
                        locs.entry(LocKey::Global(*addr, *name)).or_default().1.push(v);
                    }
                    InstKind::LoadElem { .. } | InstKind::StoreElem { .. } => {
                        *alias_counts.entry(Alias::Elem).or_default() += 1;
                    }
                    _ => {}
                }
            }
        }
        // Stable candidate order: promotion rewrites the graph and restarts,
        // so which location goes first must not depend on map iteration
        // order. The lowest access ValueId is unique per location.
        let mut candidates: Vec<_> = locs.into_iter().collect();
        candidates.sort_by_key(|(_, (loads, stores))| {
            loads.iter().chain(stores.iter()).map(|v| v.0).min().unwrap_or(u32::MAX)
        });
        for (key, (loads, stores)) in candidates {
            if stores.len() != 1 {
                continue;
            }
            let store = stores[0];
            // Every access of this alias class in the loop must belong to
            // this location (otherwise unknown aliasing).
            let class_accesses = alias_counts.get(&key.alias()).copied().unwrap_or(0);
            if class_accesses != loads.len() + stores.len() {
                continue;
            }
            // Base must be invariant.
            if let LocKey::Field(base, _, _) = key {
                if !defined_outside(f, l, base) {
                    continue;
                }
            }
            // The store's block must dominate every latch (runs every
            // iteration) and all loads must be in blocks dominated by the
            // header (trivially true) and dominating the store or equal.
            let def_block = def_block_map(f);
            let sb = def_block[&store];
            if !l.latches.iter().all(|&latch| doms.dominates(sb, latch)) {
                continue;
            }
            if !loads.iter().all(|&ld| {
                let lb = def_block[&ld];
                doms.dominates(lb, sb) && (lb != sb || comes_before(f, sb, ld, store))
            }) {
                continue;
            }
            promote_one(f, l, &doms, key, &loads, store);
            // Structure changed; redo analyses before promoting more.
            return true;
        }
    }
    false
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum LocKey {
    Field(ValueId, u64, Alias),
    Global(u64, nomap_bytecode::NameId),
}

impl LocKey {
    fn alias(self) -> Alias {
        match self {
            LocKey::Field(_, _, a) => a,
            LocKey::Global(_, n) => Alias::Global(n),
        }
    }
}

fn promote_one(
    f: &mut IrFunc,
    l: &Loop,
    doms: &Dominators,
    key: LocKey,
    loads: &[ValueId],
    store: ValueId,
) {
    let Some(preheader) = ensure_preheader(f, l) else { return };
    // Initial value: load in the preheader.
    let init_kind = match key {
        LocKey::Field(base, offset, alias) => {
            InstKind::LoadField { base, offset, alias, ty: crate::node::Ty::Boxed }
        }
        LocKey::Global(addr, name) => InstKind::LoadGlobal { addr, name },
    };
    let init = f.insert_before_terminator(preheader, Inst::new(init_kind));
    // Phi in the header: entry → init, latches → stored value.
    let stored_value = match &f.inst(store).kind {
        InstKind::StoreField { v, .. } | InstKind::StoreGlobal { v, .. } => *v,
        _ => return,
    };
    let header_preds = f.blocks[l.header.0 as usize].preds.clone();
    let inputs: Vec<ValueId> = header_preds
        .iter()
        .map(|p| if l.latches.contains(p) { stored_value } else { init })
        .collect();
    let phi =
        f.insert_at(l.header, 0, Inst::new(InstKind::Phi { inputs, ty: crate::node::Ty::Boxed }));
    // Loads inside the loop see the running value: loads that execute
    // before the store (they dominate it) see the phi.
    for &ld in loads {
        f.inst_mut(ld).kind = InstKind::Nop;
        f.inst_mut(ld).osr = None;
        f.replace_all_uses(ld, phi);
    }
    // Remove the in-loop store; store the final value at every exit.
    let store_kind = f.inst(store).kind.clone();
    f.inst_mut(store).kind = InstKind::Nop;
    let def_block = def_block_map(f);
    let exits = l.exits.clone();
    for (from, to) in exits {
        // Value at the exit: the stored value if the store's block ran
        // before the exit (store block dominates `from`), otherwise the phi.
        let sb = def_block.get(&stored_value).copied().unwrap_or(l.header);
        let val = if doms.dominates(sb, from) && l.body.contains(&sb) { stored_value } else { phi };
        let mid = f.split_edge(from, to);
        let kind = match (&store_kind, key) {
            (InstKind::StoreField { .. }, LocKey::Field(base, offset, alias)) => {
                InstKind::StoreField { base, offset, v: val, alias }
            }
            (InstKind::StoreGlobal { .. }, LocKey::Global(addr, name)) => {
                InstKind::StoreGlobal { addr, name, v: val }
            }
            _ => continue,
        };
        f.insert_at(mid, 0, Inst::new(kind));
    }
}

// --------------------------------------------------------------- prove_checks

/// Tallies from one [`prove_checks`] run, per check kind (indexed by
/// [`nomap_machine::CheckKind::index`]). `proved_safe + proved_fail +
/// unknown` is the number of reachable checks analyzed; `elided` counts
/// the proved-safe checks actually deleted (equal to `proved_safe` for the
/// sound pass).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ProveStats {
    /// Checks proved infeasible (and elided), per kind.
    pub proved_safe: [u32; 5],
    /// Checks proved to fire on every execution reaching them, per kind.
    pub proved_fail: [u32; 5],
    /// Checks the analysis could not decide, per kind.
    pub unknown: [u32; 5],
    /// Checks deleted, per kind.
    pub elided: [u32; 5],
}

impl ProveStats {
    /// Total checks deleted.
    pub fn total_elided(&self) -> u32 {
        self.elided.iter().sum()
    }

    /// Total checks proved safe.
    pub fn total_proved_safe(&self) -> u32 {
        self.proved_safe.iter().sum()
    }

    /// Total checks proved to always fail.
    pub fn total_proved_fail(&self) -> u32 {
        self.proved_fail.iter().sum()
    }

    /// Total undecided checks.
    pub fn total_unknown(&self) -> u32 {
        self.unknown.iter().sum()
    }

    /// Total reachable checks analyzed.
    pub fn total_checks(&self) -> u32 {
        self.total_proved_safe() + self.total_proved_fail() + self.total_unknown()
    }
}

/// Proof-carrying check elision: runs the abstract interpreter
/// ([`crate::absint`]) and deletes every check it proves infeasible —
/// standalone guards become `Nop`, value-producing checks and checked
/// arithmetic flip to [`CheckMode::Removed`] so lowering emits the result
/// operation without any compare/guard machinery. Works in every tier:
/// unlike NoMap's transactional conversion this needs no HTM, so Base and
/// DFG code benefits too. Each deletion is independently re-derived by the
/// `absint_tv` translation validator in `nomap-verify`.
pub fn prove_checks(f: &mut IrFunc) -> ProveStats {
    prove_impl(f, None, false)
}

/// [`prove_checks`] with interprocedural context: parameter preconditions
/// and callee return summaries feed the abstract interpreter, so checks
/// whose safety depends on cross-function facts become provable too. The
/// `absint_tv` validator must be handed the same summaries.
pub fn prove_checks_with(f: &mut IrFunc, ipa: Option<&crate::ipa::ProgramSummaries>) -> ProveStats {
    prove_impl(f, ipa, false)
}

/// Mutation-test variant that additionally elides the first `Unknown`
/// check — an intentionally unsound deletion the `absint_tv` translation
/// validator must reject. Not part of any pipeline.
#[doc(hidden)]
pub fn prove_checks_unsound(f: &mut IrFunc) -> ProveStats {
    prove_impl(f, None, true)
}

fn prove_impl(
    f: &mut IrFunc,
    ipa: Option<&crate::ipa::ProgramSummaries>,
    elide_one_unproved: bool,
) -> ProveStats {
    let result = crate::absint::analyze_with(f, ipa);
    let mut stats = ProveStats::default();
    let mut mutated = false;
    for (&v, verdict) in &result.verdicts {
        let Some(kind) = f.inst(v).check_kind() else { continue };
        let ki = kind.index();
        let elide = match verdict {
            crate::absint::Verdict::ProvedSafe { .. } => {
                stats.proved_safe[ki] += 1;
                true
            }
            crate::absint::Verdict::ProvedFail => {
                stats.proved_fail[ki] += 1;
                false
            }
            crate::absint::Verdict::Unknown => {
                stats.unknown[ki] += 1;
                elide_one_unproved && !std::mem::replace(&mut mutated, true)
            }
        };
        if elide {
            let inst = f.inst_mut(v);
            if matches!(inst.kind, InstKind::Guard { .. }) {
                inst.kind = InstKind::Nop;
            } else {
                inst.set_check_mode(CheckMode::Removed);
            }
            inst.osr = None;
            stats.elided[ki] += 1;
        }
    }
    stats
}

// ----------------------------------------------------------------------- dce

/// Dead code elimination. Roots: control flow, stores, calls, live checks,
/// SOF arithmetic, transactions — plus everything referenced by the OSR
/// state of a live `Deopt` check (the paper's "SMPs pin values alive").
pub fn dce(f: &mut IrFunc) {
    let mut live: HashSet<ValueId> = HashSet::new();
    let mut work: Vec<ValueId> = Vec::new();
    for b in &f.blocks {
        for &v in &b.insts {
            let inst = f.inst(v);
            if (inst.is_terminator() || inst.has_effect()) && live.insert(v) {
                work.push(v);
            }
        }
    }
    while let Some(v) = work.pop() {
        let inst = f.inst(v);
        let mut refs = inst.operands();
        if inst.is_smp() {
            if let Some(osr) = &inst.osr {
                refs.extend(osr.regs.iter().flatten().copied());
            }
        }
        for r in refs {
            if live.insert(r) {
                work.push(r);
            }
        }
    }
    for bi in 0..f.blocks.len() {
        let insts = f.blocks[bi].insts.clone();
        for v in insts {
            if !live.contains(&v) && !matches!(f.inst(v).kind, InstKind::Nop) {
                f.inst_mut(v).kind = InstKind::Nop;
                f.inst_mut(v).osr = None;
            }
        }
        // Physically drop nops from the block list (ids stay valid in the
        // arena).
        let keep: Vec<ValueId> = f.blocks[bi]
            .insts
            .iter()
            .copied()
            .filter(|&v| !matches!(f.inst(v).kind, InstKind::Nop))
            .collect();
        f.blocks[bi].insts = keep;
    }
}
