//! Minimal scalar-evolution analysis: monotonic affine induction variables.
//!
//! NoMap's bounds-check combining (paper §IV-C1) builds "upon LLVM's Scalar
//! Evolution analysis to identify monotonic loop variables". This module
//! recognizes the pattern that matters: a header phi whose latch input adds
//! or subtracts a constant.

use crate::analysis::Loop;
use crate::graph::{IrFunc, ValueId};
use crate::node::InstKind;

/// An affine induction variable `iv = init + k·step`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IndVar {
    /// The header phi.
    pub phi: ValueId,
    /// Value entering from the preheader.
    pub init: ValueId,
    /// The update instruction (`phi ± step`), i.e. the latch input.
    pub update: ValueId,
    /// Constant per-iteration step (non-zero).
    pub step: i32,
}

impl IndVar {
    /// Monotonically increasing?
    pub fn increasing(&self) -> bool {
        self.step > 0
    }
}

/// Finds induction variables of `l`. `preheader_pred_index` is the index of
/// the unique entry predecessor in the header's pred list.
///
/// Loops whose header has multiple non-latch predecessors (several entry
/// edges) yield **no** IndVars rather than wrong ones: with more than one
/// entry there is no single `init`, so the affine form `init + k·step`
/// does not exist. Multi-*latch* loops are fine as long as every latch
/// feeds the phi the same update value; differing latch inputs likewise
/// disqualify the phi.
pub fn induction_vars(f: &IrFunc, l: &Loop) -> Vec<IndVar> {
    let header = &f.blocks[l.header.0 as usize];
    let mut out = Vec::new();
    let entry_positions: Vec<usize> = header
        .preds
        .iter()
        .enumerate()
        .filter(|(_, p)| !l.latches.contains(p))
        .map(|(i, _)| i)
        .collect();
    if entry_positions.len() != 1 {
        return out;
    }
    let entry_pos = entry_positions[0];
    for &v in &header.insts {
        let InstKind::Phi { inputs, .. } = &f.inst(v).kind else { continue };
        if inputs.len() != header.preds.len() {
            continue;
        }
        let init = inputs[entry_pos];
        // All latch inputs must be the same update value.
        let latch_inputs: Vec<ValueId> =
            inputs.iter().enumerate().filter(|(i, _)| *i != entry_pos).map(|(_, &x)| x).collect();
        let Some((&first, rest)) = latch_inputs.split_first() else { continue };
        if rest.iter().any(|&x| x != first) {
            continue;
        }
        let update = first;
        let step = match &f.inst(update).kind {
            InstKind::CheckedAddI32 { a, b, .. } if *a == v => const_i32(f, *b),
            InstKind::CheckedAddI32 { a, b, .. } if *b == v => const_i32(f, *a),
            InstKind::CheckedSubI32 { a, b, .. } if *a == v => const_i32(f, *b).map(|c| -c),
            _ => None,
        };
        if let Some(step) = step {
            if step != 0 {
                out.push(IndVar { phi: v, init, update, step });
            }
        }
    }
    out
}

fn const_i32(f: &IrFunc, v: ValueId) -> Option<i32> {
    match f.inst(v).kind {
        InstKind::ConstI32(c) => Some(c),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::{find_loops, Dominators};
    use crate::graph::IrFunc;
    use crate::node::{CheckMode, Inst, Ty};
    use nomap_bytecode::FuncId;
    use nomap_machine::Cond;

    fn counting_loop(step_kind: &str) -> (IrFunc, ValueId) {
        let mut f = IrFunc::new(FuncId(0), "c", 0, 0);
        let header = f.new_block();
        let body = f.new_block();
        let exit = f.new_block();
        let init = f.append(f.entry, Inst::new(InstKind::ConstI32(0)));
        let n = f.append(f.entry, Inst::new(InstKind::ConstI32(100)));
        f.append(f.entry, Inst::new(InstKind::Jump { target: header }));
        let phi = f.append(header, Inst::new(InstKind::Phi { inputs: vec![init], ty: Ty::I32 }));
        let cmp = f.append(header, Inst::new(InstKind::ICmp { cond: Cond::Lt, a: phi, b: n }));
        f.append(header, Inst::new(InstKind::Branch { cond: cmp, then_b: body, else_b: exit }));
        let step = f.append(body, Inst::new(InstKind::ConstI32(2)));
        let update = match step_kind {
            "add" => f.append(
                body,
                Inst::new(InstKind::CheckedAddI32 { a: phi, b: step, mode: CheckMode::Deopt }),
            ),
            "sub" => f.append(
                body,
                Inst::new(InstKind::CheckedSubI32 { a: phi, b: step, mode: CheckMode::Deopt }),
            ),
            _ => f.append(
                body,
                Inst::new(InstKind::IBin { op: crate::node::IBinOp::Xor, a: phi, b: step }),
            ),
        };
        f.append(body, Inst::new(InstKind::Jump { target: header }));
        if let InstKind::Phi { inputs, .. } = &mut f.inst_mut(phi).kind {
            inputs.push(update);
        }
        let boxed = f.append(exit, Inst::new(InstKind::BoxI32(phi)));
        f.append(exit, Inst::new(InstKind::Return { v: boxed }));
        f.compute_preds();
        (f, phi)
    }

    #[test]
    fn recognizes_increasing_iv() {
        let (f, phi) = counting_loop("add");
        let d = Dominators::compute(&f);
        let loops = find_loops(&f, &d);
        let ivs = induction_vars(&f, &loops[0]);
        assert_eq!(ivs.len(), 1);
        assert_eq!(ivs[0].phi, phi);
        assert_eq!(ivs[0].step, 2);
        assert!(ivs[0].increasing());
    }

    #[test]
    fn recognizes_decreasing_iv() {
        let (f, _) = counting_loop("sub");
        let d = Dominators::compute(&f);
        let loops = find_loops(&f, &d);
        let ivs = induction_vars(&f, &loops[0]);
        assert_eq!(ivs.len(), 1);
        assert_eq!(ivs[0].step, -2);
        assert!(!ivs[0].increasing());
    }

    #[test]
    fn rejects_non_affine_update() {
        let (f, _) = counting_loop("xor");
        let d = Dominators::compute(&f);
        let loops = find_loops(&f, &d);
        assert!(induction_vars(&f, &loops[0]).is_empty());
    }

    /// A header with two entry edges (multiple non-latch predecessors) has
    /// no unique `init`, so the analysis must return nothing — not a
    /// half-right IndVar seeded from one arbitrary entry.
    #[test]
    fn multi_entry_header_yields_no_indvars() {
        let mut f = IrFunc::new(FuncId(0), "c", 0, 0);
        let side = f.new_block();
        let header = f.new_block();
        let body = f.new_block();
        let exit = f.new_block();
        let init_a = f.append(f.entry, Inst::new(InstKind::ConstI32(0)));
        let init_b = f.append(f.entry, Inst::new(InstKind::ConstI32(5)));
        let n = f.append(f.entry, Inst::new(InstKind::ConstI32(100)));
        let t = f.append(f.entry, Inst::new(InstKind::ConstBool(true)));
        f.append(f.entry, Inst::new(InstKind::Branch { cond: t, then_b: side, else_b: header }));
        f.append(side, Inst::new(InstKind::Jump { target: header }));
        // Phi inputs: entry edge (init_a), side edge (init_b), latch edge
        // (update), matching compute_preds order below.
        let phi = f
            .append(header, Inst::new(InstKind::Phi { inputs: vec![init_b, init_a], ty: Ty::I32 }));
        let cmp = f.append(header, Inst::new(InstKind::ICmp { cond: Cond::Lt, a: phi, b: n }));
        f.append(header, Inst::new(InstKind::Branch { cond: cmp, then_b: body, else_b: exit }));
        let one = f.append(body, Inst::new(InstKind::ConstI32(1)));
        let update = f.append(
            body,
            Inst::new(InstKind::CheckedAddI32 { a: phi, b: one, mode: CheckMode::Deopt }),
        );
        f.append(body, Inst::new(InstKind::Jump { target: header }));
        if let InstKind::Phi { inputs, .. } = &mut f.inst_mut(phi).kind {
            inputs.push(update);
        }
        let boxed = f.append(exit, Inst::new(InstKind::BoxI32(phi)));
        f.append(exit, Inst::new(InstKind::Return { v: boxed }));
        f.compute_preds();
        f.verify().unwrap();

        let d = Dominators::compute(&f);
        let loops = find_loops(&f, &d);
        assert_eq!(loops.len(), 1);
        assert!(induction_vars(&f, &loops[0]).is_empty());
    }

    /// Two latches feeding the phi the *same* update value still qualify;
    /// two latches feeding *different* updates must not.
    #[test]
    fn multi_latch_agreeing_updates_ok_disagreeing_rejected() {
        let build = |same: bool| {
            let mut f = IrFunc::new(FuncId(0), "c", 0, 0);
            let header = f.new_block();
            let body_a = f.new_block();
            let body_b = f.new_block();
            let exit = f.new_block();
            let init = f.append(f.entry, Inst::new(InstKind::ConstI32(0)));
            let n = f.append(f.entry, Inst::new(InstKind::ConstI32(100)));
            let t = f.append(f.entry, Inst::new(InstKind::ConstBool(true)));
            f.append(f.entry, Inst::new(InstKind::Jump { target: header }));
            let phi =
                f.append(header, Inst::new(InstKind::Phi { inputs: vec![init], ty: Ty::I32 }));
            let cmp = f.append(header, Inst::new(InstKind::ICmp { cond: Cond::Lt, a: phi, b: n }));
            f.append(
                header,
                Inst::new(InstKind::Branch { cond: cmp, then_b: body_a, else_b: exit }),
            );
            let one = f.append(body_a, Inst::new(InstKind::ConstI32(1)));
            let upd_a = f.append(
                body_a,
                Inst::new(InstKind::CheckedAddI32 { a: phi, b: one, mode: CheckMode::Deopt }),
            );
            // body_a either loops back directly or detours through body_b,
            // which contributes its own latch edge.
            f.append(
                body_a,
                Inst::new(InstKind::Branch { cond: t, then_b: header, else_b: body_b }),
            );
            let upd_b = if same {
                upd_a
            } else {
                let two = f.append(body_b, Inst::new(InstKind::ConstI32(2)));
                f.append(
                    body_b,
                    Inst::new(InstKind::CheckedAddI32 { a: phi, b: two, mode: CheckMode::Deopt }),
                )
            };
            f.append(body_b, Inst::new(InstKind::Jump { target: header }));
            // compute_preds orders header preds [entry, body_a, body_b].
            if let InstKind::Phi { inputs, .. } = &mut f.inst_mut(phi).kind {
                inputs.push(upd_a);
                inputs.push(upd_b);
            }
            let boxed = f.append(exit, Inst::new(InstKind::BoxI32(phi)));
            f.append(exit, Inst::new(InstKind::Return { v: boxed }));
            f.compute_preds();
            f.verify().unwrap();
            f
        };

        let f = build(true);
        let d = Dominators::compute(&f);
        let loops = find_loops(&f, &d);
        assert_eq!(loops.len(), 1);
        assert_eq!(loops[0].latches.len(), 2);
        let ivs = induction_vars(&f, &loops[0]);
        assert_eq!(ivs.len(), 1);
        assert_eq!(ivs[0].step, 1);

        let f = build(false);
        let d = Dominators::compute(&f);
        let loops = find_loops(&f, &d);
        assert_eq!(loops[0].latches.len(), 2);
        assert!(induction_vars(&f, &loops[0]).is_empty());
    }
}
