//! Program call graph over [`FuncId`]s and its SCC condensation.
//!
//! MiniJS calls are direct (`Op::Call` names its callee statically), so
//! the call graph is exact, not an over-approximation. Tarjan's algorithm
//! emits strongly connected components in **reverse topological order** —
//! every SCC is produced after all SCCs it can reach — which is exactly
//! the bottom-up (callees-first) order the summary fixpoint wants.
//! Everything is keyed with `BTree` containers so traversal order, and
//! therefore every summary and census line derived from it, is
//! deterministic.

use std::collections::{BTreeMap, BTreeSet};

use nomap_bytecode::{FuncId, Op, Program};

/// The program call graph, condensed into SCCs.
#[derive(Debug, Clone)]
pub struct CallGraph {
    /// Direct call edges, caller → set of callees.
    pub callees: BTreeMap<FuncId, BTreeSet<FuncId>>,
    /// Reverse edges, callee → set of callers.
    pub callers: BTreeMap<FuncId, BTreeSet<FuncId>>,
    /// Strongly connected components in bottom-up order (each SCC appears
    /// after every SCC it calls into appears... i.e. callees first).
    /// Members are sorted by `FuncId` within each component.
    pub sccs: Vec<Vec<FuncId>>,
    /// Index into [`CallGraph::sccs`] for every function.
    pub scc_of: BTreeMap<FuncId, usize>,
}

impl CallGraph {
    /// Builds the exact call graph of `p` and condenses it.
    pub fn build(p: &Program) -> CallGraph {
        let mut callees: BTreeMap<FuncId, BTreeSet<FuncId>> = BTreeMap::new();
        let mut callers: BTreeMap<FuncId, BTreeSet<FuncId>> = BTreeMap::new();
        for f in &p.functions {
            let edges = callees.entry(f.id).or_default();
            for op in &f.code {
                if let Op::Call { func, .. } = op {
                    edges.insert(*func);
                }
            }
            callers.entry(f.id).or_default();
        }
        for (&caller, outs) in &callees {
            for &callee in outs {
                callers.entry(callee).or_default().insert(caller);
            }
        }
        let (sccs, scc_of) = tarjan(&callees);
        CallGraph { callees, callers, sccs, scc_of }
    }

    /// True when the component needs fixpoint iteration: it has more than
    /// one member, or its single member calls itself.
    pub fn is_cyclic(&self, scc: usize) -> bool {
        let members = &self.sccs[scc];
        members.len() > 1
            || members.first().is_some_and(|f| self.callees.get(f).is_some_and(|cs| cs.contains(f)))
    }

    /// Functions with no in-program caller (the top-down pass treats
    /// these, plus the designated entry points, as roots).
    pub fn uncalled(&self) -> BTreeSet<FuncId> {
        self.callers.iter().filter(|(_, cs)| cs.is_empty()).map(|(&f, _)| f).collect()
    }
}

/// Iterative Tarjan SCC. Returns components in reverse topological
/// (bottom-up) order with members sorted, plus the membership map.
fn tarjan(
    edges: &BTreeMap<FuncId, BTreeSet<FuncId>>,
) -> (Vec<Vec<FuncId>>, BTreeMap<FuncId, usize>) {
    #[derive(Default, Clone)]
    struct NodeState {
        index: Option<u32>,
        lowlink: u32,
        on_stack: bool,
    }
    let mut state: BTreeMap<FuncId, NodeState> = BTreeMap::new();
    for &f in edges.keys() {
        state.insert(f, NodeState::default());
    }
    let mut next_index = 0u32;
    let mut stack: Vec<FuncId> = Vec::new();
    let mut sccs: Vec<Vec<FuncId>> = Vec::new();
    let mut scc_of: BTreeMap<FuncId, usize> = BTreeMap::new();

    // Explicit DFS frames: (node, iterator position over its callees).
    let roots: Vec<FuncId> = edges.keys().copied().collect();
    for root in roots {
        if state[&root].index.is_some() {
            continue;
        }
        let mut frames: Vec<(FuncId, Vec<FuncId>, usize)> = Vec::new();
        let open = |f: FuncId,
                    state: &mut BTreeMap<FuncId, NodeState>,
                    stack: &mut Vec<FuncId>,
                    next_index: &mut u32| {
            let s = state.get_mut(&f).expect("node registered");
            s.index = Some(*next_index);
            s.lowlink = *next_index;
            s.on_stack = true;
            *next_index += 1;
            stack.push(f);
        };
        open(root, &mut state, &mut stack, &mut next_index);
        frames.push((root, edges[&root].iter().copied().collect(), 0));
        while let Some((node, succs, pos)) = frames.last_mut() {
            if let Some(&next) = succs.get(*pos) {
                *pos += 1;
                let node = *node;
                match state[&next].index {
                    None => {
                        open(next, &mut state, &mut stack, &mut next_index);
                        frames.push((next, edges[&next].iter().copied().collect(), 0));
                    }
                    Some(idx) => {
                        if state[&next].on_stack {
                            let low = state[&node].lowlink.min(idx);
                            state.get_mut(&node).expect("node registered").lowlink = low;
                        }
                    }
                }
            } else {
                // Node finished: pop an SCC if it is a root, then fold its
                // lowlink into the parent frame.
                let node = *node;
                frames.pop();
                let ns = state[&node].clone();
                if ns.lowlink == ns.index.expect("opened") {
                    let mut comp = Vec::new();
                    loop {
                        let w = stack.pop().expect("scc member on stack");
                        state.get_mut(&w).expect("node registered").on_stack = false;
                        comp.push(w);
                        if w == node {
                            break;
                        }
                    }
                    comp.sort();
                    for &w in &comp {
                        scc_of.insert(w, sccs.len());
                    }
                    sccs.push(comp);
                }
                if let Some((parent, _, _)) = frames.last() {
                    let parent = *parent;
                    let low = state[&parent].lowlink.min(ns.lowlink);
                    state.get_mut(&parent).expect("node registered").lowlink = low;
                }
            }
        }
    }
    (sccs, scc_of)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn graph(edges: &[(u32, u32)], n: u32) -> BTreeMap<FuncId, BTreeSet<FuncId>> {
        let mut g: BTreeMap<FuncId, BTreeSet<FuncId>> = BTreeMap::new();
        for f in 0..n {
            g.entry(FuncId(f)).or_default();
        }
        for &(a, b) in edges {
            g.entry(FuncId(a)).or_default().insert(FuncId(b));
        }
        g
    }

    #[test]
    fn sccs_come_out_bottom_up() {
        // 0 → 1 → 2 ⇄ 3, 1 → 4. Bottom-up: {2,3} and {4} before {1},
        // {1} before {0}.
        let g = graph(&[(0, 1), (1, 2), (2, 3), (3, 2), (1, 4)], 5);
        let (sccs, scc_of) = tarjan(&g);
        assert_eq!(sccs.iter().map(Vec::len).sum::<usize>(), 5);
        assert_eq!(scc_of[&FuncId(2)], scc_of[&FuncId(3)]);
        assert!(scc_of[&FuncId(2)] < scc_of[&FuncId(1)]);
        assert!(scc_of[&FuncId(4)] < scc_of[&FuncId(1)]);
        assert!(scc_of[&FuncId(1)] < scc_of[&FuncId(0)]);
        // Every SCC's callees outside itself live in earlier components.
        for (i, comp) in sccs.iter().enumerate() {
            for f in comp {
                for callee in &g[f] {
                    assert!(scc_of[callee] <= i);
                }
            }
        }
    }

    #[test]
    fn self_loop_is_cyclic_singleton() {
        let g = graph(&[(0, 0), (0, 1)], 2);
        let (sccs, scc_of) = tarjan(&g);
        assert_eq!(sccs.len(), 2);
        let cg = CallGraph { callees: g, callers: BTreeMap::new(), sccs, scc_of: scc_of.clone() };
        assert!(cg.is_cyclic(scc_of[&FuncId(0)]));
        assert!(!cg.is_cyclic(scc_of[&FuncId(1)]));
    }
}
