//! Per-function summaries and the bytecode-level abstract interpreter
//! that derives them.
//!
//! Summaries are computed over **bytecode**, not speculative IR: a callee
//! can deopt at any check and finish in the interpreter, so only the
//! unspeculated semantics bound what a call may return or write. That
//! also makes summaries profile-independent — the same program always
//! yields the same summaries, regardless of warmup or tier history.
//!
//! The abstract state is one [`AbsVal`] (interval × tag-set) per bytecode
//! register, flow-sensitive and branch-insensitive (both branch arms see
//! the same state, which is sound). Loop headers ([`Function::
//! loop_headers`]) are the widening points. The interval component bounds
//! the **int32 payload**: whenever the concrete value carries the int32
//! tag, its payload lies in `range`. Values that are never int32 have an
//! empty range — that is the precise abstraction of "no int32 payload
//! exists", and it makes joins work out naturally.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use nomap_bytecode::{BinaryOp, Const, FuncId, Function, Intrinsic, NameId, Op, UnaryOp};
use nomap_runtime::{HeapEffect, RetTag, RuntimeFn};

use crate::ranges::{Interval, TagSet};

/// Abstract value: NaN-box tag set plus an interval bounding the int32
/// payload (whenever the tag is int32).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AbsVal {
    /// Bound on the int32 payload; [`Interval::EMPTY`] when the value can
    /// never carry the int32 tag.
    pub range: Interval,
    /// Possible NaN-box tags.
    pub tags: TagSet,
}

impl AbsVal {
    /// Top: any tag, any payload.
    pub const TOP: AbsVal = AbsVal { range: Interval::FULL, tags: TagSet::ANY };
    /// Bottom: unreachable.
    pub const BOTTOM: AbsVal = AbsVal { range: Interval::EMPTY, tags: TagSet::NONE };
    /// The abstract `undefined`/`null` family.
    pub const UNDEF: AbsVal = AbsVal { range: Interval::EMPTY, tags: TagSet::OTHER };
    /// Any number: int32 (full payload range) or double.
    pub const NUMBER: AbsVal = AbsVal { range: Interval::FULL, tags: TagSet::NUMBER };
    /// Any boolean.
    pub const BOOL: AbsVal = AbsVal { range: Interval::EMPTY, tags: TagSet::BOOL };
    /// Any heap cell.
    pub const CELL: AbsVal = AbsVal { range: Interval::EMPTY, tags: TagSet::CELL };

    /// An int32 constrained to `range` (normalized against FULL).
    pub fn int(range: Interval) -> AbsVal {
        AbsVal { range: range.meet(Interval::FULL), tags: TagSet::INT }
    }

    /// The singleton int32 `x`.
    pub fn int_const(x: i32) -> AbsVal {
        AbsVal::int(Interval::constant(x as i64))
    }

    /// Least upper bound.
    pub fn join(self, other: AbsVal) -> AbsVal {
        AbsVal { range: self.range.join(other.range), tags: self.tags.join(other.tags) }
    }

    /// Widening: interval widening on the payload, join on tags (the tag
    /// lattice is finite, so joining alone terminates).
    pub fn widen(self, next: AbsVal) -> AbsVal {
        AbsVal { range: self.range.widen(next.range), tags: self.tags.join(next.tags) }
    }

    /// Pointwise lattice order.
    pub fn subset_of(self, other: AbsVal) -> bool {
        self.tags.subset_of(other.tags) && self.range.subset_of(other.range)
    }

    /// True for bottom (unreachable).
    pub fn is_bottom(self) -> bool {
        self.tags.is_none()
    }

    /// Whether the concrete value `v` is described by this abstraction —
    /// the dynamic-guard side of an argument precondition: a host call
    /// whose argument escapes the claimed precondition must trigger
    /// re-summarization before any summary-informed code runs again.
    pub fn admits(self, v: nomap_runtime::Value) -> bool {
        TagSet::of_value(v).subset_of(self.tags)
            && (!v.is_int32() || self.range.contains(v.as_int32() as i64))
    }

    /// Conservative abstraction of a [`RetTag`] (runtime-helper returns).
    pub fn of_ret_tag(t: RetTag) -> AbsVal {
        match t {
            RetTag::Any => AbsVal::TOP,
            RetTag::Int32 => AbsVal::int(Interval::FULL),
            RetTag::Double => AbsVal { range: Interval::EMPTY, tags: TagSet::DOUBLE },
            RetTag::Number => AbsVal::NUMBER,
            RetTag::Bool => AbsVal::BOOL,
            RetTag::Cell => AbsVal::CELL,
            RetTag::Other => AbsVal::UNDEF,
        }
    }
}

impl fmt::Display for AbsVal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.tags.meet(TagSet::INT).is_none() {
            write!(f, "{}", self.tags.describe())
        } else {
            write!(f, "{}{}", self.tags.describe(), self.range)
        }
    }
}

/// Summary of one function, callee-inclusive.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FuncSummary {
    /// What the function may return (join over all `Return` sites, under
    /// the parameter precondition below).
    pub ret: AbsVal,
    /// Argument preconditions: the join of every in-program call site's
    /// abstract arguments (TOP for root functions). One entry per formal
    /// parameter.
    pub params: Vec<AbsVal>,
    /// Guest-heap effect, callees included. `WritesBounded(n)` carries
    /// the callee-inclusive static write-footprint bound in cache lines.
    pub effect: HeapEffect,
    /// May overwrite pre-existing reachable guest memory (callee-
    /// inclusive); false for pure/read-only/allocation-only functions.
    pub clobbers: bool,
    /// Direct callees.
    pub callees: BTreeSet<FuncId>,
}

impl FuncSummary {
    /// The conservative top summary (used as a safe fallback).
    pub fn top(param_count: usize, callees: BTreeSet<FuncId>) -> FuncSummary {
        FuncSummary {
            ret: AbsVal::TOP,
            params: vec![AbsVal::TOP; param_count],
            effect: HeapEffect::WritesUnbounded,
            clobbers: true,
            callees,
        }
    }

    /// Callee-inclusive write-lines bound (`None` = unbounded).
    pub fn write_lines(&self) -> Option<u32> {
        self.effect.write_lines()
    }
}

/// What one abstract-interpretation pass over a function's bytecode
/// derives, given parameter preconditions and callee summaries.
#[derive(Debug, Clone)]
pub struct FuncFacts {
    /// Join of all returned values.
    pub ret: AbsVal,
    /// Callee-inclusive heap effect.
    pub effect: HeapEffect,
    /// Callee-inclusive clobber bit.
    pub clobbers: bool,
    /// Abstract arguments at every `Op::Call` site, in op order.
    pub call_args: Vec<(FuncId, Vec<AbsVal>)>,
}

/// Cap beyond which a bounded write footprint is widened to unbounded —
/// keeps the effect lattice finite and the bound meaningful (the HTM
/// write capacity is far below this).
pub const LINE_CAP: u64 = 4096;
/// Fixpoint sweep cap for the intra-function dataflow (widening makes
/// this generous; hitting it falls back to TOP states, which is sound).
const MAX_SWEEPS: usize = 64;

/// One application of the summary transfer function: abstractly interpret
/// `f`'s bytecode under `params` and `summaries` and report what it
/// returns and writes. This is the `F` whose post-fixpoint the SCC driver
/// computes and whose one-step inductiveness `ipa_tv` re-checks.
pub fn analyze_function(
    f: &Function,
    params: &[AbsVal],
    summaries: &BTreeMap<FuncId, FuncSummary>,
) -> FuncFacts {
    let n = f.code.len();
    let regs = f.register_count as usize;
    let mut entry = vec![AbsVal::UNDEF; regs];
    for (i, e) in entry.iter_mut().enumerate().take(f.param_count as usize) {
        *e = params.get(i).copied().unwrap_or(AbsVal::TOP);
    }
    // Per-op entry states; None = not yet reached.
    let mut states: Vec<Option<Vec<AbsVal>>> = vec![None; n];
    if n > 0 {
        states[0] = Some(entry);
    }
    let in_loop = loop_membership(f);

    // Iterate to a flow fixpoint, widening at loop headers after the
    // first couple of sweeps.
    for sweep in 0..MAX_SWEEPS {
        let mut changed = false;
        for i in 0..n {
            let Some(state) = states[i].clone() else { continue };
            let mut out = state;
            let op = &f.code[i];
            transfer(f, op, &mut out, summaries);
            for succ in successors(op, i, n) {
                let widen = sweep >= 2 && f.is_loop_header(succ as u32);
                changed |= flow_into(&mut states[succ], &out, widen);
            }
        }
        if !changed {
            break;
        }
        if sweep == MAX_SWEEPS - 1 {
            // Did not stabilize (pathological CFG): go to TOP everywhere.
            for s in states.iter_mut().flatten() {
                s.iter_mut().for_each(|v| *v = AbsVal::TOP);
            }
        }
    }

    // Harvest returns, call arguments, and effects from reachable ops.
    let mut ret = AbsVal::BOTTOM;
    let mut call_args = Vec::new();
    let mut reads = false;
    let mut clobbers = false;
    let mut unbounded = false;
    let mut lines = 0u64;
    let mut global_stores: BTreeSet<NameId> = BTreeSet::new();
    let may_cell = |v: AbsVal| !v.tags.meet(TagSet::CELL).is_none();

    for i in 0..n {
        let Some(state) = &states[i] else { continue };
        let reg = |r: nomap_bytecode::Reg| state[r.0 as usize];
        // A bounded per-invocation write repeated by a loop is unbounded.
        fn add_write(lines: &mut u64, unbounded: &mut bool, n_lines: u32, looped: bool) {
            if looped {
                *unbounded = true;
            } else {
                *lines += n_lines as u64;
            }
        }
        match &f.code[i] {
            Op::Return { src } => ret = ret.join(reg(*src)),
            Op::Call { dst: _, func, argv, argc, .. } => {
                let args: Vec<AbsVal> =
                    (0..*argc as usize).map(|k| state[argv.0 as usize + k]).collect();
                call_args.push((*func, args));
                if let Some(cs) = summaries.get(func) {
                    if cs.effect != HeapEffect::Pure {
                        reads = true;
                    }
                    clobbers |= cs.clobbers;
                    match cs.effect.write_lines() {
                        Some(0) => {}
                        Some(k) => add_write(&mut lines, &mut unbounded, k, in_loop[i]),
                        None => unbounded = true,
                    }
                } else {
                    reads = true;
                    clobbers = true;
                    unbounded = true;
                }
            }
            Op::CallIntrinsic { intr, argv, argc, .. } => {
                let sig = RuntimeFn::Intrinsic(*intr).signature();
                if sig.effect != HeapEffect::Pure {
                    // String intrinsics only read when fed cells; skip the
                    // read bit for provably non-cell args.
                    let any_cell =
                        (0..*argc as usize).any(|k| may_cell(state[argv.0 as usize + k]));
                    if any_cell || matches!(intr, Intrinsic::ArrayPush | Intrinsic::ArrayPop) {
                        reads = true;
                        clobbers |= sig.clobbers;
                        match sig.effect.write_lines() {
                            Some(0) => {}
                            Some(k) => add_write(&mut lines, &mut unbounded, k, in_loop[i]),
                            None => unbounded = true,
                        }
                    }
                }
            }
            Op::Binary { op, a, b, .. } if may_cell(reg(*a)) || may_cell(reg(*b)) => {
                reads = true;
                if *op == BinaryOp::Add {
                    // May concatenate: one fresh string cell.
                    add_write(&mut lines, &mut unbounded, 2, in_loop[i]);
                }
            }
            Op::Unary { op, a, .. } => {
                if *op == UnaryOp::Typeof {
                    // Returns one of six interned names; each is
                    // materialized at most once per runtime, so even a
                    // looped typeof writes at most 6 × 2 lines.
                    add_write(&mut lines, &mut unbounded, 12, false);
                } else if may_cell(reg(*a)) {
                    reads = true;
                }
            }
            Op::JumpIfTrue { cond, .. } | Op::JumpIfFalse { cond, .. } => {
                // Truthiness of a string reads its length word.
                reads |= may_cell(reg(*cond));
            }
            Op::LoadConst { cid, .. } => {
                if matches!(f.constants[cid.0 as usize], Const::Str(_)) {
                    // First use materializes the interned cell (cached
                    // afterwards, so loops do not multiply it).
                    add_write(&mut lines, &mut unbounded, 2, false);
                }
            }
            Op::GetProp { .. } | Op::GetIndex { .. } | Op::GetGlobal { .. } => reads = true,
            Op::PutProp { .. } | Op::PutIndex { .. } => {
                // Shape transitions and storage growth are statically
                // unbounded.
                reads = true;
                clobbers = true;
                unbounded = true;
            }
            Op::PutGlobal { name, .. } => {
                // One word at a fixed per-name address: loop-invariant.
                clobbers = true;
                global_stores.insert(*name);
            }
            Op::NewObject { .. } => add_write(&mut lines, &mut unbounded, 2, in_loop[i]),
            Op::NewArray { dst: _, len } => {
                let lr = reg(*len).range;
                let bounded = reg(*len).tags.subset_of(TagSet::INT)
                    && !lr.is_empty()
                    && lr.hi >= 0
                    && (lr.hi as u64) <= LINE_CAP;
                if bounded && !in_loop[i] {
                    let cap = (lr.hi as u64).max(4);
                    add_write(&mut lines, &mut unbounded, (2 + cap.div_ceil(8) + 1) as u32, false);
                } else {
                    unbounded = true;
                }
            }
            _ => {}
        }
    }
    lines += global_stores.len() as u64;

    let effect = if unbounded || lines > LINE_CAP {
        HeapEffect::WritesUnbounded
    } else if lines > 0 {
        HeapEffect::WritesBounded(lines as u32)
    } else if reads {
        HeapEffect::ReadsHeap
    } else {
        HeapEffect::Pure
    };
    FuncFacts { ret, effect, clobbers, call_args }
}

/// `in_loop[i]` is true when some back edge `j → t` brackets `i`
/// (`t ≤ i ≤ j`) — a sound over-approximation of loop membership for
/// reducible bytecode.
fn loop_membership(f: &Function) -> Vec<bool> {
    let mut in_loop = vec![false; f.code.len()];
    for (j, op) in f.code.iter().enumerate() {
        if let Some(t) = op.jump_target() {
            let t = t as usize;
            if t <= j {
                in_loop[t..=j].iter_mut().for_each(|b| *b = true);
            }
        }
    }
    in_loop
}

/// Successor op indices of `op` at index `i`.
fn successors(op: &Op, i: usize, n: usize) -> Vec<usize> {
    let mut out = Vec::with_capacity(2);
    match op {
        Op::Jump { target } => out.push(*target as usize),
        Op::JumpIfTrue { target, .. } | Op::JumpIfFalse { target, .. } => {
            out.push(*target as usize);
            if i + 1 < n {
                out.push(i + 1);
            }
        }
        Op::Return { .. } => {}
        _ => {
            if i + 1 < n {
                out.push(i + 1);
            }
        }
    }
    out
}

/// Joins (or widens) `out` into the entry state at a successor.
fn flow_into(slot: &mut Option<Vec<AbsVal>>, out: &[AbsVal], widen: bool) -> bool {
    match slot {
        None => {
            *slot = Some(out.to_vec());
            true
        }
        Some(cur) => {
            let mut changed = false;
            for (c, &o) in cur.iter_mut().zip(out) {
                let next = if widen { c.widen(c.join(o)) } else { c.join(o) };
                if next != *c {
                    *c = next;
                    changed = true;
                }
            }
            changed
        }
    }
}

/// The abstract transfer of one op over the register state.
fn transfer(
    f: &Function,
    op: &Op,
    state: &mut [AbsVal],
    summaries: &BTreeMap<FuncId, FuncSummary>,
) {
    let get = |state: &[AbsVal], r: nomap_bytecode::Reg| state[r.0 as usize];
    match op {
        Op::LoadConst { dst, cid } => {
            state[dst.0 as usize] = match &f.constants[cid.0 as usize] {
                // Mirror `Value::new_number` canonicalization: integral
                // in-range doubles (except -0.0) box as int32.
                Const::Num(v) => {
                    let as_int = *v as i32;
                    if as_int as f64 == *v && !(*v == 0.0 && v.is_sign_negative()) {
                        AbsVal::int_const(as_int)
                    } else {
                        AbsVal { range: Interval::EMPTY, tags: TagSet::DOUBLE }
                    }
                }
                Const::Str(_) => AbsVal::CELL,
            };
        }
        Op::LoadInt { dst, value } => state[dst.0 as usize] = AbsVal::int_const(*value),
        Op::LoadBool { dst, .. } => state[dst.0 as usize] = AbsVal::BOOL,
        Op::LoadUndefined { dst } | Op::LoadNull { dst } => state[dst.0 as usize] = AbsVal::UNDEF,
        Op::Mov { dst, src } => state[dst.0 as usize] = get(state, *src),
        Op::Binary { op, dst, a, b, .. } => {
            let (va, vb) = (get(state, *a), get(state, *b));
            state[dst.0 as usize] = binary_transfer(*op, va, vb);
        }
        Op::Unary { op, dst, a, .. } => {
            let va = get(state, *a);
            state[dst.0 as usize] = unary_transfer(*op, va);
        }
        Op::NewObject { dst } => state[dst.0 as usize] = AbsVal::CELL,
        Op::NewArray { dst, .. } => state[dst.0 as usize] = AbsVal::CELL,
        Op::GetProp { dst, .. } | Op::GetIndex { dst, .. } | Op::GetGlobal { dst, .. } => {
            state[dst.0 as usize] = AbsVal::TOP;
        }
        Op::Call { dst, func, .. } => {
            state[dst.0 as usize] = summaries.get(func).map_or(AbsVal::TOP, |s| s.ret);
        }
        Op::CallIntrinsic { dst, intr, .. } => {
            state[dst.0 as usize] = AbsVal::of_ret_tag(RuntimeFn::Intrinsic(*intr).signature().ret);
        }
        Op::PutProp { .. }
        | Op::PutIndex { .. }
        | Op::PutGlobal { .. }
        | Op::Jump { .. }
        | Op::JumpIfTrue { .. }
        | Op::JumpIfFalse { .. }
        | Op::Return { .. } => {}
    }
}

/// Abstract semantics of `Runtime::generic_*` for [`Op::Binary`].
fn binary_transfer(op: BinaryOp, a: AbsVal, b: AbsVal) -> AbsVal {
    let both_int = a.tags.subset_of(TagSet::INT) && b.tags.subset_of(TagSet::INT);
    let both_num = a.tags.subset_of(TagSet::NUMBER) && b.tags.subset_of(TagSet::NUMBER);
    let may_cell = !a.tags.meet(TagSet::CELL).is_none() || !b.tags.meet(TagSet::CELL).is_none();
    if op.is_comparison() {
        return AbsVal::BOOL;
    }
    if op.is_int_producing() {
        // BitAnd/BitOr/BitXor/Shl/Shr always produce int32.
        return AbsVal::int(Interval::FULL);
    }
    match op {
        BinaryOp::Add => {
            if both_int {
                let r = a.range.add(b.range);
                if r.subset_of(Interval::FULL) {
                    AbsVal::int(r)
                } else {
                    // Overflow promotes to double; int32 results stay in r.
                    AbsVal { range: r.meet(Interval::FULL), tags: TagSet::NUMBER }
                }
            } else if both_num {
                AbsVal::NUMBER
            } else if may_cell {
                // Numeric, or string concatenation producing a cell.
                AbsVal { range: Interval::FULL, tags: TagSet::NUMBER.join(TagSet::CELL) }
            } else {
                AbsVal::NUMBER
            }
        }
        BinaryOp::Sub | BinaryOp::Mul => {
            if both_int {
                let r =
                    if op == BinaryOp::Sub { a.range.sub(b.range) } else { a.range.mul(b.range) };
                if r.subset_of(Interval::FULL) {
                    AbsVal::int(r)
                } else {
                    AbsVal { range: r.meet(Interval::FULL), tags: TagSet::NUMBER }
                }
            } else {
                AbsVal::NUMBER
            }
        }
        BinaryOp::UShr => {
            // u32 result boxed via new_number: int32 when ≤ i32::MAX.
            AbsVal { range: Interval::new(0, i32::MAX as i64), tags: TagSet::NUMBER }
        }
        // Div/Mod and anything else numeric-coercing.
        _ => AbsVal::NUMBER,
    }
}

/// Abstract semantics of `Runtime::generic_unary` (plus friends).
fn unary_transfer(op: UnaryOp, a: AbsVal) -> AbsVal {
    match op {
        UnaryOp::Neg => {
            if a.tags.subset_of(TagSet::INT) {
                let r = a.range.neg();
                // -0 and -i32::MIN box as doubles.
                if r.subset_of(Interval::FULL) && !a.range.contains(0) {
                    return AbsVal::int(r);
                }
                return AbsVal { range: r.meet(Interval::FULL), tags: TagSet::NUMBER };
            }
            AbsVal::NUMBER
        }
        UnaryOp::ToNumber => {
            if a.tags.subset_of(TagSet::INT) {
                a
            } else {
                AbsVal::NUMBER
            }
        }
        UnaryOp::Not => AbsVal::BOOL,
        UnaryOp::BitNot => AbsVal::int(Interval::FULL),
        UnaryOp::Typeof => AbsVal::CELL,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn absval_lattice_basics() {
        assert!(AbsVal::BOTTOM.subset_of(AbsVal::UNDEF));
        assert!(AbsVal::int_const(7).subset_of(AbsVal::NUMBER));
        assert!(!AbsVal::NUMBER.subset_of(AbsVal::int(Interval::FULL)));
        let j = AbsVal::int_const(3).join(AbsVal::BOOL);
        assert!(AbsVal::int_const(3).subset_of(j) && AbsVal::BOOL.subset_of(j));
        assert!(j.subset_of(AbsVal::TOP));
        assert_eq!(AbsVal::of_ret_tag(RetTag::Bool), AbsVal::BOOL);
        assert_eq!(AbsVal::of_ret_tag(RetTag::Any), AbsVal::TOP);
    }

    #[test]
    fn binary_transfer_tracks_int_ranges() {
        let a = AbsVal::int(Interval::new(0, 10));
        let b = AbsVal::int(Interval::new(1, 2));
        let sum = binary_transfer(BinaryOp::Add, a, b);
        assert_eq!(sum.tags, TagSet::INT);
        assert_eq!(sum.range, Interval::new(1, 12));
        // Overflowing add widens to number but keeps the int32 slice.
        let big = AbsVal::int(Interval::new(i32::MAX as i64 - 1, i32::MAX as i64));
        let over = binary_transfer(BinaryOp::Add, big, b);
        assert_eq!(over.tags, TagSet::NUMBER);
        assert!(over.range.subset_of(Interval::FULL));
        // Comparisons and bitwise ops.
        assert_eq!(binary_transfer(BinaryOp::Lt, a, b), AbsVal::BOOL);
        assert_eq!(binary_transfer(BinaryOp::BitOr, AbsVal::TOP, AbsVal::TOP).tags, TagSet::INT);
        // String-ish add may produce a cell.
        let maybe_str = binary_transfer(BinaryOp::Add, AbsVal::CELL, a);
        assert!(!maybe_str.tags.meet(TagSet::CELL).is_none());
    }

    #[test]
    fn unary_neg_needs_nonzero_no_overflow() {
        let pos = AbsVal::int(Interval::new(1, 5));
        assert_eq!(unary_transfer(UnaryOp::Neg, pos).tags, TagSet::INT);
        let with_zero = AbsVal::int(Interval::new(0, 5));
        assert_eq!(unary_transfer(UnaryOp::Neg, with_zero).tags, TagSet::NUMBER);
        let min = AbsVal::int(Interval::new(i32::MIN as i64, -1));
        assert_eq!(unary_transfer(UnaryOp::Neg, min).tags, TagSet::NUMBER);
    }
}
