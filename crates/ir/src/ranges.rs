//! Abstract domains for the range/type analysis (`absint`): an interval
//! lattice over int32 values and a type-tag lattice over boxed values.
//!
//! Intervals are stored with `i64` endpoints so transfer functions can
//! represent out-of-`i32` results exactly (that is precisely what proves
//! an overflow check can or cannot fire); every value a program actually
//! holds in an `I32` register is inside [`Interval::FULL`].

use std::fmt;

use nomap_runtime::Value;

/// A closed integer interval `[lo, hi]`; empty when `lo > hi`.
///
/// The lattice is the subset order on the represented sets: bottom is
/// [`Interval::EMPTY`], top (for int32-typed values) is
/// [`Interval::FULL`]. Join is the convex hull, meet the intersection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interval {
    /// Inclusive lower bound.
    pub lo: i64,
    /// Inclusive upper bound.
    pub hi: i64,
}

impl Interval {
    /// Bottom: the empty interval (canonical representation).
    pub const EMPTY: Interval = Interval { lo: i64::MAX, hi: i64::MIN };
    /// Top for int32 values: every representable int32.
    pub const FULL: Interval = Interval { lo: i32::MIN as i64, hi: i32::MAX as i64 };

    /// `[lo, hi]`, normalized to [`Interval::EMPTY`] when `lo > hi`.
    pub fn new(lo: i64, hi: i64) -> Interval {
        if lo > hi {
            Interval::EMPTY
        } else {
            Interval { lo, hi }
        }
    }

    /// The singleton `[x, x]`.
    pub fn constant(x: i64) -> Interval {
        Interval { lo: x, hi: x }
    }

    /// True for the empty interval.
    pub fn is_empty(self) -> bool {
        self.lo > self.hi
    }

    /// Does the interval contain `x`?
    pub fn contains(self, x: i64) -> bool {
        self.lo <= x && x <= self.hi
    }

    /// Is every element of `self` inside `other`?
    pub fn subset_of(self, other: Interval) -> bool {
        self.is_empty() || (other.lo <= self.lo && self.hi <= other.hi)
    }

    /// Least upper bound: convex hull of the union.
    pub fn join(self, other: Interval) -> Interval {
        if self.is_empty() {
            other
        } else if other.is_empty() {
            self
        } else {
            Interval { lo: self.lo.min(other.lo), hi: self.hi.max(other.hi) }
        }
    }

    /// Greatest lower bound: intersection.
    pub fn meet(self, other: Interval) -> Interval {
        Interval::new(self.lo.max(other.lo), self.hi.min(other.hi))
    }

    /// Standard interval widening against [`Interval::FULL`]: a bound that
    /// grew between `self` (previous iterate) and `next` jumps straight to
    /// the int32 extreme, so ascending chains stabilize in at most two
    /// steps per bound.
    pub fn widen(self, next: Interval) -> Interval {
        if self.is_empty() {
            return next;
        }
        if next.is_empty() {
            return self;
        }
        Interval {
            lo: if next.lo < self.lo { Interval::FULL.lo } else { self.lo },
            hi: if next.hi > self.hi { Interval::FULL.hi } else { self.hi },
        }
    }

    /// Narrowing: recover precision after widening by accepting the
    /// recomputed bound wherever the widened one sits at an int32 extreme.
    pub fn narrow(self, next: Interval) -> Interval {
        if self.is_empty() || next.is_empty() {
            return self;
        }
        Interval::new(
            if self.lo == Interval::FULL.lo { next.lo } else { self.lo },
            if self.hi == Interval::FULL.hi { next.hi } else { self.hi },
        )
    }

    // ---- transfer functions (exact over i64 except at the i64 extremes,
    // ---- where endpoints saturate; callers clamp results of *checked*
    // ---- ops back to FULL once the check is known to pass) ----
    // These are abstract transfers over possibly-empty lattice elements,
    // not ring operations, so they stay inherent methods rather than
    // `std::ops` impls. Saturation is sound: every concrete value the
    // analysis tracks is an i64, so a saturated endpoint still brackets it.

    /// `self + other`; endpoints saturate at the i64 extremes.
    #[allow(clippy::should_implement_trait)]
    pub fn add(self, other: Interval) -> Interval {
        if self.is_empty() || other.is_empty() {
            return Interval::EMPTY;
        }
        Interval { lo: self.lo.saturating_add(other.lo), hi: self.hi.saturating_add(other.hi) }
    }

    /// `self - other`; endpoints saturate at the i64 extremes.
    #[allow(clippy::should_implement_trait)]
    pub fn sub(self, other: Interval) -> Interval {
        if self.is_empty() || other.is_empty() {
            return Interval::EMPTY;
        }
        Interval { lo: self.lo.saturating_sub(other.hi), hi: self.hi.saturating_sub(other.lo) }
    }

    /// `self * other` (corner products); endpoints saturate at the i64
    /// extremes.
    #[allow(clippy::should_implement_trait)]
    pub fn mul(self, other: Interval) -> Interval {
        if self.is_empty() || other.is_empty() {
            return Interval::EMPTY;
        }
        let corners = [
            self.lo.saturating_mul(other.lo),
            self.lo.saturating_mul(other.hi),
            self.hi.saturating_mul(other.lo),
            self.hi.saturating_mul(other.hi),
        ];
        Interval { lo: *corners.iter().min().unwrap(), hi: *corners.iter().max().unwrap() }
    }

    /// `-self`; endpoints saturate at the i64 extremes (`-i64::MIN`
    /// saturates to `i64::MAX`).
    #[allow(clippy::should_implement_trait)]
    pub fn neg(self) -> Interval {
        if self.is_empty() {
            return Interval::EMPTY;
        }
        Interval { lo: self.hi.saturating_neg(), hi: self.lo.saturating_neg() }
    }

    /// The unsigned view of a sign-extended int32 interval, when it does
    /// not wrap: both-nonnegative and both-negative intervals map to an
    /// ordered `u64` range; mixed-sign intervals wrap around `2^63` and
    /// yield `None` (callers treat that as unknown).
    pub fn as_unsigned(self) -> Option<(u64, u64)> {
        if self.is_empty() {
            return None;
        }
        if self.lo >= 0 || self.hi < 0 {
            Some((self.lo as u64, self.hi as u64))
        } else {
            None
        }
    }
}

impl fmt::Display for Interval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_empty() {
            write!(f, "[]")
        } else {
            write!(f, "[{},{}]", self.lo, self.hi)
        }
    }
}

/// A set of NaN-box tags a boxed value may carry. Bottom is the empty
/// set, top is [`TagSet::ANY`]; join/meet are set union/intersection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TagSet(pub u8);

impl TagSet {
    /// No tag (bottom; unreachable value).
    pub const NONE: TagSet = TagSet(0);
    /// Boxed int32.
    pub const INT: TagSet = TagSet(1 << 0);
    /// Boxed double.
    pub const DOUBLE: TagSet = TagSet(1 << 1);
    /// Boxed boolean.
    pub const BOOL: TagSet = TagSet(1 << 2);
    /// Heap cell (object, array, string).
    pub const CELL: TagSet = TagSet(1 << 3);
    /// Everything else (undefined, null, hole).
    pub const OTHER: TagSet = TagSet(1 << 4);
    /// Top: any tag.
    pub const ANY: TagSet = TagSet(0b1_1111);
    /// Any number (int or double).
    pub const NUMBER: TagSet = TagSet(TagSet::INT.0 | TagSet::DOUBLE.0);

    /// The tag of one concrete boxed value.
    pub fn of_value(v: Value) -> TagSet {
        if v.is_int32() {
            TagSet::INT
        } else if v.is_double() {
            TagSet::DOUBLE
        } else if v.is_bool() {
            TagSet::BOOL
        } else if v.is_cell() {
            TagSet::CELL
        } else {
            TagSet::OTHER
        }
    }

    /// Set union.
    pub fn join(self, other: TagSet) -> TagSet {
        TagSet(self.0 | other.0)
    }

    /// Set intersection.
    pub fn meet(self, other: TagSet) -> TagSet {
        TagSet(self.0 & other.0)
    }

    /// Subset test.
    pub fn subset_of(self, other: TagSet) -> bool {
        self.0 & !other.0 == 0
    }

    /// True for the empty set.
    pub fn is_none(self) -> bool {
        self.0 == 0
    }

    /// Short human-readable form for witnesses (`int|double`, `any`...).
    pub fn describe(self) -> String {
        if self == TagSet::ANY {
            return "any".to_owned();
        }
        if self.is_none() {
            return "none".to_owned();
        }
        let mut parts = Vec::new();
        for (bit, name) in [
            (TagSet::INT, "int"),
            (TagSet::DOUBLE, "double"),
            (TagSet::BOOL, "bool"),
            (TagSet::CELL, "cell"),
            (TagSet::OTHER, "other"),
        ] {
            if !self.meet(bit).is_none() {
                parts.push(name);
            }
        }
        parts.join("|")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interval_basics() {
        let a = Interval::new(0, 9);
        let b = Interval::new(5, 20);
        assert_eq!(a.join(b), Interval::new(0, 20));
        assert_eq!(a.meet(b), Interval::new(5, 9));
        assert!(Interval::new(3, 2).is_empty());
        assert!(a.subset_of(Interval::FULL));
        assert!(Interval::EMPTY.subset_of(a));
        assert!(!Interval::FULL.subset_of(a));
    }

    #[test]
    fn widening_jumps_to_extremes() {
        let a = Interval::new(0, 10);
        let grown = Interval::new(0, 11);
        let w = a.widen(grown);
        assert_eq!(w, Interval::new(0, i32::MAX as i64));
        // Stable once at the extreme.
        assert_eq!(w.widen(Interval::new(0, 1 << 20)), w);
        // Narrowing recovers a recomputed bound only at the extreme.
        assert_eq!(w.narrow(Interval::new(0, 11)), Interval::new(0, 11));
        assert_eq!(Interval::new(3, 7).narrow(Interval::new(4, 6)), Interval::new(3, 7));
    }

    #[test]
    fn transfer_functions_cover_concrete_ops() {
        let a = Interval::new(-3, 4);
        let b = Interval::new(2, 5);
        for x in -3..=4i64 {
            for y in 2..=5i64 {
                assert!(a.add(b).contains(x + y));
                assert!(a.sub(b).contains(x - y));
                assert!(a.mul(b).contains(x * y));
                assert!(a.neg().contains(-x));
            }
        }
    }

    #[test]
    fn unsigned_view_handles_sign() {
        assert_eq!(Interval::new(0, 7).as_unsigned(), Some((0, 7)));
        let neg = Interval::new(-5, -3).as_unsigned().unwrap();
        assert!(neg.0 <= neg.1 && neg.0 > u32::MAX as u64);
        assert_eq!(Interval::new(-1, 1).as_unsigned(), None);
    }

    #[test]
    fn tag_sets() {
        assert!(TagSet::INT.subset_of(TagSet::NUMBER));
        assert!(!TagSet::NUMBER.subset_of(TagSet::INT));
        assert!(TagSet::INT.meet(TagSet::DOUBLE).is_none());
        assert_eq!(TagSet::INT.join(TagSet::DOUBLE), TagSet::NUMBER);
        assert_eq!(TagSet::NUMBER.describe(), "int|double");
        assert_eq!(TagSet::of_value(Value::new_int32(3)), TagSet::INT);
        assert_eq!(TagSet::of_value(Value::TRUE), TagSet::BOOL);
    }
}
