//! The IR function: an arena of instructions organized into basic blocks.

use std::fmt;

use nomap_bytecode::FuncId;

use crate::node::{Inst, InstKind};

/// Identifies an instruction — and, since instructions define at most one
/// value, also that value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ValueId(pub u32);

impl fmt::Display for ValueId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "%{}", self.0)
    }
}

/// A basic block.
#[derive(Debug, Clone, Default)]
pub struct Block {
    /// Instruction ids, in order; the last one is the terminator.
    pub insts: Vec<ValueId>,
    /// Predecessor blocks (kept in sync with phi input order).
    pub preds: Vec<BlockId>,
}

/// Identifies a basic block.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BlockId(pub u32);

impl fmt::Display for BlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b{}", self.0)
    }
}

/// Non-allocating iterator over a block's successors (at most two). Holds
/// the targets by value, so the function can be mutated while iterating.
#[derive(Debug, Clone, Copy)]
pub struct Succs {
    targets: [BlockId; 2],
    len: u8,
    next: u8,
}

impl Succs {
    fn empty() -> Self {
        Succs { targets: [BlockId(0); 2], len: 0, next: 0 }
    }

    fn one(t: BlockId) -> Self {
        Succs { targets: [t, BlockId(0)], len: 1, next: 0 }
    }

    fn two(a: BlockId, b: BlockId) -> Self {
        Succs { targets: [a, b], len: 2, next: 0 }
    }
}

impl Iterator for Succs {
    type Item = BlockId;

    fn next(&mut self) -> Option<BlockId> {
        if self.next < self.len {
            let t = self.targets[self.next as usize];
            self.next += 1;
            Some(t)
        } else {
            None
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = (self.len - self.next) as usize;
        (n, Some(n))
    }
}

impl ExactSizeIterator for Succs {}

/// An IR function under construction or optimization.
#[derive(Debug, Clone)]
pub struct IrFunc {
    /// Source bytecode function.
    pub func: FuncId,
    /// Source name (diagnostics).
    pub name: String,
    /// Parameter count.
    pub param_count: u16,
    /// Bytecode register count (OSR frame width).
    pub bytecode_regs: u16,
    /// Instruction arena.
    pub insts: Vec<Inst>,
    /// Basic blocks.
    pub blocks: Vec<Block>,
    /// Entry block.
    pub entry: BlockId,
}

impl IrFunc {
    /// Creates an empty function with one (entry) block.
    pub fn new(
        func: FuncId,
        name: impl Into<String>,
        param_count: u16,
        bytecode_regs: u16,
    ) -> Self {
        IrFunc {
            func,
            name: name.into(),
            param_count,
            bytecode_regs,
            insts: Vec::new(),
            blocks: vec![Block::default()],
            entry: BlockId(0),
        }
    }

    /// Adds a fresh empty block.
    pub fn new_block(&mut self) -> BlockId {
        self.blocks.push(Block::default());
        BlockId(self.blocks.len() as u32 - 1)
    }

    /// Adds an instruction to the arena without placing it in a block.
    pub fn add_inst(&mut self, inst: Inst) -> ValueId {
        self.insts.push(inst);
        ValueId(self.insts.len() as u32 - 1)
    }

    /// Appends an instruction to `block`.
    pub fn append(&mut self, block: BlockId, inst: Inst) -> ValueId {
        let v = self.add_inst(inst);
        self.blocks[block.0 as usize].insts.push(v);
        v
    }

    /// Inserts an instruction at `pos` within `block`.
    pub fn insert_at(&mut self, block: BlockId, pos: usize, inst: Inst) -> ValueId {
        let v = self.add_inst(inst);
        self.blocks[block.0 as usize].insts.insert(pos, v);
        v
    }

    /// Inserts an instruction just before `block`'s terminator.
    pub fn insert_before_terminator(&mut self, block: BlockId, inst: Inst) -> ValueId {
        let len = self.blocks[block.0 as usize].insts.len();
        let pos = len.saturating_sub(1);
        self.insert_at(block, pos, inst)
    }

    /// Shared instruction access.
    pub fn inst(&self, v: ValueId) -> &Inst {
        &self.insts[v.0 as usize]
    }

    /// Mutable instruction access.
    pub fn inst_mut(&mut self, v: ValueId) -> &mut Inst {
        &mut self.insts[v.0 as usize]
    }

    /// The block's terminator instruction id.
    ///
    /// # Panics
    ///
    /// Panics if the block is empty.
    pub fn terminator(&self, b: BlockId) -> ValueId {
        *self.blocks[b.0 as usize].insts.last().expect("block has a terminator")
    }

    /// Successor blocks of `b` as a non-allocating iterator. Prefer this
    /// over [`IrFunc::succs`] in hot loops (RPO, predecessor recomputation,
    /// the verifier).
    pub fn succ_iter(&self, b: BlockId) -> Succs {
        let block = &self.blocks[b.0 as usize];
        let Some(&term) = block.insts.last() else { return Succs::empty() };
        match &self.inst(term).kind {
            InstKind::Jump { target } => Succs::one(*target),
            InstKind::Branch { then_b, else_b, .. } => Succs::two(*then_b, *else_b),
            _ => Succs::empty(),
        }
    }

    /// Successor blocks of `b`, from its terminator (allocating
    /// convenience; see [`IrFunc::succ_iter`]).
    pub fn succs(&self, b: BlockId) -> Vec<BlockId> {
        self.succ_iter(b).collect()
    }

    /// Recomputes every block's predecessor list. Phi inputs must be kept
    /// aligned by the caller if predecessor *order* changes.
    pub fn compute_preds(&mut self) {
        for b in &mut self.blocks {
            b.preds.clear();
        }
        for b in 0..self.blocks.len() as u32 {
            for s in self.succ_iter(BlockId(b)) {
                self.blocks[s.0 as usize].preds.push(BlockId(b));
            }
        }
    }

    /// Reverse post-order over reachable blocks.
    pub fn rpo(&self) -> Vec<BlockId> {
        let mut visited = vec![false; self.blocks.len()];
        let mut post = Vec::new();
        let mut stack = vec![(self.entry, 0usize)];
        visited[self.entry.0 as usize] = true;
        while let Some((b, i)) = stack.pop() {
            let mut succs = self.succ_iter(b);
            if let Some(s) = succs.nth(i) {
                stack.push((b, i + 1));
                if !visited[s.0 as usize] {
                    visited[s.0 as usize] = true;
                    stack.push((s, 0));
                }
            } else {
                post.push(b);
            }
        }
        post.reverse();
        post
    }

    /// Replaces every use of `from` with `to` (including OSR states).
    pub fn replace_all_uses(&mut self, from: ValueId, to: ValueId) {
        for inst in &mut self.insts {
            inst.map_operands(|v| if v == from { to } else { v });
        }
    }

    /// Redirects the terminator of `from` so edges to `old` point at `new`.
    pub fn redirect_edge(&mut self, from: BlockId, old: BlockId, new: BlockId) {
        let t = self.terminator(from);
        match &mut self.inst_mut(t).kind {
            InstKind::Jump { target } if *target == old => *target = new,
            InstKind::Jump { .. } => {}
            InstKind::Branch { then_b, else_b, .. } => {
                if *then_b == old {
                    *then_b = new;
                }
                if *else_b == old {
                    *else_b = new;
                }
            }
            _ => {}
        }
    }

    /// Splits the edge `from → to`, inserting a fresh block that jumps to
    /// `to`. Fixes preds and `to`'s phi input bookkeeping (the new block
    /// replaces `from` in `to.preds`).
    ///
    /// Parallel edges (a `Branch` whose arms both target `to`) are both
    /// funnelled through the single new block: `mid` records one pred entry
    /// per redirected edge, while `to` keeps exactly one pred entry for the
    /// one `mid → to` edge — surplus entries and their phi inputs are
    /// dropped (the parallel edges came from the same block, so the surplus
    /// inputs are redundant).
    pub fn split_edge(&mut self, from: BlockId, to: BlockId) -> BlockId {
        let parallel = self.succ_iter(from).filter(|&s| s == to).count();
        let mid = self.new_block();
        let jump = self.add_inst(Inst::new(InstKind::Jump { target: to }));
        self.blocks[mid.0 as usize].insts.push(jump);
        self.redirect_edge(from, to, mid);
        self.blocks[mid.0 as usize].preds = vec![from; parallel];
        let positions: Vec<usize> = self.blocks[to.0 as usize]
            .preds
            .iter()
            .enumerate()
            .filter(|(_, &p)| p == from)
            .map(|(i, _)| i)
            .collect();
        if let Some(&first) = positions.first() {
            self.blocks[to.0 as usize].preds[first] = mid;
            // Remove surplus entries (and matching phi inputs) back to
            // front so earlier indices stay valid.
            for &pos in positions.iter().skip(1).rev() {
                self.blocks[to.0 as usize].preds.remove(pos);
                let insts = self.blocks[to.0 as usize].insts.clone();
                for v in insts {
                    if let InstKind::Phi { inputs, .. } = &mut self.inst_mut(v).kind {
                        if pos < inputs.len() {
                            inputs.remove(pos);
                        }
                    }
                }
            }
        }
        mid
    }

    /// Number of instructions that are not `Nop` (reporting).
    pub fn live_inst_count(&self) -> usize {
        self.blocks
            .iter()
            .flat_map(|b| &b.insts)
            .filter(|v| !matches!(self.insts[v.0 as usize].kind, InstKind::Nop))
            .count()
    }

    /// Checks structural invariants; returns a description of the first
    /// violation. This is the cheap in-pass sanity check; the
    /// `nomap-verify` crate layers full dominance-based SSA verification on
    /// top of it.
    ///
    /// # Errors
    ///
    /// Returns a human-readable violation description.
    pub fn verify(&self) -> Result<(), String> {
        if !self.blocks[self.entry.0 as usize].preds.is_empty() {
            return Err(format!(
                "entry {} has {} preds (must have none)",
                self.entry,
                self.blocks[self.entry.0 as usize].preds.len()
            ));
        }
        for (bi, b) in self.blocks.iter().enumerate() {
            let bid = BlockId(bi as u32);
            if b.insts.is_empty() {
                // Unreachable placeholder blocks are tolerated.
                continue;
            }
            let term = self.inst(*b.insts.last().unwrap());
            if !term.is_terminator() {
                return Err(format!("{bid} does not end in a terminator"));
            }
            for (i, &v) in b.insts.iter().enumerate() {
                let inst = self.inst(v);
                if inst.is_terminator() && i + 1 != b.insts.len() {
                    return Err(format!("terminator {v} in the middle of {bid}"));
                }
                if let InstKind::Phi { inputs, .. } = &inst.kind {
                    if inputs.len() != b.preds.len() {
                        return Err(format!(
                            "{v}: phi has {} inputs but {bid} has {} preds",
                            inputs.len(),
                            b.preds.len()
                        ));
                    }
                    if b.insts[..i].iter().any(|&p| {
                        !matches!(self.inst(p).kind, InstKind::Phi { .. } | InstKind::Nop)
                    }) {
                        return Err(format!("{v}: phi after non-phi in {bid}"));
                    }
                }
                for op in inst.operands() {
                    if op.0 as usize >= self.insts.len() {
                        return Err(format!("{v}: operand {op} out of range"));
                    }
                    if matches!(self.inst(op).kind, InstKind::Nop) {
                        return Err(format!("{v}: operand {op} references a dead (Nop) value"));
                    }
                }
            }
            for s in self.succ_iter(bid) {
                if s.0 as usize >= self.blocks.len() {
                    return Err(format!("{bid}: successor {s} out of range"));
                }
                let edges = self.succ_iter(bid).filter(|&x| x == s).count();
                let entries = self.blocks[s.0 as usize].preds.iter().filter(|&&p| p == bid).count();
                if edges != entries {
                    return Err(format!(
                        "{bid} → {s}: {edges} edge(s) but {entries} pred entr(y/ies)"
                    ));
                }
            }
            for &p in &b.preds {
                if p.0 as usize >= self.blocks.len() {
                    return Err(format!("{bid}: pred {p} out of range"));
                }
                if !self.succ_iter(p).any(|s| s == bid) {
                    return Err(format!("{bid} lists pred {p} but {p} has no edge to it"));
                }
            }
        }
        Ok(())
    }
}

impl fmt::Display for IrFunc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "ir function {} ({} params)", self.name, self.param_count)?;
        for (bi, b) in self.blocks.iter().enumerate() {
            if b.insts.is_empty() {
                continue;
            }
            let preds: Vec<String> = b.preds.iter().map(|p| p.to_string()).collect();
            writeln!(f, "b{bi}: ; preds: {}", preds.join(", "))?;
            for &v in &b.insts {
                let inst = self.inst(v);
                if matches!(inst.kind, InstKind::Nop) {
                    continue;
                }
                writeln!(f, "  {v} = {:?}", inst.kind)?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::{CheckMode, Ty};
    use nomap_runtime::Value;

    fn diamond() -> IrFunc {
        // entry -> (then|else) -> join
        let mut f = IrFunc::new(FuncId(0), "t", 0, 0);
        let then_b = f.new_block();
        let else_b = f.new_block();
        let join = f.new_block();
        let c = f.append(f.entry, Inst::new(InstKind::ConstI32(1)));
        let cb = f.append(
            f.entry,
            Inst::new(InstKind::ICmp { cond: nomap_machine::Cond::Eq, a: c, b: c }),
        );
        f.append(f.entry, Inst::new(InstKind::Branch { cond: cb, then_b, else_b }));
        let v1 = f.append(then_b, Inst::new(InstKind::ConstI32(1)));
        f.append(then_b, Inst::new(InstKind::Jump { target: join }));
        let v2 = f.append(else_b, Inst::new(InstKind::ConstI32(2)));
        f.append(else_b, Inst::new(InstKind::Jump { target: join }));
        let phi = f.append(join, Inst::new(InstKind::Phi { inputs: vec![v1, v2], ty: Ty::I32 }));
        let boxed = f.append(join, Inst::new(InstKind::BoxI32(phi)));
        f.append(join, Inst::new(InstKind::Return { v: boxed }));
        f.compute_preds();
        f
    }

    #[test]
    fn diamond_verifies() {
        let f = diamond();
        assert_eq!(f.verify(), Ok(()));
        assert_eq!(f.rpo()[0], f.entry);
        assert_eq!(f.rpo().len(), 4);
    }

    #[test]
    fn succs_and_preds_agree() {
        let f = diamond();
        assert_eq!(f.succs(f.entry).len(), 2);
        let join = BlockId(3);
        assert_eq!(f.blocks[join.0 as usize].preds.len(), 2);
    }

    #[test]
    fn replace_all_uses_rewrites_phis() {
        let mut f = diamond();
        let new_c = f.insert_at(f.entry, 0, Inst::new(InstKind::ConstI32(42)));
        // Replace v1 (ConstI32(1) in then-block) everywhere.
        let phi_id = f.blocks[3].insts[0];
        let old = match &f.inst(phi_id).kind {
            InstKind::Phi { inputs, .. } => inputs[0],
            _ => unreachable!(),
        };
        f.replace_all_uses(old, new_c);
        match &f.inst(phi_id).kind {
            InstKind::Phi { inputs, .. } => assert_eq!(inputs[0], new_c),
            _ => unreachable!(),
        }
    }

    #[test]
    fn split_edge_fixes_preds() {
        let mut f = diamond();
        let join = BlockId(3);
        let then_b = BlockId(1);
        let mid = f.split_edge(then_b, join);
        assert_eq!(f.succs(then_b), vec![mid]);
        assert_eq!(f.succs(mid), vec![join]);
        assert!(f.blocks[join.0 as usize].preds.contains(&mid));
        assert!(!f.blocks[join.0 as usize].preds.contains(&then_b));
        assert_eq!(f.verify(), Ok(()));
    }

    #[test]
    fn succ_iter_matches_succs() {
        let f = diamond();
        for b in 0..f.blocks.len() {
            let bid = BlockId(b as u32);
            assert_eq!(f.succ_iter(bid).collect::<Vec<_>>(), f.succs(bid));
            assert_eq!(f.succ_iter(bid).len(), f.succs(bid).len());
        }
    }

    /// A `Branch` whose arms both target the same block contributes two
    /// parallel edges; splitting that edge must collapse them into a single
    /// `mid → to` edge with matching phi inputs.
    #[test]
    fn split_parallel_edge_collapses_phi_inputs() {
        let mut f = IrFunc::new(FuncId(0), "par", 0, 0);
        let join = f.new_block();
        let c = f.append(f.entry, Inst::new(InstKind::ConstI32(1)));
        let cb = f.append(
            f.entry,
            Inst::new(InstKind::ICmp { cond: nomap_machine::Cond::Eq, a: c, b: c }),
        );
        f.append(f.entry, Inst::new(InstKind::Branch { cond: cb, then_b: join, else_b: join }));
        let phi = f.append(join, Inst::new(InstKind::Phi { inputs: vec![c, c], ty: Ty::I32 }));
        let boxed = f.append(join, Inst::new(InstKind::BoxI32(phi)));
        f.append(join, Inst::new(InstKind::Return { v: boxed }));
        f.compute_preds();
        assert_eq!(f.verify(), Ok(()));

        let mid = f.split_edge(f.entry, join);
        // Both branch arms now target mid; mid has one jump into join.
        assert_eq!(f.succ_iter(f.entry).collect::<Vec<_>>(), vec![mid, mid]);
        assert_eq!(f.blocks[mid.0 as usize].preds, vec![f.entry, f.entry]);
        assert_eq!(f.blocks[join.0 as usize].preds, vec![mid]);
        match &f.inst(phi).kind {
            InstKind::Phi { inputs, .. } => assert_eq!(inputs.len(), 1),
            _ => unreachable!(),
        }
        assert_eq!(f.verify(), Ok(()));
    }

    #[test]
    fn verify_catches_entry_with_preds() {
        let mut f = diamond();
        f.blocks[f.entry.0 as usize].preds.push(BlockId(1));
        assert!(f.verify().unwrap_err().contains("entry"));
    }

    #[test]
    fn verify_catches_nop_operand() {
        let mut f = diamond();
        // Nop out v1, which the join phi still references.
        let v1 = f.blocks[1].insts[0];
        f.inst_mut(v1).kind = InstKind::Nop;
        assert!(f.verify().unwrap_err().contains("Nop"));
    }

    #[test]
    fn verify_catches_pred_edge_mismatch() {
        let mut f = diamond();
        let join = BlockId(3);
        // Claim an extra pred entry for an edge that exists only once.
        f.blocks[join.0 as usize].preds.push(BlockId(1));
        let phi_id = f.blocks[join.0 as usize].insts[0];
        if let InstKind::Phi { inputs, .. } = &mut f.inst_mut(phi_id).kind {
            let v = inputs[0];
            inputs.push(v);
        }
        assert!(f.verify().is_err());
    }

    #[test]
    fn verify_catches_mid_block_terminator() {
        let mut f = IrFunc::new(FuncId(0), "bad", 0, 0);
        let c = f.append(f.entry, Inst::new(InstKind::Const(Value::UNDEFINED)));
        f.append(f.entry, Inst::new(InstKind::Return { v: c }));
        f.append(f.entry, Inst::new(InstKind::Return { v: c }));
        assert!(f.verify().is_err());
    }

    #[test]
    fn verify_catches_phi_arity_mismatch() {
        let mut f = diamond();
        let join = BlockId(3);
        let phi_id = f.blocks[join.0 as usize].insts[0];
        if let InstKind::Phi { inputs, .. } = &mut f.inst_mut(phi_id).kind {
            inputs.pop();
        }
        assert!(f.verify().is_err());
    }

    #[test]
    fn live_inst_count_skips_nops() {
        let mut f = diamond();
        let before = f.live_inst_count();
        let v = f.blocks[1].insts[0];
        f.inst_mut(v).kind = InstKind::Nop;
        assert_eq!(f.live_inst_count(), before - 1);
    }

    #[test]
    fn check_mode_roundtrip_via_graph() {
        let mut f = IrFunc::new(FuncId(0), "m", 0, 0);
        let c = f.append(f.entry, Inst::new(InstKind::Const(Value::new_int32(1))));
        let chk =
            f.append(f.entry, Inst::new(InstKind::CheckInt32 { v: c, mode: CheckMode::Deopt }));
        f.inst_mut(chk).set_check_mode(CheckMode::Abort);
        assert_eq!(f.inst(chk).check_mode(), Some(CheckMode::Abort));
    }
}
