//! The IR function: an arena of instructions organized into basic blocks.

use std::fmt;

use nomap_bytecode::FuncId;

use crate::node::{Inst, InstKind};

/// Identifies an instruction — and, since instructions define at most one
/// value, also that value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ValueId(pub u32);

impl fmt::Display for ValueId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "%{}", self.0)
    }
}

/// A basic block.
#[derive(Debug, Clone, Default)]
pub struct Block {
    /// Instruction ids, in order; the last one is the terminator.
    pub insts: Vec<ValueId>,
    /// Predecessor blocks (kept in sync with phi input order).
    pub preds: Vec<BlockId>,
}

/// Identifies a basic block.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BlockId(pub u32);

impl fmt::Display for BlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b{}", self.0)
    }
}

/// An IR function under construction or optimization.
#[derive(Debug, Clone)]
pub struct IrFunc {
    /// Source bytecode function.
    pub func: FuncId,
    /// Source name (diagnostics).
    pub name: String,
    /// Parameter count.
    pub param_count: u16,
    /// Bytecode register count (OSR frame width).
    pub bytecode_regs: u16,
    /// Instruction arena.
    pub insts: Vec<Inst>,
    /// Basic blocks.
    pub blocks: Vec<Block>,
    /// Entry block.
    pub entry: BlockId,
}

impl IrFunc {
    /// Creates an empty function with one (entry) block.
    pub fn new(
        func: FuncId,
        name: impl Into<String>,
        param_count: u16,
        bytecode_regs: u16,
    ) -> Self {
        IrFunc {
            func,
            name: name.into(),
            param_count,
            bytecode_regs,
            insts: Vec::new(),
            blocks: vec![Block::default()],
            entry: BlockId(0),
        }
    }

    /// Adds a fresh empty block.
    pub fn new_block(&mut self) -> BlockId {
        self.blocks.push(Block::default());
        BlockId(self.blocks.len() as u32 - 1)
    }

    /// Adds an instruction to the arena without placing it in a block.
    pub fn add_inst(&mut self, inst: Inst) -> ValueId {
        self.insts.push(inst);
        ValueId(self.insts.len() as u32 - 1)
    }

    /// Appends an instruction to `block`.
    pub fn append(&mut self, block: BlockId, inst: Inst) -> ValueId {
        let v = self.add_inst(inst);
        self.blocks[block.0 as usize].insts.push(v);
        v
    }

    /// Inserts an instruction at `pos` within `block`.
    pub fn insert_at(&mut self, block: BlockId, pos: usize, inst: Inst) -> ValueId {
        let v = self.add_inst(inst);
        self.blocks[block.0 as usize].insts.insert(pos, v);
        v
    }

    /// Inserts an instruction just before `block`'s terminator.
    pub fn insert_before_terminator(&mut self, block: BlockId, inst: Inst) -> ValueId {
        let len = self.blocks[block.0 as usize].insts.len();
        let pos = len.saturating_sub(1);
        self.insert_at(block, pos, inst)
    }

    /// Shared instruction access.
    pub fn inst(&self, v: ValueId) -> &Inst {
        &self.insts[v.0 as usize]
    }

    /// Mutable instruction access.
    pub fn inst_mut(&mut self, v: ValueId) -> &mut Inst {
        &mut self.insts[v.0 as usize]
    }

    /// The block's terminator instruction id.
    ///
    /// # Panics
    ///
    /// Panics if the block is empty.
    pub fn terminator(&self, b: BlockId) -> ValueId {
        *self.blocks[b.0 as usize].insts.last().expect("block has a terminator")
    }

    /// Successor blocks of `b`, from its terminator.
    pub fn succs(&self, b: BlockId) -> Vec<BlockId> {
        if self.blocks[b.0 as usize].insts.is_empty() {
            return vec![];
        }
        match &self.inst(self.terminator(b)).kind {
            InstKind::Jump { target } => vec![*target],
            InstKind::Branch { then_b, else_b, .. } => vec![*then_b, *else_b],
            _ => vec![],
        }
    }

    /// Recomputes every block's predecessor list. Phi inputs must be kept
    /// aligned by the caller if predecessor *order* changes.
    pub fn compute_preds(&mut self) {
        for b in &mut self.blocks {
            b.preds.clear();
        }
        for b in 0..self.blocks.len() as u32 {
            for s in self.succs(BlockId(b)) {
                self.blocks[s.0 as usize].preds.push(BlockId(b));
            }
        }
    }

    /// Reverse post-order over reachable blocks.
    pub fn rpo(&self) -> Vec<BlockId> {
        let mut visited = vec![false; self.blocks.len()];
        let mut post = Vec::new();
        let mut stack = vec![(self.entry, 0usize)];
        visited[self.entry.0 as usize] = true;
        while let Some((b, i)) = stack.pop() {
            let succs = self.succs(b);
            if i < succs.len() {
                stack.push((b, i + 1));
                let s = succs[i];
                if !visited[s.0 as usize] {
                    visited[s.0 as usize] = true;
                    stack.push((s, 0));
                }
            } else {
                post.push(b);
            }
        }
        post.reverse();
        post
    }

    /// Replaces every use of `from` with `to` (including OSR states).
    pub fn replace_all_uses(&mut self, from: ValueId, to: ValueId) {
        for inst in &mut self.insts {
            inst.map_operands(|v| if v == from { to } else { v });
        }
    }

    /// Redirects the terminator of `from` so edges to `old` point at `new`.
    pub fn redirect_edge(&mut self, from: BlockId, old: BlockId, new: BlockId) {
        let t = self.terminator(from);
        match &mut self.inst_mut(t).kind {
            InstKind::Jump { target } if *target == old => *target = new,
            InstKind::Jump { .. } => {}
            InstKind::Branch { then_b, else_b, .. } => {
                if *then_b == old {
                    *then_b = new;
                }
                if *else_b == old {
                    *else_b = new;
                }
            }
            _ => {}
        }
    }

    /// Splits the edge `from → to`, inserting a fresh block that jumps to
    /// `to`. Fixes preds and `to`'s phi input bookkeeping (the new block
    /// simply replaces `from` in `to.preds`).
    pub fn split_edge(&mut self, from: BlockId, to: BlockId) -> BlockId {
        let mid = self.new_block();
        let jump = self.add_inst(Inst::new(InstKind::Jump { target: to }));
        self.blocks[mid.0 as usize].insts.push(jump);
        self.redirect_edge(from, to, mid);
        self.blocks[mid.0 as usize].preds = vec![from];
        for p in &mut self.blocks[to.0 as usize].preds {
            if *p == from {
                *p = mid;
            }
        }
        mid
    }

    /// Number of instructions that are not `Nop` (reporting).
    pub fn live_inst_count(&self) -> usize {
        self.blocks
            .iter()
            .flat_map(|b| &b.insts)
            .filter(|v| !matches!(self.insts[v.0 as usize].kind, InstKind::Nop))
            .count()
    }

    /// Checks structural invariants; returns a description of the first
    /// violation.
    ///
    /// # Errors
    ///
    /// Returns a human-readable violation description.
    pub fn verify(&self) -> Result<(), String> {
        for (bi, b) in self.blocks.iter().enumerate() {
            let bid = BlockId(bi as u32);
            if b.insts.is_empty() {
                // Unreachable placeholder blocks are tolerated.
                continue;
            }
            let term = self.inst(*b.insts.last().unwrap());
            if !term.is_terminator() {
                return Err(format!("{bid} does not end in a terminator"));
            }
            for (i, &v) in b.insts.iter().enumerate() {
                let inst = self.inst(v);
                if inst.is_terminator() && i + 1 != b.insts.len() {
                    return Err(format!("terminator {v} in the middle of {bid}"));
                }
                if let InstKind::Phi { inputs, .. } = &inst.kind {
                    if inputs.len() != b.preds.len() {
                        return Err(format!(
                            "{v}: phi has {} inputs but {bid} has {} preds",
                            inputs.len(),
                            b.preds.len()
                        ));
                    }
                    if b.insts[..i].iter().any(|&p| {
                        !matches!(self.inst(p).kind, InstKind::Phi { .. } | InstKind::Nop)
                    }) {
                        return Err(format!("{v}: phi after non-phi in {bid}"));
                    }
                }
                for op in inst.operands() {
                    if op.0 as usize >= self.insts.len() {
                        return Err(format!("{v}: operand {op} out of range"));
                    }
                }
            }
            for s in self.succs(bid) {
                if s.0 as usize >= self.blocks.len() {
                    return Err(format!("{bid}: successor {s} out of range"));
                }
                if !self.blocks[s.0 as usize].preds.contains(&bid) {
                    return Err(format!("{bid} → {s} missing from preds"));
                }
            }
        }
        Ok(())
    }
}

impl fmt::Display for IrFunc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "ir function {} ({} params)", self.name, self.param_count)?;
        for (bi, b) in self.blocks.iter().enumerate() {
            if b.insts.is_empty() {
                continue;
            }
            let preds: Vec<String> = b.preds.iter().map(|p| p.to_string()).collect();
            writeln!(f, "b{bi}: ; preds: {}", preds.join(", "))?;
            for &v in &b.insts {
                let inst = self.inst(v);
                if matches!(inst.kind, InstKind::Nop) {
                    continue;
                }
                writeln!(f, "  {v} = {:?}", inst.kind)?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::{CheckMode, Ty};
    use nomap_runtime::Value;

    fn diamond() -> IrFunc {
        // entry -> (then|else) -> join
        let mut f = IrFunc::new(FuncId(0), "t", 0, 0);
        let then_b = f.new_block();
        let else_b = f.new_block();
        let join = f.new_block();
        let c = f.append(f.entry, Inst::new(InstKind::ConstI32(1)));
        let cb = f.append(
            f.entry,
            Inst::new(InstKind::ICmp { cond: nomap_machine::Cond::Eq, a: c, b: c }),
        );
        f.append(f.entry, Inst::new(InstKind::Branch { cond: cb, then_b, else_b }));
        let v1 = f.append(then_b, Inst::new(InstKind::ConstI32(1)));
        f.append(then_b, Inst::new(InstKind::Jump { target: join }));
        let v2 = f.append(else_b, Inst::new(InstKind::ConstI32(2)));
        f.append(else_b, Inst::new(InstKind::Jump { target: join }));
        let phi = f.append(join, Inst::new(InstKind::Phi { inputs: vec![v1, v2], ty: Ty::I32 }));
        let boxed = f.append(join, Inst::new(InstKind::BoxI32(phi)));
        f.append(join, Inst::new(InstKind::Return { v: boxed }));
        f.compute_preds();
        f
    }

    #[test]
    fn diamond_verifies() {
        let f = diamond();
        assert_eq!(f.verify(), Ok(()));
        assert_eq!(f.rpo()[0], f.entry);
        assert_eq!(f.rpo().len(), 4);
    }

    #[test]
    fn succs_and_preds_agree() {
        let f = diamond();
        assert_eq!(f.succs(f.entry).len(), 2);
        let join = BlockId(3);
        assert_eq!(f.blocks[join.0 as usize].preds.len(), 2);
    }

    #[test]
    fn replace_all_uses_rewrites_phis() {
        let mut f = diamond();
        let new_c = f.insert_at(f.entry, 0, Inst::new(InstKind::ConstI32(42)));
        // Replace v1 (ConstI32(1) in then-block) everywhere.
        let phi_id = f.blocks[3].insts[0];
        let old = match &f.inst(phi_id).kind {
            InstKind::Phi { inputs, .. } => inputs[0],
            _ => unreachable!(),
        };
        f.replace_all_uses(old, new_c);
        match &f.inst(phi_id).kind {
            InstKind::Phi { inputs, .. } => assert_eq!(inputs[0], new_c),
            _ => unreachable!(),
        }
    }

    #[test]
    fn split_edge_fixes_preds() {
        let mut f = diamond();
        let join = BlockId(3);
        let then_b = BlockId(1);
        let mid = f.split_edge(then_b, join);
        assert_eq!(f.succs(then_b), vec![mid]);
        assert_eq!(f.succs(mid), vec![join]);
        assert!(f.blocks[join.0 as usize].preds.contains(&mid));
        assert!(!f.blocks[join.0 as usize].preds.contains(&then_b));
        assert_eq!(f.verify(), Ok(()));
    }

    #[test]
    fn verify_catches_mid_block_terminator() {
        let mut f = IrFunc::new(FuncId(0), "bad", 0, 0);
        let c = f.append(f.entry, Inst::new(InstKind::Const(Value::UNDEFINED)));
        f.append(f.entry, Inst::new(InstKind::Return { v: c }));
        f.append(f.entry, Inst::new(InstKind::Return { v: c }));
        assert!(f.verify().is_err());
    }

    #[test]
    fn verify_catches_phi_arity_mismatch() {
        let mut f = diamond();
        let join = BlockId(3);
        let phi_id = f.blocks[join.0 as usize].insts[0];
        if let InstKind::Phi { inputs, .. } = &mut f.inst_mut(phi_id).kind {
            inputs.pop();
        }
        assert!(f.verify().is_err());
    }

    #[test]
    fn live_inst_count_skips_nops() {
        let mut f = diamond();
        let before = f.live_inst_count();
        let v = f.blocks[1].insts[0];
        f.inst_mut(v).kind = InstKind::Nop;
        assert_eq!(f.live_inst_count(), before - 1);
    }

    #[test]
    fn check_mode_roundtrip_via_graph() {
        let mut f = IrFunc::new(FuncId(0), "m", 0, 0);
        let c = f.append(f.entry, Inst::new(InstKind::Const(Value::new_int32(1))));
        let chk =
            f.append(f.entry, Inst::new(InstKind::CheckInt32 { v: c, mode: CheckMode::Deopt }));
        f.inst_mut(chk).set_check_mode(CheckMode::Abort);
        assert_eq!(f.inst(chk).check_mode(), Some(CheckMode::Abort));
    }
}
