//! IR instruction definitions.

use nomap_bytecode::{FuncId, Intrinsic, NameId, SiteId};
use nomap_machine::{CheckKind, Cond};
use nomap_runtime::{RuntimeFn, ShapeId, Value};

use crate::graph::{BlockId, ValueId};

/// Static type of an IR value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Ty {
    /// NaN-boxed [`Value`] bits.
    Boxed,
    /// Raw int32 (sign-extended in the register).
    I32,
    /// Raw f64 bits.
    F64,
    /// 0/1.
    Bool,
    /// Raw word (addresses, lengths, headers).
    Raw,
    /// Defines no value (stores, branches, guards...).
    None,
}

/// What happens when a check fails.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CheckMode {
    /// Deoptimize to Baseline through the instruction's [`OsrState`] — a
    /// Stack Map Point.
    Deopt,
    /// Abort the enclosing hardware transaction (NoMap).
    Abort,
    /// (Overflow only) no check at all: the arithmetic sets the Sticky
    /// Overflow Flag and `XEnd` aborts if it is set.
    Sof,
    /// (NoMap_BC only) check removed entirely — unsound in general, used
    /// for the paper's unrealistic best case.
    Removed,
}

/// Bytecode-level state needed to re-enter the Baseline tier.
///
/// `regs[i]` is the IR value currently holding bytecode register `i` (which
/// may be unboxed; the deopt handler re-boxes from the value's [`Ty`]).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct OsrState {
    /// Bytecode index to resume at (the op is re-executed generically).
    pub bc: u32,
    /// Bytecode register file snapshot; `None` = undefined/never written.
    pub regs: Vec<Option<ValueId>>,
}

/// Memory alias classes for dependence tests. Two accesses may alias only
/// if their classes are equal (or either is `Any`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Alias {
    /// Object property slot (out-of-line storage), keyed by slot index.
    PropSlot(u32),
    /// Object storage pointer / capacity words.
    ObjMeta,
    /// Array length word.
    ArrayLen,
    /// Array storage pointer / capacity words.
    ArrayMeta,
    /// Array element storage.
    Elem,
    /// A global variable slot (keyed by name).
    Global(NameId),
    /// Anything (runtime calls).
    Any,
}

impl Alias {
    /// May accesses of `self` and `other` touch the same memory?
    pub fn may_alias(self, other: Alias) -> bool {
        self == other || self == Alias::Any || other == Alias::Any
    }
}

/// An IR instruction. The defining instruction's index is its value id.
#[derive(Debug, Clone, PartialEq)]
pub enum InstKind {
    /// No-op placeholder (left behind by passes; skipped at lowering).
    Nop,
    /// Function parameter `i` (Boxed).
    Param(u16),
    /// Boxed constant.
    Const(Value),
    /// Raw int32 constant.
    ConstI32(i32),
    /// Raw double constant.
    ConstF64(f64),
    /// Raw word constant (addresses).
    ConstRaw(u64),
    /// Boolean constant (0/1).
    ConstBool(bool),
    /// SSA phi; inputs parallel the block's predecessor list.
    Phi {
        /// One input per predecessor, in predecessor order.
        inputs: Vec<ValueId>,
        /// Result type (all inputs must agree).
        ty: Ty,
    },

    // ---- unboxing / boxing (speculation) -------------------------------
    /// Speculate `v` is an int32; yields the raw payload. `Type` check.
    CheckInt32 { v: ValueId, mode: CheckMode },
    /// Speculate `v` is a number; yields its f64. `Type` check.
    CheckNumber { v: ValueId, mode: CheckMode },
    /// Speculate `v` is a boolean; yields 0/1. `Type` check.
    CheckBool { v: ValueId, mode: CheckMode },
    /// Speculate `v` is a cell with shape `shape`; yields the cell address
    /// (raw). `Property` check.
    CheckShape { v: ValueId, shape: ShapeId, mode: CheckMode },
    /// Speculate `v` is an array cell; yields the address. `Type` check.
    CheckArray { v: ValueId, mode: CheckMode },
    /// Speculate `v` is a string cell; yields the address. `Type` check.
    CheckString { v: ValueId, mode: CheckMode },
    /// Convert an f64 to int32, checking the conversion is exact (no
    /// fraction, no negative zero). `Type` check.
    CheckF64ToI32 { v: ValueId, mode: CheckMode },
    /// Box an i32.
    BoxI32(ValueId),
    /// Box an f64.
    BoxF64(ValueId),
    /// Box a 0/1 bool.
    BoxBool(ValueId),
    /// int32 → f64.
    I32ToF64(ValueId),

    // ---- arithmetic ------------------------------------------------------
    /// Checked int32 add (`Overflow` check per `mode`).
    CheckedAddI32 { a: ValueId, b: ValueId, mode: CheckMode },
    /// Checked int32 subtract.
    CheckedSubI32 { a: ValueId, b: ValueId, mode: CheckMode },
    /// Checked int32 multiply (overflow or negative zero).
    CheckedMulI32 { a: ValueId, b: ValueId, mode: CheckMode },
    /// Checked int32 negate (overflow on 0 and i32::MIN).
    CheckedNegI32 { a: ValueId, mode: CheckMode },
    /// Pure int32 bitwise/shift (cannot overflow).
    IBin { op: IBinOp, a: ValueId, b: ValueId },
    /// Unsigned shift right; yields I32, `Other`-checked non-negative.
    CheckedUShr { a: ValueId, b: ValueId, mode: CheckMode },
    /// Pure f64 arithmetic.
    FBin { op: FBinOp, a: ValueId, b: ValueId },
    /// f64 negate.
    FNeg(ValueId),
    /// Compare raw words; yields Bool.
    ICmp { cond: Cond, a: ValueId, b: ValueId },
    /// Compare doubles; yields Bool.
    FCmp { cond: Cond, a: ValueId, b: ValueId },
    /// Bool not.
    BNot(ValueId),
    /// Pure double math intrinsic (sqrt, sin, ...), arguments unboxed.
    MathOp { intr: Intrinsic, args: Vec<ValueId> },

    // ---- guards ----------------------------------------------------------
    /// Standalone check: fail (per `mode`) when `cond != 0`.
    Guard { kind: CheckKind, cond: ValueId, mode: CheckMode },

    // ---- memory ------------------------------------------------------------
    /// `mem[base + offset]`; `base` is a raw cell address.
    LoadField { base: ValueId, offset: u64, alias: Alias, ty: Ty },
    /// `mem[base + offset] = v`.
    StoreField { base: ValueId, offset: u64, v: ValueId, alias: Alias },
    /// `mem[storage + index]` (array element; index is I32).
    LoadElem { storage: ValueId, index: ValueId },
    /// `mem[storage + index] = v`.
    StoreElem { storage: ValueId, index: ValueId, v: ValueId },
    /// Load a global slot.
    LoadGlobal { addr: u64, name: NameId },
    /// Store a global slot.
    StoreGlobal { addr: u64, name: NameId, v: ValueId },

    // ---- calls -------------------------------------------------------------
    /// Call a runtime helper (clobbers all memory). Boxed arguments.
    CallRuntime { func: RuntimeFn, args: Vec<ValueId>, site: Option<(FuncId, SiteId)> },
    /// Call another MiniJS function (clobbers all memory).
    CallJs { callee: FuncId, args: Vec<ValueId> },

    // ---- transactions --------------------------------------------------------
    /// Begin a hardware transaction (NoMap). Falls back through the OSR
    /// state on abort.
    XBegin,
    /// End/commit the innermost transaction.
    XEnd,

    // ---- control flow ----------------------------------------------------------
    /// Unconditional branch.
    Jump { target: BlockId },
    /// Two-way branch on a Bool.
    Branch { cond: ValueId, then_b: BlockId, else_b: BlockId },
    /// Return a boxed value.
    Return { v: ValueId },
}

/// Pure int32 bitwise operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IBinOp {
    And,
    Or,
    Xor,
    Shl,
    Sar,
}

/// Pure f64 binary operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FBinOp {
    Add,
    Sub,
    Mul,
    Div,
    Mod,
}

/// An instruction together with its metadata.
#[derive(Debug, Clone, PartialEq)]
pub struct Inst {
    /// The operation.
    pub kind: InstKind,
    /// OSR exit state for `Deopt`-mode checks and `XBegin` (None in abort
    /// mode and for non-checking instructions).
    pub osr: Option<OsrState>,
    /// Profiling site feeding this instruction (debugging).
    pub site: Option<(FuncId, SiteId)>,
}

impl Inst {
    /// Creates an instruction with no OSR state.
    pub fn new(kind: InstKind) -> Self {
        Inst { kind, osr: None, site: None }
    }

    /// Result type.
    pub fn ty(&self) -> Ty {
        use InstKind::*;
        match &self.kind {
            Nop
            | Guard { .. }
            | StoreField { .. }
            | StoreElem { .. }
            | StoreGlobal { .. }
            | XBegin
            | XEnd
            | Jump { .. }
            | Branch { .. }
            | Return { .. } => Ty::None,
            Param(_)
            | Const(_)
            | BoxI32(_)
            | BoxF64(_)
            | BoxBool(_)
            | LoadElem { .. }
            | LoadGlobal { .. }
            | CallRuntime { .. }
            | CallJs { .. } => Ty::Boxed,
            ConstI32(_)
            | CheckInt32 { .. }
            | CheckF64ToI32 { .. }
            | CheckedAddI32 { .. }
            | CheckedSubI32 { .. }
            | CheckedMulI32 { .. }
            | CheckedNegI32 { .. }
            | IBin { .. }
            | CheckedUShr { .. } => Ty::I32,
            ConstF64(_)
            | CheckNumber { .. }
            | I32ToF64(_)
            | FBin { .. }
            | FNeg(_)
            | MathOp { .. } => Ty::F64,
            ConstRaw(_) | CheckShape { .. } | CheckArray { .. } | CheckString { .. } => Ty::Raw,
            ConstBool(_) | CheckBool { .. } | ICmp { .. } | FCmp { .. } | BNot(_) => Ty::Bool,
            Phi { ty, .. } => *ty,
            LoadField { ty, .. } => *ty,
        }
    }

    /// The check category, if this instruction performs a check in its
    /// current mode.
    pub fn check_kind(&self) -> Option<CheckKind> {
        use InstKind::*;
        let (kind, mode) = match &self.kind {
            CheckInt32 { mode, .. }
            | CheckNumber { mode, .. }
            | CheckBool { mode, .. }
            | CheckArray { mode, .. }
            | CheckString { mode, .. }
            | CheckF64ToI32 { mode, .. } => (CheckKind::Type, *mode),
            CheckShape { mode, .. } => (CheckKind::Property, *mode),
            CheckedAddI32 { mode, .. }
            | CheckedSubI32 { mode, .. }
            | CheckedMulI32 { mode, .. }
            | CheckedNegI32 { mode, .. } => (CheckKind::Overflow, *mode),
            CheckedUShr { mode, .. } => (CheckKind::Other, *mode),
            Guard { kind, mode, .. } => (*kind, *mode),
            _ => return None,
        };
        match mode {
            CheckMode::Deopt | CheckMode::Abort => Some(kind),
            CheckMode::Sof | CheckMode::Removed => None,
        }
    }

    /// The instruction's check mode, if it is a checking instruction.
    pub fn check_mode(&self) -> Option<CheckMode> {
        use InstKind::*;
        match &self.kind {
            CheckInt32 { mode, .. }
            | CheckNumber { mode, .. }
            | CheckBool { mode, .. }
            | CheckShape { mode, .. }
            | CheckArray { mode, .. }
            | CheckString { mode, .. }
            | CheckF64ToI32 { mode, .. }
            | CheckedAddI32 { mode, .. }
            | CheckedSubI32 { mode, .. }
            | CheckedMulI32 { mode, .. }
            | CheckedNegI32 { mode, .. }
            | CheckedUShr { mode, .. }
            | Guard { mode, .. } => Some(*mode),
            _ => None,
        }
    }

    /// Rewrites the check mode.
    ///
    /// # Panics
    ///
    /// Panics when the instruction is not a checking instruction.
    pub fn set_check_mode(&mut self, new_mode: CheckMode) {
        use InstKind::*;
        match &mut self.kind {
            CheckInt32 { mode, .. }
            | CheckNumber { mode, .. }
            | CheckBool { mode, .. }
            | CheckShape { mode, .. }
            | CheckArray { mode, .. }
            | CheckString { mode, .. }
            | CheckF64ToI32 { mode, .. }
            | CheckedAddI32 { mode, .. }
            | CheckedSubI32 { mode, .. }
            | CheckedMulI32 { mode, .. }
            | CheckedNegI32 { mode, .. }
            | CheckedUShr { mode, .. }
            | Guard { mode, .. } => *mode = new_mode,
            other => panic!("set_check_mode on non-check {other:?}"),
        }
    }

    /// True when this instruction is a Stack Map Point (a `Deopt`-mode
    /// check or a transaction begin, both of which need OSR state).
    pub fn is_smp(&self) -> bool {
        matches!(self.kind, InstKind::XBegin) || self.check_mode() == Some(CheckMode::Deopt)
    }

    /// May this instruction read memory of class `alias`?
    pub fn may_read(&self, alias: Alias) -> bool {
        use InstKind::*;
        match &self.kind {
            LoadField { alias: a, .. } => a.may_alias(alias),
            LoadElem { .. } => Alias::Elem.may_alias(alias),
            LoadGlobal { name, .. } => Alias::Global(*name).may_alias(alias),
            CallRuntime { .. } | CallJs { .. } => true,
            _ => false,
        }
    }

    /// May this instruction write memory of class `alias`?
    ///
    /// In `Deopt` mode, checks report `true` for every class: this is the
    /// LLVM-faithful "stackmaps clobber memory" rule that blocks motion in
    /// the `Base` configuration. `Abort`-mode checks clobber nothing.
    /// A runtime helper whose signature says it never overwrites
    /// pre-existing guest memory (it only reads, or writes freshly
    /// allocated cells) clobbers no alias class either — loads may move
    /// across it; the call itself stays pinned via [`Inst::has_effect`].
    pub fn may_write(&self, alias: Alias) -> bool {
        use InstKind::*;
        match &self.kind {
            StoreField { alias: a, .. } => a.may_alias(alias),
            StoreElem { .. } => Alias::Elem.may_alias(alias),
            StoreGlobal { name, .. } => Alias::Global(*name).may_alias(alias),
            CallRuntime { func, .. } => func.signature().clobbers,
            CallJs { .. } => true,
            XBegin | XEnd => true, // ordering barrier for transactions
            _ => self.check_mode() == Some(CheckMode::Deopt),
        }
    }

    /// True when the instruction (in its current mode) has an observable
    /// effect and must not be removed by DCE even if unused.
    pub fn has_effect(&self) -> bool {
        use InstKind::*;
        match &self.kind {
            StoreField { .. }
            | StoreElem { .. }
            | StoreGlobal { .. }
            | CallRuntime { .. }
            | CallJs { .. }
            | XBegin
            | XEnd
            | Jump { .. }
            | Branch { .. }
            | Return { .. } => true,
            // SOF-mode arithmetic still sets the sticky flag.
            CheckedAddI32 { mode, .. }
            | CheckedSubI32 { mode, .. }
            | CheckedMulI32 { mode, .. }
            | CheckedNegI32 { mode, .. } => {
                matches!(mode, CheckMode::Sof)
            }
            _ => self.check_kind().is_some(),
        }
    }

    /// True for instructions that are pure functions of their operands
    /// (candidates for GVN/LICM with no further analysis).
    pub fn is_pure(&self) -> bool {
        use InstKind::*;
        matches!(
            self.kind,
            Param(_)
                | Const(_)
                | ConstI32(_)
                | ConstF64(_)
                | ConstRaw(_)
                | ConstBool(_)
                | BoxI32(_)
                | BoxF64(_)
                | BoxBool(_)
                | I32ToF64(_)
                | IBin { .. }
                | FBin { .. }
                | FNeg(_)
                | ICmp { .. }
                | FCmp { .. }
                | BNot(_)
                | MathOp { .. }
        )
    }

    /// Operand values, in order.
    pub fn operands(&self) -> Vec<ValueId> {
        use InstKind::*;
        match &self.kind {
            Nop
            | Param(_)
            | Const(_)
            | ConstI32(_)
            | ConstF64(_)
            | ConstRaw(_)
            | ConstBool(_)
            | LoadGlobal { .. }
            | XBegin
            | XEnd
            | Jump { .. } => vec![],
            Phi { inputs, .. } => inputs.clone(),
            CheckInt32 { v, .. }
            | CheckNumber { v, .. }
            | CheckBool { v, .. }
            | CheckShape { v, .. }
            | CheckArray { v, .. }
            | CheckString { v, .. }
            | CheckF64ToI32 { v, .. }
            | BoxI32(v)
            | BoxF64(v)
            | BoxBool(v)
            | I32ToF64(v)
            | CheckedNegI32 { a: v, .. }
            | FNeg(v)
            | BNot(v)
            | Return { v }
            | StoreGlobal { v, .. } => vec![*v],
            CheckedAddI32 { a, b, .. }
            | CheckedSubI32 { a, b, .. }
            | CheckedMulI32 { a, b, .. }
            | IBin { a, b, .. }
            | CheckedUShr { a, b, .. }
            | FBin { a, b, .. }
            | ICmp { a, b, .. }
            | FCmp { a, b, .. } => vec![*a, *b],
            Guard { cond, .. } => vec![*cond],
            MathOp { args, .. } => args.clone(),
            LoadField { base, .. } => vec![*base],
            StoreField { base, v, .. } => vec![*base, *v],
            LoadElem { storage, index } => vec![*storage, *index],
            StoreElem { storage, index, v } => vec![*storage, *index, *v],
            CallRuntime { args, .. } => args.clone(),
            CallJs { args, .. } => args.clone(),
            Branch { cond, .. } => vec![*cond],
        }
    }

    /// Applies `f` to every operand slot.
    pub fn map_operands(&mut self, mut f: impl FnMut(ValueId) -> ValueId) {
        use InstKind::*;
        match &mut self.kind {
            Nop
            | Param(_)
            | Const(_)
            | ConstI32(_)
            | ConstF64(_)
            | ConstRaw(_)
            | ConstBool(_)
            | LoadGlobal { .. }
            | XBegin
            | XEnd
            | Jump { .. } => {}
            Phi { inputs, .. } => {
                for v in inputs {
                    *v = f(*v);
                }
            }
            CheckInt32 { v, .. }
            | CheckNumber { v, .. }
            | CheckBool { v, .. }
            | CheckShape { v, .. }
            | CheckArray { v, .. }
            | CheckString { v, .. }
            | CheckF64ToI32 { v, .. }
            | BoxI32(v)
            | BoxF64(v)
            | BoxBool(v)
            | I32ToF64(v)
            | CheckedNegI32 { a: v, .. }
            | FNeg(v)
            | BNot(v)
            | Return { v }
            | StoreGlobal { v, .. } => *v = f(*v),
            CheckedAddI32 { a, b, .. }
            | CheckedSubI32 { a, b, .. }
            | CheckedMulI32 { a, b, .. }
            | IBin { a, b, .. }
            | CheckedUShr { a, b, .. }
            | FBin { a, b, .. }
            | ICmp { a, b, .. }
            | FCmp { a, b, .. } => {
                *a = f(*a);
                *b = f(*b);
            }
            Guard { cond, .. } => *cond = f(*cond),
            MathOp { args, .. } => {
                for v in args {
                    *v = f(*v);
                }
            }
            LoadField { base, .. } => *base = f(*base),
            StoreField { base, v, .. } => {
                *base = f(*base);
                *v = f(*v);
            }
            LoadElem { storage, index } => {
                *storage = f(*storage);
                *index = f(*index);
            }
            StoreElem { storage, index, v } => {
                *storage = f(*storage);
                *index = f(*index);
                *v = f(*v);
            }
            CallRuntime { args, .. } => {
                for v in args {
                    *v = f(*v);
                }
            }
            CallJs { args, .. } => {
                for v in args {
                    *v = f(*v);
                }
            }
            Branch { cond, .. } => *cond = f(*cond),
        }
        // OSR states reference values too.
        if let Some(osr) = &mut self.osr {
            for slot in osr.regs.iter_mut().flatten() {
                *slot = f(*slot);
            }
        }
    }

    /// True for block terminators.
    pub fn is_terminator(&self) -> bool {
        matches!(
            self.kind,
            InstKind::Jump { .. } | InstKind::Branch { .. } | InstKind::Return { .. }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deopt_checks_clobber_aborts_do_not() {
        let deopt = Inst::new(InstKind::CheckInt32 { v: ValueId(0), mode: CheckMode::Deopt });
        let abort = Inst::new(InstKind::CheckInt32 { v: ValueId(0), mode: CheckMode::Abort });
        assert!(deopt.may_write(Alias::Elem));
        assert!(!abort.may_write(Alias::Elem));
        assert_eq!(deopt.check_kind(), Some(CheckKind::Type));
        assert_eq!(abort.check_kind(), Some(CheckKind::Type));
    }

    #[test]
    fn sof_mode_checks_disappear_but_keep_effect() {
        let sof = Inst::new(InstKind::CheckedAddI32 {
            a: ValueId(0),
            b: ValueId(1),
            mode: CheckMode::Sof,
        });
        assert_eq!(sof.check_kind(), None);
        assert!(sof.has_effect()); // still sets SOF
        let removed = Inst::new(InstKind::Guard {
            kind: CheckKind::Bounds,
            cond: ValueId(0),
            mode: CheckMode::Removed,
        });
        assert_eq!(removed.check_kind(), None);
        assert!(!removed.has_effect());
    }

    #[test]
    fn alias_rules() {
        assert!(Alias::Elem.may_alias(Alias::Elem));
        assert!(!Alias::Elem.may_alias(Alias::ArrayLen));
        assert!(Alias::Any.may_alias(Alias::Elem));
        assert!(!Alias::PropSlot(0).may_alias(Alias::PropSlot(1)));
    }

    #[test]
    fn operand_mapping_covers_osr() {
        let mut i = Inst::new(InstKind::Guard {
            kind: CheckKind::Bounds,
            cond: ValueId(3),
            mode: CheckMode::Deopt,
        });
        i.osr = Some(OsrState { bc: 7, regs: vec![Some(ValueId(3)), None, Some(ValueId(5))] });
        i.map_operands(|v| ValueId(v.0 + 10));
        assert_eq!(i.operands(), vec![ValueId(13)]);
        let osr = i.osr.unwrap();
        assert_eq!(osr.regs[0], Some(ValueId(13)));
        assert_eq!(osr.regs[2], Some(ValueId(15)));
    }

    #[test]
    fn types_are_consistent() {
        assert_eq!(Inst::new(InstKind::ConstI32(3)).ty(), Ty::I32);
        assert_eq!(Inst::new(InstKind::BoxI32(ValueId(0))).ty(), Ty::Boxed);
        assert_eq!(
            Inst::new(InstKind::ICmp { cond: Cond::Eq, a: ValueId(0), b: ValueId(1) }).ty(),
            Ty::Bool
        );
    }
}
