//! Structured lifecycle events emitted by the VM.
//!
//! Every observable point in a run — tier-up compilation, OSR
//! deoptimization, transaction begin/commit/abort, §V-C ladder steps and
//! optimizer-pass outcomes — is one [`TraceEvent`]. Events are plain data:
//! they can be buffered, rendered as a human-readable timeline, or
//! serialized as JSON Lines (schema [`SCHEMA_VERSION`]).

use nomap_machine::{AbortReason, CheckKind, Tier};

use crate::json::{obj, JsonValue};

/// JSONL schema version stamped on every serialized event. Bump when event
/// fields change incompatibly. (v2 added the `verify` event; v3 added the
/// `cycle-region` attribution event and the stream header line written by
/// [`crate::JsonlSink`]; v4 added the `check-verdict` event carrying the
/// proof-carrying check-elision tallies of one compilation; v5 added the
/// `fleet-summary` scheduling event emitted by sharded corpus/bench runs;
/// v6 added the `host-span` event carrying merged host wall-clock /
/// allocation telemetry from the `nomap-hostprof` observatory; v7 added
/// the `tx-abort-blame` forensics event — faulting address / cache set /
/// set occupancy and read/write footprints at the point of failure,
/// attributed to function × tier × bytecode pc — and the
/// `read_footprint_bytes` member of `tx-commit`.)
pub const SCHEMA_VERSION: u32 = 7;

/// One VM lifecycle event.
///
/// `seq` (assigned by the tracer) and `cycles` (total cycles at emission)
/// order events; both are deterministic across runs of the same program.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceEvent {
    /// A function was compiled by a tier (Interp→Baseline→DFG→FTL tier-up,
    /// or an FTL recompile after a ladder step / profile correction).
    TierUp {
        /// Function id.
        func: u32,
        /// Function name.
        name: String,
        /// Tier that compiled.
        tier: Tier,
        /// Compile "cost": static machine instructions emitted.
        code_len: usize,
        /// Transaction scope the code was compiled at (FTL under a
        /// transactional architecture only), e.g. `"Nest"`.
        scope: Option<String>,
        /// True for the transaction-aware callee variant.
        txn_callee: bool,
    },
    /// An OSR exit (deoptimization) to the Baseline tier (§III-A2).
    Deopt {
        /// Function id.
        func: u32,
        /// Function name.
        name: String,
        /// Stack-map-point id taken.
        smp: u32,
        /// Bytecode offset the Baseline frame resumes at.
        bc: u32,
        /// The check kind that fired.
        kind: CheckKind,
    },
    /// An outermost transaction began.
    TxBegin {
        /// Function owning the transaction.
        func: u32,
        /// Function name.
        name: String,
    },
    /// An outermost transaction committed.
    TxCommit {
        /// Function owning the transaction.
        func: u32,
        /// Write footprint in bytes (distinct lines × line size).
        footprint_bytes: u64,
        /// Read footprint in bytes (schema v7; nonzero only when the HTM
        /// bounds reads, i.e. RTM).
        read_footprint_bytes: u64,
        /// Peak speculative ways demanded of any one cache set.
        max_assoc: u32,
        /// Dynamic instructions executed inside the transaction.
        instructions: u64,
    },
    /// A transaction aborted.
    TxAbort {
        /// Function owning the transaction (`None` when the owner frame is
        /// not on the stack, e.g. a guest error unwound it).
        func: Option<u32>,
        /// Why it aborted.
        reason: AbortReason,
        /// Write footprint in bytes at the moment of the abort.
        footprint_bytes: u64,
        /// Buffered writes rolled back.
        undone_words: u64,
        /// Dynamic instructions executed inside the doomed transaction.
        instructions: u64,
    },
    /// Per-abort blame forensics (schema v7), emitted immediately after
    /// the `tx-abort` it explains: the faulting access (capacity aborts
    /// only), the victim set's speculative occupancy, the read/write
    /// footprints at the point of failure, and the attribution to
    /// function × tier × bytecode pc plus the §V-C ladder attempt.
    TxAbortBlame {
        /// Function owning the transaction (`None` when unowned).
        func: Option<u32>,
        /// Owner function name (`"«other»"` when unowned).
        name: String,
        /// Tier of the code that was executing at the abort.
        tier: Tier,
        /// Bytecode pc of the transaction's fallback entry.
        bc: u32,
        /// Why it aborted.
        reason: AbortReason,
        /// Transaction scope the owner's code ran at, e.g. `"Nest"`.
        scope: String,
        /// §V-C ladder attempt number (1 = first capacity abort).
        attempt: u32,
        /// Word address of the faulting access (capacity aborts only).
        word_addr: Option<u64>,
        /// Cache line (tag address) of the faulting access.
        line: Option<u64>,
        /// Index of the overflowed cache set.
        set: Option<u64>,
        /// Speculative lines the victim set was asked to hold, counting
        /// the faulting one (0 when there is no fault site).
        set_ways: u32,
        /// True when the faulting access was a read (RTM read-set
        /// overflow) rather than a write.
        read_fault: bool,
        /// Distinct lines in the write set at the fault.
        write_lines: u64,
        /// Write footprint in bytes at the fault.
        write_bytes: u64,
        /// Distinct lines in the read set at the fault (RTM only).
        read_lines: u64,
        /// Read footprint in bytes at the fault.
        read_bytes: u64,
        /// Dynamic instructions executed inside the doomed transaction.
        instructions: u64,
    },
    /// A §V-C transaction-scope ladder step after a capacity abort.
    LadderStep {
        /// Function whose FTL code is being rescoped.
        func: u32,
        /// Function name.
        name: String,
        /// Scope before the step, e.g. `"Nest"`.
        from: String,
        /// Scope after the step, e.g. `"Inner"`.
        to: String,
        /// Whether the overflowing transaction contained a call (which
        /// removes the transaction entirely).
        saw_call: bool,
    },
    /// FTL code was invalidated for recompilation because repeated check
    /// aborts showed its speculation was stale.
    Recompile {
        /// Function being recompiled.
        func: u32,
        /// Function name.
        name: String,
        /// Check-caused aborts that triggered the recompile.
        check_aborts: u32,
    },
    /// One pass-sanitized (audited) compilation's verifier outcome.
    Verify {
        /// Function compiled.
        func: u32,
        /// Function name.
        name: String,
        /// Verification stages that ran (post-build, post-placement,
        /// after each pass, bounds TV, final, ...).
        stages: usize,
        /// Findings across all stages, warnings included.
        diagnostics: usize,
        /// True when no *error* diagnostics fired.
        clean: bool,
        /// Scope chosen by footprint-based seeding when it differs from
        /// the requested one, e.g. `"InnerTiled(64)"`.
        seeded_scope: Option<String>,
    },
    /// Cycle-attribution summary for one profiler region (schema v3).
    ///
    /// Emitted when the VM flushes its cycle-attribution profile: one event
    /// per (function × tier × region-kind) scope, carrying the cycles the
    /// ledger charged to it. The sum over all `cycle-region` events of one
    /// flush equals `ExecStats::total_cycles()` for the profiled window.
    CycleRegion {
        /// Function id (`u32::MAX` = the explicit "other" bucket).
        func: u32,
        /// Function name (`"«other»"` for the other bucket).
        name: String,
        /// Tier the cycles were spent in.
        tier: Tier,
        /// Region kind name (`main`, `txn-body`, `txn-retry-ladder`,
        /// `compile`, `deopt-replay`, `check:<kind>`, `other`).
        region: String,
        /// Cycles attributed to this scope.
        cycles: u64,
    },
    /// Optimizer-pass outcomes for one FTL compilation (§IV-C).
    PassOutcome {
        /// Function compiled.
        func: u32,
        /// Function name.
        name: String,
        /// Transactions placed around loops.
        transactions_placed: usize,
        /// Deopt-mode checks converted to transaction aborts.
        checks_to_aborts: usize,
        /// Bounds checks removed by combining (§IV-C1).
        bounds_combined: usize,
        /// Overflow checks removed via SOF (§IV-C2).
        overflow_removed: usize,
    },
    /// Static check-elision verdicts for one compilation (schema v4): what
    /// the abstract interpreter decided about every reachable check in the
    /// function, and how many checks it deleted. The static half of the
    /// check census (`nomap prove --census` joins these against dynamic
    /// `check:<kind>` cycle tallies).
    CheckVerdict {
        /// Function compiled.
        func: u32,
        /// Function name.
        name: String,
        /// Tier the verdicts apply to.
        tier: Tier,
        /// Checks proved infeasible (and elided).
        proved_safe: u32,
        /// Checks proved to fire on every execution reaching them.
        proved_fail: u32,
        /// Checks the analysis could not decide.
        unknown: u32,
        /// Checks deleted from the compiled code.
        elided: u32,
    },
    /// Scheduling telemetry for one sharded fleet run (schema v5).
    ///
    /// Emitted once per `nomap-fleet` run by the corpus and bench binaries.
    /// Everything in it is wall-clock or scheduling dependent, so the
    /// binaries keep it on stderr / the JSONL artifact — never in
    /// byte-diffed stdout.
    FleetSummary {
        /// Worker threads used.
        jobs: u64,
        /// Shards submitted.
        shards: u64,
        /// Shards that failed after retries.
        failed: u64,
        /// Shards that needed more than one attempt.
        retried: u64,
        /// Whole-run wall time in nanoseconds.
        wall_ns: u64,
        /// Peak shards in flight at once.
        peak_occupancy: u64,
        /// Per-shard wall time in nanoseconds, canonical shard order.
        shard_wall_ns: Vec<u64>,
    },
    /// Merged host-side span telemetry from the `nomap-hostprof`
    /// observatory (schema v6): one event per span path, after the run.
    ///
    /// `wall_ns` is host wall clock and therefore nondeterministic; like
    /// `fleet-summary`, emitters keep these events on stderr / the JSONL
    /// artifact, never in byte-diffed stdout.
    HostSpan {
        /// `/`-joined span path, e.g. `workload:S01/compile:ftl/pass:gvn`.
        path: String,
        /// Times the span was entered.
        count: u64,
        /// Inclusive wall-clock nanoseconds.
        wall_ns: u64,
        /// Inclusive host allocation count (deterministic).
        allocs: u64,
        /// Inclusive host bytes requested (deterministic).
        alloc_bytes: u64,
    },
}

/// Names a tier for rendering/serialization.
pub fn tier_name(tier: Tier) -> &'static str {
    match tier {
        Tier::Interpreter => "interpreter",
        Tier::Baseline => "baseline",
        Tier::Dfg => "dfg",
        Tier::Ftl => "ftl",
        Tier::Runtime => "runtime",
    }
}

/// Names a check kind for rendering/serialization (delegates to the
/// canonical `nomap_machine::check_kind_key` table).
pub fn check_name(kind: CheckKind) -> &'static str {
    nomap_machine::check_kind_key(kind)
}

/// Names an abort reason for rendering/serialization (check aborts carry
/// the check kind separately; delegates to the canonical
/// `nomap_machine::abort_reason_class` table).
pub fn abort_reason_name(reason: AbortReason) -> &'static str {
    nomap_machine::abort_reason_class(reason)
}

impl TraceEvent {
    /// Short event-type tag (stable; used as the JSONL `ev` member and the
    /// metrics counter key).
    pub fn kind(&self) -> &'static str {
        match self {
            TraceEvent::TierUp { .. } => "tier-up",
            TraceEvent::Deopt { .. } => "deopt",
            TraceEvent::TxBegin { .. } => "tx-begin",
            TraceEvent::TxCommit { .. } => "tx-commit",
            TraceEvent::TxAbort { .. } => "tx-abort",
            TraceEvent::TxAbortBlame { .. } => "tx-abort-blame",
            TraceEvent::LadderStep { .. } => "ladder-step",
            TraceEvent::Recompile { .. } => "recompile",
            TraceEvent::Verify { .. } => "verify",
            TraceEvent::CycleRegion { .. } => "cycle-region",
            TraceEvent::PassOutcome { .. } => "pass-outcome",
            TraceEvent::CheckVerdict { .. } => "check-verdict",
            TraceEvent::FleetSummary { .. } => "fleet-summary",
            TraceEvent::HostSpan { .. } => "host-span",
        }
    }

    /// Serializes the event (with its envelope) as one JSON object.
    pub fn to_json(&self, seq: u64, cycles: u64) -> JsonValue {
        let mut m: Vec<(&str, JsonValue)> = vec![
            ("v", SCHEMA_VERSION.into()),
            ("seq", seq.into()),
            ("cycles", cycles.into()),
            ("ev", self.kind().into()),
        ];
        match self {
            TraceEvent::TierUp { func, name, tier, code_len, scope, txn_callee } => {
                m.push(("func", (*func).into()));
                m.push(("name", name.as_str().into()));
                m.push(("tier", tier_name(*tier).into()));
                m.push(("code_len", (*code_len).into()));
                match scope {
                    Some(s) => m.push(("scope", s.as_str().into())),
                    None => m.push(("scope", JsonValue::Null)),
                }
                if *txn_callee {
                    m.push(("txn_callee", true.into()));
                }
            }
            TraceEvent::Deopt { func, name, smp, bc, kind } => {
                m.push(("func", (*func).into()));
                m.push(("name", name.as_str().into()));
                m.push(("smp", (*smp).into()));
                m.push(("bc", (*bc).into()));
                m.push(("kind", check_name(*kind).into()));
            }
            TraceEvent::TxBegin { func, name } => {
                m.push(("func", (*func).into()));
                m.push(("name", name.as_str().into()));
            }
            TraceEvent::TxCommit {
                func,
                footprint_bytes,
                read_footprint_bytes,
                max_assoc,
                instructions,
            } => {
                m.push(("func", (*func).into()));
                m.push(("footprint_bytes", (*footprint_bytes).into()));
                m.push(("read_footprint_bytes", (*read_footprint_bytes).into()));
                m.push(("max_assoc", (*max_assoc).into()));
                m.push(("instructions", (*instructions).into()));
            }
            TraceEvent::TxAbort { func, reason, footprint_bytes, undone_words, instructions } => {
                match func {
                    Some(f) => m.push(("func", (*f).into())),
                    None => m.push(("func", JsonValue::Null)),
                }
                m.push(("reason", abort_reason_name(*reason).into()));
                if let AbortReason::Check(kind) = reason {
                    m.push(("check", check_name(*kind).into()));
                }
                m.push(("footprint_bytes", (*footprint_bytes).into()));
                m.push(("undone_words", (*undone_words).into()));
                m.push(("instructions", (*instructions).into()));
            }
            TraceEvent::TxAbortBlame {
                func,
                name,
                tier,
                bc,
                reason,
                scope,
                attempt,
                word_addr,
                line,
                set,
                set_ways,
                read_fault,
                write_lines,
                write_bytes,
                read_lines,
                read_bytes,
                instructions,
            } => {
                match func {
                    Some(f) => m.push(("func", (*f).into())),
                    None => m.push(("func", JsonValue::Null)),
                }
                m.push(("name", name.as_str().into()));
                m.push(("tier", tier_name(*tier).into()));
                m.push(("bc", (*bc).into()));
                m.push(("reason", abort_reason_name(*reason).into()));
                if let AbortReason::Check(kind) = reason {
                    m.push(("check", check_name(*kind).into()));
                }
                m.push(("scope", scope.as_str().into()));
                m.push(("attempt", (*attempt).into()));
                m.push(("word_addr", word_addr.map_or(JsonValue::Null, Into::into)));
                m.push(("line", line.map_or(JsonValue::Null, Into::into)));
                m.push(("set", set.map_or(JsonValue::Null, Into::into)));
                m.push(("set_ways", (*set_ways).into()));
                if *read_fault {
                    m.push(("read_fault", true.into()));
                }
                m.push(("write_lines", (*write_lines).into()));
                m.push(("write_bytes", (*write_bytes).into()));
                m.push(("read_lines", (*read_lines).into()));
                m.push(("read_bytes", (*read_bytes).into()));
                m.push(("instructions", (*instructions).into()));
            }
            TraceEvent::LadderStep { func, name, from, to, saw_call } => {
                m.push(("func", (*func).into()));
                m.push(("name", name.as_str().into()));
                m.push(("from", from.as_str().into()));
                m.push(("to", to.as_str().into()));
                m.push(("saw_call", (*saw_call).into()));
            }
            TraceEvent::Recompile { func, name, check_aborts } => {
                m.push(("func", (*func).into()));
                m.push(("name", name.as_str().into()));
                m.push(("check_aborts", (*check_aborts).into()));
            }
            TraceEvent::Verify { func, name, stages, diagnostics, clean, seeded_scope } => {
                m.push(("func", (*func).into()));
                m.push(("name", name.as_str().into()));
                m.push(("stages", (*stages).into()));
                m.push(("diagnostics", (*diagnostics).into()));
                m.push(("clean", (*clean).into()));
                match seeded_scope {
                    Some(s) => m.push(("seeded_scope", s.as_str().into())),
                    None => m.push(("seeded_scope", JsonValue::Null)),
                }
            }
            TraceEvent::CycleRegion { func, name, tier, region, cycles } => {
                m.push(("func", (*func).into()));
                m.push(("name", name.as_str().into()));
                m.push(("tier", tier_name(*tier).into()));
                m.push(("region", region.as_str().into()));
                m.push(("region_cycles", (*cycles).into()));
            }
            TraceEvent::PassOutcome {
                func,
                name,
                transactions_placed,
                checks_to_aborts,
                bounds_combined,
                overflow_removed,
            } => {
                m.push(("func", (*func).into()));
                m.push(("name", name.as_str().into()));
                m.push(("transactions_placed", (*transactions_placed).into()));
                m.push(("checks_to_aborts", (*checks_to_aborts).into()));
                m.push(("bounds_combined", (*bounds_combined).into()));
                m.push(("overflow_removed", (*overflow_removed).into()));
            }
            TraceEvent::CheckVerdict {
                func,
                name,
                tier,
                proved_safe,
                proved_fail,
                unknown,
                elided,
            } => {
                m.push(("func", (*func).into()));
                m.push(("name", name.as_str().into()));
                m.push(("tier", tier_name(*tier).into()));
                m.push(("proved_safe", (*proved_safe).into()));
                m.push(("proved_fail", (*proved_fail).into()));
                m.push(("unknown", (*unknown).into()));
                m.push(("elided", (*elided).into()));
            }
            TraceEvent::FleetSummary {
                jobs,
                shards,
                failed,
                retried,
                wall_ns,
                peak_occupancy,
                shard_wall_ns,
            } => {
                m.push(("jobs", (*jobs).into()));
                m.push(("shards", (*shards).into()));
                m.push(("failed", (*failed).into()));
                m.push(("retried", (*retried).into()));
                m.push(("wall_ns", (*wall_ns).into()));
                m.push(("peak_occupancy", (*peak_occupancy).into()));
                m.push((
                    "shard_wall_ns",
                    JsonValue::Array(shard_wall_ns.iter().map(|&ns| ns.into()).collect()),
                ));
            }
            TraceEvent::HostSpan { path, count, wall_ns, allocs, alloc_bytes } => {
                m.push(("path", path.as_str().into()));
                m.push(("count", (*count).into()));
                m.push(("wall_ns", (*wall_ns).into()));
                m.push(("allocs", (*allocs).into()));
                m.push(("alloc_bytes", (*alloc_bytes).into()));
            }
        }
        obj(m)
    }

    /// One-line human rendering for the `nomap trace` timeline.
    pub fn render(&self, seq: u64, cycles: u64) -> String {
        let body = match self {
            TraceEvent::TierUp { name, tier, code_len, scope, txn_callee, .. } => {
                let variant = if *txn_callee { " (txn-callee)" } else { "" };
                match scope {
                    Some(s) => format!(
                        "tier-up      {name} → {}{variant}  [{code_len} insts, scope {s}]",
                        tier_name(*tier)
                    ),
                    None => format!(
                        "tier-up      {name} → {}{variant}  [{code_len} insts]",
                        tier_name(*tier)
                    ),
                }
            }
            TraceEvent::Deopt { name, smp, bc, kind, .. } => {
                format!("deopt        {name} smp#{smp} → bc {bc}  [{} check]", check_name(*kind))
            }
            TraceEvent::TxBegin { name, .. } => format!("tx-begin     {name}"),
            TraceEvent::TxCommit {
                footprint_bytes,
                read_footprint_bytes,
                max_assoc,
                instructions,
                ..
            } => {
                let reads = if *read_footprint_bytes > 0 {
                    format!(", {read_footprint_bytes} B read")
                } else {
                    String::new()
                };
                format!(
                    "tx-commit    {instructions} insts, {footprint_bytes} B written{reads}, assoc {max_assoc}"
                )
            }
            TraceEvent::TxAbort { reason, footprint_bytes, undone_words, instructions, .. } => {
                let why = match reason {
                    AbortReason::Check(kind) => format!("check:{}", check_name(*kind)),
                    other => abort_reason_name(*other).to_owned(),
                };
                format!(
                    "tx-abort     {why}  [{instructions} insts, {footprint_bytes} B footprint, {undone_words} words undone]"
                )
            }
            TraceEvent::TxAbortBlame {
                name,
                tier,
                bc,
                reason,
                scope,
                attempt,
                set,
                set_ways,
                read_fault,
                write_lines,
                write_bytes,
                read_lines,
                read_bytes,
                ..
            } => {
                let why = match reason {
                    AbortReason::Check(kind) => format!("check:{}", check_name(*kind)),
                    other => abort_reason_name(*other).to_owned(),
                };
                let site = match set {
                    Some(s) => {
                        let rw = if *read_fault { "rd" } else { "wr" };
                        format!("{rw} set {s} ways {set_ways}, ")
                    }
                    None => String::new(),
                };
                format!(
                    "blame        {name}@{}:{bc} {why} #{attempt} [{scope}]  [{site}w {write_lines}L/{write_bytes}B, r {read_lines}L/{read_bytes}B]",
                    tier_name(*tier)
                )
            }
            TraceEvent::LadderStep { name, from, to, saw_call, .. } => {
                let call = if *saw_call { ", saw call" } else { "" };
                format!("ladder       {name}: {from} → {to}{call}")
            }
            TraceEvent::Recompile { name, check_aborts, .. } => {
                format!("recompile    {name} after {check_aborts} check aborts")
            }
            TraceEvent::Verify { name, stages, diagnostics, clean, seeded_scope, .. } => {
                let verdict = if *clean { "clean" } else { "DIRTY" };
                let seeded = match seeded_scope {
                    Some(s) => format!(", seeded {s}"),
                    None => String::new(),
                };
                format!(
                    "verify       {name}: {verdict}  [{stages} stages, {diagnostics} findings{seeded}]"
                )
            }
            TraceEvent::CycleRegion { name, tier, region, cycles, .. } => {
                format!("cycles       {name} [{}/{region}]  {cycles}", tier_name(*tier))
            }
            TraceEvent::PassOutcome {
                name,
                transactions_placed,
                checks_to_aborts,
                bounds_combined,
                overflow_removed,
                ..
            } => format!(
                "passes       {name}: {transactions_placed} txns, {checks_to_aborts} checks→aborts, {bounds_combined} bounds combined, {overflow_removed} overflow removed"
            ),
            TraceEvent::CheckVerdict {
                name,
                tier,
                proved_safe,
                proved_fail,
                unknown,
                elided,
                ..
            } => format!(
                "prove        {name} [{}]: {proved_safe} safe, {proved_fail} fail, {unknown} unknown, {elided} elided",
                tier_name(*tier)
            ),
            TraceEvent::FleetSummary {
                jobs,
                shards,
                failed,
                retried,
                wall_ns,
                peak_occupancy,
                ..
            } => format!(
                "fleet        {shards} shards / {jobs} jobs  [{:.1} ms, peak occupancy {peak_occupancy}, {retried} retried, {failed} failed]",
                *wall_ns as f64 / 1e6
            ),
            TraceEvent::HostSpan { path, count, wall_ns, allocs, alloc_bytes } => format!(
                "host-span    {path}  [{count}×, {:.3} ms, {allocs} allocs / {alloc_bytes} B]",
                *wall_ns as f64 / 1e6
            ),
        };
        format!("[{seq:>5}] @{cycles:<12} {body}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_envelope_has_schema_and_kind() {
        let ev = TraceEvent::TxAbort {
            func: Some(3),
            reason: AbortReason::Check(CheckKind::Bounds),
            footprint_bytes: 128,
            undone_words: 4,
            instructions: 77,
        };
        let s = ev.to_json(9, 1234).render();
        assert!(s.starts_with(&format!(
            "{{\"v\":{SCHEMA_VERSION},\"seq\":9,\"cycles\":1234,\"ev\":\"tx-abort\""
        )));
        assert!(s.contains("\"reason\":\"check\""));
        assert!(s.contains("\"check\":\"bounds\""));
        assert!(s.contains("\"footprint_bytes\":128"));
    }

    #[test]
    fn tx_commit_serializes_read_footprint() {
        let ev = TraceEvent::TxCommit {
            func: 1,
            footprint_bytes: 256,
            read_footprint_bytes: 512,
            max_assoc: 2,
            instructions: 90,
        };
        let s = ev.to_json(0, 10).render();
        assert!(s.contains("\"footprint_bytes\":256"));
        assert!(s.contains("\"read_footprint_bytes\":512"));
        let line = ev.render(0, 10);
        assert!(line.contains("256 B written") && line.contains("512 B read"));
    }

    #[test]
    fn tx_abort_blame_serializes_and_renders() {
        let ev = TraceEvent::TxAbortBlame {
            func: Some(3),
            name: "smash".into(),
            tier: Tier::Ftl,
            bc: 12,
            reason: AbortReason::Capacity,
            scope: "Nest".into(),
            attempt: 2,
            word_addr: Some(0x4000),
            line: Some(0x800),
            set: Some(17),
            set_ways: 9,
            read_fault: false,
            write_lines: 9,
            write_bytes: 576,
            read_lines: 0,
            read_bytes: 0,
            instructions: 4321,
        };
        assert_eq!(ev.kind(), "tx-abort-blame");
        let s = ev.to_json(5, 777).render();
        assert!(s.contains("\"ev\":\"tx-abort-blame\""));
        assert!(s.contains("\"name\":\"smash\""));
        assert!(s.contains("\"tier\":\"ftl\""));
        assert!(s.contains("\"bc\":12"));
        assert!(s.contains("\"reason\":\"capacity\""));
        assert!(s.contains("\"scope\":\"Nest\""));
        assert!(s.contains("\"attempt\":2"));
        assert!(s.contains("\"word_addr\":16384"));
        assert!(s.contains("\"set\":17"));
        assert!(s.contains("\"set_ways\":9"));
        assert!(s.contains("\"write_lines\":9"));
        assert!(s.contains("\"write_bytes\":576"));
        assert!(!s.contains("\"read_fault\""), "write faults omit the read_fault flag");
        let line = ev.render(5, 777);
        assert!(line.contains("smash@ftl:12 capacity #2 [Nest]"));
        assert!(line.contains("wr set 17 ways 9"));
    }

    #[test]
    fn tx_abort_blame_without_fault_site_serializes_nulls() {
        let ev = TraceEvent::TxAbortBlame {
            func: None,
            name: "«other»".into(),
            tier: Tier::Baseline,
            bc: 0,
            reason: AbortReason::Check(CheckKind::Type),
            scope: "None".into(),
            attempt: 1,
            word_addr: None,
            line: None,
            set: None,
            set_ways: 0,
            read_fault: false,
            write_lines: 2,
            write_bytes: 128,
            read_lines: 0,
            read_bytes: 0,
            instructions: 10,
        };
        let s = ev.to_json(0, 0).render();
        assert!(s.contains("\"func\":null"));
        assert!(s.contains("\"word_addr\":null"));
        assert!(s.contains("\"set\":null"));
        assert!(s.contains("\"reason\":\"check\""));
        assert!(s.contains("\"check\":\"type\""));
        let line = ev.render(0, 0);
        assert!(line.contains("check:type #1"));
        assert!(!line.contains("set "), "no fault site to render");
    }

    #[test]
    fn name_tables_delegate_to_machine() {
        for kind in CheckKind::ALL {
            assert_eq!(check_name(kind), nomap_machine::check_kind_key(kind));
        }
        for reason in [
            AbortReason::Check(CheckKind::Bounds),
            AbortReason::Capacity,
            AbortReason::StickyOverflow,
        ] {
            assert_eq!(abort_reason_name(reason), nomap_machine::abort_reason_class(reason));
        }
    }

    #[test]
    fn verify_event_serializes_and_renders() {
        let ev = TraceEvent::Verify {
            func: 4,
            name: "hot".into(),
            stages: 17,
            diagnostics: 1,
            clean: true,
            seeded_scope: Some("InnerTiled(64)".into()),
        };
        assert_eq!(ev.kind(), "verify");
        let s = ev.to_json(2, 50).render();
        assert!(s.contains("\"ev\":\"verify\""));
        assert!(s.contains("\"stages\":17"));
        assert!(s.contains("\"clean\":true"));
        assert!(s.contains("\"seeded_scope\":\"InnerTiled(64)\""));
        let line = ev.render(2, 50);
        assert!(line.contains("hot: clean") && line.contains("seeded InnerTiled(64)"));
    }

    #[test]
    fn cycle_region_serializes_and_renders() {
        let ev = TraceEvent::CycleRegion {
            func: 7,
            name: "smash".into(),
            tier: Tier::Ftl,
            region: "txn-body".into(),
            cycles: 123456,
        };
        assert_eq!(ev.kind(), "cycle-region");
        let s = ev.to_json(0, 999).render();
        assert!(s.contains("\"ev\":\"cycle-region\""));
        assert!(s.contains("\"tier\":\"ftl\""));
        assert!(s.contains("\"region\":\"txn-body\""));
        assert!(s.contains("\"region_cycles\":123456"));
        let line = ev.render(0, 999);
        assert!(line.contains("smash") && line.contains("ftl/txn-body") && line.contains("123456"));
    }

    #[test]
    fn check_verdict_serializes_and_renders() {
        let ev = TraceEvent::CheckVerdict {
            func: 5,
            name: "sum".into(),
            tier: Tier::Dfg,
            proved_safe: 2,
            proved_fail: 0,
            unknown: 3,
            elided: 2,
        };
        assert_eq!(ev.kind(), "check-verdict");
        let s = ev.to_json(1, 42).render();
        assert!(s.contains("\"ev\":\"check-verdict\""));
        assert!(s.contains("\"tier\":\"dfg\""));
        assert!(s.contains("\"proved_safe\":2"));
        assert!(s.contains("\"unknown\":3"));
        assert!(s.contains("\"elided\":2"));
        let line = ev.render(1, 42);
        assert!(line.contains("sum [dfg]") && line.contains("2 elided"));
    }

    #[test]
    fn fleet_summary_serializes_and_renders() {
        let ev = TraceEvent::FleetSummary {
            jobs: 4,
            shards: 51,
            failed: 1,
            retried: 2,
            wall_ns: 5_000_000,
            peak_occupancy: 4,
            shard_wall_ns: vec![1_000, 2_000],
        };
        assert_eq!(ev.kind(), "fleet-summary");
        let s = ev.to_json(0, 0).render();
        assert!(s.contains("\"ev\":\"fleet-summary\""));
        assert!(s.contains("\"jobs\":4"));
        assert!(s.contains("\"shards\":51"));
        assert!(s.contains("\"peak_occupancy\":4"));
        assert!(s.contains("\"shard_wall_ns\":[1000,2000]"));
        let line = ev.render(0, 0);
        assert!(line.contains("51 shards / 4 jobs") && line.contains("1 failed"));
    }

    #[test]
    fn host_span_serializes_and_renders() {
        let ev = TraceEvent::HostSpan {
            path: "workload:S01/compile:ftl/pass:gvn".into(),
            count: 3,
            wall_ns: 2_500_000,
            allocs: 120,
            alloc_bytes: 65536,
        };
        assert_eq!(ev.kind(), "host-span");
        let s = ev.to_json(0, 0).render();
        assert!(s.contains("\"ev\":\"host-span\""));
        assert!(s.contains("\"path\":\"workload:S01/compile:ftl/pass:gvn\""));
        assert!(s.contains("\"wall_ns\":2500000"));
        assert!(s.contains("\"allocs\":120"));
        assert!(s.contains("\"alloc_bytes\":65536"));
        let line = ev.render(0, 0);
        assert!(line.contains("host-span") && line.contains("120 allocs / 65536 B"));
        assert!(line.contains("2.500 ms"));
    }

    #[test]
    fn render_is_one_line() {
        let ev = TraceEvent::TierUp {
            func: 0,
            name: "run".into(),
            tier: Tier::Ftl,
            code_len: 42,
            scope: Some("Nest".into()),
            txn_callee: false,
        };
        let line = ev.render(1, 10);
        assert!(!line.contains('\n'));
        assert!(line.contains("run → ftl"));
    }
}
