//! Aggregated metrics derived from the event stream.
//!
//! Where the event sinks answer "what happened, in order", the metrics
//! registry answers "how much, overall": event counts, per-reason abort
//! breakdowns, transaction write-footprint and length distributions, and
//! per-function tier-residency instruction counts. Like
//! `nomap_machine::ExecStats`, everything merges, so per-shard registries
//! can be combined into one report.

use std::collections::BTreeMap;

use nomap_machine::Tier;

use crate::event::{tier_name, TraceEvent};
use crate::json::{obj, JsonValue};

/// Power-of-two-bucketed histogram over `u64` samples.
///
/// Bucket `i` holds samples whose value needs `i` bits (bucket 0 is the
/// value 0, bucket 1 is 1, bucket 2 is 2–3, bucket 3 is 4–7, …), which is
/// plenty of resolution for footprints and instruction counts while keeping
/// the histogram fixed-size and trivially mergeable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    buckets: [u64; 65],
    /// Total samples recorded.
    pub count: u64,
    /// Sum of all samples.
    pub sum: u64,
    /// Largest sample seen.
    pub max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram { buckets: [0; 65], count: 0, sum: 0, max: 0 }
    }
}

fn bucket_of(value: u64) -> usize {
    (64 - value.leading_zeros()) as usize
}

/// Inclusive value range covered by bucket `i`.
fn bucket_range(i: usize) -> (u64, u64) {
    match i {
        0 => (0, 0),
        _ => (1u64 << (i - 1), (1u64 << (i - 1)) | ((1u64 << (i - 1)) - 1)),
    }
}

impl Histogram {
    /// Empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one sample. Tallies saturate rather than overflow: a fleet
    /// run folding many shards must never panic in debug builds while
    /// silently wrapping in release.
    pub fn record(&mut self, value: u64) {
        let b = &mut self.buckets[bucket_of(value)];
        *b = b.saturating_add(1);
        self.count = self.count.saturating_add(1);
        self.sum = self.sum.saturating_add(value);
        self.max = self.max.max(value);
    }

    /// Folds another histogram into this one. Saturating, like
    /// [`Histogram::record`].
    pub fn merge(&mut self, other: &Histogram) {
        for (b, o) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b = b.saturating_add(*o);
        }
        self.count = self.count.saturating_add(other.count);
        self.sum = self.sum.saturating_add(other.sum);
        self.max = self.max.max(other.max);
    }

    /// Approximate `p`-th percentile (0.0..=1.0) from the power-of-two
    /// sketch: the upper bound of the bucket containing the `p`-th sample.
    /// Exact to within one power of two — plenty for "p90 footprint"
    /// reporting — and mergeable, unlike a sorted-sample quantile.
    pub fn percentile(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((p.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                let (_, hi) = bucket_range(i);
                return hi.min(self.max);
            }
        }
        self.max
    }

    /// Mean sample value (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Non-empty buckets as `(low, high, count)` ranges, ascending.
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, n)| **n > 0)
            .map(|(i, n)| {
                let (lo, hi) = bucket_range(i);
                (lo, hi, *n)
            })
            .collect()
    }

    /// Compact single-line rendering, e.g. `n=12 mean=96.0 max=512 [64..127:9 512..1023:3]`.
    pub fn summary(&self) -> String {
        let ranges: Vec<String> = self
            .nonzero_buckets()
            .iter()
            .map(
                |(lo, hi, n)| {
                    if lo == hi {
                        format!("{lo}:{n}")
                    } else {
                        format!("{lo}..{hi}:{n}")
                    }
                },
            )
            .collect();
        format!("n={} mean={:.1} max={} [{}]", self.count, self.mean(), self.max, ranges.join(" "))
    }

    /// JSON object with count/sum/max/mean and the non-empty buckets.
    pub fn to_json(&self) -> JsonValue {
        let buckets = self
            .nonzero_buckets()
            .into_iter()
            .map(|(lo, hi, n)| obj(vec![("lo", lo.into()), ("hi", hi.into()), ("count", n.into())]))
            .collect();
        obj(vec![
            ("count", self.count.into()),
            ("sum", self.sum.into()),
            ("max", self.max.into()),
            ("mean", self.mean().into()),
            ("buckets", JsonValue::Array(buckets)),
        ])
    }
}

/// Per-function instruction counts by tier (the tier-residency profile:
/// where does each function's dynamic execution actually happen?).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TierResidency {
    insts: [u64; 5],
}

fn tier_index(tier: Tier) -> usize {
    match tier {
        Tier::Interpreter => 0,
        Tier::Baseline => 1,
        Tier::Dfg => 2,
        Tier::Ftl => 3,
        Tier::Runtime => 4,
    }
}

const TIER_ORDER: [Tier; 5] =
    [Tier::Interpreter, Tier::Baseline, Tier::Dfg, Tier::Ftl, Tier::Runtime];

impl TierResidency {
    /// Instructions retired in `tier`.
    pub fn get(&self, tier: Tier) -> u64 {
        self.insts[tier_index(tier)]
    }

    /// Total instructions across all tiers.
    pub fn total(&self) -> u64 {
        self.insts.iter().sum()
    }
}

/// The mergeable metrics registry fed by the tracer.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Metrics {
    /// Events seen, keyed by `TraceEvent::kind()`.
    pub counters: BTreeMap<String, u64>,
    /// Transaction aborts keyed by reason (`check:bounds`, `capacity`,
    /// `sticky-overflow`, …).
    pub aborts_by_reason: BTreeMap<String, u64>,
    /// Write footprint (bytes) of committed transactions.
    pub commit_footprint: Histogram,
    /// Read footprint (bytes) of committed transactions (schema v7;
    /// nonzero only when the HTM bounds reads, i.e. RTM).
    pub commit_read_footprint: Histogram,
    /// Dynamic instructions per committed transaction.
    pub commit_instructions: Histogram,
    /// Write footprint (bytes) of aborted transactions at the abort point.
    pub abort_footprint: Histogram,
    /// Read footprint (bytes) of aborted transactions at the abort point
    /// (from `tx-abort-blame` events; RTM only).
    pub abort_read_footprint: Histogram,
    /// Capacity aborts keyed by owner function × victim-set pressure
    /// (`<name>/ways:<n>` — how many speculative lines the overflowed set
    /// was asked to hold). Fed by `tx-abort-blame` events with a fault
    /// site.
    pub abort_set_pressure: BTreeMap<String, u64>,
    /// Per-function tier-residency instruction counts, keyed by function
    /// name. Fed by the VM (not derivable from lifecycle events alone).
    pub residency: BTreeMap<String, TierResidency>,
    /// Attributed cycles from `cycle-region` events (schema v3), keyed by
    /// `function/tier/region`, e.g. `smash/ftl/txn-body`.
    pub cycles_by_region: BTreeMap<String, u64>,
    /// Dynamic opcode execution counts from the interpreter census, keyed
    /// by opcode kind name (e.g. `get-index`). Fed by the VM when the
    /// census is enabled; empty otherwise.
    pub opcodes: BTreeMap<String, u64>,
    /// Dynamic statically-adjacent opcode-pair counts from the census,
    /// keyed `prev>cur` (e.g. `binary>put-index`). These rank
    /// superinstruction candidates.
    pub digrams: BTreeMap<String, u64>,
}

impl Metrics {
    /// Empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Increments a named counter.
    pub fn bump(&mut self, key: &str) {
        *self.counters.entry(key.to_owned()).or_insert(0) += 1;
    }

    /// Updates the registry from one event. Called by the tracer on emit.
    pub fn observe(&mut self, event: &TraceEvent) {
        self.bump(event.kind());
        match event {
            TraceEvent::TxCommit {
                footprint_bytes, read_footprint_bytes, instructions, ..
            } => {
                self.commit_footprint.record(*footprint_bytes);
                self.commit_read_footprint.record(*read_footprint_bytes);
                self.commit_instructions.record(*instructions);
            }
            TraceEvent::TxAbort { reason, footprint_bytes, .. } => {
                let key = nomap_machine::abort_reason_key(*reason);
                *self.aborts_by_reason.entry(key).or_insert(0) += 1;
                self.abort_footprint.record(*footprint_bytes);
            }
            TraceEvent::TxAbortBlame { name, set, set_ways, read_bytes, .. } => {
                self.abort_read_footprint.record(*read_bytes);
                if set.is_some() {
                    let key = format!("{name}/ways:{set_ways}");
                    let c = self.abort_set_pressure.entry(key).or_insert(0);
                    *c = c.saturating_add(1);
                }
            }
            TraceEvent::CycleRegion { name, tier, region, cycles, .. } => {
                let key = format!("{name}/{}/{region}", tier_name(*tier));
                *self.cycles_by_region.entry(key).or_insert(0) += cycles;
            }
            _ => {}
        }
    }

    /// Credits `insts` retired instructions in `tier` to function `name`.
    pub fn record_residency(&mut self, name: &str, tier: Tier, insts: u64) {
        if insts == 0 {
            return;
        }
        let entry = self.residency.entry(name.to_owned()).or_default();
        entry.insts[tier_index(tier)] += insts;
    }

    /// Credits `n` dynamic executions to opcode kind `name`.
    pub fn record_opcode(&mut self, name: &str, n: u64) {
        if n == 0 {
            return;
        }
        let c = self.opcodes.entry(name.to_owned()).or_insert(0);
        *c = c.saturating_add(n);
    }

    /// Credits `n` dynamic executions to the statically-adjacent opcode
    /// pair `prev` → `cur`.
    pub fn record_digram(&mut self, prev: &str, cur: &str, n: u64) {
        if n == 0 {
            return;
        }
        let c = self.digrams.entry(format!("{prev}>{cur}")).or_insert(0);
        *c = c.saturating_add(n);
    }

    /// Folds another registry into this one (counters add, histograms
    /// merge, residency sums per function and tier). All counter sums
    /// saturate so an arbitrarily long fleet run cannot overflow-panic.
    pub fn merge(&mut self, other: &Metrics) {
        for (k, v) in &other.counters {
            let c = self.counters.entry(k.clone()).or_insert(0);
            *c = c.saturating_add(*v);
        }
        for (k, v) in &other.aborts_by_reason {
            let c = self.aborts_by_reason.entry(k.clone()).or_insert(0);
            *c = c.saturating_add(*v);
        }
        self.commit_footprint.merge(&other.commit_footprint);
        self.commit_read_footprint.merge(&other.commit_read_footprint);
        self.commit_instructions.merge(&other.commit_instructions);
        self.abort_footprint.merge(&other.abort_footprint);
        self.abort_read_footprint.merge(&other.abort_read_footprint);
        for (k, v) in &other.abort_set_pressure {
            let c = self.abort_set_pressure.entry(k.clone()).or_insert(0);
            *c = c.saturating_add(*v);
        }
        for (name, res) in &other.residency {
            let entry = self.residency.entry(name.clone()).or_default();
            for (a, b) in entry.insts.iter_mut().zip(res.insts.iter()) {
                *a = a.saturating_add(*b);
            }
        }
        for (k, v) in &other.cycles_by_region {
            let c = self.cycles_by_region.entry(k.clone()).or_insert(0);
            *c = c.saturating_add(*v);
        }
        for (k, v) in &other.opcodes {
            let c = self.opcodes.entry(k.clone()).or_insert(0);
            *c = c.saturating_add(*v);
        }
        for (k, v) in &other.digrams {
            let c = self.digrams.entry(k.clone()).or_insert(0);
            *c = c.saturating_add(*v);
        }
    }

    /// Multi-line human-readable summary (the `nomap trace` summary table).
    pub fn summary(&self) -> String {
        let mut out = String::new();
        out.push_str("event counts:\n");
        for (k, v) in &self.counters {
            out.push_str(&format!("  {k:<14} {v}\n"));
        }
        if !self.aborts_by_reason.is_empty() {
            out.push_str("aborts by reason:\n");
            for (k, v) in &self.aborts_by_reason {
                out.push_str(&format!("  {k:<20} {v}\n"));
            }
        }
        if self.commit_footprint.count > 0 {
            out.push_str(&format!(
                "commit footprint (bytes): {}\n",
                self.commit_footprint.summary()
            ));
            if self.commit_read_footprint.max > 0 {
                out.push_str(&format!(
                    "commit read foot (bytes): {}\n",
                    self.commit_read_footprint.summary()
                ));
            }
            out.push_str(&format!(
                "commit length (insts):    {}\n",
                self.commit_instructions.summary()
            ));
        }
        if self.abort_footprint.count > 0 {
            out.push_str(&format!(
                "abort footprint (bytes):  {}\n",
                self.abort_footprint.summary()
            ));
        }
        if self.abort_read_footprint.max > 0 {
            out.push_str(&format!(
                "abort read foot (bytes):  {}\n",
                self.abort_read_footprint.summary()
            ));
        }
        if !self.abort_set_pressure.is_empty() {
            out.push_str("capacity aborts by set pressure:\n");
            for (k, v) in &self.abort_set_pressure {
                out.push_str(&format!("  {k:<28} {v}\n"));
            }
        }
        if !self.cycles_by_region.is_empty() {
            out.push_str("attributed cycles by region:\n");
            for (k, v) in &self.cycles_by_region {
                out.push_str(&format!("  {k:<36} {v}\n"));
            }
        }
        if !self.opcodes.is_empty() {
            out.push_str("opcode census (dynamic counts):\n");
            let mut ops: Vec<(&String, &u64)> = self.opcodes.iter().collect();
            ops.sort_by(|a, b| b.1.cmp(a.1).then_with(|| a.0.cmp(b.0)));
            for (k, v) in ops {
                out.push_str(&format!("  {k:<20} {v}\n"));
            }
        }
        if !self.digrams.is_empty() {
            out.push_str("digram census (dynamic counts, statically adjacent):\n");
            let mut digs: Vec<(&String, &u64)> = self.digrams.iter().collect();
            digs.sort_by(|a, b| b.1.cmp(a.1).then_with(|| a.0.cmp(b.0)));
            for (k, v) in digs {
                out.push_str(&format!("  {k:<36} {v}\n"));
            }
        }
        if !self.residency.is_empty() {
            out.push_str("tier residency (insts by function):\n");
            out.push_str(&format!(
                "  {:<18} {:>12} {:>12} {:>12} {:>12} {:>12}\n",
                "function", "interp", "baseline", "dfg", "ftl", "runtime"
            ));
            for (name, res) in &self.residency {
                out.push_str(&format!(
                    "  {:<18} {:>12} {:>12} {:>12} {:>12} {:>12}\n",
                    name,
                    res.get(Tier::Interpreter),
                    res.get(Tier::Baseline),
                    res.get(Tier::Dfg),
                    res.get(Tier::Ftl),
                    res.get(Tier::Runtime),
                ));
            }
        }
        out
    }

    /// JSON rendering of the full registry.
    pub fn to_json(&self) -> JsonValue {
        let counters =
            self.counters.iter().map(|(k, v)| (k.clone(), JsonValue::from(*v))).collect();
        let aborts =
            self.aborts_by_reason.iter().map(|(k, v)| (k.clone(), JsonValue::from(*v))).collect();
        let residency = self
            .residency
            .iter()
            .map(|(name, res)| {
                let tiers = TIER_ORDER
                    .iter()
                    .map(|t| (tier_name(*t).to_owned(), JsonValue::from(res.get(*t))))
                    .collect();
                (name.clone(), JsonValue::Object(tiers))
            })
            .collect();
        let regions =
            self.cycles_by_region.iter().map(|(k, v)| (k.clone(), JsonValue::from(*v))).collect();
        let opcodes = self.opcodes.iter().map(|(k, v)| (k.clone(), JsonValue::from(*v))).collect();
        let digrams = self.digrams.iter().map(|(k, v)| (k.clone(), JsonValue::from(*v))).collect();
        let set_pressure =
            self.abort_set_pressure.iter().map(|(k, v)| (k.clone(), JsonValue::from(*v))).collect();
        obj(vec![
            ("counters", JsonValue::Object(counters)),
            ("aborts_by_reason", JsonValue::Object(aborts)),
            ("commit_footprint", self.commit_footprint.to_json()),
            ("commit_read_footprint", self.commit_read_footprint.to_json()),
            ("commit_instructions", self.commit_instructions.to_json()),
            ("abort_footprint", self.abort_footprint.to_json()),
            ("abort_read_footprint", self.abort_read_footprint.to_json()),
            ("abort_set_pressure", JsonValue::Object(set_pressure)),
            ("tier_residency", JsonValue::Object(residency)),
            ("cycles_by_region", JsonValue::Object(regions)),
            ("opcodes", JsonValue::Object(opcodes)),
            ("digrams", JsonValue::Object(digrams)),
        ])
    }
}

#[cfg(test)]
mod tests {
    use nomap_machine::{AbortReason, CheckKind};

    use super::*;

    #[test]
    fn histogram_buckets_powers_of_two() {
        let mut h = Histogram::new();
        for v in [0, 1, 2, 3, 4, 7, 8, 1024] {
            h.record(v);
        }
        assert_eq!(h.count, 8);
        assert_eq!(h.max, 1024);
        let buckets = h.nonzero_buckets();
        assert!(buckets.contains(&(0, 0, 1)));
        assert!(buckets.contains(&(2, 3, 2)));
        assert!(buckets.contains(&(4, 7, 2)));
        assert!(buckets.contains(&(1024, 2047, 1)));
    }

    #[test]
    fn histogram_merge_matches_direct_recording() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut direct = Histogram::new();
        for v in [3, 9, 200] {
            a.record(v);
            direct.record(v);
        }
        for v in [0, 9, 4096] {
            b.record(v);
            direct.record(v);
        }
        a.merge(&b);
        assert_eq!(a, direct);
        assert_eq!(a.mean(), direct.mean());
    }

    #[test]
    fn merges_saturate_at_u64_max_instead_of_panicking() {
        // Histogram: counters pinned at the ceiling must absorb further
        // samples and merges without overflow.
        let mut h = Histogram::new();
        h.record(u64::MAX);
        h.count = u64::MAX;
        h.sum = u64::MAX;
        let snapshot = h.clone();
        h.record(u64::MAX);
        assert_eq!(h.count, u64::MAX);
        assert_eq!(h.sum, u64::MAX);
        assert_eq!(h.max, u64::MAX);
        h.merge(&snapshot);
        assert_eq!(h.count, u64::MAX);
        assert_eq!(h.sum, u64::MAX);

        // Metrics: counter maps and residency at the ceiling.
        let mut m = Metrics::new();
        m.counters.insert("tier-up".into(), u64::MAX);
        m.aborts_by_reason.insert("capacity".into(), u64::MAX);
        m.cycles_by_region.insert("f/ftl/main".into(), u64::MAX);
        m.record_residency("f", Tier::Ftl, u64::MAX);
        let other = m.clone();
        m.merge(&other);
        assert_eq!(m.counters["tier-up"], u64::MAX);
        assert_eq!(m.aborts_by_reason["capacity"], u64::MAX);
        assert_eq!(m.cycles_by_region["f/ftl/main"], u64::MAX);
        assert_eq!(m.residency["f"].get(Tier::Ftl), u64::MAX);
    }

    #[test]
    fn percentile_walks_the_sketch() {
        let mut h = Histogram::new();
        for v in 1..=100u64 {
            h.record(v);
        }
        assert_eq!(Histogram::new().percentile(0.5), 0);
        // p50 of 1..=100 lands in the 32..63 bucket; the sketch reports the
        // bucket's upper bound.
        assert_eq!(h.percentile(0.5), 63);
        assert_eq!(h.percentile(1.0), 100); // capped at the observed max
        assert!(h.percentile(0.1) <= h.percentile(0.9));
    }

    #[test]
    fn cycle_region_events_aggregate_and_merge_commutatively() {
        let ev1 = TraceEvent::CycleRegion {
            func: 0,
            name: "smash".into(),
            tier: Tier::Ftl,
            region: "txn-body".into(),
            cycles: 100,
        };
        let ev2 = TraceEvent::CycleRegion {
            func: 0,
            name: "smash".into(),
            tier: Tier::Baseline,
            region: "txn-retry-ladder".into(),
            cycles: 40,
        };
        let mut a = Metrics::new();
        a.observe(&ev1);
        let mut b = Metrics::new();
        b.observe(&ev2);
        b.observe(&ev1);

        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba, "metrics merge must be commutative");
        assert_eq!(ab.cycles_by_region["smash/ftl/txn-body"], 200);
        assert_eq!(ab.cycles_by_region["smash/baseline/txn-retry-ladder"], 40);
        assert_eq!(ab.counters["cycle-region"], 3);
        assert!(ab.summary().contains("attributed cycles by region"));
    }

    #[test]
    fn opcode_and_digram_census_merges_commutatively_and_saturates() {
        let mut a = Metrics::new();
        a.record_opcode("get-index", 10);
        a.record_digram("binary", "put-index", 4);
        let mut b = Metrics::new();
        b.record_opcode("get-index", 5);
        b.record_opcode("mov", 1);
        b.record_digram("binary", "put-index", 2);

        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba, "census merge must be commutative");
        assert_eq!(ab.opcodes["get-index"], 15);
        assert_eq!(ab.opcodes["mov"], 1);
        assert_eq!(ab.digrams["binary>put-index"], 6);
        assert!(ab.summary().contains("opcode census"));
        assert!(ab.summary().contains("binary>put-index"));
        assert!(ab.to_json().render().contains("\"digrams\""));

        // Zero-count records are dropped; ceiling values saturate.
        let mut m = Metrics::new();
        m.record_opcode("mov", 0);
        assert!(m.opcodes.is_empty());
        m.record_opcode("mov", u64::MAX);
        m.record_opcode("mov", 7);
        assert_eq!(m.opcodes["mov"], u64::MAX);
    }

    #[test]
    fn merge_with_empty_is_identity_both_ways() {
        let mut m = Metrics::new();
        m.observe(&TraceEvent::TxCommit {
            func: 1,
            footprint_bytes: 64,
            read_footprint_bytes: 128,
            max_assoc: 2,
            instructions: 500,
        });
        m.observe(&TraceEvent::TxAbort {
            func: Some(1),
            reason: AbortReason::Capacity,
            footprint_bytes: 4096,
            undone_words: 100,
            instructions: 9000,
        });
        m.record_residency("run", Tier::Ftl, 12345);

        let snapshot = m.clone();
        m.merge(&Metrics::new());
        assert_eq!(m, snapshot, "merging an empty registry must be a no-op");

        let mut empty = Metrics::new();
        empty.merge(&snapshot);
        assert_eq!(empty, snapshot, "merging into an empty registry must copy");
    }

    fn blame(name: &str, set: Option<u64>, set_ways: u32, read_bytes: u64) -> TraceEvent {
        TraceEvent::TxAbortBlame {
            func: Some(0),
            name: name.into(),
            tier: Tier::Ftl,
            bc: 4,
            reason: AbortReason::Capacity,
            scope: "Nest".into(),
            attempt: 1,
            word_addr: set.map(|_| 0x1000),
            line: set.map(|_| 0x40),
            set,
            set_ways,
            read_fault: false,
            write_lines: 9,
            write_bytes: 576,
            read_lines: read_bytes / 64,
            read_bytes,
            instructions: 100,
        }
    }

    #[test]
    fn blame_events_feed_set_pressure_and_read_histograms() {
        let mut m = Metrics::new();
        m.observe(&blame("smash", Some(3), 9, 0));
        m.observe(&blame("smash", Some(7), 9, 0));
        m.observe(&blame("other", Some(3), 9, 1024));
        m.observe(&blame("snap", None, 0, 0)); // check abort: no fault site
        assert_eq!(m.counters["tx-abort-blame"], 4);
        assert_eq!(m.abort_set_pressure["smash/ways:9"], 2);
        assert_eq!(m.abort_set_pressure["other/ways:9"], 1);
        assert_eq!(m.abort_set_pressure.len(), 2, "no set-pressure entry without a fault site");
        assert_eq!(m.abort_read_footprint.count, 4);
        assert_eq!(m.abort_read_footprint.max, 1024);

        let mut other = Metrics::new();
        other.observe(&blame("smash", Some(3), 9, 0));
        let mut ab = m.clone();
        ab.merge(&other);
        let mut ba = other.clone();
        ba.merge(&m);
        assert_eq!(ab, ba, "blame metrics merge must be commutative");
        assert_eq!(ab.abort_set_pressure["smash/ways:9"], 3);
        assert!(ab.summary().contains("capacity aborts by set pressure"));
        assert!(ab.to_json().render().contains("\"abort_set_pressure\""));
    }

    #[test]
    fn merge_sums_counters_aborts_and_residency() {
        let mut a = Metrics::new();
        let mut b = Metrics::new();
        for _ in 0..3 {
            a.observe(&TraceEvent::TxAbort {
                func: Some(0),
                reason: AbortReason::Check(CheckKind::Bounds),
                footprint_bytes: 8,
                undone_words: 1,
                instructions: 10,
            });
        }
        b.observe(&TraceEvent::TxAbort {
            func: Some(0),
            reason: AbortReason::Check(CheckKind::Bounds),
            footprint_bytes: 16,
            undone_words: 2,
            instructions: 20,
        });
        b.observe(&TraceEvent::TxAbort {
            func: Some(0),
            reason: AbortReason::StickyOverflow,
            footprint_bytes: 0,
            undone_words: 0,
            instructions: 5,
        });
        a.record_residency("f", Tier::Interpreter, 100);
        b.record_residency("f", Tier::Interpreter, 11);
        b.record_residency("f", Tier::Ftl, 7);
        b.record_residency("g", Tier::Baseline, 2);

        a.merge(&b);
        assert_eq!(a.counters["tx-abort"], 5);
        assert_eq!(a.aborts_by_reason["check:bounds"], 4);
        assert_eq!(a.aborts_by_reason["sticky-overflow"], 1);
        assert_eq!(a.abort_footprint.count, 5);
        assert_eq!(a.residency["f"].get(Tier::Interpreter), 111);
        assert_eq!(a.residency["f"].get(Tier::Ftl), 7);
        assert_eq!(a.residency["g"].get(Tier::Baseline), 2);
        assert_eq!(a.residency["f"].total(), 118);
    }
}
