//! Minimal JSON writing helpers (no external crates). Only what the trace
//! sinks and the bench reports need: objects with string/number/bool
//! members, arrays, and correct string escaping.

use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Integer (emitted without a decimal point).
    Int(i64),
    /// Unsigned integer.
    UInt(u64),
    /// Finite float; NaN/infinities are emitted as `null` (JSON has no
    /// representation for them).
    Num(f64),
    /// String (escaped on emit).
    Str(String),
    /// Array.
    Array(Vec<JsonValue>),
    /// Object; member order is preserved.
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Serializes to a compact JSON string.
    pub fn render(&self) -> String {
        let mut s = String::new();
        self.write(&mut s);
        s
    }

    fn write(&self, out: &mut String) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            JsonValue::Int(v) => {
                let _ = write!(out, "{v}");
            }
            JsonValue::UInt(v) => {
                let _ = write!(out, "{v}");
            }
            JsonValue::Num(v) => {
                if v.is_finite() {
                    let _ = write!(out, "{v}");
                } else {
                    out.push_str("null");
                }
            }
            JsonValue::Str(s) => write_escaped(out, s),
            JsonValue::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            JsonValue::Object(members) => {
                out.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, k);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

impl From<&str> for JsonValue {
    fn from(s: &str) -> Self {
        JsonValue::Str(s.to_owned())
    }
}

impl From<String> for JsonValue {
    fn from(s: String) -> Self {
        JsonValue::Str(s)
    }
}

impl From<u64> for JsonValue {
    fn from(v: u64) -> Self {
        JsonValue::UInt(v)
    }
}

impl From<u32> for JsonValue {
    fn from(v: u32) -> Self {
        JsonValue::UInt(v as u64)
    }
}

impl From<usize> for JsonValue {
    fn from(v: usize) -> Self {
        JsonValue::UInt(v as u64)
    }
}

impl From<i64> for JsonValue {
    fn from(v: i64) -> Self {
        JsonValue::Int(v)
    }
}

impl From<f64> for JsonValue {
    fn from(v: f64) -> Self {
        JsonValue::Num(v)
    }
}

impl From<bool> for JsonValue {
    fn from(v: bool) -> Self {
        JsonValue::Bool(v)
    }
}

/// Builds an object from `(key, value)` pairs.
pub fn obj(members: Vec<(&str, JsonValue)>) -> JsonValue {
    JsonValue::Object(members.into_iter().map(|(k, v)| (k.to_owned(), v)).collect())
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_nested_structures() {
        let v = obj(vec![
            ("name", "abort \"now\"\n".into()),
            ("count", 3u64.into()),
            ("frac", JsonValue::Num(0.5)),
            ("flags", JsonValue::Array(vec![true.into(), JsonValue::Null])),
        ]);
        assert_eq!(
            v.render(),
            r#"{"name":"abort \"now\"\n","count":3,"frac":0.5,"flags":[true,null]}"#
        );
    }

    #[test]
    fn non_finite_floats_become_null() {
        assert_eq!(JsonValue::Num(f64::NAN).render(), "null");
        assert_eq!(JsonValue::Num(f64::INFINITY).render(), "null");
    }
}
