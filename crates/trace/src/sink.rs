//! Trace sinks: where emitted events go.
//!
//! Two built-in sinks cover the common cases — a bounded in-memory ring
//! buffer for post-hoc queries from tests and the CLI, and a JSON-Lines
//! writer for offline analysis. Custom sinks implement [`TraceSink`].

use std::io::Write;

use crate::event::TraceEvent;

/// A consumer of trace events. `seq` and `cycles` form the deterministic
/// envelope (emission order and the VM cycle counter at emission).
pub trait TraceSink {
    /// Called once per emitted event, in emission order.
    fn record(&mut self, seq: u64, cycles: u64, event: &TraceEvent);

    /// Flushes any buffered output. Called by `Tracer::flush` and on drop
    /// of the owning tracer where applicable.
    fn flush(&mut self) {}
}

/// An event plus its envelope, as retained by [`RingSink`].
#[derive(Debug, Clone, PartialEq)]
pub struct Recorded {
    /// Emission sequence number (0-based, monotonic).
    pub seq: u64,
    /// VM cycle counter when the event was emitted.
    pub cycles: u64,
    /// The event.
    pub event: TraceEvent,
}

/// Bounded in-memory buffer keeping the most recent events. When full, the
/// oldest event is dropped and [`RingSink::dropped`] is incremented, so a
/// long run cannot exhaust memory while the tail — usually what a
/// post-mortem query wants — is always available.
#[derive(Debug)]
pub struct RingSink {
    buf: Vec<Recorded>,
    capacity: usize,
    head: usize,
    dropped: u64,
}

impl RingSink {
    /// Creates a ring holding at most `capacity` events (min 1).
    pub fn new(capacity: usize) -> Self {
        RingSink { buf: Vec::new(), capacity: capacity.max(1), head: 0, dropped: 0 }
    }

    /// Events currently retained, oldest first.
    pub fn events(&self) -> Vec<Recorded> {
        let mut out = Vec::with_capacity(self.buf.len());
        if self.buf.len() < self.capacity {
            out.extend(self.buf.iter().cloned());
        } else {
            out.extend(self.buf[self.head..].iter().cloned());
            out.extend(self.buf[..self.head].iter().cloned());
        }
        out
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing has been retained.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Events evicted because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }
}

impl TraceSink for RingSink {
    fn record(&mut self, seq: u64, cycles: u64, event: &TraceEvent) {
        let rec = Recorded { seq, cycles, event: event.clone() };
        if self.buf.len() < self.capacity {
            self.buf.push(rec);
        } else {
            self.buf[self.head] = rec;
            self.head = (self.head + 1) % self.capacity;
            self.dropped += 1;
        }
    }
}

/// Streams events as JSON Lines: one compact JSON object per line, each
/// stamped with the schema version (`"v"`). Any line can be parsed on its
/// own, so partial files from interrupted runs remain usable.
///
/// The first line written is a header object
/// (`{"v":N,"ev":"header","schema":N}`) carrying the schema version, so
/// offline consumers can dispatch on the version before reading any event.
pub struct JsonlSink<W: Write> {
    out: W,
    header_written: bool,
    /// I/O errors are counted rather than panicking the VM; tracing must
    /// never take down the run it observes.
    pub write_errors: u64,
}

impl<W: Write> JsonlSink<W> {
    /// Wraps a writer.
    pub fn new(out: W) -> Self {
        JsonlSink { out, header_written: false, write_errors: 0 }
    }

    /// Consumes the sink, returning the writer.
    pub fn into_inner(mut self) -> W {
        self.ensure_header();
        let _ = self.out.flush();
        self.out
    }

    /// Writes the schema header line once, before the first event (or at
    /// flush time for streams that never saw an event).
    fn ensure_header(&mut self) {
        if self.header_written {
            return;
        }
        self.header_written = true;
        let line =
            format!("{{\"v\":{v},\"ev\":\"header\",\"schema\":{v}}}\n", v = crate::SCHEMA_VERSION);
        if self.out.write_all(line.as_bytes()).is_err() {
            self.write_errors += 1;
        }
    }
}

impl<W: Write> TraceSink for JsonlSink<W> {
    fn record(&mut self, seq: u64, cycles: u64, event: &TraceEvent) {
        self.ensure_header();
        let mut line = event.to_json(seq, cycles).render();
        line.push('\n');
        if self.out.write_all(line.as_bytes()).is_err() {
            self.write_errors += 1;
        }
    }

    fn flush(&mut self) {
        self.ensure_header();
        if self.out.flush().is_err() {
            self.write_errors += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(n: u32) -> TraceEvent {
        TraceEvent::TxBegin { func: n, name: format!("f{n}") }
    }

    #[test]
    fn ring_keeps_most_recent_in_order() {
        let mut ring = RingSink::new(3);
        for i in 0..5u32 {
            ring.record(i as u64, i as u64 * 10, &ev(i));
        }
        let got = ring.events();
        assert_eq!(got.iter().map(|r| r.seq).collect::<Vec<_>>(), vec![2, 3, 4]);
        assert_eq!(ring.dropped(), 2);
        assert_eq!(ring.len(), 3);
    }

    #[test]
    fn ring_below_capacity_returns_all() {
        let mut ring = RingSink::new(8);
        ring.record(0, 0, &ev(0));
        ring.record(1, 5, &ev(1));
        assert_eq!(ring.events().len(), 2);
        assert_eq!(ring.dropped(), 0);
    }

    #[test]
    fn jsonl_emits_header_then_one_line_per_event() {
        let mut sink = JsonlSink::new(Vec::new());
        sink.record(0, 1, &ev(0));
        sink.record(1, 2, &ev(1));
        let bytes = sink.into_inner();
        let text = String::from_utf8(bytes).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(
            lines[0],
            format!("{{\"v\":{v},\"ev\":\"header\",\"schema\":{v}}}", v = crate::SCHEMA_VERSION),
            "first line must be the schema header"
        );
        for line in &lines[1..] {
            assert!(line.starts_with('{') && line.ends_with('}'));
            assert!(line.contains("\"ev\":\"tx-begin\""));
        }
    }

    #[test]
    fn jsonl_header_appears_exactly_once_even_for_empty_streams() {
        let sink = JsonlSink::new(Vec::new());
        let text = String::from_utf8(sink.into_inner()).unwrap();
        assert_eq!(text.lines().count(), 1, "flushed empty stream still carries the header");
        assert!(text.contains("\"ev\":\"header\""));

        let mut sink = JsonlSink::new(Vec::new());
        sink.flush();
        sink.record(0, 1, &ev(0));
        sink.flush();
        let text = String::from_utf8(sink.into_inner()).unwrap();
        assert_eq!(text.matches("\"ev\":\"header\"").count(), 1);
    }
}
