//! VM-wide structured event tracing and metrics for the NoMap simulator.
//!
//! The VM emits a [`TraceEvent`] at every lifecycle point — function
//! tier-ups (Interp→Baseline→DFG→FTL) with compile cost, OSR deopts with
//! SMP id and check kind, transaction begin/commit/abort with abort reason
//! and write footprint, §V-C ladder recompilation steps, and optimizer-pass
//! outcomes. Events flow through a [`Tracer`] into:
//!
//! - a [`Metrics`] registry (always, when tracing is enabled): counters,
//!   per-reason abort breakdowns, footprint/length histograms and
//!   per-function tier residency, all mergeable like `ExecStats`;
//! - an optional bounded in-memory ring ([`RingSink`]) queryable after the
//!   run;
//! - an optional JSON-Lines stream ([`JsonlSink`]) for offline analysis.
//!
//! Tracing is **zero-cost when disabled**: the default tracer is off, the
//! emit path is a single inlined boolean test, and event construction is
//! deferred behind a closure that never runs on the disabled path. Tracing
//! is also **observation-only** by design — it must never change
//! `ExecStats` or program results (the VM test suite asserts this).

mod event;
mod json;
mod metrics;
mod sink;

pub use event::{abort_reason_name, check_name, tier_name, TraceEvent, SCHEMA_VERSION};
pub use json::{obj, JsonValue};
pub use metrics::{Histogram, Metrics, TierResidency};
pub use sink::{JsonlSink, Recorded, RingSink, TraceSink};

/// The VM's tracing front end: owns the enabled flag, the sequence counter,
/// the metrics registry, the optional ring and any extra sinks.
#[derive(Default)]
pub struct Tracer {
    enabled: bool,
    seq: u64,
    metrics: Metrics,
    ring: Option<RingSink>,
    extra: Vec<Box<dyn TraceSink>>,
}

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tracer")
            .field("enabled", &self.enabled)
            .field("seq", &self.seq)
            .field("ring", &self.ring.as_ref().map(|r| r.len()))
            .field("extra_sinks", &self.extra.len())
            .finish()
    }
}

impl Tracer {
    /// A disabled tracer (the VM default). Costs one `bool` test per
    /// would-be emission and nothing else.
    pub fn disabled() -> Self {
        Tracer::default()
    }

    /// An enabled tracer with a ring buffer retaining the most recent
    /// `ring_capacity` events.
    pub fn enabled(ring_capacity: usize) -> Self {
        Tracer {
            enabled: true,
            seq: 0,
            metrics: Metrics::new(),
            ring: Some(RingSink::new(ring_capacity)),
            extra: Vec::new(),
        }
    }

    /// Whether events are being recorded. The emit macro/closure path
    /// checks this before constructing any event.
    #[inline(always)]
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Attaches an additional sink (e.g. a [`JsonlSink`]); events are
    /// delivered to every sink in attachment order.
    pub fn add_sink(&mut self, sink: Box<dyn TraceSink>) {
        self.extra.push(sink);
    }

    /// Emits an event. `make` runs only when tracing is enabled, so
    /// callers pay nothing for argument formatting on the disabled path.
    ///
    /// `cycles` is the VM cycle counter at the emission point; with the
    /// sequence number it forms a deterministic timestamp (no wall clock —
    /// traces of the same program are identical across runs).
    #[inline]
    pub fn emit<F: FnOnce() -> TraceEvent>(&mut self, cycles: u64, make: F) {
        if !self.enabled {
            return;
        }
        let event = make();
        let seq = self.seq;
        self.seq += 1;
        self.metrics.observe(&event);
        if let Some(ring) = &mut self.ring {
            ring.record(seq, cycles, &event);
        }
        for sink in &mut self.extra {
            sink.record(seq, cycles, &event);
        }
    }

    /// Credits tier-residency instructions to a function in the metrics
    /// registry. No-op when disabled.
    #[inline]
    pub fn record_residency(&mut self, name: &str, tier: nomap_machine::Tier, insts: u64) {
        if self.enabled {
            self.metrics.record_residency(name, tier, insts);
        }
    }

    /// Credits `n` dynamic executions to opcode kind `name` in the census
    /// maps. No-op when disabled.
    #[inline]
    pub fn record_opcode(&mut self, name: &str, n: u64) {
        if self.enabled {
            self.metrics.record_opcode(name, n);
        }
    }

    /// Credits `n` dynamic executions to the statically-adjacent opcode
    /// pair `prev` → `cur`. No-op when disabled.
    #[inline]
    pub fn record_digram(&mut self, prev: &str, cur: &str, n: u64) {
        if self.enabled {
            self.metrics.record_digram(prev, cur, n);
        }
    }

    /// Events retained in the ring, oldest first (empty when disabled or
    /// ring-less).
    pub fn events(&self) -> Vec<Recorded> {
        self.ring.as_ref().map(RingSink::events).unwrap_or_default()
    }

    /// Events evicted from the ring because it was full.
    pub fn ring_dropped(&self) -> u64 {
        self.ring.as_ref().map(RingSink::dropped).unwrap_or(0)
    }

    /// Total events emitted (including any evicted from the ring).
    pub fn emitted(&self) -> u64 {
        self.seq
    }

    /// The metrics registry.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Flushes all attached sinks.
    pub fn flush(&mut self) {
        for sink in &mut self.extra {
            sink.flush();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_tracer_never_runs_the_closure() {
        let mut t = Tracer::disabled();
        let mut ran = false;
        t.emit(0, || {
            ran = true;
            TraceEvent::TxBegin { func: 0, name: "f".into() }
        });
        assert!(!ran);
        assert_eq!(t.emitted(), 0);
        assert!(t.events().is_empty());
    }

    #[test]
    fn enabled_tracer_sequences_and_aggregates() {
        let mut t = Tracer::enabled(16);
        t.emit(10, || TraceEvent::TxBegin { func: 0, name: "f".into() });
        t.emit(20, || TraceEvent::TxCommit {
            func: 0,
            footprint_bytes: 64,
            read_footprint_bytes: 0,
            max_assoc: 1,
            instructions: 40,
        });
        assert_eq!(t.emitted(), 2);
        let events = t.events();
        assert_eq!(events[0].seq, 0);
        assert_eq!(events[1].seq, 1);
        assert_eq!(events[1].cycles, 20);
        assert_eq!(t.metrics().counters["tx-begin"], 1);
        assert_eq!(t.metrics().commit_footprint.count, 1);
    }

    #[test]
    fn extra_sinks_receive_events() {
        let mut t = Tracer::enabled(4);
        t.add_sink(Box::new(JsonlSink::new(Vec::new())));
        t.emit(1, || TraceEvent::TxBegin { func: 1, name: "g".into() });
        // The sink is owned by the tracer; emitted() reflects delivery.
        assert_eq!(t.emitted(), 1);
    }
}
