//! Code generators: the Baseline tier (generic macro-expanded bytecode) and
//! the shared IR → machine lowering used by the DFG and FTL tiers,
//! including stack-map emission for OSR exit.

mod baseline;
mod code;
mod lower;

pub use baseline::compile_baseline;
pub use code::{CompiledFn, StackMapEntry, ValueRepr};
pub use lower::{lower, CodegenQuality};
