//! Compiled-code representation shared by all tiers.

use nomap_bytecode::FuncId;
use nomap_machine::{Label, MReg, MachInst, Tier};

/// How a machine register's contents map back to a boxed value when a
/// deoptimization materializes the Baseline frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ValueRepr {
    /// Already NaN-boxed bits.
    Boxed,
    /// Raw int32 payload.
    I32,
    /// Raw f64 bits.
    F64,
    /// 0/1.
    Bool,
}

/// One Stack Map entry: everything needed to re-enter the Baseline tier at
/// bytecode index `bc` (paper §II-B: "a structure that describes what
/// variables are in what registers and in the stack").
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StackMapEntry {
    /// Bytecode index to resume at.
    pub bc: u32,
    /// For each bytecode register: the machine register holding its value
    /// and how to rebox it; `None` when dead at this point.
    pub regs: Vec<Option<(MReg, ValueRepr)>>,
}

/// A function compiled to machine code by some tier.
#[derive(Debug, Clone)]
pub struct CompiledFn {
    /// Source function.
    pub func: FuncId,
    /// Which tier produced this code.
    pub tier: Tier,
    /// The instructions.
    pub code: Vec<MachInst>,
    /// Number of machine registers used.
    pub reg_count: u32,
    /// Stack-frame words (Baseline keeps bytecode registers in simulated
    /// stack memory; optimized tiers are frameless).
    pub frame_words: u32,
    /// Stack maps, indexed by `SmpId`.
    pub stack_maps: Vec<StackMapEntry>,
    /// Baseline only: machine label for each bytecode index (the OSR entry
    /// points the paper's Figure 5 calls `Entry_n`).
    pub bc_labels: Vec<Label>,
    /// True when compiled with NoMap transaction awareness; code from
    /// unaware functions executing inside a transaction is the paper's
    /// `TMUnopt` category.
    pub txn_aware: bool,
    /// True for the transaction-aware *callee* variant (every check is an
    /// abort of the caller's transaction; no transactions of its own).
    /// Only dispatched while a transaction is active.
    pub txn_callee: bool,
}

impl CompiledFn {
    /// Static instruction count (reporting).
    pub fn len(&self) -> usize {
        self.code.len()
    }

    /// True when the function has no instructions (never the case for
    /// well-formed output).
    pub fn is_empty(&self) -> bool {
        self.code.is_empty()
    }
}
