//! The Baseline code generator.
//!
//! Baseline code macro-expands each bytecode op into a generic sequence:
//! load operands from the (simulated-memory) frame, call the runtime helper
//! that implements the full JavaScript semantics, store the result back
//! (paper Fig. 4(b)). Every bytecode index gets a machine label so
//! deoptimizing FTL code — and NoMap transaction fallbacks — can enter
//! anywhere.

use nomap_bytecode::{Function, Op};
use nomap_machine::{Cond, Label, MReg, MachInst};
use nomap_runtime::{Runtime, RuntimeFn, Value};

use crate::code::CompiledFn;

/// Frame-pointer register (the executor seeds it with the frame's base
/// address in the simulated stack).
pub(crate) const FP: MReg = MReg(0);
const S1: MReg = MReg(1);
const S2: MReg = MReg(2);
const S3: MReg = MReg(3);
/// First scratch register for call argument staging.
const ARGS: u32 = 4;

/// Bit marking an unresolved branch target that still holds a bytecode
/// index rather than a code index.
const PENDING: u32 = 0x8000_0000;

/// Compiles `func` to Baseline machine code.
///
/// `rt` resolves global slot addresses (link time).
///
/// # Example
///
/// ```
/// use nomap_jit::compile_baseline;
/// use nomap_runtime::Runtime;
///
/// let program = nomap_bytecode::compile_program("function id(x) { return x; }")?;
/// let mut rt = Runtime::new();
/// let code = compile_baseline(program.function_named("id").unwrap(), &mut rt);
/// assert_eq!(code.bc_labels.len(), program.function_named("id").unwrap().code.len());
/// # Ok::<(), nomap_bytecode::CompileError>(())
/// ```
pub fn compile_baseline(func: &Function, rt: &mut Runtime) -> CompiledFn {
    let _span = nomap_hostprof::span("compile:baseline");
    let mut g = Gen { code: Vec::new(), bc_labels: vec![Label(0); func.code.len()], max_reg: ARGS };
    for (i, op) in func.code.iter().enumerate() {
        g.bc_labels[i] = Label(g.code.len() as u32);
        g.op(func, rt, *op);
    }
    // Resolve pending branch targets from bytecode to code indices.
    for inst in &mut g.code {
        let fix = |l: &mut Label| {
            if l.0 & PENDING != 0 {
                *l = g.bc_labels[(l.0 & !PENDING) as usize];
            }
        };
        match inst {
            MachInst::Jump { target } => fix(target),
            MachInst::BranchNz { target, .. } | MachInst::BranchZ { target, .. } => fix(target),
            _ => {}
        }
    }
    rt.take_charged(); // global-slot setup is link-time work
    CompiledFn {
        func: func.id,
        tier: nomap_machine::Tier::Baseline,
        code: g.code,
        reg_count: g.max_reg + 16,
        frame_words: func.register_count as u32,
        stack_maps: Vec::new(),
        bc_labels: g.bc_labels,
        txn_aware: false,
        txn_callee: false,
    }
}

struct Gen {
    code: Vec<MachInst>,
    bc_labels: Vec<Label>,
    max_reg: u32,
}

impl Gen {
    fn emit(&mut self, i: MachInst) {
        self.code.push(i);
    }

    fn load(&mut self, dst: MReg, reg: nomap_bytecode::Reg) {
        self.emit(MachInst::Load { dst, base: FP, offset: reg.0 as i64 });
    }

    fn store(&mut self, src: MReg, reg: nomap_bytecode::Reg) {
        self.emit(MachInst::Store { src, base: FP, offset: reg.0 as i64 });
    }

    fn store_imm(&mut self, v: Value, reg: nomap_bytecode::Reg) {
        self.emit(MachInst::MovImm { dst: S1, imm: v.to_bits() });
        self.store(S1, reg);
    }

    fn pending(bc: u32) -> Label {
        Label(bc | PENDING)
    }

    fn op(&mut self, func: &Function, rt: &mut Runtime, op: Op) {
        let fid = func.id;
        match op {
            Op::LoadConst { dst, cid } => {
                let v = match &func.constants[cid.0 as usize] {
                    nomap_bytecode::Const::Num(n) => Value::new_number(*n),
                    nomap_bytecode::Const::Str(s) => {
                        let id = rt.strings.intern(s);
                        rt.string_value(id).expect("string interning")
                    }
                };
                self.store_imm(v, dst);
            }
            Op::LoadInt { dst, value } => self.store_imm(Value::new_int32(value), dst),
            Op::LoadBool { dst, value } => self.store_imm(Value::new_bool(value), dst),
            Op::LoadUndefined { dst } => self.store_imm(Value::UNDEFINED, dst),
            Op::LoadNull { dst } => self.store_imm(Value::NULL, dst),
            Op::Mov { dst, src } => {
                self.load(S1, src);
                self.store(S1, dst);
            }
            Op::Binary { op, dst, a, b, site } => {
                self.load(S1, a);
                self.load(S2, b);
                self.emit(MachInst::CallRt {
                    dst: S3,
                    func: RuntimeFn::Binary(op),
                    args: vec![S1, S2],
                    site: Some((fid, site)),
                });
                self.store(S3, dst);
            }
            Op::Unary { op, dst, a, site } => {
                self.load(S1, a);
                self.emit(MachInst::CallRt {
                    dst: S3,
                    func: RuntimeFn::Unary(op),
                    args: vec![S1],
                    site: Some((fid, site)),
                });
                self.store(S3, dst);
            }
            Op::Jump { target } => self.emit(MachInst::Jump { target: Self::pending(target) }),
            Op::JumpIfTrue { cond, target } | Op::JumpIfFalse { cond, target } => {
                self.load(S1, cond);
                self.emit(MachInst::CallRt {
                    dst: S2,
                    func: RuntimeFn::ToBoolean,
                    args: vec![S1],
                    site: None,
                });
                self.emit(MachInst::CmpImm {
                    dst: S3,
                    a: S2,
                    imm: Value::TRUE.to_bits(),
                    cond: Cond::Eq,
                });
                let t = Self::pending(target);
                if matches!(op, Op::JumpIfTrue { .. }) {
                    self.emit(MachInst::BranchNz { cond: S3, target: t });
                } else {
                    self.emit(MachInst::BranchZ { cond: S3, target: t });
                }
            }
            Op::NewObject { dst } => {
                self.emit(MachInst::CallRt {
                    dst: S3,
                    func: RuntimeFn::NewObject,
                    args: vec![],
                    site: None,
                });
                self.store(S3, dst);
            }
            Op::NewArray { dst, len } => {
                self.load(S1, len);
                self.emit(MachInst::CallRt {
                    dst: S3,
                    func: RuntimeFn::NewArray,
                    args: vec![S1],
                    site: None,
                });
                self.store(S3, dst);
            }
            Op::GetProp { dst, obj, name, site } => {
                self.load(S1, obj);
                self.emit(MachInst::CallRt {
                    dst: S3,
                    func: RuntimeFn::GetProp(name),
                    args: vec![S1],
                    site: Some((fid, site)),
                });
                self.store(S3, dst);
            }
            Op::PutProp { obj, name, val, site } => {
                self.load(S1, obj);
                self.load(S2, val);
                self.emit(MachInst::CallRt {
                    dst: S3,
                    func: RuntimeFn::PutProp(name),
                    args: vec![S1, S2],
                    site: Some((fid, site)),
                });
            }
            Op::GetIndex { dst, arr, idx, site } => {
                self.load(S1, arr);
                self.load(S2, idx);
                self.emit(MachInst::CallRt {
                    dst: S3,
                    func: RuntimeFn::GetIndex,
                    args: vec![S1, S2],
                    site: Some((fid, site)),
                });
                self.store(S3, dst);
            }
            Op::PutIndex { arr, idx, val, site } => {
                self.load(S1, arr);
                self.load(S2, idx);
                let v = MReg(ARGS);
                self.load(v, val);
                self.emit(MachInst::CallRt {
                    dst: S3,
                    func: RuntimeFn::PutIndex,
                    args: vec![S1, S2, v],
                    site: Some((fid, site)),
                });
            }
            Op::GetGlobal { dst, name, .. } => {
                let addr = rt.global_slot(name);
                self.emit(MachInst::LoadGlobal { dst: S1, addr });
                self.store(S1, dst);
            }
            Op::PutGlobal { name, src } => {
                let addr = rt.global_slot(name);
                self.load(S1, src);
                self.emit(MachInst::StoreGlobal { src: S1, addr });
            }
            Op::Call { dst, func: callee, argv, argc, .. } => {
                let mut args = Vec::with_capacity(argc as usize);
                for i in 0..argc as u32 {
                    let r = MReg(ARGS + i);
                    self.max_reg = self.max_reg.max(ARGS + i + 1);
                    self.load(r, nomap_bytecode::Reg(argv.0 + i as u16));
                    args.push(r);
                }
                self.emit(MachInst::CallJs { dst: S3, callee, args });
                self.store(S3, dst);
            }
            Op::CallIntrinsic { dst, intr, argv, argc, site } => {
                let mut args = Vec::with_capacity(argc as usize);
                for i in 0..argc as u32 {
                    let r = MReg(ARGS + i);
                    self.max_reg = self.max_reg.max(ARGS + i + 1);
                    self.load(r, nomap_bytecode::Reg(argv.0 + i as u16));
                    args.push(r);
                }
                self.emit(MachInst::CallRt {
                    dst: S3,
                    func: RuntimeFn::Intrinsic(intr),
                    args,
                    site: Some((fid, site)),
                });
                self.store(S3, dst);
            }
            Op::Return { src } => {
                self.load(S1, src);
                self.emit(MachInst::Ret { src: S1 });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nomap_bytecode::compile_program;

    #[test]
    fn every_bytecode_index_has_a_label() {
        let p = compile_program(
            "function f(n) { var s = 0; for (var i = 0; i < n; i++) { s += i; } return s; }",
        )
        .unwrap();
        let mut rt = Runtime::new();
        let f = p.function_named("f").unwrap();
        let c = compile_baseline(f, &mut rt);
        assert_eq!(c.bc_labels.len(), f.code.len());
        // Labels are monotonically nondecreasing code offsets.
        for w in c.bc_labels.windows(2) {
            assert!(w[0].0 <= w[1].0);
        }
        assert_eq!(c.frame_words, f.register_count as u32);
    }

    #[test]
    fn branches_are_resolved() {
        let p = compile_program("function f(n) { if (n > 1) { return 1; } return 2; }").unwrap();
        let mut rt = Runtime::new();
        let c = compile_baseline(p.function_named("f").unwrap(), &mut rt);
        for inst in &c.code {
            if let Some(t) = match inst {
                MachInst::Jump { target } => Some(target),
                MachInst::BranchNz { target, .. } | MachInst::BranchZ { target, .. } => {
                    Some(target)
                }
                _ => None,
            } {
                assert_eq!(t.0 & PENDING, 0, "unresolved label");
                assert!((t.0 as usize) < c.code.len());
            }
        }
    }

    #[test]
    fn ends_with_return() {
        let p = compile_program("var x = 1;").unwrap();
        let mut rt = Runtime::new();
        let c = compile_baseline(&p.functions[0], &mut rt);
        assert!(matches!(c.code.last(), Some(MachInst::Ret { .. })));
    }
}
