//! IR → machine lowering, shared by the DFG and FTL tiers.
//!
//! Calling convention: `MReg(0)` is scratch; arguments arrive in
//! `MReg(1)..MReg(1+argc)`. Every IR value gets its own virtual register
//! (value-preserving checks alias their input's register, like a real
//! allocator coalescing). Phis become parallel moves on the incoming edges,
//! with trampoline blocks inserted on critical edges.

use std::collections::HashMap;

use nomap_ir::node::{FBinOp, IBinOp, InstKind};
use nomap_ir::{CheckMode, IrFunc, OsrState, Ty, ValueId};
use nomap_machine::{Alu64Op, IAlu32Op};
use nomap_machine::{CheckKind, Cond, Label, MReg, MachInst, SmpId, Tier};
use nomap_runtime::{pack_header, HeapKind, Value};

use crate::code::{CompiledFn, StackMapEntry, ValueRepr};

/// Back-end quality knob. The DFG back end models JavaScriptCore's
/// non-LLVM instruction selector by emitting one filler instruction after
/// each compute/memory operation (paper Table I: FTL's LLVM back end alone
/// is a large part of the FTL-over-DFG gap).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CodegenQuality {
    /// DFG back end.
    Dfg,
    /// FTL (LLVM-grade) back end.
    Ftl,
}

/// Scratch register (parallel-move temporary).
const SCRATCH: MReg = MReg(0);

const INT32_TAG: u64 = 0xFFFF_0000_0000_0000;
const DOUBLE_OFFSET: u64 = 0x0001_0000_0000_0000;

/// Branch-target key before final label resolution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum Target {
    Block(u32),
    Tramp(u32),
}

/// Lowers `f` to machine code.
///
/// # Panics
///
/// Panics on malformed IR (undefined operands, missing OSR state on an SMP).
pub fn lower(f: &IrFunc, quality: CodegenQuality, tier: Tier, txn_aware: bool) -> CompiledFn {
    let _span = nomap_hostprof::span("lower");
    Lowerer {
        f,
        quality,
        code: Vec::new(),
        reg_of: vec![None; f.insts.len()],
        next_reg: 1 + f.param_count as u32,
        block_pos: HashMap::new(),
        tramp_pos: HashMap::new(),
        fixups: Vec::new(),
        stack_maps: Vec::new(),
        trampolines: Vec::new(),
    }
    .run(tier, txn_aware)
}

struct Lowerer<'a> {
    f: &'a IrFunc,
    quality: CodegenQuality,
    code: Vec<MachInst>,
    reg_of: Vec<Option<MReg>>,
    next_reg: u32,
    block_pos: HashMap<u32, u32>,
    tramp_pos: HashMap<u32, u32>,
    fixups: Vec<(usize, Target)>,
    stack_maps: Vec<StackMapEntry>,
    /// (moves, final target block) per trampoline id.
    trampolines: Vec<(Vec<(MReg, MReg)>, u32)>,
}

impl<'a> Lowerer<'a> {
    fn run(mut self, tier: Tier, txn_aware: bool) -> CompiledFn {
        let order = self.f.rpo();
        // Pre-assign registers to phis and params so forward references on
        // back edges resolve.
        for &b in &order {
            for &v in &self.f.blocks[b.0 as usize].insts {
                match self.f.inst(v).kind {
                    InstKind::Phi { .. } => {
                        let r = self.fresh();
                        self.reg_of[v.0 as usize] = Some(r);
                    }
                    InstKind::Param(i) => {
                        self.reg_of[v.0 as usize] = Some(MReg(1 + i as u32));
                    }
                    _ => {}
                }
            }
        }
        // Collect phi edge moves.
        let mut edge_moves: HashMap<(u32, u32), Vec<(MReg, ValueId)>> = HashMap::new();
        for &b in &order {
            let block = &self.f.blocks[b.0 as usize];
            for &v in &block.insts {
                if let InstKind::Phi { inputs, .. } = &self.f.inst(v).kind {
                    let dst = self.reg_of[v.0 as usize].expect("phi reg");
                    for (pi, &input) in inputs.iter().enumerate() {
                        let p = block.preds[pi];
                        edge_moves.entry((p.0, b.0)).or_default().push((dst, input));
                    }
                }
            }
        }

        for (oi, &b) in order.iter().enumerate() {
            self.block_pos.insert(b.0, self.code.len() as u32);
            let next = order.get(oi + 1).map(|n| n.0);
            let insts = self.f.blocks[b.0 as usize].insts.clone();
            for &v in &insts {
                let inst = self.f.inst(v);
                if inst.is_terminator() {
                    self.lower_terminator(b.0, v, &edge_moves, next);
                } else {
                    self.lower_inst(v);
                }
            }
        }
        // Emit trampolines.
        for ti in 0..self.trampolines.len() {
            self.tramp_pos.insert(ti as u32, self.code.len() as u32);
            let (moves, target) = self.trampolines[ti].clone();
            self.emit_parallel_moves(&moves);
            let at = self.code.len();
            self.code.push(MachInst::Jump { target: Label(0) });
            self.fixups.push((at, Target::Block(target)));
        }
        // Patch branch targets.
        for (at, key) in std::mem::take(&mut self.fixups) {
            let pos = match key {
                Target::Block(b) => self.block_pos[&b],
                Target::Tramp(t) => self.tramp_pos[&t],
            };
            match &mut self.code[at] {
                MachInst::Jump { target }
                | MachInst::BranchNz { target, .. }
                | MachInst::BranchZ { target, .. } => *target = Label(pos),
                other => panic!("fixup on non-branch {other:?}"),
            }
        }
        CompiledFn {
            func: self.f.func,
            tier,
            code: self.code,
            reg_count: self.next_reg,
            frame_words: 0,
            stack_maps: self.stack_maps,
            bc_labels: Vec::new(),
            txn_aware,
            txn_callee: false,
        }
    }

    fn fresh(&mut self) -> MReg {
        let r = MReg(self.next_reg);
        self.next_reg += 1;
        r
    }

    fn reg(&self, v: ValueId) -> MReg {
        self.reg_of[v.0 as usize].unwrap_or_else(|| panic!("value {v} used before definition"))
    }

    fn def(&mut self, v: ValueId) -> MReg {
        if let Some(r) = self.reg_of[v.0 as usize] {
            return r;
        }
        let r = self.fresh();
        self.reg_of[v.0 as usize] = Some(r);
        r
    }

    fn alias(&mut self, v: ValueId, to: ValueId) {
        let r = self.reg(to);
        self.reg_of[v.0 as usize] = Some(r);
    }

    fn emit(&mut self, i: MachInst) {
        self.code.push(i);
    }

    /// DFG filler: models the weaker non-LLVM back end.
    fn pad(&mut self) {
        if self.quality == CodegenQuality::Dfg {
            self.code.push(MachInst::Nop);
        }
    }

    fn repr_of(&self, v: ValueId) -> ValueRepr {
        match self.f.inst(v).ty() {
            Ty::I32 => ValueRepr::I32,
            Ty::F64 => ValueRepr::F64,
            Ty::Bool => ValueRepr::Bool,
            _ => ValueRepr::Boxed,
        }
    }

    fn smp(&mut self, osr: &OsrState) -> SmpId {
        let regs =
            osr.regs.iter().map(|slot| slot.map(|v| (self.reg(v), self.repr_of(v)))).collect();
        self.stack_maps.push(StackMapEntry { bc: osr.bc, regs });
        SmpId(self.stack_maps.len() as u32 - 1)
    }

    /// Emits the guard branch for a check whose failure condition is in
    /// `cond`.
    fn guard(&mut self, mode: CheckMode, cond: MReg, kind: CheckKind, osr: Option<&OsrState>) {
        match mode {
            CheckMode::Deopt => {
                let osr = osr.expect("deopt check carries OSR state");
                let smp = self.smp(osr);
                self.emit(MachInst::DeoptIf { cond, smp, kind });
            }
            CheckMode::Abort => self.emit(MachInst::AbortIf { cond, kind }),
            CheckMode::Sof | CheckMode::Removed => {}
        }
    }

    fn overflow_guard(&mut self, mode: CheckMode, osr: Option<&OsrState>) {
        match mode {
            CheckMode::Deopt => {
                let osr = osr.expect("deopt check carries OSR state");
                let smp = self.smp(osr);
                self.emit(MachInst::DeoptIfOverflow { smp });
            }
            CheckMode::Abort => self.emit(MachInst::AbortIfOverflow),
            CheckMode::Sof | CheckMode::Removed => {}
        }
    }

    fn lower_inst(&mut self, v: ValueId) {
        let inst = self.f.inst(v).clone();
        let osr = inst.osr.as_ref();
        match &inst.kind {
            InstKind::Nop | InstKind::Phi { .. } | InstKind::Param(_) => {}
            InstKind::Const(c) => {
                let dst = self.def(v);
                self.emit(MachInst::MovImm { dst, imm: c.to_bits() });
            }
            InstKind::ConstI32(c) => {
                let dst = self.def(v);
                self.emit(MachInst::MovImm { dst, imm: *c as i64 as u64 });
            }
            InstKind::ConstF64(c) => {
                let dst = self.def(v);
                self.emit(MachInst::MovImm { dst, imm: c.to_bits() });
            }
            InstKind::ConstRaw(c) => {
                let dst = self.def(v);
                self.emit(MachInst::MovImm { dst, imm: *c });
            }
            InstKind::ConstBool(c) => {
                let dst = self.def(v);
                self.emit(MachInst::MovImm { dst, imm: *c as u64 });
            }
            InstKind::CheckInt32 { v: inner, mode } => {
                let rv = self.reg(*inner);
                if *mode != CheckMode::Removed {
                    let c = SCRATCH;
                    self.emit(MachInst::CmpImm {
                        dst: c,
                        a: rv,
                        imm: INT32_TAG,
                        cond: Cond::Below,
                    });
                    self.guard(*mode, c, CheckKind::Type, osr);
                }
                let dst = self.def(v);
                self.emit(MachInst::UnboxI32 { dst, src: rv });
            }
            InstKind::CheckNumber { v: inner, mode } => {
                let rv = self.reg(*inner);
                if *mode != CheckMode::Removed {
                    let c = SCRATCH;
                    self.emit(MachInst::CmpImm {
                        dst: c,
                        a: rv,
                        imm: DOUBLE_OFFSET,
                        cond: Cond::Below,
                    });
                    self.guard(*mode, c, CheckKind::Type, osr);
                }
                let dst = self.def(v);
                self.emit(MachInst::ToF64 { dst, src: rv });
            }
            InstKind::CheckBool { v: inner, mode } => {
                let rv = self.reg(*inner);
                if *mode != CheckMode::Removed {
                    let t = SCRATCH;
                    self.emit(MachInst::Alu64Imm { op: Alu64Op::And, dst: t, a: rv, imm: !1u64 });
                    self.emit(MachInst::CmpImm {
                        dst: t,
                        a: t,
                        imm: Value::FALSE.to_bits() & !1,
                        cond: Cond::Ne,
                    });
                    self.guard(*mode, t, CheckKind::Type, osr);
                }
                let dst = self.def(v);
                self.emit(MachInst::Alu64Imm { op: Alu64Op::And, dst, a: rv, imm: 1 });
            }
            InstKind::CheckShape { v: inner, shape, mode } => {
                let rv = self.reg(*inner);
                if *mode != CheckMode::Removed {
                    let hdr = SCRATCH;
                    self.emit(MachInst::Load { dst: hdr, base: rv, offset: 0 });
                    self.emit(MachInst::CmpImm {
                        dst: hdr,
                        a: hdr,
                        imm: pack_header(HeapKind::Object, *shape),
                        cond: Cond::Ne,
                    });
                    self.guard(*mode, hdr, CheckKind::Property, osr);
                }
                self.alias(v, *inner);
            }
            InstKind::CheckArray { v: inner, mode } => {
                self.lower_kind_check(v, *inner, *mode, HeapKind::Array, osr);
            }
            InstKind::CheckString { v: inner, mode } => {
                self.lower_kind_check(v, *inner, *mode, HeapKind::Str, osr);
            }
            InstKind::CheckF64ToI32 { v: inner, mode } => {
                let rv = self.reg(*inner);
                let dst = self.def(v);
                self.emit(MachInst::CvtF64ToI32 { dst, src: rv });
                if *mode != CheckMode::Removed {
                    let back = SCRATCH;
                    self.emit(MachInst::CvtI32ToF64 { dst: back, src: dst });
                    self.emit(MachInst::CmpI64 { dst: back, a: back, b: rv, cond: Cond::Ne });
                    self.guard(*mode, back, CheckKind::Type, osr);
                }
            }
            InstKind::BoxI32(inner) => {
                let src = self.reg(*inner);
                let dst = self.def(v);
                self.emit(MachInst::BoxI32 { dst, src });
            }
            InstKind::BoxF64(inner) => {
                let src = self.reg(*inner);
                let dst = self.def(v);
                self.emit(MachInst::BoxF64 { dst, src });
            }
            InstKind::BoxBool(inner) => {
                let src = self.reg(*inner);
                let dst = self.def(v);
                self.emit(MachInst::BoxBool { dst, src });
            }
            InstKind::I32ToF64(inner) => {
                let src = self.reg(*inner);
                let dst = self.def(v);
                self.emit(MachInst::CvtI32ToF64 { dst, src });
            }
            InstKind::CheckedAddI32 { a, b, mode } => {
                let (ra, rb) = (self.reg(*a), self.reg(*b));
                let dst = self.def(v);
                self.emit(MachInst::AddI32 { dst, a: ra, b: rb });
                self.overflow_guard(*mode, osr);
                self.pad();
            }
            InstKind::CheckedSubI32 { a, b, mode } => {
                let (ra, rb) = (self.reg(*a), self.reg(*b));
                let dst = self.def(v);
                self.emit(MachInst::SubI32 { dst, a: ra, b: rb });
                self.overflow_guard(*mode, osr);
                self.pad();
            }
            InstKind::CheckedMulI32 { a, b, mode } => {
                let (ra, rb) = (self.reg(*a), self.reg(*b));
                let dst = self.def(v);
                self.emit(MachInst::MulI32 { dst, a: ra, b: rb });
                self.overflow_guard(*mode, osr);
                self.pad();
            }
            InstKind::CheckedNegI32 { a, mode } => {
                let ra = self.reg(*a);
                let dst = self.def(v);
                self.emit(MachInst::NegI32 { dst, a: ra });
                self.overflow_guard(*mode, osr);
                self.pad();
            }
            InstKind::IBin { op, a, b } => {
                let (ra, rb) = (self.reg(*a), self.reg(*b));
                let dst = self.def(v);
                let mop = match op {
                    IBinOp::And => IAlu32Op::And,
                    IBinOp::Or => IAlu32Op::Or,
                    IBinOp::Xor => IAlu32Op::Xor,
                    IBinOp::Shl => IAlu32Op::Shl,
                    IBinOp::Sar => IAlu32Op::Sar,
                };
                self.emit(MachInst::IAlu32 { op: mop, dst, a: ra, b: rb });
                self.pad();
            }
            InstKind::CheckedUShr { a, b, mode } => {
                let (ra, rb) = (self.reg(*a), self.reg(*b));
                let dst = self.def(v);
                self.emit(MachInst::UShr32 { dst, a: ra, b: rb });
                if *mode != CheckMode::Removed {
                    let c = SCRATCH;
                    self.emit(MachInst::CmpImm { dst: c, a: dst, imm: 0, cond: Cond::Lt });
                    self.guard(*mode, c, CheckKind::Other, osr);
                }
                self.pad();
            }
            InstKind::FBin { op, a, b } => {
                let (ra, rb) = (self.reg(*a), self.reg(*b));
                let dst = self.def(v);
                let fop = match op {
                    FBinOp::Add => nomap_machine::FAluOp::Add,
                    FBinOp::Sub => nomap_machine::FAluOp::Sub,
                    FBinOp::Mul => nomap_machine::FAluOp::Mul,
                    FBinOp::Div => nomap_machine::FAluOp::Div,
                    FBinOp::Mod => nomap_machine::FAluOp::Mod,
                };
                self.emit(MachInst::FAlu { op: fop, dst, a: ra, b: rb });
                self.pad();
            }
            InstKind::FNeg(a) => {
                let ra = self.reg(*a);
                let dst = self.def(v);
                self.emit(MachInst::FNeg { dst, a: ra });
            }
            InstKind::ICmp { cond, a, b } => {
                let (ra, rb) = (self.reg(*a), self.reg(*b));
                let dst = self.def(v);
                self.emit(MachInst::CmpI64 { dst, a: ra, b: rb, cond: *cond });
            }
            InstKind::FCmp { cond, a, b } => {
                let (ra, rb) = (self.reg(*a), self.reg(*b));
                let dst = self.def(v);
                self.emit(MachInst::CmpF64 { dst, a: ra, b: rb, cond: *cond });
            }
            InstKind::BNot(a) => {
                let ra = self.reg(*a);
                let dst = self.def(v);
                self.emit(MachInst::Alu64Imm { op: Alu64Op::Xor, dst, a: ra, imm: 1 });
            }
            InstKind::MathOp { intr, args } => {
                let regs: Vec<MReg> = args.iter().map(|&a| self.reg(a)).collect();
                let dst = self.def(v);
                self.emit(MachInst::MathF64 { intr: *intr, dst, args: regs });
                self.pad();
            }
            InstKind::Guard { kind, cond, mode } => {
                if *mode != CheckMode::Removed && *mode != CheckMode::Sof {
                    let c = self.reg(*cond);
                    self.guard(*mode, c, *kind, osr);
                }
            }
            InstKind::LoadField { base, offset, .. } => {
                let rb = self.reg(*base);
                let dst = self.def(v);
                self.emit(MachInst::Load { dst, base: rb, offset: *offset as i64 });
                self.pad();
            }
            InstKind::StoreField { base, offset, v: val, .. } => {
                let rb = self.reg(*base);
                let rv = self.reg(*val);
                self.emit(MachInst::Store { src: rv, base: rb, offset: *offset as i64 });
                self.pad();
            }
            InstKind::LoadElem { storage, index } => {
                let rs = self.reg(*storage);
                let ri = self.reg(*index);
                let dst = self.def(v);
                self.emit(MachInst::LoadIdx { dst, base: rs, index: ri });
                self.pad();
            }
            InstKind::StoreElem { storage, index, v: val } => {
                let rs = self.reg(*storage);
                let ri = self.reg(*index);
                let rv = self.reg(*val);
                self.emit(MachInst::StoreIdx { src: rv, base: rs, index: ri });
                self.pad();
            }
            InstKind::LoadGlobal { addr, .. } => {
                let dst = self.def(v);
                self.emit(MachInst::LoadGlobal { dst, addr: *addr });
                self.pad();
            }
            InstKind::StoreGlobal { addr, v: val, .. } => {
                let rv = self.reg(*val);
                self.emit(MachInst::StoreGlobal { src: rv, addr: *addr });
                self.pad();
            }
            InstKind::CallRuntime { func, args, site } => {
                let regs: Vec<MReg> = args.iter().map(|&a| self.reg(a)).collect();
                let dst = self.def(v);
                self.emit(MachInst::CallRt { dst, func: *func, args: regs, site: *site });
            }
            InstKind::CallJs { callee, args } => {
                let regs: Vec<MReg> = args.iter().map(|&a| self.reg(a)).collect();
                let dst = self.def(v);
                self.emit(MachInst::CallJs { dst, callee: *callee, args: regs });
            }
            InstKind::XBegin => {
                let osr = osr.expect("XBegin carries fallback OSR state");
                let smp = self.smp(osr);
                self.emit(MachInst::XBegin { fallback: smp });
            }
            InstKind::XEnd => self.emit(MachInst::XEnd),
            InstKind::Jump { .. } | InstKind::Branch { .. } | InstKind::Return { .. } => {
                unreachable!("terminators lowered separately")
            }
        }
    }

    fn lower_kind_check(
        &mut self,
        v: ValueId,
        inner: ValueId,
        mode: CheckMode,
        kind: HeapKind,
        osr: Option<&OsrState>,
    ) {
        let rv = self.reg(inner);
        if mode != CheckMode::Removed {
            let hdr = SCRATCH;
            self.emit(MachInst::Load { dst: hdr, base: rv, offset: 0 });
            self.emit(MachInst::Alu64Imm { op: Alu64Op::And, dst: hdr, a: hdr, imm: 7 });
            self.emit(MachInst::CmpImm { dst: hdr, a: hdr, imm: kind as u64, cond: Cond::Ne });
            self.guard(mode, hdr, CheckKind::Type, osr);
        }
        self.alias(v, inner);
    }

    fn lower_terminator(
        &mut self,
        b: u32,
        v: ValueId,
        edge_moves: &HashMap<(u32, u32), Vec<(MReg, ValueId)>>,
        next: Option<u32>,
    ) {
        let kind = self.f.inst(v).kind.clone();
        match kind {
            InstKind::Return { v: val } => {
                let r = self.reg(val);
                self.emit(MachInst::Ret { src: r });
            }
            InstKind::Jump { target } => {
                if let Some(moves) = edge_moves.get(&(b, target.0)) {
                    let resolved: Vec<(MReg, MReg)> =
                        moves.iter().map(|&(d, s)| (d, self.reg(s))).collect();
                    self.emit_parallel_moves(&resolved);
                }
                if next != Some(target.0) {
                    let at = self.code.len();
                    self.emit(MachInst::Jump { target: Label(0) });
                    self.fixups.push((at, Target::Block(target.0)));
                }
            }
            InstKind::Branch { cond, then_b, else_b } => {
                let c = self.reg(cond);
                let then_t = self.edge_target(b, then_b.0, edge_moves);
                let else_t = self.edge_target(b, else_b.0, edge_moves);
                let at = self.code.len();
                self.emit(MachInst::BranchNz { cond: c, target: Label(0) });
                self.fixups.push((at, then_t));
                match else_t {
                    Target::Block(eb) if next == Some(eb) => {}
                    t => {
                        let at = self.code.len();
                        self.emit(MachInst::Jump { target: Label(0) });
                        self.fixups.push((at, t));
                    }
                }
            }
            other => panic!("unexpected terminator {other:?}"),
        }
    }

    /// Branch edge target: direct block, or a trampoline when the edge
    /// needs phi moves (critical edge).
    fn edge_target(
        &mut self,
        from: u32,
        to: u32,
        edge_moves: &HashMap<(u32, u32), Vec<(MReg, ValueId)>>,
    ) -> Target {
        match edge_moves.get(&(from, to)) {
            None => Target::Block(to),
            Some(moves) => {
                let resolved: Vec<(MReg, MReg)> =
                    moves.iter().map(|&(d, s)| (d, self.reg(s))).collect();
                let id = self.trampolines.len() as u32;
                self.trampolines.push((resolved, to));
                Target::Tramp(id)
            }
        }
    }

    /// Emits a parallel move set, breaking cycles with the scratch register.
    fn emit_parallel_moves(&mut self, moves: &[(MReg, MReg)]) {
        let mut pending: Vec<(MReg, MReg)> =
            moves.iter().copied().filter(|(d, s)| d != s).collect();
        while !pending.is_empty() {
            // Emit any move whose destination is not a pending source.
            if let Some(i) =
                pending.iter().position(|&(d, _)| !pending.iter().any(|&(_, s)| s == d))
            {
                let (d, s) = pending.remove(i);
                self.emit(MachInst::Mov { dst: d, src: s });
                continue;
            }
            // Cycle: rotate through the scratch register.
            let (d, s) = pending[0];
            self.emit(MachInst::Mov { dst: SCRATCH, src: s });
            pending[0] = (d, SCRATCH);
            // Redirect other reads of `s`... there are none in a simple
            // cycle, but keep the invariant: replace sources equal to s
            // is unnecessary since each reg is the source of exactly one
            // phi move per edge in SSA.
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nomap_bytecode::FuncId;
    use nomap_ir::node::Inst;

    #[test]
    fn parallel_move_cycle_uses_scratch() {
        // Build a tiny IrFunc to get a Lowerer.
        let f = IrFunc::new(FuncId(0), "t", 0, 0);
        let mut l = Lowerer {
            f: &f,
            quality: CodegenQuality::Ftl,
            code: Vec::new(),
            reg_of: vec![],
            next_reg: 10,
            block_pos: HashMap::new(),
            tramp_pos: HashMap::new(),
            fixups: Vec::new(),
            stack_maps: Vec::new(),
            trampolines: Vec::new(),
        };
        // Swap: r1 <- r2, r2 <- r1.
        l.emit_parallel_moves(&[(MReg(1), MReg(2)), (MReg(2), MReg(1))]);
        // Simulate.
        let mut regs = [0u64; 11];
        regs[1] = 100;
        regs[2] = 200;
        for inst in &l.code {
            if let MachInst::Mov { dst, src } = inst {
                regs[dst.0 as usize] = regs[src.0 as usize];
            }
        }
        assert_eq!(regs[1], 200);
        assert_eq!(regs[2], 100);
    }

    #[test]
    fn lowers_simple_function() {
        // return 1 + 2 (as checked int32 arithmetic)
        let mut f = IrFunc::new(FuncId(0), "t", 0, 0);
        let a = f.append(f.entry, Inst::new(InstKind::ConstI32(1)));
        let b = f.append(f.entry, Inst::new(InstKind::ConstI32(2)));
        let s =
            f.append(f.entry, Inst::new(InstKind::CheckedAddI32 { a, b, mode: CheckMode::Abort }));
        let boxed = f.append(f.entry, Inst::new(InstKind::BoxI32(s)));
        f.append(f.entry, Inst::new(InstKind::Return { v: boxed }));
        f.compute_preds();
        let c = lower(&f, CodegenQuality::Ftl, Tier::Ftl, true);
        assert!(matches!(c.code.last(), Some(MachInst::Ret { .. })));
        assert!(c.code.iter().any(|i| matches!(i, MachInst::AddI32 { .. })));
        assert!(c.code.iter().any(|i| matches!(i, MachInst::AbortIfOverflow)));
        assert_eq!(c.stack_maps.len(), 0);
    }

    #[test]
    fn deopt_guard_builds_stack_map() {
        let mut f = IrFunc::new(FuncId(0), "t", 1, 2);
        let p = f.append(f.entry, Inst::new(InstKind::Param(0)));
        let mut chk = Inst::new(InstKind::CheckInt32 { v: p, mode: CheckMode::Deopt });
        chk.osr = Some(OsrState { bc: 4, regs: vec![Some(p), None] });
        let i = f.append(f.entry, chk);
        let boxed = f.append(f.entry, Inst::new(InstKind::BoxI32(i)));
        f.append(f.entry, Inst::new(InstKind::Return { v: boxed }));
        f.compute_preds();
        let c = lower(&f, CodegenQuality::Ftl, Tier::Ftl, false);
        assert_eq!(c.stack_maps.len(), 1);
        let sm = &c.stack_maps[0];
        assert_eq!(sm.bc, 4);
        assert_eq!(sm.regs.len(), 2);
        assert!(matches!(sm.regs[0], Some((_, ValueRepr::Boxed))));
        assert!(sm.regs[1].is_none());
    }

    #[test]
    fn dfg_quality_emits_padding() {
        let mut f = IrFunc::new(FuncId(0), "t", 0, 0);
        let a = f.append(f.entry, Inst::new(InstKind::ConstI32(1)));
        let b = f.append(f.entry, Inst::new(InstKind::ConstI32(2)));
        let s = f
            .append(f.entry, Inst::new(InstKind::CheckedAddI32 { a, b, mode: CheckMode::Removed }));
        let boxed = f.append(f.entry, Inst::new(InstKind::BoxI32(s)));
        f.append(f.entry, Inst::new(InstKind::Return { v: boxed }));
        f.compute_preds();
        let ftl = lower(&f, CodegenQuality::Ftl, Tier::Ftl, false);
        let dfg = lower(&f, CodegenQuality::Dfg, Tier::Dfg, false);
        assert!(dfg.code.len() > ftl.code.len());
    }
}
