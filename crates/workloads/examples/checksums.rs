//! Cross-architecture verification sweep: every workload must produce the
//! same checksum under all six Table II configurations, and the Shootout
//! kernels must agree with their native Rust references.
//!
//! Run with: `cargo run --release -p nomap-workloads --example checksums`

use nomap_vm::Architecture;
use nomap_workloads::{evaluation_suites, run_workload, shootout, RunSpec};

fn main() {
    let mut clean = true;
    for w in evaluation_suites().iter().chain(shootout().iter()) {
        let mut vals = Vec::new();
        for arch in Architecture::ALL {
            match run_workload(w, RunSpec::quick(arch)) {
                Ok(out) => vals.push(format!("{:?}", out.checksum)),
                Err(e) => vals.push(format!("ERR:{e}")),
            }
        }
        let all_same = vals.windows(2).all(|x| x[0] == x[1]);
        if !all_same {
            clean = false;
            println!("DIVERGE {}: {:?}", w.id, vals);
        }
    }
    for id in
        ["fibo", "harmonic", "sieve", "takfp", "random", "hash", "heapsort", "nbody", "histmix"]
    {
        let w = shootout().into_iter().find(|w| w.id == id).unwrap();
        let js = run_workload(&w, RunSpec::quick(Architecture::Base)).unwrap();
        let native = nomap_workloads::native::run_native(id);
        println!("NATIVE {}: js={:?} native={}", id, js.checksum, native.checksum);
    }
    if clean {
        println!("all architectures agree on every workload checksum");
    } else {
        std::process::exit(1);
    }
}
