//! Every workload must produce the same checksum under every architecture
//! (the NoMap transformations are semantics-preserving) and at every tier
//! cap.

use nomap_vm::{Architecture, TierLimit};
use nomap_workloads::{evaluation_suites, run_workload, shootout, RunSpec, Workload};

/// Debug builds simulate ~10× slower; sample the suites so plain
/// `cargo test --workspace` stays fast. Release builds sweep everything.
fn all_workloads() -> Vec<Workload> {
    let all: Vec<Workload> = evaluation_suites().into_iter().chain(shootout()).collect();
    if cfg!(debug_assertions) {
        all.into_iter().step_by(4).collect()
    } else {
        all
    }
}

#[test]
fn checksums_identical_across_architectures() {
    for w in &all_workloads() {
        let mut reference = None;
        for arch in Architecture::ALL {
            let out = run_workload(w, RunSpec::quick(arch))
                .unwrap_or_else(|e| panic!("{} under {arch:?}: {e}", w.id));
            match &reference {
                None => reference = Some(out.checksum),
                Some(r) => assert_eq!(out.checksum, *r, "{} diverged under {arch:?}", w.id),
            }
        }
    }
}

#[test]
fn checksums_identical_across_tier_caps() {
    for w in &all_workloads() {
        let mut reference = None;
        for limit in [TierLimit::Interpreter, TierLimit::Baseline, TierLimit::Dfg, TierLimit::Ftl] {
            let mut spec = RunSpec::quick(Architecture::Base);
            spec.config.tier_limit = limit;
            spec.warmup = 30;
            let out =
                run_workload(w, spec).unwrap_or_else(|e| panic!("{} at {limit:?}: {e}", w.id));
            match &reference {
                None => reference = Some(out.checksum),
                Some(r) => assert_eq!(out.checksum, *r, "{} diverged at {limit:?}", w.id),
            }
        }
    }
}

#[test]
fn native_checksums_match_minijs_where_shared() {
    // These Shootout kernels are algorithm-identical between MiniJS and
    // the native Rust reference.
    for id in ["fibo", "harmonic", "sieve", "takfp", "random", "hash", "heapsort", "nbody"] {
        let w = shootout().into_iter().find(|w| w.id == id).unwrap();
        let js = run_workload(&w, RunSpec::quick(Architecture::Base)).unwrap();
        let native = nomap_workloads::native::run_native(id);
        let js_num = if js.checksum.is_int32() {
            js.checksum.as_int32() as f64
        } else {
            js.checksum.as_number()
        };
        assert_eq!(js_num, native.checksum, "{id}");
    }
}
