//! Corpus-wide pass-sanitizer check: every bundled workload (SunSpider,
//! Kraken, Shootout) must lint verifier-clean — the strict SSA verifier,
//! transaction-safety checker and bounds translation validator find no
//! errors at any stage of any tier's compilation, with realistic profiles
//! from a short warmup. Capacity-overflow *warnings* are allowed (some
//! kernels really do overwhelm the HTM; that is what the §V-C ladder is
//! for).

use nomap_vm::{lint_source, Architecture};
use nomap_workloads::{kraken, shootout, sunspider, Workload};

fn lint_all(arch: Architecture, warmup: u32) {
    let suites: [&[Workload]; 3] = [&sunspider(), &kraken(), &shootout()];
    let mut linted = 0;
    for w in suites.iter().flat_map(|s| s.iter()) {
        let report = lint_source(w.source, arch, warmup)
            .unwrap_or_else(|e| panic!("{} failed to lint: {e}", w.id));
        assert!(
            report.clean(),
            "{} ({}) is not verifier-clean under {arch:?}: {:#?}",
            w.id,
            w.name,
            report.errors().collect::<Vec<_>>()
        );
        assert!(report.stages > 0, "{}: no verification ran", w.id);
        linted += 1;
    }
    assert!(linted >= 51, "corpus shrank? linted only {linted}");
}

#[test]
fn corpus_is_verifier_clean_under_nomap() {
    lint_all(Architecture::NoMap, 10);
}

#[test]
fn corpus_is_verifier_clean_under_rtm_and_bc() {
    // No-SOF hardware and the strip-all-checks best case exercise the
    // sof-unsupported and post-strip verifier paths.
    lint_all(Architecture::NoMapRtm, 3);
    lint_all(Architecture::NoMapBc, 3);
}
