//! SunSpider-style workloads S01–S26 (paper Table III).
//!
//! Each kernel reproduces its namesake's *workload category*; `AvgS`
//! membership follows the paper exactly (S02/S08/S09 are the "dead code"
//! exclusions, S17 and S21–S26 the "95% non-FTL" string/runtime-dominated
//! exclusions).

use crate::{Suite, Workload};

fn w(id: &'static str, name: &'static str, in_avgs: bool, source: &'static str) -> Workload {
    Workload { id, name, suite: Suite::SunSpider, in_avgs, source }
}

/// The 26 SunSpider workloads in alphabetical (paper) order.
pub fn sunspider() -> Vec<Workload> {
    vec![
        w("S01", "3d-cube", true, S01),
        w("S02", "3d-morph", false, S02),
        w("S03", "3d-raytrace", true, S03),
        w("S04", "access-binary-trees", true, S04),
        w("S05", "access-fannkuch", true, S05),
        w("S06", "access-nbody", true, S06),
        w("S07", "access-nsieve", true, S07),
        w("S08", "bitops-3bit-bits-in-byte", false, S08),
        w("S09", "bitops-bits-in-byte", false, S09),
        w("S10", "bitops-bitwise-and", true, S10),
        w("S11", "bitops-nsieve-bits", true, S11),
        w("S12", "controlflow-recursive", true, S12),
        w("S13", "crypto-aes", true, S13),
        w("S14", "crypto-md5", true, S14),
        w("S15", "crypto-sha1", true, S15),
        w("S16", "date-format-tofte", true, S16),
        w("S17", "date-format-xparb", false, S17),
        w("S18", "math-cordic", true, S18),
        w("S19", "math-partial-sums", true, S19),
        w("S20", "math-spectral-norm", true, S20),
        w("S21", "regexp-dna", false, S21),
        w("S22", "string-base64", false, S22),
        w("S23", "string-fasta", false, S23),
        w("S24", "string-tagcloud", false, S24),
        w("S25", "string-unpack-code", false, S25),
        w("S26", "string-validate-input", false, S26),
    ]
}

const S01: &str = "
// 3d-cube: rotate a vertex cloud with a 3x3 matrix, accumulate coordinates.
var NV = 120;
var xs = new Array(NV); var ys = new Array(NV); var zs = new Array(NV);
for (var i = 0; i < NV; i++) { xs[i] = i * 0.25; ys[i] = i * 0.5 - 3.0; zs[i] = 1.5 - i * 0.125; }
function rotate(angle) {
    var c = Math.cos(angle); var s = Math.sin(angle);
    var acc = 0.0;
    for (var i = 0; i < NV; i++) {
        var x = xs[i]; var y = ys[i]; var z = zs[i];
        var nx = x * c - z * s;
        var nz = x * s + z * c;
        var ny = y * c - nz * s;
        xs[i] = nx; ys[i] = ny; zs[i] = nz;
        acc += nx + ny + nz;
    }
    return acc;
}
function run() {
    for (var i = 0; i < NV; i++) { xs[i] = i * 0.25; ys[i] = i * 0.5 - 3.0; zs[i] = 1.5 - i * 0.125; }
    var t = 0.0;
    for (var k = 0; k < 8; k++) { t += rotate(0.1 * (k + 1)); }
    return Math.floor(t * 1000) % 100000;
}
";

const S02: &str = "
// 3d-morph: sinusoidal morphing of a height field.
var N2 = 180;
var field = new Array(N2);
for (var i = 0; i < N2; i++) { field[i] = 0.0; }
function morph(phase) {
    var s = 0.0;
    for (var i = 0; i < N2; i++) {
        field[i] = Math.sin((i + phase) * 0.05) * 2.0;
        s += field[i];
    }
    return s;
}
function run() {
    var t = 0.0;
    for (var k = 0; k < 6; k++) { t += morph(k); }
    return Math.floor(t * 100);
}
";

const S03: &str = "
// 3d-raytrace: ray-sphere intersection tests over a small scene.
var NS = 12;
var sx = new Array(NS); var sy = new Array(NS); var sz = new Array(NS); var sr = new Array(NS);
for (var i = 0; i < NS; i++) { sx[i] = i - 6; sy[i] = (i % 3) - 1; sz[i] = 5 + i; sr[i] = 1.0 + (i % 2); }
function trace(ox, oy, dx, dy) {
    var hits = 0; var tmin = 1e9;
    for (var i = 0; i < NS; i++) {
        var cx = sx[i] - ox; var cy = sy[i] - oy; var cz = sz[i];
        var b = cx * dx + cy * dy + cz * 0.8;
        var c = cx * cx + cy * cy + cz * cz - sr[i] * sr[i];
        var disc = b * b - c;
        if (disc > 0) {
            var t = b - Math.sqrt(disc);
            if (t > 0 && t < tmin) { tmin = t; hits++; }
        }
    }
    return hits;
}
function run() {
    var total = 0;
    for (var py = 0; py < 12; py++) {
        for (var px = 0; px < 16; px++) {
            total += trace(px * 0.1 - 0.8, py * 0.1 - 0.6, 0.05, 0.02);
        }
    }
    return total;
}
";

const S04: &str = "
// access-binary-trees: allocate and walk small binary trees of objects.
function make(depth) {
    if (depth <= 0) { return {left: null, right: null, item: 1}; }
    return {left: make(depth - 1), right: make(depth - 1), item: depth};
}
function check(node) {
    if (node.left == null) { return node.item; }
    return node.item + check(node.left) - check(node.right);
}
function run() {
    var total = 0;
    for (var k = 0; k < 4; k++) {
        var t = make(6);
        total += check(t);
    }
    return total;
}
";

const S05: &str = "
// access-fannkuch: pancake flipping over a permutation array.
function fannkuch(n) {
    var perm = new Array(n); var perm1 = new Array(n); var count = new Array(n);
    for (var i = 0; i < n; i++) { perm1[i] = i; }
    var maxFlips = 0; var r = n; var iters = 0;
    while (iters < 300) {
        iters++;
        while (r != 1) { count[r - 1] = r; r--; }
        for (var i = 0; i < n; i++) { perm[i] = perm1[i]; }
        var flips = 0;
        var k = perm[0];
        while (k != 0) {
            var half = (k + 1) >> 1;
            for (var i = 0; i < half; i++) {
                var t = perm[i]; perm[i] = perm[k - i]; perm[k - i] = t;
            }
            flips++;
            k = perm[0];
        }
        if (flips > maxFlips) { maxFlips = flips; }
        while (r != n) {
            var p0 = perm1[0];
            for (var i = 0; i < r; i++) { perm1[i] = perm1[i + 1]; }
            perm1[r] = p0;
            count[r] = count[r] - 1;
            if (count[r] > 0) { break; }
            r++;
        }
        if (r == n) { break; }
    }
    return maxFlips;
}
function run() { return fannkuch(7); }
";

const S06: &str = "
// access-nbody: planetary dynamics over an array of body objects.
var bodies = [
    {x: 0.0, y: 0.0, z: 0.0, vx: 0.0, vy: 0.0, vz: 0.0, mass: 39.47},
    {x: 4.84, y: -1.16, z: -0.10, vx: 0.60, vy: 2.81, vz: -0.02, mass: 0.037},
    {x: 8.34, y: 4.12, z: -0.40, vx: -1.01, vy: 1.82, vz: 0.008, mass: 0.011},
    {x: 12.89, y: -15.11, z: -0.22, vx: 1.08, vy: 0.86, vz: -0.01, mass: 0.0017},
    {x: 15.37, y: -25.91, z: 0.17, vx: 0.97, vy: 0.59, vz: -0.03, mass: 0.002}
];
function advance(dt) {
    var n = bodies.length;
    for (var i = 0; i < n; i++) {
        var bi = bodies[i];
        for (var j = i + 1; j < n; j++) {
            var bj = bodies[j];
            var dx = bi.x - bj.x; var dy = bi.y - bj.y; var dz = bi.z - bj.z;
            var d2 = dx * dx + dy * dy + dz * dz;
            var mag = dt / (d2 * Math.sqrt(d2));
            bi.vx -= dx * bj.mass * mag; bi.vy -= dy * bj.mass * mag; bi.vz -= dz * bj.mass * mag;
            bj.vx += dx * bi.mass * mag; bj.vy += dy * bi.mass * mag; bj.vz += dz * bi.mass * mag;
        }
    }
    for (var i = 0; i < n; i++) {
        var b = bodies[i];
        b.x += dt * b.vx; b.y += dt * b.vy; b.z += dt * b.vz;
    }
}
function energy() {
    var e = 0.0;
    for (var i = 0; i < bodies.length; i++) {
        var b = bodies[i];
        e += 0.5 * b.mass * (b.vx * b.vx + b.vy * b.vy + b.vz * b.vz);
    }
    return e;
}
var init6 = [
    [0.0, 0.0, 0.0, 0.0, 0.0, 0.0],
    [4.84, -1.16, -0.10, 0.60, 2.81, -0.02],
    [8.34, 4.12, -0.40, -1.01, 1.82, 0.008],
    [12.89, -15.11, -0.22, 1.08, 0.86, -0.01],
    [15.37, -25.91, 0.17, 0.97, 0.59, -0.03]
];
function run() {
    for (var i = 0; i < bodies.length; i++) {
        var b = bodies[i]; var s0 = init6[i];
        b.x = s0[0]; b.y = s0[1]; b.z = s0[2]; b.vx = s0[3]; b.vy = s0[4]; b.vz = s0[5];
    }
    for (var k = 0; k < 60; k++) { advance(0.01); }
    return Math.floor(energy() * 1e6);
}
";

const S07: &str = "
// access-nsieve: sieve of Eratosthenes over a boolean array.
function nsieve(m) {
    var isPrime = new Array(m);
    for (var i = 2; i < m; i++) { isPrime[i] = true; }
    var count = 0;
    for (var i = 2; i < m; i++) {
        if (isPrime[i]) {
            count++;
            for (var k = i + i; k < m; k += i) { isPrime[k] = false; }
        }
    }
    return count;
}
function run() { return nsieve(1500) + nsieve(800); }
";

const S08: &str = "
// bitops-3bit-bits-in-byte: population count via 3-bit groups.
function bits(b) {
    var c = b & 1;
    c += (b >> 1) & 1; c += (b >> 2) & 1; c += (b >> 3) & 1;
    c += (b >> 4) & 1; c += (b >> 5) & 1; c += (b >> 6) & 1; c += (b >> 7) & 1;
    return c;
}
function run() {
    var sum = 0;
    for (var i = 0; i < 1024; i++) { sum += bits(i & 255); }
    return sum;
}
";

const S09: &str = "
// bitops-bits-in-byte: shifting popcount.
function bitsinbyte(b) {
    var m = 1; var c = 0;
    while (m < 256) {
        if (b & m) { c++; }
        m <<= 1;
    }
    return c;
}
function run() {
    var sum = 0;
    for (var i = 0; i < 1024; i++) { sum += bitsinbyte(i & 255); }
    return sum;
}
";

const S10: &str = "
// bitops-bitwise-and: long chain of & operations on a global.
var bitwiseAndValue = 4294967296;
function step(n) {
    var v = bitwiseAndValue;
    for (var i = 0; i < n; i++) { v = v & i; v = (v + i) & 16777215; }
    bitwiseAndValue = v;
    return v;
}
function run() {
    bitwiseAndValue = 600;
    var t = 0;
    for (var k = 0; k < 4; k++) { t += step(700); }
    return t;
}
";

const S11: &str = "
// bitops-nsieve-bits: bit-packed sieve.
function primes(m) {
    var n = (m >> 5) + 1;
    var a = new Array(n);
    for (var i = 0; i < n; i++) { a[i] = -1; }
    var count = 0;
    for (var i = 2; i < m; i++) {
        if (a[i >> 5] & (1 << (i & 31))) {
            count++;
            for (var k = i + i; k < m; k += i) {
                a[k >> 5] = a[k >> 5] & ~(1 << (k & 31));
            }
        }
    }
    return count;
}
function run() { return primes(2000); }
";

const S12: &str = "
// controlflow-recursive: ackermann / fib / tak mix.
function ack(m, n) {
    if (m == 0) { return n + 1; }
    if (n == 0) { return ack(m - 1, 1); }
    return ack(m - 1, ack(m, n - 1));
}
function fib(n) {
    if (n < 2) { return n; }
    return fib(n - 1) + fib(n - 2);
}
function tak(x, y, z) {
    if (y >= x) { return z; }
    return tak(tak(x - 1, y, z), tak(y - 1, z, x), tak(z - 1, x, y));
}
function run() { return ack(2, 4) + fib(13) + tak(9, 5, 2); }
";

const S13: &str = "
// crypto-aes: s-box substitutions and xor rounds over byte arrays.
var sbox = new Array(256);
for (var i = 0; i < 256; i++) { sbox[i] = (i * 7 + 99) & 255; }
var state13 = new Array(64);
function rounds(n) {
    for (var i = 0; i < 64; i++) { state13[i] = i; }
    for (var r = 0; r < n; r++) {
        for (var i = 0; i < 64; i++) {
            state13[i] = sbox[state13[i]] ^ ((r + i) & 255);
        }
        for (var i = 0; i < 63; i++) {
            state13[i] = (state13[i] + state13[i + 1]) & 255;
        }
    }
    var h = 0;
    for (var i = 0; i < 64; i++) { h = (h * 31 + state13[i]) & 16777215; }
    return h;
}
function run() { return rounds(24); }
";

const S14: &str = "
// crypto-md5: 32-bit mixing with wraparound adds (overflow-check heavy).
function md5mix(blocks) {
    var a = 1732584193; var b = -271733879; var c = -1732584194; var d = 271733878;
    for (var i = 0; i < blocks; i++) {
        var x = (i * 2654435761) | 0;
        a = (a + ((b & c) | (~b & d)) + x) | 0;
        a = ((a << 7) | (a >>> 25)) | 0;
        d = (d + ((a & b) | (~a & c)) + (x ^ 858993459)) | 0;
        d = ((d << 12) | (d >>> 20)) | 0;
        c = (c + ((d & a) | (~d & b)) + (x + 1518500249)) | 0;
        c = ((c << 17) | (c >>> 15)) | 0;
        b = (b + (c ^ d ^ a) + (x ^ 1859775393)) | 0;
        b = ((b << 22) | (b >>> 10)) | 0;
    }
    return (a ^ b ^ c ^ d) | 0;
}
function run() { return md5mix(900); }
";

const S15: &str = "
// crypto-sha1: rotate-xor rounds over a message schedule array.
var sched = new Array(80);
function sha1block(seed) {
    for (var t = 0; t < 16; t++) { sched[t] = (seed * (t + 1)) | 0; }
    for (var t = 16; t < 80; t++) {
        var v = sched[t - 3] ^ sched[t - 8] ^ sched[t - 14] ^ sched[t - 16];
        sched[t] = (v << 1) | (v >>> 31);
    }
    var a = 1732584193; var b = -271733879; var c = -1732584194; var d = 271733878; var e = -1009589776;
    for (var t = 0; t < 80; t++) {
        var f = (b & c) | (~b & d);
        var tmp = (((a << 5) | (a >>> 27)) + f + e + sched[t] + 1518500249) | 0;
        e = d; d = c; c = (b << 30) | (b >>> 2); b = a; a = tmp;
    }
    return (a ^ e) | 0;
}
function run() {
    var h = 0;
    for (var k = 0; k < 10; k++) { h = (h + sha1block(k + 7)) | 0; }
    return h;
}
";

const S16: &str = "
// date-format-tofte: formatting loop mixing int arithmetic and strings.
var monthNames = ['Jan','Feb','Mar','Apr','May','Jun','Jul','Aug','Sep','Oct','Nov','Dec'];
function pad2(n) {
    if (n < 10) { return '0' + n; }
    return '' + n;
}
function formatDay(day) {
    var month = day % 12;
    var dom = (day * 7) % 28 + 1;
    var h = (day * 13) % 24;
    var m = (day * 29) % 60;
    return monthNames[month] + ' ' + pad2(dom) + ' ' + pad2(h) + ':' + pad2(m);
}
function run() {
    var total = 0;
    for (var d = 0; d < 120; d++) {
        var s = formatDay(d);
        total += s.length + s.charCodeAt(0);
    }
    return total;
}
";

const S17: &str = "
// date-format-xparb: string-building dominated (95% non-FTL).
function numToWords(n) {
    var ones = ['zero','one','two','three','four','five','six','seven','eight','nine'];
    var out = '';
    while (n > 0) {
        out = ones[n % 10] + '-' + out;
        n = Math.floor(n / 10);
    }
    return out;
}
function run() {
    var total = 0;
    for (var i = 1; i < 90; i++) {
        var s = numToWords(i * 37);
        total += s.length;
    }
    return total;
}
";

const S18: &str = "
// math-cordic: CORDIC sine/cosine with a lookup table — the paper's
// redundant-load example lives in exactly this shape.
var angles = new Array(25);
var kvalues = new Array(25);
for (var i = 0; i < 25; i++) { angles[i] = Math.atan(Math.pow(2, -i)) * 65536; kvalues[i] = i; }
var cordicState = {x: 0, y: 0};
function cordicsincos(target) {
    var x = 39797;
    var y = 0;
    var ta = 0;
    for (var i = 0; i < 25; i++) {
        var shift = i;
        if (ta < target) {
            var nx = x - (y >> shift);
            y = y + (x >> shift);
            x = nx;
            ta = ta + angles[i];
        } else {
            var nx2 = x + (y >> shift);
            y = y - (x >> shift);
            x = nx2;
            ta = ta - angles[i];
        }
        cordicState.x = x;
        cordicState.y = y;
    }
    return cordicState.x + cordicState.y;
}
function run() {
    var total = 0;
    for (var k = 0; k < 80; k++) { total = (total + cordicsincos(k * 1000)) | 0; }
    return total;
}
";

const S19: &str = "
// math-partial-sums: classic float series.
function partial(n) {
    var a1 = 0.0; var a2 = 0.0; var a3 = 0.0; var a4 = 0.0; var a5 = 0.0;
    var twothirds = 2.0 / 3.0;
    var alt = -1.0;
    for (var k = 1; k <= n; k++) {
        var k2 = k * k; var k3 = k2 * k;
        var sk = Math.sin(k); var ck = Math.cos(k);
        alt = -alt;
        a1 += Math.pow(twothirds, k - 1);
        a2 += 1.0 / (k3 * sk * sk);
        a3 += 1.0 / (k3 * ck * ck);
        a4 += 1.0 / k;
        a5 += alt / k;
    }
    return a1 + a2 + a3 + a4 + a5;
}
function run() { return Math.floor(partial(220) * 10000); }
";

const S20: &str = "
// math-spectral-norm: matrix-free A*v products.
function a(i, j) { return 1.0 / ((i + j) * (i + j + 1) / 2 + i + 1); }
function av(v, out, n) {
    for (var i = 0; i < n; i++) {
        var s = 0.0;
        for (var j = 0; j < n; j++) { s += a(i, j) * v[j]; }
        out[i] = s;
    }
}
function atv(v, out, n) {
    for (var i = 0; i < n; i++) {
        var s = 0.0;
        for (var j = 0; j < n; j++) { s += a(j, i) * v[j]; }
        out[i] = s;
    }
}
function run() {
    var n = 24;
    var u = new Array(n); var v = new Array(n); var t = new Array(n);
    for (var i = 0; i < n; i++) { u[i] = 1.0; }
    for (var k = 0; k < 6; k++) {
        av(u, t, n); atv(t, v, n);
        av(v, t, n); atv(t, u, n);
    }
    var vBv = 0.0; var vv = 0.0;
    for (var i = 0; i < n; i++) { vBv += u[i] * v[i]; vv += v[i] * v[i]; }
    return Math.floor(Math.sqrt(vBv / vv) * 1e9);
}
";

const S21: &str = "
// regexp-dna: sequence scanning with indexOf (runtime dominated).
var dna = '';
var bases = 'acgt';
for (var i = 0; i < 300; i++) { dna = dna + bases.charAt((i * 7) % 4); }
function countPattern(p) {
    var count = 0; var pos = 0;
    while (true) {
        var found = dna.substring(pos, dna.length).indexOf(p);
        if (found < 0) { break; }
        count++;
        pos = pos + found + 1;
        if (pos >= dna.length) { break; }
    }
    return count;
}
function run() {
    return countPattern('ac') + countPattern('gt') + countPattern('ca') + countPattern('acg');
}
";

const S22: &str = "
// string-base64: char-code packing (string runtime dominated).
var alphabet = 'ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/';
function encode3(a, b, c) {
    var n = (a << 16) | (b << 8) | c;
    return alphabet.charAt((n >> 18) & 63) + alphabet.charAt((n >> 12) & 63)
        + alphabet.charAt((n >> 6) & 63) + alphabet.charAt(n & 63);
}
function run() {
    var out = '';
    for (var i = 0; i < 60; i++) {
        out = out + encode3(i & 255, (i * 3) & 255, (i * 7) & 255);
    }
    return out.length + out.charCodeAt(17);
}
";

const S23: &str = "
// string-fasta: weighted random sequence emission.
var lookup = 'acgtacgtacgtacgtacgtacgtacgtBDHKMNRSVWY';
function fasta(n) {
    var out = '';
    var seed = 42;
    for (var i = 0; i < n; i++) {
        seed = (seed * 3877 + 29573) % 139968;
        var idx = Math.floor(lookup.length * seed / 139968);
        out = out + lookup.charAt(idx);
    }
    return out;
}
function run() {
    var s = fasta(240);
    return s.length + s.charCodeAt(7) + s.charCodeAt(99);
}
";

const S24: &str = "
// string-tagcloud: object/string table building (runtime dominated).
function run() {
    var tags = new Array(40);
    for (var i = 0; i < 40; i++) {
        tags[i] = {name: 'tag' + i, weight: (i * 37) % 19};
    }
    var total = 0;
    for (var i = 0; i < 40; i++) {
        var t = tags[i];
        var label = t.name + ':' + t.weight;
        total += label.length + t.weight;
    }
    return total;
}
";

const S25: &str = "
// string-unpack-code: tokenizing a packed string (runtime dominated).
var packed = 'ab|cd|efg|h|ijkl|mn|op|q|rstu|vw|xyz|0|12|345|67|89';
function run() {
    var total = 0;
    var token = '';
    for (var i = 0; i < packed.length; i++) {
        var ch = packed.charAt(i);
        if (ch == '|') {
            total += token.length * 3 + token.charCodeAt(0);
            token = '';
        } else {
            token = token + ch;
        }
    }
    total += token.length;
    return total;
}
";

const S26: &str = "
// string-validate-input: per-character validation (runtime dominated).
function isDigit(c) { return c >= 48 && c <= 57; }
function isAlpha(c) { return (c >= 97 && c <= 122) || (c >= 65 && c <= 90); }
function validate(s) {
    var ok = 0;
    for (var i = 0; i < s.length; i++) {
        var c = s.charCodeAt(i);
        if (isDigit(c) || isAlpha(c) || c == 64 || c == 46) { ok++; }
    }
    return ok;
}
function run() {
    var total = 0;
    total += validate('user123@example.com');
    total += validate('not valid!! input##');
    total += validate('Alice.Smith42@mail.example.org');
    for (var k = 0; k < 30; k++) { total += validate('probe' + k + '@host' + k); }
    return total;
}
";
