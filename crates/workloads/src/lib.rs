//! Benchmark workloads for the NoMap reproduction.
//!
//! The paper evaluates the SunSpider (26) and Kraken (14) suites plus the
//! Shootout suite for its motivating Figure 1. The original benchmark
//! sources cannot be reproduced verbatim, so each program here is a
//! MiniJS kernel modelled on its namesake's *category* — the same mix of
//! array traffic, int32 overflow exposure, property access, floating-point
//! math, string work and recursion — sized for simulation. Suite membership
//! (the `AvgS` subsets of paper Table III) is encoded per workload.
//!
//! # Example
//!
//! ```
//! use nomap_workloads::{sunspider, run_workload, RunSpec};
//! use nomap_vm::Architecture;
//!
//! let w = &sunspider()[0]; // S01
//! let out = run_workload(w, RunSpec::quick(Architecture::Base))?;
//! assert!(out.stats.total_insts() > 0);
//! # Ok::<(), nomap_vm::VmError>(())
//! ```

pub mod fleet;
mod harness;
mod kraken;
pub mod native;
mod shootout;
mod sunspider;

pub use harness::{run_workload, RunOutput, RunSpec};
pub use kraken::kraken;
pub use shootout::shootout;
pub use sunspider::sunspider;

/// Which suite a workload belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Suite {
    /// SunSpider (S01–S26).
    SunSpider,
    /// Kraken (K01–K14).
    Kraken,
    /// Shootout (Figure 1).
    Shootout,
}

/// One benchmark program.
#[derive(Debug, Clone)]
pub struct Workload {
    /// Short id (`"S13"`, `"K08"`, `"fibo"`).
    pub id: &'static str,
    /// Original benchmark this kernel is modelled on.
    pub name: &'static str,
    /// Suite membership.
    pub suite: Suite,
    /// Included in the paper's `AvgS` subset (Table III).
    pub in_avgs: bool,
    /// MiniJS source; defines globals and a `run()` entry point returning a
    /// numeric checksum.
    pub source: &'static str,
}

/// All SunSpider + Kraken workloads (the paper's evaluation set).
pub fn evaluation_suites() -> Vec<Workload> {
    let mut v = sunspider();
    v.extend(kraken());
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_sizes_match_paper() {
        assert_eq!(sunspider().len(), 26);
        assert_eq!(kraken().len(), 14);
        assert_eq!(shootout().len(), 12);
    }

    #[test]
    fn avgs_membership_matches_table_iii() {
        let s: Vec<&str> = sunspider().iter().filter(|w| w.in_avgs).map(|w| w.id).collect();
        assert_eq!(
            s,
            [
                "S01", "S03", "S04", "S05", "S06", "S07", "S10", "S11", "S12", "S13", "S14", "S15",
                "S16", "S18", "S19", "S20"
            ]
        );
        let k: Vec<&str> = kraken().iter().filter(|w| w.in_avgs).map(|w| w.id).collect();
        assert_eq!(k, ["K01", "K05", "K06", "K07", "K08", "K11", "K12", "K13", "K14"]);
    }

    #[test]
    fn all_sources_parse() {
        for w in evaluation_suites().iter().chain(shootout().iter()) {
            nomap_bytecode::compile_program(w.source).unwrap_or_else(|e| panic!("{}: {e}", w.id));
        }
    }
}
