//! Kraken-style workloads K01–K14 (paper Table III).
//!
//! Kraken kernels process larger data than SunSpider (audio buffers,
//! images), which is what makes their transaction footprints overflow
//! Intel RTM's L1-bounded write set in the paper (§VII-A: "the lack of
//! transactions with a footprint small enough to fit in the caches").

use crate::{Suite, Workload};

fn w(id: &'static str, name: &'static str, in_avgs: bool, source: &'static str) -> Workload {
    Workload { id, name, suite: Suite::Kraken, in_avgs, source }
}

/// The 14 Kraken workloads in alphabetical (paper) order.
pub fn kraken() -> Vec<Workload> {
    vec![
        w("K01", "ai-astar", true, K01),
        w("K02", "audio-beat-detection", false, K02),
        w("K03", "audio-dft", false, K03),
        w("K04", "audio-fft", false, K04),
        w("K05", "audio-oscillator", true, K05),
        w("K06", "imaging-darkroom", true, K06),
        w("K07", "imaging-desaturate", true, K07),
        w("K08", "imaging-gaussian-blur", true, K08),
        w("K09", "json-parse-financial", false, K09),
        w("K10", "json-stringify-tinderbox", false, K10),
        w("K11", "stanford-crypto-aes", true, K11),
        w("K12", "stanford-crypto-ccm", true, K12),
        w("K13", "stanford-crypto-pbkdf2", true, K13),
        w("K14", "stanford-crypto-sha256-iterative", true, K14),
    ]
}

const K01: &str = "
// ai-astar: grid cost relaxation (array-indexing heavy).
var W = 48; var H = 24;
var cost = new Array(W * H);
var walls = new Array(W * H);
for (var i = 0; i < W * H; i++) { walls[i] = ((i * 2654435761) >>> 16) % 5 == 0 ? 1 : 0; }
function relax() {
    for (var i = 0; i < W * H; i++) { cost[i] = 1000000; }
    cost[0] = 0;
    var changed = 1; var rounds = 0;
    while (changed == 1 && rounds < 40) {
        changed = 0; rounds++;
        for (var y = 0; y < H; y++) {
            for (var x = 0; x < W; x++) {
                var idx = y * W + x;
                if (walls[idx] == 1) { continue; }
                var best = cost[idx];
                if (x > 0 && cost[idx - 1] + 1 < best) { best = cost[idx - 1] + 1; }
                if (x < W - 1 && cost[idx + 1] + 1 < best) { best = cost[idx + 1] + 1; }
                if (y > 0 && cost[idx - W] + 1 < best) { best = cost[idx - W] + 1; }
                if (y < H - 1 && cost[idx + W] + 1 < best) { best = cost[idx + W] + 1; }
                if (best < cost[idx]) { cost[idx] = best; changed = 1; }
            }
        }
    }
    return cost[W * H - 1];
}
function run() { return relax(); }
";

const K02: &str = "
// audio-beat-detection: windowed energy with object allocation per window
// (runtime dominated).
function run() {
    var windows = new Array(30);
    for (var wd = 0; wd < 30; wd++) {
        var acc = 0.0;
        for (var i = 0; i < 20; i++) {
            acc += Math.abs(Math.sin((wd * 20 + i) * 0.11));
        }
        windows[wd] = {energy: acc, index: wd, label: 'w' + wd};
    }
    var beats = 0;
    for (var wd = 1; wd < 30; wd++) {
        if (windows[wd].energy > windows[wd - 1].energy * 1.01) { beats += windows[wd].label.length; }
    }
    return beats;
}
";

const K03: &str = "
// audio-dft: naive DFT (trig-call dominated, counted as runtime work).
var SIGN = 64;
var signal = new Array(SIGN);
for (var i = 0; i < SIGN; i++) { signal[i] = Math.sin(i * 0.3) + 0.5 * Math.sin(i * 0.7); }
function dftbin(k) {
    var re = 0.0; var im = 0.0;
    for (var n = 0; n < SIGN; n++) {
        var ph = 6.283185307179586 * k * n / SIGN;
        re += signal[n] * Math.cos(ph);
        im -= signal[n] * Math.sin(ph);
    }
    return re * re + im * im;
}
function run() {
    var total = 0.0;
    for (var k = 0; k < 16; k++) { total += dftbin(k); }
    return Math.floor(total * 100);
}
";

const K04: &str = "
// audio-fft: butterfly passes over split re/im arrays.
var FN = 128;
var re = new Array(FN); var im = new Array(FN);
function fftpass(span) {
    for (var start = 0; start < FN; start += span * 2) {
        for (var k = 0; k < span; k++) {
            var i = start + k; var j = i + span;
            var tr = re[j] * 0.7 - im[j] * 0.7;
            var ti = re[j] * 0.7 + im[j] * 0.7;
            re[j] = re[i] - tr; im[j] = im[i] - ti;
            re[i] = re[i] + tr; im[i] = im[i] + ti;
        }
    }
}
function run() {
    for (var i = 0; i < FN; i++) { re[i] = Math.sin(i * 0.5); im[i] = 0.0; }
    var span = 1;
    while (span < FN) { fftpass(span); span = span * 2; }
    var e = 0.0;
    for (var i = 0; i < FN; i++) { e += re[i] * re[i] + im[i] * im[i]; }
    return Math.floor(e);
}
";

const K05: &str = "
// audio-oscillator: wave generation calling a helper per sample — the
// call inside the hot loop is what turns its transaction time into
// TMUnopt/NoFTL work in the paper.
var BUF = 512;
var buffer = new Array(BUF);
function sample(phase) {
    return Math.sin(phase) + 0.3 * Math.sin(phase * 2.0) + 0.1 * Math.sin(phase * 3.0);
}
function fill(freq) {
    var acc = 0.0;
    for (var i = 0; i < BUF; i++) {
        buffer[i] = sample(i * freq);
        acc += buffer[i];
    }
    return acc;
}
function run() {
    var t = 0.0;
    for (var k = 1; k <= 3; k++) { t += fill(0.01 * k); }
    return Math.floor(t * 1000);
}
";

const K06: &str = "
// imaging-darkroom: per-pixel brightness/contrast with clamping helper.
var PIX6 = 4096;
var img6 = new Array(PIX6);
for (var i = 0; i < PIX6; i++) { img6[i] = (i * 97) & 255; }
function clamp(v) {
    if (v < 0) { return 0; }
    if (v > 255) { return 255; }
    return v;
}
function adjust(brightness, contrast) {
    var sum = 0;
    for (var i = 0; i < PIX6; i++) {
        var v = img6[i];
        v = ((v - 128) * contrast >> 6) + 128 + brightness;
        v = clamp(v);
        img6[i] = v;
        sum = (sum + v) & 1048575;
    }
    return sum;
}
function run() {
    for (var i = 0; i < PIX6; i++) { img6[i] = (i * 97) & 255; }
    return adjust(3, 70) + adjust(-2, 60);
}
";

const K07: &str = "
// imaging-desaturate: rgb → gray over a large int array.
var PIX7 = 6144;
var rgb = new Array(PIX7 * 3);
for (var i = 0; i < PIX7 * 3; i++) { rgb[i] = (i * 31) & 255; }
function desaturate() {
    var sum = 0;
    for (var p = 0; p < PIX7; p++) {
        var r = rgb[p * 3]; var g = rgb[p * 3 + 1]; var b = rgb[p * 3 + 2];
        var gray = (r * 77 + g * 151 + b * 28) >> 8;
        rgb[p * 3] = gray; rgb[p * 3 + 1] = gray; rgb[p * 3 + 2] = gray;
        sum = (sum + gray) & 1048575;
    }
    return sum;
}
function run() {
    for (var i = 0; i < PIX7 * 3; i++) { rgb[i] = (i * 31) & 255; }
    return desaturate();
}
";

const K08: &str = "
// imaging-gaussian-blur: separable blur over a float image. The write
// footprint (thousands of doubles) is what breaks RTM's L1-bounded
// transactions in the paper.
var BW = 96; var BH = 64;
var src8 = new Array(BW * BH);
var dst8 = new Array(BW * BH);
for (var i = 0; i < BW * BH; i++) { src8[i] = (i % 251) * 1.0; }
function blurH() {
    for (var y = 0; y < BH; y++) {
        for (var x = 2; x < BW - 2; x++) {
            var idx = y * BW + x;
            dst8[idx] = (src8[idx - 2] + 4.0 * src8[idx - 1] + 6.0 * src8[idx]
                + 4.0 * src8[idx + 1] + src8[idx + 2]) * 0.0625;
        }
    }
}
function blurV() {
    for (var y = 2; y < BH - 2; y++) {
        for (var x = 0; x < BW; x++) {
            var idx = y * BW + x;
            src8[idx] = (dst8[idx - 2 * BW] + 4.0 * dst8[idx - BW] + 6.0 * dst8[idx]
                + 4.0 * dst8[idx + BW] + dst8[idx + 2 * BW]) * 0.0625;
        }
    }
}
function run() {
    for (var i = 0; i < BW * BH; i++) { src8[i] = (i % 251) * 1.0; }
    blurH(); blurV();
    var s = 0.0;
    for (var i = 0; i < BW * BH; i += 7) { s += src8[i]; }
    return Math.floor(s);
}
";

const K09: &str = "
// json-parse-financial: tokenizing a quote string (runtime dominated).
var quotes = '{sym:IBM,px:12550,qty:300}|{sym:AAPL,px:18230,qty:120}|{sym:MSFT,px:31005,qty:75}';
function parseInt10(s) {
    var v = 0;
    for (var i = 0; i < s.length; i++) { v = v * 10 + (s.charCodeAt(i) - 48); }
    return v;
}
function run() {
    var total = 0;
    for (var rep = 0; rep < 12; rep++) {
        var i = 0;
        while (i < quotes.length) {
            var c = quotes.charCodeAt(i);
            if (c >= 48 && c <= 57) {
                var j = i;
                while (j < quotes.length && quotes.charCodeAt(j) >= 48 && quotes.charCodeAt(j) <= 57) { j++; }
                total += parseInt10(quotes.substring(i, j));
                i = j;
            } else { i++; }
        }
    }
    return total & 16777215;
}
";

const K10: &str = "
// json-stringify-tinderbox: building a report string (runtime dominated).
function run() {
    var out = '';
    for (var i = 0; i < 40; i++) {
        out = out + '{id:' + i + ',ok:' + (i % 3 == 0 ? 'true' : 'false') + '}';
        if (out.length > 600) { out = out.substring(out.length - 300, out.length); }
    }
    return out.length + out.charCodeAt(5);
}
";

const K11: &str = "
// stanford-crypto-aes: larger s-box rounds over a 256-byte state.
var sbox11 = new Array(256);
for (var i = 0; i < 256; i++) { sbox11[i] = (i * 11 + 7) & 255; }
var state11 = new Array(256);
function encrypt(rounds) {
    for (var i = 0; i < 256; i++) { state11[i] = i; }
    for (var r = 0; r < rounds; r++) {
        for (var i = 0; i < 256; i++) {
            state11[i] = sbox11[state11[i] ^ ((r * 17 + i) & 255)];
        }
        for (var i = 0; i < 252; i += 4) {
            var t = state11[i];
            state11[i] = state11[i + 1] ^ t;
            state11[i + 1] = state11[i + 2] ^ t;
            state11[i + 2] = state11[i + 3] ^ t;
            state11[i + 3] = t;
        }
    }
    var h = 0;
    for (var i = 0; i < 256; i++) { h = (h * 33 + state11[i]) & 16777215; }
    return h;
}
function run() { return encrypt(16); }
";

const K12: &str = "
// stanford-crypto-ccm: counter-mode xor with MAC accumulation.
var block12 = new Array(128);
function ccm(n) {
    for (var i = 0; i < 128; i++) { block12[i] = (i * 3) & 255; }
    var mac = 0;
    for (var ctr = 0; ctr < n; ctr++) {
        var key = (ctr * 2654435761) | 0;
        for (var i = 0; i < 128; i++) {
            var ks = (key >> (i & 15)) & 255;
            block12[i] = block12[i] ^ ks;
            mac = (mac + block12[i] * (i + 1)) | 0;
        }
    }
    return mac | 0;
}
function run() { return ccm(40); }
";

const K13: &str = "
// stanford-crypto-pbkdf2: iterated keyed mixing.
function prf(key, data) {
    var h = key | 0;
    h = (h ^ data) | 0;
    h = (h * 1103515245 + 12345) | 0;
    h = (h ^ (h >>> 13)) | 0;
    return h;
}
function pbkdf2(iters) {
    var u = 1234567;
    var out = 0;
    for (var i = 0; i < iters; i++) {
        u = prf(u, i);
        out = (out ^ u) | 0;
    }
    return out;
}
function run() { return pbkdf2(4000); }
";

const K14: &str = "
// stanford-crypto-sha256-iterative: 32-bit compressions over a schedule.
var w14 = new Array(64);
function sha256block(seed) {
    for (var t = 0; t < 16; t++) { w14[t] = (seed * (t + 3)) | 0; }
    for (var t = 16; t < 64; t++) {
        var x = w14[t - 15]; var y = w14[t - 2];
        var s0 = ((x >>> 7) | (x << 25)) ^ ((x >>> 18) | (x << 14)) ^ (x >>> 3);
        var s1 = ((y >>> 17) | (y << 15)) ^ ((y >>> 19) | (y << 13)) ^ (y >>> 10);
        w14[t] = (w14[t - 16] + s0 + w14[t - 7] + s1) | 0;
    }
    var a = 1779033703; var b = -1150833019; var c = 1013904242; var d = -1521486534;
    var e = 1359893119; var f = -1694144372; var g = 528734635; var h = 1541459225;
    for (var t = 0; t < 64; t++) {
        var S1 = ((e >>> 6) | (e << 26)) ^ ((e >>> 11) | (e << 21)) ^ ((e >>> 25) | (e << 7));
        var ch = (e & f) ^ (~e & g);
        var t1 = (h + S1 + ch + w14[t]) | 0;
        var S0 = ((a >>> 2) | (a << 30)) ^ ((a >>> 13) | (a << 19)) ^ ((a >>> 22) | (a << 10));
        var mj = (a & b) ^ (a & c) ^ (b & c);
        var t2 = (S0 + mj) | 0;
        h = g; g = f; f = e; e = (d + t1) | 0;
        d = c; c = b; b = a; a = (t1 + t2) | 0;
    }
    return (a ^ e) | 0;
}
function run() {
    var hsh = 0;
    for (var k = 0; k < 8; k++) { hsh = (hsh + sha256block(k + 99)) | 0; }
    return hsh;
}
";
