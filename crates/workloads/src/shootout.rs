//! Shootout-style kernels for the paper's motivating Figure 1, matching
//! the benchmarks named there: binarytrees, fannkuchredux, fibo, harmonic,
//! hash, heapsort, matrix, nbody, random, sieve, takfp — plus one
//! synthetic kernel (`histmix`, outside the figure's `AvgS` set) whose hot
//! loop overflows the HTM write buffer *and* calls a helper, so the §V-C
//! ladder can only strip-mine it under the interprocedural
//! callee-inclusive footprint bound.
//!
//! [`crate::native`] holds Rust reference implementations with abstract
//! operation counters standing in for the figure's "C" baseline.

use crate::{Suite, Workload};

fn w(id: &'static str, source: &'static str) -> Workload {
    Workload { id, name: id, suite: Suite::Shootout, in_avgs: true, source }
}

/// The 11 Shootout workloads of Figure 1 in the figure's order, then the
/// synthetic `histmix` kernel (excluded from `AvgS`).
pub fn shootout() -> Vec<Workload> {
    vec![
        w("binarytrees", BINARYTREES),
        w("fannkuchredux", FANNKUCHREDUX),
        w("fibo", FIBO),
        w("harmonic", HARMONIC),
        w("hash", HASH),
        w("heapsort", HEAPSORT),
        w("matrix", MATRIX),
        w("nbody", NBODY),
        w("random", RANDOM),
        w("sieve", SIEVE),
        w("takfp", TAKFP),
        Workload {
            id: "histmix",
            name: "histmix",
            suite: Suite::Shootout,
            in_avgs: false,
            source: HISTMIX,
        },
    ]
}

const BINARYTREES: &str = "
function make(depth) {
    if (depth <= 0) { return {l: null, r: null, v: 1}; }
    return {l: make(depth - 1), r: make(depth - 1), v: depth};
}
function check(n) {
    if (n.l == null) { return n.v; }
    return n.v + check(n.l) - check(n.r);
}
function run() {
    var total = 0;
    for (var d = 2; d <= 6; d++) { total += check(make(d)); }
    return total;
}
";

const FANNKUCHREDUX: &str = "
function run() {
    var n = 7;
    var perm = new Array(n); var perm1 = new Array(n); var count = new Array(n);
    for (var i = 0; i < n; i++) { perm1[i] = i; }
    var maxFlips = 0; var checksum = 0; var r = n; var iters = 0; var sign = 1;
    while (iters < 400) {
        iters++;
        while (r != 1) { count[r - 1] = r; r--; }
        for (var i = 0; i < n; i++) { perm[i] = perm1[i]; }
        var flips = 0; var k = perm[0];
        while (k != 0) {
            var half = (k + 1) >> 1;
            for (var i = 0; i < half; i++) { var t = perm[i]; perm[i] = perm[k - i]; perm[k - i] = t; }
            flips++; k = perm[0];
        }
        if (flips > maxFlips) { maxFlips = flips; }
        checksum += sign * flips; sign = -sign;
        while (r != n) {
            var p0 = perm1[0];
            for (var i = 0; i < r; i++) { perm1[i] = perm1[i + 1]; }
            perm1[r] = p0;
            count[r] = count[r] - 1;
            if (count[r] > 0) { break; }
            r++;
        }
        if (r == n) { break; }
    }
    return maxFlips * 1000 + (checksum & 255);
}
";

const FIBO: &str = "
function fib(n) { if (n < 2) { return n; } return fib(n - 1) + fib(n - 2); }
function run() { return fib(16); }
";

const HARMONIC: &str = "
function run() {
    var sum = 0.0;
    for (var i = 1; i <= 6000; i++) { sum += 1.0 / i; }
    return Math.floor(sum * 1e6);
}
";

const HASH: &str = "
// Hash-table workload modelled with object property insertion + lookup.
function run() {
    var table = new Array(512);
    for (var i = 0; i < 512; i++) { table[i] = -1; }
    var hits = 0;
    for (var i = 0; i < 1500; i++) {
        var key = ((i * 2654435761) >>> 8) & 511;
        if (table[key] == i - 512) { hits++; }
        table[key] = i;
    }
    return hits;
}
";

const HEAPSORT: &str = "
var HN = 400;
var heap = new Array(HN);
function siftDown(start, end) {
    var root = start;
    while (root * 2 + 1 <= end) {
        var child = root * 2 + 1;
        if (child + 1 <= end && heap[child] < heap[child + 1]) { child++; }
        if (heap[root] < heap[child]) {
            var t = heap[root]; heap[root] = heap[child]; heap[child] = t;
            root = child;
        } else { return; }
    }
}
function run() {
    var seed = 12345;
    for (var i = 0; i < HN; i++) {
        seed = (seed * 1103515245 + 12345) & 2147483647;
        heap[i] = seed % 10000;
    }
    for (var s = ((HN - 2) / 2) | 0; s >= 0; s--) { siftDown(s, HN - 1); }
    for (var e = HN - 1; e > 0; e--) {
        var t = heap[e]; heap[e] = heap[0]; heap[0] = t;
        siftDown(0, e - 1);
    }
    var check = 0;
    for (var i = 1; i < HN; i++) { if (heap[i] >= heap[i - 1]) { check++; } }
    return check;
}
";

const MATRIX: &str = "
var MSZ = 18;
function mkmatrix() {
    var m = new Array(MSZ * MSZ);
    for (var i = 0; i < MSZ * MSZ; i++) { m[i] = i + 1; }
    return m;
}
function mmult(a, b, c) {
    for (var i = 0; i < MSZ; i++) {
        for (var j = 0; j < MSZ; j++) {
            var s = 0;
            for (var k = 0; k < MSZ; k++) { s = (s + a[i * MSZ + k] * b[k * MSZ + j]) | 0; }
            c[i * MSZ + j] = s;
        }
    }
}
function run() {
    var a = mkmatrix(); var b = mkmatrix(); var c = mkmatrix();
    for (var iter = 0; iter < 4; iter++) { mmult(a, b, c); mmult(b, c, a); }
    return (a[0] + a[MSZ * MSZ - 1]) | 0;
}
";

const NBODY: &str = "
var px = [0.0, 4.84, 8.34, 12.89, 15.37];
var py = [0.0, -1.16, 4.12, -15.11, -25.91];
var vx = [0.0, 0.60, -1.01, 1.08, 0.97];
var vy = [0.0, 2.81, 1.82, 0.86, 0.59];
var mass = [39.47, 0.037, 0.011, 0.0017, 0.002];
var px0 = [0.0, 4.84, 8.34, 12.89, 15.37];
var py0 = [0.0, -1.16, 4.12, -15.11, -25.91];
var vx0 = [0.0, 0.60, -1.01, 1.08, 0.97];
var vy0 = [0.0, 2.81, 1.82, 0.86, 0.59];
function reset() {
    for (var i = 0; i < 5; i++) { px[i] = px0[i]; py[i] = py0[i]; vx[i] = vx0[i]; vy[i] = vy0[i]; }
}
function advance(dt) {
    for (var i = 0; i < 5; i++) {
        for (var j = i + 1; j < 5; j++) {
            var dx = px[i] - px[j]; var dy = py[i] - py[j];
            var d2 = dx * dx + dy * dy;
            var mag = dt / (d2 * Math.sqrt(d2));
            vx[i] -= dx * mass[j] * mag; vy[i] -= dy * mass[j] * mag;
            vx[j] += dx * mass[i] * mag; vy[j] += dy * mass[i] * mag;
        }
    }
    for (var i = 0; i < 5; i++) { px[i] += dt * vx[i]; py[i] += dt * vy[i]; }
}
function run() {
    reset();
    for (var k = 0; k < 100; k++) { advance(0.01); }
    var e = 0.0;
    for (var i = 0; i < 5; i++) { e += 0.5 * mass[i] * (vx[i] * vx[i] + vy[i] * vy[i]); }
    return Math.floor(e * 1e6);
}
";

const RANDOM: &str = "
var IM = 139968; var IA = 3877; var IC = 29573;
var seed = 42;
function genRandom(max) {
    seed = (seed * IA + IC) % IM;
    return max * seed / IM;
}
function run() {
    seed = 42;
    var last = 0.0;
    for (var i = 0; i < 4000; i++) { last = genRandom(100.0); }
    return Math.floor(last * 1000);
}
";

const SIEVE: &str = "
function run() {
    var flags = new Array(1024);
    var count = 0;
    for (var iter = 0; iter < 4; iter++) {
        count = 0;
        for (var i = 2; i < 1024; i++) { flags[i] = true; }
        for (var i = 2; i < 1024; i++) {
            if (flags[i]) {
                for (var k = i + i; k < 1024; k += i) { flags[k] = false; }
                count++;
            }
        }
    }
    return count;
}
";

const TAKFP: &str = "
function tak(x, y, z) {
    if (y >= x) { return z; }
    return tak(tak(x - 1.0, y, z), tak(y - 1.0, z, x), tak(z - 1.0, x, y));
}
function run() { return tak(18.0, 12.0, 6.0); }
";

// The fill loop stores every 8th word — one fresh 64 B line per
// iteration, 4500 lines per pass against the ROT write buffer's 4096 —
// so it is a guaranteed capacity abort at full scope. Intraprocedurally
// the `mix` call makes the loop untileable (unknown callee footprint →
// transactions disabled); the interprocedural summary proves `mix` pure,
// letting the §V-C ladder seed a strip-mined tile instead.
const HISTMIX: &str = "
var bins = new Array(36000);
function mix(h, v) {
    h = (h ^ v) | 0;
    h = (h * 1103515245 + 12345) | 0;
    return h;
}
function fill() {
    var h = 7;
    for (var i = 0; i < 36000; i += 8) {
        h = mix(h, i);
        bins[i] = h & 255;
    }
    return h;
}
function run() {
    var t = fill();
    var s = 0;
    for (var j = 0; j < 36000; j += 512) { s = (s + bins[j]) | 0; }
    return (s ^ t) | 0;
}
";
