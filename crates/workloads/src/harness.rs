//! Workload runner: warm up until steady state, then measure.

use nomap_vm::{Architecture, ExecStats, TierLimit, Value, Vm, VmConfig, VmError};

use crate::Workload;

/// How to run a workload.
#[derive(Debug, Clone, Copy)]
pub struct RunSpec {
    /// VM configuration.
    pub config: VmConfig,
    /// `run()` calls before measurement (tier-up + cache warmup).
    pub warmup: u32,
    /// Measured `run()` calls.
    pub measured: u32,
}

impl RunSpec {
    /// Steady-state measurement (the paper's methodology): enough warmup
    /// for every hot function to reach the top tier.
    pub fn steady(arch: Architecture) -> Self {
        RunSpec { config: VmConfig::new(arch), warmup: 120, measured: 3 }
    }

    /// Faster, for tests.
    pub fn quick(arch: Architecture) -> Self {
        RunSpec { config: VmConfig::new(arch), warmup: 70, measured: 1 }
    }

    /// Steady-state with a capped tier (Table I / Figure 1).
    pub fn capped(arch: Architecture, limit: TierLimit) -> Self {
        let mut config = VmConfig::new(arch);
        config.tier_limit = limit;
        RunSpec { config, warmup: 120, measured: 3 }
    }
}

/// Result of a measured run.
#[derive(Debug, Clone)]
pub struct RunOutput {
    /// Statistics of the measured window only.
    pub stats: ExecStats,
    /// The checksum `run()` returned (identical across configurations for
    /// a correct VM).
    pub checksum: Value,
    /// Guest `print` output.
    pub output: String,
}

/// Runs `w` per `spec` and returns the measured-window statistics.
///
/// # Errors
///
/// Propagates compile and guest errors.
pub fn run_workload(w: &Workload, spec: RunSpec) -> Result<RunOutput, VmError> {
    let mut vm = Vm::with_config(w.source, spec.config)?;
    vm.run_main()?;
    let mut checksum = Value::UNDEFINED;
    for _ in 0..spec.warmup {
        checksum = vm.call("run", &[])?;
    }
    vm.reset_stats();
    for _ in 0..spec.measured.max(1) {
        let v = vm.call("run", &[])?;
        if v != checksum {
            // Workloads are deterministic per call unless they use
            // Math.random; report the last value either way.
            checksum = v;
        }
    }
    Ok(RunOutput { stats: vm.stats.clone(), checksum, output: vm.rt.output.clone() })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Suite;

    #[test]
    fn harness_runs_a_tiny_workload() {
        let w = Workload {
            id: "T00",
            name: "tiny",
            suite: Suite::Shootout,
            in_avgs: false,
            source:
                "function run() { var s = 0; for (var i = 0; i < 50; i++) { s += i; } return s; }",
        };
        let out = run_workload(&w, RunSpec::quick(nomap_vm::Architecture::Base)).unwrap();
        assert_eq!(out.checksum, Value::new_int32(1225));
        assert!(out.stats.total_insts() > 0);
    }
}
