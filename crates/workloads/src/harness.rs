//! Workload runner: warm up until steady state, then measure.

use nomap_vm::{Architecture, ExecStats, TierLimit, Value, Vm, VmConfig, VmError};

use crate::Workload;

/// How to run a workload.
#[derive(Debug, Clone, Copy)]
pub struct RunSpec {
    /// VM configuration.
    pub config: VmConfig,
    /// `run()` calls before measurement (tier-up + cache warmup).
    pub warmup: u32,
    /// Measured `run()` calls.
    pub measured: u32,
    /// Optional cap on *total* simulated cycles across the whole run
    /// (setup + warmup + measured). The simulator's clock is cycles, so
    /// this is the deterministic analogue of a shard wall-time timeout:
    /// exceeding it fails the run with [`VmError::CycleBudget`] identically
    /// on every host. `None` = unlimited.
    pub cycle_budget: Option<u64>,
}

impl RunSpec {
    /// Steady-state measurement (the paper's methodology): enough warmup
    /// for every hot function to reach the top tier.
    pub fn steady(arch: Architecture) -> Self {
        RunSpec { config: VmConfig::new(arch), warmup: 120, measured: 3, cycle_budget: None }
    }

    /// Faster, for tests.
    pub fn quick(arch: Architecture) -> Self {
        RunSpec { config: VmConfig::new(arch), warmup: 70, measured: 1, cycle_budget: None }
    }

    /// Steady-state with a capped tier (Table I / Figure 1).
    pub fn capped(arch: Architecture, limit: TierLimit) -> Self {
        let mut config = VmConfig::new(arch);
        config.tier_limit = limit;
        RunSpec { config, warmup: 120, measured: 3, cycle_budget: None }
    }

    /// Same spec with a total-cycle budget (the fleet's shard timeout).
    pub fn with_budget(mut self, cycles: u64) -> Self {
        self.cycle_budget = Some(cycles);
        self
    }
}

/// Result of a measured run.
#[derive(Debug, Clone)]
pub struct RunOutput {
    /// Statistics of the measured window only.
    pub stats: ExecStats,
    /// The checksum `run()` returned (identical across configurations for
    /// a correct VM).
    pub checksum: Value,
    /// Guest `print` output.
    pub output: String,
}

/// Runs `w` per `spec` and returns the measured-window statistics.
///
/// # Errors
///
/// Propagates compile and guest errors.
pub fn run_workload(w: &Workload, spec: RunSpec) -> Result<RunOutput, VmError> {
    let mut vm = Vm::with_config(w.source, spec.config)?;
    // Cycles already spent in windows `reset_stats` has discarded; the
    // budget caps the *run*, not the current window.
    let mut spent_before_window = 0u64;
    let check_budget = |vm: &Vm, spent_before: u64| -> Result<(), VmError> {
        if let Some(budget) = spec.cycle_budget {
            let spent = spent_before.saturating_add(vm.stats.total_cycles());
            if spent > budget {
                return Err(VmError::CycleBudget { spent, budget });
            }
        }
        Ok(())
    };
    vm.run_main()?;
    check_budget(&vm, spent_before_window)?;
    let mut checksum = Value::UNDEFINED;
    for _ in 0..spec.warmup {
        checksum = vm.call("run", &[])?;
        check_budget(&vm, spent_before_window)?;
    }
    spent_before_window = vm.stats.total_cycles();
    vm.reset_stats();
    for _ in 0..spec.measured.max(1) {
        let v = vm.call("run", &[])?;
        check_budget(&vm, spent_before_window)?;
        if v != checksum {
            // Workloads are deterministic per call unless they use
            // Math.random; report the last value either way.
            checksum = v;
        }
    }
    let stats = vm.stats.clone();
    Ok(RunOutput { stats, checksum, output: vm.take_output() })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Suite;

    #[test]
    fn harness_runs_a_tiny_workload() {
        let w = Workload {
            id: "T00",
            name: "tiny",
            suite: Suite::Shootout,
            in_avgs: false,
            source:
                "function run() { var s = 0; for (var i = 0; i < 50; i++) { s += i; } return s; }",
        };
        let out = run_workload(&w, RunSpec::quick(nomap_vm::Architecture::Base)).unwrap();
        assert_eq!(out.checksum, Value::new_int32(1225));
        assert!(out.stats.total_insts() > 0);
    }

    #[test]
    fn cycle_budget_trips_deterministically() {
        let w = Workload {
            id: "T01",
            name: "tiny",
            suite: Suite::Shootout,
            in_avgs: false,
            source:
                "function run() { var s = 0; for (var i = 0; i < 50; i++) { s += i; } return s; }",
        };
        let spec = RunSpec::quick(nomap_vm::Architecture::Base).with_budget(10);
        let err = run_workload(&w, spec).unwrap_err();
        let nomap_vm::VmError::CycleBudget { spent, budget } = err else {
            panic!("expected CycleBudget, got {err}");
        };
        assert_eq!(budget, 10);
        assert!(spent > 10);
        // Deterministic: the same budget trips at the same spent count.
        let again = run_workload(&w, spec).unwrap_err();
        assert_eq!(again, nomap_vm::VmError::CycleBudget { spent, budget });
        // A generous budget does not interfere.
        let ok = run_workload(&w, spec.with_budget(u64::MAX)).unwrap();
        assert_eq!(ok.checksum, Value::new_int32(1225));
    }
}
