//! CI helper: run the interprocedural-vs-intraprocedural verdict delta
//! census over every bundled workload. Prints one stable line per
//! workload (diffed against `results/ipa_census.txt` in CI, so any drift
//! in what cross-function reasoning wins fails the build) and exits
//! nonzero when the summary table ever does *worse* than the
//! intraprocedural analysis — the table is a refinement; regressing a
//! verdict means a soundness or monotonicity bug.
//!
//! Workloads are sharded over the `nomap-fleet` harness; per-workload
//! lines are buffered and printed in canonical corpus order, so stdout is
//! byte-identical for any `--jobs` value. Scheduling telemetry goes to
//! stderr only.
//!
//! ```text
//! ipa_census [arch-name] [--warmup N] [--json <path>] [--jobs N]
//! ```
//!
//! `--json` additionally writes the full per-workload report (every
//! function's summary and delta row) to one JSON document.

use std::process::ExitCode;

use nomap_fleet::FleetConfig;
use nomap_vm::{ipa_source, obj, Architecture, IpaReport, JsonValue};
use nomap_workloads::fleet::{corpus, report_summary};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let arch = match args.iter().find(|a| !a.starts_with("--") && a.parse::<u32>().is_err()) {
        Some(s) => match Architecture::ALL.into_iter().find(|a| a.name().eq_ignore_ascii_case(s)) {
            Some(a) => a,
            None => {
                eprintln!("unknown architecture `{s}`");
                return ExitCode::from(2);
            }
        },
        None => Architecture::NoMap,
    };
    let flag = |name: &str| {
        args.iter().position(|a| a == name).and_then(|i| args.get(i + 1)).map(String::as_str)
    };
    let warmup: u32 = flag("--warmup").and_then(|s| s.parse().ok()).unwrap_or(40);
    let json_path = flag("--json").map(str::to_owned);
    let fleet = match FleetConfig::from_args(&args) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::from(2);
        }
    };

    let workloads = corpus();
    let run: nomap_fleet::FleetRun<IpaReport> =
        nomap_fleet::run_sharded(workloads.len(), &fleet, |i| {
            let w = &workloads[i];
            ipa_source(w.source, arch, warmup).map_err(|e| format!("{}: {e}", w.id))
        });

    let mut censused = 0usize;
    let mut elided_intra = 0u64;
    let mut elided_ipa = 0u64;
    let mut unknown_intra = 0u64;
    let mut unknown_ipa = 0u64;
    let mut reseeded = 0usize;
    let mut improved = 0usize;
    let mut regressed = 0usize;
    let mut failed = 0usize;
    let mut docs: Vec<JsonValue> = Vec::new();
    for (w, shard) in workloads.iter().zip(&run.shards) {
        let report = match &shard.outcome {
            Ok(r) => r,
            Err(e) => {
                eprintln!("ipa census failed after {} attempts: {e}", shard.attempts);
                failed += 1;
                continue;
            }
        };
        println!("{} {}", w.id, report.summary());
        censused += 1;
        elided_intra += u64::from(report.total_elided_intra());
        elided_ipa += u64::from(report.total_elided_ipa());
        unknown_intra += u64::from(report.total_unknown_intra());
        unknown_ipa += u64::from(report.total_unknown_ipa());
        reseeded += report.scopes_changed();
        if report.total_elided_ipa() > report.total_elided_intra() || report.scopes_changed() > 0 {
            improved += 1;
        }
        // The summary table only ever adds facts; losing an elision or
        // gaining an unknown under it is a monotonicity bug.
        if report.total_elided_ipa() < report.total_elided_intra()
            || report.total_unknown_ipa() > report.total_unknown_intra()
        {
            eprintln!("{}: interprocedural verdicts regressed: {}", w.id, report.summary());
            regressed += 1;
        }
        if json_path.is_some() {
            docs.push(obj(vec![("workload", w.id.into()), ("report", report.to_json(arch))]));
        }
    }
    println!(
        "ipa census: {censused} workloads under {}: elided {elided_intra}->{elided_ipa} unknown {unknown_intra}->{unknown_ipa} in {improved} improved workloads, {reseeded} scopes reseeded",
        arch.name()
    );
    report_summary(&run.summary);
    if let Some(path) = &json_path {
        let doc = obj(vec![("arch", arch.name().into()), ("workloads", JsonValue::Array(docs))]);
        if let Err(e) = std::fs::write(path, doc.render()) {
            eprintln!("error: {path}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("ipa census json written to {path}");
    }
    if regressed == 0 && failed == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
