//! CI helper: run the abort-forensics calibration census over every
//! bundled workload, under both HTM models by default (ROT-style `NoMap`
//! and restricted `NoMap_RTM`). Prints one stable line per (architecture,
//! workload) pair — diffed against `results/abort_census.txt` in CI, so
//! any drift in the static-vs-dynamic footprint calibration fails the
//! build — and exits nonzero when any workload reports an *unexplained*
//! under-prediction: a function the footprint estimator called safe that
//! took capacity aborts no known blind spot (set conflicts, RTM read-set
//! tracking, callee traffic, unoptimized-tier traffic, unproven trip
//! counts, uncounted stores) accounts for.
//!
//! Workloads are sharded over the `nomap-fleet` harness; per-workload
//! lines are buffered and printed in canonical corpus order, so stdout is
//! byte-identical for any `--jobs` value. Scheduling telemetry goes to
//! stderr only.
//!
//! ```text
//! abort_census [arch-name] [--warmup N] [--json <path>] [--jobs N]
//! ```
//!
//! A positional architecture restricts the census to that model. `--json`
//! additionally writes the full per-workload calibration report (every
//! row and every attributed abort site) to one JSON document.

use std::process::ExitCode;

use nomap_fleet::FleetConfig;
use nomap_vm::{aborts_source, obj, AbortsReport, Architecture, JsonValue};
use nomap_workloads::fleet::{corpus, report_summary};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    // The positional architecture is any bare argument that is not the
    // value of a value-taking flag.
    let mut positional = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if ["--warmup", "--json", "--jobs"].contains(&a.as_str()) {
            it.next();
        } else if !a.starts_with("--") {
            positional = Some(a);
        }
    }
    let archs: Vec<Architecture> = match positional {
        Some(s) => match Architecture::ALL.into_iter().find(|a| a.name().eq_ignore_ascii_case(s)) {
            Some(a) => vec![a],
            None => {
                eprintln!("unknown architecture `{s}`");
                return ExitCode::from(2);
            }
        },
        None => vec![Architecture::NoMap, Architecture::NoMapRtm],
    };
    let flag = |name: &str| {
        args.iter().position(|a| a == name).and_then(|i| args.get(i + 1)).map(String::as_str)
    };
    let warmup: u32 = flag("--warmup").and_then(|s| s.parse().ok()).unwrap_or(40);
    let json_path = flag("--json").map(str::to_owned);
    let fleet = match FleetConfig::from_args(&args) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::from(2);
        }
    };

    let workloads = corpus();
    let mut censused = 0usize;
    let mut sites = 0usize;
    let mut tp = 0usize;
    let mut tn = 0usize;
    let mut over = 0usize;
    let mut under = 0usize;
    let mut unexplained = 0usize;
    let mut failed = 0usize;
    let mut arch_docs: Vec<JsonValue> = Vec::new();
    for arch in &archs {
        let run: nomap_fleet::FleetRun<AbortsReport> =
            nomap_fleet::run_sharded(workloads.len(), &fleet, |i| {
                let w = &workloads[i];
                aborts_source(w.source, *arch, warmup).map_err(|e| format!("{}: {e}", w.id))
            });
        let mut docs: Vec<JsonValue> = Vec::new();
        for (w, shard) in workloads.iter().zip(&run.shards) {
            let report = match &shard.outcome {
                Ok(r) => r,
                Err(e) => {
                    eprintln!("abort census failed after {} attempts: {e}", shard.attempts);
                    failed += 1;
                    continue;
                }
            };
            println!("{:<9} {} {}", arch.name(), w.id, report.summary());
            censused += 1;
            sites += report.sites.len();
            for row in &report.rows {
                match row.verdict.as_str() {
                    "predicted-abort-and-aborted" => tp += 1,
                    "predicted-safe-and-safe" => tn += 1,
                    "over-prediction" => over += 1,
                    "under-prediction" => under += 1,
                    _ => {}
                }
            }
            let u = report.unexplained_under_predictions();
            if u > 0 {
                eprintln!("{}/{}: {u} unexplained under-prediction(s):", arch.name(), w.id);
                for r in &report.rows {
                    if r.verdict == "under-prediction" && r.explanation.is_none() {
                        eprintln!("  {}", r.render());
                    }
                }
                unexplained += u;
            }
            if json_path.is_some() {
                docs.push(obj(vec![("workload", w.id.into()), ("report", report.to_json(*arch))]));
            }
        }
        report_summary(&run.summary);
        if json_path.is_some() {
            arch_docs.push(obj(vec![
                ("arch", arch.name().into()),
                ("workloads", JsonValue::Array(docs)),
            ]));
        }
    }
    println!(
        "abort census: {censused} (arch, workload) pairs, {sites} blame sites: tp={tp} tn={tn} over={over} under={under} unexplained={unexplained}"
    );
    if let Some(path) = &json_path {
        let doc =
            obj(vec![("archs", JsonValue::Array(arch_docs)), ("unexplained", unexplained.into())]);
        if let Err(e) = std::fs::write(path, doc.render()) {
            eprintln!("error: {path}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("abort census json written to {path}");
    }
    if unexplained == 0 && failed == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
