//! CI helper: lint every bundled workload through the audited pipelines
//! and fail when any *error* diagnostic fires. (The `nomap` CLI lints one
//! file; this binary owns the corpus so CI needs no file-system staging.)
//!
//! ```text
//! lint_corpus [arch-name] [--warmup N]
//! ```

use std::process::ExitCode;

use nomap_vm::{lint_source, Architecture};
use nomap_workloads::{kraken, shootout, sunspider, Workload};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let arch = match args.iter().find(|a| !a.starts_with("--") && a.parse::<u32>().is_err()) {
        Some(s) => match Architecture::ALL.into_iter().find(|a| a.name().eq_ignore_ascii_case(s)) {
            Some(a) => a,
            None => {
                eprintln!("unknown architecture `{s}`");
                return ExitCode::from(2);
            }
        },
        None => Architecture::NoMap,
    };
    let warmup: u32 = args
        .iter()
        .position(|a| a == "--warmup")
        .and_then(|i| args.get(i + 1))
        .and_then(|s| s.parse().ok())
        .unwrap_or(40);

    let suites: [&[Workload]; 3] = [&sunspider(), &kraken(), &shootout()];
    let mut linted = 0usize;
    let mut stages = 0usize;
    let mut warnings = 0usize;
    let mut errors = 0usize;
    for w in suites.iter().flat_map(|s| s.iter()) {
        let report = match lint_source(w.source, arch, warmup) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("{}: lint failed: {e}", w.id);
                return ExitCode::FAILURE;
            }
        };
        for d in &report.diagnostics {
            if d.is_error() {
                errors += 1;
                println!("{}: {d}", w.id);
            } else {
                warnings += 1;
            }
        }
        stages += report.stages;
        linted += 1;
    }
    println!(
        "linted {linted} workloads under {}: {stages} verification stages, {errors} errors, {warnings} warnings",
        arch.name()
    );
    if errors == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
