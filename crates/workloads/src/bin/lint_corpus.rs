//! CI helper: lint every bundled workload through the audited pipelines
//! and fail when any *error* diagnostic fires. (The `nomap` CLI lints one
//! file; this binary owns the corpus so CI needs no file-system staging.)
//!
//! Workloads are sharded over the `nomap-fleet` harness; diagnostics are
//! buffered per shard and printed in canonical corpus order, so stdout is
//! byte-identical for any `--jobs` value. Scheduling telemetry goes to
//! stderr only.
//!
//! ```text
//! lint_corpus [arch-name] [--warmup N] [--jobs N]
//! ```

use std::process::ExitCode;

use nomap_fleet::FleetConfig;
use nomap_vm::{lint_source, Architecture};
use nomap_workloads::fleet::{corpus, report_summary};

struct ShardLint {
    /// `workload-id: diagnostic` lines for error diagnostics, in order.
    error_lines: Vec<String>,
    stages: usize,
    warnings: usize,
    errors: usize,
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let arch = match args.iter().find(|a| !a.starts_with("--") && a.parse::<u32>().is_err()) {
        Some(s) => match Architecture::ALL.into_iter().find(|a| a.name().eq_ignore_ascii_case(s)) {
            Some(a) => a,
            None => {
                eprintln!("unknown architecture `{s}`");
                return ExitCode::from(2);
            }
        },
        None => Architecture::NoMap,
    };
    let warmup: u32 = args
        .iter()
        .position(|a| a == "--warmup")
        .and_then(|i| args.get(i + 1))
        .and_then(|s| s.parse().ok())
        .unwrap_or(40);
    let fleet = match FleetConfig::from_args(&args) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::from(2);
        }
    };

    let workloads = corpus();
    let run = nomap_fleet::run_sharded(workloads.len(), &fleet, |i| {
        let w = &workloads[i];
        let report = lint_source(w.source, arch, warmup).map_err(|e| format!("{}: {e}", w.id))?;
        let mut shard =
            ShardLint { error_lines: Vec::new(), stages: report.stages, warnings: 0, errors: 0 };
        for d in &report.diagnostics {
            if d.is_error() {
                shard.errors += 1;
                shard.error_lines.push(format!("{}: {d}", w.id));
            } else {
                shard.warnings += 1;
            }
        }
        Ok(shard)
    });

    let mut linted = 0usize;
    let mut stages = 0usize;
    let mut warnings = 0usize;
    let mut errors = 0usize;
    let mut failed = 0usize;
    for shard in &run.shards {
        match &shard.outcome {
            Ok(s) => {
                for line in &s.error_lines {
                    println!("{line}");
                }
                stages += s.stages;
                warnings += s.warnings;
                errors += s.errors;
                linted += 1;
            }
            Err(e) => {
                eprintln!("lint failed after {} attempts: {e}", shard.attempts);
                failed += 1;
            }
        }
    }
    println!(
        "linted {linted} workloads under {}: {stages} verification stages, {errors} errors, {warnings} warnings",
        arch.name()
    );
    report_summary(&run.summary);
    if errors == 0 && failed == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
