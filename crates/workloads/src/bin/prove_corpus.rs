//! CI helper: run the proof-carrying check-elision census over every
//! bundled workload. Prints one stable line per workload (diffed against
//! `results/prove_corpus_<arch>.txt` in CI, so elision-count drift fails
//! the build) and exits nonzero when any workload has a *reachable*
//! statically proved-to-fail check.
//!
//! Workloads are sharded over the `nomap-fleet` harness; per-workload
//! lines are buffered and printed in canonical corpus order, so stdout is
//! byte-identical for any `--jobs` value. Scheduling telemetry goes to
//! stderr only.
//!
//! ```text
//! prove_corpus [arch-name] [--warmup N] [--json <path>] [--jobs N]
//! ```
//!
//! `--json` additionally writes the full per-workload census (every
//! function × check-kind row) to one JSON document — the CI artifact.

use std::process::ExitCode;

use nomap_fleet::FleetConfig;
use nomap_vm::{obj, prove_source, Architecture, JsonValue, ProveReport};
use nomap_workloads::fleet::{corpus, report_summary};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let arch = match args.iter().find(|a| !a.starts_with("--") && a.parse::<u32>().is_err()) {
        Some(s) => match Architecture::ALL.into_iter().find(|a| a.name().eq_ignore_ascii_case(s)) {
            Some(a) => a,
            None => {
                eprintln!("unknown architecture `{s}`");
                return ExitCode::from(2);
            }
        },
        None => Architecture::NoMap,
    };
    let flag = |name: &str| {
        args.iter().position(|a| a == name).and_then(|i| args.get(i + 1)).map(String::as_str)
    };
    let warmup: u32 = flag("--warmup").and_then(|s| s.parse().ok()).unwrap_or(40);
    let json_path = flag("--json").map(str::to_owned);
    let fleet = match FleetConfig::from_args(&args) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::from(2);
        }
    };

    let workloads = corpus();
    let run: nomap_fleet::FleetRun<ProveReport> =
        nomap_fleet::run_sharded(workloads.len(), &fleet, |i| {
            let w = &workloads[i];
            prove_source(w.source, arch, warmup).map_err(|e| format!("{}: {e}", w.id))
        });

    let mut proved = 0usize;
    let mut elided = 0u64;
    let mut reachable_fail = 0usize;
    let mut with_elisions = 0usize;
    let mut failed = 0usize;
    let mut docs: Vec<JsonValue> = Vec::new();
    for (w, shard) in workloads.iter().zip(&run.shards) {
        let report = match &shard.outcome {
            Ok(r) => r,
            Err(e) => {
                eprintln!("prove failed after {} attempts: {e}", shard.attempts);
                failed += 1;
                continue;
            }
        };
        println!(
            "{} elided={} proved_safe={} proved_fail={} unknown={}",
            w.id,
            report.total_elided(),
            report.total_proved_safe(),
            report.total_proved_fail(),
            report.total_unknown()
        );
        proved += 1;
        elided += u64::from(report.total_elided());
        reachable_fail += report.reachable_proved_fail();
        if report.total_elided() > 0 {
            with_elisions += 1;
        }
        if json_path.is_some() {
            docs.push(obj(vec![("workload", w.id.into()), ("census", report.to_json(arch))]));
        }
    }
    println!(
        "proved {proved} workloads under {}: {elided} checks elided in {with_elisions} workloads, {reachable_fail} reachable proved-fail groups",
        arch.name()
    );
    report_summary(&run.summary);
    if let Some(path) = &json_path {
        let doc = obj(vec![("arch", arch.name().into()), ("workloads", JsonValue::Array(docs))]);
        if let Err(e) = std::fs::write(path, doc.render()) {
            eprintln!("error: {path}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("census json written to {path}");
    }
    if reachable_fail == 0 && failed == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
