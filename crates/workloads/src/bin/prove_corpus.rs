//! CI helper: run the proof-carrying check-elision census over every
//! bundled workload. Prints one stable line per workload (diffed against
//! `results/prove_corpus_<arch>.txt` in CI, so elision-count drift fails
//! the build) and exits nonzero when any workload has a *reachable*
//! statically proved-to-fail check.
//!
//! ```text
//! prove_corpus [arch-name] [--warmup N] [--json <path>]
//! ```
//!
//! `--json` additionally writes the full per-workload census (every
//! function × check-kind row) to one JSON document — the CI artifact.

use std::process::ExitCode;

use nomap_vm::{obj, prove_source, Architecture, JsonValue};
use nomap_workloads::{kraken, shootout, sunspider, Workload};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let arch = match args.iter().find(|a| !a.starts_with("--") && a.parse::<u32>().is_err()) {
        Some(s) => match Architecture::ALL.into_iter().find(|a| a.name().eq_ignore_ascii_case(s)) {
            Some(a) => a,
            None => {
                eprintln!("unknown architecture `{s}`");
                return ExitCode::from(2);
            }
        },
        None => Architecture::NoMap,
    };
    let flag = |name: &str| {
        args.iter().position(|a| a == name).and_then(|i| args.get(i + 1)).map(String::as_str)
    };
    let warmup: u32 = flag("--warmup").and_then(|s| s.parse().ok()).unwrap_or(40);
    let json_path = flag("--json").map(str::to_owned);

    let suites: [&[Workload]; 3] = [&sunspider(), &kraken(), &shootout()];
    let mut elided = 0u64;
    let mut reachable_fail = 0usize;
    let mut with_elisions = 0usize;
    let mut docs: Vec<JsonValue> = Vec::new();
    for w in suites.iter().flat_map(|s| s.iter()) {
        let report = match prove_source(w.source, arch, warmup) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("{}: prove failed: {e}", w.id);
                return ExitCode::FAILURE;
            }
        };
        println!(
            "{} elided={} proved_safe={} proved_fail={} unknown={}",
            w.id,
            report.total_elided(),
            report.total_proved_safe(),
            report.total_proved_fail(),
            report.total_unknown()
        );
        elided += u64::from(report.total_elided());
        reachable_fail += report.reachable_proved_fail();
        if report.total_elided() > 0 {
            with_elisions += 1;
        }
        if json_path.is_some() {
            docs.push(obj(vec![("workload", w.id.into()), ("census", report.to_json(arch))]));
        }
    }
    println!(
        "proved {} workloads under {}: {elided} checks elided in {with_elisions} workloads, {reachable_fail} reachable proved-fail groups",
        suites.iter().map(|s| s.len()).sum::<usize>(),
        arch.name()
    );
    if let Some(path) = &json_path {
        let doc = obj(vec![("arch", arch.name().into()), ("workloads", JsonValue::Array(docs))]);
        if let Err(e) = std::fs::write(path, doc.render()) {
            eprintln!("error: {path}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("census json written to {path}");
    }
    if reachable_fail == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
