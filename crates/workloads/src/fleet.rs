//! Corpus-level sharding: run every bundled workload through the
//! `nomap-fleet` harness with full observability and merge the results in
//! canonical order.
//!
//! The canonical shard order is the flat suite order (SunSpider S01–S26,
//! Kraken K01–K14, then Shootout) — the exact order the sequential corpus
//! binaries have always iterated, so sharded and sequential runs produce
//! byte-identical reports.

use nomap_fleet::{run_sharded, FleetConfig, FleetRun, FleetSummary};
use nomap_vm::{ExecStats, Metrics, ProfileData, TraceEvent, Value, Vm, VmError};

use crate::harness::RunSpec;
use crate::{kraken, shootout, sunspider, Workload};

/// Every bundled workload in canonical (flat suite) order.
pub fn corpus() -> Vec<Workload> {
    let mut v = sunspider();
    v.extend(kraken());
    v.extend(shootout());
    v
}

/// One shard's fully-observed result: the measured-window statistics plus
/// the whole-run metrics registry and cycle-attribution profile.
#[derive(Debug, Clone)]
pub struct ObservedRun {
    /// Workload id the shard ran.
    pub id: &'static str,
    /// Measured-window execution statistics.
    pub stats: ExecStats,
    /// Metrics registry for the whole run (warmup included).
    pub metrics: Metrics,
    /// Cycle-attribution profile for the measured window.
    pub profile: ProfileData,
    /// The checksum `run()` returned.
    pub checksum: Value,
    /// Guest `print` output for the whole run.
    pub output: String,
}

/// Runs one workload with tracing metrics and cycle-attribution profiling
/// enabled, honouring `spec.cycle_budget`. This is the fleet's shard body:
/// a fresh `Vm` per call, nothing shared.
///
/// # Errors
///
/// Propagates compile/guest errors and the cycle-budget trip.
pub fn run_workload_observed(w: &Workload, spec: RunSpec) -> Result<ObservedRun, VmError> {
    // Host-side span for the whole shard (compiles nest under it). Inert
    // unless the binary enabled the hostprof observatory.
    let _span = nomap_hostprof::span(&format!("workload:{}", w.id));
    let mut vm = Vm::with_config(w.source, spec.config)?;
    vm.enable_tracing(64);
    vm.enable_profiling();
    vm.enable_opcode_census();
    let mut spent_before_window = 0u64;
    let check_budget = |vm: &Vm, spent_before: u64| -> Result<(), VmError> {
        if let Some(budget) = spec.cycle_budget {
            let spent = spent_before.saturating_add(vm.stats.total_cycles());
            if spent > budget {
                return Err(VmError::CycleBudget { spent, budget });
            }
        }
        Ok(())
    };
    vm.run_main()?;
    check_budget(&vm, spent_before_window)?;
    let mut checksum = Value::UNDEFINED;
    for _ in 0..spec.warmup {
        checksum = vm.call("run", &[])?;
        check_budget(&vm, spent_before_window)?;
    }
    spent_before_window = vm.stats.total_cycles();
    vm.reset_stats();
    for _ in 0..spec.measured.max(1) {
        checksum = vm.call("run", &[])?;
        check_budget(&vm, spent_before_window)?;
    }
    let stats = vm.stats.clone();
    vm.flush_census_to_metrics();
    let metrics = vm.trace_metrics().clone();
    let profile = vm.profile().cloned().unwrap_or_default();
    Ok(ObservedRun { id: w.id, stats, metrics, profile, checksum, output: vm.take_output() })
}

/// Canonical-order merge of per-shard observations: all mergeable state
/// folded shard 0, 1, 2, … regardless of completion order.
#[derive(Debug, Clone, Default)]
pub struct CorpusMerge {
    /// Merged measured-window statistics.
    pub stats: ExecStats,
    /// Merged metrics registries.
    pub metrics: Metrics,
    /// Merged cycle-attribution profiles.
    pub profile: ProfileData,
    /// Concatenated guest output, canonical shard order.
    pub output: String,
}

impl CorpusMerge {
    /// Folds successful shards (in the order given, which callers keep
    /// canonical) into one corpus-level aggregate.
    pub fn from_runs<'a>(runs: impl IntoIterator<Item = &'a ObservedRun>) -> Self {
        let mut merged = CorpusMerge::default();
        for r in runs {
            merged.stats.merge(&r.stats);
            merged.metrics.merge(&r.metrics);
            merged.profile.merge(&r.profile);
            merged.output.push_str(&r.output);
        }
        merged
    }
}

/// Runs the whole corpus (or any workload/spec list) through the fleet.
/// Shard `i` runs `specs[i].0` under `specs[i].1`; results come back in
/// canonical order with per-shard failures isolated and reported.
pub fn run_corpus_sharded(
    specs: &[(Workload, RunSpec)],
    config: &FleetConfig,
) -> FleetRun<ObservedRun> {
    run_sharded(specs.len(), config, |i| {
        let (w, spec) = &specs[i];
        run_workload_observed(w, *spec).map_err(|e| format!("{}: {e}", w.id))
    })
}

/// Converts a fleet summary into its schema-v5 trace event.
pub fn summary_event(s: &FleetSummary) -> TraceEvent {
    TraceEvent::FleetSummary {
        jobs: s.jobs as u64,
        shards: s.shards as u64,
        failed: s.failed as u64,
        retried: s.retried as u64,
        wall_ns: s.wall_ns,
        peak_occupancy: s.peak_occupancy as u64,
        shard_wall_ns: s.shard_wall_ns.clone(),
    }
}

/// Reports scheduling telemetry to stderr: the human one-liner, the
/// per-shard queue-wait/run/attempts breakdown, and the serialized
/// `fleet-summary` event. Stderr only — wall-times are nondeterministic
/// and must stay out of byte-diffed stdout.
pub fn report_summary(s: &FleetSummary) {
    eprintln!("{}", s.render());
    eprint!("{}", s.render_shards());
    eprintln!("{}", summary_event(s).to_json(0, 0).render());
}

#[cfg(test)]
mod tests {
    use super::*;
    use nomap_vm::Architecture;

    #[test]
    fn corpus_is_the_flat_suite_order() {
        let c = corpus();
        assert_eq!(c.len(), 52);
        assert_eq!(c[0].id, "S01");
        assert_eq!(c[26].id, "K01");
        assert_eq!(c.last().unwrap().suite, crate::Suite::Shootout);
    }

    #[test]
    fn observed_run_matches_plain_harness_stats() {
        let w = &corpus()[0];
        let spec = RunSpec::quick(Architecture::Base);
        let plain = crate::run_workload(w, spec).unwrap();
        let observed = run_workload_observed(w, spec).unwrap();
        assert_eq!(observed.stats, plain.stats, "observability must not perturb stats");
        assert_eq!(observed.checksum, plain.checksum);
        assert_eq!(observed.output, plain.output);
        assert!(observed.profile.ledger.total() > 0);
        assert!(!observed.metrics.counters.is_empty());
    }

    #[test]
    fn summary_event_round_trips_fields() {
        let s = FleetSummary {
            jobs: 4,
            shards: 2,
            failed: 0,
            retried: 1,
            wall_ns: 123,
            peak_occupancy: 2,
            shard_wall_ns: vec![60, 63],
            shard_queue_ns: vec![1, 2],
            shard_attempts: vec![1, 2],
        };
        let ev = summary_event(&s);
        assert_eq!(ev.kind(), "fleet-summary");
        let json = ev.to_json(0, 0).render();
        assert!(json.contains("\"retried\":1"));
        assert!(json.contains("\"shard_wall_ns\":[60,63]"));
    }
}
