//! Native ("C") reference implementations for Figure 1.
//!
//! The paper's Figure 1 compares scripting-language runtimes to C. We
//! cannot meaningfully compare wall-clock time of host Rust against
//! *simulated* instruction counts, so each native kernel counts **abstract
//! operations** (one per arithmetic op, comparison, load or store — the
//! work a C compiler would emit roughly one instruction for). That count is
//! directly comparable with the simulator's dynamic instruction counts and
//! plays the figure's "C = 1.0" role. See DESIGN.md §2.

/// Result of a native kernel: its checksum and abstract operation count.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NativeRun {
    /// Checksum (matches the MiniJS kernel's `run()` value where the
    /// algorithms are identical).
    pub checksum: f64,
    /// Abstract operations executed.
    pub ops: u64,
}

/// Runs the native counterpart of the named Shootout kernel.
///
/// # Panics
///
/// Panics for unknown kernel ids.
pub fn run_native(id: &str) -> NativeRun {
    match id {
        "binarytrees" => binarytrees(),
        "fannkuchredux" => fannkuchredux(),
        "fibo" => fibo(),
        "harmonic" => harmonic(),
        "hash" => hash(),
        "heapsort" => heapsort(),
        "matrix" => matrix(),
        "nbody" => nbody(),
        "random" => random(),
        "sieve" => sieve(),
        "takfp" => takfp(),
        "histmix" => histmix(),
        other => panic!("unknown native kernel `{other}`"),
    }
}

struct Tree {
    l: Option<Box<Tree>>,
    r: Option<Box<Tree>>,
    v: i32,
}

fn binarytrees() -> NativeRun {
    let mut ops = 0u64;
    fn make(d: i32, ops: &mut u64) -> Tree {
        *ops += 4;
        if d <= 0 {
            return Tree { l: None, r: None, v: 1 };
        }
        Tree { l: Some(Box::new(make(d - 1, ops))), r: Some(Box::new(make(d - 1, ops))), v: d }
    }
    fn check(t: &Tree, ops: &mut u64) -> i32 {
        *ops += 3;
        match (&t.l, &t.r) {
            (Some(l), Some(r)) => t.v + check(l, ops) - check(r, ops),
            _ => t.v,
        }
    }
    let mut total = 0i32;
    for d in 2..=6 {
        let t = make(d, &mut ops);
        total += check(&t, &mut ops);
        ops += 2;
    }
    NativeRun { checksum: total as f64, ops }
}

fn fannkuchredux() -> NativeRun {
    let n = 7usize;
    let mut ops = 0u64;
    let mut perm = vec![0i32; n];
    let mut perm1: Vec<i32> = (0..n as i32).collect();
    let mut count = vec![0i32; n];
    let mut max_flips = 0;
    let mut checksum = 0i32;
    let mut sign = 1;
    let mut r = n;
    for _ in 0..400 {
        while r != 1 {
            count[r - 1] = r as i32;
            r -= 1;
            ops += 2;
        }
        perm.copy_from_slice(&perm1);
        ops += n as u64;
        let mut flips = 0;
        let mut k = perm[0];
        while k != 0 {
            let half = (k + 1) / 2;
            for i in 0..half {
                perm.swap(i as usize, (k - i) as usize);
                ops += 3;
            }
            flips += 1;
            k = perm[0];
            ops += 2;
        }
        max_flips = max_flips.max(flips);
        checksum += sign * flips;
        sign = -sign;
        ops += 3;
        loop {
            if r == n {
                return NativeRun { checksum: (max_flips * 1000 + (checksum & 255)) as f64, ops };
            }
            let p0 = perm1[0];
            for i in 0..r {
                perm1[i] = perm1[i + 1];
                ops += 2;
            }
            perm1[r] = p0;
            count[r] -= 1;
            ops += 2;
            if count[r] > 0 {
                break;
            }
            r += 1;
        }
    }
    NativeRun { checksum: (max_flips * 1000 + (checksum & 255)) as f64, ops }
}

fn fibo() -> NativeRun {
    fn fib(n: i32, ops: &mut u64) -> i32 {
        *ops += 3;
        if n < 2 {
            n
        } else {
            fib(n - 1, ops) + fib(n - 2, ops)
        }
    }
    let mut ops = 0;
    let v = fib(16, &mut ops);
    NativeRun { checksum: v as f64, ops }
}

fn harmonic() -> NativeRun {
    let mut sum = 0.0f64;
    let mut ops = 0u64;
    for i in 1..=6000 {
        sum += 1.0 / i as f64;
        ops += 3;
    }
    NativeRun { checksum: (sum * 1e6).floor(), ops }
}

fn hash() -> NativeRun {
    let mut table = vec![-1i64; 512];
    let mut hits = 0i64;
    let mut ops = 0u64;
    for i in 0..1500i64 {
        let key = (((i * 2654435761) as u64 >> 8) & 511) as usize;
        if table[key] == i - 512 {
            hits += 1;
        }
        table[key] = i;
        ops += 5;
    }
    NativeRun { checksum: hits as f64, ops }
}

fn heapsort() -> NativeRun {
    const HN: usize = 400;
    let mut heap = [0i64; HN];
    let mut seed = 12345i64;
    let mut ops = 0u64;
    for slot in heap.iter_mut() {
        seed = (seed * 1103515245 + 12345) & 2147483647;
        *slot = seed % 10000;
        ops += 4;
    }
    fn sift(heap: &mut [i64; HN], start: usize, end: usize, ops: &mut u64) {
        let mut root = start;
        while root * 2 < end {
            let mut child = root * 2 + 1;
            if child < end && heap[child] < heap[child + 1] {
                child += 1;
            }
            *ops += 6;
            if heap[root] < heap[child] {
                heap.swap(root, child);
                root = child;
            } else {
                return;
            }
        }
    }
    let mut s = (HN - 2) / 2;
    loop {
        sift(&mut heap, s, HN - 1, &mut ops);
        if s == 0 {
            break;
        }
        s -= 1;
    }
    for e in (1..HN).rev() {
        heap.swap(e, 0);
        sift(&mut heap, 0, e - 1, &mut ops);
        ops += 3;
    }
    let mut check = 0;
    for i in 1..HN {
        if heap[i] >= heap[i - 1] {
            check += 1;
        }
        ops += 3;
    }
    NativeRun { checksum: check as f64, ops }
}

fn matrix() -> NativeRun {
    const M: usize = 18;
    let mk = || -> Vec<i64> { (0..M * M).map(|i| i as i64 + 1).collect() };
    let mut a = mk();
    let mut b = mk();
    let mut c = mk();
    let mut ops = (M * M * 3) as u64;
    fn mmult(a: &[i64], b: &[i64], c: &mut [i64], ops: &mut u64) {
        const M: usize = 18;
        for i in 0..M {
            for j in 0..M {
                let mut s = 0i64;
                for k in 0..M {
                    s = (s + a[i * M + k] * b[k * M + j]) as i32 as i64;
                    *ops += 4;
                }
                c[i * M + j] = s;
                *ops += 2;
            }
        }
    }
    for _ in 0..4 {
        let bc = b.clone();
        mmult(&a, &bc, &mut c, &mut ops);
        let cc = c.clone();
        mmult(&bc, &cc, &mut a, &mut ops);
        let _ = &mut b;
    }
    NativeRun { checksum: ((a[0] + a[M * M - 1]) as i32) as f64, ops }
}

fn nbody() -> NativeRun {
    let mut px: [f64; 5] = [0.0, 4.84, 8.34, 12.89, 15.37];
    let mut py = [0.0, -1.16, 4.12, -15.11, -25.91];
    let mut vx = [0.0, 0.60, -1.01, 1.08, 0.97];
    let mut vy = [0.0, 2.81, 1.82, 0.86, 0.59];
    let mass = [39.47, 0.037, 0.011, 0.0017, 0.002];
    let mut ops = 0u64;
    for _ in 0..100 {
        for i in 0..5 {
            for j in i + 1..5 {
                let dx = px[i] - px[j];
                let dy = py[i] - py[j];
                let d2 = dx * dx + dy * dy;
                let mag = 0.01 / (d2 * d2.sqrt());
                vx[i] -= dx * mass[j] * mag;
                vy[i] -= dy * mass[j] * mag;
                vx[j] += dx * mass[i] * mag;
                vy[j] += dy * mass[i] * mag;
                ops += 22;
            }
        }
        for i in 0..5 {
            px[i] += 0.01 * vx[i];
            py[i] += 0.01 * vy[i];
            ops += 6;
        }
    }
    let mut e = 0.0f64;
    for i in 0..5 {
        e += 0.5 * mass[i] * (vx[i] * vx[i] + vy[i] * vy[i]);
        ops += 7;
    }
    NativeRun { checksum: (e * 1e6).floor(), ops }
}

fn random() -> NativeRun {
    const IM: i64 = 139968;
    const IA: i64 = 3877;
    const IC: i64 = 29573;
    let mut seed = 42i64;
    let mut last = 0.0f64;
    let mut ops = 0u64;
    for _ in 0..4000 {
        seed = (seed * IA + IC) % IM;
        last = 100.0 * seed as f64 / IM as f64;
        ops += 6;
    }
    NativeRun { checksum: (last * 1000.0).floor(), ops }
}

fn sieve() -> NativeRun {
    let mut count = 0u64;
    let mut ops = 0u64;
    let mut flags = [false; 1024];
    for _ in 0..4 {
        count = 0;
        for f in flags.iter_mut().skip(2) {
            *f = true;
            ops += 1;
        }
        for i in 2..1024usize {
            ops += 2;
            if flags[i] {
                let mut k = i + i;
                while k < 1024 {
                    flags[k] = false;
                    k += i;
                    ops += 2;
                }
                count += 1;
            }
        }
    }
    NativeRun { checksum: count as f64, ops }
}

fn takfp() -> NativeRun {
    fn tak(x: f64, y: f64, z: f64, ops: &mut u64) -> f64 {
        *ops += 4;
        if y >= x {
            z
        } else {
            tak(tak(x - 1.0, y, z, ops), tak(y - 1.0, z, x, ops), tak(z - 1.0, x, y, ops), ops)
        }
    }
    let mut ops = 0;
    let v = tak(18.0, 12.0, 6.0, &mut ops);
    NativeRun { checksum: v, ops }
}

fn histmix() -> NativeRun {
    // JS `|0` (ToInt32): the MiniJS kernel multiplies in f64 before
    // truncating, so products past 2^53 round — wrapping i32 would diverge.
    fn to_int32(d: f64) -> i32 {
        d.trunc().rem_euclid(4294967296.0) as u64 as u32 as i32
    }
    fn mix(h: i32, v: i32, ops: &mut u64) -> i32 {
        *ops += 3;
        to_int32((h ^ v) as f64 * 1103515245.0 + 12345.0)
    }
    let mut bins = vec![0i32; 36000];
    let mut ops = 0u64;
    let mut h = 7i32;
    let mut i = 0usize;
    while i < 36000 {
        h = mix(h, i as i32, &mut ops);
        bins[i] = h & 255;
        ops += 4;
        i += 8;
    }
    let mut s = 0i32;
    let mut j = 0usize;
    while j < 36000 {
        s = s.wrapping_add(bins[j]);
        ops += 3;
        j += 512;
    }
    NativeRun { checksum: (s ^ h) as f64, ops }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_native_kernels_run() {
        for id in [
            "binarytrees",
            "fannkuchredux",
            "fibo",
            "harmonic",
            "hash",
            "heapsort",
            "matrix",
            "nbody",
            "random",
            "sieve",
            "takfp",
            "histmix",
        ] {
            let r = run_native(id);
            assert!(r.ops > 0, "{id} counted no ops");
        }
    }

    #[test]
    fn fibo_checksum() {
        assert_eq!(run_native("fibo").checksum, 987.0);
    }

    #[test]
    fn sieve_checksum_is_prime_count() {
        assert_eq!(run_native("sieve").checksum, 172.0); // primes below 1024
    }

    #[test]
    fn takfp_value() {
        assert_eq!(run_native("takfp").checksum, 7.0);
    }

    #[test]
    fn histmix_checksum() {
        // Matches `run()` of the MiniJS histmix kernel.
        assert_eq!(run_native("histmix").checksum, -1923578276.0);
    }
}
