//! Dynamic opcode and digram frequency census.
//!
//! The interpreter records, per executed opcode, its kind index and — when
//! the next opcode is *statically adjacent* (fallthrough, `pc + 1`) — the
//! ordered digram `(prev, cur)`. Digram counts rank superinstruction
//! candidates: a fused op can only replace a statically adjacent pair, so
//! taken branches deliberately break the chain.
//!
//! The table is a fixed-size array pair (no hashing, no allocation on the
//! interpreter hot path); the VM maps indices to opcode names when it
//! flushes the census into the mergeable `Metrics` registry.

/// Fixed capacity of the census table: enough for every bytecode opcode
/// kind with headroom for future superinstructions.
pub const CENSUS_SLOTS: usize = 32;

/// Flat opcode / digram counters indexed by opcode kind.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OpcodeCensus {
    counts: [u64; CENSUS_SLOTS],
    digrams: [[u64; CENSUS_SLOTS]; CENSUS_SLOTS],
}

impl Default for OpcodeCensus {
    fn default() -> Self {
        Self::new()
    }
}

impl OpcodeCensus {
    /// Empty census.
    pub fn new() -> Self {
        OpcodeCensus { counts: [0; CENSUS_SLOTS], digrams: [[0; CENSUS_SLOTS]; CENSUS_SLOTS] }
    }

    /// Counts one executed opcode of kind `idx`.
    #[inline]
    pub fn record_op(&mut self, idx: u8) {
        let slot = &mut self.counts[idx as usize % CENSUS_SLOTS];
        *slot = slot.saturating_add(1);
    }

    /// Counts one executed statically-adjacent pair `(prev, cur)`.
    #[inline]
    pub fn record_digram(&mut self, prev: u8, cur: u8) {
        let slot = &mut self.digrams[prev as usize % CENSUS_SLOTS][cur as usize % CENSUS_SLOTS];
        *slot = slot.saturating_add(1);
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.counts.iter().all(|&c| c == 0)
    }

    /// Total opcodes recorded.
    pub fn total_ops(&self) -> u64 {
        self.counts.iter().fold(0u64, |a, &c| a.saturating_add(c))
    }

    /// Non-zero opcode counts as `(kind index, count)`, ascending by index.
    pub fn nonzero_ops(&self) -> Vec<(usize, u64)> {
        self.counts.iter().enumerate().filter(|(_, &c)| c > 0).map(|(i, &c)| (i, c)).collect()
    }

    /// Non-zero digram counts as `(prev, cur, count)`, ascending.
    pub fn nonzero_digrams(&self) -> Vec<(usize, usize, u64)> {
        let mut out = Vec::new();
        for (a, row) in self.digrams.iter().enumerate() {
            for (b, &c) in row.iter().enumerate() {
                if c > 0 {
                    out.push((a, b, c));
                }
            }
        }
        out
    }

    /// Zeroes the table (used after flushing into `Metrics` so repeated
    /// flushes never double-count).
    pub fn clear(&mut self) {
        *self = OpcodeCensus::new();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_drains() {
        let mut c = OpcodeCensus::new();
        assert!(c.is_empty());
        c.record_op(1);
        c.record_op(1);
        c.record_op(5);
        c.record_digram(1, 5);
        assert!(!c.is_empty());
        assert_eq!(c.total_ops(), 3);
        assert_eq!(c.nonzero_ops(), vec![(1, 2), (5, 1)]);
        assert_eq!(c.nonzero_digrams(), vec![(1, 5, 1)]);
        c.clear();
        assert!(c.is_empty());
        assert!(c.nonzero_digrams().is_empty());
    }

    #[test]
    fn out_of_range_indices_wrap_instead_of_panicking() {
        let mut c = OpcodeCensus::new();
        c.record_op(CENSUS_SLOTS as u8 + 3);
        c.record_digram(200, 200);
        assert_eq!(c.nonzero_ops(), vec![(3, 1)]);
        assert_eq!(c.nonzero_digrams(), vec![(200 % CENSUS_SLOTS, 200 % CENSUS_SLOTS, 1)]);
    }

    #[test]
    fn counts_saturate() {
        let mut c = OpcodeCensus::new();
        for _ in 0..3 {
            c.record_op(0);
        }
        // Pin at the ceiling and keep recording.
        c.counts[0] = u64::MAX;
        c.record_op(0);
        assert_eq!(c.counts[0], u64::MAX);
        assert_eq!(c.total_ops(), u64::MAX);
    }
}
