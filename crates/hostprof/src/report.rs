//! Snapshot of the span registry: merge, conservation check, rendering.

use std::collections::BTreeMap;

use crate::span::SpanStats;

/// An immutable snapshot of merged spans, keyed by `/`-joined path.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SpanReport {
    /// Merged spans keyed by full path, e.g. `workload:S01/compile:ftl`.
    pub spans: BTreeMap<String, SpanStats>,
}

fn parent_of(path: &str) -> Option<&str> {
    path.rfind('/').map(|i| &path[..i])
}

impl SpanReport {
    /// Folds another report in (commutative, saturating).
    pub fn merge(&mut self, other: &SpanReport) {
        for (path, stats) in &other.spans {
            self.spans.entry(path.clone()).or_default().merge(stats);
        }
    }

    /// Sums of direct children per parent path.
    fn child_sums(&self) -> BTreeMap<&str, SpanStats> {
        let mut sums: BTreeMap<&str, SpanStats> = BTreeMap::new();
        for (path, stats) in &self.spans {
            if let Some(parent) = parent_of(path) {
                sums.entry(parent).or_default().merge(stats);
            }
        }
        sums
    }

    /// Conservation check: spans nest and attribution is inclusive, so a
    /// parent's wall time, allocation count and byte count must each cover
    /// the sum of its direct children. Returns human-readable violations
    /// (empty = conserved). A child path whose parent never appears is also
    /// a violation: spans only get multi-segment paths from live parents.
    pub fn conservation_violations(&self) -> Vec<String> {
        let mut violations = Vec::new();
        for (parent, sum) in self.child_sums() {
            let Some(p) = self.spans.get(parent) else {
                violations.push(format!("{parent}: children recorded but parent missing"));
                continue;
            };
            for (metric, have, need) in [
                ("wall_ns", p.wall_ns, sum.wall_ns),
                ("allocs", p.allocs, sum.allocs),
                ("alloc_bytes", p.alloc_bytes, sum.alloc_bytes),
            ] {
                if have < need {
                    violations
                        .push(format!("{parent}: {metric} {have} < sum of direct children {need}"));
                }
            }
        }
        violations
    }

    /// Collapsed-stack flamegraph lines: `a;b;c <self_wall_ns>`, one per
    /// path, exclusive wall time (inclusive minus direct children), sorted
    /// by path. Feed straight into any `flamegraph.pl`-compatible tool.
    pub fn collapsed(&self) -> String {
        let sums = self.child_sums();
        let mut out = String::new();
        for (path, stats) in &self.spans {
            let children = sums.get(path.as_str()).map_or(0, |s| s.wall_ns);
            let self_ns = stats.wall_ns.saturating_sub(children);
            out.push_str(&path.replace('/', ";"));
            out.push(' ');
            out.push_str(&self_ns.to_string());
            out.push('\n');
        }
        out
    }

    /// Deterministic table (stdout-safe): path, entry count, allocation
    /// count and bytes — everything except the wall clock — sorted by path.
    pub fn render_deterministic(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<52} {:>10} {:>12} {:>14}\n",
            "span", "count", "allocs", "alloc-bytes"
        ));
        for (path, s) in &self.spans {
            out.push_str(&format!(
                "{:<52} {:>10} {:>12} {:>14}\n",
                path, s.count, s.allocs, s.alloc_bytes
            ));
        }
        out
    }

    /// Wall-clock table (stderr only — nondeterministic), sorted by
    /// inclusive wall time descending, ties by path.
    pub fn render_wall(&self) -> String {
        let mut rows: Vec<(&String, &SpanStats)> = self.spans.iter().collect();
        rows.sort_by(|a, b| b.1.wall_ns.cmp(&a.1.wall_ns).then_with(|| a.0.cmp(b.0)));
        let mut out = String::new();
        out.push_str(&format!(
            "{:<52} {:>10} {:>14} {:>12}\n",
            "span", "count", "wall-ns", "wall-ms"
        ));
        for (path, s) in rows {
            out.push_str(&format!(
                "{:<52} {:>10} {:>14} {:>12.3}\n",
                path,
                s.count,
                s.wall_ns,
                s.wall_ns as f64 / 1e6
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats(count: u64, wall: u64, allocs: u64, bytes: u64) -> SpanStats {
        SpanStats { count, wall_ns: wall, allocs, alloc_bytes: bytes }
    }

    fn report(entries: &[(&str, SpanStats)]) -> SpanReport {
        SpanReport { spans: entries.iter().map(|(p, s)| ((*p).to_owned(), *s)).collect() }
    }

    #[test]
    fn merge_is_commutative_and_saturating() {
        let a = report(&[("x", stats(1, 10, 5, 100)), ("x/y", stats(1, 4, 2, 40))]);
        let b = report(&[("x", stats(2, 30, 1, u64::MAX)), ("z", stats(1, 1, 1, 1))]);
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba, "span merge must be commutative");
        assert_eq!(ab.spans["x"], stats(3, 40, 6, u64::MAX));
        assert_eq!(ab.spans["z"].count, 1);
    }

    #[test]
    fn conservation_flags_overfull_children_and_orphans() {
        let ok = report(&[
            ("root", stats(1, 100, 10, 1000)),
            ("root/a", stats(1, 60, 4, 400)),
            ("root/b", stats(1, 40, 6, 600)),
        ]);
        assert!(ok.conservation_violations().is_empty());

        let bad = report(&[("root", stats(1, 100, 3, 1000)), ("root/a", stats(1, 160, 4, 400))]);
        let v = bad.conservation_violations();
        assert_eq!(v.len(), 2, "wall and allocs both violated: {v:?}");
        assert!(v.iter().any(|m| m.contains("wall_ns")));
        assert!(v.iter().any(|m| m.contains("allocs")));

        let orphan = report(&[("root/a", stats(1, 1, 0, 0))]);
        assert!(orphan.conservation_violations()[0].contains("parent missing"));
    }

    #[test]
    fn collapsed_emits_exclusive_self_time() {
        let r = report(&[
            ("root", stats(1, 100, 0, 0)),
            ("root/a", stats(1, 60, 0, 0)),
            ("root/a/b", stats(1, 10, 0, 0)),
        ]);
        let collapsed = r.collapsed();
        let lines: Vec<&str> = collapsed.lines().collect();
        assert_eq!(lines, vec!["root 40", "root;a 50", "root;a;b 10"]);
    }

    #[test]
    fn deterministic_table_has_no_wall_column() {
        let r = report(&[("a", stats(2, 12345, 7, 99))]);
        let det = r.render_deterministic();
        assert!(det.contains("allocs"));
        assert!(!det.contains("12345"), "wall ns must stay out of the deterministic table");
        let wall = r.render_wall();
        assert!(wall.contains("12345"));
    }
}
