//! Scoped wall-clock spans with allocation attribution.
//!
//! [`span`] pushes a frame onto a thread-local stack and returns an RAII
//! guard; dropping the guard (normally or during unwinding) pops the frame
//! and merges `{count, wall_ns, allocs, alloc_bytes}` into a thread-local
//! accumulator keyed by the `/`-joined span path. When the *root* span of a
//! thread exits, the accumulator is drained into the process-wide registry.
//!
//! Draining at every root exit (rather than at thread exit) is what makes
//! the allocation counters `--jobs`-invariant: each root span starts from
//! an empty thread-local map, so the bookkeeping allocations a span's own
//! drop performs are identical no matter which worker thread ran it or
//! what ran there before.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

use crate::alloc::alloc_counters;
use crate::enabled;
use crate::report::SpanReport;

/// Merged observations for one span path. All fields saturate on merge so
/// arbitrarily long runs cannot overflow-panic.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpanStats {
    /// Times the span was entered.
    pub count: u64,
    /// Inclusive wall-clock nanoseconds (nondeterministic).
    pub wall_ns: u64,
    /// Inclusive allocation count (deterministic for a fixed workload).
    pub allocs: u64,
    /// Inclusive bytes requested from the allocator (deterministic).
    pub alloc_bytes: u64,
}

impl SpanStats {
    /// Folds one observation in.
    pub fn observe(&mut self, wall_ns: u64, allocs: u64, alloc_bytes: u64) {
        self.count = self.count.saturating_add(1);
        self.wall_ns = self.wall_ns.saturating_add(wall_ns);
        self.allocs = self.allocs.saturating_add(allocs);
        self.alloc_bytes = self.alloc_bytes.saturating_add(alloc_bytes);
    }

    /// Folds another stats cell in (commutative, saturating).
    pub fn merge(&mut self, other: &SpanStats) {
        self.count = self.count.saturating_add(other.count);
        self.wall_ns = self.wall_ns.saturating_add(other.wall_ns);
        self.allocs = self.allocs.saturating_add(other.allocs);
        self.alloc_bytes = self.alloc_bytes.saturating_add(other.alloc_bytes);
    }
}

struct Frame {
    /// Full `/`-joined path, computed at push so pop never walks the stack.
    path: String,
    start: Instant,
    allocs0: u64,
    bytes0: u64,
}

thread_local! {
    static STACK: RefCell<Vec<Frame>> = const { RefCell::new(Vec::new()) };
    static LOCAL: RefCell<BTreeMap<String, SpanStats>> = const { RefCell::new(BTreeMap::new()) };
}

fn registry() -> &'static Mutex<BTreeMap<String, SpanStats>> {
    static REGISTRY: OnceLock<Mutex<BTreeMap<String, SpanStats>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(BTreeMap::new()))
}

fn lock_registry() -> std::sync::MutexGuard<'static, BTreeMap<String, SpanStats>> {
    // A panic inside the registry lock is impossible in practice (pure map
    // merges), but spans drop during unwinding, so never double-panic.
    registry().lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// RAII guard returned by [`span`]. Dropping it — on the normal path or
/// during unwinding — records the span.
#[must_use = "a span records on drop; binding it to _ ends it immediately"]
pub struct SpanGuard {
    active: bool,
}

/// Opens a span named `name` nested under the thread's current span (if
/// any). Inert and allocation-free when the observatory is disabled.
pub fn span(name: &str) -> SpanGuard {
    if !enabled() {
        return SpanGuard { active: false };
    }
    let pushed = STACK
        .try_with(|stack| {
            let mut stack = stack.borrow_mut();
            if stack.capacity() == 0 {
                // Reserve once per thread while the stack is empty (no
                // parent to charge): if nested pushes grew the Vec mid-run
                // the growth would be charged to whichever span happened to
                // run first on this worker thread, making the allocation
                // counters depend on `--jobs` scheduling.
                stack.reserve(32);
            }
            let path = match stack.last() {
                Some(parent) => format!("{}/{name}", parent.path),
                None => name.to_owned(),
            };
            // Snapshot *after* the bookkeeping above so the span machinery's
            // own allocations are never charged to the span they open; they
            // land on the parent, whose per-child cost is deterministic.
            let (allocs0, bytes0) = alloc_counters();
            stack.push(Frame { path, start: Instant::now(), allocs0, bytes0 });
        })
        .is_ok();
    SpanGuard { active: pushed }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if !self.active {
            return;
        }
        let Some(frame) = STACK.try_with(|s| s.borrow_mut().pop()).ok().flatten() else {
            return;
        };
        let wall = frame.start.elapsed().as_nanos() as u64;
        let (allocs, bytes) = alloc_counters();
        record_local(
            frame.path,
            wall,
            allocs.wrapping_sub(frame.allocs0),
            bytes.wrapping_sub(frame.bytes0),
        );
        let at_root = STACK.try_with(|s| s.borrow().is_empty()).unwrap_or(false);
        if at_root {
            drain_local();
        }
    }
}

/// Records a pre-measured leaf observation named `name` under the current
/// span path (used for per-pass laps where a guard per pass would be
/// noisy). No-op when disabled.
pub fn record_leaf(name: &str, wall_ns: u64, allocs: u64, alloc_bytes: u64) {
    if !enabled() {
        return;
    }
    let path =
        STACK.try_with(|s| s.borrow().last().map(|f| format!("{}/{name}", f.path))).ok().flatten();
    match path {
        Some(path) => record_local(path, wall_ns, allocs, alloc_bytes),
        None => {
            // No enclosing span: merge straight into the registry so the
            // observation cannot strand in thread-local state.
            let mut reg = lock_registry();
            reg.entry(name.to_owned()).or_default().observe(wall_ns, allocs, alloc_bytes);
        }
    }
}

fn record_local(path: String, wall_ns: u64, allocs: u64, alloc_bytes: u64) {
    let _ = LOCAL.try_with(|local| {
        local.borrow_mut().entry(path).or_default().observe(wall_ns, allocs, alloc_bytes);
    });
}

fn drain_local() {
    let drained = LOCAL.try_with(|local| std::mem::take(&mut *local.borrow_mut())).ok();
    let Some(drained) = drained else { return };
    if drained.is_empty() {
        return;
    }
    let mut reg = lock_registry();
    for (path, stats) in drained {
        reg.entry(path).or_default().merge(&stats);
    }
}

/// Per-pass lap timer for observed pipelines: measures the wall time and
/// allocation delta *between* laps and records each as a leaf span
/// `pass:<name>` under the current path. Inert when constructed inactive.
pub struct PassLap {
    active: bool,
    last: Instant,
    allocs: u64,
    bytes: u64,
}

impl PassLap {
    /// Starts a lap clock. `active` is typically [`crate::enabled`], hoisted
    /// so one flag test covers the whole pipeline.
    pub fn start(active: bool) -> Self {
        let (allocs, bytes) = if active { alloc_counters() } else { (0, 0) };
        PassLap { active, last: Instant::now(), allocs, bytes }
    }

    /// Records the lap since the previous call as leaf `pass:<name>`.
    pub fn lap(&mut self, name: &str) {
        if !self.active {
            return;
        }
        let now = Instant::now();
        let (allocs, bytes) = alloc_counters();
        record_leaf(
            &format!("pass:{name}"),
            now.duration_since(self.last).as_nanos() as u64,
            allocs.wrapping_sub(self.allocs),
            bytes.wrapping_sub(self.bytes),
        );
        self.last = now;
        self.allocs = allocs;
        self.bytes = bytes;
    }
}

/// Clones the process-wide registry into a report. Spans still open on some
/// thread are not included until their root exits.
pub fn snapshot() -> SpanReport {
    SpanReport { spans: lock_registry().clone() }
}

/// Clears the process-wide registry (thread-local accumulation of spans
/// currently open elsewhere is unaffected).
pub fn reset() {
    lock_registry().clear();
}
