//! Counting global allocator.
//!
//! [`CountingAlloc`] wraps the system allocator and bumps two per-thread
//! counters (allocation count, bytes requested) on every `alloc` /
//! `alloc_zeroed` / `realloc` when the observatory is enabled. The span
//! layer snapshots the counters on entry and attributes the delta on exit,
//! so attribution is inclusive and per-thread — no cross-thread bleed.
//!
//! Caveats, by construction:
//!
//! - Installation is opt-in per *binary* (`#[global_allocator]` in the cli
//!   and bench binaries). A binary without it still runs all span timers;
//!   the alloc columns just stay zero.
//! - Frees are not tracked: the interesting signal for the arena refactor
//!   is churn (how much was requested where), not live footprint.
//! - The counters are plain thread-local `Cell`s with *const*
//!   initializers, so the counting path can never itself allocate (no
//!   lazy-init re-entrancy), and `try_with` keeps late frees during thread
//!   teardown safe.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

use crate::enabled;

thread_local! {
    static ALLOC_COUNT: Cell<u64> = const { Cell::new(0) };
    static ALLOC_BYTES: Cell<u64> = const { Cell::new(0) };
}

/// Monotonic per-thread allocation counters `(count, bytes)` since thread
/// start. Only advances while the observatory is enabled and the binary
/// installed [`CountingAlloc`]; consumers must use deltas, never absolutes.
pub fn alloc_counters() -> (u64, u64) {
    let count = ALLOC_COUNT.try_with(Cell::get).unwrap_or(0);
    let bytes = ALLOC_BYTES.try_with(Cell::get).unwrap_or(0);
    (count, bytes)
}

#[inline]
fn note(bytes: usize) {
    if !enabled() {
        return;
    }
    let _ = ALLOC_COUNT.try_with(|c| c.set(c.get().wrapping_add(1)));
    let _ = ALLOC_BYTES.try_with(|c| c.set(c.get().wrapping_add(bytes as u64)));
}

/// A `#[global_allocator]` wrapper over [`System`] that feeds the
/// observatory's per-thread allocation counters.
///
/// ```ignore
/// #[global_allocator]
/// static ALLOC: nomap_hostprof::CountingAlloc = nomap_hostprof::CountingAlloc;
/// ```
pub struct CountingAlloc;

// SAFETY: defers every allocation to `System` unchanged; the counting side
// channel touches only const-initialized thread-local `Cell`s and never
// allocates or unwinds.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        note(layout.size());
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        note(layout.size());
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        note(new_size);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}
