//! `HOSTBENCH_*.json` document rendering.
//!
//! Host telemetry gets its own document family, deliberately separate from
//! the frozen `BENCH_*.json` (BENCH_DOC_VERSION stays at v4): BENCH docs
//! carry *simulated* deterministic measurements that CI byte-diffs against
//! committed baselines, while HOSTBENCH docs carry host wall clocks that
//! are nondeterministic by nature and must never gate a diff. Mixing them
//! would either freeze noise or thaw the baseline — hence two families.

use std::collections::BTreeMap;

use crate::report::SpanReport;

/// Version stamp of the HOSTBENCH document family. Bump on any
/// field change; readers reject mismatches rather than misparse.
pub const HOSTBENCH_DOC_VERSION: u64 = 1;

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn counter_map(map: &BTreeMap<String, u64>) -> String {
    let fields: Vec<String> = map.iter().map(|(k, v)| format!("\"{}\":{v}", escape(k))).collect();
    format!("{{{}}}", fields.join(","))
}

/// Renders one HOSTBENCH document. `artifact` names what was measured
/// (e.g. `corpus`); `opcodes` / `digrams` come from the merged census.
/// Pretty-printed one span per line so artifact diffs stay reviewable.
pub fn render_doc(
    artifact: &str,
    report: &SpanReport,
    opcodes: &BTreeMap<String, u64>,
    digrams: &BTreeMap<String, u64>,
) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{{\n  \"hostbench_v\": {HOSTBENCH_DOC_VERSION},\n  \"artifact\": \"{}\",\n",
        escape(artifact)
    ));
    out.push_str("  \"spans\": [\n");
    let n = report.spans.len();
    for (i, (path, s)) in report.spans.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"path\":\"{}\",\"count\":{},\"wall_ns\":{},\"allocs\":{},\"alloc_bytes\":{}}}{}\n",
            escape(path),
            s.count,
            s.wall_ns,
            s.allocs,
            s.alloc_bytes,
            if i + 1 == n { "" } else { "," }
        ));
    }
    out.push_str("  ],\n");
    out.push_str(&format!("  \"opcodes\": {},\n", counter_map(opcodes)));
    out.push_str(&format!("  \"digrams\": {}\n}}\n", counter_map(digrams)));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::SpanStats;

    #[test]
    fn doc_is_versioned_and_escaped() {
        let mut report = SpanReport::default();
        report
            .spans
            .insert("a/b\"c".into(), SpanStats { count: 1, wall_ns: 2, allocs: 3, alloc_bytes: 4 });
        let mut ops = BTreeMap::new();
        ops.insert("call".to_owned(), 10u64);
        let mut digs = BTreeMap::new();
        digs.insert("mov>call".to_owned(), 7u64);
        let doc = render_doc("corpus", &report, &ops, &digs);
        assert!(doc.contains("\"hostbench_v\": 1"));
        assert!(doc.contains("\"artifact\": \"corpus\""));
        assert!(doc.contains("a/b\\\"c"));
        assert!(doc.contains("\"wall_ns\":2"));
        assert!(doc.contains("\"opcodes\": {\"call\":10}"));
        assert!(doc.contains("\"digrams\": {\"mov>call\":7}"));
        // Trailing-comma discipline: exactly one span, no comma after it.
        assert!(!doc.contains("}},\n  ],"));
    }
}
