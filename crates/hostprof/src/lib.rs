//! Host-side observatory: wall-clock span timers, allocation attribution
//! and an opcode-digram census.
//!
//! Everything in the simulator's cycle model is deterministic and already
//! observable (trace events, the cycle ledger). This crate measures the
//! *host* instead — where does real wall time and real allocation churn go
//! while the simulator runs — which is the telemetry the interpreter /
//! dispatch overhaul (ROADMAP item 5) needs before it can spend it.
//!
//! Design rules, in priority order:
//!
//! 1. **Zero cost when disabled.** Every entry point first tests one
//!    relaxed [`AtomicBool`]; disabled means no TLS touch, no clock read,
//!    no allocation. The simulator's committed outputs are produced with
//!    hostprof disabled and must stay byte-identical when it is enabled —
//!    host telemetry never flows into guest output, `ExecStats`, cycle
//!    metrics or `BENCH_*.json`.
//! 2. **Deterministic counters, nondeterministic clocks — kept apart.**
//!    Span *counts* and allocation *counts/bytes* are deterministic for a
//!    fixed workload (and independent of `--jobs`, because per-thread
//!    bookkeeping is drained at every root-span exit); wall-clock
//!    nanoseconds are not. Render paths split accordingly so callers can
//!    byte-diff the deterministic half.
//! 3. **Conservation.** Spans nest strictly (RAII guards over a
//!    thread-local stack) and both wall time and allocation deltas are
//!    *inclusive*, so `parent ≥ Σ direct children` holds structurally for
//!    every metric — checked by [`SpanReport::conservation_violations`].

mod alloc;
mod census;
mod hostbench;
mod report;
mod span;

use std::sync::atomic::{AtomicBool, Ordering};

pub use alloc::{alloc_counters, CountingAlloc};
pub use census::{OpcodeCensus, CENSUS_SLOTS};
pub use hostbench::{render_doc, HOSTBENCH_DOC_VERSION};
pub use report::SpanReport;
pub use span::{record_leaf, reset, snapshot, span, PassLap, SpanGuard, SpanStats};

static ENABLED: AtomicBool = AtomicBool::new(false);

/// Turns the observatory on or off, process-wide. Off is the default and
/// costs one relaxed atomic load per probe site.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::SeqCst);
}

/// True when the observatory is collecting.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

#[cfg(test)]
pub(crate) mod testutil {
    use std::sync::{Mutex, MutexGuard, OnceLock};

    /// Serializes tests that touch the process-wide enable flag/registry.
    /// Panicking tests poison the lock on purpose-built panics, so recover.
    pub fn serial() -> MutexGuard<'static, ()> {
        static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
        LOCK.get_or_init(|| Mutex::new(()))
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Exercise the real attribution path: the test binary runs under the
    // counting allocator, exactly like the cli/bench binaries.
    #[global_allocator]
    static ALLOC: CountingAlloc = CountingAlloc;

    #[test]
    fn disabled_span_is_inert() {
        let _serial = testutil::serial();
        set_enabled(false);
        let before = snapshot();
        {
            let _g = span("tests:inert");
        }
        let after = snapshot();
        assert_eq!(
            before.spans.get("tests:inert"),
            after.spans.get("tests:inert"),
            "a span created while disabled must record nothing"
        );
    }

    #[test]
    fn spans_nest_attribute_allocs_and_conserve() {
        let _serial = testutil::serial();
        set_enabled(true);
        {
            let _root = span("t1:root");
            {
                let _inner = span("inner");
                let v = vec![0u8; 1 << 16];
                std::hint::black_box(&v);
            }
            record_leaf("leaf", 1, 0, 0);
        }
        set_enabled(false);
        let r = snapshot();
        let root = r.spans["t1:root"];
        let inner = r.spans["t1:root/inner"];
        assert_eq!(root.count, 1);
        assert_eq!(inner.count, 1);
        assert_eq!(r.spans["t1:root/leaf"].count, 1);
        assert!(inner.allocs >= 1, "the 64 KiB vec must be counted: {inner:?}");
        assert!(inner.alloc_bytes >= 1 << 16);
        assert!(root.allocs >= inner.allocs, "attribution is inclusive");
        let violations = r.conservation_violations();
        assert!(violations.is_empty(), "span conservation violated: {violations:?}");
    }

    #[test]
    fn unwound_spans_still_record() {
        let _serial = testutil::serial();
        set_enabled(true);
        let result = std::panic::catch_unwind(|| {
            let _outer = span("t2:unwound");
            let _inner = span("dies");
            panic!("scripted panic for unwind coverage");
        });
        assert!(result.is_err());
        set_enabled(false);
        let r = snapshot();
        assert_eq!(r.spans["t2:unwound"].count, 1, "root must record through unwinding");
        assert_eq!(r.spans["t2:unwound/dies"].count, 1);
        assert!(r.conservation_violations().is_empty());
    }

    #[test]
    fn threads_merge_into_one_registry() {
        let _serial = testutil::serial();
        set_enabled(true);
        let workers: Vec<_> = (0..4)
            .map(|_| {
                std::thread::spawn(|| {
                    let _g = span("t3:worker");
                    let v = vec![0u8; 1024];
                    std::hint::black_box(&v);
                })
            })
            .collect();
        for w in workers {
            w.join().unwrap();
        }
        set_enabled(false);
        let s = snapshot().spans["t3:worker"];
        assert_eq!(s.count, 4, "all four threads must land in one registry cell");
        assert!(s.allocs >= 4, "each thread allocated at least once: {s:?}");
        assert!(s.alloc_bytes >= 4 * 1024);
    }

    #[test]
    fn pass_lap_records_leaves_under_the_current_span() {
        let _serial = testutil::serial();
        set_enabled(true);
        {
            let _g = span("t4:pipeline");
            let mut lap = PassLap::start(enabled());
            let v = vec![0u8; 2048];
            std::hint::black_box(&v);
            lap.lap("constfold");
            lap.lap("dce");
        }
        set_enabled(false);
        let r = snapshot();
        let fold = r.spans["t4:pipeline/pass:constfold"];
        assert_eq!(fold.count, 1);
        assert!(fold.allocs >= 1, "the lap window covers the vec: {fold:?}");
        assert_eq!(r.spans["t4:pipeline/pass:dce"].count, 1);
        assert!(r.conservation_violations().is_empty());
    }

    #[test]
    fn reset_clears_the_registry() {
        let _serial = testutil::serial();
        set_enabled(true);
        {
            let _g = span("t5:gone");
        }
        set_enabled(false);
        assert!(snapshot().spans.contains_key("t5:gone"));
        reset();
        assert!(!snapshot().spans.contains_key("t5:gone"));
    }
}
